// Package repro's root benchmarks regenerate each table and figure of the
// thesis at reduced sweep breadth (one representative configuration per
// experiment) and surface the headline quantity via ReportMetric. The
// full sweeps live in cmd/upc-experiments.
package repro

import (
	"fmt"
	"testing"

	"repro/internal/apps/ft"
	"repro/internal/apps/netbench"
	"repro/internal/apps/ra"
	"repro/internal/apps/stream"
	"repro/internal/apps/uts"
	"repro/internal/mpi"
	"repro/internal/topo"
)

// BenchmarkTable31_TwistedStream regenerates Table 3.1 and reports the
// cast-vs-baseline ratio (paper: 23.2/3.2 ≈ 7.3x).
func BenchmarkTable31_TwistedStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := stream.Table31(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[0].GBps, "baseline-GB/s")
		b.ReportMetric(rs[2].GBps, "cast-GB/s")
		b.ReportMetric(rs[2].GBps/rs[0].GBps, "cast/baseline")
	}
}

// BenchmarkTable41_HybridStream regenerates Table 4.1 and reports the
// unbound-1x8 fraction of full bandwidth (paper: 13.9/24.5 ≈ 0.57).
func BenchmarkTable41_HybridStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := stream.Table41(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs[0].GBps, "UPC8-GB/s")
		b.ReportMetric(rs[2].GBps/rs[0].GBps, "1x8-unbound-fraction")
	}
}

func utsBench(b *testing.B, conduit string, strat uts.Strategy) uts.Result {
	b.Helper()
	gran := 8
	if conduit == "gige" {
		gran = 20
	}
	r, err := uts.Run(uts.Config{
		Machine: topo.Pyramid(), ConduitName: conduit,
		Threads: 64, PerNode: 4, Strategy: strat,
		Granularity: gran, Batch: 64, Tree: uts.Small(400000), Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFigure33_UTS_InfiniBand reproduces one Figure 3.3(a) point:
// 64 processors on 16 nodes, baseline vs optimized.
func BenchmarkFigure33_UTS_InfiniBand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := utsBench(b, "ibv-ddr", uts.BaselineRR)
		opt := utsBench(b, "ibv-ddr", uts.LocalRapid)
		b.ReportMetric(base.MNodesPerSec, "baseline-Mn/s")
		b.ReportMetric(opt.MNodesPerSec, "optimized-Mn/s")
	}
}

// BenchmarkFigure33_UTS_Ethernet reproduces one Figure 3.3(b) point,
// where the locality optimization matters most (paper: up to 2x).
func BenchmarkFigure33_UTS_Ethernet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := utsBench(b, "gige", uts.BaselineRR)
		opt := utsBench(b, "gige", uts.LocalRapid)
		b.ReportMetric(base.MNodesPerSec, "baseline-Mn/s")
		b.ReportMetric(opt.MNodesPerSec, "optimized-Mn/s")
		b.ReportMetric(opt.MNodesPerSec/base.MNodesPerSec, "speedup")
	}
}

// BenchmarkTable32_UTSProfile reproduces the Table 3.2 local-steal
// percentages for the 64/4 InfiniBand row.
func BenchmarkTable32_UTSProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := utsBench(b, "ibv-ddr", uts.BaselineRR)
		opt := utsBench(b, "ibv-ddr", uts.LocalRapid)
		b.ReportMetric(base.LocalStealPct(), "local%-baseline")
		b.ReportMetric(opt.LocalStealPct(), "local%-optimized")
	}
}

// BenchmarkFigure34a_ExchangeRuntimes reproduces the Figure 3.4(a)
// comparison at 32 threads on 8 Pyramid nodes: PSHM improvement over the
// base runtime for the class B all-to-all.
func BenchmarkFigure34a_ExchangeRuntimes(b *testing.B) {
	cls, _ := ft.ClassByName("B")
	for i := 0; i < b.N; i++ {
		base, err := ft.RunExchange(ft.ExchangeConfig{
			Machine: topo.Pyramid(), Class: cls, Threads: 32, PerNode: 4,
			Mode: ft.ExBase, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		pshm, err := ft.RunExchange(ft.ExchangeConfig{
			Machine: topo.Pyramid(), Class: cls, Threads: 32, PerNode: 4,
			Mode: ft.ExPSHM, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric((base.Total.Seconds()/pshm.Total.Seconds()-1)*100, "PSHM-improvement-%")
	}
}

// BenchmarkFigure34b_AsyncExchange reproduces one Figure 3.4(b) bar:
// call vs wait time of the asynchronous all-to-all under PSHM.
func BenchmarkFigure34b_AsyncExchange(b *testing.B) {
	cls, _ := ft.ClassByName("B")
	for i := 0; i < b.N; i++ {
		r, err := ft.RunExchange(ft.ExchangeConfig{
			Machine: topo.Pyramid(), Class: cls, Threads: 32, PerNode: 4,
			Mode: ft.ExPSHM, Async: true, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Call.Seconds(), "call-s")
		b.ReportMetric(r.Wait.Seconds(), "wait-s")
	}
}

// BenchmarkFigure42a_MultiLinkLatency reproduces the Figure 4.2(a)
// contrast at 4KB: 8 process link-pairs vs 8 pthread pairs.
func BenchmarkFigure42a_MultiLinkLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		proc, err := netbench.Latency(netbench.Config{Links: 8, Size: 4096, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		pthr, err := netbench.Latency(netbench.Config{Links: 8, Size: 4096, Pthreads: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(proc.RTT.Micros(), "processes-us")
		b.ReportMetric(pthr.RTT.Micros(), "pthreads-us")
	}
}

// BenchmarkFigure42b_MultiLinkFlood reproduces the Figure 4.2(b)
// contrast at 1MB: single link vs 4 process links.
func BenchmarkFigure42b_MultiLinkFlood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		one, err := netbench.Flood(netbench.Config{Links: 1, Size: 1 << 20, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		four, err := netbench.Flood(netbench.Config{Links: 4, Size: 1 << 20, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(one.BandwidthMBps, "1link-MB/s")
		b.ReportMetric(four.BandwidthMBps, "4link-MB/s")
	}
}

// BenchmarkFigure44_FTBreakdown reproduces the Figure 4.4 observation at
// 32 threads: compute kernels scale while the all-to-all saturates.
func BenchmarkFigure44_FTBreakdown(b *testing.B) {
	cls, _ := ft.ClassByName("B")
	for i := 0; i < b.N; i++ {
		r8, err := ft.Run(ft.Config{Machine: topo.Lehman(), Class: cls,
			Variant: ft.UPCProcesses, Threads: 8, PerNode: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		r32, err := ft.Run(ft.Config{Machine: topo.Lehman(), Class: cls,
			Variant: ft.UPCProcesses, Threads: 32, PerNode: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r8.Phases["fft2d"])/float64(r32.Phases["fft2d"]), "fft2d-speedup-8to32")
		b.ReportMetric(float64(r8.Comm)/float64(r32.Comm), "alltoall-speedup-8to32")
	}
}

// BenchmarkFigure45_CommTime reproduces the Figure 4.5 ordering at 64
// cores on 8 Lehman nodes: MPI < hybrid < pthreads < processes.
func BenchmarkFigure45_CommTime(b *testing.B) {
	cls, _ := ft.ClassByName("B")
	run := func(v ft.Variant, threads, per, subs int) float64 {
		r, err := ft.Run(ft.Config{Machine: topo.Lehman(), Class: cls, Variant: v,
			Threads: threads, PerNode: per, SubThreads: subs, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return r.Comm.Seconds()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(ft.MPIFortran, 64, 8, 0), "MPI-s")
		b.ReportMetric(run(ft.UPCProcesses, 64, 8, 0), "UPCproc-s")
		b.ReportMetric(run(ft.UPCPthreads, 64, 8, 0), "UPCpthr-s")
		b.ReportMetric(run(ft.HybridOMP, 16, 2, 4), "hybrid-s")
	}
}

// BenchmarkFigure46_HybridSpeedup reproduces the headline Figure 4.6 /
// conclusion number: the 16*4 hybrid against 64 process-UPC threads
// (paper: ~1.4x).
func BenchmarkFigure46_HybridSpeedup(b *testing.B) {
	cls, _ := ft.ClassByName("B")
	for i := 0; i < b.N; i++ {
		pure, err := ft.Run(ft.Config{Machine: topo.Lehman(), Class: cls,
			Variant: ft.UPCProcesses, Threads: 64, PerNode: 8, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		hyb, err := ft.Run(ft.Config{Machine: topo.Lehman(), Class: cls,
			Variant: ft.HybridOMP, Threads: 16, PerNode: 2, SubThreads: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pure.Elapsed.Seconds()/hyb.Elapsed.Seconds(), "hybrid-speedup")
	}
}

// BenchmarkRandomAccessAblation runs the thread-group aggregation
// ablation the thesis motivates for RandomAccess-class applications
// (Section 4.4): fine-grained vs per-thread vs per-node aggregation.
func BenchmarkRandomAccessAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, v := range ra.Variants() {
			r, err := ra.Run(ra.Config{
				Machine: topo.Pyramid(), Threads: 16, PerNode: 4,
				TableSize: 1 << 16, Updates: 4000, Variant: v, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.GUPS, v.String()+"-GUPS")
		}
	}
}

// ---- Ablation benches for the design choices DESIGN.md calls out ----

// BenchmarkAblationAlltoallAlgorithm contrasts the tuned MPI alltoall's
// two algorithms at a small and a large slice size (the size-based switch
// is the design choice).
func BenchmarkAblationAlltoallAlgorithm(b *testing.B) {
	run := func(slice int, pairwise bool) float64 {
		st, err := mpi.Run(mpi.Config{
			Machine: topo.Lehman(), Ranks: 16, RanksPerNode: 4, Seed: 1,
		}, func(c *mpi.Comm) {
			send := make([][]byte, c.Size)
			for d := range send {
				send[d] = make([]byte, slice)
			}
			if pairwise {
				c.AlltoallPairwise(send)
			} else {
				c.Alltoall(send)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
		return st.Elapsed.Seconds()
	}
	for i := 0; i < b.N; i++ {
		b.ReportMetric(run(512, true)*1e6, "small-pairwise-us")
		b.ReportMetric(run(512, false)*1e6, "small-tuned-us")
		b.ReportMetric(run(64<<10, true)*1e3, "large-pairwise-ms")
		b.ReportMetric(run(64<<10, false)*1e3, "large-tuned-ms")
	}
}

// BenchmarkAblationStealGranularity sweeps the UTS steal chunk — the
// parameter the paper reports tuning per network (8 on InfiniBand, 20 on
// Ethernet).
func BenchmarkAblationStealGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, gran := range []int{2, 8, 32} {
			r, err := uts.Run(uts.Config{
				Machine: topo.Pyramid(), ConduitName: "ibv-ddr",
				Threads: 32, PerNode: 2, Strategy: uts.LocalRapid,
				Granularity: gran, Batch: 64, Tree: uts.Small(200000), Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(r.MNodesPerSec, fmt.Sprintf("gran%d-Mn/s", gran))
		}
	}
}

// BenchmarkAblationOverlap contrasts split-phase against the
// communication/computation-overlap FT variant on the same configuration.
func BenchmarkAblationOverlap(b *testing.B) {
	cls, _ := ft.ClassByName("A")
	for i := 0; i < b.N; i++ {
		split, err := ft.Run(ft.Config{Machine: topo.Lehman(), Class: cls,
			Variant: ft.UPCProcesses, Impl: ft.SplitPhase,
			Threads: 32, PerNode: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		over, err := ft.Run(ft.Config{Machine: topo.Lehman(), Class: cls,
			Variant: ft.UPCProcesses, Impl: ft.Overlap,
			Threads: 32, PerNode: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(split.Elapsed.Seconds(), "split-s")
		b.ReportMetric(over.Elapsed.Seconds(), "overlap-s")
	}
}

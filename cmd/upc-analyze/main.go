// Command upc-analyze inspects the causality analysis the other
// cmd/upc-* binaries emit under -analyze=out.json (standalone export)
// or -metrics=out.json combined with -analyze (manifest with an
// `analysis` section).
//
//	upc-analyze run.json              summarize: critical path, wait
//	                                  states, per-phase imbalance
//	upc-analyze -blame -top 10 run.json
//	                                  top-N blamed threads across all
//	                                  wait classes, by blamed time
//	upc-analyze a.json b.json         diff two analyses; exits 1 when
//	                                  they drift
//
// Two analyses of the same run — including runs at different -parallel
// or -shards worker counts — diff clean; that equality is the
// analysis-determinism gate CI enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/causality"
	"repro/internal/metrics"
)

var top = flag.Int("top", 5,
	"how many threads/segments to show per table")

var blame = flag.Bool("blame", false,
	"with one file: print only the top-N blamed-thread table")

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: upc-analyze [flags] analysis.json [other.json]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	switch flag.NArg() {
	case 1:
		summarize(flag.Arg(0))
	case 2:
		diff(flag.Arg(0), flag.Arg(1))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// load reads either a standalone causality export or a metrics
// manifest carrying an `analysis` section.
func load(path string) *causality.Export {
	if m, err := metrics.Load(path); err == nil && m.Analysis != nil {
		return m.Analysis
	}
	e, err := causality.LoadExport(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if len(e.Runs) == 0 {
		fmt.Fprintf(os.Stderr, "upc-analyze: %s holds no analysis (run with -analyze=out.json)\n", path)
		os.Exit(1)
	}
	return e
}

func summarize(path string) {
	e := load(path)
	if *blame {
		e.BlameTable(os.Stdout, *top)
		return
	}
	e.Summary(os.Stdout, *top)
}

func diff(pathA, pathB string) {
	a, b := load(pathA), load(pathB)
	ba, err := json.Marshal(a)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bb, err := json.Marshal(b)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if string(ba) == string(bb) {
		fmt.Printf("analyses match (%d runs, makespan %dns)\n", len(a.Runs), a.TotalMakespanNS)
		return
	}
	fmt.Println("analyses differ:")
	if len(a.Runs) != len(b.Runs) {
		fmt.Printf("  runs                 %d != %d\n", len(a.Runs), len(b.Runs))
	}
	if a.TotalMakespanNS != b.TotalMakespanNS {
		fmt.Printf("  makespan_ns          %d != %d\n", a.TotalMakespanNS, b.TotalMakespanNS)
	}
	segs := func(e *causality.Export) map[string]int64 {
		m := map[string]int64{}
		for _, s := range e.Totals {
			m[s.Category] = s.NS
		}
		return m
	}
	sa, sb := segs(a), segs(b)
	for _, s := range a.Totals {
		if sb[s.Category] != s.NS {
			fmt.Printf("  critical.%-11s %d != %d\n", s.Category, s.NS, sb[s.Category])
		}
	}
	for _, s := range b.Totals {
		if _, ok := sa[s.Category]; !ok {
			fmt.Printf("  critical.%-11s (absent) != %d\n", s.Category, s.NS)
		}
	}
	for i := range a.Runs {
		if i >= len(b.Runs) {
			break
		}
		ra, rb := &a.Runs[i], &b.Runs[i]
		if ra.Waits != rb.Waits || ra.Edges != rb.Edges || ra.MakespanNS != rb.MakespanNS {
			fmt.Printf("  run%d                 waits %d!=%d edges %d!=%d makespan %d!=%d\n",
				i, ra.Waits, rb.Waits, ra.Edges, rb.Edges, ra.MakespanNS, rb.MakespanNS)
		}
	}
	os.Exit(1)
}

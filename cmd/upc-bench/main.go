// upc-bench records the performance of the simulation substrate.
//
// It drives the engine microbenchmarks (internal/simbench) through
// testing.Benchmark plus one end-to-end figure benchmark (the Table 3.1
// twisted-STREAM sweep) and writes BENCH_sim.json: ns/op, allocs/op and
// bytes/op per microbenchmark, the figure's wall time and headline
// metrics, and the fixed pre-optimization baseline the 2x acceptance
// target was measured against.
//
//	upc-bench                  # measure and rewrite BENCH_sim.json
//	upc-bench -check           # measure and fail on >20% ns/op regression
//	                           # (or any allocs/op growth) vs the committed file
//
// Each microbenchmark takes the best of -runs runs: single samples on a
// busy machine vary by ~15%, and the minimum is the stable estimate of
// the code's cost. CI runs -check with a widened -tolerance to absorb
// runner-to-runner hardware variance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/apps/stream"
	"repro/internal/perf"
	"repro/internal/simbench"
)

type record struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type figure struct {
	Name        string             `json:"name"`
	WallSeconds float64            `json:"wall_seconds"`
	Metrics     map[string]float64 `json:"metrics"`
}

type benchFile struct {
	Note       string            `json:"note"`
	Benchmarks map[string]record `json:"benchmarks"`
	Figure     figure            `json:"figure"`
	// PreChange holds the pre-optimization engine numbers (median of 5
	// full -bench runs at the commit before the fast-path work) so the
	// recorded speedup is reproducible from the file alone.
	PreChange map[string]record `json:"pre_change_baseline"`
}

// preChange is the fair pre-optimization baseline: median of 5 runs of
// the same benchmarks at the commit preceding the engine fast-path work,
// on the same class of machine the committed BENCH_sim.json was
// recorded on.
var preChange = map[string]record{
	"PingPongYield":     {NsPerOp: 1081, AllocsPerOp: 2, BytesPerOp: 64},
	"Advance":           {NsPerOp: 474.1, AllocsPerOp: 1, BytesPerOp: 32},
	"BarrierStorm1k":    {NsPerOp: 893758, AllocsPerOp: 1000, BytesPerOp: 32064},
	"ServerDelay":       {NsPerOp: 574.0, AllocsPerOp: 1, BytesPerOp: 32},
	"SharedLink32Flows": {NsPerOp: 27787, AllocsPerOp: 160, BytesPerOp: 4608},
}

var (
	out       = flag.String("out", "BENCH_sim.json", "result file to write (ignored with -check)")
	check     = flag.Bool("check", false, "compare a fresh measurement against -baseline and fail on regression")
	baseline  = flag.String("baseline", "BENCH_sim.json", "committed baseline file for -check")
	runs      = flag.Int("runs", 3, "runs per microbenchmark; the minimum ns/op is recorded")
	tolerance = flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression in -check mode")
	skipFig   = flag.Bool("skip-figure", false, "skip the end-to-end figure benchmark")
)

func measure() map[string]record {
	res := make(map[string]record, len(simbench.All))
	for _, bm := range simbench.All {
		// The single-engine benchmarks are logically sequential — exactly
		// one simulated process runs at a time — so measure those on one
		// P: at the default GOMAXPROCS the Go scheduler migrates the
		// handoff chain across cores and the many-goroutine benchmarks
		// swing 30-50% run to run; pinned, they repeat within a few
		// percent. The sharded scaling series is the opposite case — OS
		// parallelism is the thing being measured — so it keeps the
		// host's GOMAXPROCS.
		prev := runtime.GOMAXPROCS(0)
		if !bm.Parallel {
			prev = runtime.GOMAXPROCS(1)
		}
		best := record{NsPerOp: -1}
		trials := make([]float64, 0, *runs)
		for i := 0; i < *runs; i++ {
			// Settle the heap so one benchmark's garbage is not collected
			// on another's clock — the allocating benchmarks otherwise
			// swing 30-50% run to run.
			runtime.GC()
			r := testing.Benchmark(bm.Fn)
			ns := float64(r.T.Nanoseconds()) / float64(r.N)
			trials = append(trials, ns)
			if best.NsPerOp < 0 || ns < best.NsPerOp {
				best = record{NsPerOp: ns, AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
			}
		}
		runtime.GOMAXPROCS(prev)
		res[bm.Name] = best
		// The minimum stays the recorded estimate; the trial percentiles
		// show how noisy this machine made the measurement.
		p10, med, p90 := perf.Percentiles(trials)
		fmt.Printf("%-20s %12.1f ns/op %8d B/op %6d allocs/op  trials p10/med/p90 %.0f/%.0f/%.0f\n",
			bm.Name, best.NsPerOp, best.BytesPerOp, best.AllocsPerOp, p10, med, p90)
	}
	return res
}

func measureFigure() figure {
	// Settle the microbenchmarks' garbage (the sharded UTS series leaves
	// multi-MB heaps behind) so their collection is not billed to the
	// figure's wall clock.
	runtime.GC()
	start := time.Now() //upcvet:wallclock -- real host-side benchmarking; this is the one place wall time is the point
	rs, err := stream.Table31(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wall := time.Since(start).Seconds() //upcvet:wallclock -- real host-side benchmarking
	f := figure{
		Name:        "Table31_TwistedStream",
		WallSeconds: wall,
		Metrics: map[string]float64{
			"baseline_GBps": rs[0].GBps,
			"cast_GBps":     rs[2].GBps,
			"cast_ratio":    rs[2].GBps / rs[0].GBps,
		},
	}
	fmt.Printf("%-20s %12.2f s wall  (cast %.1f GB/s, %.1fx over baseline)\n",
		f.Name, wall, rs[2].GBps, f.Metrics["cast_ratio"])
	return f
}

func sortedNames(m map[string]record) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// zeroAllocBenches are the pooled one-sided hot-path benchmarks the
// zero-allocation contract covers. -check holds them to exactly zero on
// both sides of the comparison — a regenerated baseline that records
// any allocation for them is itself a failure, so the gate cannot be
// weakened by rerunning upc-bench after a regression.
var zeroAllocBenches = []string{"FabricPut", "ShardPut", "SharedLink32Flows"}

func runCheck(fresh map[string]record) int {
	data, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var base benchFile
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", *baseline, err)
		return 1
	}
	zeroFail := 0
	for _, name := range zeroAllocBenches {
		if b, ok := base.Benchmarks[name]; ok && b.AllocsPerOp != 0 {
			fmt.Printf("FAIL %-20s baseline records %d allocs/op; the pooled hot path is zero-alloc by contract\n",
				name, b.AllocsPerOp)
			zeroFail++
		}
		if f, ok := fresh[name]; ok && f.AllocsPerOp != 0 {
			fmt.Printf("FAIL %-20s measured %d allocs/op; the pooled hot path is zero-alloc by contract\n",
				name, f.AllocsPerOp)
			zeroFail++
		}
	}
	// The serial benchmarks are deterministic, so their allocs/op must
	// match the baseline exactly; the parallel (sharded) ones allocate a
	// scheduling-dependent amount of park/unpark machinery, so they get
	// the same fractional slack as ns/op.
	parallel := map[string]bool{}
	for _, bm := range simbench.All {
		parallel[bm.Name] = bm.Parallel
	}
	fail := zeroFail
	for _, name := range sortedNames(base.Benchmarks) {
		b := base.Benchmarks[name]
		f, ok := fresh[name]
		if !ok {
			fmt.Printf("FAIL %-20s missing from this build\n", name)
			fail++
			continue
		}
		allocLimit := b.AllocsPerOp
		if parallel[name] {
			allocLimit = int64(float64(b.AllocsPerOp) * (1 + *tolerance))
		}
		ratio := f.NsPerOp / b.NsPerOp
		switch {
		case ratio > 1+*tolerance:
			fmt.Printf("FAIL %-20s %.1f ns/op vs baseline %.1f (%.0f%% slower, limit %.0f%%)\n",
				name, f.NsPerOp, b.NsPerOp, (ratio-1)*100, *tolerance*100)
			fail++
		case f.AllocsPerOp > allocLimit:
			fmt.Printf("FAIL %-20s %d allocs/op vs baseline limit %d\n",
				name, f.AllocsPerOp, allocLimit)
			fail++
		default:
			fmt.Printf("ok   %-20s %.1f ns/op vs baseline %.1f (%+.0f%%), %d allocs/op\n",
				name, f.NsPerOp, b.NsPerOp, (ratio-1)*100, f.AllocsPerOp)
		}
	}
	if fail > 0 {
		fmt.Printf("%d benchmark(s) regressed\n", fail)
		return 1
	}
	fmt.Println("all benchmarks within tolerance")
	return 0
}

func main() {
	flag.Parse()
	fresh := measure()
	for _, name := range sortedNames(preChange) {
		if f, ok := fresh[name]; ok {
			p := preChange[name]
			fmt.Printf("     %-20s %5.2fx faster than pre-optimization (%.1f -> %.1f ns/op)\n",
				name, p.NsPerOp/f.NsPerOp, p.NsPerOp, f.NsPerOp)
		}
	}
	if *check {
		os.Exit(runCheck(fresh))
	}
	bf := benchFile{
		Note: "engine microbenchmark baseline; regenerate with `go run ./cmd/upc-bench`, " +
			"CI gates on `go run ./cmd/upc-bench -check` (see .github/workflows/ci.yml)",
		Benchmarks: fresh,
		PreChange:  preChange,
	}
	if !*skipFig {
		bf.Figure = measureFigure()
	}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

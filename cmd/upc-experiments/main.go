// Command upc-experiments regenerates every table and figure of the
// thesis's evaluation in one run — the full per-experiment index of
// DESIGN.md — printing model values alongside the paper's where the
// paper states absolute numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tracecli"
)

// runStats is the lightweight footer sink: it rides the trace stream
// to count runs, events and virtual time, and totals the communication
// matrix's bytes by path class. It is far cheaper than the full
// -metrics collection (no per-pair cells, no timelines, no util
// opt-in), so the footer costs little even on the full sweep.
type runStats struct {
	runs    int64
	events  int64
	virtual int64 // summed final virtual time across runs, ns
	curMax  int64
	bytes   map[string]int64 // comm bytes by path class
}

func (s *runStats) Emit(e trace.Event) {
	s.events++
	if e.Time > s.curMax {
		s.curMax = e.Time
	}
	switch e.Kind {
	case trace.KRunBegin:
		s.runs++
		s.virtual += s.curMax
		s.curMax = 0
	case trace.KInstant:
		if e.Cat == trace.CatComm {
			s.bytes[e.Aux] += e.Arg
		}
	}
}

// footer prints the run summary: one deterministic line (virtual-time
// and event totals are properties of the simulations, not the host).
func (s *runStats) footer(w *os.File) {
	fmt.Fprintf(w, "\nrun summary: %d simulations, %d events, %s virtual time",
		s.runs, s.events, fmtSeconds(s.virtual+s.curMax))
	classes := make([]string, 0, len(s.bytes))
	total := int64(0)
	for c, b := range s.bytes {
		classes = append(classes, c)
		total += b
	}
	sort.Strings(classes)
	fmt.Fprintf(w, ", %s moved", report.Bytes(total))
	for _, c := range classes {
		fmt.Fprintf(w, " %s=%s", c, report.Bytes(s.bytes[c]))
	}
	fmt.Fprintln(w)
}

func fmtSeconds(ns int64) string {
	return fmt.Sprintf("%.3fs", float64(ns)/1e9)
}

func main() {
	quick := flag.Bool("quick", true,
		"smaller trees and no SMT sweep points (pass -quick=false for the full paper-scale run)")
	only := flag.String("only", "",
		"render a single experiment by index name (e.g. \"Figure 3.1b\") instead of the full sweep")
	flag.Parse()
	tracecli.Start()
	stats := &runStats{bytes: map[string]int64{}}
	trace.SetDefault(trace.Tee(trace.Default(), stats))
	run := func() error {
		if *only != "" {
			return experiments.Only(os.Stdout, *only, *quick)
		}
		return experiments.All(os.Stdout, *quick)
	}
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "upc-experiments:", err)
		os.Exit(1)
	}
	stats.footer(os.Stdout)
	tracecli.Finish()
}

// Command upc-experiments regenerates every table and figure of the
// thesis's evaluation in one run — the full per-experiment index of
// DESIGN.md — printing model values alongside the paper's where the
// paper states absolute numbers.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/tracecli"
)

func main() {
	quick := flag.Bool("quick", true,
		"smaller trees and no SMT sweep points (pass -quick=false for the full paper-scale run)")
	flag.Parse()
	tracecli.Start()
	if err := experiments.All(os.Stdout, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "upc-experiments:", err)
		os.Exit(1)
	}
	tracecli.Finish()
}

// Command upc-ft regenerates the NAS FT studies: Figure 3.4 (all-to-all
// under runtime shared-memory configurations), Figure 4.4 (phase
// breakdown), Figure 4.5 (split-phase communication time), and Figure 4.6
// (hierarchical sub-thread variants).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/tracecli"
)

func main() {
	figure := flag.String("figure", "all", "3.4a, 3.4b, 4.4, 4.5, 4.6, or all")
	quick := flag.Bool("quick", false, "skip the most expensive (SMT) sweep points")
	flag.Parse()
	tracecli.Start()
	run := func(name string) error {
		switch name {
		case "3.4a":
			return experiments.Figure34a(os.Stdout)
		case "3.4b":
			return experiments.Figure34b(os.Stdout)
		case "4.4":
			return experiments.Figure44(os.Stdout, *quick)
		case "4.5":
			return experiments.Figure45(os.Stdout, *quick)
		case "4.6":
			return experiments.Figure46(os.Stdout, *quick)
		}
		return fmt.Errorf("unknown figure %q", name)
	}
	var err error
	if *figure == "all" {
		for _, f := range []string{"3.4a", "3.4b", "4.4", "4.5", "4.6"} {
			if err = run(f); err != nil {
				break
			}
			fmt.Println()
		}
	} else {
		err = run(*figure)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "upc-ft:", err)
		os.Exit(1)
	}
	tracecli.Finish()
}

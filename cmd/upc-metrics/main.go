// Command upc-metrics summarizes or diffs the JSON run manifests the
// other cmd/upc-* binaries emit under -metrics=out.json.
//
//	upc-metrics run.json              summarize one manifest
//	upc-metrics -flames out.txt run.json
//	                                  also write the collapsed-stack
//	                                  flamegraph text (virtual time)
//	upc-metrics a.json b.json         diff two manifests; exits 1 when
//	                                  any metric differs beyond -tolerance
//
// The diff compares the flattened metric space (counters, gauges,
// histogram buckets, comm-matrix cells, link utilization, profile
// phases) plus the trace digest. Two manifests of the same run —
// including runs at different -parallel levels — diff clean at
// tolerance 0; that equality is the metrics-determinism gate CI
// enforces.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/metrics"
)

var tolerance = flag.Float64("tolerance", 0,
	"relative per-metric difference allowed before a diff counts (0 = exact)")

var flames = flag.String("flames", "",
	"with one manifest: write its folded stacks to this file (flamegraph collapsed format)")

var maxDeltas = flag.Int("max-deltas", 40,
	"print at most this many differing metrics")

var flame = flag.Bool("flame", false,
	"with one manifest: print the hottest profile frames by exclusive virtual time")

var top = flag.Int("top", 10,
	"how many frames -flame prints")

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: upc-metrics [flags] manifest.json [other.json]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	switch flag.NArg() {
	case 1:
		summarize(flag.Arg(0))
	case 2:
		diff(flag.Arg(0), flag.Arg(1))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func load(path string) *metrics.Manifest {
	m, err := metrics.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return m
}

func summarize(path string) {
	m := load(path)
	if *flame {
		printFlame(m)
		return
	}
	m.Summary(os.Stdout)
	if *flames == "" {
		return
	}
	text := m.Profile.FoldedText()
	if text == "" {
		fmt.Fprintln(os.Stderr, "upc-metrics: manifest has no profile; nothing to write")
		os.Exit(1)
	}
	if err := os.WriteFile(*flames, []byte(text), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "folded stacks written to %s\n", *flames)
}

// printFlame renders the -top hottest profile frames by exclusive
// virtual time — the text view of the flamegraph, for terminals.
func printFlame(m *metrics.Manifest) {
	if m.Profile == nil || len(m.Profile.Phases) == 0 {
		fmt.Fprintln(os.Stderr, "upc-metrics: manifest has no profile section")
		os.Exit(1)
	}
	phases := append([]metrics.PhaseStat(nil), m.Profile.Phases...)
	sort.Slice(phases, func(i, j int) bool {
		if phases[i].ExclusiveNS != phases[j].ExclusiveNS {
			return phases[i].ExclusiveNS > phases[j].ExclusiveNS
		}
		return phases[i].Name < phases[j].Name
	})
	var total int64
	for _, p := range phases {
		total += p.ExclusiveNS
	}
	if len(phases) > *top {
		phases = phases[:*top]
	}
	fmt.Printf("%-28s %10s %14s %14s %7s\n", "FRAME", "COUNT", "INCL-NS", "EXCL-NS", "EXCL%")
	for _, p := range phases {
		pctv := 0.0
		if total > 0 {
			pctv = 100 * float64(p.ExclusiveNS) / float64(total)
		}
		fmt.Printf("%-28s %10d %14d %14d %6.2f%%\n", p.Name, p.Count, p.InclusiveNS, p.ExclusiveNS, pctv)
	}
}

func diff(pathA, pathB string) {
	a, b := load(pathA), load(pathB)
	ds := metrics.Diff(a, b, *tolerance)
	if len(ds) == 0 {
		fmt.Printf("manifests match (%d metrics, tolerance %g)\n", len(a.Flatten()), *tolerance)
		return
	}
	fmt.Printf("%d metrics differ (tolerance %g)\n", len(ds), *tolerance)
	shown := ds
	if len(shown) > *maxDeltas {
		shown = shown[:*maxDeltas]
	}
	for _, d := range shown {
		switch {
		case d.Name == "digest":
			fmt.Printf("  %-40s %s != %s\n", d.Name, a.Digest, b.Digest)
		case !d.InA:
			fmt.Printf("  %-40s (absent) != %g\n", d.Name, d.B)
		case !d.InB:
			fmt.Printf("  %-40s %g != (absent)\n", d.Name, d.A)
		default:
			fmt.Printf("  %-40s %g != %g (rel %.3g)\n", d.Name, d.A, d.B, d.Rel)
		}
	}
	if len(ds) > len(shown) {
		fmt.Printf("  ... and %d more\n", len(ds)-len(shown))
	}
	os.Exit(1)
}

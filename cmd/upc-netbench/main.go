// Command upc-netbench regenerates the multi-link network microbenchmarks
// of Figure 4.2: round-trip latency and flood bandwidth across message
// sizes for process and pthread link-pairs.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/tracecli"
)

func main() {
	figure := flag.String("figure", "all", "4.2a (latency), 4.2b (bandwidth), or all")
	quick := flag.Bool("quick", false, "halve the size grid")
	flag.Parse()
	tracecli.Start()
	var err error
	switch *figure {
	case "4.2a":
		err = experiments.Figure42(os.Stdout, "a", *quick)
	case "4.2b":
		err = experiments.Figure42(os.Stdout, "b", *quick)
	case "all":
		if err = experiments.Figure42(os.Stdout, "a", *quick); err == nil {
			fmt.Println()
			err = experiments.Figure42(os.Stdout, "b", *quick)
		}
	default:
		err = fmt.Errorf("unknown figure %q", *figure)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "upc-netbench:", err)
		os.Exit(1)
	}
	tracecli.Finish()
}

// Command upc-ra runs the RandomAccess (GUPS) ablation — the other
// application class the thesis names as suited to thread grouping: one
// fine-grained one-sided update per element, software aggregation per
// destination thread, and hierarchical aggregation per destination node
// through the thread-group pointer tables.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/apps/ra"
	"repro/internal/report"
	"repro/internal/topo"
	"repro/internal/tracecli"
)

func main() {
	threads := flag.Int("threads", 32, "UPC threads")
	perNode := flag.Int("per-node", 4, "threads per node")
	table := flag.Int("table", 1<<18, "table elements")
	updates := flag.Int("updates", 8192, "updates per thread")
	machine := flag.String("machine", "pyramid", "machine model (lehman, pyramid)")
	conduit := flag.String("conduit", "", "conduit override (ibv-qdr, ibv-ddr, gige)")
	flag.Parse()
	tracecli.Start()

	m, ok := topo.ByName(*machine)
	if !ok {
		fmt.Fprintf(os.Stderr, "upc-ra: unknown machine %q\n", *machine)
		os.Exit(1)
	}
	var rows [][]string
	for _, v := range ra.Variants() {
		r, err := ra.Run(ra.Config{
			Machine: m, ConduitName: *conduit,
			Threads: *threads, PerNode: *perNode,
			TableSize: *table, Updates: *updates,
			Variant: v, Seed: 1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "upc-ra:", err)
			os.Exit(1)
		}
		rows = append(rows, []string{
			v.String(),
			fmt.Sprintf("%.5f", r.GUPS),
			fmt.Sprint(r.Messages),
			r.Elapsed.String(),
		})
	}
	report.Table(os.Stdout,
		fmt.Sprintf("RandomAccess ablation: %d threads on %s (verified)", *threads, m.Name),
		[]string{"variant", "GUPS", "messages", "time"}, rows)
	tracecli.Finish()
}

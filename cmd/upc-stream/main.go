// Command upc-stream regenerates the STREAM triad studies: Table 3.1
// (twisted triad with shared-pointer variants) and Table 4.1 (hybrid
// UPC x OpenMP configurations).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/tracecli"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 3.1, 4.1, or all")
	flag.Parse()
	tracecli.Start()
	var err error
	switch *table {
	case "3.1":
		err = experiments.Table31(os.Stdout)
	case "4.1":
		err = experiments.Table41(os.Stdout)
	case "all":
		if err = experiments.Table31(os.Stdout); err == nil {
			fmt.Println()
			err = experiments.Table41(os.Stdout)
		}
	default:
		err = fmt.Errorf("unknown table %q (want 3.1, 4.1, all)", *table)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "upc-stream:", err)
		os.Exit(1)
	}
	tracecli.Finish()
}

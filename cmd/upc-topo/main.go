// Command upc-topo prints the modeled cluster topologies and conduit
// parameters used throughout the reproduction.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/fabric"
	"repro/internal/report"
	"repro/internal/topo"
	"repro/internal/tracecli"
)

func main() {
	flag.Parse()
	tracecli.Start()
	var rows [][]string
	for _, name := range topo.Presets() {
		m, _ := topo.ByName(name)
		rows = append(rows, []string{
			m.Name,
			fmt.Sprint(m.Nodes),
			fmt.Sprintf("%dx%dx%d", m.SocketsPerNode, m.CoresPerSocket, m.ThreadsPerCore),
			fmt.Sprintf("%.2f", m.ClockGHz),
			report.GBps(m.MemBWSocket),
			fmt.Sprintf("%.2f", m.NUMAFactor),
			fmt.Sprintf("%.2f", m.SMTThroughput),
			m.DefaultConduit,
		})
	}
	report.Table(os.Stdout, "Machine models (Table 2.1)",
		[]string{"machine", "nodes", "sockets x cores x smt", "GHz", "mem GB/s/socket",
			"numa", "smt-gain", "conduit"}, rows)
	fmt.Println()

	rows = nil
	for _, name := range fabric.Conduits() {
		c, _ := fabric.ConduitByName(name)
		rows = append(rows, []string{
			c.Name, c.Latency.String(), c.SendOverhead.String(), c.MsgGap.String(),
			report.GBps(c.ConnBW), report.GBps(c.NICBW), report.GBps(c.LoopbackBW),
			fmt.Sprintf("%.3f", c.NICBeta),
		})
	}
	report.Table(os.Stdout, "Network conduit models",
		[]string{"conduit", "latency", "overhead", "gap", "conn GB/s", "nic GB/s",
			"loopback GB/s", "beta"}, rows)
	tracecli.Finish()
}

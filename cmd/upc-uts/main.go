// Command upc-uts regenerates the Unbalanced Tree Search studies: Figure
// 3.3 (parallel scalability, InfiniBand and Ethernet) and Table 3.2
// (work-stealing profiling).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/tracecli"
)

func main() {
	figure := flag.String("figure", "", "regenerate figure 3.3")
	table := flag.String("table", "", "regenerate table 3.2")
	quick := flag.Bool("quick", false, "use a ~400K-node tree instead of the paper's 4.35M")
	flag.Parse()
	tracecli.Start()
	var err error
	switch {
	case *figure == "3.3":
		err = experiments.Figure33(os.Stdout, *quick)
	case *table == "3.2":
		err = experiments.Table32(os.Stdout, *quick)
	case *figure == "" && *table == "":
		if err = experiments.Figure33(os.Stdout, *quick); err == nil {
			err = experiments.Table32(os.Stdout, *quick)
		}
	default:
		err = fmt.Errorf("unknown selection -figure=%q -table=%q", *figure, *table)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "upc-uts:", err)
		os.Exit(1)
	}
	tracecli.Finish()
}

// upcvet is the repository's invariant checker: a multichecker that
// runs the internal/analysis suite — wallclock, maporder, rawgo,
// affinity, spanpair, poolalloc, collalign, sharedrace — over the
// module's packages, test files included. The whole requested tree is
// loaded into one analysis.Program first, so the interprocedural
// analyzers (collalign, sharedrace) see cross-package call edges and
// the type-checker caches are shared across every unit.
// CI gates every PR on a clean run; see DESIGN.md "Determinism
// invariants" and §13 "Interprocedural concurrency checking" for what
// each rule protects and internal/analysis for the //upcvet:
// annotation grammar.
//
//	upcvet ./...                 # whole module (the CI invocation)
//	upcvet ./internal/...        # one subtree
//	upcvet -run maporder ./...   # a single analyzer
//	upcvet -format=sarif ./...   # SARIF 2.1.0 on stdout (code scanning)
//	upcvet -format=json ./...    # findings as a JSON array
//	upcvet -stats ./...          # per-analyzer wall-clock to stderr
//	upcvet -fix ./...            # append suppression annotations to
//	                             # every annotatable finding (prefer
//	                             # real fixes; see the analyzer docs)
//	upcvet help                  # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
)

var (
	fix     = flag.Bool("fix", false, "apply suggested fixes (appends //upcvet: annotations to flagged lines)")
	runOnly = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	format  = flag.String("format", "text", "output format: text, json or sarif")
	stats   = flag.Bool("stats", false, "print load and per-analyzer wall-clock timings to stderr")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 1 && args[0] == "help" {
		help()
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "upcvet: unknown -format %q (want text, json or sarif)\n", *format)
		os.Exit(2)
	}
	analyzers, err := selectAnalyzers(*runOnly)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upcvet:", err)
		os.Exit(2)
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "upcvet:", err)
		os.Exit(2)
	}

	// Resolve every pattern to package directories up front,
	// deduplicated, so overlapping patterns load each package once and
	// the whole tree lands in a single Program: call-graph edges and
	// analyzer summaries then span all requested packages.
	loadStart := time.Now()
	seen := map[string]bool{}
	var dirs []string
	for _, pattern := range args {
		ds, err := analysis.PackageDirs(loader.Root, pattern)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upcvet:", err)
			os.Exit(2)
		}
		for _, d := range ds {
			if !seen[d] {
				seen[d] = true
				dirs = append(dirs, d)
			}
		}
	}
	sort.Strings(dirs)
	var units []*analysis.Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(loader.Root, dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upcvet:", err)
			os.Exit(2)
		}
		path := loader.Module
		if rel != "." {
			path = loader.Module + "/" + filepath.ToSlash(rel)
		}
		us, err := loader.Load(dir, path, true)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upcvet:", err)
			os.Exit(2)
		}
		units = append(units, us...)
	}
	prog := analysis.NewProgram(units)
	prog.Stats["load"] = time.Since(loadStart)

	var diags []analysis.Diagnostic
	for _, unit := range units {
		ds, err := prog.RunUnit(unit, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upcvet:", err)
			os.Exit(2)
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})

	if *stats {
		printStats(prog, analyzers)
	}

	switch *format {
	case "json":
		if err := printJSON(loader.Root, diags); err != nil {
			fmt.Fprintln(os.Stderr, "upcvet:", err)
			os.Exit(2)
		}
	case "sarif":
		if err := printSARIF(loader.Root, analyzers, diags); err != nil {
			fmt.Fprintln(os.Stderr, "upcvet:", err)
			os.Exit(2)
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s: %s\n", relPath(loader.Root, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}
	if *fix {
		n, err := applyFixes(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upcvet:", err)
			os.Exit(2)
		}
		fmt.Printf("upcvet: applied %d fix(es)\n", n)
		return
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "upcvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func relPath(root, name string) string {
	if r, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(name)
}

func printStats(prog *analysis.Program, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "upcvet: %-12s %10s (%d units)\n", "load", prog.Stats["load"].Round(time.Millisecond), len(prog.Units))
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "upcvet: %-12s %10s\n", a.Name, prog.Stats[a.Name].Round(time.Millisecond))
	}
}

// printJSON emits the findings as a JSON array of {file, line, column,
// analyzer, message} objects, one per finding, sorted by position.
func printJSON(root string, diags []analysis.Diagnostic) error {
	type finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		out = append(out, finding{
			File:     relPath(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// printSARIF emits a minimal SARIF 2.1.0 log: one run, one rule per
// selected analyzer, one result per finding with a repo-relative
// forward-slash URI. GitHub code scanning accepts this shape directly.
func printSARIF(root string, analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) error {
	type sarifRule struct {
		ID               string            `json:"id"`
		ShortDescription map[string]string `json:"shortDescription"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifLocation struct {
		PhysicalLocation struct {
			ArtifactLocation struct {
				URI string `json:"uri"`
			} `json:"artifactLocation"`
			Region sarifRegion `json:"region"`
		} `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string            `json:"ruleId"`
		Level     string            `json:"level"`
		Message   map[string]string `json:"message"`
		Locations []sarifLocation   `json:"locations"`
	}
	type sarifLog struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name           string      `json:"name"`
					InformationURI string      `json:"informationUri"`
					Rules          []sarifRule `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []sarifResult `json:"results"`
		} `json:"runs"`
	}

	var log sarifLog
	log.Schema = "https://json.schemastore.org/sarif-2.1.0.json"
	log.Version = "2.1.0"
	log.Runs = make([]struct {
		Tool struct {
			Driver struct {
				Name           string      `json:"name"`
				InformationURI string      `json:"informationUri"`
				Rules          []sarifRule `json:"rules"`
			} `json:"driver"`
		} `json:"tool"`
		Results []sarifResult `json:"results"`
	}, 1)
	run := &log.Runs[0]
	run.Tool.Driver.Name = "upcvet"
	run.Tool.Driver.InformationURI = "https://example.invalid/repro/cmd/upcvet"
	for _, a := range analyzers {
		run.Tool.Driver.Rules = append(run.Tool.Driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: map[string]string{"text": a.Doc},
		})
	}
	run.Results = make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = relPath(root, d.Pos.Filename)
		loc.PhysicalLocation.Region = sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column}
		run.Results = append(run.Results, sarifResult{
			RuleID:    d.Analyzer,
			Level:     "warning",
			Message:   map[string]string{"text": d.Message},
			Locations: []sarifLocation{loc},
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.All, nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := analysis.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// applyFixes performs the suggested edits. The only edit shape the
// suite produces is "append an annotation to line L of file F",
// encoded with a negative Offset carrying the line number; resolve it
// against the file contents and rewrite each file once.
func applyFixes(diags []analysis.Diagnostic) (int, error) {
	type lineFix struct {
		line int
		text string
	}
	perFile := map[string][]lineFix{}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			if e.Offset >= 0 {
				return 0, fmt.Errorf("unsupported edit shape in %s", d.Pos.Filename)
			}
			perFile[e.File] = append(perFile[e.File], lineFix{line: -e.Offset, text: e.NewText})
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	applied := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		lines := strings.Split(string(data), "\n")
		done := map[int]bool{}
		for _, f := range perFile[file] {
			if f.line < 1 || f.line > len(lines) || done[f.line] {
				continue
			}
			if strings.Contains(lines[f.line-1], "//upcvet:") {
				continue
			}
			lines[f.line-1] += f.text
			done[f.line] = true
			applied++
		}
		if err := os.WriteFile(file, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: upcvet [-fix] [-run a,b] [-format text|json|sarif] [-stats] [package patterns]\n")
	flag.PrintDefaults()
}

func help() {
	fmt.Println("upcvet enforces the simulation's determinism and UPC-runtime invariants.")
	fmt.Println()
	for _, a := range analysis.All {
		fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		if len(a.Aliases) > 0 {
			fmt.Printf("%-10s (annotation alias: //upcvet:%s)\n", "", strings.Join(a.Aliases, ", //upcvet:"))
		}
	}
	fmt.Println()
	fmt.Println("Suppress a finding with //upcvet:NAME [-- reason] on the flagged line")
	fmt.Println("or the line above it; see internal/analysis for the grammar.")
}

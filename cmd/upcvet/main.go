// upcvet is the repository's invariant checker: a multichecker that
// runs the internal/analysis suite — wallclock, maporder, rawgo,
// affinity, spanpair, poolalloc — over the module's packages, test
// files included.
// CI gates every PR on a clean run; see DESIGN.md "Determinism
// invariants" for what each rule protects and internal/analysis for
// the //upcvet: annotation grammar.
//
//	upcvet ./...                 # whole module (the CI invocation)
//	upcvet ./internal/...        # one subtree
//	upcvet -run maporder ./...   # a single analyzer
//	upcvet -fix ./...            # append suppression annotations to
//	                             # every annotatable finding (prefer
//	                             # real fixes; see the analyzer docs)
//	upcvet help                  # describe the analyzers
//
// Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

var (
	fix     = flag.Bool("fix", false, "apply suggested fixes (appends //upcvet: annotations to flagged lines)")
	runOnly = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 1 && args[0] == "help" {
		help()
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	analyzers, err := selectAnalyzers(*runOnly)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upcvet:", err)
		os.Exit(2)
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "upcvet:", err)
		os.Exit(2)
	}
	var diags []analysis.Diagnostic
	for _, pattern := range args {
		dirs, err := analysis.PackageDirs(loader.Root, pattern)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upcvet:", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			rel, err := filepath.Rel(loader.Root, dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "upcvet:", err)
				os.Exit(2)
			}
			path := loader.Module
			if rel != "." {
				path = loader.Module + "/" + filepath.ToSlash(rel)
			}
			units, err := loader.Load(dir, path, true)
			if err != nil {
				fmt.Fprintln(os.Stderr, "upcvet:", err)
				os.Exit(2)
			}
			for _, unit := range units {
				ds, err := analysis.RunAnalyzers(unit, analyzers)
				if err != nil {
					fmt.Fprintln(os.Stderr, "upcvet:", err)
					os.Exit(2)
				}
				diags = append(diags, ds...)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	for _, d := range diags {
		rel := d.Pos.Filename
		if r, err := filepath.Rel(loader.Root, rel); err == nil {
			rel = r
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", rel, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if *fix {
		n, err := applyFixes(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upcvet:", err)
			os.Exit(2)
		}
		fmt.Printf("upcvet: applied %d fix(es)\n", n)
		return
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "upcvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func selectAnalyzers(names string) ([]*analysis.Analyzer, error) {
	if names == "" {
		return analysis.All, nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		a, ok := analysis.ByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// applyFixes performs the suggested edits. The only edit shape the
// suite produces is "append an annotation to line L of file F",
// encoded with a negative Offset carrying the line number; resolve it
// against the file contents and rewrite each file once.
func applyFixes(diags []analysis.Diagnostic) (int, error) {
	type lineFix struct {
		line int
		text string
	}
	perFile := map[string][]lineFix{}
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			if e.Offset >= 0 {
				return 0, fmt.Errorf("unsupported edit shape in %s", d.Pos.Filename)
			}
			perFile[e.File] = append(perFile[e.File], lineFix{line: -e.Offset, text: e.NewText})
		}
	}
	files := make([]string, 0, len(perFile))
	for f := range perFile {
		files = append(files, f)
	}
	sort.Strings(files)
	applied := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return applied, err
		}
		lines := strings.Split(string(data), "\n")
		done := map[int]bool{}
		for _, f := range perFile[file] {
			if f.line < 1 || f.line > len(lines) || done[f.line] {
				continue
			}
			if strings.Contains(lines[f.line-1], "//upcvet:") {
				continue
			}
			lines[f.line-1] += f.text
			done[f.line] = true
			applied++
		}
		if err := os.WriteFile(file, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
			return applied, err
		}
	}
	return applied, nil
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: upcvet [-fix] [-run a,b] [package patterns]\n")
	flag.PrintDefaults()
}

func help() {
	fmt.Println("upcvet enforces the simulation's determinism and UPC-runtime invariants.")
	fmt.Println()
	for _, a := range analysis.All {
		fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		if len(a.Aliases) > 0 {
			fmt.Printf("%-10s (annotation alias: //upcvet:%s)\n", "", strings.Join(a.Aliases, ", //upcvet:"))
		}
	}
	fmt.Println()
	fmt.Println("Suppress a finding with //upcvet:NAME [-- reason] on the flagged line")
	fmt.Println("or the line above it; see internal/analysis for the grammar.")
}

// Cannon: Cannon's matrix-multiplication algorithm on the 2D
// Cartesian-blocked shared arrays (the multi-dimensional blocking the
// thesis's conclusions propose combining with hierarchical parallelism).
// A and B tiles circulate systolically around a 2×2 thread grid; each
// thread accumulates its C tile and the result is verified against a
// serial multiply. Run with:
//
//	go run ./examples/cannon
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/topo"
	"repro/internal/upc"
)

const (
	n  = 64 // matrix side
	pg = 2  // processor grid side (pg*pg UPC threads)
)

func main() {
	tile := n / pg
	// Deterministic input matrices.
	a := make([]float64, n*n)
	bm := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i%13) - 6
		bm[i] = float64((i*7)%11) - 5
	}
	want := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			for j := 0; j < n; j++ {
				want[i*n+j] += aik * bm[k*n+j]
			}
		}
	}

	c := make([]float64, n*n)
	cfg := upc.Config{
		Machine:        topo.Lehman(),
		Threads:        pg * pg,
		ThreadsPerNode: 2,
		Backend:        upc.Processes,
		PSHM:           true,
		Seed:           11,
	}
	stats, err := upc.Run(cfg, func(t *upc.Thread) {
		A := upc.Alloc2D[float64](t, n, n, pg, pg, 8)
		B := upc.Alloc2D[float64](t, n, n, pg, pg, 8)
		gr, gc := A.GridCoord(t.ID)

		// Load tiles, pre-skewed per Cannon: A's row gr shifts left by gr,
		// B's column gc shifts up by gc.
		loadTile := func(dst []float64, src []float64, tr, tc int) {
			for i := 0; i < tile; i++ {
				copy(dst[i*tile:(i+1)*tile], src[(tr*tile+i)*n+tc*tile:(tr*tile+i)*n+(tc+1)*tile])
			}
		}
		loadTile(A.Tile(t), a, gr, (gc+gr)%pg)
		loadTile(B.Tile(t), bm, (gr+gc)%pg, gc)
		acc := make([]float64, tile*tile)
		t.Barrier()

		bufA := make([]float64, tile*tile)
		bufB := make([]float64, tile*tile)
		for step := 0; step < pg; step++ {
			// Multiply-accumulate the resident tiles (real math), charging
			// the flops.
			ta, tb := A.Tile(t), B.Tile(t)
			for i := 0; i < tile; i++ {
				for k := 0; k < tile; k++ {
					aik := ta[i*tile+k]
					for j := 0; j < tile; j++ {
						acc[i*tile+j] += aik * tb[k*tile+j]
					}
				}
			}
			t.Compute(2 * float64(tile*tile*tile) / cfg.Machine.FlopsPerCore)
			if step == pg-1 {
				break
			}
			// Systolic shift: pull A from the right neighbor and B from
			// below (one-sided gets), then install after a barrier.
			upc.GetRect(t, A, bufA, A.RowNeighbor(t, 1), 0, 0, tile, tile)
			upc.GetRect(t, B, bufB, B.ColNeighbor(t, 1), 0, 0, tile, tile)
			t.Barrier()
			copy(A.Tile(t), bufA)
			copy(B.Tile(t), bufB)
			t.Barrier()
		}

		// Gather the result.
		for i := 0; i < tile; i++ {
			copy(c[(gr*tile+i)*n+gc*tile:(gr*tile+i)*n+(gc+1)*tile], acc[i*tile:(i+1)*tile])
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	worst := 0.0
	for i := range want {
		if d := math.Abs(c[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-9 {
		log.Fatalf("cannon result differs from serial by %g", worst)
	}
	fmt.Printf("cannon: %dx%d matmul on a %dx%d grid — matches serial (max err %g)\n",
		n, n, pg, pg, worst)
	fmt.Printf("simulated time: %v\n", stats.Elapsed)
}

// Heat2d: Jacobi heat diffusion on an N×N grid, decomposed into row
// blocks across UPC threads, with halo exchange through one-sided puts
// and a node-local thread group used for a cheap group barrier between
// the intra-node halo updates — the Chapter 3 thread-group technique on a
// stencil workload. The parallel result is verified against a serial
// solver. Run with:
//
//	go run ./examples/heat2d
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/group"
	"repro/internal/topo"
	"repro/internal/upc"
)

const (
	n     = 128 // grid side
	steps = 50
)

// serial computes the reference solution.
func serial() []float64 {
	cur := initial()
	next := initial() // boundary rows persist across swaps
	for s := 0; s < steps; s++ {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				next[i*n+j] = 0.25 * (cur[(i-1)*n+j] + cur[(i+1)*n+j] +
					cur[i*n+j-1] + cur[i*n+j+1])
			}
		}
		cur, next = next, cur
	}
	return cur
}

func initial() []float64 {
	g := make([]float64, n*n)
	for j := 0; j < n; j++ {
		g[j] = 100 // hot top edge
	}
	return g
}

func main() {
	threads := 8
	rows := n / threads
	cfg := upc.Config{
		Machine:        topo.Lehman(),
		Threads:        threads,
		ThreadsPerNode: 4,
		Backend:        upc.Processes,
		PSHM:           true,
		Seed:           7,
	}

	final := make([]float64, n*n)
	stats, err := upc.Run(cfg, func(t *upc.Thread) {
		g := group.NodeGroup(t)

		// Each thread's partition holds its rows plus two halo rows:
		// layout [halo-top | rows... | halo-bottom], each row n wide.
		cur := upc.Alloc[float64](t, threads*(rows+2)*n, 8, (rows+2)*n)
		next := upc.Alloc[float64](t, threads*(rows+2)*n, 8, (rows+2)*n)

		// First touch: global row index r = t.ID*rows + local.
		loc := cur.Local(t)
		ref := initial()
		for r := 0; r < rows; r++ {
			copy(loc[(r+1)*n:(r+2)*n], ref[(t.ID*rows+r)*n:(t.ID*rows+r+1)*n])
		}
		t.Barrier()

		a, b := cur, next
		for s := 0; s < steps; s++ {
			// Halo exchange: push our boundary rows into the neighbors'
			// halo slots (one-sided puts; intra-node ones ride PSHM).
			la := a.Local(t)
			if t.ID > 0 {
				//upcvet:sharedrace -- halo slot (rows+1)*n in the neighbor is disjoint from the boundary rows read here
				upc.PutT(t, a, t.ID-1, (rows+1)*n, la[n:2*n])
			}
			if t.ID < t.N-1 {
				//upcvet:sharedrace -- halo slot 0 in the neighbor is disjoint from the boundary rows read here
				upc.PutT(t, a, t.ID+1, 0, la[rows*n:(rows+1)*n])
			}
			// The group barrier covers intra-node neighbors cheaply; the
			// global barrier orders the inter-node halos.
			g.Barrier()
			t.Barrier()

			// Stencil update on interior points; charge the streaming cost.
			lb := b.Local(t)
			for r := 1; r <= rows; r++ {
				gr := t.ID*rows + r - 1 // global row
				if gr == 0 || gr == n-1 {
					copy(lb[r*n:(r+1)*n], la[r*n:(r+1)*n]) // fixed boundary
					continue
				}
				for j := 1; j < n-1; j++ {
					lb[r*n+j] = 0.25 * (la[(r-1)*n+j] + la[(r+1)*n+j] +
						la[r*n+j-1] + la[r*n+j+1])
				}
				lb[r*n] = la[r*n]
				lb[r*n+n-1] = la[r*n+n-1]
			}
			t.MemStream(int64(rows) * n * 8 * 5)
			a, b = b, a
			t.Barrier()
		}

		// Collect the final rows.
		la := a.Local(t)
		for r := 0; r < rows; r++ {
			copy(final[(t.ID*rows+r)*n:(t.ID*rows+r+1)*n], la[(r+1)*n:(r+2)*n])
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	want := serial()
	worst := 0.0
	for i := range want {
		if d := math.Abs(final[i] - want[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-12 {
		log.Fatalf("parallel result differs from serial by %g", worst)
	}
	fmt.Printf("heat2d: %dx%d grid, %d steps on %d threads — matches serial (max err %g)\n",
		n, n, steps, threads, worst)
	fmt.Printf("simulated time: %v\n", stats.Elapsed)
}

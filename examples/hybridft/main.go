// Hybridft: the Chapter 4 hierarchical UPC/sub-threads model on the NAS
// FT benchmark — first a verified distributed 3D FFT round trip (real
// data through the full exchange pipeline, computed by OpenMP-style
// sub-threads under UPC masters), then a class-S performance comparison
// of pure process UPC against the hybrid on the same core count. Run
// with:
//
//	go run ./examples/hybridft
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/ft"
	"repro/internal/topo"
)

func main() {
	clsT, _ := ft.ClassByName("T")
	verify, err := ft.Run(ft.Config{
		Machine:    topo.Lehman(),
		Class:      clsT,
		Variant:    ft.HybridOMP,
		Impl:       ft.Overlap,
		Threads:    2, // masters
		PerNode:    1,
		SubThreads: 4, // OpenMP sub-threads each, issuing their own puts
		Verify:     true,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !verify.Verified {
		log.Fatalf("FFT round trip failed: max error %g", verify.MaxErr)
	}
	fmt.Printf("verified: distributed 3D FFT round trip on class %v, max error %.2g\n",
		clsT, verify.MaxErr)

	clsS, _ := ft.ClassByName("S")
	pure, err := ft.Run(ft.Config{
		Machine: topo.Lehman(), Class: clsS, Variant: ft.UPCProcesses,
		Threads: 16, PerNode: 8, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	hybrid, err := ft.Run(ft.Config{
		Machine: topo.Lehman(), Class: clsS, Variant: ft.HybridOMP,
		Threads: 4, PerNode: 2, SubThreads: 4, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("class S on 16 cores (2 Lehman nodes):\n")
	fmt.Printf("  pure UPC (16 procs):        %8v  comm %v\n", pure.Elapsed, pure.Comm)
	fmt.Printf("  hybrid UPC*OpenMP (4x4):    %8v  comm %v\n", hybrid.Elapsed, hybrid.Comm)
	fmt.Printf("  hybrid speedup: %.2fx\n",
		pure.Elapsed.Seconds()/hybrid.Elapsed.Seconds())
}

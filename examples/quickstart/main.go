// Quickstart: the smallest complete program on the UPC runtime — an SPMD
// launch on the modeled Lehman cluster, a block-cyclic shared array,
// one-sided puts into a neighbor's partition, barriers, a castability
// check, and a global reduction. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/topo"
	"repro/internal/upc"
)

func main() {
	cfg := upc.Config{
		Machine:        topo.Lehman(), // 12 dual-socket Nehalem nodes, QDR IB
		Threads:        8,
		ThreadsPerNode: 4, // threads 0-3 on node 0, 4-7 on node 1
		Backend:        upc.Processes,
		PSHM:           true, // inter-process shared memory within a node
		Seed:           42,
	}

	stats, err := upc.Run(cfg, func(t *upc.Thread) {
		// Every thread runs this function, SPMD-style.
		if t.ID == 0 {
			fmt.Printf("hello from %d UPC threads on %s\n", t.N, cfg.Machine.Name)
		}

		// A shared array of 64 float64s, 8-element blocks: element i has
		// affinity to thread (i/8) mod THREADS.
		a := upc.Alloc[float64](t, 64, 8, 8)

		// Initialize the local partition (plain slice access).
		for i := range a.Local(t) {
			a.Local(t)[i] = float64(t.ID)
		}
		t.Barrier()

		// One-sided put: write our ID into our right neighbor's partition.
		right := (t.ID + 1) % t.N
		upc.PutT(t, a, right, 0, []float64{float64(t.ID) * 100})
		t.Barrier()

		left := (t.ID + t.N - 1) % t.N
		if got := a.Local(t)[0]; got != float64(left)*100 {
			log.Fatalf("thread %d: expected %v from left neighbor, got %v",
				t.ID, float64(left)*100, got)
		}

		// Castability: same-node partitions privatize to direct slices.
		cast := 0
		for p := 0; p < t.N; p++ {
			if a.Cast(t, p) != nil {
				cast++
			}
		}

		// A reduction over all threads.
		sum := upc.AllReduceSum(t, float64(t.ID))
		if t.ID == 0 {
			fmt.Printf("thread 0 can cast %d of %d partitions; sum of ids = %v\n",
				cast, t.N, sum)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated time: %v\n", stats.Elapsed)
}

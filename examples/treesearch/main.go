// Treesearch: the Unbalanced Tree Search benchmark through its public
// API, comparing the baseline round-robin stealing strategy against the
// thesis's locality-conscious strategy with rapid diffusion on the
// Ethernet conduit, where locality matters most (Section 3.3.2). Run
// with:
//
//	go run ./examples/treesearch
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/uts"
	"repro/internal/topo"
)

func main() {
	tree := uts.Small(200000)
	nodes, depth := tree.CountSequential()
	fmt.Printf("tree: %d nodes, max depth %d (binomial, SHA-1 chained)\n", nodes, depth)

	for _, strategy := range uts.Strategies() {
		r, err := uts.Run(uts.Config{
			Machine:     topo.Pyramid(),
			ConduitName: "gige",
			Threads:     32,
			PerNode:     4,
			Strategy:    strategy,
			Granularity: 20, // the paper's Ethernet steal chunk
			Tree:        tree,
			Seed:        1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s %6.2f Mnodes/s  steals=%5d (%.0f%% local)\n",
			strategy, r.MNodesPerSec,
			r.Counters.Get("steals"), r.LocalStealPct())
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Affinity encodes the paper's castability contract (Ch. 3, the
// Berkeley bupc_cast extension): a privatized pointer returned by
// Shared.Cast is only valid for threads whose affinity the runtime can
// map — self, and same-node threads under shared memory — and only for
// the duration of the scope that established it. The analyzer flags:
//
//   - Cast results stored in package-level variables, or captured by
//     closures that escape the establishing function (returned, or
//     stored package-level): the privatized pointer would outlive the
//     thread-group scope that made it castable;
//   - Cast results dereferenced without an affinity check — no
//     `!= nil` guard on the result and no preceding Thread.Castable
//     call in the function. Cast returns nil for non-castable owners,
//     so an unguarded index is a latent panic that appears only when
//     the layout crosses a node boundary;
//   - Shared.Partition calls outside internal/upc: Partition bypasses
//     the affinity model entirely (it exists for verification code and
//     delivery-time handlers) and must justify itself with
//     //upcvet:affinity.
var Affinity = &Analyzer{
	Name: "affinity",
	Doc: "flag privatized Cast pointers that escape their scope or are " +
		"dereferenced unchecked, and affinity-bypassing Partition calls",
	Run: runAffinity,
}

func runAffinity(pass *Pass) error {
	inUPC := strings.TrimSuffix(pass.Path, "_test") == "repro/internal/upc"
	for _, fd := range funcBodies(pass.Files) {
		checkAffinityFunc(pass, fd, inUPC)
	}
	return nil
}

func checkAffinityFunc(pass *Pass, fd *ast.FuncDecl, inUPC bool) {
	// Lexical positions of Castable() calls: a Cast dominated by an
	// explicit castability query is considered checked.
	var castableCalls []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Castable" {
				castableCalls = append(castableCalls, call.Pos())
			}
		}
		return true
	})
	checkedBy := func(pos token.Pos) bool {
		for _, p := range castableCalls {
			if p < pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Partition":
			if !inUPC && isMethodCall(pass.Info, sel) {
				pass.ReportAnnotatable(call.Pos(),
					"Partition bypasses the affinity model (valid only for verification and delivery-time handlers); use Local/Cast/transfer APIs or annotate //upcvet:affinity")
			}
		case "Cast":
			if isMethodCall(pass.Info, sel) {
				checkCastUse(pass, fd, call, checkedBy(call.Pos()))
			}
		}
		return true
	})
}

// isMethodCall reports whether the selector is a method (not a package
// function from some imported package named Cast/Partition).
func isMethodCall(info *types.Info, sel *ast.SelectorExpr) bool {
	return info.Selections[sel] != nil
}

// checkCastUse validates one Cast call site against the scope and
// nil-check rules.
func checkCastUse(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, castableChecked bool) {
	parent := enclosingStmtParent(fd.Body, call)

	// Direct dereference: s.Cast(t, o)[i] with no intervening check.
	if idx, ok := parent.(*ast.IndexExpr); ok && ast.Unparen(idx.X) == call {
		if !castableChecked {
			pass.ReportAnnotatable(call.Pos(),
				"Cast result dereferenced without affinity check: Cast returns nil for non-castable owners; guard with Castable or a nil check")
		}
		return
	}

	as, ok := parent.(*ast.AssignStmt)
	if !ok {
		return
	}
	// Which LHS receives this call? Parallel assignments pair up by
	// index; a single call with multiple LHS cannot be Cast (one result).
	target := -1
	for i, rhs := range as.Rhs {
		if ast.Unparen(rhs) == call && i < len(as.Lhs) {
			target = i
		}
	}
	if target < 0 {
		return
	}
	switch lhs := as.Lhs[target].(type) {
	case *ast.Ident:
		obj := pass.Info.ObjectOf(lhs)
		if obj == nil {
			return
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
			pass.Reportf(call.Pos(),
				"Cast result stored in package-level variable %s: privatized pointers are only valid within the scope whose thread group established castability", lhs.Name)
			return
		}
		checkCastVar(pass, fd, call, obj, castableChecked)
	default:
		// Stores into fields/slices of local structures (e.g. a group
		// cast table built and owned by the run) are in-scope by
		// construction; package-level targets would need a package-level
		// base, which Go surfaces as the Ident case above.
	}
}

// checkCastVar tracks a local variable holding a Cast result: flag
// escapes via package-level closures or returned closures, and
// dereferences with no nil guard.
func checkCastVar(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, obj types.Object, castableChecked bool) {
	var nilCheckPos, firstDerefPos token.Pos
	escape := token.NoPos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// v == nil / v != nil in any condition.
			if isNilComparison(pass.Info, n, obj) && (nilCheckPos == token.NoPos || n.Pos() < nilCheckPos) {
				nilCheckPos = n.Pos()
			}
		case *ast.CallExpr:
			// len(v) used as a guard counts as a check.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "len" && len(n.Args) == 1 {
				if aid, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok && pass.Info.ObjectOf(aid) == obj {
					if nilCheckPos == token.NoPos || n.Pos() < nilCheckPos {
						nilCheckPos = n.Pos()
					}
				}
			}
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
				if firstDerefPos == token.NoPos || n.Pos() < firstDerefPos {
					firstDerefPos = n.Pos()
				}
			}
		case *ast.FuncLit:
			if usesObject(pass.Info, n, obj) && closureEscapes(pass, fd, n) {
				escape = n.Pos()
			}
		}
		return true
	})
	if escape != token.NoPos {
		pass.Reportf(escape,
			"closure capturing Cast result %s escapes the establishing scope; privatized pointers must not outlive their thread group", obj.Name())
	}
	if firstDerefPos != token.NoPos && !castableChecked &&
		(nilCheckPos == token.NoPos || nilCheckPos > firstDerefPos) {
		pass.ReportAnnotatable(call.Pos(),
			"Cast result %s dereferenced without affinity check: Cast returns nil for non-castable owners; guard with Castable or a nil check", obj.Name())
	}
}

func isNilComparison(info *types.Info, be *ast.BinaryExpr, obj types.Object) bool {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return false
	}
	matches := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.ObjectOf(id) == obj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (matches(be.X) && isNil(be.Y)) || (matches(be.Y) && isNil(be.X))
}

func usesObject(info *types.Info, node ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// closureEscapes reports whether the function literal leaves the
// enclosing function: returned, or assigned to a package-level var.
func closureEscapes(pass *Pass, fd *ast.FuncDecl, fl *ast.FuncLit) bool {
	escapes := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if containsNode(r, fl) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !containsNode(rhs, fl) || i >= len(n.Lhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					if v, ok := pass.Info.ObjectOf(id).(*types.Var); ok && v.Parent() == pass.Pkg.Scope() {
						escapes = true
					}
				}
			}
		}
		return !escapes
	})
	return escapes
}

func containsNode(root ast.Expr, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// enclosingStmtParent returns the immediate interesting parent of the
// call: the IndexExpr that dereferences it or the AssignStmt that
// stores it, looking through parentheses.
func enclosingStmtParent(body *ast.BlockStmt, call *ast.CallExpr) ast.Node {
	var parent ast.Node
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if n == call && len(stack) > 0 {
			for i := len(stack) - 1; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.ParenExpr:
					continue
				default:
					parent = stack[i]
				}
				break
			}
		}
		stack = append(stack, n)
		return true
	})
	return parent
}

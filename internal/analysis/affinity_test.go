package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAffinity(t *testing.T) {
	// Contract violations: package-level stores, unguarded dereferences,
	// escaping closures, Partition outside internal/upc.
	analysistest.Run(t, "testdata/affinity/bad", "repro/internal/apps/affdata", analysis.Affinity)
	// Guarded and annotated uses: silent.
	analysistest.Run(t, "testdata/affinity/ok", "repro/internal/apps/affok", analysis.Affinity)
	// Partition inside internal/upc itself: exempt.
	analysistest.Run(t, "testdata/affinity/upc", "repro/internal/upc", analysis.Affinity)
}

// Package analysis is upcvet's static-analysis suite: the rules that
// keep the simulation deterministic and the UPC runtime model honest,
// enforced by machine instead of by code review. The repository's whole
// reproduction method rests on invariants no compiler checks — virtual
// time only, deterministic event order, all concurrency through
// sim.Proc or the sweep pool, and the paper's castability contract —
// and each analyzer encodes one of them (see wallclock.go, maporder.go,
// rawgo.go, affinity.go, spanpair.go, poolalloc.go). On top of the
// per-package rules, the interprocedural concurrency checkers
// (collalign.go, sharedrace.go) verify the UPC synchronization model
// itself — textually aligned collectives and phase-separated shared
// access — across function and package boundaries via the call-graph
// layer in callgraph.go.
//
// The framework mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, suggested fixes) but is built on the
// standard library's go/ast and go/types alone, so the linter needs no
// module downloads: package loading resolves repository-internal
// imports by walking the module tree and standard-library imports
// through the source importer (see load.go).
//
// # Annotation grammar
//
// A finding is suppressed by an annotation comment on the flagged line
// or on the line directly above it:
//
//	//upcvet:NAME[,NAME...] [-- reason]
//
// where NAME is an analyzer name (wallclock, maporder, rawgo, affinity,
// spanpair, poolalloc, collalign, sharedrace) or one of its aliases (maporder also answers to "ordered",
// the spelling used at loop sites: //upcvet:ordered). The free-text
// reason after "--" is for the human reader; upcvet ignores it but the
// reviewer should not — an annotation without a justification is a
// smell. Examples:
//
//	start := time.Now() //upcvet:wallclock -- real benchmarking, not simulation
//	//upcvet:ordered -- accumulates into a map; iteration order is invisible
//	for k, v := range m { ... }
//
// upcvet -fix appends the matching annotation to each flagged line;
// prefer a real fix (sorted keys, sim.Proc, a Castable guard) and keep
// annotations for the cases where the flagged construct is the point.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and annotations.
	Name string
	// Doc is the one-paragraph description `upcvet help` prints.
	Doc string
	// Aliases are additional annotation names that suppress this
	// analyzer's findings (e.g. maporder's loop-site spelling "ordered").
	Aliases []string
	// Run reports the analyzer's findings on one package via pass.Report.
	Run func(pass *Pass) error
}

// All lists every analyzer in the suite, in reporting order.
var All = []*Analyzer{Wallclock, Maporder, Rawgo, Affinity, Spanpair, Poolalloc, Collalign, Sharedrace}

// ByName resolves an analyzer by name.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range All {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Path is the package's import path ("repro/internal/sim"). Test
	// units of a package analyze under the same path; external test
	// packages analyze under path + "_test".
	Path string
	Pkg  *types.Package
	Info *types.Info
	// Prog is the whole-run Program: every loaded unit, the module-wide
	// call graph and the cross-package summary store (callgraph.go).
	// The interprocedural analyzers reach other packages through it.
	Prog *Program

	diags *[]Diagnostic
	notes map[string]map[int][]string // file -> line -> annotation names
	spans map[string][]lineSpan       // file -> multi-line simple-statement spans
}

// A lineSpan is the line range of one multi-line simple statement; an
// annotation on (or above) its first line suppresses findings anywhere
// inside it.
type lineSpan struct{ start, end int }

// A Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fix, when non-nil, is a textual edit that silences the finding
	// (typically by appending the suppression annotation). Applied by
	// upcvet -fix.
	Fix *SuggestedFix
}

// A SuggestedFix is a set of textual edits.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// A TextEdit replaces the bytes [Offset, End) of File with NewText.
type TextEdit struct {
	File    string
	Offset  int
	End     int
	NewText string
}

// Reportf records a finding at pos unless an annotation suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportAnnotatable records a finding and attaches the standard fix:
// appending this analyzer's suppression annotation to the flagged line.
func (p *Pass) ReportAnnotatable(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	fix := &SuggestedFix{
		Message: fmt.Sprintf("annotate line with //upcvet:%s", p.annotationName()),
		Edits: []TextEdit{{
			File:    position.Filename,
			NewText: " //upcvet:" + p.annotationName(),
			// Offset/End are resolved by the applier to the end of the
			// flagged line; a token offset cannot express "end of line"
			// without the file contents.
			Offset: -position.Line, // negative marker: line-append edit
			End:    -position.Line,
		}},
	}
	p.report(pos, fix, format, args...)
}

// annotationName is the name -fix writes: the first alias if any (the
// loop-site spelling reads better there), else the analyzer name.
func (p *Pass) annotationName() string {
	if len(p.Analyzer.Aliases) > 0 {
		return p.Analyzer.Aliases[0]
	}
	return p.Analyzer.Name
}

func (p *Pass) report(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// suppressed reports whether an //upcvet: annotation naming this
// analyzer (or an alias) sits on the finding's line, the line above it,
// or — when the finding falls inside a multi-line simple statement (a
// wrapped call, a function-literal argument) — on the statement's first
// line or the line above that. Without the span rule an annotation on a
// multi-line statement only reached the first line's diagnostics.
func (p *Pass) suppressed(pos token.Position) bool {
	lines, ok := p.notes[pos.Filename]
	if !ok {
		return false
	}
	candidates := []int{pos.Line, pos.Line - 1}
	for _, s := range p.spans[pos.Filename] {
		if s.start < pos.Line && pos.Line <= s.end {
			candidates = append(candidates, s.start, s.start-1)
		}
	}
	for _, line := range candidates {
		for _, name := range lines[line] {
			if name == p.Analyzer.Name {
				return true
			}
			for _, alias := range p.Analyzer.Aliases {
				if name == alias {
					return true
				}
			}
		}
	}
	return false
}

// suppressedAt lets an analyzer test suppression at a secondary
// position — sharedrace findings pair two accesses and honor an
// annotation on either one.
func (p *Pass) suppressedAt(pos token.Pos) bool {
	return p.suppressed(p.Fset.Position(pos))
}

// stmtSpans indexes the multi-line simple statements of each file.
// Control-flow statements (if/for/switch/blocks) are deliberately
// excluded: an annotation above a loop should not blanket its whole
// body, only a single wrapped statement.
func stmtSpans(fset *token.FileSet, files []*ast.File) map[string][]lineSpan {
	spans := map[string][]lineSpan{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeferStmt, *ast.GoStmt, *ast.DeclStmt:
				start := fset.Position(n.Pos())
				end := fset.Position(n.End())
				if end.Line > start.Line {
					spans[start.Filename] = append(spans[start.Filename], lineSpan{start.Line, end.Line})
				}
			}
			return true
		})
	}
	return spans
}

const annotationPrefix = "//upcvet:"

// collectAnnotations indexes every //upcvet: comment by file and line.
func collectAnnotations(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	notes := map[string]map[int][]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAnnotation(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := notes[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					notes[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
			}
		}
	}
	return notes
}

// parseAnnotation extracts the names of one "//upcvet:a,b -- reason"
// comment.
func parseAnnotation(text string) ([]string, bool) {
	if !strings.HasPrefix(text, annotationPrefix) {
		return nil, false
	}
	rest := strings.TrimPrefix(text, annotationPrefix)
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	var names []string
	for _, n := range strings.Split(rest, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// RunAnalyzers applies the given analyzers to one loaded package and
// returns the findings sorted by position. The package becomes a
// single-unit Program; multi-unit runs (upcvet over the whole module)
// build one Program up front and call RunUnit per unit instead, so the
// call graph and summaries span packages and load work is shared.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return NewProgram([]*Package{pkg}).RunUnit(pkg, analyzers)
}

// RunUnit applies the analyzers to one unit of the program, timing each
// analyzer into prog.Stats.
func (prog *Program) RunUnit(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	notes := collectAnnotations(pkg.Fset, pkg.Files)
	spans := stmtSpans(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Prog:     prog,
			diags:    &diags,
			notes:    notes,
			spans:    spans,
		}
		start := time.Now()
		err := a.Run(pass)
		prog.Stats[a.Name] += time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ---- Shared package-scope helpers ----

// simSidePackages are the repository packages that execute inside (or
// build) simulations: code where wall-clock time, ambient randomness and
// environment reads would silently break virtual-time determinism.
// cmd/, examples/, internal/simbench, internal/tracecli and the analysis
// suite itself are host-side and exempt.
var simSidePackages = []string{
	"repro/internal/sim",
	"repro/internal/fabric",
	"repro/internal/fault",
	"repro/internal/upc",
	"repro/internal/subthread",
	"repro/internal/mpi",
	"repro/internal/group",
	"repro/internal/apps",
	"repro/internal/experiments",
	"repro/internal/trace",
	"repro/internal/metrics",
	"repro/internal/causality",
	"repro/internal/fft",
	"repro/internal/topo",
	"repro/internal/perf",
	"repro/internal/report",
	"repro/internal/sweep",
}

// SimSide reports whether the package path is simulation-side.
func SimSide(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range simSidePackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// pkgNameOf resolves a selector base like the `time` of time.Now to the
// path of the package it names, or "" when it is not a package name
// (e.g. a local variable that shadows the import).
func pkgNameOf(info *types.Info, x ast.Expr) string {
	id, ok := x.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// calleeFunc resolves a call's callee to its types.Func (package
// function or method), or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// funcBodies yields every function body in the package — declarations
// and, via inspection inside them, literals — paired with the name used
// in diagnostics.
func funcBodies(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

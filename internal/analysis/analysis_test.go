package analysis

import "testing"

func TestParseAnnotation(t *testing.T) {
	cases := []struct {
		text string
		want []string
	}{
		{"//upcvet:wallclock", []string{"wallclock"}},
		{"//upcvet:wallclock -- real benchmarking", []string{"wallclock"}},
		{"//upcvet:maporder,rawgo", []string{"maporder", "rawgo"}},
		{"//upcvet:ordered\treason after a tab", []string{"ordered"}},
		{"// upcvet:wallclock", nil}, // space before the marker: not an annotation
		{"//upcvet:", nil},
		{"// plain comment", nil},
	}
	for _, c := range cases {
		got, ok := parseAnnotation(c.text)
		if (c.want == nil) == ok {
			t.Errorf("parseAnnotation(%q) ok = %v, want %v", c.text, ok, c.want != nil)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseAnnotation(%q) = %v, want %v", c.text, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseAnnotation(%q) = %v, want %v", c.text, got, c.want)
				break
			}
		}
	}
}

func TestSimSide(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/sim", true},
		{"repro/internal/sim_test", true}, // test unit of a sim-side package
		{"repro/internal/apps/stream", true},
		{"repro/internal/apps/stream_test", true},
		{"repro/cmd/upc-bench", false},
		{"repro/internal/simbench", false}, // prefix of a name, not a path element
		{"repro/internal/analysis", false},
	}
	for _, c := range cases {
		if got := SimSide(c.path); got != c.want {
			t.Errorf("SimSide(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestByName(t *testing.T) {
	for _, a := range All {
		got, ok := ByName(a.Name)
		if !ok || got != a {
			t.Errorf("ByName(%q) did not resolve the analyzer", a.Name)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("ByName(nonesuch) should not resolve")
	}
}

// Package analysistest exercises one analyzer against a directory of
// marked-up Go source, in the manner of
// golang.org/x/tools/go/analysis/analysistest. A comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// asserts that the analyzer reports a finding on that line matching
// each pattern; a line without a want comment must produce no finding.
// The package under test is type-checked under a caller-chosen import
// path, which is how testdata poses as simulation-side
// ("repro/internal/apps/...") or host-side ("repro/cmd/...") code to
// the analyzers' package-scope rules.
package analysistest

import (
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// sharedLoader memoizes the expensive standard-library typechecking
// across Run calls. The analysis tests call Run sequentially from one
// goroutine, so no lock is needed (and taking one would drag a sync
// import into a package upcvet itself checks).
var sharedLoader *analysis.Loader

// Run loads the package in dir, type-checks it under import path
// asPath, applies the analyzer, and matches its findings against the
// want comments in the source.
func Run(t *testing.T, dir, asPath string, a *analysis.Analyzer) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if sharedLoader == nil {
		l, err := analysis.NewLoader(abs)
		if err != nil {
			t.Fatal(err)
		}
		sharedLoader = l
	}
	units, err := sharedLoader.Load(abs, asPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}
	for _, unit := range units {
		diags, err := analysis.RunAnalyzers(unit, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatal(err)
		}
		checkUnit(t, unit, diags)
	}
}

// lineKey addresses one source line of the unit.
type lineKey struct {
	file string
	line int
}

// wantExpect is one compiled pattern from a want comment.
type wantExpect struct {
	re      *regexp.Regexp
	matched bool
}

func checkUnit(t *testing.T, unit *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := map[lineKey][]*wantExpect{}
	var keys []lineKey
	for _, f := range unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns := parseWant(c.Text)
				if len(patterns) == 0 {
					continue
				}
				pos := unit.Fset.Position(c.Pos())
				k := lineKey{pos.Filename, pos.Line}
				if len(wants[k]) == 0 {
					keys = append(keys, k)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v",
							filepath.Base(pos.Filename), pos.Line, p, err)
					}
					wants[k] = append(wants[k], &wantExpect{re: re})
				}
			}
		}
	}
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[k] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected finding: %s: %s",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: no finding matched %q",
					filepath.Base(k.file), k.line, w.re)
			}
		}
	}
}

// wantQuoted matches one double-quoted pattern in a want comment.
var wantQuoted = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// parseWant extracts the patterns of one `// want "x" "y"` comment.
func parseWant(text string) []string {
	rest, ok := strings.CutPrefix(text, "// want ")
	if !ok {
		return nil
	}
	var out []string
	for _, m := range wantQuoted.FindAllString(rest, -1) {
		s, err := strconv.Unquote(m)
		if err != nil {
			continue
		}
		out = append(out, s)
	}
	return out
}

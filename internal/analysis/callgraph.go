// Call-graph and summary infrastructure: the interprocedural layer the
// concurrency analyzers (collalign.go, sharedrace.go) build on. A
// Program holds every analysis unit of one upcvet run, a module-wide
// call graph over them, and a per-analyzer summary store, so facts
// proven about a function in one package (for example "may execute a
// collective") are visible when another package calls it.
//
// Function identity is the types.Func full name
// ("(*repro/internal/upc.Thread).Barrier"), not the *types.Func
// pointer: a package type-checked once as an analysis unit and again as
// an import of another unit yields distinct types.Func objects for the
// same source function, and the string name is what unifies them.
package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
	"time"
)

// A Program is one upcvet run's worth of loaded units plus the
// interprocedural state shared by every analyzer pass: the call graph,
// the collective-reachability fixpoint, and the summary store. Loading
// the module tree once into a Program and reusing it across all
// analyzers is also what keeps the eight-analyzer run inside the CI
// wall-clock budget.
type Program struct {
	Units []*Package
	// Stats accumulates wall-clock cost per analyzer (and the "load"
	// pseudo-entry), reported by upcvet -stats.
	Stats map[string]time.Duration //upcvet:wallclock -- host-side tooling metrics, not simulation state

	built     bool
	nodes     map[string]*FuncNode
	summaries map[string]map[string]any
}

// A FuncNode is one function in the call graph.
type FuncNode struct {
	// Name is the types.Func full name, the graph key.
	Name string
	// Decl is the declaration carrying the body, with Unit the analysis
	// unit it was parsed in.
	Decl *ast.FuncDecl
	Unit *Package
	// Callees lists the full names of statically resolved callees,
	// sorted and deduplicated. Calls through function values are not
	// resolved (and therefore assumed non-collective).
	Callees []string
	// DirectCollective records a call to a recognized collective
	// operation (Barrier, AllReduce..., ShardBarrier.Wait, ...) in the
	// body; MayCollect closes it over Callees.
	DirectCollective bool
	MayCollect       bool
}

// NewProgram builds a Program over the given units. The call graph is
// constructed lazily on first query.
func NewProgram(units []*Package) *Program {
	return &Program{
		Units:     units,
		Stats:     map[string]time.Duration{},
		summaries: map[string]map[string]any{},
	}
}

// FuncKey returns the call-graph key for a resolved function.
func FuncKey(fn *types.Func) string { return fn.FullName() }

// Node returns the call-graph node for a full name, or nil when no
// loaded unit declares the function.
func (prog *Program) Node(name string) *FuncNode {
	prog.build()
	return prog.nodes[name]
}

// FuncNames lists every declared function in the graph, sorted.
func (prog *Program) FuncNames() []string {
	prog.build()
	names := make([]string, 0, len(prog.nodes))
	for name := range prog.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MayCollect reports whether calling the named function may execute a
// collective operation, by the interprocedural fixpoint. Unknown
// functions (no body in any loaded unit) report false; callers should
// first test the call itself with CollectiveCall, which needs no body.
func (prog *Program) MayCollect(name string) bool {
	prog.build()
	n := prog.nodes[name]
	return n != nil && n.MayCollect
}

// Reachable reports whether the call graph has a path from one declared
// function to another.
func (prog *Program) Reachable(from, to string) bool {
	prog.build()
	if prog.nodes[from] == nil {
		return false
	}
	seen := map[string]bool{from: true}
	work := []string{from}
	for len(work) > 0 {
		cur := work[0]
		work = work[1:]
		if cur == to {
			return true
		}
		if n := prog.nodes[cur]; n != nil {
			for _, c := range n.Callees {
				if !seen[c] {
					seen[c] = true
					work = append(work, c)
				}
			}
		}
	}
	return false
}

// Summary retrieves a fact a pass stored for (analyzer, function key).
func (prog *Program) Summary(analyzer, key string) (any, bool) {
	m, ok := prog.summaries[analyzer]
	if !ok {
		return nil, false
	}
	v, ok := m[key]
	return v, ok
}

// SetSummary stores a fact for (analyzer, function key).
func (prog *Program) SetSummary(analyzer, key string, v any) {
	m := prog.summaries[analyzer]
	if m == nil {
		m = map[string]any{}
		prog.summaries[analyzer] = m
	}
	m[key] = v
}

func (prog *Program) build() {
	if prog.built {
		return
	}
	prog.built = true
	prog.nodes = map[string]*FuncNode{}
	for _, unit := range prog.Units {
		for _, decl := range funcBodies(unit.Files) {
			fn, ok := unit.Info.Defs[decl.Name].(*types.Func)
			if !ok {
				continue
			}
			name := FuncKey(fn)
			if prog.nodes[name] != nil {
				continue // already seen (base unit before its test unit)
			}
			node := &FuncNode{Name: name, Decl: decl, Unit: unit}
			callees := map[string]bool{}
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if _, ok := CollectiveCall(unit.Info, call); ok {
					node.DirectCollective = true
				}
				if fn := calleeFunc(unit.Info, call); fn != nil {
					callees[FuncKey(fn)] = true
				}
				return true
			})
			for c := range callees {
				node.Callees = append(node.Callees, c)
			}
			sort.Strings(node.Callees)
			prog.nodes[name] = node
		}
	}
	// Close DirectCollective over the edges: a function may collect when
	// its body calls a collective or any callee may collect.
	for changed := true; changed; {
		changed = false
		for _, n := range prog.nodes {
			if n.MayCollect {
				continue
			}
			if n.DirectCollective {
				n.MayCollect = true
				changed = true
				continue
			}
			for _, c := range n.Callees {
				if m := prog.nodes[c]; m != nil && m.MayCollect {
					n.MayCollect = true
					changed = true
					break
				}
			}
		}
	}
}

// ---- Collective-operation recognition ----
//
// Like the rest of the suite, collectives are keyed on names rather
// than import paths so the testdata stub types trigger the same logic:
// barrier-family method names on any receiver, the Group reduction and
// broadcast methods, ShardBarrier.Wait, and the upc package-level
// collective functions (the Alloc family is collective too: allocation
// ends in a barrier).

var collectiveMethods = map[string]bool{
	"Barrier":       true,
	"BarrierNotify": true,
	"BarrierWait":   true,
	"BarrierErr":    true,
}

var groupCollectiveMethods = map[string]bool{
	"ReduceSum":    true,
	"ReduceSumErr": true,
	"ReduceSumInt": true,
	"Broadcast":    true,
}

var collectiveFuncs = map[string]bool{
	"AllReduce":       true,
	"AllReduceSum":    true,
	"AllReduceMax":    true,
	"AllReduceSumInt": true,
	"Broadcast":       true,
	"AllGather":       true,
	"BroadcastT":      true,
	"ScatterT":        true,
	"GatherT":         true,
	"Alloc":           true,
	"Alloc2D":         true,
	"AllocLock":       true,
	"AllocAtomicI64":  true,
	"CastTable":       true,
}

// CollectiveCall reports whether the call is a recognized collective
// operation, returning its display name.
func CollectiveCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		switch {
		case collectiveMethods[name]:
			return name, true
		case name == "Wait" && recvTypeName(recv.Type()) == "shardbarrier":
			return "ShardBarrier.Wait", true
		case groupCollectiveMethods[name] && recvTypeName(recv.Type()) == "group":
			return name, true
		}
		return "", false
	}
	if collectiveFuncs[name] {
		return name, true
	}
	return "", false
}

// recvTypeName is the lower-cased defined-type name behind a receiver
// (or any) type, pointers and instantiations stripped.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return strings.ToLower(n.Obj().Name())
	}
	return ""
}

// ---- Thread-identity taint ----
//
// The concurrency analyzers need to know when a value depends on the
// executing thread's identity: MYTHREAD, Thread.ID, Group.Rank,
// IsLeader(). threadTaint computes the per-function set of local
// variables carrying such values; threadDepExpr tests one expression
// against it. Results of collective calls are replicated across
// threads, so a collective call cleanses taint — the classic
// n := AllReduceSumInt(t, mine) loop bound is uniform even though the
// contribution was not.

// threadIdentExpr reports whether e itself denotes the executing
// thread's identity.
func threadIdentExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "MYTHREAD"
	case *ast.SelectorExpr:
		tv, ok := info.Types[e.X]
		if !ok {
			return false
		}
		switch e.Sel.Name {
		case "ID":
			return recvTypeName(tv.Type) == "thread"
		case "Rank":
			return recvTypeName(tv.Type) == "group"
		}
	case *ast.CallExpr:
		if fn := calleeFunc(info, e); fn != nil && fn.Name() == "IsLeader" {
			return true
		}
	}
	return false
}

// threadDepExpr reports whether any part of e depends on thread
// identity, under the given taint set. It does not descend into
// collective calls (replicated results) or function literals (creating
// a closure is not itself thread-dependent).
func threadDepExpr(info *types.Info, e ast.Expr, taint map[types.Object]bool) bool {
	if e == nil {
		return false
	}
	dep := false
	ast.Inspect(e, func(n ast.Node) bool {
		if dep {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if _, ok := CollectiveCall(info, n); ok {
				return false
			}
			if threadIdentExpr(info, n) {
				dep = true
				return false
			}
		case *ast.SelectorExpr:
			if threadIdentExpr(info, n) {
				dep = true
				return false
			}
		case *ast.Ident:
			if n.Name == "MYTHREAD" || taint[info.ObjectOf(n)] {
				dep = true
				return false
			}
		}
		return true
	})
	return dep
}

// threadTaint computes the set of objects assigned thread-dependent
// values anywhere in the declaration (function literals included —
// closures share the enclosing frame).
func threadTaint(info *types.Info, decl *ast.FuncDecl) map[types.Object]bool {
	taint := map[types.Object]bool{}
	mark := func(e ast.Expr, dep bool) bool {
		if !dep {
			return false
		}
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.ObjectOf(id)
		if obj == nil || taint[obj] {
			return false
		}
		taint[obj] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						dep := threadDepExpr(info, n.Rhs[i], taint)
						if n.Tok.String() != "=" && n.Tok.String() != ":=" {
							// Op-assign reads the LHS too; x ^= tainted taints x.
							dep = dep || threadDepExpr(info, lhs, taint)
						}
						if mark(lhs, dep) {
							changed = true
						}
					}
				} else {
					dep := false
					for _, rhs := range n.Rhs {
						dep = dep || threadDepExpr(info, rhs, taint)
					}
					for _, lhs := range n.Lhs {
						if mark(lhs, dep) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if threadDepExpr(info, n.X, taint) {
					if mark(n.Key, true) {
						changed = true
					}
					if n.Value != nil && mark(n.Value, true) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				dep := false
				for _, v := range n.Values {
					dep = dep || threadDepExpr(info, v, taint)
				}
				if dep {
					for _, name := range n.Names {
						if mark(name, true) {
							changed = true
						}
					}
				}
			}
			return true
		})
	}
	return taint
}

package analysis_test

import (
	"slices"
	"testing"

	"repro/internal/analysis"
)

const cgBase = "repro/internal/analysis/testdata/callgraph/"

// loadCallgraphProgram loads the two-package fixture (app imports leaf
// by its real module path) into one Program.
func loadCallgraphProgram(t *testing.T) *analysis.Program {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	var units []*analysis.Package
	for _, dir := range []string{"leaf", "app"} {
		pkgs, err := loader.Load("testdata/callgraph/"+dir, cgBase+dir, false)
		if err != nil {
			t.Fatal(err)
		}
		units = append(units, pkgs...)
	}
	return analysis.NewProgram(units)
}

func TestCallGraphCrossPackageEdges(t *testing.T) {
	prog := loadCallgraphProgram(t)

	step := prog.Node(cgBase + "app.Step")
	if step == nil {
		t.Fatalf("no node for app.Step; have %v", prog.FuncNames())
	}
	if !slices.Contains(step.Callees, cgBase+"leaf.Sync") {
		t.Errorf("app.Step callees = %v, want an edge to leaf.Sync", step.Callees)
	}

	sync := prog.Node(cgBase + "leaf.Sync")
	if sync == nil {
		t.Fatal("no node for leaf.Sync")
	}
	if !sync.DirectCollective {
		t.Error("leaf.Sync should be directly collective (calls Barrier)")
	}
}

func TestCallGraphMayCollect(t *testing.T) {
	prog := loadCallgraphProgram(t)

	for _, tc := range []struct {
		name string
		want bool
	}{
		{cgBase + "app.Kernel", true}, // two edges away from Barrier
		{cgBase + "app.Step", true},
		{cgBase + "leaf.Sync", true},
		{cgBase + "app.Leafless", false},
		{cgBase + "leaf.Pure", false},
	} {
		if got := prog.MayCollect(tc.name); got != tc.want {
			t.Errorf("MayCollect(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCallGraphReachable(t *testing.T) {
	prog := loadCallgraphProgram(t)

	barrier := "(*" + cgBase + "leaf.Thread).Barrier"
	if !prog.Reachable(cgBase+"app.Kernel", barrier) {
		t.Errorf("Kernel should reach %s", barrier)
	}
	if prog.Reachable(cgBase+"app.Leafless", barrier) {
		t.Error("Leafless must not reach Barrier")
	}
	if prog.Reachable(cgBase+"leaf.Pure", cgBase+"app.Kernel") {
		t.Error("reachability must follow edge direction")
	}
}

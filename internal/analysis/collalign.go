// The collalign analyzer: textual barrier alignment, interprocedurally.
//
// UPC's collectives are anonymous rendezvous points — every thread must
// execute the same sequence of Barrier/AllReduce/... calls, or the
// program deadlocks with some threads parked in a barrier the others
// never reach. The classic bug is a collective guarded by
// thread-identity data:
//
//	if t.ID == 0 { t.Barrier() }          // thread 0 waits forever
//	for i := t.ID; i < n; i += t.N {      // trip count differs per thread
//	        t.Barrier()
//	}
//
// collalign walks every function body computing the sequence of
// collective operations along each control-flow path and flags the
// points where the sequence forks on thread-dependent data: branches
// whose arms disagree about which collectives run, loops enclosing
// collectives whose trip count is thread-dependent, and thread-guarded
// early returns that skip collectives executed by the other threads.
// Calls resolve through the program call graph (callgraph.go), so a
// helper that barriers two packages away still counts; results of
// collective calls are uniform across threads and cleanse the taint
// (n := AllReduceSumInt(...) is a legal loop bound around a barrier).
//
// Approximations, chosen to match the house idioms: function literals
// contribute their sequence at the point they are written (right for
// the dominant immediate-argument style, w.timed("x", func(){ ... })),
// and calls through stored function values are assumed non-collective.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Collalign flags collective sequences that depend on thread identity.
var Collalign = &Analyzer{
	Name: "collalign",
	Doc: "collectives must be textually aligned: every thread executes the same Barrier/AllReduce/... sequence.\n" +
		"           Flags thread-conditional branches, loops and early returns whose paths disagree about\n" +
		"           which collectives run (interprocedural, via the module call graph).",
	Run: runCollalign,
}

func runCollalign(pass *Pass) error {
	for _, decl := range funcBodies(pass.Files) {
		w := &collWalker{pass: pass, taint: threadTaint(pass.Info, decl)}
		w.seqStmts(decl.Body.List, cseq{})
	}
	return nil
}

// A cseq summarizes the collectives along the remainder of a path:
// a space-separated token string, plus whether the path terminates
// (return / break / continue) before falling off the end.
type cseq struct {
	seq  string
	term bool
}

func (c cseq) then(tail cseq) cseq {
	if c.term {
		return c
	}
	return cseq{seq: c.seq + tail.seq, term: tail.term}
}

func hasColl(seq string) bool { return strings.Contains(seq, "§") }

// renderSeq turns a path summary into the diagnostic spelling.
func renderSeq(c cseq) string {
	s := strings.TrimSpace(strings.ReplaceAll(c.seq, "§", ""))
	s = strings.ReplaceAll(s, "repro/internal/", "")
	s = strings.ReplaceAll(s, "repro/", "")
	if s == "" {
		if c.term {
			return "{return, no collectives}"
		}
		return "{no collectives}"
	}
	return "{" + s + "}"
}

type collWalker struct {
	pass  *Pass
	taint map[types.Object]bool
}

func (w *collWalker) tainted(e ast.Expr) bool {
	return threadDepExpr(w.pass.Info, e, w.taint)
}

// seqStmts folds a statement list right-to-left so each statement sees
// the sequence of everything after it — which is what a thread-guarded
// early return needs to know to tell "harmless" from "skips a barrier".
func (w *collWalker) seqStmts(list []ast.Stmt, tail cseq) cseq {
	for i := len(list) - 1; i >= 0; i-- {
		tail = w.seqStmt(list[i], tail)
	}
	return tail
}

func (w *collWalker) seqStmt(s ast.Stmt, tail cseq) cseq {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.seqStmts(s.List, tail)
	case *ast.LabeledStmt:
		return w.seqStmt(s.Stmt, tail)
	case *ast.ReturnStmt:
		c := cseq{term: true}
		for _, r := range s.Results {
			c.seq += w.exprSeq(r)
		}
		return cseq{seq: c.seq, term: true}
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path.
		return cseq{term: true}
	case *ast.IfStmt:
		return w.seqIf(s, tail)
	case *ast.SwitchStmt:
		return w.seqSwitch(s.Init, s.Tag, s.Body, s, tail)
	case *ast.TypeSwitchStmt:
		return w.seqSwitch(s.Init, nil, s.Body, s, tail)
	case *ast.SelectStmt:
		var arms []cseq
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				arms = append(arms, w.seqStmts(cc.Body, tail))
			}
		}
		return mergeArms(arms, tail)
	case *ast.ForStmt:
		return w.seqFor(s, tail)
	case *ast.RangeStmt:
		return w.seqRange(s, tail)
	default:
		var seq string
		for _, e := range stmtExprs(s) {
			seq += w.exprSeq(e)
		}
		return cseq{seq: seq}.then(tail)
	}
}

func (w *collWalker) seqIf(s *ast.IfStmt, tail cseq) cseq {
	var init string
	if s.Init != nil {
		for _, e := range stmtExprs(s.Init) {
			init += w.exprSeq(e)
		}
	}
	init += w.exprSeq(s.Cond)
	thenPath := w.seqStmts(s.Body.List, tail)
	elsePath := tail
	if s.Else != nil {
		elsePath = w.seqStmt(s.Else, tail)
	}
	if w.tainted(s.Cond) && thenPath.seq != elsePath.seq && (hasColl(thenPath.seq) || hasColl(elsePath.seq)) {
		w.pass.ReportAnnotatable(s.Pos(),
			"collective sequence depends on thread-conditional branch: %s vs %s — all threads must reach the same collectives",
			renderSeq(thenPath), renderSeq(elsePath))
	}
	return cseq{seq: init}.then(mergeTwo(thenPath, elsePath))
}

func (w *collWalker) seqSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, at ast.Stmt, tail cseq) cseq {
	var pre string
	if init != nil {
		for _, e := range stmtExprs(init) {
			pre += w.exprSeq(e)
		}
	}
	dep := tag != nil && w.tainted(tag)
	hasDefault := false
	var arms []cseq
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			pre += w.exprSeq(e)
			if w.tainted(e) {
				dep = true
			}
		}
		arms = append(arms, w.seqStmts(cc.Body, tail))
	}
	if !hasDefault {
		arms = append(arms, tail) // fallthrough past the switch
	}
	if dep {
		for i := 1; i < len(arms); i++ {
			if arms[i].seq != arms[0].seq && (hasColl(arms[i].seq) || hasColl(arms[0].seq)) {
				w.pass.ReportAnnotatable(at.Pos(),
					"collective sequence depends on thread-conditional switch: %s vs %s — all threads must reach the same collectives",
					renderSeq(arms[0]), renderSeq(arms[i]))
				break
			}
		}
	}
	return cseq{seq: pre}.then(mergeArms(arms, tail))
}

func (w *collWalker) seqFor(s *ast.ForStmt, tail cseq) cseq {
	var pre string
	if s.Init != nil {
		for _, e := range stmtExprs(s.Init) {
			pre += w.exprSeq(e)
		}
	}
	pre += w.exprSeq(s.Cond)
	body := w.seqStmts(s.Body.List, cseq{})
	if s.Post != nil {
		for _, e := range stmtExprs(s.Post) {
			body.seq += w.exprSeq(e)
		}
	}
	if hasColl(body.seq) && w.loopTripTainted(s) {
		w.pass.ReportAnnotatable(s.Pos(),
			"collective inside loop with thread-dependent trip count: %s — threads execute different numbers of iterations and misalign",
			renderSeq(cseq{seq: body.seq}))
	}
	el := ""
	if hasColl(body.seq) {
		el = "loop(" + strings.TrimSpace(body.seq) + ") "
	}
	return cseq{seq: pre + el}.then(tail)
}

func (w *collWalker) seqRange(s *ast.RangeStmt, tail cseq) cseq {
	pre := w.exprSeq(s.X)
	body := w.seqStmts(s.Body.List, cseq{})
	if hasColl(body.seq) && w.tainted(s.X) {
		w.pass.ReportAnnotatable(s.Pos(),
			"collective inside range over thread-dependent data: %s — threads execute different numbers of iterations and misalign",
			renderSeq(cseq{seq: body.seq}))
	}
	el := ""
	if hasColl(body.seq) {
		el = "loop(" + strings.TrimSpace(body.seq) + ") "
	}
	return cseq{seq: pre + el}.then(tail)
}

func (w *collWalker) loopTripTainted(s *ast.ForStmt) bool {
	if s.Cond != nil && w.tainted(s.Cond) {
		return true
	}
	for _, st := range []ast.Stmt{s.Init, s.Post} {
		if st == nil {
			continue
		}
		for _, e := range stmtExprs(st) {
			if w.tainted(e) {
				return true
			}
		}
	}
	return false
}

func mergeTwo(a, b cseq) cseq {
	if a.seq == b.seq && a.term == b.term {
		return a
	}
	return cseq{seq: "(" + strings.TrimSpace(a.seq) + "|" + strings.TrimSpace(b.seq) + ") ", term: a.term && b.term}
}

func mergeArms(arms []cseq, tail cseq) cseq {
	if len(arms) == 0 {
		return tail
	}
	out := arms[0]
	for _, a := range arms[1:] {
		out = mergeTwo(out, a)
	}
	return out
}

// exprSeq emits the collective tokens of one expression in evaluation
// order: arguments before the call itself, function literals inline at
// their lexical position (which also walks their bodies for nested
// thread-conditional collectives). Collective tokens carry a § marker
// so mixed call/collective sequences stay distinguishable after the
// human-readable rendering strips it.
func (w *collWalker) exprSeq(e ast.Expr) string {
	if e == nil {
		return ""
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		body := w.seqStmts(e.Body.List, cseq{})
		return body.seq
	case *ast.CallExpr:
		var seq string
		seq += w.exprSeq(e.Fun)
		for _, a := range e.Args {
			seq += w.exprSeq(a)
		}
		if name, ok := CollectiveCall(w.pass.Info, e); ok {
			return seq + "§" + name + " "
		}
		if fn := calleeFunc(w.pass.Info, e); fn != nil && w.pass.Prog.MayCollect(FuncKey(fn)) {
			return seq + "§call:" + fn.Name() + " "
		}
		return seq
	case *ast.BinaryExpr:
		return w.exprSeq(e.X) + w.exprSeq(e.Y)
	case *ast.UnaryExpr:
		return w.exprSeq(e.X)
	case *ast.StarExpr:
		return w.exprSeq(e.X)
	case *ast.SelectorExpr:
		return w.exprSeq(e.X)
	case *ast.IndexExpr:
		return w.exprSeq(e.X) + w.exprSeq(e.Index)
	case *ast.IndexListExpr:
		return w.exprSeq(e.X)
	case *ast.SliceExpr:
		return w.exprSeq(e.X) + w.exprSeq(e.Low) + w.exprSeq(e.High) + w.exprSeq(e.Max)
	case *ast.KeyValueExpr:
		return w.exprSeq(e.Value)
	case *ast.CompositeLit:
		var seq string
		for _, el := range e.Elts {
			seq += w.exprSeq(el)
		}
		return seq
	case *ast.TypeAssertExpr:
		return w.exprSeq(e.X)
	}
	return ""
}

// stmtExprs lists the top-level expressions of a simple statement.
func stmtExprs(s ast.Stmt) []ast.Expr {
	switch s := s.(type) {
	case *ast.ExprStmt:
		return []ast.Expr{s.X}
	case *ast.AssignStmt:
		return append(append([]ast.Expr{}, s.Rhs...), s.Lhs...)
	case *ast.IncDecStmt:
		return []ast.Expr{s.X}
	case *ast.SendStmt:
		return []ast.Expr{s.Value, s.Chan}
	case *ast.GoStmt:
		return []ast.Expr{s.Call}
	case *ast.DeferStmt:
		return []ast.Expr{s.Call}
	case *ast.DeclStmt:
		var out []ast.Expr
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					out = append(out, vs.Values...)
				}
			}
		}
		return out
	}
	return nil
}

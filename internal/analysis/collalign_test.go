package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestCollalign(t *testing.T) {
	// Thread-conditional barriers, divergent early exits, unbalanced
	// loops, and the same bugs one call or one switch away: flagged.
	analysistest.Run(t, "testdata/collalign/bad", "repro/internal/apps/colldata", analysis.Collalign)
	// Uniform conditions, balanced arms, collective-cleansed bounds and
	// annotated suppression: quiet.
	analysistest.Run(t, "testdata/collalign/ok", "repro/internal/apps/collok", analysis.Collalign)
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked analysis unit: a package's files —
// optionally including its in-package test files — under its import
// path, or an external test package under path + "_test".
type Package struct {
	Fset  *token.FileSet
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks repository packages without the go
// tool: module-internal imports resolve by mapping the import path onto
// the module tree, standard-library imports through the compiler source
// importer. One Loader shares a FileSet, a type-checker cache and the
// (expensive, lazily built) standard-library cache across every load.
type Loader struct {
	Root   string // module root directory (contains go.mod)
	Module string // module path from go.mod
	fset   *token.FileSet
	std    types.Importer
	cache  map[string]*types.Package // import units (no test files), by path
}

// NewLoader builds a loader for the module rooted at or above dir.
func NewLoader(dir string) (*Loader, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Root:   root,
		Module: module,
		fset:   token.NewFileSet(),
		cache:  map[string]*types.Package{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	return l, nil
}

// Fset exposes the loader's shared position table.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func findModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load parses and type-checks the package in dir under import path
// asPath. With tests true it returns one unit per package clause found:
// the package together with its in-package _test.go files, and — when
// the directory has them — the external foo_test package as a second
// unit. asPath controls which package-scope rules apply (SimSide and
// friends), which is how the testdata packages pose as simulation-side
// or host-side code.
func (l *Loader) Load(dir, asPath string, tests bool) ([]*Package, error) {
	names, err := goFilesIn(dir, tests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, nil
	}
	var base, xtest []*ast.File
	var parseErrs []string
	for _, name := range names {
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			parseErrs = append(parseErrs, err.Error())
			continue
		}
		if strings.HasSuffix(file.Name.Name, "_test") {
			xtest = append(xtest, file)
		} else {
			base = append(base, file)
		}
	}
	if len(parseErrs) > 0 {
		return nil, fmt.Errorf("analysis: parse %s: %s", dir, strings.Join(parseErrs, "; "))
	}
	var units []*Package
	if len(base) > 0 {
		pkg, err := l.check(asPath, dir, base)
		if err != nil {
			return nil, err
		}
		units = append(units, pkg)
	}
	if len(xtest) > 0 {
		pkg, err := l.check(asPath+"_test", dir, xtest)
		if err != nil {
			return nil, err
		}
		units = append(units, pkg)
	}
	return units, nil
}

func goFilesIn(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	return &Package{Fset: l.fset, Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// importUnit type-checks the non-test files of a module-internal
// package for use as an import, memoized per path.
func (l *Loader) importUnit(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	rel := strings.TrimPrefix(path, l.Module+"/")
	dir := filepath.Join(l.Root, filepath.FromSlash(rel))
	names, err := goFilesIn(dir, false)
	if err != nil {
		return nil, fmt.Errorf("analysis: import %q: %w", path, err)
	}
	var files []*ast.File
	for _, name := range names {
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	pkg, err := conf.Check(path, l.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck import %s: %w", path, err)
	}
	l.cache[path] = pkg
	return pkg, nil
}

// moduleImporter routes module-internal import paths to the loader and
// everything else to the standard-library source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		return l.importUnit(path)
	}
	return l.std.Import(path)
}

// PackageDirs lists the directories under root (itself included) that
// contain Go files, skipping testdata, vendor and hidden directories.
// pattern limits the walk: "" or "./..." means everything; "./x/..."
// the subtree at x; a plain directory path just that directory.
func PackageDirs(root, pattern string) ([]string, error) {
	base := root
	recursive := true
	switch {
	case pattern == "" || pattern == "./...":
	case strings.HasSuffix(pattern, "/..."):
		base = filepath.Join(root, filepath.FromSlash(strings.TrimSuffix(pattern, "/...")))
	default:
		base = filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(pattern, "./")))
		recursive = false
	}
	var dirs []string
	err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if !recursive && path != base {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

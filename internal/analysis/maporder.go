package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags range statements over maps whose loop body's effects
// depend on iteration order: emitting trace events, printing or writing
// to an io.Writer, issuing simulated operations (network puts, barrier
// arrivals — anything through the sim/upc/fabric layers), appending to
// a slice that is never sorted afterwards, or concatenating onto a
// string. Go randomizes map iteration per run, so each of those turns
// into run-to-run nondeterminism — the exact bug class of the
// ChromeWriter dangling-span export fixed by hand in PR 2, where open
// spans were closed in map order and same-seed trace files differed.
//
// The check is transitive within the package: a loop body that calls a
// same-package function inherits that function's effects (the
// ChromeWriter loop called a local closure that did the writing).
//
// Order-insensitive bodies pass without annotation:
//
//   - the collect-keys-then-sort idiom — appends into a slice that a
//     later sort.X / slices.X call in the same function orders;
//   - commutative accumulation — map inserts, numeric += / |= and
//     friends, pure computation.
//
// Genuinely order-invisible loops that the analyzer cannot prove carry
// //upcvet:ordered with a reason.
var Maporder = &Analyzer{
	Name:    "maporder",
	Aliases: []string{"ordered"},
	Doc: "flag range-over-map loops whose body order reaches an output: " +
		"trace events, writers, simulated operations, unsorted result slices",
	Run: runMaporder,
}

// emittingMethods are method names whose call order is observable
// output order: trace emission, writer output, and testing logs.
var emittingMethods = map[string]bool{
	"Emit": true, "TraceInstant": true, "TraceCounter": true,
	"TraceSpan": true, "TraceSpanArg": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Error": true, "Errorf": true, "Log": true, "Logf": true,
	"Fatal": true, "Fatalf": true, "Skip": true, "Skipf": true,
	"Print": true, "Printf": true, "Println": true,
}

// emittingFmtFuncs are the fmt package's printing functions.
var emittingFmtFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// simOpPackages are the layers whose calls advance the simulation:
// calling into them in map order reorders the engine's event stream.
var simOpPackages = map[string]bool{
	"repro/internal/sim":       true,
	"repro/internal/upc":       true,
	"repro/internal/fabric":    true,
	"repro/internal/mpi":       true,
	"repro/internal/subthread": true,
	"repro/internal/group":     true,
	"repro/internal/trace":     true,
}

func runMaporder(pass *Pass) error {
	m := &maporderPass{
		pass:     pass,
		decls:    map[types.Object]*ast.FuncDecl{},
		closures: map[types.Object]*ast.FuncLit{},
	}
	for _, fd := range funcBodies(pass.Files) {
		if obj := pass.Info.Defs[fd.Name]; obj != nil {
			m.decls[obj] = fd
		}
		// Index `name := func(...) {...}` so calls through closure
		// variables (the ChromeWriter/RA pattern) resolve to a body.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(as.Rhs) {
					continue
				}
				if fl, ok := as.Rhs[i].(*ast.FuncLit); ok {
					if obj := pass.Info.ObjectOf(id); obj != nil {
						m.closures[obj] = fl
					}
				}
			}
			return true
		})
	}
	for _, fd := range funcBodies(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if _, isMap := pass.Info.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
				return true
			}
			if reason, pos := m.orderedEffect(rs, fd.Body); reason != "" {
				pass.ReportAnnotatable(rs.Pos(),
					"map iteration order reaches an ordered output (%s at %s); iterate sorted keys or annotate //upcvet:ordered",
					reason, pass.Fset.Position(pos))
			}
			return true
		})
	}
	return nil
}

type maporderPass struct {
	pass     *Pass
	decls    map[types.Object]*ast.FuncDecl
	closures map[types.Object]*ast.FuncLit
}

// orderedEffect reports the first order-sensitive effect in the range
// body (empty reason if none). enclosing is the body of the innermost
// function containing the loop, searched for the sorted-later idiom.
func (m *maporderPass) orderedEffect(rs *ast.RangeStmt, enclosing *ast.BlockStmt) (string, token.Pos) {
	if fl := innermostFuncLit(enclosing, rs); fl != nil {
		enclosing = fl.Body
	}
	var reason string
	var pos token.Pos
	found := func(r string, p token.Pos) {
		if reason == "" {
			reason, pos = r, p
		}
	}
	seen := map[types.Object]bool{}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if r := m.callEffect(n, seen); r != "" {
				found(r, n.Pos())
			}
		case *ast.SendStmt:
			found("channel send", n.Pos())
		case *ast.AssignStmt:
			if r, p := m.assignEffect(n, rs, enclosing); r != "" {
				found(r, p)
			}
		}
		return true
	})
	return reason, pos
}

// innermostFuncLit returns the innermost function literal in body that
// contains the node, or nil if none does.
func innermostFuncLit(body *ast.BlockStmt, node ast.Node) *ast.FuncLit {
	var inner *ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok &&
			fl.Pos() <= node.Pos() && node.End() <= fl.End() {
			inner = fl
		}
		return true
	})
	return inner
}

// callEffect classifies one call: does executing it in map order reach
// an ordered output, directly or through a same-package callee?
func (m *maporderPass) callEffect(call *ast.CallExpr, seen map[types.Object]bool) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "print" || fun.Name == "println" {
			if _, isBuiltin := m.pass.Info.Uses[fun].(*types.Builtin); isBuiltin {
				return "builtin " + fun.Name
			}
		}
		if obj := m.pass.Info.ObjectOf(fun); obj != nil && !seen[obj] {
			if fl := m.closures[obj]; fl != nil {
				seen[obj] = true
				if m.bodyEmits(fl.Body, seen) {
					return "transitive emission via closure " + fun.Name
				}
			}
		}
	case *ast.SelectorExpr:
		if pkg := pkgNameOf(m.pass.Info, fun.X); pkg != "" {
			if pkg == "fmt" && emittingFmtFuncs[fun.Sel.Name] {
				return "fmt." + fun.Sel.Name
			}
		} else if emittingMethods[fun.Sel.Name] {
			return "call to ." + fun.Sel.Name
		}
	}
	fn := calleeFunc(m.pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if simOpPackages[fn.Pkg().Path()] && fn.Pkg() != m.pass.Pkg {
		return "simulated operation " + fn.Pkg().Name() + "." + fn.Name()
	}
	if fn.Pkg() == m.pass.Pkg && !seen[fn] {
		seen[fn] = true
		if fd := m.decls[fn]; fd != nil && m.bodyEmits(fd.Body, seen) {
			return "transitive emission via " + fn.Name()
		}
	}
	return ""
}

// bodyEmits reports whether a same-package callee's body emits ordered
// output (emission and simulated-operation checks only; its local
// appends stay local).
func (m *maporderPass) bodyEmits(body *ast.BlockStmt, seen map[types.Object]bool) bool {
	emits := false
	ast.Inspect(body, func(n ast.Node) bool {
		if emits {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if m.callEffect(call, seen) != "" {
				emits = true
			}
		}
		return true
	})
	return emits
}

// assignEffect classifies one assignment in the loop body: appends to
// loop-external slices are ordered unless sorted later in the enclosing
// function; string concatenation onto a loop-external variable is
// ordered; everything else (map inserts, numeric accumulation, local
// state) is commutative or invisible.
func (m *maporderPass) assignEffect(as *ast.AssignStmt, rs *ast.RangeStmt, enclosing *ast.BlockStmt) (string, token.Pos) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := m.pass.Info.ObjectOf(id); obj != nil && declaredOutside(obj, rs) {
				if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					return "string concatenation onto " + id.Name, as.Pos()
				}
			}
		}
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || i >= len(as.Rhs) {
			continue
		}
		call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "append" {
			continue
		} else if _, isBuiltin := m.pass.Info.Uses[fid].(*types.Builtin); !isBuiltin {
			continue
		}
		obj := m.pass.Info.ObjectOf(id)
		if obj == nil || !declaredOutside(obj, rs) {
			continue
		}
		if !m.sortedAfter(obj, rs, enclosing) {
			return "append to " + id.Name + " (never sorted)", as.Pos()
		}
	}
	return "", token.NoPos
}

// declaredOutside reports whether obj's declaration is outside the
// range statement (a package or function variable the loop writes to).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// sortedAfter reports whether the slice object is passed to a sort. or
// slices. call after the loop in the enclosing function body — the
// collect-keys-then-sort idiom.
func (m *maporderPass) sortedAfter(obj types.Object, rs *ast.RangeStmt, enclosing *ast.BlockStmt) bool {
	sorted := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pkgNameOf(m.pass.Info, sel.X) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && m.pass.Info.ObjectOf(id) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

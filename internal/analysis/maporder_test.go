package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestMaporder(t *testing.T) {
	// Order-sensitive map loops — direct emission, writers, unsorted
	// appends, string concatenation, and the transitive ChromeWriter
	// pattern (emission through a named function or a closure variable).
	analysistest.Run(t, "testdata/maporder/bad", "repro/internal/trace/maporderdata", analysis.Maporder)
	// Collect-then-sort, commutative accumulation, map inversion and the
	// //upcvet:ordered alias: silent.
	analysistest.Run(t, "testdata/maporder/ok", "repro/internal/trace/maporderdata", analysis.Maporder)
}

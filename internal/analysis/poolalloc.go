package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Poolalloc guards the zero-allocation contract of the one-sided comm
// hot path (the upc-bench -check gates): in the fabric, sim and upc
// packages, record types managed by a sim.FreeList must be obtained
// from the pool, not heap-allocated fresh; standalone event allocations
// mark an operation that escaped the pooled-record design; and payload
// staging buffers have no place in a model that carries byte counts
// instead of bytes. Genuinely cold control paths (RPC setup, barrier
// generations, collectives) carry //upcvet:poolalloc with a reason.
var Poolalloc = &Analyzer{
	Name: "poolalloc",
	Doc: "flag heap allocation of pooled record types, standalone events and " +
		"byte staging buffers in the comm hot-path packages; the one-sided " +
		"path is allocation-free by contract",
	Run: runPoolalloc,
}

// poolallocPackages are the packages whose non-test code is held to the
// pooled-allocation rule — the layers the one-sided hot path crosses.
var poolallocPackages = []string{
	"repro/internal/sim",
	"repro/internal/fabric",
	"repro/internal/upc",
}

const simPkgPath = "repro/internal/sim"

func poolallocScope(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range poolallocPackages {
		if path == p {
			return true
		}
	}
	return false
}

func runPoolalloc(pass *Pass) error {
	if !poolallocScope(pass.Path) {
		return nil
	}
	pooled := pooledElemTypes(pass.Info)
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests allocate freely; the contract covers the runtime
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.UnaryExpr:
				if e.Op != token.AND {
					return true
				}
				cl, ok := ast.Unparen(e.X).(*ast.CompositeLit)
				if !ok {
					return true
				}
				checkPoolallocType(pass, pooled, e.Pos(), pass.Info.TypeOf(cl), "&%s{}")
			case *ast.CallExpr:
				id, ok := ast.Unparen(e.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				b, ok := pass.Info.Uses[id].(*types.Builtin)
				if !ok || len(e.Args) == 0 {
					return true
				}
				switch b.Name() {
				case "new":
					checkPoolallocType(pass, pooled, e.Pos(), pass.Info.TypeOf(e.Args[0]), "new(%s)")
				case "make":
					if t, ok := pass.Info.TypeOf(e.Args[0]).(*types.Slice); ok && isByte(t.Elem()) {
						pass.ReportAnnotatable(e.Pos(),
							"make([]byte, ...) allocates a payload staging buffer on the comm path; the fabric model carries byte counts, not payloads")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkPoolallocType reports a fresh heap allocation of type t when t is
// a pool-managed record of this package or a standalone sim.Event
// outside sim itself. form is "&%s{}" or "new(%s)".
func checkPoolallocType(pass *Pass, pooled map[*types.TypeName]bool, pos token.Pos, t types.Type, form string) {
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Origin().Obj()
	if pooled[obj] {
		pass.ReportAnnotatable(pos,
			form+" bypasses the free list that manages this type; take records from the pool (Get/Put) so the hot path stays allocation-free", obj.Name())
		return
	}
	if obj.Name() == "Event" && obj.Pkg() != nil && obj.Pkg().Path() == simPkgPath &&
		strings.TrimSuffix(pass.Path, "_test") != simPkgPath {
		pass.ReportAnnotatable(pos,
			"standalone event allocation on the comm path; hot-path events live inside pooled records (Reset re-arms them for reuse)")
	}
}

// pooledElemTypes collects the element types this package manages in
// sim.FreeList pools — every T of a FreeList[T] type expression
// anywhere in the package (fields, variables, slices of pools).
func pooledElemTypes(info *types.Info) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, tv := range info.Types {
		if !tv.IsType() {
			continue
		}
		named, ok := tv.Type.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Origin().Obj()
		if obj.Name() != "FreeList" || obj.Pkg() == nil || obj.Pkg().Path() != simPkgPath {
			continue
		}
		args := named.TypeArgs()
		if args == nil || args.Len() != 1 {
			continue
		}
		if elem, ok := args.At(0).(*types.Named); ok {
			out[elem.Origin().Obj()] = true
		}
	}
	return out
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestPoolalloc(t *testing.T) {
	// Pool bypasses, standalone events and byte staging buffers in a
	// hot-path package: flagged, except the annotated site and the
	// value/non-byte shapes.
	analysistest.Run(t, "testdata/poolalloc/bad", "repro/internal/fabric", analysis.Poolalloc)
	// The same constructs in a host-side benchmark package: exempt.
	analysistest.Run(t, "testdata/poolalloc/ok", "repro/internal/simbench", analysis.Poolalloc)
	// Inside sim itself: own Event literals are the implementation and
	// exempt; free-list bypasses are still flagged.
	analysistest.Run(t, "testdata/poolalloc/sim", "repro/internal/sim", analysis.Poolalloc)
}

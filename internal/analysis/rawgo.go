package analysis

import (
	"go/ast"
	"strconv"
	"strings"
)

// Rawgo flags raw Go concurrency outside the two packages allowed to
// own OS-level parallelism: internal/sim (the engine's coroutine
// handoff, and the sharded engine's lane worker pool — the OS threads
// sim.ShardGroup.Run fans a conservative-lookahead window out over) and
// internal/sweep (the experiment worker pool). A bare `go`
// statement silently escapes the virtual clock — the goroutine runs in
// host time, invisible to the engine, and its interleaving breaks the
// determinism guarantee; bare sync primitives and channels block OS
// threads instead of simulated processes. Model code must spawn through
// sim.Engine.Go / sim.Proc and synchronize with sim.WaitQueue,
// sim.Mutex and friends; host-side fan-out goes through sweep.Run.
// The rare legitimate use (a host-side memo cache shared across sweep
// workers) carries //upcvet:rawgo with a reason.
var Rawgo = &Analyzer{
	Name: "rawgo",
	Doc: "flag go statements, sync imports and channel operations outside " +
		"internal/sim and internal/sweep; concurrency goes through sim.Proc or sweep.Run",
	Run: runRawgo,
}

// rawgoExempt are the packages that implement the sanctioned
// concurrency; prefixes so their test units match too. internal/sim
// covers both the single-engine scheduler and the shard workers that
// advance lanes in parallel (internal/sim/shard.go) — everything else,
// including the sharded apps and the fabric's cross-lane messaging,
// stays on simulated processes and is delivered onto lane engines by
// the group's merge, so the analyzer still applies there in full.
var rawgoExempt = []string{
	"repro/internal/sim",
	"repro/internal/sweep",
}

func rawgoExempted(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	for _, p := range rawgoExempt {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runRawgo(pass *Pass) error {
	if rawgoExempted(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "sync" || path == "sync/atomic" {
				pass.ReportAnnotatable(imp.Pos(),
					"import of %q outside internal/sim and internal/sweep: simulated code synchronizes through sim.WaitQueue/sim.Mutex, host fan-out through sweep.Run", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.ReportAnnotatable(n.Pos(),
					"raw go statement escapes the virtual clock; spawn simulated processes with sim.Engine.Go, host workers with sweep.Run")
			case *ast.SendStmt:
				pass.ReportAnnotatable(n.Pos(),
					"channel send blocks the OS thread, not the simulated process; use sim synchronization")
			case *ast.SelectStmt:
				pass.ReportAnnotatable(n.Pos(),
					"select blocks the OS thread, not the simulated process; use sim synchronization")
			case *ast.UnaryExpr:
				if n.Op.String() == "<-" {
					pass.ReportAnnotatable(n.Pos(),
						"channel receive blocks the OS thread, not the simulated process; use sim synchronization")
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" && len(n.Args) > 0 {
					if _, isChan := n.Args[0].(*ast.ChanType); isChan {
						pass.ReportAnnotatable(n.Pos(),
							"channel construction outside internal/sim and internal/sweep; use sim synchronization")
					}
				}
			}
			return true
		})
	}
	return nil
}

package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestRawgo(t *testing.T) {
	// Raw goroutines, channels and sync imports in model code: flagged.
	analysistest.Run(t, "testdata/rawgo/bad", "repro/internal/apps/rawgodata", analysis.Rawgo)
	// Annotated, justified concurrency in a non-exempt package: silent.
	analysistest.Run(t, "testdata/rawgo/ok", "repro/internal/apps/rawgodata", analysis.Rawgo)
	// The same constructs inside internal/sim, which owns the coroutine
	// handoff: exempt.
	analysistest.Run(t, "testdata/rawgo/exempt", "repro/internal/sim/rawgodata", analysis.Rawgo)
}

// The sharedrace analyzer: phase-based race detection on Shared /
// Shared2D arrays.
//
// The UPC memory model the runtime simulates is barrier-synchronized:
// between two collectives ("a synchronization phase"), threads may
// touch remote partitions freely only if the accesses are
// affinity-disjoint. sharedrace partitions every function into phases
// delimited by collectives (interprocedurally — a callee that barriers
// advances the caller's phase, via the callgraph.go summaries), collects
// every access to a shared array with its phase, and flags same-phase
// pairs that may conflict: same array, at least one write, and no
// evidence of disjointness.
//
// Disjointness evidence, modeled on the corpus idioms:
//
//   - both accesses through the local partition (Local/Tile, owner ==
//     t.ID): each thread touches its own blocks;
//   - both through the same thread-bijective owner expression (stream's
//     peer := t.ID ^ 1): the owner map is a permutation, partitions
//     stay disjoint;
//   - both writes at thread-keyed offsets (ft's all-to-all
//     dstOff = t.ID*B): every writer owns a distinct stripe;
//   - either access inside a lexical Lock/TryLock..Unlock span (UTS's
//     steal protocol) or under a nil-guarded Cast span (the castability
//     contract the affinity analyzer enforces);
//   - both under the same solo-executor guard (if t.ID == root);
//   - the accesses sit in sibling arms of a branch whose condition is
//     thread-uniform: all threads take the same arm, the accesses never
//     coexist.
//
// Loops containing collectives are walked twice so the tail of
// iteration k shares a phase with the head of iteration k+1 — deleting
// the barrier at the bottom of a stencil loop is exactly the bug this
// must catch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
)

// Sharedrace flags same-phase conflicting accesses to shared arrays.
var Sharedrace = &Analyzer{
	Name: "sharedrace",
	Doc: "accesses to Shared/Shared2D arrays in the same synchronization phase must be affinity-disjoint.\n" +
		"           Flags same-phase write/read and write/write pairs on one array without ownership,\n" +
		"           lock, cast-guard or bijective-owner evidence (interprocedural, phase-accurate).",
	Run: runSharedrace,
}

// Access classes, by strength of the ownership evidence.
const (
	clUnknown = iota
	clSelf    // local partition: Local/Tile or owner == t.ID
	clBij     // owner is a thread-bijective expression (t.ID^1, (t.ID+d)%t.N)
	clKeyed   // offset carries a t.ID-keyed stripe (dstOff = t.ID*B)
)

type branchStep struct {
	id  string // condition position
	arm int
	dep bool // thread-dependent condition: arms coexist across threads
}

type raceAccess struct {
	arr      string // array identity: defining position of the var/field, or "#parmN"
	arrName  string // display name ("a", "w.recv")
	parm     int    // parameter index when the array is a callee parameter, else -1
	write    bool
	class    int
	ownerKey string // identity of the owner expression for clBij/clSelf
	exempt   bool   // lock-held or nil-guarded Cast span
	solo     string // innermost solo-executor guard text
	branch   []branchStep
	phase    int // collective count from function entry
	pos      token.Pos
}

// A raceSummary is one function's flattened access/phase behavior:
// every shared access with its phase relative to entry, and how many
// phases the function advances.
type raceSummary struct {
	accs  []raceAccess
	delta int
}

// raceState memoizes summaries across the whole program run.
type raceState struct {
	sums       map[string]*raceSummary
	inProgress map[string]bool
}

func raceStateOf(prog *Program) *raceState {
	if v, ok := prog.Summary("sharedrace", "#state"); ok {
		return v.(*raceState)
	}
	st := &raceState{sums: map[string]*raceSummary{}, inProgress: map[string]bool{}}
	prog.SetSummary("sharedrace", "#state", st)
	return st
}

func (st *raceState) summaryOf(prog *Program, key string) *raceSummary {
	if s, ok := st.sums[key]; ok {
		return s
	}
	if st.inProgress[key] {
		return nil // recursion: cut the cycle, under-approximate
	}
	node := prog.Node(key)
	if node == nil {
		return nil
	}
	st.inProgress[key] = true
	w := newRaceWalker(prog, st, node.Unit, node.Decl)
	sum := w.summarize()
	delete(st.inProgress, key)
	st.sums[key] = sum
	return sum
}

func runSharedrace(pass *Pass) error {
	st := raceStateOf(pass.Prog)
	local := map[string]bool{}
	for _, f := range pass.Files {
		local[pass.Fset.Position(f.Pos()).Filename] = true
	}
	reported := map[string]bool{}
	for _, decl := range funcBodies(pass.Files) {
		fn, ok := pass.Info.Defs[decl.Name].(*types.Func)
		if !ok {
			continue
		}
		sum := st.summaryOf(pass.Prog, FuncKey(fn))
		if sum == nil {
			continue
		}
		checkConflicts(pass, sum, local, reported)
	}
	return nil
}

func checkConflicts(pass *Pass, sum *raceSummary, local, reported map[string]bool) {
	byArr := map[string][]int{}
	var arrs []string
	for i, a := range sum.accs {
		if len(byArr[a.arr]) == 0 {
			arrs = append(arrs, a.arr)
		}
		byArr[a.arr] = append(byArr[a.arr], i)
	}
	sort.Strings(arrs)
	for _, arr := range arrs {
		idx := byArr[arr]
		for x := 0; x < len(idx); x++ {
			for y := x + 1; y < len(idx); y++ {
				a, b := sum.accs[idx[x]], sum.accs[idx[y]]
				if conflict(a, b) {
					reportPair(pass, a, b, local, reported)
				}
			}
		}
	}
}

func conflict(a, b raceAccess) bool {
	if !a.write && !b.write {
		return false
	}
	if a.phase != b.phase || a.pos == b.pos {
		return false
	}
	if a.exempt || b.exempt {
		return false
	}
	if a.class == clSelf && b.class == clSelf {
		return false
	}
	if a.class == clBij && b.class == clBij && a.ownerKey != "" && a.ownerKey == b.ownerKey {
		return false
	}
	if a.class == clKeyed && b.class == clKeyed {
		// Both accesses stripe by the thread identity (off = t.ID*B):
		// distinct threads touch distinct stripes, the same thread is
		// ordered by program order.
		return false
	}
	if a.solo != "" && a.solo == b.solo {
		return false
	}
	if exclusiveBranches(a.branch, b.branch) {
		return false
	}
	return true
}

func exclusiveBranches(a, b []branchStep) bool {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			continue
		}
		return a[i].id == b[i].id && a[i].arm != b[i].arm && !a[i].dep
	}
	return false
}

func reportPair(pass *Pass, a, b raceAccess, local, reported map[string]bool) {
	pa, pb := pass.Fset.Position(a.pos), pass.Fset.Position(b.pos)
	// Anchor on the later access, preferring a position inside this
	// unit; pairs entirely outside it belong to the unit that owns them.
	if pb.Filename < pa.Filename || (pb.Filename == pa.Filename && pb.Line < pa.Line) {
		a, b = b, a
		pa, pb = pb, pa
	}
	anchor, other := b, a
	pAnchor, pOther := pb, pa
	if !local[pAnchor.Filename] {
		anchor, other = a, b
		pAnchor, pOther = pa, pb
	}
	if !local[pAnchor.Filename] {
		return
	}
	key := fmt.Sprintf("%s:%d|%s:%d", pa.Filename, pa.Line, pb.Filename, pb.Line)
	if reported[key] {
		return
	}
	reported[key] = true
	if pass.suppressedAt(a.pos) || pass.suppressedAt(b.pos) {
		return
	}
	if os.Getenv("UPCVET_DEBUG") != "" {
		fmt.Printf("DBG %s phase=%d class=%d ok=%q solo=%q br=%v | %s phase=%d class=%d ok=%q solo=%q br=%v\n",
			pa, a.phase, a.class, a.ownerKey, a.solo, a.branch, pb, b.phase, b.class, b.ownerKey, b.solo, b.branch)
	}
	kind := func(acc raceAccess) string {
		if acc.write {
			return "write"
		}
		return "read"
	}
	pass.ReportAnnotatable(anchor.pos,
		"same-phase accesses to shared array %q may conflict: %s here and %s at %s:%d — separate them with a collective or make the indexing affinity-disjoint",
		anchor.arrName, kind(anchor), kind(other), filepath.Base(pOther.Filename), pOther.Line)
}

// ---- The walker ----

type aliasInfo struct {
	arr      string
	arrName  string
	parm     int
	class    int
	ownerKey string
	fromCast bool
}

type raceWalker struct {
	prog *Program
	st   *raceState
	unit *Package
	decl *ast.FuncDecl

	taint   map[types.Object]bool
	params  map[types.Object]int
	assigns map[types.Object][]ast.Expr
	aliases map[types.Object]*aliasInfo
	guarded map[types.Object]bool

	phase   int
	locks   int // flow-tracked Lock/TryLock depth; accesses under it are exempt
	maxExit int
	branch  []branchStep
	solo    string
	accs    []raceAccess
}

func newRaceWalker(prog *Program, st *raceState, unit *Package, decl *ast.FuncDecl) *raceWalker {
	w := &raceWalker{
		prog:    prog,
		st:      st,
		unit:    unit,
		decl:    decl,
		taint:   threadTaint(unit.Info, decl),
		params:  map[types.Object]int{},
		assigns: map[types.Object][]ast.Expr{},
		aliases: map[types.Object]*aliasInfo{},
		guarded: map[types.Object]bool{},
	}
	i := 0
	for _, f := range decl.Type.Params.List {
		for _, name := range f.Names {
			if obj := unit.Info.Defs[name]; obj != nil && sharedArrayType(obj.Type()) {
				w.params[obj] = i
			}
			i++
		}
		if len(f.Names) == 0 {
			i++
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for j, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if obj := unit.Info.ObjectOf(id); obj != nil {
							w.assigns[obj] = append(w.assigns[obj], n.Rhs[j])
						}
					}
				}
			}
		}
		return true
	})
	return w
}

func (w *raceWalker) summarize() *raceSummary {
	w.stmts(w.decl.Body.List)
	if w.phase > w.maxExit {
		w.maxExit = w.phase
	}
	return &raceSummary{accs: w.accs, delta: w.maxExit}
}

func (w *raceWalker) tainted(e ast.Expr) bool {
	return threadDepExpr(w.unit.Info, e, w.taint)
}

// ---- statements ----

func (w *raceWalker) stmts(list []ast.Stmt) bool {
	pushed := 0
	term := false
	for _, s := range list {
		// `if cond { ...; return }` with no else: the lexical remainder
		// is the else arm. Recording it as such lets uniform early-exit
		// guards (if cfg.Verify { ...; return }) make the two paths
		// mutually exclusive.
		if ifs, ok := s.(*ast.IfStmt); ok {
			if w.ifStmt(ifs) {
				w.pushStep(ifs.Pos(), 1, w.tainted(ifs.Cond))
				pushed++
			}
			continue
		}
		if w.stmt(s) {
			term = true
			break
		}
	}
	for ; pushed > 0; pushed-- {
		w.popStep()
	}
	return term
}

func (w *raceWalker) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.expr(r)
		}
		if w.phase > w.maxExit {
			w.maxExit = w.phase
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.IfStmt:
		w.ifStmt(s)
		return false // remainder-step handling lives in stmts
	case *ast.SwitchStmt:
		return w.switchStmt(s.Init, s.Tag, s.Body)
	case *ast.TypeSwitchStmt:
		return w.switchStmt(s.Init, nil, s.Body)
	case *ast.SelectStmt:
		entry, entryLocks := w.phase, w.locks
		exit, exitLocks := entry, entryLocks
		for i, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				w.phase, w.locks = entry, entryLocks
				w.pushStep(s.Pos(), i, false)
				w.stmts(cc.Body)
				w.popStep()
				exit, exitLocks = max(exit, w.phase), max(exitLocks, w.locks)
			}
		}
		w.phase, w.locks = exit, exitLocks
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		walkBody := func() {
			w.stmts(s.Body.List)
			if s.Post != nil {
				w.stmt(s.Post)
			}
		}
		before := w.phase
		walkBody()
		if w.phase > before {
			// The loop contains collectives: walk again so iteration
			// k's tail shares a phase with iteration k+1's head.
			walkBody()
		}
		return false
	case *ast.RangeStmt:
		w.expr(s.X)
		before := w.phase
		w.stmts(s.Body.List)
		if w.phase > before {
			w.stmts(s.Body.List)
		}
		return false
	case *ast.GoStmt:
		w.expr(s.Call)
		return false
	case *ast.DeferStmt:
		// A deferred Unlock runs at function exit: the lock stays held
		// for the lexical remainder, so skip the depth decrement.
		if fn := calleeFunc(w.unit.Info, s.Call); fn != nil && fn.Type().(*types.Signature).Recv() != nil && fn.Name() == "Unlock" {
			for _, a := range s.Call.Args {
				w.expr(a)
			}
			return false
		}
		w.expr(s.Call)
		return false
	case *ast.AssignStmt:
		w.assignStmt(s)
		return false
	case *ast.ExprStmt:
		w.expr(s.X)
		return false
	case *ast.IncDecStmt:
		if idx, ok := ast.Unparen(s.X).(*ast.IndexExpr); ok {
			w.indexAccess(idx, true)
		} else {
			w.expr(s.X)
		}
		return false
	case *ast.SendStmt:
		w.expr(s.Value)
		w.expr(s.Chan)
		return false
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
		return false
	}
	return false
}

func (w *raceWalker) assignStmt(s *ast.AssignStmt) {
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			lhs, rhs := s.Lhs[i], s.Rhs[i]
			id, isIdent := ast.Unparen(lhs).(*ast.Ident)
			if isIdent && (s.Tok == token.DEFINE || s.Tok == token.ASSIGN) {
				if ai, ok := w.resolveSlice(rhs); ok {
					// Alias creation, not an access: la := a.Local(t).
					w.walkOwnerArgs(rhs)
					if obj := w.unit.Info.ObjectOf(id); obj != nil {
						w.aliases[obj] = ai
					}
					continue
				}
			}
			w.expr(rhs)
			w.lhsExpr(lhs, s.Tok != token.DEFINE && s.Tok != token.ASSIGN)
		}
		return
	}
	for _, rhs := range s.Rhs {
		w.expr(rhs)
	}
	for _, lhs := range s.Lhs {
		w.lhsExpr(lhs, false)
	}
}

// lhsExpr records the write of one assignment target. Op-assigns
// (x[i] ^= v) read the target too, but the write already dominates the
// conflict rules.
func (w *raceWalker) lhsExpr(lhs ast.Expr, opAssign bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		if !w.indexAccess(lhs, true) {
			w.expr(lhs.X)
			w.expr(lhs.Index)
		}
	case *ast.Ident:
		// Plain variable rebind; nothing shared is touched.
	default:
		w.expr(lhs)
	}
}

// ifStmt walks an if statement and reports whether the then arm
// terminates with no else present, so the caller can treat the lexical
// remainder as the else arm.
func (w *raceWalker) ifStmt(s *ast.IfStmt) bool {
	if s.Init != nil {
		w.stmt(s.Init)
	}
	w.expr(s.Cond)
	dep := w.tainted(s.Cond)
	entry, entryLocks := w.phase, w.locks
	var exits, lockExits []int

	// Then arm.
	w.pushStep(s.Pos(), 0, dep)
	savedSolo := w.solo
	if w.solo == "" {
		if g := soloGuard(w.unit.Info, s.Cond); g != "" {
			w.solo = g
		}
	}
	restore := w.guardAliases(s.Cond, true)
	t1 := w.stmts(s.Body.List)
	w.solo = savedSolo
	restore()
	w.popStep()
	if !t1 {
		exits = append(exits, w.phase)
		lockExits = append(lockExits, w.locks)
	}
	p1 := w.phase
	w.phase, w.locks = entry, entryLocks

	// Else arm (or fallthrough).
	t2 := false
	if s.Else != nil {
		w.pushStep(s.Pos(), 1, dep)
		restore := w.guardAliases(s.Cond, false)
		t2 = w.stmt(s.Else)
		restore()
		w.popStep()
	}
	if !t2 {
		exits = append(exits, w.phase)
		lockExits = append(lockExits, w.locks)
	}
	w.phase, w.locks = entry, entryLocks
	for i, e := range exits {
		w.phase = max(w.phase, e)
		w.locks = max(w.locks, lockExits[i])
	}
	if len(exits) == 0 {
		w.phase = max(p1, w.phase)
	}
	// `if x == nil { return }` guards x for the lexical remainder.
	if t1 && s.Else == nil {
		for _, obj := range nilCheckedAliases(w.unit.Info, s.Cond, false) {
			w.guarded[obj] = true
		}
	}
	return t1 && s.Else == nil
}

func (w *raceWalker) switchStmt(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) bool {
	if init != nil {
		w.stmt(init)
	}
	dep := tag != nil && w.tainted(tag)
	if tag != nil {
		w.expr(tag)
	}
	entry, entryLocks := w.phase, w.locks
	var exits, lockExits []int
	hasDefault := false
	allTerm := true
	for i, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			if w.tainted(e) {
				dep = true
			}
			w.expr(e)
		}
		w.phase, w.locks = entry, entryLocks
		w.pushStep(body.Pos(), i, dep)
		term := w.stmts(cc.Body)
		w.popStep()
		if !term {
			exits = append(exits, w.phase)
			lockExits = append(lockExits, w.locks)
			allTerm = false
		}
	}
	w.phase, w.locks = entry, entryLocks
	for i, e := range exits {
		w.phase = max(w.phase, e)
		w.locks = max(w.locks, lockExits[i])
	}
	return hasDefault && allTerm
}

func (w *raceWalker) pushStep(pos token.Pos, arm int, dep bool) {
	w.branch = append(w.branch, branchStep{id: w.unit.Fset.Position(pos).String(), arm: arm, dep: dep})
}

func (w *raceWalker) popStep() { w.branch = w.branch[:len(w.branch)-1] }

// guardAliases marks the aliases proven non-nil inside one arm of a
// nil-check condition, returning the restore function.
func (w *raceWalker) guardAliases(cond ast.Expr, thenArm bool) func() {
	objs := nilCheckedAliases(w.unit.Info, cond, thenArm)
	var added []types.Object
	for _, obj := range objs {
		if !w.guarded[obj] {
			w.guarded[obj] = true
			added = append(added, obj)
		}
	}
	return func() {
		for _, obj := range added {
			delete(w.guarded, obj)
		}
	}
}

// nilCheckedAliases extracts the idents proven non-nil when cond holds
// (thenArm) or fails (!thenArm): x != nil conjuncts for then-arms,
// x == nil for else-arms.
func nilCheckedAliases(info *types.Info, cond ast.Expr, thenArm bool) []types.Object {
	var out []types.Object
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		be, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case token.LAND:
			if thenArm {
				walk(be.X)
				walk(be.Y)
			}
		case token.LOR:
			if !thenArm {
				walk(be.X)
				walk(be.Y)
			}
		case token.NEQ, token.EQL:
			want := token.NEQ
			if !thenArm {
				want = token.EQL
			}
			if be.Op != want {
				return
			}
			x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
			if isNilIdent(y) {
				x, y = y, x
			}
			if !isNilIdent(x) {
				return
			}
			if id, ok := y.(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	walk(cond)
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// soloGuard renders a `t.ID == uniform` condition, or "".
func soloGuard(info *types.Info, cond ast.Expr) string {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return ""
	}
	x, y := be.X, be.Y
	if threadIdentExpr(info, y) {
		x, y = y, x
	}
	if threadIdentExpr(info, x) && !threadDepExpr(info, y, nil) {
		return types.ExprString(ast.Unparen(be.X)) + "==" + types.ExprString(ast.Unparen(be.Y))
	}
	return ""
}

// ---- expressions ----

// accessSpec describes one shared-access API function: which argument
// is the array, which the owner (partition index) or global element
// index, which the offset, and whether it writes.
type accessSpec struct {
	arr, owner, idx, off int
	write                bool
}

var accessFuncs = map[string][]accessSpec{
	"PutT":         {{arr: 1, owner: 2, idx: -1, off: 3, write: true}},
	"PutAsyncT":    {{arr: 1, owner: 2, idx: -1, off: 3, write: true}},
	"PutTErr":      {{arr: 1, owner: 2, idx: -1, off: 3, write: true}},
	"PutAsyncTErr": {{arr: 1, owner: 2, idx: -1, off: 3, write: true}},
	"GetT":         {{arr: 1, owner: 3, idx: -1, off: 4, write: false}},
	"GetAsyncT":    {{arr: 1, owner: 3, idx: -1, off: 4, write: false}},
	"GetTErr":      {{arr: 1, owner: 3, idx: -1, off: 4, write: false}},
	"GetAsyncTErr": {{arr: 1, owner: 3, idx: -1, off: 4, write: false}},
	"ReadElem":     {{arr: 1, owner: -1, idx: 2, off: -1, write: false}},
	"ReadElemErr":  {{arr: 1, owner: -1, idx: 2, off: -1, write: false}},
	"WriteElem":    {{arr: 1, owner: -1, idx: 2, off: -1, write: true}},
	"WriteElemErr": {{arr: 1, owner: -1, idx: 2, off: -1, write: true}},
	"CopyT": {
		{arr: 1, owner: 2, idx: -1, off: 3, write: true},
		{arr: 4, owner: 5, idx: -1, off: 6, write: false},
	},
	"PutRect": {{arr: 1, owner: 2, idx: -1, off: -1, write: true}},
	"GetRect": {{arr: 1, owner: 3, idx: -1, off: -1, write: false}},
}

func (w *raceWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		w.stmts(e.Body.List)
	case *ast.CallExpr:
		w.call(e)
	case *ast.IndexExpr:
		if !w.indexAccess(e, false) {
			w.expr(e.X)
		}
		w.expr(e.Index)
	case *ast.SliceExpr:
		if ai, ok := w.resolveSlice(e.X); ok {
			w.record(ai, false, e.Pos())
		} else {
			w.expr(e.X)
		}
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.Ident:
		if ai, ok := w.aliases[w.unit.Info.ObjectOf(e)]; ok {
			w.record(ai, false, e.Pos())
		}
	case *ast.BinaryExpr:
		// A nil comparison mentions an alias without touching elements.
		if (e.Op == token.EQL || e.Op == token.NEQ) && (isNilIdent(e.X) || isNilIdent(e.Y)) {
			return
		}
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexListExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	}
}

// indexAccess records x[i] when x resolves to a shared-array slice.
func (w *raceWalker) indexAccess(e *ast.IndexExpr, write bool) bool {
	ai, ok := w.resolveSlice(e.X)
	if !ok {
		return false
	}
	w.record(ai, write, e.Pos())
	w.expr(e.Index)
	return true
}

func (w *raceWalker) call(call *ast.CallExpr) {
	// Builtin copy: destination write, source read.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "copy" && len(call.Args) == 2 {
		if _, isBuiltin := w.unit.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			if ai, ok := w.resolveSlice(call.Args[0]); ok {
				w.record(ai, true, call.Args[0].Pos())
			} else {
				w.expr(call.Args[0])
			}
			w.expr(call.Args[1])
			return
		}
	}
	fn := calleeFunc(w.unit.Info, call)
	// Shared-access API calls: record the array accesses.
	if fn != nil && fn.Type().(*types.Signature).Recv() == nil {
		if specs, ok := accessFuncs[fn.Name()]; ok {
			for _, spec := range specs {
				w.apiAccess(call, spec)
			}
			for _, a := range call.Args {
				w.expr(a)
			}
			return
		}
	}
	// Evaluation order: arguments (and any function literals in them)
	// before the call's own effect.
	w.expr(call.Fun)
	for _, a := range call.Args {
		w.expr(a)
	}
	if _, ok := CollectiveCall(w.unit.Info, call); ok {
		w.phase++
		return
	}
	// Flow-tracked lock depth: TryLock is treated like Lock (the
	// failure arm stays exempt — under-reporting, never noise).
	if fn != nil && fn.Type().(*types.Signature).Recv() != nil {
		switch fn.Name() {
		case "Lock", "TryLock":
			w.locks++
			return
		case "Unlock":
			if w.locks > 0 {
				w.locks--
			}
			return
		}
	}
	if fn != nil {
		if sum := w.st.summaryOf(w.prog, FuncKey(fn)); sum != nil {
			w.splice(call, fn, sum)
		}
	}
}

// apiAccess records one accessSpec match on a PutT/GetT-style call.
func (w *raceWalker) apiAccess(call *ast.CallExpr, spec accessSpec) {
	if spec.arr >= len(call.Args) {
		return
	}
	arr, arrName, parm, ok := w.resolveArray(call.Args[spec.arr])
	if !ok {
		return
	}
	class, ownerKey := clUnknown, ""
	switch {
	case spec.owner >= 0 && spec.owner < len(call.Args):
		class, ownerKey = w.classifyOwner(call.Args[spec.owner])
	case spec.idx >= 0 && spec.idx < len(call.Args):
		class, ownerKey = w.classifyIndex(call.Args[spec.idx])
	}
	if class != clSelf && spec.off >= 0 && spec.off < len(call.Args) && w.offsetKeyed(call.Args[spec.off]) {
		class, ownerKey = clKeyed, ""
	}
	w.emit(raceAccess{
		arr: arr, arrName: arrName, parm: parm,
		write: spec.write, class: class, ownerKey: ownerKey,
		pos: call.Pos(),
	})
}

func (w *raceWalker) record(ai *aliasInfo, write bool, pos token.Pos) {
	w.emit(raceAccess{
		arr: ai.arr, arrName: ai.arrName, parm: ai.parm,
		write: write, class: ai.class, ownerKey: ai.ownerKey,
		pos: pos,
	})
}

func (w *raceWalker) emit(acc raceAccess) {
	acc.phase = w.phase
	acc.branch = append([]branchStep(nil), w.branch...)
	if acc.solo == "" {
		acc.solo = w.solo
	}
	acc.exempt = acc.exempt || w.locks > 0
	w.accs = append(w.accs, acc)
}

// splice inlines a callee's summary at the call site: parameter-passed
// arrays rebind to the caller's arguments, phases shift by the current
// phase, branch context and caller-side lock/solo state apply.
func (w *raceWalker) splice(call *ast.CallExpr, fn *types.Func, sum *raceSummary) {
	site := w.unit.Fset.Position(call.Pos()).String()
	callLocked := w.locks > 0
	for _, a := range sum.accs {
		b := a
		if b.arr == "" || b.parm >= 0 && len(b.arr) > 0 && b.arr[0] == '#' {
			// Parameter-passed array: rebind to the caller's argument.
			if b.parm < 0 || b.parm >= len(call.Args) {
				continue
			}
			arr, arrName, parm, ok := w.resolveArray(call.Args[b.parm])
			if !ok {
				continue
			}
			b.arr, b.arrName, b.parm = arr, arrName, parm
		}
		b.phase = w.phase + a.phase
		steps := append([]branchStep(nil), w.branch...)
		steps = append(steps, branchStep{id: site})
		b.branch = append(steps, a.branch...)
		if b.solo == "" {
			b.solo = w.solo
		}
		b.exempt = b.exempt || callLocked
		w.accs = append(w.accs, b)
	}
	w.phase += sum.delta
}

// walkOwnerArgs walks the argument expressions of an alias-creating
// call (a.Cast(t, peer)) without recording the alias itself as an
// access.
func (w *raceWalker) walkOwnerArgs(e ast.Expr) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		for _, a := range call.Args {
			w.expr(a)
		}
	}
}

// ---- resolution and classification ----

// sharedArrayType reports whether t is (a pointer to) Shared/Shared2D.
func sharedArrayType(t types.Type) bool {
	name := recvTypeName(t)
	return name == "shared" || name == "shared2d"
}

// resolveArray identifies the shared array behind an expression: a
// local/package variable, a struct field (stable across the methods of
// one type), or a function parameter (kept symbolic for summary
// rebinding at call sites).
func (w *raceWalker) resolveArray(e ast.Expr) (key, name string, parm int, ok bool) {
	e = ast.Unparen(e)
	tv, found := w.unit.Info.Types[e]
	if !found || !sharedArrayType(tv.Type) {
		return "", "", -1, false
	}
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = w.unit.Info.ObjectOf(e)
	case *ast.SelectorExpr:
		obj = w.unit.Info.ObjectOf(e.Sel)
	default:
		return "", "", -1, false
	}
	if obj == nil {
		return "", "", -1, false
	}
	if i, isParm := w.params[obj]; isParm {
		return fmt.Sprintf("#parm%d", i), types.ExprString(e), i, true
	}
	// The defining position is stable across analysis units (the same
	// file parsed for an import unit gets fresh token.Pos values, but
	// the rendered position is identical).
	return w.unit.Fset.Position(obj.Pos()).String(), types.ExprString(e), -1, true
}

// resolveSlice resolves a []T expression to the shared array it views:
// an alias variable, or a direct Local/Tile/Cast/CastTile/Partition
// call.
func (w *raceWalker) resolveSlice(e ast.Expr) (*aliasInfo, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.unit.Info.ObjectOf(e)
		if ai, ok := w.aliases[obj]; ok {
			out := *ai
			if ai.fromCast && w.guarded[obj] {
				out.class = clSelf
				out.ownerKey = "castguard"
			}
			return &out, true
		}
	case *ast.SliceExpr:
		return w.resolveSlice(e.X)
	case *ast.CallExpr:
		sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, false
		}
		arr, arrName, parm, found := w.resolveArray(sel.X)
		if !found {
			return nil, false
		}
		switch sel.Sel.Name {
		case "Local", "Tile":
			return &aliasInfo{arr: arr, arrName: arrName, parm: parm, class: clSelf, ownerKey: "ID"}, true
		case "Cast", "CastTile":
			if len(e.Args) >= 2 {
				class, key := w.classifyOwner(e.Args[1])
				return &aliasInfo{arr: arr, arrName: arrName, parm: parm, class: class, ownerKey: key, fromCast: true}, true
			}
		case "Partition":
			if len(e.Args) >= 1 {
				class, key := w.classifyOwner(e.Args[0])
				return &aliasInfo{arr: arr, arrName: arrName, parm: parm, class: class, ownerKey: key}, true
			}
		}
	}
	return nil, false
}

// classifyOwner classifies a partition-owner expression.
func (w *raceWalker) classifyOwner(e ast.Expr) (int, string) {
	e = ast.Unparen(e)
	if threadIdentExpr(w.unit.Info, e) {
		return clSelf, "ID"
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := w.unit.Info.ObjectOf(id)
		if obj == nil {
			return clUnknown, ""
		}
		rhss := w.assigns[obj]
		if len(rhss) == 0 {
			return clUnknown, ""
		}
		class := clSelf
		for _, rhs := range rhss {
			switch {
			case threadIdentExpr(w.unit.Info, ast.Unparen(rhs)):
			case w.bijExpr(rhs):
				class = clBij
			default:
				return clUnknown, ""
			}
		}
		return class, w.unit.Fset.Position(obj.Pos()).String()
	}
	if w.bijExpr(e) {
		return clBij, types.ExprString(e)
	}
	return clUnknown, ""
}

// classifyIndex classifies a global element index (ReadElem/WriteElem):
// a pure thread-identity index is the "my slot" idiom on block-1
// arrays.
func (w *raceWalker) classifyIndex(e ast.Expr) (int, string) {
	e = ast.Unparen(e)
	if threadIdentExpr(w.unit.Info, e) {
		return clSelf, "ID"
	}
	if id, ok := e.(*ast.Ident); ok {
		obj := w.unit.Info.ObjectOf(id)
		if obj != nil {
			rhss := w.assigns[obj]
			if len(rhss) > 0 {
				all := true
				for _, rhs := range rhss {
					if !threadIdentExpr(w.unit.Info, ast.Unparen(rhs)) {
						all = false
						break
					}
				}
				if all {
					return clSelf, "ID"
				}
			}
		}
	}
	return clUnknown, ""
}

// bijExpr recognizes thread-bijective owner arithmetic: an expression
// over ^ + - % * whose leaves include the thread identity — for any
// fixed values of the uniform leaves, a permutation of thread ids
// (t.ID^1, (t.ID+d)%t.N).
func (w *raceWalker) bijExpr(e ast.Expr) bool {
	hasIdent := false
	valid := true
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if !valid {
			return
		}
		e = ast.Unparen(e)
		if threadIdentExpr(w.unit.Info, e) {
			hasIdent = true
			return
		}
		switch e := e.(type) {
		case *ast.BinaryExpr:
			switch e.Op {
			case token.XOR, token.ADD, token.SUB, token.REM, token.MUL:
				walk(e.X)
				walk(e.Y)
			default:
				valid = false
			}
		case *ast.Ident, *ast.BasicLit, *ast.SelectorExpr:
			// Uniform leaf (untainted variable, constant, field).
			if w.tainted(e) {
				valid = false
			}
		default:
			valid = false
		}
	}
	walk(e)
	return valid && hasIdent
}

// offsetKeyed recognizes a thread-keyed stripe offset: the expression
// (or the single-assignment variable holding it) contains a
// multiplicative term over the thread identity, the ft all-to-all
// dstOff = t.ID*B idiom.
func (w *raceWalker) offsetKeyed(e ast.Expr) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		obj := w.unit.Info.ObjectOf(id)
		if obj == nil {
			return false
		}
		rhss := w.assigns[obj]
		if len(rhss) == 0 {
			return false
		}
		for _, rhs := range rhss {
			if !w.keyedTerm(rhs) {
				return false
			}
		}
		return true
	}
	return w.keyedTerm(e)
}

func (w *raceWalker) keyedTerm(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.MUL {
			if w.tainted(be.X) || w.tainted(be.Y) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSharedrace(t *testing.T) {
	// Same-phase conflicting accesses without ownership evidence,
	// including a conflict spliced through a call: flagged.
	analysistest.Run(t, "testdata/sharedrace/bad", "repro/internal/apps/racedata", analysis.Sharedrace)
	// Barrier-separated phases, owner-affine and thread-keyed indexing,
	// Cast guards, lock spans, solo guards, and a multi-line-statement
	// suppression: quiet.
	analysistest.Run(t, "testdata/sharedrace/ok", "repro/internal/apps/raceok", analysis.Sharedrace)
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Spanpair flags unbalanced trace span emissions: a closer returned by
// Proc.TraceSpan / Proc.TraceSpanArg (or a local wrapper named
// traceSpan) that some path through the function never calls. An open
// KSpanBegin with no matching KSpanEnd corrupts every downstream sink —
// the Collector's per-proc open stack leaks, the Chrome export closes
// the wrong spans at run end — and, because the closer is invisible on
// the happy path, the bug only shows on the early-return path that
// skipped it. The analysis walks the function's statement paths:
// branches must close or defer the closer before every return and
// before falling off the end; passing the closer to a deferred call or
// returning it hands the obligation to the caller.
var Spanpair = &Analyzer{
	Name: "spanpair",
	Doc: "flag trace span closers (TraceSpan/TraceSpanArg results) not " +
		"called on every path of the acquiring function",
	Run: runSpanpair,
}

// spanOpeners are the callables whose func() result closes a span.
var spanOpeners = map[string]bool{
	"TraceSpan": true, "TraceSpanArg": true, "traceSpan": true,
}

func isSpanOpener(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return spanOpeners[fun.Sel.Name]
	case *ast.Ident:
		return spanOpeners[fun.Name]
	}
	return false
}

func runSpanpair(pass *Pass) error {
	for _, fd := range funcBodies(pass.Files) {
		checkSpanFunc(pass, fd.Body)
		// Function literals own their spans independently: a closer
		// opened inside a literal must close inside it.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				checkSpanFunc(pass, fl.Body)
			}
			return true
		})
	}
	return nil
}

// checkSpanFunc analyzes one function body (literals excluded — they
// are analyzed separately) for discarded and path-unbalanced closers.
func checkSpanFunc(pass *Pass, body *ast.BlockStmt) {
	closers := map[types.Object]token.Pos{} // closer var -> first opening pos
	walkOwnStmts(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isSpanOpener(call) {
				pass.Reportf(call.Pos(),
					"span closer discarded: the func() returned by TraceSpan must be called to emit the matching KSpanEnd")
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isSpanOpener(call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				if id.Name == "_" {
					pass.Reportf(call.Pos(),
						"span closer discarded: the func() returned by TraceSpan must be called to emit the matching KSpanEnd")
					continue
				}
				if obj := pass.Info.ObjectOf(id); obj != nil {
					if _, seen := closers[obj]; !seen {
						closers[obj] = call.Pos()
					}
				}
			}
		}
	})
	// Deterministic order: walk closers by opening position.
	ordered := make([]types.Object, 0, len(closers))
	for obj := range closers {
		ordered = append(ordered, obj)
	}
	sort.Slice(ordered, func(i, j int) bool { return closers[ordered[i]] < closers[ordered[j]] })
	for _, obj := range ordered {
		checkCloserPaths(pass, body, obj, closers[obj])
	}
}

// walkOwnStmts visits every node of body that is not inside a nested
// function literal.
func walkOwnStmts(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// spanState is the walker's per-path closer state.
type spanState int

const (
	spanUnopened spanState = iota
	spanOpen
	spanClosed
)

// mergeSpan joins the states of two converging paths; open wins so a
// later return on the merged path is still checked.
func mergeSpan(a, b spanState) spanState {
	if a == spanOpen || b == spanOpen {
		return spanOpen
	}
	if a == b {
		return a
	}
	return spanUnopened
}

type spanWalker struct {
	pass    *Pass
	obj     types.Object
	openPos token.Pos
	escaped bool
}

// checkCloserPaths verifies that every path from the closer's opening
// assignment calls it (or defers it, or returns it) before leaving the
// function.
func checkCloserPaths(pass *Pass, body *ast.BlockStmt, obj types.Object, openPos token.Pos) {
	w := &spanWalker{pass: pass, obj: obj, openPos: openPos}
	// A closer referenced by a non-deferred literal (stored, passed
	// along) leaves lexical reach; trust the programmer there. Deferred
	// literals are still handled precisely by the path walk.
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && usesObject(pass.Info, fl, obj) {
			w.escaped = true
			return false
		}
		return true
	})
	if w.escaped {
		return
	}
	st, terminated := w.stmts(body.List, spanUnopened)
	if !terminated && st == spanOpen {
		pass.ReportAnnotatable(openPos,
			"span closer %s is not called before the function falls off the end; every KSpanBegin needs its KSpanEnd", obj.Name())
	}
}

func (w *spanWalker) stmts(list []ast.Stmt, st spanState) (spanState, bool) {
	for _, s := range list {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *spanWalker) stmt(s ast.Stmt, st spanState) (spanState, bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for i, rhs := range s.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isSpanOpener(call) || i >= len(s.Lhs) {
				continue
			}
			if id, ok := s.Lhs[i].(*ast.Ident); ok && w.pass.Info.ObjectOf(id) == w.obj {
				return spanOpen, false
			}
		}
		return st, false
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return st, false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if w.pass.Info.ObjectOf(id) == w.obj {
				return spanClosed, false
			}
			if id.Name == "panic" {
				return st, true
			}
		}
		if isTerminalCall(call) {
			return st, true
		}
		return st, false
	case *ast.DeferStmt:
		if id, ok := ast.Unparen(s.Call.Fun).(*ast.Ident); ok && w.pass.Info.ObjectOf(id) == w.obj {
			return spanClosed, false
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok && usesObject(w.pass.Info, fl, w.obj) {
			return spanClosed, false
		}
		return st, false
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && w.pass.Info.ObjectOf(id) == w.obj {
				return spanClosed, true // obligation transferred to caller
			}
		}
		if st == spanOpen {
			w.pass.ReportAnnotatable(s.Pos(),
				"span closer %s (opened at %s) is not called on this return path",
				w.obj.Name(), w.pass.Fset.Position(w.openPos))
		}
		return st, true
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		thenSt, thenTerm := w.stmts(s.Body.List, st)
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st)
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeSpan(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.stmts(s.Body.List, st) // report leaks inside; zero iterations possible
		return st, s.Cond == nil && !hasBreak(s.Body)
	case *ast.RangeStmt:
		w.stmts(s.Body.List, st)
		return st, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.switchStmt(s, st)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; the loop or
		// label context was walked with the entry state already.
		return st, true
	case *ast.GoStmt:
		return st, false
	default:
		return st, false
	}
}

// switchStmt handles switch/type-switch/select: every case body walks
// from the entry state; the merged state closes only when all
// non-terminating cases close and a default exists.
func (w *spanWalker) switchStmt(s ast.Stmt, st spanState) (spanState, bool) {
	var body *ast.BlockStmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	hasDefault := false
	allClose, anyOpen, allTerm := true, false, true
	for _, clause := range body.List {
		var list []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			list = c.Body
		}
		cs, cterm := w.stmts(list, st)
		if !cterm {
			allTerm = false
			if cs != spanClosed {
				allClose = false
			}
			if cs == spanOpen {
				anyOpen = true
			}
		}
	}
	if allTerm && hasDefault && len(body.List) > 0 {
		return st, true
	}
	switch {
	case anyOpen:
		return spanOpen, false
	case allClose && hasDefault && len(body.List) > 0:
		return spanClosed, false
	default:
		return st, false
	}
}

// isTerminalCall recognizes calls that never return: os.Exit,
// log.Fatal*, testing's t.Fatal*/t.Skip*.
func isTerminalCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Exit", "Fatal", "Fatalf", "FailNow", "Fatalln", "Skip", "Skipf", "SkipNow", "Goexit":
		return true
	}
	return false
}

// hasBreak reports whether the block contains a break that could leave
// the enclosing for statement.
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// break inside these doesn't reach our loop (unlabeled).
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK {
				found = true
			}
		}
		return !found
	})
	return found
}

package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestSpanpair(t *testing.T) {
	// Discarded closers, an early return past the closer, and an open
	// merge falling off the end: flagged.
	analysistest.Run(t, "testdata/spanpair/bad", "repro/internal/apps/spanpairdata", analysis.Spanpair)
	// Defer, all-branches close, obligation transfer, deferred literal
	// and an annotated deliberate leak: silent.
	analysistest.Run(t, "testdata/spanpair/ok", "repro/internal/apps/spanpairdata", analysis.Spanpair)
}

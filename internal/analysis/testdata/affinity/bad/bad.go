// Package affdata violates the castability contract: Cast results
// escape their scope or are dereferenced unguarded, and Partition
// bypasses the affinity model outside internal/upc. Each site must be
// flagged. The stub types mirror upc.Shared and upc.Thread's method
// shapes; the analyzer keys on method names, not import paths.
package affdata

type thread struct{}

// Castable mirrors upc.Thread.Castable.
func (*thread) Castable(owner int) bool { return owner == 0 }

type shared struct{}

// Cast mirrors upc.Shared.Cast: nil for non-castable owners.
func (*shared) Cast(t *thread, owner int) []float64 { return nil }

// Partition mirrors upc.Shared.Partition.
func (*shared) Partition(owner int) []float64 { return nil }

var global []float64

var sink func() float64

func storesGlobal(s *shared, th *thread) {
	global = s.Cast(th, 1) // want "stored in package-level variable global"
}

func directDeref(s *shared, th *thread) float64 {
	return s.Cast(th, 1)[0] // want "Cast result dereferenced without affinity check"
}

func unguarded(s *shared, th *thread) float64 {
	p := s.Cast(th, 1) // want "Cast result p dereferenced without affinity check"
	return p[0]
}

func escapes(s *shared, th *thread) {
	p := s.Cast(th, 1)
	if p != nil {
		sink = func() float64 { return p[0] } // want "closure capturing Cast result p escapes"
	}
}

func bypasses(s *shared) float64 {
	return s.Partition(2)[0] // want "Partition bypasses the affinity model"
}

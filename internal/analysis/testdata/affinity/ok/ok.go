// Package affok uses Cast and Partition within the contract: nil and
// len guards before dereference, an explicit Castable query, and an
// annotated Partition. The affinity analyzer must stay silent.
package affok

type thread struct{}

// Castable mirrors upc.Thread.Castable.
func (*thread) Castable(owner int) bool { return owner == 0 }

type shared struct{}

// Cast mirrors upc.Shared.Cast: nil for non-castable owners.
func (*shared) Cast(t *thread, owner int) []float64 { return nil }

// Partition mirrors upc.Shared.Partition.
func (*shared) Partition(owner int) []float64 { return nil }

func nilGuarded(s *shared, th *thread) float64 {
	p := s.Cast(th, 1)
	if p == nil {
		return 0
	}
	return p[0]
}

func lenGuarded(s *shared, th *thread) float64 {
	p := s.Cast(th, 1)
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

func castableFirst(s *shared, th *thread) float64 {
	if !th.Castable(1) {
		return 0
	}
	p := s.Cast(th, 1)
	return p[0]
}

func annotatedPartition(s *shared) float64 {
	//upcvet:affinity -- verification against the reference, outside the timed run
	return s.Partition(1)[0]
}

// Package upcdata is type-checked as repro/internal/upc itself, where
// Partition is implemented and exempt from the bypass rule.
package upcdata

type shared struct{}

// Partition mirrors upc.Shared.Partition.
func (*shared) Partition(owner int) []float64 { return nil }

func insideUPC(s *shared) []float64 {
	return s.Partition(1)
}

// Package app is the importing half of the cross-package call-graph
// fixture: Kernel reaches leaf's Barrier only through two edges.
package app

import leaf "repro/internal/analysis/testdata/callgraph/leaf"

func Kernel(t *leaf.Thread) {
	Step(t)
}

func Step(t *leaf.Thread) {
	leaf.Sync(t)
}

func Leafless() int {
	return leaf.Pure(1)
}

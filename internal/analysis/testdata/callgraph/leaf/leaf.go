// Package leaf is the imported half of the cross-package call-graph
// fixture: it owns the collective-bearing Thread type.
package leaf

type Thread struct{ ID, N int }

func (*Thread) Barrier() {}

// Sync is the collective-reaching entry point app calls across the
// package boundary.
func Sync(t *Thread) {
	t.Barrier()
}

// Pure never reaches a collective.
func Pure(x int) int {
	return x + 1
}

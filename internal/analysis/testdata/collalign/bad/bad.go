// Package colldata seeds the textually-unaligned-barrier deadlocks
// collalign must catch: collectives guarded by thread-identity
// branches, thread-dependent loop trip counts enclosing collectives,
// and the same bugs hidden behind a call. The stub types mirror the
// upc.Thread / group / ShardBarrier method shapes; the analyzer keys
// on method names and thread-identity expressions, not import paths.
package colldata

type thread struct{ ID, N int }

func (*thread) Barrier() {}

func (t *thread) IsLeader() bool { return t.ID == 0 }

type shardBarrier struct{}

func (*shardBarrier) Wait(p *int, lane int) {}

var work int

// The classic: only thread 0 reaches the barrier.
func condBarrier(t *thread) {
	if t.ID == 0 { // want "thread-conditional branch"
		t.Barrier()
	}
}

// Divergent early exit: high threads skip the collective entirely.
func earlyReturn(t *thread) {
	if t.ID > 2 { // want "thread-conditional branch"
		return
	}
	t.Barrier()
}

// Thread-dependent trip count: threads execute different numbers of
// barrier iterations and misalign.
func unbalancedLoop(t *thread) {
	for i := t.ID; i < 16; i += t.N { // want "thread-dependent trip count"
		t.Barrier()
	}
}

// The same bug one call away: the helper's collective is reached only
// by the leader (interprocedural MayCollect).
func helperBarrier(t *thread) {
	t.Barrier()
}

func leaderOnly(t *thread) {
	if t.IsLeader() { // want "thread-conditional branch"
		helperBarrier(t)
	}
}

// Thread-dependent switch dispatch around a collective.
func switchDivergent(t *thread) {
	switch t.ID { // want "thread-conditional switch"
	case 0:
		t.Barrier()
	default:
		work++
	}
}

// Shard-runtime collectives count too.
func shardCond(t *thread, b *shardBarrier) {
	if t.ID%2 == 0 { // want "thread-conditional branch"
		b.Wait(nil, 0)
	}
}

// Package collok holds the aligned shapes collalign must stay quiet
// on: uniform conditions, branches whose arms run the same collective
// sequence, collective-cleansed loop bounds, and annotated suppression.
package collok

type thread struct{ ID, N int }

func (*thread) Barrier() {}

// AllReduceSumInt mirrors the upc package collective: every thread
// gets the same replicated result.
func AllReduceSumInt(t *thread, v int) int { return v }

var work int

// Uniform condition: all threads take the same arm.
func uniformCond(t *thread, steps int) {
	if steps > 4 {
		t.Barrier()
	}
}

// Thread-conditional arms with identical collective sequences align.
func balancedArms(t *thread) {
	if t.ID == 0 {
		work++
		t.Barrier()
	} else {
		t.Barrier()
	}
}

// The loop bound is thread-dependent input reduced to a replicated
// value: every thread runs the same trip count.
func cleansedBound(t *thread) {
	n := AllReduceSumInt(t, t.ID)
	for i := 0; i < n; i++ {
		t.Barrier()
	}
}

// Thread-conditional branches without collectives are fine.
func noCollectives(t *thread) {
	if t.ID == 0 {
		work++
	}
}

// Justified divergence is suppressible.
func annotated(t *thread) {
	//upcvet:collalign -- intentionally divergent in this fixture
	if t.ID == 0 {
		t.Barrier()
	}
}

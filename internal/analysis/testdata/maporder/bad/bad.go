// Package maporderdata ranges over maps with order-sensitive bodies:
// every loop here turns Go's randomized map iteration into output
// nondeterminism — the ChromeWriter bug class — and must be flagged.
package maporderdata

import (
	"bytes"
	"fmt"
)

func printsDirectly(m map[string]int) {
	for k, v := range m { // want "map iteration order reaches an ordered output .fmt.Println"
		fmt.Println(k, v)
	}
}

func writesBuffer(m map[string]int, buf *bytes.Buffer) {
	for k := range m { // want "map iteration order reaches an ordered output .call to .WriteString"
		buf.WriteString(k)
	}
}

func appendsUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order reaches an ordered output .append to keys"
		keys = append(keys, k)
	}
	return keys
}

func concatenates(m map[string]int) string {
	out := ""
	for k := range m { // want "map iteration order reaches an ordered output .string concatenation onto out"
		out += k
	}
	return out
}

// emit is an order-sensitive sink one call away: the loop inherits its
// effect transitively.
func emit(k string) {
	fmt.Println(k)
}

func callsEmitter(m map[string]int) {
	for k := range m { // want "transitive emission via emit"
		emit(k)
	}
}

func callsClosure(m map[string]int) {
	flush := func(k string) {
		fmt.Println(k)
	}
	for k := range m { // want "transitive emission via closure flush"
		flush(k)
	}
}

// Package maporderdata ranges over maps with order-insensitive
// bodies: the collect-keys-then-sort idiom, commutative accumulation,
// and an annotated loop. The maporder analyzer must stay silent.
package maporderdata

import (
	"fmt"
	"sort"
)

func collectThenSort(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

func accumulates(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func inverts(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

func annotated(m map[string]int) {
	//upcvet:ordered -- exercising the loop-site alias; order is deliberately visible
	for k := range m {
		fmt.Println(k)
	}
}

// Package fabricdata poses as repro/internal/fabric: fresh heap
// allocations of free-list-managed record types, standalone events and
// byte staging buffers must each be flagged, except at annotated sites.
package fabricdata

import "repro/internal/sim"

type rec struct{ next *rec }

// port declares the pool that makes rec a managed record type.
type port struct {
	pool sim.FreeList[rec]
}

func fresh() *rec {
	return &rec{} // want "bypasses the free list"
}

func freshNew() *rec {
	return new(rec) // want "bypasses the free list"
}

func event() *sim.Event {
	return &sim.Event{} // want "standalone event allocation"
}

func stage(n int) []byte {
	return make([]byte, n) // want "payload staging buffer"
}

func annotated() *rec {
	return &rec{} //upcvet:poolalloc -- suppressed: the annotation must silence the finding
}

func value() rec {
	return rec{} // a stack value, not a heap bypass: must not be flagged
}

func modelSlice(n int) []int64 {
	return make([]int64, n) // non-byte slices are modeling state: must not be flagged
}

func useParts(p *port) *rec {
	return p.pool.Get()
}

// Package okdata holds the same constructs as bad.go but is
// type-checked as repro/internal/simbench — a host-side benchmark
// package outside the comm hot path, exempt from the rule.
package okdata

import "repro/internal/sim"

type rec struct{ next *rec }

type bench struct {
	pool sim.FreeList[rec]
}

func fresh() *rec            { return &rec{} }
func event() *sim.Event      { return &sim.Event{} }
func stage(n int) []byte     { return make([]byte, n) }
func useParts(b *bench) *rec { return b.pool.Get() }

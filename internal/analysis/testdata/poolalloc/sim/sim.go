// Package simdata poses as repro/internal/sim itself: the package that
// implements Event may allocate its own event values, but bypassing a
// free list is still flagged there.
package simdata

type Event struct{ fired bool }

type FreeList[T any] struct{ free []*T }

// Get stands in for the real free list's constructor path; the new(T)
// inside a generic pool body is the pool API, not a bypass.
func (l *FreeList[T]) Get() *T {
	if n := len(l.free); n > 0 {
		x := l.free[n-1]
		l.free = l.free[:n-1]
		return x
	}
	return new(T)
}

type rec struct{ next *rec }

var pool FreeList[rec]

func ownEvent() *Event { return &Event{} } // sim implements Event: exempt

func fresh() *rec {
	return &rec{} // want "bypasses the free list"
}

// Package rawgodata uses raw Go concurrency in model code: goroutines,
// channels and sync primitives outside internal/sim and internal/sweep.
// Every construct here escapes the virtual clock and must be flagged.
package rawgodata

import (
	"sync" // want "import of .sync. outside internal/sim and internal/sweep"
)

var mu sync.Mutex

func spawns(work func()) {
	go work() // want "raw go statement escapes the virtual clock"
}

func channels() int {
	ch := make(chan int, 1) // want "channel construction outside internal/sim and internal/sweep"
	ch <- 1                 // want "channel send blocks the OS thread"
	return <-ch             // want "channel receive blocks the OS thread"
}

func selects(ch chan int) int {
	select { // want "select blocks the OS thread"
	case v := <-ch: // want "channel receive blocks the OS thread"
		return v
	default:
		return 0
	}
}

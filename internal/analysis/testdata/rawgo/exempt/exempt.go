// Package rawgodata is the same raw concurrency as the bad case, but
// type-checked as internal/sim — the package that owns the coroutine
// handoff. The rawgo analyzer must exempt it entirely.
package rawgodata

import (
	"sync"
)

var mu sync.Mutex

func spawns(work func()) {
	done := make(chan struct{})
	go func() {
		work()
		done <- struct{}{}
	}()
	<-done
}

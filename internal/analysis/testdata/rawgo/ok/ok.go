// Package rawgodata carries annotated, justified concurrency in a
// non-exempt package: each construct wears //upcvet:rawgo, so the
// analyzer must stay silent.
package rawgodata

import (
	"sync" //upcvet:rawgo -- host-side memo cache, not simulated concurrency
)

var (
	cacheMu sync.Mutex
	cache   = map[int]int{}
)

func memoized(k int, f func(int) int) int {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if v, ok := cache[k]; ok {
		return v
	}
	v := f(k)
	cache[k] = v
	return v
}

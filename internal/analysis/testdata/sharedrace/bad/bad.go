// Package racedata seeds the same-phase conflicts sharedrace must
// catch: shared accesses with no collective between them and no
// ownership evidence. The stubs mirror the upc.Shared / upc.Thread
// shapes the analyzer keys on.
package racedata

type thread struct{ ID, N int }

func (*thread) Barrier() {}

type shared struct{}

func (*shared) Local(t *thread) []int64 { return nil }

func (*shared) Cast(t *thread, owner int) []int64 { return nil }

func PutT(t *thread, s *shared, owner, off int, src []int64) {}

func GetT(t *thread, s *shared, dst []int64, owner, off int) {}

func ReadElem(t *thread, s *shared, i int) int64 { return 0 }

func WriteElem(t *thread, s *shared, i int, v int64) {}

// A remote put and a local read with no collective between them: the
// put may land in this thread's partition mid-read.
func crossThenLocal(t *thread, s *shared) int64 {
	buf := make([]int64, 1)
	PutT(t, s, (t.ID*7+3)%t.N, 0, buf)
	la := s.Local(t)
	return la[0] // want "may conflict"
}

// Two writes to unproven-disjoint global slots.
func unkeyedWrites(t *thread, s *shared) {
	WriteElem(t, s, t.ID, 1)
	WriteElem(t, s, 2*t.ID+1, 2) // want "may conflict"
}

// The deleted-barrier shape: the write/read pair is fine only with the
// collective between them; commenting it out must trip the analyzer.
func missingBarrier(t *thread, s *shared) int64 {
	la := s.Local(t)
	la[0] = int64(t.ID)
	// t.Barrier() was here.
	return ReadElem(t, s, (t.ID+1)%t.N) // want "may conflict"
}

// The bug one call away: the callee's remote write is spliced into the
// caller's phase, where it meets the local read.
func remoteWrite(t *thread, s *shared) {
	buf := make([]int64, 1)
	PutT(t, s, (t.ID*5+1)%t.N, 0, buf)
}

func viaCall(t *thread, s *shared) int64 {
	remoteWrite(t, s)
	la := s.Local(t)
	return la[0] // want "may conflict"
}

// Package raceok holds the disjointness idioms sharedrace must accept:
// barrier-separated phases, owner-affine accesses, thread-keyed
// stripes, Cast-guarded spans, lock-held protocols, solo-executor
// guards and annotated suppression of a multi-line statement.
package raceok

type thread struct{ ID, N int }

func (*thread) Barrier() {}

type shared struct{}

func (*shared) Local(t *thread) []int64 { return nil }

func (*shared) Cast(t *thread, owner int) []int64 { return nil }

type lock struct{}

func (*lock) Lock(t *thread) {}

func (*lock) TryLock(t *thread) bool { return true }

func (*lock) Unlock(t *thread) {}

func PutT(t *thread, s *shared, owner, off int, src []int64) {}

func GetT(t *thread, s *shared, dst []int64, owner, off int) {}

func ReadElem(t *thread, s *shared, i int) int64 { return 0 }

func WriteElem(t *thread, s *shared, i int, v int64) {}

// Both accesses stay in this thread's partition.
func bothLocal(t *thread, s *shared) int64 {
	la := s.Local(t)
	la[0] = 1
	return la[1]
}

// A collective separates the phases.
func barrierSeparated(t *thread, s *shared) int64 {
	la := s.Local(t)
	la[0] = int64(t.ID)
	t.Barrier()
	return ReadElem(t, s, (t.ID+1)%t.N)
}

// Affinity-disjoint by stripe: every access offsets by t.ID*B, so
// distinct threads touch distinct stripes of any partition.
func keyedStripes(t *thread, s *shared) {
	buf := make([]int64, 4)
	PutT(t, s, 0, t.ID*4, buf)
	GetT(t, s, buf, 1, t.ID*4)
}

// The same bijective owner expression on both sides keeps the
// partition map a permutation.
func bijectivePeer(t *thread, s *shared) {
	peer := t.ID ^ 1
	buf := make([]int64, 1)
	PutT(t, s, peer, 0, buf)
	GetT(t, s, buf, peer, 8)
}

// A nil-guarded Cast span is the castability contract the affinity
// analyzer enforces; inside it the pointer is node-local.
func castGuarded(t *thread, s *shared) int64 {
	if seg := s.Cast(t, 1); seg != nil {
		seg[0] = 1
	}
	la := s.Local(t)
	return la[0]
}

// Lock-held accesses are serialized, including past the early-release
// return arm.
func lockProtocol(t *thread, s *shared, l *lock, full bool) int64 {
	l.Lock(t)
	if full {
		l.Unlock(t)
		return 0
	}
	WriteElem(t, s, 5, 1)
	l.Unlock(t)
	return ReadElem(t, s, 5)
}

// Only the root executes both accesses.
func soloRoot(t *thread, s *shared) {
	if t.ID == 0 {
		WriteElem(t, s, 3, 1)
	}
	if t.ID == 0 {
		WriteElem(t, s, 3, 2)
	}
}

// A suppression on a multi-line statement covers every line of the
// statement, not just the first.
func annotated(t *thread, s *shared) int64 {
	la := s.Local(t)
	buf := make([]int64, 1)
	PutT(t, s, (t.ID*3+1)%t.N, 0, buf)
	//upcvet:sharedrace -- fixture: the remote put targets a scratch slot no reader observes
	v := la[0] +
		la[1] +
		ReadElem(t, s,
			(t.ID+1)%t.N)
	return v
}

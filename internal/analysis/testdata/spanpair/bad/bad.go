// Package spanpairdata opens trace spans it does not close on every
// path: discarded closers, an early return that skips the closer, and
// a merge that falls off the end still open. Each must be flagged. The
// stub methods mirror sim.Proc's TraceSpan/TraceSpanArg shapes.
package spanpairdata

type proc struct{}

// TraceSpan mirrors sim.Proc.TraceSpan.
func (*proc) TraceSpan(cat, name string) func() { return func() {} }

// TraceSpanArg mirrors sim.Proc.TraceSpanArg.
func (*proc) TraceSpanArg(cat, name string, arg int64) func() { return func() {} }

func discarded(p *proc) {
	p.TraceSpan("upc", "barrier") // want "span closer discarded"
}

func discardedBlank(p *proc) {
	_ = p.TraceSpan("upc", "barrier") // want "span closer discarded"
}

func leakOnReturn(p *proc, err bool) {
	end := p.TraceSpan("upc", "put")
	if err {
		return // want "not called on this return path"
	}
	end()
}

func leakFallsOff(p *proc, n int) {
	end := p.TraceSpanArg("upc", "get", 8) // want "not called before the function falls off the end"
	if n > 0 {
		end()
	}
}

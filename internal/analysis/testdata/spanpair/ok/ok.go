// Package spanpairdata closes every span it opens: defer, all-branches
// close, obligation transfer by returning the closer, a deferred
// literal, and an annotated deliberate leak. The spanpair analyzer
// must stay silent.
package spanpairdata

type proc struct{}

// TraceSpan mirrors sim.Proc.TraceSpan.
func (*proc) TraceSpan(cat, name string) func() { return func() {} }

func deferred(p *proc) {
	end := p.TraceSpan("upc", "barrier")
	defer end()
}

func bothBranches(p *proc, err bool) {
	end := p.TraceSpan("upc", "put")
	if err {
		end()
		return
	}
	end()
}

func transferred(p *proc) func() {
	end := p.TraceSpan("upc", "run")
	return end
}

func deferredLiteral(p *proc) {
	end := p.TraceSpan("upc", "fft")
	defer func() {
		end()
	}()
}

func annotatedLeak(p *proc, n int) {
	//upcvet:spanpair -- the caller closes this span through a side table
	end := p.TraceSpan("upc", "steal")
	if n > 0 {
		end()
	}
}

// Package wallclockdata is seed-style simulation code that reads the
// host clock, ambient randomness and the environment; the wallclock
// analyzer must flag each site. Type-checked as a simulation-side
// package ("repro/internal/apps/...").
package wallclockdata

import (
	"math/rand"
	"os"
	"time"
)

func measure() time.Duration {
	start := time.Now()          // want "time.Now reads the host clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the host clock"
	return time.Since(start)     // want "time.Since reads the host clock"
}

func pick(n int) int {
	return rand.Intn(n) // want "rand.Intn uses ambient process-global randomness"
}

func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // locally owned generator: allowed
	return r.Float64()
}

func configured() string {
	return os.Getenv("THREADS") // want "os.Getenv makes simulation behavior depend on the host environment"
}

func annotated() time.Time {
	return time.Now() //upcvet:wallclock -- suppressed: the annotation must silence the finding
}

// clock shadows the time import inside shadowed; the analyzer must
// resolve the selector base to the local variable, not the package.
type clock struct{}

// Now is a virtual clock read, nothing to do with the host.
func (clock) Now() int { return 0 }

func shadowed() int {
	time := clock{}
	return time.Now() // not the time package: must not be flagged
}

// Package faultdata is seed-style fault-injection code; type-checked as
// "repro/internal/fault", where the wallclock analyzer applies its
// strict randomness rule: even the seeded-constructor pattern allowed
// elsewhere is flagged, because every fault-probability draw must come
// off the engine's PRNG for (seed, schedule) reproducibility.
package faultdata

import (
	"math/rand"
	"time"
)

func ambient(n int) int {
	return rand.Intn(n) // want "rand.Intn in internal/fault: fault-probability draws must come from the engine's seeded PRNG"
}

func privateGenerator(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // want "rand.New in internal/fault" "rand.NewSource in internal/fault"
	return r.Float64()
}

func hostClock() time.Time {
	return time.Now() // want "time.Now reads the host clock"
}

// drawer mimics the legitimate pattern: the injector holds the engine's
// generator and draws from it. Method calls on a *rand.Rand value are
// not constructor calls and must not be flagged.
type drawer struct {
	rng *rand.Rand
}

func (d *drawer) draw(p float64) bool {
	return d.rng.Float64() < p
}

// Package wallclockdata uses the host clock legitimately: the same
// calls the bad case flags, but type-checked as a host-side package
// ("repro/cmd/..."), where real benchmarking wants real clocks. The
// analyzer must stay silent.
package wallclockdata

import (
	"os"
	"time"
)

func benchmark(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

func outputDir() string {
	return os.Getenv("OUT")
}

package analysis

import (
	"go/ast"
	"strings"
)

// Wallclock flags host-clock and host-environment reads in
// simulation-side packages. The simulation's only clock is the engine's
// virtual time (sim.Time); a time.Now or time.Sleep there measures the
// host instead of the model, ambient math/rand state couples results to
// process history (and, since parallel sweeps, to scheduling), and
// os.Getenv makes a run irreproducible from its recorded configuration.
// Host-side packages (cmd/, examples/, internal/simbench,
// internal/tracecli) are exempt: real benchmarking wants real clocks.
// Legitimate uses inside the scope carry //upcvet:wallclock with a
// reason (see the package doc for the annotation grammar).
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "flag wall-clock time, ambient randomness and environment reads " +
		"in simulation-side packages; virtual time is the only clock there",
	Run: runWallclock,
}

// wallclockTimeFuncs are the time-package functions that read or wait on
// the host clock. Pure conversions (time.Duration arithmetic,
// ParseDuration) are fine.
var wallclockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// wallclockRandOK are the math/rand constructors that build seeded,
// locally owned generators — the deterministic pattern the engine uses
// (rand.New(rand.NewSource(seed))). Everything else on the package —
// rand.Intn, rand.Float64, rand.Shuffle, rand.Seed, ... — runs off the
// ambient process-global state and is flagged.
var wallclockRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// wallclockEnvFuncs are the os-package environment readers.
var wallclockEnvFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// faultPkg is the fault-injection package, held to a stricter randomness
// rule: even the seeded-constructor pattern is banned there. Every
// fault-probability draw must come off the engine's own PRNG
// (sim.Engine.Rand) — a private generator, however seeded, would let the
// injector's decisions drift from the (seed, schedule) contract that
// makes chaos runs bit-reproducible.
const faultPkg = "repro/internal/fault"

// strictRand reports whether the package forbids constructing any
// math/rand generator at all.
func strictRand(path string) bool {
	path = strings.TrimSuffix(path, "_test")
	return path == faultPkg || strings.HasPrefix(path, faultPkg+"/")
}

func runWallclock(pass *Pass) error {
	if !SimSide(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgNameOf(pass.Info, sel.X) {
			case "time":
				if wallclockTimeFuncs[name] {
					pass.ReportAnnotatable(call.Pos(),
						"time.%s reads the host clock; simulation code must use virtual time (sim.Engine.Now / Proc.Sleep)", name)
				}
			case "math/rand", "math/rand/v2":
				if strictRand(pass.Path) {
					pass.ReportAnnotatable(call.Pos(),
						"rand.%s in internal/fault: fault-probability draws must come from the engine's seeded PRNG (sim.Engine.Rand), not a private generator", name)
				} else if !wallclockRandOK[name] {
					pass.ReportAnnotatable(call.Pos(),
						"rand.%s uses ambient process-global randomness; use a seeded rand.New(rand.NewSource(seed)) owned by the run", name)
				}
			case "os":
				if wallclockEnvFuncs[name] {
					pass.ReportAnnotatable(call.Pos(),
						"os.%s makes simulation behavior depend on the host environment; thread configuration through Config instead", name)
				}
			}
			return true
		})
	}
	return nil
}

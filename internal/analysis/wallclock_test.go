package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestWallclock(t *testing.T) {
	// Seed-style host-clock reads in a simulation-side package: flagged,
	// except the annotated and shadowed sites.
	analysistest.Run(t, "testdata/wallclock/bad", "repro/internal/apps/wallclockdata", analysis.Wallclock)
	// The same calls in a host-side package: exempt.
	analysistest.Run(t, "testdata/wallclock/ok", "repro/cmd/wallclockdata", analysis.Wallclock)
	// The fault-injection package: strict rule, even seeded private
	// generators are flagged (draws must use the engine's PRNG).
	analysistest.Run(t, "testdata/wallclock/fault", "repro/internal/fault", analysis.Wallclock)
}

// Package ft reproduces the NAS FT benchmark studies of the thesis: a 3D
// FFT over a 1D slab decomposition (Figure 4.3) whose all-to-all exchange
// is implemented with one-sided puts, in two algorithmic variants —
// split-phase (bulk-synchronous, as the Fortran-MPI original) and
// communication/computation overlap — across the execution models the
// thesis compares: MPI, process-based UPC, pthreads UPC, and hierarchical
// UPC with sub-threads (OpenMP / Cilk++ / thread-pool). Verification mode
// runs real transforms on real data and checks the inverse round trip;
// model mode replays the identical communication and computation pattern
// with cost charging only, making the paper's Class B geometry feasible.
package ft

import (
	"fmt"

	"repro/internal/fft"
)

// Class is one NAS FT problem size.
type Class struct {
	Name       string
	NX, NY, NZ int
	Iters      int
}

// Classes returns the NAS FT problem classes (plus a tiny "T" for tests).
func Classes() []Class {
	return []Class{
		{Name: "T", NX: 32, NY: 16, NZ: 16, Iters: 2},
		{Name: "S", NX: 64, NY: 64, NZ: 64, Iters: 6},
		{Name: "W", NX: 128, NY: 128, NZ: 32, Iters: 6},
		{Name: "A", NX: 256, NY: 256, NZ: 128, Iters: 6},
		{Name: "B", NX: 512, NY: 256, NZ: 256, Iters: 20},
	}
}

// ClassByName resolves a class.
func ClassByName(name string) (Class, bool) {
	for _, c := range Classes() {
		if c.Name == name {
			return c, true
		}
	}
	return Class{}, false
}

// Total reports the grid's element count.
func (c Class) Total() int { return c.NX * c.NY * c.NZ }

// Bytes reports the grid's size in bytes (complex128 elements).
func (c Class) Bytes() int64 { return int64(c.Total()) * 16 }

// Decomposable reports whether the class divides across p slabs in both
// the z and y dimensions (the 1D decomposition's requirement).
func (c Class) Decomposable(p int) bool {
	return p > 0 && c.NZ%p == 0 && c.NY%p == 0 && fft.IsPow2(c.NX) &&
		fft.IsPow2(c.NY) && fft.IsPow2(c.NZ)
}

// String formats the class like the paper ("B (512*256*256)").
func (c Class) String() string {
	return fmt.Sprintf("%s (%d*%d*%d)", c.Name, c.NX, c.NY, c.NZ)
}

// Per-element kernel costs. The FFT stages are charged from the standard
// 5·N·log2(N) operation count against the machine's sustained FFT rate;
// evolve and the transposes are charged per element (both were observed to
// scale linearly with cores in Figure 4.4, i.e. cache-resident rather than
// memory-bound for the per-thread slab sizes of the study).
const (
	evolveFlopsPerElem  = 10.0
	transposeSecPerElem = 1.2e-9
)

// fft2DSeconds reports the compute charge of one z-plane's 2D FFT.
func (c Class) fft2DSeconds(flopsPerCore float64) float64 {
	ops := float64(c.NY)*fft.OpCount(c.NX) + float64(c.NX)*fft.OpCount(c.NY)
	return ops / flopsPerCore
}

// fft1DSeconds reports the compute charge of nCols z-direction transforms.
func (c Class) fft1DSeconds(nCols int, flopsPerCore float64) float64 {
	return float64(nCols) * fft.OpCount(c.NZ) / flopsPerCore
}

// evolveSeconds reports the compute charge of evolving n elements.
func evolveSeconds(n int, flopsPerCore float64) float64 {
	return float64(n) * evolveFlopsPerElem / flopsPerCore
}

// transposeSeconds reports the charge of locally rearranging n elements.
func transposeSeconds(n int) float64 {
	return float64(n) * transposeSecPerElem
}

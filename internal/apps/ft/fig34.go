package ft

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/upc"
)

// ExchangeMode enumerates the runtime configurations of Figure 3.4.
type ExchangeMode int

const (
	// ExBase: process UPC, no PSHM — intra-node puts take the network
	// loopback.
	ExBase ExchangeMode = iota
	// ExPSHM: process UPC with inter-process shared memory.
	ExPSHM
	// ExPSHMCast: PSHM plus the manual cast + memcpy optimization.
	ExPSHMCast
	// ExPthreads: the pthreads backend.
	ExPthreads
	// ExPthreadsCast: pthreads plus manual cast + memcpy.
	ExPthreadsCast
)

// String names the mode as in the figure's legend.
func (m ExchangeMode) String() string {
	switch m {
	case ExBase:
		return "base"
	case ExPSHM:
		return "PSHM"
	case ExPSHMCast:
		return "PSHM + cast"
	case ExPthreads:
		return "pthreads"
	case ExPthreadsCast:
		return "pthreads + cast"
	}
	return fmt.Sprintf("ExchangeMode(%d)", int(m))
}

// ExchangeModes lists the Figure 3.4 configurations in legend order.
func ExchangeModes() []ExchangeMode {
	return []ExchangeMode{ExBase, ExPSHM, ExPSHMCast, ExPthreads, ExPthreadsCast}
}

// ExchangeConfig parameterizes one Figure 3.4 measurement: the NAS FT
// all-to-all in isolation on a fixed node count.
type ExchangeConfig struct {
	Machine *topo.Machine
	Class   Class
	Threads int
	PerNode int
	Mode    ExchangeMode
	Async   bool // Figure 3.4(b): non-blocking puts with explicit sync
	Repeats int  // exchanges to run (default 3)
	Seed    int64
	// Tracer, when non-nil, receives the run's trace events.
	Tracer trace.Tracer
}

// ExchangeResult is one measurement: time spent issuing the copies and,
// for the async form, time spent in upc_waitsync.
type ExchangeResult struct {
	Call  sim.Duration
	Wait  sim.Duration
	Total sim.Duration
}

// RunExchange measures the all-to-all exchange of the class geometry
// under the given runtime configuration.
func RunExchange(cfg ExchangeConfig) (ExchangeResult, error) {
	if cfg.Machine == nil {
		cfg.Machine = topo.Pyramid()
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 3
	}
	if !cfg.Class.Decomposable(cfg.Threads) {
		return ExchangeResult{}, fmt.Errorf("ft: class %v does not decompose over %d threads",
			cfg.Class, cfg.Threads)
	}
	backend := upc.Processes
	pshm := false
	cast := false
	switch cfg.Mode {
	case ExPSHM:
		pshm = true
	case ExPSHMCast:
		pshm, cast = true, true
	case ExPthreads:
		backend = upc.Pthreads
	case ExPthreadsCast:
		backend = upc.Pthreads
		cast = true
	}
	ucfg := upc.Config{
		Machine:        cfg.Machine,
		Threads:        cfg.Threads,
		ThreadsPerNode: cfg.PerNode,
		Backend:        backend,
		PSHM:           pshm,
		Binding:        topo.BindSocketRR,
		Seed:           cfg.Seed,
		Tracer:         cfg.Tracer,
	}
	blockBytes := int64(cfg.Class.Total()) * 16 / int64(cfg.Threads) / int64(cfg.Threads)

	var call, wait sim.Duration // maxima across threads
	_, err := upc.Run(ucfg, func(t *upc.Thread) {
		var myCall, myWait sim.Duration
		put := func(dst int) *upc.Handle {
			if cast && t.Castable(dst) && dst != t.ID {
				rt := t.Runtime()
				op, err := rt.Cluster.MemCopyAsync(t.P, t.Place, rt.PlaceOf(dst), blockBytes,
					60*sim.Nanosecond, nil)
				if err != nil {
					panic(err) // unreachable: Castable implies same node
				}
				return upc.HandleFor(op)
			}
			return t.PutBytesAsync(dst, blockBytes)
		}
		for rep := 0; rep < cfg.Repeats; rep++ {
			t.Barrier()
			var handles []*upc.Handle
			c0 := t.Now()
			if cfg.Async {
				for k := 1; k <= t.N; k++ {
					handles = append(handles, put((t.ID+k)%t.N))
				}
			} else {
				for k := 1; k <= t.N; k++ {
					h := put((t.ID + k) % t.N)
					t.WaitSync(h)
				}
			}
			c1 := t.Now()
			t.WaitAll(handles)
			t.Barrier()
			c2 := t.Now()
			myCall += c1 - c0
			myWait += c2 - c1
		}
		if myCall > call {
			call = myCall
		}
		if myWait > wait {
			wait = myWait
		}
	})
	if err != nil {
		return ExchangeResult{}, err
	}
	return ExchangeResult{Call: call, Wait: wait, Total: call + wait}, nil
}

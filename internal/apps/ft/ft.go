package ft

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/subthread"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Variant selects the execution model under test.
type Variant int

const (
	// MPIFortran is the reference two-sided implementation (tuned
	// collectives).
	MPIFortran Variant = iota
	// UPCProcesses is process-based UPC with PSHM.
	UPCProcesses
	// UPCPthreads is the pthreads UPC backend (shared node connection).
	UPCPthreads
	// HybridOMP is hierarchical UPC with OpenMP sub-threads.
	HybridOMP
	// HybridCilk is hierarchical UPC with Cilk++ sub-threads.
	HybridCilk
	// HybridPool is hierarchical UPC with the in-house thread pool.
	HybridPool
)

// String names the variant as in the figures.
func (v Variant) String() string {
	switch v {
	case MPIFortran:
		return "MPI"
	case UPCProcesses:
		return "UPC (processes)"
	case UPCPthreads:
		return "UPC (pthreads)"
	case HybridOMP:
		return "UPC*OpenMP"
	case HybridCilk:
		return "UPC*Cilk++"
	case HybridPool:
		return "UPC*Thread-Pool"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Hybrid reports whether the variant runs sub-threads under UPC masters.
func (v Variant) Hybrid() bool {
	return v == HybridOMP || v == HybridCilk || v == HybridPool
}

// subKind maps hybrid variants onto sub-thread runtimes.
func (v Variant) subKind() subthread.Kind {
	switch v {
	case HybridCilk:
		return subthread.Cilk
	case HybridPool:
		return subthread.Pool
	default:
		return subthread.OMP
	}
}

// Impl selects the communication algorithm.
type Impl int

const (
	// SplitPhase computes and communicates in distinct bulk-synchronous
	// phases, like the Fortran-MPI original.
	SplitPhase Impl = iota
	// Overlap initiates each z-plane's exchange as soon as its 2D FFT
	// finishes (non-blocking puts), overlapping communication with the
	// remaining computation.
	Overlap
)

// String names the implementation.
func (i Impl) String() string {
	if i == Overlap {
		return "overlap"
	}
	return "split-phase"
}

// Config parameterizes one FT execution.
type Config struct {
	Machine     *topo.Machine
	ConduitName string // "" = machine default
	Class       Class
	Variant     Variant
	Impl        Impl
	Threads     int // UPC threads or MPI ranks (hybrid: masters)
	PerNode     int // of the above, per node
	SubThreads  int // hybrid: sub-threads per master (others: ignored)
	Verify      bool
	Seed        int64
	// Tracer, when non-nil, receives the run's trace events; the measured
	// iterations emit "ft" phase spans matching the Phases breakdown.
	Tracer trace.Tracer

	// Exchange-model knobs for the Figure 3.4 study. PSHM is on by
	// default (as in the paper's runs); NoPSHM selects the base runtime
	// whose intra-node puts go through the network loopback.
	NoPSHM     bool
	ManualCast bool // replace intra-node upc_memput with cast + memcpy
}

// Result summarizes one FT execution.
type Result struct {
	// Elapsed covers the timed iterations (setup transform excluded).
	Elapsed sim.Duration
	// PerIter is Elapsed / iterations.
	PerIter sim.Duration
	// Phases holds, per phase name (evolve, fft2d, transpose, fft1d,
	// comm-call, comm-wait, checksum), the maximum across execution
	// contexts of virtual time spent.
	Phases map[string]sim.Duration
	// Comm is comm-call + comm-wait: the Figure 4.5 metric.
	Comm sim.Duration
	// Verified and MaxErr report the inverse round-trip check (verify
	// mode only).
	Verified bool
	MaxErr   float64
}

// GFlopRate reports the benchmark's achieved Gflop/s using the NAS
// convention for FT's operation count.
func (r Result) GFlopRate(c Class) float64 {
	n := float64(c.Total())
	// One full 3D transform + evolve per iteration.
	opsPerIter := n * (14.8 + 5*log2f(c.NX) + 5*log2f(c.NY) + 5*log2f(c.NZ))
	return opsPerIter * float64(c.Iters) / r.Elapsed.Seconds() / 1e9
}

func log2f(n int) float64 {
	l := 0.0
	for m := 1; m < n; m <<= 1 {
		l++
	}
	return l
}

func (c *Config) validate() error {
	if c.Machine == nil {
		return fmt.Errorf("ft: Config.Machine is required")
	}
	if c.Threads <= 0 || c.PerNode <= 0 {
		return fmt.Errorf("ft: Threads=%d PerNode=%d", c.Threads, c.PerNode)
	}
	if !c.Class.Decomposable(c.Threads) {
		return fmt.Errorf("ft: class %v does not decompose over %d threads", c.Class, c.Threads)
	}
	if c.Variant.Hybrid() && c.SubThreads <= 0 {
		return fmt.Errorf("ft: hybrid variant needs SubThreads >= 1")
	}
	if c.Variant == MPIFortran && c.Impl == Overlap {
		return fmt.Errorf("ft: the MPI reference is split-phase only")
	}
	return nil
}

func (c *Config) conduit() (*fabric.Conduit, error) {
	if c.ConduitName == "" {
		return nil, nil
	}
	cond, ok := fabric.ConduitByName(c.ConduitName)
	if !ok {
		return nil, fmt.Errorf("ft: unknown conduit %q", c.ConduitName)
	}
	return &cond, nil
}

// Run executes the configured FT benchmark.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Variant == MPIFortran {
		return runMPI(cfg)
	}
	return runUPC(cfg)
}

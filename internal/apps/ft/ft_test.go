package ft

import (
	"testing"

	"repro/internal/topo"
)

func classT() Class {
	c, _ := ClassByName("T")
	return c
}

func TestClassLookup(t *testing.T) {
	b, ok := ClassByName("B")
	if !ok || b.NX != 512 || b.NY != 256 || b.NZ != 256 || b.Iters != 20 {
		t.Errorf("class B wrong: %+v", b)
	}
	if _, ok := ClassByName("Z"); ok {
		t.Error("unknown class should not resolve")
	}
	if !b.Decomposable(128) {
		t.Error("class B must decompose over 128 threads")
	}
	if b.Decomposable(512) {
		t.Error("class B cannot decompose over 512 threads (NY=256... NZ=256/512)")
	}
	if b.String() != "B (512*256*256)" {
		t.Errorf("String = %q", b.String())
	}
}

func verifyCfg(variant Variant, impl Impl, threads, perNode, subs int) Config {
	return Config{
		Machine:    topo.Lehman(),
		Class:      classT(),
		Variant:    variant,
		Impl:       impl,
		Threads:    threads,
		PerNode:    perNode,
		SubThreads: subs,
		Verify:     true,
		Seed:       1,
	}
}

func TestVerifyUPCSplitPhase(t *testing.T) {
	r, err := Run(verifyCfg(UPCProcesses, SplitPhase, 4, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("round trip failed: max error %g", r.MaxErr)
	}
}

func TestVerifyUPCOverlap(t *testing.T) {
	r, err := Run(verifyCfg(UPCProcesses, Overlap, 4, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("overlap round trip failed: max error %g", r.MaxErr)
	}
}

func TestVerifyUPCPthreads(t *testing.T) {
	r, err := Run(verifyCfg(UPCPthreads, SplitPhase, 4, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("pthreads round trip failed: max error %g", r.MaxErr)
	}
}

func TestVerifyHybridVariants(t *testing.T) {
	for _, v := range []Variant{HybridOMP, HybridCilk, HybridPool} {
		for _, impl := range []Impl{SplitPhase, Overlap} {
			r, err := Run(verifyCfg(v, impl, 2, 1, 4))
			if err != nil {
				t.Fatalf("%v/%v: %v", v, impl, err)
			}
			if !r.Verified {
				t.Errorf("%v/%v round trip failed: max error %g", v, impl, r.MaxErr)
			}
		}
	}
}

func TestVerifyMPI(t *testing.T) {
	r, err := Run(verifyCfg(MPIFortran, SplitPhase, 4, 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("MPI round trip failed: max error %g", r.MaxErr)
	}
}

func TestVerifySingleThreadDegenerate(t *testing.T) {
	r, err := Run(verifyCfg(UPCProcesses, SplitPhase, 1, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("P=1 round trip failed: max error %g", r.MaxErr)
	}
}

func modelCfg(variant Variant, impl Impl, threads, perNode, subs int) Config {
	c := verifyCfg(variant, impl, threads, perNode, subs)
	c.Verify = false
	c.Class, _ = ClassByName("S")
	return c
}

func TestModelModeProducesPhases(t *testing.T) {
	r, err := Run(modelCfg(UPCProcesses, SplitPhase, 8, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r.Elapsed <= 0 || r.PerIter <= 0 {
		t.Errorf("no elapsed time: %+v", r)
	}
	for _, phase := range []string{"evolve", "fft2d", "transpose", "fft1d", "comm-call", "comm-wait"} {
		if r.Phases[phase] <= 0 {
			t.Errorf("phase %q unrecorded (phases: %v)", phase, r.Phases)
		}
	}
	if r.Comm <= 0 || r.Comm > r.Elapsed {
		t.Errorf("comm = %v of %v", r.Comm, r.Elapsed)
	}
	if rate := r.GFlopRate(r0class("S")); rate <= 0 {
		t.Errorf("GFlop rate %g", rate)
	}
}

func r0class(n string) Class { c, _ := ClassByName(n); return c }

func TestModelComputeScalesWithThreads(t *testing.T) {
	r4, err := Run(modelCfg(UPCProcesses, SplitPhase, 4, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	r16, err := Run(modelCfg(UPCProcesses, SplitPhase, 16, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	// fft2d is compute-bound and must scale close to 4x from 4 to 16
	// threads.
	speedup := float64(r4.Phases["fft2d"]) / float64(r16.Phases["fft2d"])
	if speedup < 3.2 || speedup > 4.4 {
		t.Errorf("fft2d speedup 4->16 threads = %.2f, want ~4", speedup)
	}
}

func TestHybridMatchesPureConcurrency(t *testing.T) {
	// 2 masters x 4 subs should be in the same ballpark as 8 pure UPC
	// threads for the compute phases.
	pure, err := Run(modelCfg(UPCProcesses, SplitPhase, 8, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := Run(modelCfg(HybridOMP, SplitPhase, 2, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(hyb.Phases["fft2d"]) / float64(pure.Phases["fft2d"])
	if ratio < 0.7 || ratio > 1.6 {
		t.Errorf("hybrid/pure fft2d ratio = %.2f, want ~1", ratio)
	}
}

func TestOverlapReducesExposedComm(t *testing.T) {
	// Overlap should hide part of the exchange behind computation:
	// total elapsed should not exceed split-phase.
	split, err := Run(modelCfg(UPCProcesses, SplitPhase, 16, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	over, err := Run(modelCfg(UPCProcesses, Overlap, 16, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if float64(over.Elapsed) > 1.1*float64(split.Elapsed) {
		t.Errorf("overlap (%v) much slower than split-phase (%v)", over.Elapsed, split.Elapsed)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Machine: topo.Lehman(), Class: classT(), Threads: 3, PerNode: 1}, // not decomposable
		{Machine: topo.Lehman(), Class: classT(), Threads: 2, PerNode: 1,
			Variant: HybridOMP}, // no subthreads
		{Machine: topo.Lehman(), Class: classT(), Threads: 2, PerNode: 1,
			Variant: MPIFortran, Impl: Overlap}, // MPI has no overlap
	}
	for i, c := range bad {
		if _, err := Run(c); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	c := modelCfg(UPCProcesses, SplitPhase, 4, 2, 0)
	c.ConduitName = "pigeon"
	if _, err := Run(c); err == nil {
		t.Error("unknown conduit must error")
	}
}

func TestExchangeStudyOrdering(t *testing.T) {
	// Figure 3.4(a)'s premise: PSHM and pthreads beat the base runtime
	// for the intra-node portion, and manual cast is at parity with the
	// runtime optimizations (no further gain).
	cls, _ := ClassByName("B") // the paper's geometry: blocks large enough for zero-copy
	times := map[ExchangeMode]ExchangeResult{}
	for _, m := range ExchangeModes() {
		r, err := RunExchange(ExchangeConfig{
			Machine: topo.Pyramid(), Class: cls,
			Threads: 16, PerNode: 4, Mode: m, Repeats: 2, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		times[m] = r
		t.Logf("%-16s call=%v wait=%v total=%v", m, r.Call, r.Wait, r.Total)
	}
	if times[ExPSHM].Total >= times[ExBase].Total {
		t.Errorf("PSHM (%v) must beat base (%v)", times[ExPSHM].Total, times[ExBase].Total)
	}
	if times[ExPthreads].Total >= times[ExBase].Total {
		t.Errorf("pthreads (%v) must beat base (%v)", times[ExPthreads].Total, times[ExBase].Total)
	}
	// Manual cast ~ parity with the runtime path (within 15%).
	r := float64(times[ExPSHMCast].Total) / float64(times[ExPSHM].Total)
	if r < 0.8 || r > 1.15 {
		t.Errorf("PSHM+cast / PSHM = %.2f, want ~1 (runtime optimizations match manual)", r)
	}
}

func TestExchangeAsyncSplitsCallAndWait(t *testing.T) {
	cls, _ := ClassByName("S")
	r, err := RunExchange(ExchangeConfig{
		Machine: topo.Pyramid(), Class: cls,
		Threads: 8, PerNode: 2, Mode: ExPSHM, Async: true, Repeats: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Call <= 0 || r.Wait <= 0 {
		t.Errorf("async exchange should report both call (%v) and wait (%v) time", r.Call, r.Wait)
	}
	if r.Call >= r.Wait {
		t.Errorf("async call time (%v) should be below wait time (%v)", r.Call, r.Wait)
	}
}

func TestVariantAndImplStrings(t *testing.T) {
	if MPIFortran.String() != "MPI" || UPCProcesses.String() != "UPC (processes)" ||
		HybridCilk.String() != "UPC*Cilk++" {
		t.Error("variant names wrong")
	}
	if SplitPhase.String() != "split-phase" || Overlap.String() != "overlap" {
		t.Error("impl names wrong")
	}
	if !HybridOMP.Hybrid() || UPCPthreads.Hybrid() {
		t.Error("Hybrid() wrong")
	}
}

func TestPhasesAccountForMostOfElapsed(t *testing.T) {
	r, err := Run(modelCfg(UPCProcesses, SplitPhase, 8, 4, 0))
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, d := range r.Phases {
		sum += int64(d)
	}
	// Phase maxima can overlap across threads, but their sum should be
	// within a factor of ~2 of the elapsed time in both directions.
	if sum < int64(r.Elapsed)/2 || sum > 3*int64(r.Elapsed) {
		t.Errorf("phase sum %v vs elapsed %v implausible", sum, int64(r.Elapsed))
	}
}

func TestExchangeRepeatsScaleLinearly(t *testing.T) {
	cls, _ := ClassByName("S")
	run := func(reps int) ExchangeResult {
		r, err := RunExchange(ExchangeConfig{
			Machine: topo.Pyramid(), Class: cls,
			Threads: 8, PerNode: 2, Mode: ExPSHM, Repeats: reps, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	one, four := run(1), run(4)
	ratio := float64(four.Total) / float64(one.Total)
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("4 repeats / 1 repeat = %.2f, want ~4", ratio)
	}
}

func TestMoreIterationsMoreTime(t *testing.T) {
	a := modelCfg(UPCProcesses, SplitPhase, 4, 2, 0)
	ra, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	// PerIter should be stable across the run (setup excluded).
	if d := float64(ra.PerIter)*float64(a.Class.Iters) - float64(ra.Elapsed); d > 1 || d < -float64(a.Class.Iters) {
		t.Errorf("PerIter*(iters) = %v vs elapsed %v", ra.PerIter*6, ra.Elapsed)
	}
}

func TestSMTThreadsSlowComputePhases(t *testing.T) {
	cls, _ := ClassByName("A") // NZ=128, NY=256: decomposes over 64 and 128
	full, err := Run(Config{Machine: topo.Lehman(), Class: cls, Variant: UPCProcesses,
		Threads: 64, PerNode: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	smt, err := Run(Config{Machine: topo.Lehman(), Class: cls, Variant: UPCProcesses,
		Threads: 128, PerNode: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 128 SMT threads over 64 cores: kernels gain only the SMT factor
	// (~1.2), far from 2x.
	gain := float64(full.Phases["fft2d"]) / float64(smt.Phases["fft2d"])
	if gain < 1.05 || gain > 1.35 {
		t.Errorf("SMT fft2d gain = %.2f, want ~1.2", gain)
	}
}

package ft

import (
	"encoding/binary"
	"math"
	"math/cmplx"

	"repro/internal/fft"
	"repro/internal/mpi"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/topo"
)

// mpiWorker is one MPI rank's per-run state (the Fortran reference).
type mpiWorker struct {
	cfg *Config
	cls Class
	c   *mpi.Comm
	P   int
	LZ  int
	LY  int
	B   int

	phases   *perf.Phases
	measured bool // inside the timed region (phase spans are emitted)

	a     []complex128
	d     []complex128
	stage []complex128
}

// runMPI executes the MPI reference implementation (split-phase, tuned
// Alltoall collective).
func runMPI(cfg Config) (Result, error) {
	cond, err := cfg.conduit()
	if err != nil {
		return Result{}, err
	}
	mcfg := mpi.Config{
		Machine:      cfg.Machine,
		Conduit:      cond,
		Ranks:        cfg.Threads,
		RanksPerNode: cfg.PerNode,
		Binding:      topo.BindSocketRR,
		Seed:         cfg.Seed,
		Tracer:       cfg.Tracer,
	}
	res := Result{Phases: map[string]sim.Duration{}}
	var start, stop sim.Time
	var maxErr float64
	verified := true

	_, err = mpi.Run(mcfg, func(c *mpi.Comm) {
		w := &mpiWorker{
			cfg: &cfg, cls: cfg.Class, c: c, P: c.Size,
			LZ: cfg.Class.NZ / c.Size, LY: cfg.Class.NY / c.Size,
			phases: perf.NewPhases(),
		}
		w.B = w.LZ * w.LY * cfg.Class.NX
		if cfg.Verify {
			w.a = make([]complex128, w.LZ*cfg.Class.NY*cfg.Class.NX)
			w.d = make([]complex128, w.LY*cfg.Class.NZ*cfg.Class.NX)
			w.stage = make([]complex128, w.P*w.B)
			w.initData()
			c.Barrier()
			w.forward()
			w.inverse()
			if e := w.compare(); e > maxErr {
				maxErr = e
			}
			if maxErr > 1e-9 {
				verified = false
			}
			w.mergePhases(&res)
			return
		}
		w.forward()
		c.Barrier()
		w.phases = perf.NewPhases() // discard setup-phase charges
		w.measured = true
		if c.Rank == 0 {
			start = c.P.Now()
		}
		for iter := 0; iter < w.cls.Iters; iter++ {
			w.evolve()
			w.forward()
			w.timed("checksum", func() {
				c.AllreduceSum(float64(c.Rank))
			})
		}
		c.Barrier()
		if c.Rank == 0 {
			stop = c.P.Now()
		}
		w.mergePhases(&res)
	})
	if err != nil {
		return Result{}, err
	}
	if cfg.Verify {
		res.Verified = verified
		res.MaxErr = maxErr
		return res, nil
	}
	res.Elapsed = stop - start
	res.PerIter = res.Elapsed / sim.Duration(cfg.Class.Iters)
	res.Comm = res.Phases["comm-call"] + res.Phases["comm-wait"]
	return res, nil
}

func (w *mpiWorker) timed(phase string, fn func()) {
	end := noopSpan
	if w.measured {
		end = w.c.P.TraceSpan("ft", phase)
	}
	tm := w.phases.Timer(phase)
	tm.Start(w.c.P.Now())
	fn()
	tm.Stop(w.c.P.Now())
	end()
}

func (w *mpiWorker) mergePhases(res *Result) {
	for _, name := range w.phases.Names() {
		if d := w.phases.Total(name); d > res.Phases[name] {
			res.Phases[name] = d
		}
	}
}

func (w *mpiWorker) compute(seconds float64) {
	w.c.World().Cluster.Compute(w.c.P, w.c.Place, seconds)
}

func (w *mpiWorker) initValue(z, y, x int) complex128 {
	s := float64(z*7+y*13+x*29) * 0.001
	return complex(math.Sin(s), math.Cos(1.3*s))
}

func (w *mpiWorker) initData() {
	cls := w.cls
	for zl := 0; zl < w.LZ; zl++ {
		z := w.c.Rank*w.LZ + zl
		for y := 0; y < cls.NY; y++ {
			for x := 0; x < cls.NX; x++ {
				w.a[(zl*cls.NY+y)*cls.NX+x] = w.initValue(z, y, x)
			}
		}
	}
}

func (w *mpiWorker) compare() float64 {
	cls := w.cls
	worst := 0.0
	for zl := 0; zl < w.LZ; zl++ {
		z := w.c.Rank*w.LZ + zl
		for y := 0; y < cls.NY; y++ {
			for x := 0; x < cls.NX; x++ {
				e := cmplx.Abs(w.a[(zl*cls.NY+y)*cls.NX+x] - w.initValue(z, y, x))
				if e > worst {
					worst = e
				}
			}
		}
	}
	return worst
}

func (w *mpiWorker) evolve() {
	w.timed("evolve", func() {
		n := w.LZ * w.cls.NY * w.cls.NX
		w.compute(evolveSeconds(n, w.cfg.Machine.FlopsPerCore))
	})
}

func (w *mpiWorker) forward() {
	cls := w.cls
	w.timed("fft2d", func() {
		if w.cfg.Verify {
			for zl := 0; zl < w.LZ; zl++ {
				plane := w.a[zl*cls.NY*cls.NX : (zl+1)*cls.NY*cls.NX]
				fft.Transform2D(plane, cls.NY, cls.NX, false)
			}
		}
		w.compute(float64(w.LZ) * cls.fft2DSeconds(w.cfg.Machine.FlopsPerCore))
	})
	w.timed("transpose", func() {
		w.compute(transposeSeconds(w.LZ * cls.NY * cls.NX))
		if w.cfg.Verify {
			w.stageForward()
		}
	})
	w.exchange(false)
	w.timed("transpose", func() {
		w.compute(transposeSeconds(w.LY * cls.NZ * cls.NX))
	})
	w.timed("fft1d", func() {
		if w.cfg.Verify {
			scratch := make([]complex128, cls.NZ)
			for yl := 0; yl < w.LY; yl++ {
				for x := 0; x < cls.NX; x++ {
					fft.Strided(w.d, yl*cls.NZ*cls.NX+x, cls.NX, cls.NZ, false, scratch)
				}
			}
		}
		w.compute(float64(w.LY) * cls.fft1DSeconds(cls.NX, w.cfg.Machine.FlopsPerCore))
	})
}

// exchange performs the all-to-all: real marshaled payloads in verify
// mode, model transfers otherwise. In the forward direction the received
// blocks scatter into the y-slab; inverted, into the z-slab.
func (w *mpiWorker) exchange(intoZSlab bool) {
	cls := w.cls
	if !w.cfg.Verify {
		w.timed("comm-call", func() {
			w.c.AlltoallModel(int64(w.B) * 16)
		})
		return
	}
	send := make([][]byte, w.P)
	for dst := 0; dst < w.P; dst++ {
		send[dst] = marshalComplex(w.stage[dst*w.B : (dst+1)*w.B])
	}
	var got [][]byte
	w.timed("comm-call", func() {
		got = w.c.Alltoall(send)
	})
	for src := 0; src < w.P; src++ {
		blk := unmarshalComplex(got[src])
		for zl := 0; zl < w.LZ; zl++ {
			for yl := 0; yl < w.LY; yl++ {
				row := blk[(zl*w.LY+yl)*cls.NX : (zl*w.LY+yl+1)*cls.NX]
				if intoZSlab {
					y := src*w.LY + yl
					copy(w.a[(zl*cls.NY+y)*cls.NX:(zl*cls.NY+y+1)*cls.NX], row)
				} else {
					z := src*w.LZ + zl
					copy(w.d[(yl*cls.NZ+z)*cls.NX:(yl*cls.NZ+z+1)*cls.NX], row)
				}
			}
		}
	}
}

func (w *mpiWorker) stageForward() {
	cls := w.cls
	for dst := 0; dst < w.P; dst++ {
		for zl := 0; zl < w.LZ; zl++ {
			for yl := 0; yl < w.LY; yl++ {
				y := dst*w.LY + yl
				copy(w.stage[dst*w.B+(zl*w.LY+yl)*cls.NX:dst*w.B+(zl*w.LY+yl+1)*cls.NX],
					w.a[(zl*cls.NY+y)*cls.NX:(zl*cls.NY+y+1)*cls.NX])
			}
		}
	}
}

func (w *mpiWorker) inverse() {
	cls := w.cls
	scratch := make([]complex128, cls.NZ)
	for yl := 0; yl < w.LY; yl++ {
		for x := 0; x < cls.NX; x++ {
			fft.Strided(w.d, yl*cls.NZ*cls.NX+x, cls.NX, cls.NZ, true, scratch)
		}
	}
	for dst := 0; dst < w.P; dst++ {
		for zl := 0; zl < w.LZ; zl++ {
			z := dst*w.LZ + zl
			for yl := 0; yl < w.LY; yl++ {
				copy(w.stage[dst*w.B+(zl*w.LY+yl)*cls.NX:dst*w.B+(zl*w.LY+yl+1)*cls.NX],
					w.d[(yl*cls.NZ+z)*cls.NX:(yl*cls.NZ+z+1)*cls.NX])
			}
		}
	}
	w.exchange(true)
	for zl := 0; zl < w.LZ; zl++ {
		plane := w.a[zl*cls.NY*cls.NX : (zl+1)*cls.NY*cls.NX]
		fft.Transform2D(plane, cls.NY, cls.NX, true)
	}
}

// marshalComplex encodes complex128 values little-endian.
func marshalComplex(v []complex128) []byte {
	out := make([]byte, len(v)*16)
	for i, c := range v {
		binary.LittleEndian.PutUint64(out[i*16:], math.Float64bits(real(c)))
		binary.LittleEndian.PutUint64(out[i*16+8:], math.Float64bits(imag(c)))
	}
	return out
}

// unmarshalComplex decodes marshalComplex's output.
func unmarshalComplex(b []byte) []complex128 {
	out := make([]complex128, len(b)/16)
	for i := range out {
		re := math.Float64frombits(binary.LittleEndian.Uint64(b[i*16:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(b[i*16+8:]))
		out[i] = complex(re, im)
	}
	return out
}

package ft

import (
	"sort"
	"testing"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// TestTracePhasesMatchFigure44 verifies the acceptance property of the
// tracing layer on FT: the per-phase spans aggregated from the trace
// reproduce the Figure 4.4 breakdown the run itself reports (maximum
// per-thread total of each phase).
func TestTracePhasesMatchFigure44(t *testing.T) {
	cls, _ := ClassByName("A")
	for _, variant := range []Variant{UPCProcesses, MPIFortran} {
		col := trace.NewCollector()
		r, err := Run(Config{
			Machine: topo.Lehman(), Class: cls, Variant: variant,
			Threads: 4, PerNode: 2, Seed: 5, Tracer: col,
		})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		got := perf.PhasesFromTrace(col, "ft")
		if len(got) == 0 {
			t.Fatalf("%v: no ft phase spans in the trace", variant)
		}
		for _, phase := range sortedKeys(r.Phases) {
			if got[phase] != r.Phases[phase] {
				t.Errorf("%v: trace phase %s = %v, Phases reports %v", variant, phase, got[phase], r.Phases[phase])
			}
		}
		for _, phase := range sortedKeys(got) {
			if _, ok := r.Phases[phase]; !ok {
				t.Errorf("%v: trace has phase %s the result does not", variant, phase)
			}
		}
		if r.Phases["comm-call"] <= 0 || got["comm-call"] <= 0 {
			t.Errorf("%v: comm-call phase empty (result %v, trace %v)",
				variant, r.Phases["comm-call"], got["comm-call"])
		}
	}
}

// TestTraceOverlapPhasesMatch checks the overlapped implementation, whose
// fft2d and comm-call timers cover interleaved intervals: the live spans
// must still reproduce the reported totals.
func TestTraceOverlapPhasesMatch(t *testing.T) {
	cls, _ := ClassByName("A")
	col := trace.NewCollector()
	r, err := Run(Config{
		Machine: topo.Lehman(), Class: cls, Variant: UPCProcesses, Impl: Overlap,
		Threads: 4, PerNode: 2, Seed: 5, Tracer: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := perf.PhasesFromTrace(col, "ft")
	for _, phase := range []string{"fft2d", "comm-call", "comm-wait"} {
		if got[phase] != r.Phases[phase] {
			t.Errorf("trace phase %s = %v, Phases reports %v", phase, got[phase], r.Phases[phase])
		}
		if r.Phases[phase] <= sim.Duration(0) {
			t.Errorf("phase %s reported as empty", phase)
		}
	}
}

// sortedKeys returns the map's keys in sorted order, so comparison
// failures print deterministically (the maporder invariant).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package ft

import (
	"math"
	"math/cmplx"

	"repro/internal/fft"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/subthread"
	"repro/internal/topo"
	"repro/internal/upc"
)

// upcWorker is one UPC thread's per-run state.
type upcWorker struct {
	cfg *Config
	cls Class
	t   *upc.Thread
	P   int // UPC threads
	LZ  int // z-planes per thread
	LY  int // y-rows per thread (transposed layout)
	B   int // exchange block: LZ*LY*NX elements

	team     *subthread.Team
	phases   *perf.Phases
	measured bool // inside the timed region (phase spans are emitted)

	// Verify-mode data (nil in model mode).
	a     []complex128 // z-slab: a[(zl*NY+y)*NX+x]
	d     []complex128 // y-slab: d[(yl*NZ+z)*NX+x]
	stage []complex128 // contiguous per-destination send blocks
	recv  *upc.Shared[complex128]
}

// runUPC executes the UPC and hybrid variants.
func runUPC(cfg Config) (Result, error) {
	cond, err := cfg.conduit()
	if err != nil {
		return Result{}, err
	}
	backend := upc.Processes
	if cfg.Variant == UPCPthreads {
		backend = upc.Pthreads
	}
	ucfg := upc.Config{
		Machine:        cfg.Machine,
		Conduit:        cond,
		Threads:        cfg.Threads,
		ThreadsPerNode: cfg.PerNode,
		Backend:        backend,
		PSHM:           !cfg.NoPSHM,
		Binding:        topo.BindSocketRR,
		Seed:           cfg.Seed,
		Tracer:         cfg.Tracer,
	}

	res := Result{Phases: map[string]sim.Duration{}}
	var start, stop sim.Time
	var setupErr error
	var maxErr float64
	verified := true

	_, err = upc.Run(ucfg, func(t *upc.Thread) {
		w, err := newUPCWorker(&cfg, t)
		if err != nil {
			if setupErr == nil {
				setupErr = err
			}
			return
		}
		if cfg.Verify {
			w.initData()
			t.Barrier()
			w.forward()
			w.inverse()
			if e := w.compare(); e > maxErr {
				maxErr = e
			}
			if maxErr > 1e-9 {
				verified = false
			}
			w.mergePhases(&res)
			return
		}
		// Model mode: one untimed setup transform, then the timed loop.
		w.forward()
		t.Barrier()
		w.phases = perf.NewPhases() // discard setup-phase charges
		w.measured = true
		if t.ID == 0 {
			start = t.Now()
		}
		for iter := 0; iter < w.cls.Iters; iter++ {
			w.evolve()
			w.forward()
			w.checksum()
		}
		t.Barrier()
		if t.ID == 0 {
			stop = t.Now()
		}
		w.mergePhases(&res)
	})
	if err != nil {
		return Result{}, err
	}
	if setupErr != nil {
		return Result{}, setupErr
	}
	if cfg.Verify {
		res.Verified = verified
		res.MaxErr = maxErr
		return res, nil
	}
	res.Elapsed = stop - start
	res.PerIter = res.Elapsed / sim.Duration(cfg.Class.Iters)
	res.Comm = res.Phases["comm-call"] + res.Phases["comm-wait"]
	return res, nil
}

func newUPCWorker(cfg *Config, t *upc.Thread) (*upcWorker, error) {
	cls := cfg.Class
	w := &upcWorker{
		cfg:    cfg,
		cls:    cls,
		t:      t,
		P:      t.N,
		LZ:     cls.NZ / t.N,
		LY:     cls.NY / t.N,
		phases: perf.NewPhases(),
		// Verify mode times everything; model mode opens the measured
		// region after the untimed setup transform.
		measured: cfg.Verify,
	}
	w.B = w.LZ * w.LY * cls.NX
	if cfg.Variant.Hybrid() {
		safety := subthread.Funneled
		if cfg.Impl == Overlap {
			safety = subthread.Multiple // sub-threads issue the puts
		}
		tm, err := subthread.NewTeam(t, subthread.Config{
			Kind:   cfg.Variant.subKind(),
			N:      cfg.SubThreads,
			Bound:  true,
			Safety: safety,
		})
		if err != nil {
			return nil, err
		}
		w.team = tm
	}
	if cfg.Verify {
		w.a = make([]complex128, w.LZ*cls.NY*cls.NX)
		w.d = make([]complex128, w.LY*cls.NZ*cls.NX)
		w.stage = make([]complex128, w.P*w.B)
		w.recv = upc.Alloc[complex128](t, w.P*w.P*w.B, 16, w.P*w.B)
	}
	return w, nil
}

// initValue is the deterministic initial field, so every thread can
// recompute any element for the round-trip comparison.
func (w *upcWorker) initValue(z, y, x int) complex128 {
	s := float64(z*7+y*13+x*29) * 0.001
	return complex(math.Sin(s), math.Cos(1.3*s))
}

func (w *upcWorker) initData() {
	cls := w.cls
	for zl := 0; zl < w.LZ; zl++ {
		z := w.t.ID*w.LZ + zl
		for y := 0; y < cls.NY; y++ {
			for x := 0; x < cls.NX; x++ {
				w.a[(zl*cls.NY+y)*cls.NX+x] = w.initValue(z, y, x)
			}
		}
	}
}

// compare reports the max error of the round trip against the initial
// field.
func (w *upcWorker) compare() float64 {
	cls := w.cls
	worst := 0.0
	for zl := 0; zl < w.LZ; zl++ {
		z := w.t.ID*w.LZ + zl
		for y := 0; y < cls.NY; y++ {
			for x := 0; x < cls.NX; x++ {
				e := cmplx.Abs(w.a[(zl*cls.NY+y)*cls.NX+x] - w.initValue(z, y, x))
				if e > worst {
					worst = e
				}
			}
		}
	}
	return worst
}

// mergePhases folds this thread's phase totals into the result as maxima.
func (w *upcWorker) mergePhases(res *Result) {
	for _, name := range w.phases.Names() {
		if d := w.phases.Total(name); d > res.Phases[name] {
			res.Phases[name] = d
		}
	}
}

// compute dispatches n work items across the team (or runs them inline),
// charging each item's cost; body may be nil in model mode.
func (w *upcWorker) compute(n int, perItem float64, body func(i int)) {
	if w.team != nil {
		w.team.ParallelFor(n, func(s *subthread.Sub, i int) {
			if body != nil {
				body(i)
			}
			s.Compute(perItem)
		})
		return
	}
	if body != nil {
		for i := 0; i < n; i++ {
			body(i)
		}
	}
	w.t.Compute(float64(n) * perItem)
}

// timed runs fn between a named phase timer, tracing it as an "ft" span
// inside the measured region so a trace.Collector aggregates the same
// per-phase breakdown the Phases report.
func (w *upcWorker) timed(phase string, fn func()) {
	end := w.traceSpan(phase)
	tm := w.phases.Timer(phase)
	tm.Start(w.t.Now())
	fn()
	tm.Stop(w.t.Now())
	end()
}

// noopSpan is the shared closer of phases outside the measured region.
var noopSpan = func() {}

// traceSpan opens an "ft" phase span on this thread's track, gated to the
// measured region (so trace aggregates match the reported Phases).
func (w *upcWorker) traceSpan(phase string) func() {
	if !w.measured {
		return noopSpan
	}
	return w.t.P.TraceSpan("ft", phase)
}

// evolve multiplies the slab by the time-evolution factors.
func (w *upcWorker) evolve() {
	w.timed("evolve", func() {
		m := w.cfg.Machine
		n := w.LZ * w.cls.NY * w.cls.NX
		chunks := 1
		if w.team != nil {
			chunks = w.team.Size()
		}
		w.compute(chunks, evolveSeconds(n/chunks, m.FlopsPerCore), nil)
	})
}

// checksum reduces one complex sample per thread (NAS's per-iteration
// checksum).
func (w *upcWorker) checksum() {
	w.timed("checksum", func() {
		upc.AllReduceSum(w.t, float64(w.t.ID))
	})
}

// forward runs one full forward 3D transform: 2D FFTs + exchange
// (split-phase or overlapped), re-transpose, 1D FFTs.
func (w *upcWorker) forward() {
	if w.cfg.Impl == Overlap {
		w.forwardOverlap()
	} else {
		w.forwardSplit()
	}
	w.retranspose()
	w.fft1d(false)
}

func (w *upcWorker) forwardSplit() {
	cls := w.cls
	m := w.cfg.Machine
	perPlane := cls.fft2DSeconds(m.FlopsPerCore)

	w.timed("fft2d", func() {
		w.compute(w.LZ, perPlane, w.planeFFT(false))
	})
	w.timed("transpose", func() {
		n := w.LZ * cls.NY * cls.NX
		chunks := 1
		if w.team != nil {
			chunks = w.team.Size()
		}
		w.compute(chunks, transposeSeconds(n/chunks), nil)
		if w.cfg.Verify {
			w.stageForward()
		}
	})
	w.t.Barrier()
	var handles []*upc.Handle
	w.timed("comm-call", func() {
		for k := 1; k < w.P; k++ {
			dst := (w.t.ID + k) % w.P
			handles = append(handles, w.putBlock(dst, w.t.ID*w.B, dst*w.B, w.B))
		}
		// Own block: a local copy.
		handles = append(handles, w.putBlock(w.t.ID, w.t.ID*w.B, w.t.ID*w.B, w.B))
	})
	w.timed("comm-wait", func() {
		w.t.WaitAll(handles)
		w.t.Barrier()
	})
}

// planeFFT returns the verify-mode body computing plane zl's 2D FFT, or
// nil in model mode.
func (w *upcWorker) planeFFT(inv bool) func(zl int) {
	if !w.cfg.Verify {
		return nil
	}
	cls := w.cls
	return func(zl int) {
		plane := w.a[zl*cls.NY*cls.NX : (zl+1)*cls.NY*cls.NX]
		fft.Transform2D(plane, cls.NY, cls.NX, inv)
	}
}

// stageForward packs the send blocks from the z-slab (verify mode).
func (w *upcWorker) stageForward() {
	cls := w.cls
	for dst := 0; dst < w.P; dst++ {
		for zl := 0; zl < w.LZ; zl++ {
			for yl := 0; yl < w.LY; yl++ {
				y := dst*w.LY + yl
				copy(w.stage[dst*w.B+(zl*w.LY+yl)*cls.NX:dst*w.B+(zl*w.LY+yl+1)*cls.NX],
					w.a[(zl*cls.NY+y)*cls.NX:(zl*cls.NY+y+1)*cls.NX])
			}
		}
	}
}

// putBlock sends nElems complex values from the local stage offset
// srcOff into dst's recv partition at dstOff, honoring the ManualCast
// study knob.
func (w *upcWorker) putBlock(dst, dstOff, srcOff, nElems int) *upc.Handle {
	if w.cfg.Verify {
		return upc.PutAsyncT(w.t, w.recv, dst, dstOff, w.stage[srcOff:srcOff+nElems])
	}
	bytes := int64(nElems) * 16
	if w.cfg.ManualCast && w.t.Castable(dst) && dst != w.t.ID {
		// The manual optimization: cast the destination pointer and issue
		// a plain memcpy instead of upc_memput.
		rt := w.t.Runtime()
		op, err := rt.Cluster.MemCopyAsync(w.t.P, w.t.Place, rt.PlaceOf(dst), bytes,
			60*sim.Nanosecond, nil)
		if err != nil {
			panic(err) // unreachable: Castable implies same node
		}
		return upc.HandleFor(op)
	}
	return w.t.PutBytesAsync(dst, bytes)
}

func (w *upcWorker) forwardOverlap() {
	cls := w.cls
	m := w.cfg.Machine
	perPlane := cls.fft2DSeconds(m.FlopsPerCore)
	perPlaneTr := transposeSeconds(cls.NY * cls.NX)
	sliceElems := w.LY * cls.NX

	w.t.Barrier()
	var handles []*upc.Handle
	commCall := w.phases.Timer("comm-call")
	fft2d := w.phases.Timer("fft2d")
	start := w.t.Now()
	endFFT := w.traceSpan("fft2d")

	body := w.planeFFT(false)
	planeWork := func(ctx *upc.Thread, zl int) {
		if body != nil {
			body(zl)
			w.stagePlane(zl)
		}
		// Initiate this plane's slices to every destination as soon as
		// the plane is transformed (non-blocking puts).
		for k := 1; k <= w.P; k++ {
			dst := (w.t.ID + k) % w.P
			var h *upc.Handle
			srcOff := dst*w.B + zl*sliceElems
			dstOff := w.t.ID*w.B + zl*sliceElems
			if w.cfg.Verify {
				h = upc.PutAsyncT(ctx, w.recv, dst, dstOff, w.stage[srcOff:srcOff+sliceElems])
			} else {
				h = ctx.PutBytesAsync(dst, int64(sliceElems)*16)
			}
			handles = append(handles, h)
		}
	}

	if w.team != nil {
		w.team.ParallelFor(w.LZ, func(s *subthread.Sub, zl int) {
			s.Compute(perPlane)   // the plane's 2D FFT
			s.Compute(perPlaneTr) // its local staging
			planeWork(s.UPC(), zl)
		})
	} else {
		for zl := 0; zl < w.LZ; zl++ {
			w.t.Compute(perPlane)
			w.t.Compute(perPlaneTr)
			c0 := w.t.Now()
			endCall := w.traceSpan("comm-call")
			planeWork(w.t, zl)
			commCall.Start(c0)
			commCall.Stop(w.t.Now())
			endCall()
		}
	}
	fft2d.Start(start)
	fft2d.Stop(w.t.Now())
	endFFT()

	w.timed("comm-wait", func() {
		w.t.WaitAll(handles)
		w.t.Barrier()
	})
}

// stagePlane packs one z-plane's per-destination slices (verify mode).
func (w *upcWorker) stagePlane(zl int) {
	cls := w.cls
	for dst := 0; dst < w.P; dst++ {
		for yl := 0; yl < w.LY; yl++ {
			y := dst*w.LY + yl
			copy(w.stage[dst*w.B+(zl*w.LY+yl)*cls.NX:dst*w.B+(zl*w.LY+yl+1)*cls.NX],
				w.a[(zl*cls.NY+y)*cls.NX:(zl*cls.NY+y+1)*cls.NX])
		}
	}
}

// retranspose unpacks the received blocks into the y-slab layout.
func (w *upcWorker) retranspose() {
	cls := w.cls
	w.timed("transpose", func() {
		n := w.LY * cls.NZ * cls.NX
		chunks := 1
		if w.team != nil {
			chunks = w.team.Size()
		}
		w.compute(chunks, transposeSeconds(n/chunks), nil)
		if w.cfg.Verify {
			local := w.recv.Local(w.t)
			for src := 0; src < w.P; src++ {
				for zl := 0; zl < w.LZ; zl++ {
					z := src*w.LZ + zl
					for yl := 0; yl < w.LY; yl++ {
						copy(w.d[(yl*cls.NZ+z)*cls.NX:(yl*cls.NZ+z+1)*cls.NX],
							local[src*w.B+(zl*w.LY+yl)*cls.NX:src*w.B+(zl*w.LY+yl+1)*cls.NX])
					}
				}
			}
		}
	})
}

// fft1d transforms along z for every (y, x) column of the y-slab.
func (w *upcWorker) fft1d(inv bool) {
	cls := w.cls
	m := w.cfg.Machine
	perRow := cls.fft1DSeconds(cls.NX, m.FlopsPerCore)
	var body func(yl int)
	if w.cfg.Verify {
		scratch := make([]complex128, cls.NZ)
		body = func(yl int) {
			for x := 0; x < cls.NX; x++ {
				fft.Strided(w.d, yl*cls.NZ*cls.NX+x, cls.NX, cls.NZ, inv, scratch)
			}
		}
	}
	w.timed("fft1d", func() {
		w.compute(w.LY, perRow, body)
	})
}

// inverse undoes forward (verify mode): inverse z FFTs, reverse exchange,
// inverse 2D FFTs.
func (w *upcWorker) inverse() {
	cls := w.cls
	w.fft1d(true)
	// Pack blocks by destination z-range from the y-slab.
	for dst := 0; dst < w.P; dst++ {
		for zl := 0; zl < w.LZ; zl++ {
			z := dst*w.LZ + zl
			for yl := 0; yl < w.LY; yl++ {
				copy(w.stage[dst*w.B+(zl*w.LY+yl)*cls.NX:dst*w.B+(zl*w.LY+yl+1)*cls.NX],
					w.d[(yl*cls.NZ+z)*cls.NX:(yl*cls.NZ+z+1)*cls.NX])
			}
		}
	}
	w.t.Barrier()
	var handles []*upc.Handle
	for k := 1; k <= w.P; k++ {
		dst := (w.t.ID + k) % w.P
		handles = append(handles, w.putBlock(dst, w.t.ID*w.B, dst*w.B, w.B))
	}
	w.t.WaitAll(handles)
	w.t.Barrier()
	// Scatter into the z-slab.
	local := w.recv.Local(w.t)
	for src := 0; src < w.P; src++ {
		for zl := 0; zl < w.LZ; zl++ {
			for yl := 0; yl < w.LY; yl++ {
				y := src*w.LY + yl
				copy(w.a[(zl*cls.NY+y)*cls.NX:(zl*cls.NY+y+1)*cls.NX],
					local[src*w.B+(zl*w.LY+yl)*cls.NX:src*w.B+(zl*w.LY+yl+1)*cls.NX])
			}
		}
	}
	// Inverse 2D FFT per plane.
	w.compute(w.LZ, cls.fft2DSeconds(w.cfg.Machine.FlopsPerCore), w.planeFFT(true))
}

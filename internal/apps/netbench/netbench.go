// Package netbench implements the multi-link network microbenchmarks of
// Section 4.3.1 (Figure 4.2): a varying number of point-to-point
// link-pairs between two cluster nodes, each pair either a process with
// its own network connection or a pthread sharing the node's single
// connection, measuring small-message round-trip latency and unidirectional
// flood bandwidth across message sizes.
package netbench

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/upc"
)

// Config parameterizes one microbenchmark sweep point.
type Config struct {
	Machine     *topo.Machine
	ConduitName string
	Links       int  // concurrent link-pairs between the two nodes
	Pthreads    bool // share one connection per node
	Size        int64
	Reps        int // operations per pair (default: latency 50, flood 20)
	Window      int // flood: outstanding puts per pair (default 8)
	Seed        int64
	// Tracer, when non-nil, receives the run's trace events.
	Tracer trace.Tracer
}

// Result is one measured point.
type Result struct {
	// RTT is the mean round-trip latency per operation (latency test).
	RTT sim.Duration
	// BandwidthMBps is the aggregate unidirectional flood bandwidth in
	// decimal MB/s (flood test).
	BandwidthMBps float64
}

func (c *Config) upcConfig() (upc.Config, error) {
	if c.Machine == nil {
		c.Machine = topo.Lehman()
	}
	if c.Links <= 0 {
		return upc.Config{}, fmt.Errorf("netbench: Links = %d", c.Links)
	}
	var cond *fabric.Conduit
	if c.ConduitName != "" {
		cc, ok := fabric.ConduitByName(c.ConduitName)
		if !ok {
			return upc.Config{}, fmt.Errorf("netbench: unknown conduit %q", c.ConduitName)
		}
		cond = &cc
	}
	backend := upc.Processes
	if c.Pthreads {
		backend = upc.Pthreads
	}
	return upc.Config{
		Machine:        c.Machine,
		Conduit:        cond,
		Threads:        2 * c.Links,
		ThreadsPerNode: c.Links,
		Backend:        backend,
		PSHM:           true,
		Seed:           c.Seed,
		Tracer:         c.Tracer,
	}, nil
}

// Latency measures the mean round-trip time of a size-byte upc_memget
// across the configured link-pairs (Figure 4.2a). Initiators live on node
// 0; each gets from its partner on node 1.
func Latency(cfg Config) (Result, error) {
	ucfg, err := cfg.upcConfig()
	if err != nil {
		return Result{}, err
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 50
	}
	var total sim.Duration
	var ops int64
	_, err = upc.Run(ucfg, func(t *upc.Thread) {
		t.Barrier()
		if t.ID >= cfg.Links {
			return // passive target
		}
		partner := t.ID + cfg.Links
		for r := 0; r < cfg.Reps; r++ {
			start := t.Now()
			t.GetBytes(partner, cfg.Size)
			total += t.Now() - start
			ops++
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{RTT: total / sim.Duration(ops)}, nil
}

// Flood measures aggregate unidirectional put bandwidth: every initiator
// keeps Window non-blocking puts of Size bytes in flight toward its
// partner for Reps*Window messages (Figure 4.2b).
func Flood(cfg Config) (Result, error) {
	ucfg, err := cfg.upcConfig()
	if err != nil {
		return Result{}, err
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 20
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	var finish sim.Time
	_, err = upc.Run(ucfg, func(t *upc.Thread) {
		t.Barrier()
		if t.ID >= cfg.Links {
			return
		}
		partner := t.ID + cfg.Links
		window := make([]*upc.Handle, 0, cfg.Window)
		for r := 0; r < cfg.Reps*cfg.Window; r++ {
			if len(window) == cfg.Window {
				t.WaitSync(window[0])
				window = window[1:]
			}
			window = append(window, t.PutBytesAsync(partner, cfg.Size))
		}
		t.WaitAll(window)
		if t.Now() > finish {
			finish = t.Now()
		}
	})
	if err != nil {
		return Result{}, err
	}
	totalBytes := int64(cfg.Links) * int64(cfg.Reps*cfg.Window) * cfg.Size
	return Result{BandwidthMBps: float64(totalBytes) / finish.Seconds() / 1e6}, nil
}

// LatencySizes are the Figure 4.2(a) x-axis points (1B to 32KB).
func LatencySizes() []int64 {
	var out []int64
	for s := int64(1); s <= 32<<10; s <<= 1 {
		out = append(out, s)
	}
	return out
}

// FloodSizes are the Figure 4.2(b) x-axis points (64B to 2MB).
func FloodSizes() []int64 {
	var out []int64
	for s := int64(64); s <= 2<<20; s <<= 1 {
		out = append(out, s)
	}
	return out
}

package netbench

import (
	"testing"

	"repro/internal/sim"
)

func TestSmallMessageLatencyRegime(t *testing.T) {
	// Figure 4.2(a): a single link's 8B get round trip sits in the 4-5us
	// band on QDR InfiniBand.
	r, err := Latency(Config{Links: 1, Size: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.RTT < 3*sim.Microsecond || r.RTT > 7*sim.Microsecond {
		t.Errorf("1-link 8B RTT = %v, want ~4-5us", r.RTT)
	}
}

func TestLatencyGrowsWithSize(t *testing.T) {
	small, err := Latency(Config{Links: 1, Size: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Latency(Config{Links: 1, Size: 32 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if large.RTT < 3*small.RTT {
		t.Errorf("32KB RTT (%v) should be much larger than 8B RTT (%v)", large.RTT, small.RTT)
	}
}

func TestPthreadLatencySerializes(t *testing.T) {
	// Figure 4.2(a): with 8 link-pairs, pthread messaging latency
	// serializes on the shared connection; process pairs stay closer to
	// the single-link latency.
	proc, err := Latency(Config{Links: 8, Size: 4096, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pthr, err := Latency(Config{Links: 8, Size: 4096, Pthreads: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("8-link 4KB RTT: processes=%v pthreads=%v", proc.RTT, pthr.RTT)
	if pthr.RTT <= proc.RTT {
		t.Errorf("pthread 8-link RTT (%v) should exceed process RTT (%v)", pthr.RTT, proc.RTT)
	}
}

func TestFloodBandwidthScalesWithLinks(t *testing.T) {
	// Figure 4.2(b): one connection saturates ~1.4-1.5 GB/s; multiple
	// process connections approach the NIC's ~2.3-2.5 GB/s.
	one, err := Flood(Config{Links: 1, Size: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := Flood(Config{Links: 4, Size: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flood 1MB: 1 link = %.0f MB/s, 4 links = %.0f MB/s", one.BandwidthMBps, four.BandwidthMBps)
	if one.BandwidthMBps < 1200 || one.BandwidthMBps > 1600 {
		t.Errorf("1-link flood = %.0f MB/s, want ~1400-1500", one.BandwidthMBps)
	}
	if four.BandwidthMBps < 1.3*one.BandwidthMBps {
		t.Errorf("4-link flood (%.0f) should clearly exceed 1 link (%.0f)",
			four.BandwidthMBps, one.BandwidthMBps)
	}
	if four.BandwidthMBps > 2600 {
		t.Errorf("4-link flood %.0f exceeds the NIC", four.BandwidthMBps)
	}
}

func TestPthreadFloodBelowProcesses(t *testing.T) {
	// Figure 4.2(b): pthread link-pairs extract less throughput than
	// process pairs — clearly so in the mid-size range where the shared
	// connection's lock serializes bounce-buffer copies — while multiple
	// pthread streams still beat one link at large sizes.
	procMid, err := Flood(Config{Links: 8, Size: 128 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pthrMid, err := Flood(Config{Links: 8, Size: 128 << 10, Pthreads: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flood 128KB x 8 links: processes=%.0f pthreads=%.0f MB/s",
		procMid.BandwidthMBps, pthrMid.BandwidthMBps)
	if pthrMid.BandwidthMBps >= 0.9*procMid.BandwidthMBps {
		t.Errorf("mid-size pthread flood (%.0f) should be clearly below processes (%.0f)",
			pthrMid.BandwidthMBps, procMid.BandwidthMBps)
	}

	pthrBig, err := Flood(Config{Links: 8, Size: 1 << 20, Pthreads: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	procBig, err := Flood(Config{Links: 8, Size: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	one, err := Flood(Config{Links: 1, Size: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flood 1MB: 8-link processes=%.0f pthreads=%.0f, 1 link %.0f MB/s",
		procBig.BandwidthMBps, pthrBig.BandwidthMBps, one.BandwidthMBps)
	if pthrBig.BandwidthMBps > 1.05*procBig.BandwidthMBps {
		t.Errorf("1MB pthread flood (%.0f) should not exceed processes (%.0f)",
			pthrBig.BandwidthMBps, procBig.BandwidthMBps)
	}
	if pthrBig.BandwidthMBps <= one.BandwidthMBps {
		t.Errorf("8 pthread streams (%.0f) should still beat a single link (%.0f)",
			pthrBig.BandwidthMBps, one.BandwidthMBps)
	}
}

func TestSmallMessageFloodFavorsMultipleConnections(t *testing.T) {
	// For small/mid sizes the extra connections' parallel injection wins
	// (the paper's "significant improvement ... when more than one UPC
	// threads are used").
	one, err := Flood(Config{Links: 1, Size: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Flood(Config{Links: 8, Size: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eight.BandwidthMBps < 1.3*one.BandwidthMBps {
		t.Errorf("8-link 1KB flood (%.0f) should be well above 1 link (%.0f)",
			eight.BandwidthMBps, one.BandwidthMBps)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Latency(Config{Links: 0}); err == nil {
		t.Error("zero links must error")
	}
	if _, err := Flood(Config{Links: 1, ConduitName: "string-and-cups"}); err == nil {
		t.Error("unknown conduit must error")
	}
}

func TestSizeGrids(t *testing.T) {
	ls := LatencySizes()
	if ls[0] != 1 || ls[len(ls)-1] != 32<<10 {
		t.Errorf("latency sizes wrong: %v", ls)
	}
	fs := FloodSizes()
	if fs[0] != 64 || fs[len(fs)-1] != 2<<20 {
		t.Errorf("flood sizes wrong: %v", fs)
	}
}

func TestPthreadLatencyMonotoneInLinks(t *testing.T) {
	// More pthread link-pairs on one shared connection => more
	// serialization => higher RTT, monotonically.
	var prev sim.Duration
	for _, links := range []int{2, 4, 8} {
		r, err := Latency(Config{Links: links, Size: 8192, Pthreads: true, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.RTT <= prev {
			t.Errorf("%d links RTT %v not above %d links (%v)", links, r.RTT, links/2, prev)
		}
		prev = r.RTT
	}
}

func TestFloodWindowInsensitiveAtSaturation(t *testing.T) {
	// Once the wire saturates, a deeper window must not create bandwidth.
	w4, err := Flood(Config{Links: 2, Size: 1 << 20, Window: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w16, err := Flood(Config{Links: 2, Size: 1 << 20, Window: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ratio := w16.BandwidthMBps / w4.BandwidthMBps
	// A deeper window adds nothing once saturated, and costs a little
	// goodput through the NIC congestion coefficient.
	if ratio < 0.85 || ratio > 1.02 {
		t.Errorf("window 16 / window 4 bandwidth = %.2f, want ~0.9-1", ratio)
	}
}

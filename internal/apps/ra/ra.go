// Package ra implements a RandomAccess (GUPS-style) benchmark, the other
// application class the thesis names as suited to thread grouping
// ("...the thread group approach would fit better in these cases, such as
// UTS, Random Access, etc." — Section 4.4). A distributed table receives
// XOR updates at pseudo-random global indices. Three variants form the
// ablation:
//
//   - Fine: every update is an individual one-sided 8-byte operation — the
//     natural UPC expression, dominated by per-message overheads.
//   - Aggregated: updates are bucketed per destination *thread* and
//     shipped in bulk (software aggregation).
//   - GroupAggregated: updates are bucketed per destination *node* using
//     the thread-group machinery; the receiving member scatters them to
//     its node peers through the privatized pointer table — hierarchical
//     aggregation with P/perNode times fewer buckets.
//
// All variants run real XOR updates; results are verified against a
// sequential reference (XOR is order-independent).
package ra

import (
	"fmt"
	"sort"

	"repro/internal/fabric"
	"repro/internal/group"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/upc"
)

// Variant selects the update strategy.
type Variant int

const (
	// Fine issues one 8-byte one-sided update per element.
	Fine Variant = iota
	// Aggregated buckets updates per destination thread.
	Aggregated
	// GroupAggregated buckets updates per destination node (thread
	// group), scattering locally through cast pointers.
	GroupAggregated
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Aggregated:
		return "aggregated"
	case GroupAggregated:
		return "group-aggregated"
	}
	return "fine-grained"
}

// Variants lists the ablation in order.
func Variants() []Variant { return []Variant{Fine, Aggregated, GroupAggregated} }

// Config parameterizes one RandomAccess run.
type Config struct {
	Machine     *topo.Machine
	ConduitName string
	Threads     int
	PerNode     int
	TableSize   int // total table elements (power of two recommended)
	Updates     int // updates per thread
	Bucket      int // aggregation bucket, in updates (default 512)
	Window      int // outstanding fine-grained ops (default 64)
	Variant     Variant
	Seed        int64
}

// Result summarizes one run.
type Result struct {
	Elapsed sim.Duration
	// GUPS is giga-updates per second, the HPCC metric.
	GUPS float64
	// Messages is the number of one-sided operations issued.
	Messages int64
}

// update is one table mutation.
type update struct {
	index int
	value uint64
}

// sequence generates thread t's deterministic update stream (a simple
// SplitMix-style generator; the HPCC polynomial is not needed for shape).
func sequence(t, n, tableSize int, seed int64) []update {
	out := make([]update, n)
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(t+1)*0xBF58476D1CE4E5B9
	for i := range out {
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		out[i] = update{index: int(x % uint64(tableSize)), value: x}
	}
	return out
}

// Reference computes the sequential result of all threads' updates.
func Reference(cfg Config) []uint64 {
	table := make([]uint64, cfg.TableSize)
	for t := 0; t < cfg.Threads; t++ {
		for _, u := range sequence(t, cfg.Updates, cfg.TableSize, cfg.Seed) {
			table[u.index] ^= u.value
		}
	}
	return table
}

// Run executes the benchmark and verifies the final table against the
// sequential reference.
func Run(cfg Config) (Result, error) {
	if cfg.Machine == nil {
		cfg.Machine = topo.Lehman()
	}
	if cfg.Threads <= 0 || cfg.PerNode <= 0 || cfg.TableSize <= 0 || cfg.Updates <= 0 {
		return Result{}, fmt.Errorf("ra: invalid config %+v", cfg)
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = 512
	}
	if cfg.Window <= 0 {
		cfg.Window = 64
	}
	var cond *fabric.Conduit
	if cfg.ConduitName != "" {
		c, ok := fabric.ConduitByName(cfg.ConduitName)
		if !ok {
			return Result{}, fmt.Errorf("ra: unknown conduit %q", cfg.ConduitName)
		}
		cond = &c
	}
	ucfg := upc.Config{
		Machine:        cfg.Machine,
		Conduit:        cond,
		Threads:        cfg.Threads,
		ThreadsPerNode: cfg.PerNode,
		Backend:        upc.Processes,
		PSHM:           true,
		Seed:           cfg.Seed,
	}
	var elapsed sim.Duration
	var messages int64
	var tableRef *upc.Shared[uint64]
	_, err := upc.Run(ucfg, func(t *upc.Thread) {
		table := upc.Alloc[uint64](t, cfg.TableSize, 8, upc.BlockedLayout(cfg.TableSize, t.N))
		tableRef = table
		t.Barrier()
		start := t.Now()
		ups := sequence(t.ID, cfg.Updates, cfg.TableSize, cfg.Seed)
		var n int64
		switch cfg.Variant {
		case Fine:
			n = runFine(t, table, ups, cfg.Window)
		case Aggregated:
			n = runAggregated(t, table, ups, cfg.Bucket, nil)
		case GroupAggregated:
			n = runAggregated(t, table, ups, cfg.Bucket, group.NodeGroup(t))
		}
		t.Barrier()
		if t.ID == 0 {
			elapsed = t.Now() - start
		}
		messages += n
	})
	if err != nil {
		return Result{}, err
	}
	// Verify against the sequential reference.
	want := Reference(cfg)
	for i, w := range want {
		owner, local := tableRef.Owner(i), tableRef.LocalIndex(i)
		//upcvet:affinity -- verification against the reference, outside the timed run
		if got := tableRef.Partition(owner)[local]; got != w {
			return Result{}, fmt.Errorf("ra: %v: table[%d] = %#x, want %#x",
				cfg.Variant, i, got, w)
		}
	}
	totalUpdates := float64(cfg.Threads) * float64(cfg.Updates)
	return Result{
		Elapsed:  elapsed,
		GUPS:     totalUpdates / elapsed.Seconds() / 1e9,
		Messages: messages,
	}, nil
}

// runFine issues one windowed 8-byte one-sided update per element.
func runFine(t *upc.Thread, table *upc.Shared[uint64], ups []update, window int) int64 {
	var pending []*upc.Handle
	var n int64
	for _, u := range ups {
		owner, local := table.Owner(u.index), table.LocalIndex(u.index)
		if seg := table.Cast(t, owner); seg != nil {
			// Same node: direct read-modify-write through the cast
			// pointer (one translation + a cache-line touch).
			t.ChargeXlate(1)
			t.MemStreamFrom(8, t.Runtime().PlaceOf(owner).Socket)
			seg[local] ^= u.value
			continue
		}
		if len(pending) >= window {
			t.WaitSync(pending[0])
			pending = pending[1:]
		}
		//upcvet:affinity -- target segment for the delivery-time handler below
		seg := table.Partition(owner)
		v := u.value
		li := local
		pending = append(pending, upc.ApplyAsync(t, owner, 8, func() {
			seg[li] ^= v
		}))
		n++
	}
	t.WaitAll(pending)
	return n
}

// runAggregated buckets updates per destination thread (g == nil) or per
// destination node (g != nil), shipping full buckets as bulk one-sided
// transfers whose remote handler applies the XORs.
func runAggregated(t *upc.Thread, table *upc.Shared[uint64], ups []update,
	bucket int, g *group.Group) int64 {
	rt := t.Runtime()
	perNode := rt.Cfg.ThreadsPerNode
	// Destination key: thread id, or node representative under grouping.
	keyOf := func(owner int) int {
		if g == nil {
			return owner
		}
		// Route the node bucket to the member with the same node-local
		// rank as this thread (spreading receive work across the group).
		node := rt.PlaceOf(owner).Node
		rep := node*perNode + t.ID%perNode
		if rep >= t.N {
			rep = node * perNode
		}
		return rep
	}
	buckets := map[int][]update{}
	var pending []*upc.Handle
	var n int64
	flush := func(key int) {
		b := buckets[key]
		if len(b) == 0 {
			return
		}
		buckets[key] = nil
		snap := append([]update(nil), b...)
		n++
		pending = append(pending, upc.ApplyAsync(t, key, int64(len(snap))*16, func() {
			for _, u := range snap {
				owner, local := table.Owner(u.index), table.LocalIndex(u.index)
				// Under grouping the receiver scatters to node peers
				// through the cast table; both cases are direct memory at
				// the receiving node.
				//upcvet:affinity,sharedrace -- delivery-time XOR scatter; commutative updates, deterministic under virtual time
				table.Partition(owner)[local] ^= u.value
			}
		}))
	}
	for _, u := range ups {
		owner := table.Owner(u.index)
		if seg := table.Cast(t, owner); seg != nil {
			t.ChargeXlate(1)
			t.MemStreamFrom(8, rt.PlaceOf(owner).Socket)
			seg[table.LocalIndex(u.index)] ^= u.value
			continue
		}
		key := keyOf(owner)
		buckets[key] = append(buckets[key], u)
		if len(buckets[key]) >= bucket {
			flush(key)
		}
	}
	// Flush the residual buckets in key order: ranging the map here
	// would issue the final network sends in randomized order and make
	// the event stream differ between same-seed runs.
	keys := make([]int, 0, len(buckets))
	for key := range buckets {
		keys = append(keys, key)
	}
	sort.Ints(keys)
	for _, key := range keys {
		flush(key)
	}
	t.WaitAll(pending)
	return n
}

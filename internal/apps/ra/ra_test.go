package ra

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

func raCfg(v Variant) Config {
	return Config{
		Machine:   topo.Lehman(),
		Threads:   8,
		PerNode:   4,
		TableSize: 1 << 14,
		Updates:   2000,
		Variant:   v,
		Seed:      1,
	}
}

func TestAllVariantsProduceIdenticalTables(t *testing.T) {
	// Run() verifies against the sequential reference internally; a passing
	// run for each variant proves all three strategies compute the same
	// result.
	for _, v := range Variants() {
		r, err := Run(raCfg(v))
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if r.GUPS <= 0 {
			t.Errorf("%v: GUPS = %g", v, r.GUPS)
		}
		t.Logf("%-18s %8.5f GUPS  %6d messages  %v", v, r.GUPS, r.Messages, r.Elapsed)
	}
}

func TestAggregationReducesMessages(t *testing.T) {
	fine, err := Run(raCfg(Fine))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Run(raCfg(Aggregated))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Messages*10 > fine.Messages {
		t.Errorf("aggregation should cut messages by >10x: fine=%d agg=%d",
			fine.Messages, agg.Messages)
	}
}

func TestAggregationImprovesThroughput(t *testing.T) {
	fine, err := Run(raCfg(Fine))
	if err != nil {
		t.Fatal(err)
	}
	agg, err := Run(raCfg(Aggregated))
	if err != nil {
		t.Fatal(err)
	}
	if agg.GUPS <= fine.GUPS {
		t.Errorf("aggregated (%g GUPS) should beat fine-grained (%g GUPS)",
			agg.GUPS, fine.GUPS)
	}
}

func TestGroupAggregationReducesBucketsOnManyNodes(t *testing.T) {
	// On 4 nodes x 4 threads, node-level bucketing sends to 3 remote nodes
	// instead of 12 remote threads: fewer, larger buckets.
	cfg := raCfg(Aggregated)
	cfg.Threads, cfg.PerNode = 16, 4
	cfg.Updates = 4000
	agg, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Variant = GroupAggregated
	grp, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("per-thread buckets: %d msgs (%v); per-node buckets: %d msgs (%v)",
		agg.Messages, agg.Elapsed, grp.Messages, grp.Elapsed)
	if grp.Messages >= agg.Messages {
		t.Errorf("group aggregation should send fewer messages: %d vs %d",
			grp.Messages, agg.Messages)
	}
	if grp.Elapsed > agg.Elapsed+agg.Elapsed/4 {
		t.Errorf("group aggregation (%v) should not be much slower than per-thread (%v)",
			grp.Elapsed, agg.Elapsed)
	}
}

func TestReferenceDeterministic(t *testing.T) {
	a := Reference(raCfg(Fine))
	b := Reference(raCfg(Fine))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reference not deterministic at %d", i)
		}
	}
	nonZero := 0
	for _, v := range a {
		if v != 0 {
			nonZero++
		}
	}
	if nonZero < len(a)/4 {
		t.Errorf("reference table suspiciously sparse: %d/%d non-zero", nonZero, len(a))
	}
}

func TestSingleNodeIsAllLocal(t *testing.T) {
	cfg := raCfg(Fine)
	cfg.Threads, cfg.PerNode = 4, 4 // one node: every access castable
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Messages != 0 {
		t.Errorf("single-node fine-grained should issue no network messages, got %d", r.Messages)
	}
	if r.Elapsed <= 0 || r.Elapsed > sim.Second {
		t.Errorf("implausible elapsed %v", r.Elapsed)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Machine: topo.Lehman()}); err == nil {
		t.Error("empty config must error")
	}
	bad := raCfg(Fine)
	bad.ConduitName = "yodeling"
	if _, err := Run(bad); err == nil {
		t.Error("unknown conduit must error")
	}
}

// Sharded stream: a multi-node, ring-twisted triad on the node-sharded
// parallel engine. Each fabric node is one sim lane holding its own
// partitions of a, b and c; thread w on node l computes the partition
// of thread w on node (l+1) mod N — the cross-node generalization of
// the Table 3.1 twist — by bulk-fetching the peer's operands over the
// ShardNet (re-localization), computing locally, and putting the
// result back. Kernels run on real float64 data and are verified
// element-wise; wire and memory costs are charged to the virtual
// clock, and the run is byte-identical at any -shards worker count.
package stream

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Shard RPC operations: operand fetches for re-localization.
const (
	opFetchB = 1
	opFetchC = 2
)

// ShardConfig parameterizes one sharded twisted-triad run.
type ShardConfig struct {
	Machine        *topo.Machine
	Nodes          int // fabric nodes = sim lanes (>= 2)
	ThreadsPerNode int
	ElemsPerThrd   int
	Seed           int64
	// Tracer, when non-nil, receives the run's merged trace stream.
	Tracer trace.Tracer
}

// streamLane is one lane's data and bookkeeping. All fields are
// lane-local: mutated only in this lane's engine context (remote puts
// and fetch applies land here as engine events).
type streamLane struct {
	a, b, c [][]float64 // per-worker partitions
	inbox   [][]float64 // per-worker landing slot for one fetched operand
	err     error
}

// RunTwistedSharded executes the ring-twisted triad across cfg.Nodes
// lanes and reports aggregate triad bandwidth.
func RunTwistedSharded(cfg ShardConfig) (Result, error) {
	if cfg.Machine == nil {
		cfg.Machine = topo.Lehman()
	}
	if cfg.Nodes < 2 {
		return Result{}, fmt.Errorf("stream: sharded triad needs >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.ThreadsPerNode <= 0 {
		cfg.ThreadsPerNode = cfg.Machine.CoresPerNode()
	}
	if cfg.ElemsPerThrd == 0 {
		cfg.ElemsPerThrd = 1 << 16
	}
	cond, ok := fabric.ConduitByName(cfg.Machine.DefaultConduit)
	if !ok {
		return Result{}, fmt.Errorf("stream: unknown default conduit %q", cfg.Machine.DefaultConduit)
	}
	// The twist's data path uses plain blocking puts with no retry, so a
	// lossy schedule would strand it mid-kernel. Refuse loudly rather
	// than silently ignoring the process-default schedule -faults set.
	if sched := fault.Default(); sched != nil && len(sched.Actions) > 0 {
		return Result{}, fmt.Errorf("stream: the sharded triad does not model faults; " +
			"run fault studies on the legacy engine (-parallel) or the sharded UTS")
	}

	n := cfg.ElemsPerThrd
	lanes := cfg.Nodes
	perNode := cfg.ThreadsPerNode
	// Like upc.Run, the config tracer is added on top of the process
	// default, so session tracing reaches sharded runs too.
	g := sim.NewShardGroup(cfg.Seed, lanes, trace.Tee(trace.Default(), cfg.Tracer))
	net := fabric.NewShardNet(g, cond)
	parts := make([]int, lanes)
	clusters := make([]*fabric.Cluster, lanes)
	data := make([]*streamLane, lanes)
	for l := 0; l < lanes; l++ {
		parts[l] = perNode
		clusters[l] = fabric.LaneCluster(g, l, cfg.Machine, cond)
		ld := &streamLane{
			a:     make([][]float64, perNode),
			b:     make([][]float64, perNode),
			c:     make([][]float64, perNode),
			inbox: make([][]float64, perNode),
		}
		for w := 0; w < perNode; w++ {
			ld.a[w] = make([]float64, n)
			ld.b[w] = make([]float64, n)
			ld.c[w] = make([]float64, n)
		}
		data[l] = ld
		// Operand fetches: the handler snapshots the partition (b and c
		// are constant during the kernel, so the copy is race-free and
		// value-deterministic) and the apply lands it at the caller.
		lane := l
		fetch := func(arr func(*streamLane) [][]float64) fabric.HandlerFunc {
			return func(src int, arg int64) (int64, func()) {
				wkr := int(arg)
				snap := append([]float64(nil), arr(data[lane])[wkr]...)
				return int64(8 * len(snap)), func() { data[src].inbox[wkr] = snap }
			}
		}
		net.Port(l).Handle(opFetchB, fetch(func(ld *streamLane) [][]float64 { return ld.b }))
		net.Port(l).Handle(opFetchC, fetch(func(ld *streamLane) [][]float64 { return ld.c }))
	}
	bar := fabric.NewShardBarrier(net, parts)

	var start, stop sim.Time // lane-0 context only
	for l := 0; l < lanes; l++ {
		for w := 0; w < perNode; w++ {
			lane, wkr := l, w
			g.Lane(lane).Go(fmt.Sprintf("triad%d.%d", lane, wkr), func(p *sim.Proc) {
				ld := data[lane]
				cl := clusters[lane]
				pl := streamPlace(cfg.Machine, wkr)
				gid := lane*perNode + wkr
				for i := 0; i < n; i++ {
					ld.b[wkr][i] = float64(gid*n + i)
					ld.c[wkr][i] = 2
				}
				// First touch on the worker's own socket.
				_ = cl.MemCopy(p, pl, pl, int64(16*n), 0)
				bar.Wait(p, lane)
				if gid == 0 {
					start = p.Now()
				}

				// The ring twist: compute the next node's partition from
				// its own operands — fetch, triad locally, put back.
				peer := (lane + 1) % lanes
				pt := net.Port(lane)
				pt.Call(p, wkr, peer, opFetchB, int64(wkr), 16)
				lb := ld.inbox[wkr]
				pt.Call(p, wkr, peer, opFetchC, int64(wkr), 16)
				lc := ld.inbox[wkr]
				ld.inbox[wkr] = nil
				la := make([]float64, n)
				for i := 0; i < n; i++ {
					la[i] = lb[i] + triadScalar*lc[i]
				}
				_ = cl.MemCopy(p, pl, pl, int64(bytesPerElem*n), 0)
				pt.Put(p, peer, int64(8*n), func() {
					copy(data[peer].a[wkr], la)
				})

				bar.Wait(p, lane)
				if gid == 0 {
					stop = p.Now()
				}
				// Verify the partition some peer computed for this lane.
				for i := 0; i < n; i++ {
					want := ld.b[wkr][i] + triadScalar*ld.c[wkr][i]
					if ld.a[wkr][i] != want && ld.err == nil {
						ld.err = fmt.Errorf("stream: node %d thread %d element %d = %g, want %g",
							lane, wkr, i, ld.a[wkr][i], want)
					}
				}
			})
		}
	}
	if err := g.Run(); err != nil {
		return Result{}, err
	}
	for _, ld := range data {
		if ld.err != nil {
			return Result{}, ld.err
		}
	}
	kernel := stop - start
	total := n * lanes * perNode
	gbps := float64(total) * bytesPerElem / kernel.Seconds() / 1e9
	name := fmt.Sprintf("UPC re-localization %dx%d", lanes, perNode)
	return Result{Name: name, GBps: gbps, Elapsed: kernel}, nil
}

// streamPlace pins worker id onto the lane's single-node cluster,
// core-blocked across sockets.
func streamPlace(m *topo.Machine, id int) topo.Place {
	core := id % m.CoresPerNode()
	return topo.Place{Node: 0, Socket: core / m.CoresPerSocket, Core: core % m.CoresPerSocket}
}

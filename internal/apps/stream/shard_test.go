package stream

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

func shardedTriad(t *testing.T, workers, nodes int) (Result, uint64) {
	t.Helper()
	old := sim.ShardWorkers()
	sim.SetShardWorkers(workers)
	defer sim.SetShardWorkers(old)
	d := trace.NewDigest()
	r, err := RunTwistedSharded(ShardConfig{
		Nodes:          nodes,
		ThreadsPerNode: 4,
		ElemsPerThrd:   1 << 12,
		Seed:           3,
		Tracer:         d,
	})
	if err != nil {
		t.Fatalf("RunTwistedSharded(nodes=%d, workers=%d): %v", nodes, workers, err)
	}
	return r, d.Sum64()
}

// TestShardedTriadVerifies: the kernel computes and verifies real data
// across the node ring and reports positive bandwidth.
func TestShardedTriadVerifies(t *testing.T) {
	r, _ := shardedTriad(t, 1, 4)
	if r.GBps <= 0 || r.Elapsed <= 0 {
		t.Fatalf("degenerate result %+v", r)
	}
}

// TestShardedTriadWorkerCountInvariance: digest and kernel time are
// identical at any shard worker count.
func TestShardedTriadWorkerCountInvariance(t *testing.T) {
	base, dBase := shardedTriad(t, 1, 4)
	for _, workers := range []int{2, 8} {
		r, dig := shardedTriad(t, workers, 4)
		if dig != dBase || r.Elapsed != base.Elapsed || r.GBps != base.GBps {
			t.Fatalf("workers=%d diverged: digest %016x/%016x elapsed %v/%v",
				workers, dig, dBase, r.Elapsed, base.Elapsed)
		}
	}
}

// TestShardedTriadNeedsRing: a one-node ring has no cross-node twist
// and is rejected (the legacy single-node variants cover it).
func TestShardedTriadNeedsRing(t *testing.T) {
	_, err := RunTwistedSharded(ShardConfig{Nodes: 1})
	if err == nil || !strings.Contains(err.Error(), "nodes") {
		t.Fatalf("err = %v, want node-count rejection", err)
	}
}

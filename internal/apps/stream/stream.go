// Package stream implements the two STREAM triad studies of the thesis:
// the *twisted* triad of Table 3.1 (odd-even neighbor exchange, comparing
// baseline shared-pointer access, bulk re-localization, pointer
// privatization via cast, and an OpenMP-style shared-memory reference) and
// the *hybrid* triad of Table 4.1 (UPC × OpenMP sub-thread configurations
// with and without binding). Kernels execute on real data — results are
// verified element-wise — while memory and translation costs are charged
// to the virtual clock.
package stream

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/subthread"
	"repro/internal/sweep"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/upc"
)

// Variant selects the twisted-triad implementation of Table 3.1.
type Variant int

const (
	// Baseline dereferences a shared pointer on every element access.
	Baseline Variant = iota
	// Relocalize bulk-copies the neighbor's operands into private buffers,
	// computes locally, and writes the result back with upc_memput.
	Relocalize
	// Cast privatizes the neighbor's partitions with bupc_cast and runs
	// the triad through plain pointers.
	Cast
	// OpenMPRef is the shared-memory reference implementation.
	OpenMPRef
)

// String names the variant as in Table 3.1.
func (v Variant) String() string {
	switch v {
	case Baseline:
		return "UPC baseline"
	case Relocalize:
		return "UPC with re-localization"
	case Cast:
		return "UPC with cast"
	case OpenMPRef:
		return "OpenMP baseline"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists the Table 3.1 rows in order.
func Variants() []Variant { return []Variant{Baseline, Relocalize, Cast, OpenMPRef} }

// Result is one measured configuration.
type Result struct {
	Name    string
	GBps    float64
	Elapsed sim.Duration
}

const (
	triadScalar    = 3.0
	bytesPerElem   = 24 // read b and c (16B), write a (8B)
	defaultPerThrd = 1 << 20
)

// TwistedConfig parameterizes one Table 3.1 run.
type TwistedConfig struct {
	Machine      *topo.Machine
	Threads      int
	ElemsPerThrd int
	Variant      Variant
	Seed         int64
	// Tracer, when non-nil, receives the run's trace events (required by
	// parallel sweeps, where the default tracer is detached).
	Tracer trace.Tracer
}

// RunTwisted executes the twisted triad on a single SMP node and reports
// aggregate triad bandwidth. The kernel verifies its own output.
func RunTwisted(cfg TwistedConfig) (Result, error) {
	if cfg.Machine == nil {
		cfg.Machine = topo.Lehman()
	}
	if cfg.Threads == 0 {
		cfg.Threads = cfg.Machine.CoresPerNode()
	}
	if cfg.ElemsPerThrd == 0 {
		cfg.ElemsPerThrd = defaultPerThrd
	}
	n := cfg.ElemsPerThrd
	total := n * cfg.Threads
	ucfg := upc.Config{
		Machine:        cfg.Machine,
		Threads:        cfg.Threads,
		ThreadsPerNode: cfg.Threads,
		Backend:        upc.Processes,
		PSHM:           true,
		// Core-blocked binding keeps odd-even neighbor pairs on one
		// socket, as the paper's bound runs do.
		Binding: topo.BindCoreBlocked,
		Seed:    cfg.Seed,
		Tracer:  cfg.Tracer,
	}
	var kernel sim.Duration
	var errOut error
	_, err := upc.Run(ucfg, func(t *upc.Thread) {
		a := upc.Alloc[float64](t, total, 8, n)
		b := upc.Alloc[float64](t, total, 8, n)
		c := upc.Alloc[float64](t, total, 8, n)
		// Initialize own partitions (first touch on own socket).
		for i := range b.Local(t) {
			b.Local(t)[i] = float64(t.ID*n + i)
			c.Local(t)[i] = 2
		}
		t.Barrier()

		// The twisted pattern: thread 2k works on 2k+1's partition and
		// vice versa.
		peer := t.ID ^ 1
		if peer >= t.N {
			peer = t.ID
		}
		peerSocket := t.Runtime().PlaceOf(peer).Socket

		start := t.Now()
		switch cfg.Variant {
		case Baseline:
			// Real compute through the peer's segments; cost charged as
			// three translated shared accesses per element plus the
			// memory stream from the peer's socket.
			//upcvet:affinity -- single-node PSHM config: every peer is castable by construction
			pa, pb, pc := a.Cast(t, peer), b.Cast(t, peer), c.Cast(t, peer)
			for i := 0; i < n; i++ {
				pa[i] = pb[i] + triadScalar*pc[i]
			}
			t.ChargeXlate(3 * int64(n))
			t.MemStreamFrom(bytesPerElem*int64(n), peerSocket)
		case Relocalize:
			lb := make([]float64, n)
			lc := make([]float64, n)
			la := make([]float64, n)
			upc.GetT(t, b, lb, peer, 0)
			upc.GetT(t, c, lc, peer, 0)
			for i := 0; i < n; i++ {
				la[i] = lb[i] + triadScalar*lc[i]
			}
			t.MemStream(bytesPerElem * int64(n))
			upc.PutT(t, a, peer, 0, la)
		case Cast:
			//upcvet:affinity -- single-node PSHM config: every peer is castable by construction
			pa, pb, pc := a.Cast(t, peer), b.Cast(t, peer), c.Cast(t, peer)
			for i := 0; i < n; i++ {
				pa[i] = pb[i] + triadScalar*pc[i]
			}
			t.MemStreamFrom(bytesPerElem*int64(n), peerSocket)
		case OpenMPRef:
			// Shared-memory reference: same twisted access, plain
			// pointers, no PGAS layer at all.
			//upcvet:affinity -- single-node PSHM config: every peer is castable by construction
			pa, pb, pc := a.Cast(t, peer), b.Cast(t, peer), c.Cast(t, peer)
			for i := 0; i < n; i++ {
				pa[i] = pb[i] + triadScalar*pc[i]
			}
			t.MemStreamFrom(bytesPerElem*int64(n), peerSocket)
		}
		t.Barrier()
		if t.ID == 0 {
			kernel = t.Now() - start
		}

		// Verify: a[peer partition] = b + 3c everywhere.
		la := a.Local(t)
		lbv := b.Local(t)
		lcv := c.Local(t)
		for i := range la {
			want := lbv[i] + triadScalar*lcv[i]
			if la[i] != want && errOut == nil {
				errOut = fmt.Errorf("stream: thread %d element %d = %g, want %g",
					t.ID, i, la[i], want)
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	if errOut != nil {
		return Result{}, errOut
	}
	gbps := float64(total) * bytesPerElem / kernel.Seconds() / 1e9
	return Result{Name: cfg.Variant.String(), GBps: gbps, Elapsed: kernel}, nil
}

// Table31 regenerates Table 3.1 on the Lehman node model. The four
// variants are independent simulations and run on the sweep worker pool.
func Table31(seed int64) ([]Result, error) {
	vs := Variants()
	out := make([]Result, len(vs))
	err := sweep.Run(len(vs), func(i int, tr trace.Tracer) error {
		r, err := RunTwisted(TwistedConfig{Variant: vs[i], Seed: seed, Tracer: tr})
		out[i] = r
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// HybridConfig parameterizes one Table 4.1 row: UPCThreads masters, each
// with SubThreads sub-threads (1×1 meaning plain single-thread).
type HybridConfig struct {
	Machine      *topo.Machine
	UPCThreads   int
	SubThreads   int
	Bound        bool
	FirstTouch   bool // sub-threads first-touch their chunks (pure-OpenMP style)
	ElemsPerThrd int  // per sub-thread
	Seed         int64
	// Tracer, when non-nil, receives the run's trace events.
	Tracer trace.Tracer
}

// RunHybrid executes the hybrid UPC×OpenMP triad of Table 4.1 and reports
// aggregate bandwidth.
func RunHybrid(cfg HybridConfig) (Result, error) {
	if cfg.Machine == nil {
		cfg.Machine = topo.Lehman()
	}
	if cfg.ElemsPerThrd == 0 {
		cfg.ElemsPerThrd = defaultPerThrd
	}
	n := cfg.ElemsPerThrd * cfg.SubThreads // per UPC thread
	total := n * cfg.UPCThreads
	ucfg := upc.Config{
		Machine:        cfg.Machine,
		Threads:        cfg.UPCThreads,
		ThreadsPerNode: cfg.UPCThreads,
		Backend:        upc.Processes,
		PSHM:           true,
		Binding:        topo.BindSocketRR, // numactl round-robin, as the paper
		Seed:           cfg.Seed,
		Tracer:         cfg.Tracer,
	}
	var kernel sim.Duration
	var errOut error
	_, err := upc.Run(ucfg, func(t *upc.Thread) {
		a := upc.Alloc[float64](t, total, 8, n)
		b := upc.Alloc[float64](t, total, 8, n)
		c := upc.Alloc[float64](t, total, 8, n)
		for i := range b.Local(t) {
			b.Local(t)[i] = float64(i)
			c.Local(t)[i] = 2
		}
		tm, err := subthread.NewTeam(t, subthread.Config{
			Kind:   subthread.OMP,
			N:      cfg.SubThreads,
			Bound:  cfg.Bound,
			Safety: subthread.Funneled,
		})
		if err != nil {
			errOut = err
			return
		}
		t.Barrier()
		start := t.Now()
		la, lb, lc := a.Local(t), b.Local(t), c.Local(t)
		per := cfg.ElemsPerThrd
		tm.ParallelFor(cfg.SubThreads, func(s *subthread.Sub, w int) {
			lo, hi := w*per, (w+1)*per
			for i := lo; i < hi; i++ {
				la[i] = lb[i] + triadScalar*lc[i]
			}
			if cfg.FirstTouch {
				s.MemStreamHomed(bytesPerElem*int64(hi-lo), s.Place.Socket)
			} else {
				s.MemStream(bytesPerElem * int64(hi-lo))
			}
		})
		t.Barrier()
		if t.ID == 0 {
			kernel = t.Now() - start
		}
		for i := range la {
			if want := lb[i] + triadScalar*lc[i]; la[i] != want && errOut == nil {
				errOut = fmt.Errorf("stream: hybrid element %d = %g, want %g", i, la[i], want)
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	if errOut != nil {
		return Result{}, errOut
	}
	name := fmt.Sprintf("UPC*OpenMP %d*%d", cfg.UPCThreads, cfg.SubThreads)
	if !cfg.Bound {
		name += " (unbound)"
	}
	gbps := float64(total) * bytesPerElem / kernel.Seconds() / 1e9
	return Result{Name: name, GBps: gbps, Elapsed: kernel}, nil
}

// Table41 regenerates Table 4.1 on the Lehman node model: pure UPC, pure
// OpenMP, and the 1×8 / 2×4 / 4×2 hybrid configurations. The rows are
// independent simulations and run on the sweep worker pool.
func Table41(seed int64) ([]Result, error) {
	rows := []struct {
		u, s       int
		bound      bool
		firstTouch bool
		rename     string
	}{
		{8, 1, true, false, "UPC 8"},
		// The pure OpenMP reference is not socket-confined (no numactl):
		// its threads scatter across both sockets and first-touch their
		// chunks.
		{1, 8, false, true, "OpenMP 8"},
		{1, 8, false, false, ""},
		{2, 4, true, false, ""},
		{4, 2, true, false, ""},
	}
	out := make([]Result, len(rows))
	err := sweep.Run(len(rows), func(i int, tr trace.Tracer) error {
		c := rows[i]
		r, err := RunHybrid(HybridConfig{UPCThreads: c.u, SubThreads: c.s, Bound: c.bound,
			FirstTouch: c.firstTouch, Seed: seed, Tracer: tr})
		if err != nil {
			return err
		}
		if c.rename != "" {
			r.Name = c.rename
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

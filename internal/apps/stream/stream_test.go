package stream

import (
	"testing"
)

func TestTable31Shape(t *testing.T) {
	rs, err := Table31(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rs))
	}
	base, reloc, cast, omp := rs[0].GBps, rs[1].GBps, rs[2].GBps, rs[3].GBps
	t.Logf("Table 3.1: baseline=%.1f reloc=%.1f cast=%.1f openmp=%.1f GB/s",
		base, reloc, cast, omp)

	// Paper shape: baseline (3.2) << re-localization (7.2) << cast (23.2)
	// ≈ OpenMP (23.4).
	if !(base < reloc && reloc < cast) {
		t.Errorf("ordering violated: base=%.1f reloc=%.1f cast=%.1f", base, reloc, cast)
	}
	if cast/base < 4 {
		t.Errorf("cast/baseline = %.1f, paper shows ~7x", cast/base)
	}
	if reloc/base < 1.5 || reloc/base > 4.5 {
		t.Errorf("reloc/baseline = %.1f, paper shows ~2.3x", reloc/base)
	}
	if d := cast/omp - 1; d > 0.1 || d < -0.1 {
		t.Errorf("cast (%.1f) should match OpenMP (%.1f) within 10%%", cast, omp)
	}
	// Absolute calibration: cast should land near the 23 GB/s node
	// bandwidth, baseline in the low single digits.
	if cast < 18 || cast > 28 {
		t.Errorf("cast = %.1f GB/s, want ~23", cast)
	}
	if base < 1.5 || base > 6 {
		t.Errorf("baseline = %.1f GB/s, want ~3", base)
	}
}

func TestTable41Shape(t *testing.T) {
	rs, err := Table41(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 5 {
		t.Fatalf("want 5 rows, got %d", len(rs))
	}
	byName := map[string]float64{}
	for _, r := range rs {
		byName[r.Name] = r.GBps
		t.Logf("Table 4.1: %-24s %.1f GB/s", r.Name, r.GBps)
	}
	full := byName["UPC 8"]
	omp := byName["OpenMP 8"]
	oneEight := byName["UPC*OpenMP 1*8 (unbound)"]
	twoFour := byName["UPC*OpenMP 2*4"]
	fourTwo := byName["UPC*OpenMP 4*2"]

	// Paper shape: 1×8 unbound achieves a little more than half of the
	// optimum; 2×4 and 4×2 bound match pure UPC/OpenMP.
	if ratio := oneEight / full; ratio < 0.4 || ratio > 0.65 {
		t.Errorf("1x8/full = %.2f, paper shows ~0.56", ratio)
	}
	for _, tc := range []struct {
		name string
		v    float64
	}{{"2*4", twoFour}, {"4*2", fourTwo}} {
		if r := tc.v / full; r < 0.9 || r > 1.1 {
			t.Errorf("%s should match pure UPC: %.1f vs %.1f", tc.name, tc.v, full)
		}
	}
	if r := omp / full; r < 0.85 || r > 1.1 {
		t.Errorf("OpenMP (%.1f) should be close to UPC (%.1f)", omp, full)
	}
	// Absolute: full-node bandwidth near 24 GB/s.
	if full < 20 || full > 28 {
		t.Errorf("UPC 8 = %.1f GB/s, want ~24.5", full)
	}
}

func TestTwistedSmallThreadCounts(t *testing.T) {
	// Odd thread counts: the last thread pairs with itself; must still
	// verify and not crash.
	r, err := RunTwisted(TwistedConfig{Threads: 3, ElemsPerThrd: 4096, Variant: Cast, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.GBps <= 0 {
		t.Errorf("bandwidth = %g", r.GBps)
	}
}

func TestHybridVerifiesData(t *testing.T) {
	r, err := RunHybrid(HybridConfig{UPCThreads: 2, SubThreads: 2, Bound: true,
		ElemsPerThrd: 8192, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.GBps <= 0 {
		t.Errorf("bandwidth = %g", r.GBps)
	}
}

func TestVariantStrings(t *testing.T) {
	want := []string{"UPC baseline", "UPC with re-localization", "UPC with cast", "OpenMP baseline"}
	for i, v := range Variants() {
		if v.String() != want[i] {
			t.Errorf("variant %d = %q, want %q", i, v.String(), want[i])
		}
	}
}

package uts

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// churnSchedule is the repeated crash-with-revive scenario shipped as
// examples/faults/churn.json: node 1 bounces twice, node 2 once, all
// mid-traversal.
func churnSchedule() *fault.Schedule {
	return &fault.Schedule{Name: "churn", Actions: []fault.Action{
		{Op: fault.OpCrash, At: 0.0002, Until: 0.0004, Node: 1, Src: -1, Dst: -1},
		{Op: fault.OpCrash, At: 0.00045, Until: 0.00065, Node: 2, Src: -1, Dst: -1},
		{Op: fault.OpCrash, At: 0.0007, Until: 0.00085, Node: 1, Src: -1, Dst: -1},
	}}
}

func churnConfig() Config {
	return Config{
		Machine:     topo.Pyramid(),
		Threads:     16,
		PerNode:     4,
		Strategy:    LocalRapid,
		Granularity: 8,
		Tree:        Small(60000),
		Seed:        1,
		Faults:      churnSchedule(),
	}
}

// churnRun executes the legacy traversal under churn. Run itself
// verifies the exact tree count against the sequential walk.
func churnRun(t *testing.T) Result {
	t.Helper()
	r, err := Run(churnConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestChurnRejoinCountsExactTree is the reincarnation acceptance
// scenario on the legacy engine: nodes crash and revive mid-run, the
// revived workers rejoin the traversal, and the count stays exact.
// Beyond exactness (checked inside Run), the manifest counters must
// prove the rejoin was real: every crash window produced failovers,
// every revival produced rejoins, and at least one revived worker went
// on to steal work again.
func TestChurnRejoinCountsExactTree(t *testing.T) {
	r := churnRun(t)
	if r.Elapsed <= sim.Duration(850*sim.Microsecond) {
		t.Fatalf("run ended at %v, before the last revival — grow the tree", r.Elapsed)
	}
	// Node 1 bounces twice, node 2 once; 4 workers per node. A worker
	// blocked in a remote steal across its own crash window legitimately
	// misses a failover (the RPC reply arrives in the next life), so the
	// floor is one full node's worth with headroom up to 12.
	if got := r.Counters.Get("failovers"); got < 4 || got > 12 {
		t.Errorf("failovers = %d, want within [4, 12] for three crash windows", got)
	}
	if got, died := r.Counters.Get("rejoins"), r.Counters.Get("failovers"); got != died {
		t.Errorf("rejoins = %d, failovers = %d: every churn death must rejoin", got, died)
	}
	if r.Counters.Get("orphans_taken") == 0 {
		t.Error("survivors adopted no orphaned work despite mid-run crashes")
	}
	if r.Counters.Get("steals_rejoined") == 0 {
		t.Error("no revived worker stole after rejoining — churn windows leave no work, retune the schedule")
	}
}

// TestChurnRunDeterministic replays the churn scenario: identical
// (seed, schedule) must reproduce the timeline and every counter.
func TestChurnRunDeterministic(t *testing.T) {
	a := churnRun(t)
	b := churnRun(t)
	if a.Elapsed != b.Elapsed || a.Counters.String() != b.Counters.String() {
		t.Errorf("churn replays differ:\n%v %v\n%v %v", a.Elapsed, a.Counters, b.Elapsed, b.Counters)
	}
}

// TestChurnSoak sweeps seeds under the churn schedule: the exact count
// must hold at every seed (Run checks it), and each seed must replay
// identically.
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short")
	}
	for seed := int64(1); seed <= 5; seed++ {
		cfg := churnConfig()
		cfg.Seed = seed
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cfg2 := churnConfig()
		cfg2.Seed = seed
		b, err := Run(cfg2)
		if err != nil {
			t.Fatalf("seed %d replay: %v", seed, err)
		}
		if a.Elapsed != b.Elapsed || a.Counters.String() != b.Counters.String() {
			t.Errorf("seed %d: churn replays differ", seed)
		}
	}
}

// shardChurnRun executes the sharded traversal under churn. RunSharded
// verifies the exact count; the caller checks the recovery counters.
func shardChurnRun(t *testing.T, seed int64) Result {
	t.Helper()
	cfg := churnConfig()
	cfg.Seed = seed
	r, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestShardChurnRejoinCountsExactTree is the sharded acceptance
// scenario: lanes 1 and 2 bounce, dying workers will their work to the
// lane-0 orphan pool, revived workers rejoin and steal again, and the
// count stays exact at any -shards worker count (the engine's
// lane-invariance makes that a byte-level property; here we check the
// counters that prove recovery happened).
func TestShardChurnRejoinCountsExactTree(t *testing.T) {
	r := shardChurnRun(t, 1)
	if got := r.Counters.Get("failovers"); got < 4 || got > 12 {
		t.Errorf("failovers = %d, want within [4, 12] for three crash windows", got)
	}
	if got, died := r.Counters.Get("rejoins"), r.Counters.Get("failovers"); got != died {
		t.Errorf("rejoins = %d, failovers = %d: every churn death must rejoin", got, died)
	}
	if r.Counters.Get("orphans_taken") == 0 {
		t.Error("lane-0 workers adopted no orphaned work despite churn")
	}
	if r.Counters.Get("steals_rejoined") == 0 {
		t.Error("no revived worker stole after rejoining — churn windows leave no work, retune the schedule")
	}
}

// TestShardChurnDeterministic replays the sharded churn scenario.
func TestShardChurnDeterministic(t *testing.T) {
	a := shardChurnRun(t, 1)
	b := shardChurnRun(t, 1)
	if a.Elapsed != b.Elapsed || a.Counters.String() != b.Counters.String() {
		t.Errorf("sharded churn replays differ:\n%v %v\n%v %v", a.Elapsed, a.Counters, b.Elapsed, b.Counters)
	}
}

// TestShardChurnRejectsUnrecoverable: permanent crashes and crashes of
// lane 0 have no sharded recovery story and must be refused up front.
func TestShardChurnRejectsUnrecoverable(t *testing.T) {
	cfg := churnConfig()
	cfg.Faults = &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpCrash, At: 0.001, Node: 1, Src: -1, Dst: -1},
	}}
	if _, err := RunSharded(cfg); err == nil {
		t.Error("permanent crash accepted by sharded run")
	}
	cfg.Faults = &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpCrash, At: 0.001, Until: 0.002, Node: 0, Src: -1, Dst: -1},
	}}
	if _, err := RunSharded(cfg); err == nil {
		t.Error("crash of coordinator lane 0 accepted by sharded run")
	}
}

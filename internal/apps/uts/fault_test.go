package uts

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
)

// crashRun executes a traversal that loses node 1 (4 of 16 workers)
// mid-run. Run itself verifies the survivors still count the exact tree.
func crashRun(t *testing.T) Result {
	t.Helper()
	r, err := Run(Config{
		Machine:     topo.Pyramid(),
		Threads:     16,
		PerNode:     4,
		Strategy:    LocalRapid,
		Granularity: 8,
		Tree:        Small(60000),
		Seed:        1,
		Faults: &fault.Schedule{Name: "crash-node-1", Actions: []fault.Action{
			{Op: fault.OpCrash, At: 0.001, Node: 1, Src: -1, Dst: -1},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestCrashMidRunSurvivorsCountExactTree is the acceptance scenario: a
// whole node dies mid-traversal, its unfinished work is re-rooted on the
// survivors, and the total node count still matches the sequential walk.
func TestCrashMidRunSurvivorsCountExactTree(t *testing.T) {
	r := crashRun(t)
	if r.Elapsed <= sim.Duration(sim.Millisecond) {
		t.Fatalf("run ended at %v, before the scheduled crash — grow the tree", r.Elapsed)
	}
	if got := r.Counters.Get("failovers"); got != 4 {
		t.Errorf("failovers = %d, want 4 (one per worker on the dead node)", got)
	}
	if r.Counters.Get("orphans_taken") == 0 {
		t.Error("survivors adopted no orphaned work despite mid-run crash")
	}
}

// TestCrashRunDeterministic repeats the crash scenario: identical
// (seed, schedule) must reproduce the virtual timeline and every counter.
func TestCrashRunDeterministic(t *testing.T) {
	a := crashRun(t)
	b := crashRun(t)
	if a.Elapsed != b.Elapsed || a.Counters.String() != b.Counters.String() {
		t.Errorf("crash replays differ:\n%v %v\n%v %v", a.Elapsed, a.Counters, b.Elapsed, b.Counters)
	}
}

// TestMessageChaosKeepsCountExact runs under a lossy, duplicating,
// delaying schedule with no crashes: the self-healing steal path must
// deliver the exact count, deterministically.
func TestMessageChaosKeepsCountExact(t *testing.T) {
	run := func() Result {
		r, err := Run(Config{
			Machine:     topo.Pyramid(),
			Threads:     8,
			PerNode:     4,
			Strategy:    LocalSteal,
			Granularity: 8,
			Tree:        Small(30000),
			Seed:        1,
			Faults: &fault.Schedule{Name: "lossy", Actions: []fault.Action{
				{Op: fault.OpDrop, At: 0, Until: 0.01, Prob: 0.3, Src: -1, Dst: -1},
				{Op: fault.OpDuplicate, At: 0, Until: 0.01, Prob: 0.2, Src: -1, Dst: -1},
				{Op: fault.OpDelay, At: 0, Until: 0.01, Prob: 0.3, Extra: 20e-6, Src: -1, Dst: -1},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a := run()
	b := run()
	if a.Elapsed != b.Elapsed || a.Counters.String() != b.Counters.String() {
		t.Errorf("chaos replays differ:\n%v %v\n%v %v", a.Elapsed, a.Counters, b.Elapsed, b.Counters)
	}
	if a.Counters.Get("failovers") != 0 {
		t.Errorf("no node crashed, yet failovers = %d", a.Counters.Get("failovers"))
	}
}

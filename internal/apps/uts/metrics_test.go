package uts

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/upc"
)

// twoNodeConfig is a 2-node Pyramid shape: 8 threads, 4 per node, so
// the run has both intra-node (PSHM) and cross-node (conduit) traffic.
func twoNodeConfig(tr trace.Tracer) Config {
	return Config{
		Machine:  topo.Pyramid(),
		Threads:  8,
		PerNode:  4,
		Strategy: LocalRapid,
		Tree:     Small(20000),
		Seed:     3,
		Tracer:   tr,
	}
}

// TestCommMatrixClasses verifies the acceptance property of the comm
// matrix on a 2-node Pyramid UTS run: PSHM and network traffic are
// both present and separately classified, no transfer is misfiled
// (classes must agree with the endpoints' node topology), and — since
// uts runs the Processes backend with PSHM on — no loopback traffic
// appears.
func TestCommMatrixClasses(t *testing.T) {
	coll := metrics.NewCollection()
	if _, err := Run(twoNodeConfig(coll)); err != nil {
		t.Fatal(err)
	}
	m := coll.Manifest("uts-test", nil)
	if m.Comm == nil {
		t.Fatal("no communication matrix collected")
	}
	if b := coll.Comm.ClassBytes(trace.ClassPSHM); b == 0 {
		t.Error("no PSHM bytes on a 4-threads-per-node run")
	}
	if b := coll.Comm.ClassBytes(trace.ClassNetwork); b == 0 {
		t.Error("no network bytes on a 2-node run")
	}
	if b := coll.Comm.ClassBytes(trace.ClassLoopback); b != 0 {
		t.Errorf("loopback bytes = %d on a PSHM run, want 0", b)
	}
	perNode := 4
	for _, c := range m.Comm.Threads {
		srcNode, dstNode := c.Src/perNode, c.Dst/perNode
		switch c.Class {
		case trace.ClassSelf:
			if c.Src != c.Dst {
				t.Errorf("self cell %d->%d between distinct threads", c.Src, c.Dst)
			}
		case trace.ClassPSHM:
			if c.Src == c.Dst || srcNode != dstNode {
				t.Errorf("pshm cell %d->%d not intra-node", c.Src, c.Dst)
			}
		case trace.ClassNetwork:
			if srcNode == dstNode {
				t.Errorf("network cell %d->%d is intra-node", c.Src, c.Dst)
			}
		default:
			t.Errorf("unexpected class %q", c.Class)
		}
	}
	// The node-granularity aggregation must preserve the totals.
	var nodeBytes int64
	for _, c := range m.Comm.Nodes {
		nodeBytes += c.Bytes
	}
	if nodeBytes != coll.Comm.Bytes() {
		t.Errorf("node aggregation bytes = %d, matrix total = %d", nodeBytes, coll.Comm.Bytes())
	}
}

// TestLoopbackClass drives the one path uts itself never takes —
// same-node transfers without shared memory — and checks they classify
// as loopback, distinct from both PSHM and network.
func TestLoopbackClass(t *testing.T) {
	coll := metrics.NewCollection()
	ucfg := upc.Config{
		Machine:        topo.Pyramid(),
		Threads:        4,
		ThreadsPerNode: 2,
		Backend:        upc.Processes,
		PSHM:           false,
		Seed:           1,
		Tracer:         coll,
	}
	_, err := upc.Run(ucfg, func(th *upc.Thread) {
		if th.ID == 0 {
			th.PutBytes(1, 4096) // same node, no shared memory: loopback
			th.PutBytes(2, 2048) // other node: conduit
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if b := coll.Comm.ClassBytes(trace.ClassLoopback); b != 4096 {
		t.Errorf("loopback bytes = %d, want 4096", b)
	}
	if b := coll.Comm.ClassBytes(trace.ClassNetwork); b != 2048 {
		t.Errorf("network bytes = %d, want 2048", b)
	}
	if b := coll.Comm.ClassBytes(trace.ClassPSHM); b != 0 {
		t.Errorf("pshm bytes = %d without shared memory, want 0", b)
	}
}

// TestStealPctFromMetricsAlone reproduces the Table 3.2 local-steal
// percentage three ways — the app's own counters, the trace-fed
// Collector path the table uses, and the -metrics manifest — and
// requires exact agreement. This is the guarantee that lets the
// metrics manifest stand in for the table's instrumentation.
func TestStealPctFromMetricsAlone(t *testing.T) {
	col := trace.NewCollector()
	coll := metrics.NewCollection()
	r, err := Run(twoNodeConfig(trace.Tee(col, coll)))
	if err != nil {
		t.Fatal(err)
	}
	fromApp := r.LocalStealPct()
	if fromApp == 0 {
		t.Fatal("no local steals; scenario too small")
	}

	// Trace-fed path (what Table 3.2 reads).
	steals := col.Counter("steals")
	fromTrace := 100 * float64(col.Counter("steals_local")) / float64(steals)

	// Metrics path: the manifest's counter namespace alone.
	m := coll.Manifest("uts-test", nil)
	ms := m.Counters["counter.steals"]
	if ms == 0 {
		t.Fatal("manifest has no steals counter")
	}
	fromMetrics := 100 * float64(m.Counters["counter.steals_local"]) / float64(ms)

	if fromTrace != fromApp {
		t.Errorf("trace-fed steal pct %.6f != app %.6f", fromTrace, fromApp)
	}
	if fromMetrics != fromApp {
		t.Errorf("metrics-fed steal pct %.6f != app %.6f", fromMetrics, fromApp)
	}
	if math.IsNaN(fromMetrics) {
		t.Error("metrics-fed steal pct is NaN")
	}

	// The profile must have seen the barrier phases of the run.
	if m.Profile == nil {
		t.Fatal("no profile collected")
	}
	found := false
	for _, ph := range m.Profile.Phases {
		if ph.Name == "upc/barrier" {
			found = true
		}
	}
	if !found {
		t.Error("profile lacks the upc/barrier phase")
	}
	// With a Collection attached the fabric emits link occupancy, so the
	// utilization section must cover the conduit and core links.
	if m.Util == nil || len(m.Util.Links) == 0 {
		t.Fatal("no utilization timelines collected")
	}
}

// Sharded UTS: the Section 3.3 traversal on the node-sharded parallel
// engine. Each fabric node is one sim lane hosting PerNode workers;
// same-node steals stay lane-local (PSHM-priced direct accesses on the
// lane's private cluster), while cross-node steals are probe-and-steal
// RPCs on the ShardNet whose reply caching makes them exactly-once
// under drop/duplicate/delay fault schedules. Termination is detected
// by a coordinator on lane 0: lanes post idle-transition reports on the
// reliable control plane, and when every lane has flagged idle the
// coordinator runs a status wave over the mesh — the run is over when
// every snapshot shows a fully idle lane with an empty steal region and
// the global sent/received stolen-node counts balance (an imbalance, or
// any thief caught mid-RPC, means work is still in flight and the wave
// retries). The traversal is verified against the sequential count, and
// the whole run — counters, trace stream, final clock — is
// byte-identical at any -shards worker count by the lane-invariant
// construction of sim.ShardGroup.
package uts

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Shard RPC operations.
const (
	opSteal  = 1 // probe-and-steal; arg packs victim worker | thief worker<<16
	opStatus = 2 // termination snapshot for the lane-0 coordinator
)

const (
	// stickySweeps bounds timeout-driven idle re-sweeps: after this many
	// consecutive failed sweeps a worker parks until a local release or
	// the done broadcast wakes it, so a drained system quiesces instead
	// of probing the mesh forever (which would starve the termination
	// wave of a quiet instant).
	stickySweeps = 4
	// idleBackoff is the first re-sweep delay; it doubles per failure.
	idleBackoff = 20 * sim.Microsecond
	// coordBackoff paces status waves when lane flags say idle but the
	// ground truth disagrees (reports lag the wire).
	coordBackoff = 100 * sim.Microsecond

	reportSize = 16 // idle-transition report payload
	statusSize = 32 // status snapshot response payload
)

// shardRun is the run-wide record of one sharded traversal.
type shardRun struct {
	cfg     *Config
	g       *sim.ShardGroup
	net     *fabric.ShardNet
	bar     *fabric.ShardBarrier
	lanes   []*laneState
	perNode int
	rp      fault.RetryPolicy
	xfer    sim.Duration // transfer estimate for retransmission timeouts

	// Churn recovery (crash-with-revive schedules). orphans is the
	// lane-0 adoption pool: dying workers will their unfinished nodes to
	// lane 0 over the reliable control plane, and lane-0 workers adopt
	// them like the legacy orphan queue. quietAfter is the end of the
	// last outage window — the coordinator refuses to conclude before
	// it, so the closing barrier (whose control messages a down lane
	// would drop) never races an outage.
	churn      bool
	quietAfter sim.Time
	orphans    []Node // lane-0 context only

	// Coordinator state: lane-0 context only.
	laneIdle  []bool
	snapQuiet []bool
	snapSent  []int64
	snapRecv  []int64
	coordQ    sim.WaitQueue

	start, stop sim.Time // lane-0 context only
}

// laneState is one lane's share of the traversal: its workers, their
// steal regions, and the idle/transfer accounting the termination
// protocol snapshots. All fields are lane-local — mutated only in this
// lane's engine context (RPC applies that land here included).
type laneState struct {
	run  *shardRun
	lane int
	cl   *fabric.Cluster
	port *fabric.ShardPort

	workers []*shardWorker
	idle    int
	done    bool
	q       sim.WaitQueue

	sharedAvail int64 // nodes in this lane's steal regions
	sentNodes   int64 // nodes shipped to thieves on other lanes
	recvNodes   int64 // nodes landed from victims on other lanes

	// Churn recovery. crashed mirrors the lane's outage state (set by
	// the lane-transition observer, in this lane's context); workers
	// that notice it orphan their work and park dead until the revival
	// transition clears them. idleFlagged mirrors the last idle report
	// posted to the coordinator so dead workers can stand in for idle
	// ones without double-reporting.
	crashed     bool
	deadWorkers int
	idleFlagged bool
	reviveQ     sim.WaitQueue
}

// fullIdle reports whether every worker of the lane is parked — idle or
// dead. Dead workers hold no work (they willed it away), so for the
// termination protocol they count as idle.
func (ls *laneState) fullIdle() bool { return ls.idle+ls.deadWorkers == len(ls.workers) }

// victimRef names one steal target anywhere in the machine.
type victimRef struct {
	lane   int
	worker int
}

// shardWorker is one worker's traversal state (cf. worker in uts.go;
// the shared region is lane-local here, so the descriptor needs no
// lock — commits are yield-free and costs are charged after them).
type shardWorker struct {
	ls  *laneState
	id  int // worker index within the lane (RPC caller identity)
	gid int // global thread id
	pl  topo.Place
	p   *sim.Proc

	local []Node // private DFS stack (tail = top)
	head  int

	shared []Node // this worker's steal region
	base   int64  // region descriptor: live slots at [base, base+avail)
	avail  int64

	inbox    []Node // landing slot for one remote steal's payload
	failures int
	cursor   int  // persistent probe cursor on the remote ring
	dead     bool // parked in die() awaiting the revival transition
	reborn   bool // has rejoined at least once (tags steals_rejoined)
	count    int64
	deepest  uint32
	c        perf.Counters

	victims []int       // baseline: global gid ring
	vLocal  []victimRef // locality strategies: same-lane, probed first
	vRemote []victimRef // locality strategies: off-lane ring
}

// RunSharded executes the benchmark on the sharded engine and verifies
// the traversal against the sequential node count. Crash-with-revive
// (churn) schedules are recovered: a crashed lane's workers will their
// unfinished nodes to the lane-0 orphan pool and rejoin at the revival
// transition, and the traversal still visits every node exactly once.
// Permanent crashes and crashes of node 0 are rejected (run those on
// the legacy engine).
func RunSharded(cfg Config) (Result, error) {
	if cfg.Machine == nil {
		cfg.Machine = topo.Pyramid()
	}
	if err := cfg.Tree.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Threads <= 0 || cfg.PerNode <= 0 || cfg.Threads%cfg.PerNode != 0 {
		return Result{}, fmt.Errorf("uts: sharded run needs Threads (%d) divisible by PerNode (%d)",
			cfg.Threads, cfg.PerNode)
	}
	if cfg.Granularity <= 0 {
		cfg.Granularity = 8
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8192
	}
	if cfg.NodeCost <= 0 {
		cfg.NodeCost = defaultNodeCost
	}
	condName := cfg.ConduitName
	if condName == "" {
		condName = cfg.Machine.DefaultConduit
	}
	cond, ok := fabric.ConduitByName(condName)
	if !ok {
		return Result{}, fmt.Errorf("uts: unknown conduit %q", condName)
	}
	if cfg.Faults == nil {
		// Like the legacy runtime, a nil config schedule falls back to the
		// process default, so the CLI's -faults flag reaches sharded runs.
		cfg.Faults = fault.Default()
	}
	var quietAfter sim.Time
	if cfg.Faults != nil {
		for _, a := range cfg.Faults.Actions {
			if a.Op != fault.OpCrash {
				continue
			}
			// Churn (crash-with-revive) is recovered: dying workers will
			// their work to the lane-0 orphan pool and rejoin at the
			// revival transition. A permanent crash would strand the
			// closing barrier, and lane 0 hosts the coordinator and the
			// orphan pool, so both shapes are rejected up front.
			if a.Until == 0 {
				return Result{}, fmt.Errorf("uts: sharded crash at node %d needs until_s (permanent crashes strand the closing barrier; run them on the legacy engine)", a.Node)
			}
			if a.Node == 0 {
				return Result{}, fmt.Errorf("uts: sharded crash schedules must spare node 0 (it hosts the termination coordinator and the orphan pool)")
			}
			if t := sim.Time(sim.FromSeconds(a.Until)); t > quietAfter {
				quietAfter = t
			}
		}
	}

	lanes := cfg.Threads / cfg.PerNode
	// Like upc.Run, the config tracer is added on top of the process
	// default, so session tracing reaches sharded runs too.
	g := sim.NewShardGroup(cfg.Seed, lanes, trace.Tee(trace.Default(), cfg.Tracer))
	if err := fault.InstallShard(g, cfg.Faults); err != nil {
		return Result{}, err
	}
	net := fabric.NewShardNet(g, cond)
	parts := make([]int, lanes)
	for i := range parts {
		parts[i] = cfg.PerNode
	}
	r := &shardRun{
		cfg:       &cfg,
		g:         g,
		net:       net,
		bar:       fabric.NewShardBarrier(net, parts),
		lanes:     make([]*laneState, lanes),
		perNode:   cfg.PerNode,
		rp:        cfg.Retry.OrDefault(),
		laneIdle:  make([]bool, lanes),
		snapQuiet: make([]bool, lanes),
		snapSent:  make([]int64, lanes),
		snapRecv:  make([]int64, lanes),
	}
	r.churn = quietAfter > 0
	r.quietAfter = quietAfter
	// Timeout scale: one response worth of a rapid-diffusion steal.
	r.xfer = 2*cond.Lookahead() + sim.TransferTime(int64(cfg.Capacity/2)*NodeBytes, cond.ConnBW)

	for l := 0; l < lanes; l++ {
		r.lanes[l] = newLaneState(r, l)
	}
	if r.churn {
		// Lane transitions run in the affected lane's own context: the
		// down edge flags the lane so its workers orphan their work and
		// park; the up edge reincarnates them (counter bumps happen on
		// the workers' own stacks after they wake, not here).
		g.OnLaneTransition(func(lane int, down bool) {
			ls := r.lanes[lane]
			if down {
				ls.crashed = true
				ls.q.WakeAll() // idle workers wake to notice and die
				return
			}
			ls.crashed = false
			ls.deadWorkers = 0
			for _, w := range ls.workers {
				w.dead = false
			}
			ls.reviveQ.WakeAll()
		})
	}
	for _, ls := range r.lanes {
		for _, w := range ls.workers {
			w.spawn()
		}
	}
	g.Lane(0).Go("uts-coord", r.coordinate)

	if err := g.Run(); err != nil {
		return Result{}, err
	}

	counters := perf.Counters{}
	var nodes int64
	var deepest uint32
	for _, ls := range r.lanes {
		for _, w := range ls.workers {
			counters.Merge(w.c)
			nodes += w.count
			if w.deepest > deepest {
				deepest = w.deepest
			}
		}
	}
	wantNodes, wantDepth := cfg.Tree.CountSequential()
	if nodes != wantNodes {
		return Result{}, fmt.Errorf("uts: sharded traversal visited %d nodes, sequential counted %d",
			nodes, wantNodes)
	}
	if deepest != wantDepth {
		return Result{}, fmt.Errorf("uts: sharded max depth %d, sequential found %d", deepest, wantDepth)
	}
	elapsed := r.stop - r.start
	return Result{
		Nodes:        nodes,
		MaxDepth:     deepest,
		Elapsed:      elapsed,
		MNodesPerSec: float64(nodes) / elapsed.Seconds() / 1e6,
		Counters:     counters,
	}, nil
}

func newLaneState(r *shardRun, lane int) *laneState {
	ls := &laneState{
		run:  r,
		lane: lane,
		cl:   fabric.LaneCluster(r.g, lane, r.cfg.Machine, r.net.Cond),
		port: r.net.Port(lane),
	}
	for id := 0; id < r.perNode; id++ {
		w := &shardWorker{
			ls:     ls,
			id:     id,
			gid:    lane*r.perNode + id,
			pl:     workerPlace(r.cfg.Machine, id),
			shared: make([]Node, r.cfg.Capacity),
			c:      perf.Counters{},
		}
		if w.gid == 0 {
			w.local = append(w.local, r.cfg.Tree.Root())
		}
		w.probeOrder()
		ls.workers = append(ls.workers, w)
	}
	ls.port.Handle(opSteal, ls.serveSteal)
	ls.port.Handle(opStatus, ls.serveStatus)
	return ls
}

// workerPlace pins worker id onto the lane's single-node cluster,
// core-blocked across sockets like the paper's bound runs.
func workerPlace(m *topo.Machine, id int) topo.Place {
	core := id % m.CoresPerNode()
	return topo.Place{Node: 0, Socket: core / m.CoresPerSocket, Core: core % m.CoresPerSocket}
}

// probeOrder builds the victim lists, mirroring the legacy traversal:
// the baseline keeps one global ring behind a persistent cursor, the
// locality strategies scan every same-lane peer first (direct accesses,
// nearly free) and reserve the cursor for the off-lane ring.
func (w *shardWorker) probeOrder() {
	r := w.ls.run
	n := r.cfg.Threads
	if r.cfg.Strategy == BaselineRR {
		for d := 1; d < n; d++ {
			w.victims = append(w.victims, (w.gid+d)%n)
		}
		return
	}
	for d := 1; d < n; d++ {
		v := (w.gid + d) % n
		ref := victimRef{lane: v / r.perNode, worker: v % r.perNode}
		if ref.lane == w.ls.lane {
			w.vLocal = append(w.vLocal, ref)
		} else {
			w.vRemote = append(w.vRemote, ref)
		}
	}
}

func (w *shardWorker) spawn() {
	r := w.ls.run
	lane, id := w.ls.lane, w.id
	r.g.Lane(lane).Go(fmt.Sprintf("uts%d.%d", lane, id), func(p *sim.Proc) {
		w.p = p
		r.bar.Wait(p, lane)
		if w.gid == 0 {
			r.start = p.Now()
		}
		w.run()
		r.bar.Wait(p, lane)
		if w.gid == 0 {
			r.stop = p.Now()
		}
	})
}

// run is the worker state machine, the sharded sibling of Figure 3.2's
// loop in uts.go.
func (w *shardWorker) run() {
	ls := w.ls
	churn := ls.run.churn
	for {
		for w.depth() > 0 {
			if churn && ls.crashed {
				w.die()
				break
			}
			w.processBatch()
			w.maybeRelease()
		}
		if ls.done {
			return
		}
		if churn && ls.crashed {
			w.die()
			continue
		}
		if w.acquireOwn() {
			continue
		}
		if ls.lane == 0 && w.acquireOrphans() {
			continue
		}
		t0 := w.p.Now()
		ok := w.stealSweep()
		w.bump("ns_sweep", int64(w.p.Now()-t0))
		if ok {
			w.failures = 0
			continue
		}
		w.failures++
		t0 = w.p.Now()
		done := w.enterIdle()
		w.bump("ns_idle", int64(w.p.Now()-t0))
		if done {
			return
		}
	}
}

func (w *shardWorker) depth() int { return len(w.local) - w.head }

// bump advances a traversal counter, mirroring it into the trace stream
// like the legacy worker.
func (w *shardWorker) bump(name string, n int64) {
	w.c.Add(name, n)
	w.p.TraceCounter("uts", name, n)
}

// processBatch pops and expands up to Batch nodes, charging one compute
// interval on this worker's core.
func (w *shardWorker) processBatch() {
	b := w.ls.run.cfg.Batch
	tree := w.ls.run.cfg.Tree
	done := 0
	for done < b && w.depth() > 0 {
		n := w.local[len(w.local)-1]
		w.local = w.local[:len(w.local)-1]
		w.count++
		done++
		if n.Depth > w.deepest {
			w.deepest = n.Depth
		}
		for i := tree.NumChildren(n) - 1; i >= 0; i-- {
			w.local = append(w.local, Child(n, i))
		}
	}
	w.bump("nodes", int64(done))
	w.ls.cl.Compute(w.p, w.pl, float64(done)*w.ls.run.cfg.NodeCost)
}

// maybeRelease moves surplus bottom-of-stack work into this worker's
// steal region. The descriptor commit is yield-free; memory costs are
// charged after it, so interleaved thieves never see a half-applied
// move.
func (w *shardWorker) maybeRelease() {
	cfg := w.ls.run.cfg
	chunk := cfg.Granularity
	for w.depth() > 2*chunk {
		var shifted int64
		if int(w.base+w.avail)+chunk > cfg.Capacity {
			if int(w.avail)+chunk > cfg.Capacity {
				return // region genuinely full
			}
			copy(w.shared, w.shared[w.base:w.base+w.avail])
			shifted = w.avail
			w.base = 0
		}
		copy(w.shared[w.base+w.avail:], w.local[w.head:w.head+chunk])
		w.head += chunk
		w.avail += int64(chunk)
		w.ls.sharedAvail += int64(chunk)
		w.bump("releases", 1)
		w.ls.q.WakeAll() // idle lane peers may find work now
		w.compact()
		if shifted > 0 {
			w.charge(2 * shifted * NodeBytes)
		}
		w.charge(int64(chunk) * NodeBytes)
	}
}

// charge models a streaming memory move of size bytes at this worker's
// place.
func (w *shardWorker) charge(size int64) {
	_ = w.ls.cl.MemCopy(w.p, w.pl, w.pl, size, 0) // same-node by construction
}

// compact drops the released prefix once it dominates the backing slice.
func (w *shardWorker) compact() {
	if w.head > 1024 && w.head*2 > len(w.local) {
		w.local = append(w.local[:0:0], w.local[w.head:]...)
		w.head = 0
	}
}

// acquireOwn pulls work back from this worker's own steal region.
func (w *shardWorker) acquireOwn() bool {
	if w.avail == 0 {
		return false
	}
	k := w.avail
	if lim := int64(2 * w.ls.run.cfg.Granularity); k > lim {
		k = lim
	}
	w.local = append(w.local, w.shared[w.base+w.avail-k:w.base+w.avail]...)
	w.avail -= k
	w.ls.sharedAvail -= k
	w.charge(k * NodeBytes)
	return true
}

// die is the sharded failover: the worker sweeps everything it holds —
// private stack, steal region, a landed-but-unconsumed steal payload —
// into a will, ships the will to the lane-0 orphan pool on the reliable
// control plane (a down lane's NIC still drains already-committed
// sends; only inbound traffic dies with the lane), and parks dead until
// the revival transition. Shipped nodes are booked sent-here/
// received-at-lane-0 so the termination wave keeps balancing. On wake
// it rejoins: probe state resets and subsequent steals are tagged
// steals_rejoined.
func (w *shardWorker) die() {
	ls := w.ls
	r := ls.run
	will := append([]Node(nil), w.local[w.head:]...)
	will = append(will, w.shared[w.base:w.base+w.avail]...)
	will = append(will, w.inbox...)
	w.local, w.head = w.local[:0], 0
	ls.sharedAvail -= w.avail
	w.base, w.avail = 0, 0
	w.inbox = nil
	w.bump("failovers", 1)
	w.p.TraceInstant("uts", "failover", "shard", int64(len(will)), int64(w.gid))
	w.dead = true
	ls.deadWorkers++
	if k := int64(len(will)); k > 0 {
		ls.sentNodes += k
		ls0 := r.lanes[0]
		ls.port.Post(w.p, 0, k*NodeBytes, func() {
			r.orphans = append(r.orphans, will...)
			ls0.recvNodes += k
			ls0.q.WakeAll() // idle lane-0 workers can adopt now
		})
	}
	if ls.fullIdle() && !ls.idleFlagged {
		ls.reportIdle(w.p, true)
	}
	for w.dead {
		ls.reviveQ.Wait(w.p, "uts-revive")
	}
	// Revived: the first worker awake retracts the lane's idle report.
	if ls.idleFlagged {
		ls.reportIdle(w.p, false)
	}
	w.reborn = true
	w.failures = 0
	w.cursor = 0
	w.bump("rejoins", 1)
	w.p.TraceInstant("uts", "rejoin", "shard", 0, int64(w.gid))
}

// acquireOrphans adopts a chunk of the lane-0 orphan pool, the sharded
// analogue of the legacy orphan queue (lane-0 workers only).
func (w *shardWorker) acquireOrphans() bool {
	r := w.ls.run
	if len(r.orphans) == 0 {
		return false
	}
	k := 2 * r.cfg.Granularity
	if k > len(r.orphans) {
		k = len(r.orphans)
	}
	w.local = append(w.local, r.orphans[:k]...)
	r.orphans = r.orphans[k:]
	w.charge(int64(k) * NodeBytes)
	w.bump("orphans_taken", int64(k))
	return true
}

// takeFront removes up to one strategy-sized chunk from the front of
// victim's region — the oldest, shallowest entries whose subtrees are
// largest — and returns a private copy. Yield-free; runs in the
// victim's lane context (a local thief or the steal RPC handler).
func (ls *laneState) takeFront(victim *shardWorker) []Node {
	cfg := ls.run.cfg
	if victim.avail == 0 {
		return nil
	}
	k := int64(cfg.Granularity)
	if cfg.Strategy == LocalRapid && victim.avail >= int64(2*cfg.Granularity) {
		k = victim.avail / 2 // rapid diffusion: bisect the victim's stack
	}
	if k > victim.avail {
		k = victim.avail
	}
	got := append([]Node(nil), victim.shared[victim.base:victim.base+k]...)
	victim.base += k
	victim.avail -= k
	ls.sharedAvail -= k
	return got
}

// stealSweep probes victims in strategy order; it reports whether any
// work was obtained.
func (w *shardWorker) stealSweep() bool {
	cfg := w.ls.run.cfg
	if cfg.Strategy == BaselineRR {
		perNode := w.ls.run.perNode
		for i := 0; i < len(w.victims); i++ {
			gid := w.victims[(w.cursor+i)%len(w.victims)]
			if w.tryVictim(victimRef{lane: gid / perNode, worker: gid % perNode}) {
				w.cursor = (w.cursor + i) % len(w.victims)
				return true
			}
		}
		return false
	}
	for _, v := range w.vLocal {
		if w.tryVictim(v) {
			return true
		}
	}
	for i := 0; i < len(w.vRemote); i++ {
		if w.tryVictim(w.vRemote[(w.cursor+i)%len(w.vRemote)]) {
			w.cursor = (w.cursor + i) % len(w.vRemote)
			return true
		}
	}
	return false
}

func (w *shardWorker) tryVictim(v victimRef) bool {
	if v.lane == w.ls.lane {
		return w.tryLocal(v.worker)
	}
	return w.tryRemote(v)
}

// tryLocal steals from a same-lane peer through direct (PSHM-priced)
// access: commit first, charge the memory move after.
func (w *shardWorker) tryLocal(worker int) bool {
	ls := w.ls
	w.bump("probes", 1)
	got := ls.takeFront(ls.workers[worker])
	if got == nil {
		w.bump("probes_failed", 1)
		return false
	}
	k := int64(len(got))
	victim := ls.workers[worker]
	_ = ls.cl.MemCopy(w.p, victim.pl, w.pl, k*NodeBytes, 0)
	w.local = append(w.local, got...)
	w.bump("steals", 1)
	w.bump("steals_local", 1)
	w.bump("stolen_nodes", k)
	if w.reborn {
		w.bump("steals_rejoined", 1)
	}
	w.p.TraceInstant("uts", "steal", "local", k, int64(victim.gid))
	return true
}

// tryRemote is one probe-and-steal RPC: the victim-lane handler commits
// the take, the reply carries the nodes, and the reply cache makes the
// whole exchange exactly-once under lossy schedules.
func (w *shardWorker) tryRemote(v victimRef) bool {
	ls := w.ls
	r := ls.run
	if r.churn && r.g.LaneDown(v.lane, w.p.Now()) {
		// The victim's lane is inside an outage window: its workers have
		// willed their work away, so the probe cannot succeed — and the
		// RPC would stall here until the reincarnation. Count it as a
		// failed probe and move down the ring.
		w.bump("probes", 1)
		w.bump("probes_failed", 1)
		return false
	}
	w.bump("probes", 1)
	w.inbox = nil
	arg := int64(v.worker) | int64(w.id)<<16
	ls.port.CallRetry(w.p, w.id, v.lane, opSteal, arg, reportSize,
		func(try int) sim.Duration { return r.rp.AttemptTimeout(try, r.xfer) })
	got := w.inbox
	w.inbox = nil
	if len(got) == 0 {
		w.bump("probes_failed", 1)
		return false
	}
	w.local = append(w.local, got...)
	k := int64(len(got))
	w.bump("steals", 1)
	w.bump("stolen_nodes", k)
	if w.reborn {
		w.bump("steals_rejoined", 1)
	}
	w.p.TraceInstant("uts", "steal", "remote", k, int64(v.lane*r.perNode+v.worker))
	return true
}

// serveSteal handles one steal RPC in this (victim) lane's context. The
// sent-node count is booked at the commit; the matching received count
// is booked by the apply closure at the thief's lane, and the
// termination wave declares done only when the two balance.
func (ls *laneState) serveSteal(src int, arg int64) (int64, func()) {
	got := ls.takeFront(ls.workers[int(arg&0xffff)])
	if got == nil {
		return reportSize, nil
	}
	k := int64(len(got))
	ls.sentNodes += k
	thief := int(arg >> 16)
	r := ls.run
	return reportSize + k*NodeBytes, func() {
		tl := r.lanes[src]
		tl.workers[thief].inbox = got
		tl.recvNodes += k
	}
}

// serveStatus snapshots this lane for the termination wave. A down lane
// cannot serve (inbound requests die with it), so a wave that overlaps
// an outage simply stalls in CallRetry until the lane reincarnates —
// the coordinator cannot conclude past a crashed lane.
func (ls *laneState) serveStatus(src int, arg int64) (int64, func()) {
	quiet := ls.fullIdle() && ls.sharedAvail == 0
	sent, recv := ls.sentNodes, ls.recvNodes
	r, lane := ls.run, ls.lane
	return statusSize, func() {
		r.snapQuiet[lane] = quiet
		r.snapSent[lane] = sent
		r.snapRecv[lane] = recv
	}
}

// enterIdle parks the worker until work appears locally, a re-sweep
// timer fires (bounded by stickySweeps), or the done broadcast lands;
// it reports whether the run is over. Idle-transition reports keep the
// lane-0 coordinator's flags current.
func (w *shardWorker) enterIdle() bool {
	ls := w.ls
	ls.idle++
	if ls.fullIdle() && !ls.idleFlagged {
		ls.reportIdle(w.p, true)
	}
	for {
		if ls.done {
			ls.idle--
			return true
		}
		if ls.crashed {
			w.leaveIdle() // the run loop notices and dies
			return false
		}
		if ls.sharedAvail > 0 || (ls.lane == 0 && len(ls.run.orphans) > 0) {
			w.leaveIdle()
			return false
		}
		if w.failures <= stickySweeps {
			backoff := idleBackoff << uint(min(w.failures, 7))
			if ls.q.WaitTimeout(w.p, "uts-idle", backoff) {
				continue // woken: recheck done / local work
			}
			w.leaveIdle() // timed out: go re-sweep the mesh
			return false
		}
		ls.q.Wait(w.p, "uts-idle")
	}
}

func (w *shardWorker) leaveIdle() {
	ls := w.ls
	if ls.fullIdle() && ls.idleFlagged {
		ls.reportIdle(w.p, false)
	}
	ls.idle--
}

// reportIdle posts this lane's idle transition to the coordinator.
// Posts from one lane arrive in order, so the coordinator's flag always
// reflects the lane's latest transition. idleFlagged mirrors the last
// report synchronously, so concurrent wakers post each edge once.
func (ls *laneState) reportIdle(p *sim.Proc, idle bool) {
	r := ls.run
	lane := ls.lane
	ls.idleFlagged = idle
	ls.port.Post(p, 0, reportSize, func() {
		r.laneIdle[lane] = idle
		if idle && r.allIdleFlags() {
			r.coordQ.WakeAll()
		}
	})
}

func (r *shardRun) allIdleFlags() bool {
	for _, f := range r.laneIdle {
		if !f {
			return false
		}
	}
	return true
}

// coordinate is the lane-0 termination detector. A status wave is
// conclusive when every lane snapshot is quiet and the sent/received
// stolen-node totals balance: any in-flight transfer either leaves a
// thief non-idle at its snapshot or shows up as sent > received, so a
// balanced all-quiet wave proves no work exists anywhere.
func (r *shardRun) coordinate(p *sim.Proc) {
	pt := r.net.Port(0)
	to := func(try int) sim.Duration { return r.rp.AttemptTimeout(try, r.xfer) }
	for {
		for !r.allIdleFlags() {
			r.coordQ.Wait(p, "uts-coord")
		}
		ls0 := r.lanes[0]
		r.snapQuiet[0] = ls0.fullIdle() && ls0.sharedAvail == 0 && len(r.orphans) == 0
		r.snapSent[0], r.snapRecv[0] = ls0.sentNodes, ls0.recvNodes
		for l := 1; l < len(r.lanes); l++ {
			pt.CallRetry(p, r.perNode, l, opStatus, 0, reportSize, to)
		}
		quiet := true
		var sent, recv int64
		for l := range r.lanes {
			quiet = quiet && r.snapQuiet[l]
			sent += r.snapSent[l]
			recv += r.snapRecv[l]
		}
		if quiet && sent == recv && p.Now() < r.quietAfter {
			// All drained, but an outage window is still open: a lane
			// due to crash would drop the done broadcast and the closing
			// barrier's control traffic. Hold the verdict until the last
			// revival has passed.
			p.Advance(coordBackoff)
			continue
		}
		if quiet && sent == recv {
			for l := 1; l < len(r.lanes); l++ {
				ls := r.lanes[l]
				pt.Post(p, l, reportSize, func() {
					ls.done = true
					ls.q.WakeAll()
				})
			}
			ls0.done = true
			ls0.q.WakeAll()
			return
		}
		p.Advance(coordBackoff) // flags lag the ground truth: re-wave shortly
	}
}

package uts

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/trace"
)

// shardedCase runs one sharded traversal and returns the result plus
// the trace digest.
func shardedCase(t *testing.T, workers int, strat Strategy, sched *fault.Schedule) (Result, uint64) {
	t.Helper()
	old := sim.ShardWorkers()
	sim.SetShardWorkers(workers)
	defer sim.SetShardWorkers(old)
	d := trace.NewDigest()
	r, err := RunSharded(Config{
		Threads:  8,
		PerNode:  2,
		Strategy: strat,
		Tree:     Small(30000),
		Seed:     7,
		Tracer:   d,
		Faults:   sched,
	})
	if err != nil {
		t.Fatalf("RunSharded(%v, workers=%d): %v", strat, workers, err)
	}
	return r, d.Sum64()
}

// TestShardedCountMatchesSequentialAllStrategies: every strategy visits
// exactly the sequential node count (RunSharded verifies internally;
// this asserts the run completes and reports sane metrics).
func TestShardedCountMatchesSequentialAllStrategies(t *testing.T) {
	for _, s := range Strategies() {
		r, _ := shardedCase(t, 1, s, nil)
		if r.Nodes == 0 || r.Elapsed <= 0 || r.MNodesPerSec <= 0 {
			t.Errorf("%v: degenerate result %+v", s, r)
		}
		if r.Counters.Get("steals") == 0 {
			t.Errorf("%v: traversal finished without a single steal", s)
		}
	}
}

// TestShardedWorkerCountInvariance: the full run — counters, elapsed
// virtual time, and the merged trace stream — is byte-identical at any
// shard worker count.
func TestShardedWorkerCountInvariance(t *testing.T) {
	base, dBase := shardedCase(t, 1, LocalRapid, nil)
	for _, workers := range []int{2, 4, 8} {
		r, dig := shardedCase(t, workers, LocalRapid, nil)
		if dig != dBase {
			t.Fatalf("workers=%d: digest %016x, want %016x", workers, dig, dBase)
		}
		if r.Elapsed != base.Elapsed || r.Nodes != base.Nodes {
			t.Fatalf("workers=%d: result diverged: %+v vs %+v", workers, r, base)
		}
		if r.Counters.String() != base.Counters.String() {
			t.Fatalf("workers=%d: counters diverged:\n%s\nvs\n%s",
				workers, r.Counters, base.Counters)
		}
	}
}

// TestShardedLocalStrategyRaisesLocalShare mirrors the legacy locality
// check: probing the lane group first must raise the same-node steal
// share over the baseline ring.
func TestShardedLocalStrategyRaisesLocalShare(t *testing.T) {
	rBase, _ := shardedCase(t, 1, BaselineRR, nil)
	rLocal, _ := shardedCase(t, 1, LocalSteal, nil)
	if rLocal.LocalStealPct() <= rBase.LocalStealPct() {
		t.Fatalf("local strategy share %.1f%% not above baseline %.1f%%",
			rLocal.LocalStealPct(), rBase.LocalStealPct())
	}
}

// TestShardedLossySchedule: a heavy drop/duplicate/delay schedule must
// neither lose nor duplicate work — the count verification inside
// RunSharded is exact — and the run stays worker-count invariant.
func TestShardedLossySchedule(t *testing.T) {
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpDrop, Prob: 0.3, Until: 0.005, Src: -1, Dst: -1},
		{Op: fault.OpDuplicate, Prob: 0.2, Until: 0.005, Src: -1, Dst: -1},
		{Op: fault.OpDelay, Prob: 0.25, Extra: 15e-6, Until: 0.005, Src: -1, Dst: -1},
	}}
	r1, d1 := shardedCase(t, 1, LocalSteal, sched)
	r4, d4 := shardedCase(t, 4, LocalSteal, sched)
	if d1 != d4 || r1.Elapsed != r4.Elapsed {
		t.Fatalf("lossy run diverged across workers: digest %016x/%016x elapsed %v/%v",
			d1, d4, r1.Elapsed, r4.Elapsed)
	}
}

// TestShardedRejectsCrashSchedules: crash recovery is a legacy-engine
// feature; the sharded traversal must refuse rather than miscount.
func TestShardedRejectsCrashSchedules(t *testing.T) {
	_, err := RunSharded(Config{
		Threads: 4, PerNode: 2, Tree: Small(1000), Seed: 1,
		Faults: &fault.Schedule{Actions: []fault.Action{{Op: fault.OpCrash, At: 1e-5, Node: 1}}},
	})
	if err == nil || !strings.Contains(err.Error(), "crash") {
		t.Fatalf("err = %v, want crash rejection", err)
	}
}

// TestShardedThreadSplitValidation: Threads must divide into whole
// lanes.
func TestShardedThreadSplitValidation(t *testing.T) {
	_, err := RunSharded(Config{Threads: 7, PerNode: 2, Tree: Small(1000)})
	if err == nil || !strings.Contains(err.Error(), "divisible") {
		t.Fatalf("err = %v, want divisibility rejection", err)
	}
}

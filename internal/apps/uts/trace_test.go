package uts

import (
	"sort"
	"testing"

	"repro/internal/perf"
	"repro/internal/trace"
)

// sortedCounterNames returns the counter names in sorted order, so
// comparison failures print deterministically (the maporder invariant).
func sortedCounterNames(c perf.Counters) []string {
	names := make([]string, 0, len(c))
	for name := range c {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func tracedConfig(tr trace.Tracer) Config {
	return Config{
		Threads:  8,
		PerNode:  2,
		Strategy: LocalRapid,
		Tree:     Small(20000),
		Seed:     3,
		Tracer:   tr,
	}
}

// TestTraceCountersMatch verifies that the trace-fed counters reproduce
// the app's ad-hoc ones exactly — the property that lets Table 3.2 read
// its steal percentages from a Collector.
func TestTraceCountersMatch(t *testing.T) {
	col := trace.NewCollector()
	r, err := Run(tracedConfig(col))
	if err != nil {
		t.Fatal(err)
	}
	got := perf.CountersFromTrace(col)
	for _, name := range sortedCounterNames(r.Counters) {
		if got.Get(name) != r.Counters[name] {
			t.Errorf("trace counter %s = %d, app counter = %d", name, got.Get(name), r.Counters[name])
		}
	}
	for _, name := range sortedCounterNames(got) {
		if _, ok := r.Counters[name]; !ok {
			t.Errorf("trace has counter %s the app does not", name)
		}
	}
	if got.Get("steals") == 0 {
		t.Error("no steals recorded; the scenario is too small to exercise stealing")
	}
	// The steal instants split by locality must sum to the steal counter.
	local := col.Count("uts", "steal") // all steal instants
	if local != got.Get("steals") {
		t.Errorf("steal instants = %d, steals counter = %d", local, got.Get("steals"))
	}
}

// TestTraceDigestDeterministic asserts the CI-gated property: two
// same-seed runs produce identical TraceDigests.
func TestTraceDigestDeterministic(t *testing.T) {
	run := func(seed int64) (uint64, int64) {
		d := trace.NewDigest()
		cfg := tracedConfig(d)
		cfg.Seed = seed
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return d.Sum64(), d.Events()
	}
	h1, n1 := run(3)
	h2, n2 := run(3)
	if h1 != h2 || n1 != n2 {
		t.Fatalf("same-seed runs diverged: %016x (%d events) vs %016x (%d events)", h1, n1, h2, n2)
	}
	if n1 == 0 {
		t.Fatal("no events traced")
	}
}

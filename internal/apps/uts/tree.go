// Package uts implements the Unbalanced Tree Search benchmark of Section
// 3.3.2: exhaustive traversal of an implicitly defined random tree whose
// shape is derived from SHA-1 chains (so any traversal order visits the
// same tree), parallelized over UPC threads with steal-stacks in the
// shared address space, and three stealing strategies — the baseline
// round-robin probing of the original UPC implementation, the
// locality-conscious local-first strategy, and local-first plus rapid
// work diffusion (Figure 3.2).
package uts

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// TreeKind selects the random tree family.
type TreeKind int

const (
	// Binomial trees: the root has RootChildren children; every other
	// node has M children with probability Q and none otherwise. The
	// paper's experiments use a 4.1-million-node binomial tree.
	Binomial TreeKind = iota
	// Geometric trees: node fan-out is geometrically distributed with
	// expectation B, cut off below MaxDepth.
	Geometric
)

// String names the tree kind.
func (k TreeKind) String() string {
	if k == Geometric {
		return "geometric"
	}
	return "binomial"
}

// TreeSpec defines a tree instance.
type TreeSpec struct {
	Kind         TreeKind
	RootChildren int     // binomial b0
	Q            float64 // binomial branching probability
	M            int     // binomial fan-out
	B            float64 // geometric expected fan-out
	MaxDepth     int     // geometric depth cutoff
	Seed         uint32
}

// Paper4M approximates the thesis's 4.1-million-node binomial tree (UTS
// T3-like parameters: b0=2000, q=0.124875, m=8; this seed realizes 4.35
// million nodes under our SHA-1 chain).
func Paper4M() TreeSpec {
	return TreeSpec{Kind: Binomial, RootChildren: 2000, Q: 0.124875, M: 8, Seed: 1}
}

// Small returns a tree of roughly the requested node count, for tests and
// quick runs. It uses a subcritical branching probability (q·m = 0.99,
// expected subtree ≈ 100 nodes) — deep enough to exercise work stealing
// like the near-critical paper tree, while realized sizes still
// concentrate near the expectation.
func Small(approx int) TreeSpec {
	b0 := approx / 100
	if b0 < 1 {
		b0 = 1
	}
	return TreeSpec{Kind: Binomial, RootChildren: b0, Q: 0.12375, M: 8, Seed: 7}
}

// Node is one tree node's interior state: the SHA-1 chain value plus its
// depth (20 + 4 bytes, matching the UTS descriptor size).
type Node struct {
	State [20]byte
	Depth uint32
}

// NodeBytes is the descriptor size used for communication-cost accounting.
const NodeBytes = 24

// Root builds the root node of the tree.
func (s TreeSpec) Root() Node {
	var seed [24]byte
	binary.BigEndian.PutUint32(seed[20:], s.Seed)
	return Node{State: sha1.Sum(seed[:])}
}

// Child derives the i-th child of n; the SHA-1 chain makes the tree shape
// independent of traversal order.
func Child(n Node, i int) Node {
	var buf [24]byte
	copy(buf[:20], n.State[:])
	binary.BigEndian.PutUint32(buf[20:], uint32(i))
	return Node{State: sha1.Sum(buf[:]), Depth: n.Depth + 1}
}

// rand01 extracts the node's uniform variate in [0,1).
func rand01(n Node) float64 {
	return float64(binary.BigEndian.Uint32(n.State[:4])) / (1 << 32)
}

// NumChildren reports the node's fan-out under the spec.
func (s TreeSpec) NumChildren(n Node) int {
	switch s.Kind {
	case Geometric:
		if int(n.Depth) >= s.MaxDepth {
			return 0
		}
		// Geometric with mean B: P(k >= 1) chained off the node variate.
		u := rand01(n)
		p := 1 / (1 + s.B)
		k := 0
		// Invert the geometric CDF: k = floor(log(1-u)/log(1-p)) with
		// success probability (1-p); cap the fan-out to keep descriptors
		// bounded.
		q := 1 - p
		acc := p
		cdf := p
		for cdf < u && k < 16 {
			acc *= q
			cdf += acc
			k++
		}
		return k
	default:
		if n.Depth == 0 {
			return s.RootChildren
		}
		if rand01(n) < s.Q {
			return s.M
		}
		return 0
	}
}

// ExpectedSubtree reports the expected number of nodes below one non-root
// binomial node (including it), infinite branching excluded.
func (s TreeSpec) ExpectedSubtree() float64 {
	if s.Kind != Binomial {
		return 0
	}
	g := s.Q * float64(s.M)
	if g >= 1 {
		return 0 // supercritical: unbounded
	}
	return 1 / (1 - g)
}

// CountSequential walks the whole tree depth-first on one goroutine and
// returns the exact node count (the reference for parallel correctness)
// along with the maximum depth reached.
func (s TreeSpec) CountSequential() (nodes int64, maxDepth uint32) {
	stack := []Node{s.Root()}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		if n.Depth > maxDepth {
			maxDepth = n.Depth
		}
		for i := s.NumChildren(n) - 1; i >= 0; i-- {
			stack = append(stack, Child(n, i))
		}
	}
	return nodes, maxDepth
}

// Validate reports an error for nonsensical specs.
func (s TreeSpec) Validate() error {
	switch s.Kind {
	case Binomial:
		if s.RootChildren < 1 || s.M < 1 || s.Q < 0 || s.Q*float64(s.M) >= 1 {
			return fmt.Errorf("uts: binomial spec b0=%d q=%g m=%d is invalid or supercritical",
				s.RootChildren, s.Q, s.M)
		}
	case Geometric:
		if s.B <= 0 || s.MaxDepth < 1 {
			return fmt.Errorf("uts: geometric spec b=%g depth=%d invalid", s.B, s.MaxDepth)
		}
	default:
		return fmt.Errorf("uts: unknown tree kind %d", s.Kind)
	}
	return nil
}

package uts

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/upc"
)

// Strategy selects the work-stealing policy (Section 3.3.2.1).
type Strategy int

const (
	// BaselineRR is the original UPC implementation's policy: probe
	// victims round-robin starting after the thief's own id.
	BaselineRR Strategy = iota
	// LocalSteal probes same-node (thread-group) victims first, accessed
	// through the pre-cast pointer table, before probing remote threads.
	LocalSteal
	// LocalRapid adds rapid work diffusion: a thief takes half of the
	// victim's available work when the victim's stack is rich enough,
	// bisecting the workload across groups.
	LocalRapid
)

// String names the strategy as in Figure 3.3's legend.
func (s Strategy) String() string {
	switch s {
	case LocalSteal:
		return "local-stealing"
	case LocalRapid:
		return "local-stealing + rapid-diffusion"
	}
	return "baseline"
}

// Strategies lists the Figure 3.3 variants in order.
func Strategies() []Strategy { return []Strategy{BaselineRR, LocalSteal, LocalRapid} }

// Config parameterizes one UTS execution.
type Config struct {
	Machine     *topo.Machine
	ConduitName string // "" = machine default ("ibv-ddr", "gige", ...)
	Threads     int
	PerNode     int
	Strategy    Strategy
	Granularity int // steal chunk (paper: 8 on InfiniBand, 20 on Ethernet)
	Batch       int // nodes processed per virtual-time charge (default 256)
	Capacity    int // shared steal-stack region capacity (default 8192)
	NodeCost    float64
	Tree        TreeSpec
	Seed        int64
	// Tracer, when non-nil, receives the run's trace events; the traversal
	// counters are emitted as "uts" trace counters, so a trace.Collector
	// sees exactly the totals Result.Counters reports.
	Tracer trace.Tracer
	// Faults, when non-nil, overrides the process-default fault schedule
	// (see internal/fault). The traversal then self-heals: lost messages
	// are retried, dead victims are struck from the probe rings, and a
	// crashed worker's unfinished work is re-rooted on the survivors, so
	// the tree count stays exact. Crash schedules must spare node 0
	// (thread 0 coordinates timing) and fire after startup.
	Faults *fault.Schedule
	// Retry tunes recovery when a fault schedule is installed; zero
	// fields take fault.DefaultRetryPolicy.
	Retry fault.RetryPolicy
}

// defaultNodeCost is the modeled per-node processing time (seconds),
// calibrated so per-thread throughput sits near the paper's ~1.8 M
// nodes/s.
const defaultNodeCost = 0.52e-6

// Result summarizes one UTS execution.
type Result struct {
	Nodes    int64
	MaxDepth uint32
	Elapsed  sim.Duration
	// MNodesPerSec is the Figure 3.3 metric.
	MNodesPerSec float64
	// Counters: nodes, steals, steals_local, probes, probes_failed,
	// releases, stolen_nodes.
	Counters perf.Counters
}

// LocalStealPct reports the percentage of successful steals that hit a
// same-node victim (Table 3.2).
func (r Result) LocalStealPct() float64 {
	if s := r.Counters.Get("steals"); s > 0 {
		return 100 * float64(r.Counters.Get("steals_local")) / float64(s)
	}
	return 0
}

// global is the run-wide coordination record shared by all threads.
type global struct {
	idle        int
	sharedTotal int64
	done        bool
	q           sim.WaitQueue
	nodes       int64
	maxDepth    uint32
	counters    perf.Counters
	// orphans holds work re-rooted from crashed workers (their private
	// stack remainder plus their shared steal region), awaiting adoption
	// by survivors.
	orphans []Node
	// ringGen counts membership changes (rejoins): workers whose probe
	// rings lag it rebuild them, re-admitting reincarnated victims.
	ringGen int
}

// Run executes the benchmark and verifies the traversal against the
// sequential node count.
func Run(cfg Config) (Result, error) {
	if cfg.Machine == nil {
		cfg.Machine = topo.Pyramid()
	}
	if err := cfg.Tree.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Threads <= 0 || cfg.PerNode <= 0 {
		return Result{}, fmt.Errorf("uts: Threads=%d PerNode=%d", cfg.Threads, cfg.PerNode)
	}
	if cfg.Granularity <= 0 {
		cfg.Granularity = 8
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 256
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 8192
	}
	if cfg.NodeCost <= 0 {
		cfg.NodeCost = defaultNodeCost
	}
	var cond *fabric.Conduit
	if cfg.ConduitName != "" {
		c, ok := fabric.ConduitByName(cfg.ConduitName)
		if !ok {
			return Result{}, fmt.Errorf("uts: unknown conduit %q", cfg.ConduitName)
		}
		cond = &c
	}
	ucfg := upc.Config{
		Machine:        cfg.Machine,
		Conduit:        cond,
		Threads:        cfg.Threads,
		ThreadsPerNode: cfg.PerNode,
		Backend:        upc.Processes, // paper: process-based with PSHM
		PSHM:           true,
		Seed:           cfg.Seed,
		Tracer:         cfg.Tracer,
		Faults:         cfg.Faults,
		Retry:          cfg.Retry,
	}

	g := &global{counters: perf.Counters{}}
	var start, stop sim.Time
	_, err := upc.Run(ucfg, func(t *upc.Thread) {
		w := newWorker(t, &cfg, g)
		if t.ID == 0 && t.Runtime().FaultsOn() {
			// Wake every idle-parked worker at each crash/revive edge:
			// a worker sleeping through its own node's whole outage would
			// otherwise never observe Failed and skip the failover/rejoin
			// protocol entirely.
			t.Runtime().OnNodeTransition(func(int, bool) { g.q.WakeAll() })
		}
		t.Barrier()
		if t.ID == 0 {
			start = t.Now()
		}
		w.run()
		if !w.dead {
			// Retired workers left the barrier population in die(); the
			// survivors rendezvous among themselves.
			t.Barrier()
		}
		if t.ID == 0 {
			stop = t.Now()
		}
		// The runtime's translation accounting rides the same trace
		// stream (xlate_access / xlate_hit / xlate_miss at barriers and
		// thread exit); mirror it into the app counters so trace-fed
		// consumers and Result.Counters agree exactly.
		xa, xh, xm := t.XlateStats()
		w.c.Add("xlate_access", xa)
		w.c.Add("xlate_hit", xh)
		w.c.Add("xlate_miss", xm)
		g.counters.Merge(w.c)
		g.nodes += w.count
		if w.deepest > g.maxDepth {
			g.maxDepth = w.deepest
		}
	})
	if err != nil {
		return Result{}, err
	}
	wantNodes, wantDepth := cfg.Tree.CountSequential()
	if g.nodes != wantNodes {
		return Result{}, fmt.Errorf("uts: parallel traversal visited %d nodes, sequential counted %d",
			g.nodes, wantNodes)
	}
	if g.maxDepth != wantDepth {
		return Result{}, fmt.Errorf("uts: max depth %d, sequential found %d", g.maxDepth, wantDepth)
	}
	elapsed := stop - start
	return Result{
		Nodes:        g.nodes,
		MaxDepth:     g.maxDepth,
		Elapsed:      elapsed,
		MNodesPerSec: float64(g.nodes) / elapsed.Seconds() / 1e6,
		Counters:     g.counters,
	}, nil
}

// meta is one thread's shared-region descriptor: the region holds
// Avail nodes at [Base, Base+Avail) of the thread's partition, oldest
// (shallowest, largest-subtree) first. Thieves take from the front.
type meta struct {
	Base  int64
	Avail int64
}

// worker is one UPC thread's traversal state.
type worker struct {
	t   *upc.Thread
	cfg *Config
	g   *global

	buf   *upc.Shared[Node] // per-thread shared steal regions
	cnt   *upc.Shared[meta] // per-thread region descriptors
	locks []*upc.Lock

	local    []Node // private DFS stack (tail = top)
	head     int    // bottom index of the live region
	failures int    // consecutive failed steal sweeps (backoff control)
	cursor   int    // persistent probe position within victims
	count    int64
	deepest  uint32
	dead     bool // this worker's node crashed and it retired for good
	reborn   bool // this worker rejoined after a scheduled revival
	ringGen  int  // membership generation the probe rings reflect
	c        perf.Counters

	victims []int // baseline: full probe ring
	vLocal  []int // locality strategies: same-node victims, probed first
	vRemote []int // locality strategies: off-node ring behind the cursor
}

func newWorker(t *upc.Thread, cfg *Config, g *global) *worker {
	w := &worker{t: t, cfg: cfg, g: g, c: perf.Counters{}}
	w.buf = upc.Alloc[Node](t, cfg.Capacity*t.N, NodeBytes, cfg.Capacity)
	w.cnt = upc.Alloc[meta](t, t.N, 16, 1)
	w.locks = make([]*upc.Lock, t.N)
	for i := 0; i < t.N; i++ {
		w.locks[i] = upc.AllocLock(t, i)
	}
	if t.ID == 0 {
		w.local = append(w.local, cfg.Tree.Root())
	}
	w.probeOrder()
	return w
}

// probeOrder builds the victim lists. The baseline scans one ring of all
// victims round-robin from id+1 behind a persistent cursor. The locality
// strategies probe every same-node peer first (through the pre-cast
// pointer table, nearly free) and keep the persistent cursor for the
// off-node ring only.
func (w *worker) probeOrder() {
	t := w.t
	if w.cfg.Strategy == BaselineRR {
		for d := 1; d < t.N; d++ {
			w.victims = append(w.victims, (t.ID+d)%t.N)
		}
		return
	}
	group := t.SameNodeThreads()
	inGroup := make(map[int]bool, len(group))
	for _, m := range group {
		inGroup[m] = true
	}
	for d := 1; d < t.N; d++ {
		v := (t.ID + d) % t.N
		if inGroup[v] {
			w.vLocal = append(w.vLocal, v)
		} else {
			w.vRemote = append(w.vRemote, v)
		}
	}
}

// run is the Figure 3.2 state machine, extended with crash detection at
// its loop boundaries when a fault schedule is installed. A worker whose
// node the schedule revives parks inside die and rejoins the traversal
// (see die); only permanent crashes return early.
func (w *worker) run() {
	faults := w.t.Runtime().FaultsOn()
	for {
		for w.depth() > 0 {
			if faults && w.t.Failed() {
				if w.die() {
					return
				}
				break // stack was orphaned; restart the acquisition path
			}
			w.processBatch()
			w.maybeRelease()
		}
		if faults && w.t.Failed() {
			if w.die() {
				return
			}
			continue
		}
		if w.acquireOwn() {
			continue
		}
		if faults && w.acquireOrphans() {
			continue
		}
		if faults && w.ringGen != w.g.ringGen {
			// A peer rejoined since this worker built its probe rings:
			// rebuild them so the reincarnated victim is probed again.
			w.rebuildRings()
		}
		t0 := w.t.Now()
		ok := w.stealSweep()
		w.bump("ns_sweep", int64(w.t.Now()-t0))
		if ok {
			w.failures = 0
			continue
		}
		t0 = w.t.Now()
		done := w.enterIdle()
		w.bump("ns_idle", int64(w.t.Now()-t0))
		if done {
			return
		}
		// Work exists somewhere but this sweep missed it (contended locks,
		// in-flight releases): back off exponentially before rescanning
		// instead of hammering every victim's counter.
		w.failures++
		backoff := sim.Duration(20*sim.Microsecond) << uint(min(w.failures, 7))
		w.t.P.Advance(backoff)
	}
}

func (w *worker) depth() int { return len(w.local) - w.head }

// die handles a worker whose node crashed: its unfinished work — the
// private stack remainder plus its shared steal region — is re-rooted
// into the global orphan pool for the survivors to adopt. (The steal
// regions are modeled as replicated queue state the runtime can recover;
// survivors pay the failover pull when they adopt, see acquireOrphans.)
// The worker then leaves the barrier/collective population. When the
// schedule revives the node, the worker parks for the rebirth and
// rejoins the traversal — reporting false so run continues; a permanent
// crash (or a revival after the survivors finished) retires it for good
// and reports true.
func (w *worker) die() bool {
	t := w.t
	g := w.g
	orphans := append([]Node(nil), w.local[w.head:]...)
	m := w.cnt.Local(t)[0]
	if m.Avail > 0 {
		seg := w.buf.Local(t)
		orphans = append(orphans, seg[m.Base:m.Base+m.Avail]...)
		g.sharedTotal -= m.Avail
		w.cnt.Local(t)[0] = meta{}
	}
	w.local = w.local[:0]
	w.head = 0
	g.orphans = append(g.orphans, orphans...)
	w.bump("failovers", 1)
	t.FaultEvent("failover", t.ID, int64(len(orphans))*NodeBytes)
	t.Retire()
	g.q.WakeAll() // survivors re-check termination and find the orphans
	if !t.ReviveScheduled() {
		w.dead = true
		return true
	}
	t.AwaitRevive()
	if g.done {
		// The survivors finished while this node was down: stay retired
		// and skip the closing barrier (its generation has already been
		// sized to the survivor population).
		w.dead = true
		return true
	}
	w.rejoin()
	return false
}

// rejoin re-enters a revived worker into the traversal: runtime
// membership first (barrier population, checkpoint restore), then the
// application's own structures — fresh backoff state and a membership
// bump so every worker rebuilds its probe rings around the rejoiner.
func (w *worker) rejoin() {
	t := w.t
	t.Rejoin()
	w.reborn = true
	w.failures = 0
	w.bump("rejoins", 1)
	w.g.ringGen++
	w.rebuildRings()
	w.g.q.WakeAll() // idle survivors re-count the live population
}

// rebuildRings rebuilds the probe rings from the current membership:
// the strategy's full ring order, minus currently-dead victims.
func (w *worker) rebuildRings() {
	w.victims, w.vLocal, w.vRemote = nil, nil, nil
	w.cursor = 0
	w.ringGen = w.g.ringGen
	w.probeOrder()
	for v := 0; v < w.t.N; v++ {
		if v != w.t.ID && !w.t.Alive(v) {
			w.strike(v)
		}
	}
}

// acquireOrphans adopts a chunk of re-rooted work from crashed workers,
// charging the failover pull: a descriptor round trip plus streaming the
// adopted nodes.
func (w *worker) acquireOrphans() bool {
	g := w.g
	if len(g.orphans) == 0 {
		return false
	}
	k := 2 * w.cfg.Granularity
	if k > len(g.orphans) {
		k = len(g.orphans)
	}
	w.local = append(w.local, g.orphans[len(g.orphans)-k:]...)
	g.orphans = g.orphans[:len(g.orphans)-k]
	cond := &w.t.Runtime().Cluster.Conduit
	w.t.P.Advance(2 * cond.Latency)
	w.t.MemStream(int64(k) * NodeBytes)
	w.bump("orphans_taken", int64(k))
	w.t.FaultEvent("failover", w.t.ID, int64(k)*NodeBytes)
	return true
}

// strike removes a dead victim from every probe ring so later sweeps
// skip it without paying a probe.
func (w *worker) strike(v int) {
	w.victims = strikeFrom(w.victims, v)
	w.vLocal = strikeFrom(w.vLocal, v)
	w.vRemote = strikeFrom(w.vRemote, v)
	w.cursor = 0
}

func strikeFrom(s []int, v int) []int {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// bump advances a traversal counter, mirroring it into the trace stream
// so trace-fed consumers (Table 3.2) see the same totals.
func (w *worker) bump(name string, n int64) {
	w.c.Add(name, n)
	w.t.P.TraceCounter("uts", name, n)
}

// processBatch pops and expands up to Batch nodes, charging one compute
// interval for the whole batch (the real SHA-1 work runs regardless).
func (w *worker) processBatch() {
	b := w.cfg.Batch
	done := 0
	for done < b && w.depth() > 0 {
		n := w.local[len(w.local)-1]
		w.local = w.local[:len(w.local)-1]
		w.count++
		done++
		if n.Depth > w.deepest {
			w.deepest = n.Depth
		}
		for i := w.cfg.Tree.NumChildren(n) - 1; i >= 0; i-- {
			w.local = append(w.local, Child(n, i))
		}
	}
	w.bump("nodes", int64(done))
	w.t.Compute(float64(done) * w.cfg.NodeCost)
}

// maybeRelease moves surplus bottom-of-stack work into this thread's
// shared region so thieves can take it.
func (w *worker) maybeRelease() {
	chunk := w.cfg.Granularity
	for w.depth() > 2*chunk {
		// The descriptor must be read under the lock: a thief may advance
		// Base between an early read and our write, and a stale write
		// would resurrect already-stolen slots.
		w.locks[w.t.ID].Lock(w.t)
		m := w.cnt.Local(w.t)[0]
		if int(m.Base+m.Avail)+chunk > w.cfg.Capacity {
			if int(m.Avail)+chunk > w.cfg.Capacity {
				w.locks[w.t.ID].Unlock(w.t)
				return // region genuinely full
			}
			// Shift the live region to the front (a local memmove).
			seg := w.buf.Local(w.t)
			copy(seg, seg[m.Base:m.Base+m.Avail])
			w.t.MemStream(2 * m.Avail * NodeBytes)
			m.Base = 0
		}
		moved := w.local[w.head : w.head+chunk]
		upc.PutT(w.t, w.buf, w.t.ID, int(m.Base+m.Avail), moved)
		w.head += chunk
		m.Avail += int64(chunk)
		upc.WriteElem(w.t, w.cnt, w.t.ID, m)
		w.locks[w.t.ID].Unlock(w.t)
		w.g.sharedTotal += int64(chunk)
		w.bump("releases", 1)
		w.g.q.WakeAll() // idle thieves may find work now
		w.compact()
	}
}

// compact drops the released prefix once it dominates the backing slice.
func (w *worker) compact() {
	if w.head > 1024 && w.head*2 > len(w.local) {
		w.local = append(w.local[:0:0], w.local[w.head:]...)
		w.head = 0
	}
}

// acquireOwn pulls work back from this thread's own shared region.
func (w *worker) acquireOwn() bool {
	if w.cnt.Local(w.t)[0].Avail == 0 {
		return false
	}
	w.locks[w.t.ID].Lock(w.t)
	m := w.cnt.Local(w.t)[0]
	if m.Avail == 0 {
		w.locks[w.t.ID].Unlock(w.t)
		return false
	}
	k := m.Avail
	if k > int64(2*w.cfg.Granularity) {
		k = int64(2 * w.cfg.Granularity)
	}
	got := make([]Node, k)
	upc.GetT(w.t, w.buf, got, w.t.ID, int(m.Base+m.Avail-k))
	m.Avail -= k
	upc.WriteElem(w.t, w.cnt, w.t.ID, m)
	w.locks[w.t.ID].Unlock(w.t)
	w.g.sharedTotal -= k
	w.local = append(w.local, got...)
	return true
}

// stealSweep probes victims in strategy order; it reports whether any
// work was obtained.
func (w *worker) stealSweep() bool {
	faults := w.t.Runtime().FaultsOn()
	// Locality strategies: scan the whole node group first, every sweep
	// (probes through the cast table are nearly free).
	for _, v := range w.vLocal {
		if faults && w.t.Failed() {
			// Died mid-sweep: bail at a victim boundary (no lock held) so
			// the run loop can retire this worker through die.
			return false
		}
		if w.tryVictim(v) {
			return true
		}
	}
	ring := w.victims
	if w.cfg.Strategy != BaselineRR {
		ring = w.vRemote
	}
	for i := 0; i < len(ring); i++ {
		if faults && w.t.Failed() {
			return false
		}
		// The probe cursor persists across sweeps: a victim that supplied
		// work stays first in line, and empty victims are not rescanned
		// on every sweep.
		if w.tryVictim(ring[(w.cursor+i)%len(ring)]) {
			w.cursor = (w.cursor + i) % len(ring)
			return true
		}
	}
	return false
}

// tryVictim probes one victim and steals on success.
func (w *worker) tryVictim(v int) bool {
	t := w.t
	faults := t.Runtime().FaultsOn()
	w.bump("probes", 1)
	if faults && !t.Alive(v) {
		w.strike(v)
		w.bump("probes_failed", 1)
		return false
	}
	//upcvet:sharedrace -- optimistic unlocked probe of the victim's count; revalidated under the victim lock before stealing
	m, err := upc.ReadElemErr(t, w.cnt, v)
	if err != nil {
		w.strike(v)
		w.bump("probes_failed", 1)
		return false
	}
	if m.Avail == 0 {
		w.bump("probes_failed", 1)
		return false
	}
	// upc_lock_attempt: never queue on a contended victim — another
	// thief is already draining it; move to the next one.
	if !w.locks[v].TryLock(t) {
		w.bump("probes_contended", 1)
		return false
	}
	m, err = upc.ReadElemErr(t, w.cnt, v)
	if err != nil || m.Avail == 0 {
		w.locks[v].Unlock(t)
		w.bump("probes_failed", 1)
		return false
	}
	if faults && !t.Alive(v) {
		// The victim died while the descriptor read was in flight and its
		// region has been re-rooted into the orphan pool (die is yield-free,
		// so from this check to the commit below no further death can
		// interleave); committing the stale snapshot would resurrect work.
		w.locks[v].Unlock(t)
		w.strike(v)
		w.bump("probes_failed", 1)
		return false
	}
	k := int64(w.cfg.Granularity)
	if w.cfg.Strategy == LocalRapid && m.Avail >= int64(2*w.cfg.Granularity) {
		k = m.Avail / 2 // rapid diffusion: bisect the victim's stack
	}
	if k > m.Avail {
		k = m.Avail
	}
	got := make([]Node, k)
	// Take from the front: the oldest, shallowest entries whose
	// subtrees are largest.
	if faults {
		// Commit against replicated queue state: snapshot the stolen slots
		// and advance the descriptor in one yield-free step, so a victim
		// crash mid-steal can neither lose nor duplicate work. The wire
		// costs — and any faults the schedule injects on them — are charged
		// after the commit; a transfer the schedule kills degrades into a
		// failover pull at the same price.
		//upcvet:affinity -- atomic steal commit against replicated queue state; the wire cost is charged right below
		copy(got, w.buf.Partition(v)[m.Base:m.Base+k])
		m.Base += k
		m.Avail -= k
		w.cnt.Partition(v)[0] = m //upcvet:affinity -- descriptor commit of the same steal
		w.g.sharedTotal -= k
		cond := &t.Runtime().Cluster.Conduit
		t.ChargeXlate(1)
		t.P.Advance(cond.SendOverhead + cond.MsgGap + cond.Latency)
		if gerr := t.GetBytesErr(v, k*NodeBytes); gerr != nil {
			w.bump("steal_failovers", 1)
			t.FaultEvent("failover", v, k*NodeBytes)
		}
	} else {
		upc.GetT(t, w.buf, got, v, int(m.Base))
		m.Base += k
		m.Avail -= k
		upc.WriteElem(t, w.cnt, v, m)
		w.g.sharedTotal -= k
	}
	w.locks[v].Unlock(t)
	w.bump("steals", 1)
	w.bump("stolen_nodes", k)
	if w.reborn {
		// A post-revival steal: the rejoined node is pulling its share of
		// the live traversal again (the churn acceptance metric).
		w.bump("steals_rejoined", 1)
	}
	loc := "remote"
	if t.Distance(v) != topo.LevelRemote {
		w.bump("steals_local", 1)
		loc = "local"
	}
	t.P.TraceInstant("uts", "steal", loc, k, int64(v))
	w.local = append(w.local, got...)
	return true
}

// enterIdle parks the thread until work appears or global termination is
// detected; it reports whether the run is over. Termination counts only
// the live (non-retired) workers and requires the orphan pool drained.
func (w *worker) enterIdle() bool {
	g := w.g
	g.idle++
	for {
		if w.t.Runtime().FaultsOn() && w.t.Failed() {
			// Crashed while parked: bounce back to the run loop, which
			// retires this worker via die before termination can release it
			// into the closing barrier.
			g.idle--
			return false
		}
		if g.done {
			g.idle--
			return true
		}
		live := w.t.N
		if w.t.Runtime().FaultsOn() {
			live = w.t.Runtime().LiveThreads()
		}
		if g.idle == live && g.sharedTotal == 0 && len(g.orphans) == 0 {
			g.done = true
			g.q.WakeAll()
			g.idle--
			return true
		}
		if g.sharedTotal > 0 || len(g.orphans) > 0 {
			g.idle--
			return false
		}
		g.q.Wait(w.t.P, "uts-idle")
	}
}

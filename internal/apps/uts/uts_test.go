package uts

import (
	"testing"
	"testing/quick"

	"repro/internal/topo"
)

func TestTreeDeterministicShape(t *testing.T) {
	spec := Small(20000)
	n1, d1 := spec.CountSequential()
	n2, d2 := spec.CountSequential()
	if n1 != n2 || d1 != d2 {
		t.Fatalf("sequential counts differ: %d/%d vs %d/%d", n1, d1, n2, d2)
	}
	if n1 < 5000 || n1 > 80000 {
		t.Errorf("Small(20000) produced %d nodes; want the right order of magnitude", n1)
	}
	if d1 < 10 {
		t.Errorf("max depth %d implausibly shallow for a binomial tree", d1)
	}
}

func TestTreeSizeScalesWithRoot(t *testing.T) {
	// Subtree sizes are very heavy-tailed (the mean is carried by rare
	// huge subtrees), so realized sizes only loosely track the target;
	// assert monotone growth and the right order of magnitude at the top.
	small, _ := Small(50000).CountSequential()
	large, _ := Small(500000).CountSequential()
	if large <= small {
		t.Errorf("more root children must give more nodes: %d vs %d", large, small)
	}
	if large < 100000 || large > 2000000 {
		t.Errorf("Small(500000) realized %d nodes; want the right order of magnitude", large)
	}
}

func TestChildDependsOnIndexAndParent(t *testing.T) {
	spec := Small(1000)
	root := spec.Root()
	c0, c1 := Child(root, 0), Child(root, 1)
	if c0.State == c1.State {
		t.Error("sibling children must differ")
	}
	if c0.Depth != 1 || c1.Depth != 1 {
		t.Error("child depth wrong")
	}
	if Child(c0, 0).State == Child(c1, 0).State {
		t.Error("children of different parents must differ")
	}
}

func TestGeometricTreeRespectsDepthCutoff(t *testing.T) {
	spec := TreeSpec{Kind: Geometric, B: 2, MaxDepth: 6, Seed: 3}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	n, d := spec.CountSequential()
	if d > 6 {
		t.Errorf("depth %d exceeds cutoff 6", d)
	}
	if n < 10 {
		t.Errorf("geometric tree too small: %d", n)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []TreeSpec{
		{Kind: Binomial, RootChildren: 0, Q: 0.1, M: 8},
		{Kind: Binomial, RootChildren: 10, Q: 0.2, M: 8}, // q*m = 1.6 supercritical
		{Kind: Geometric, B: 0, MaxDepth: 5},
		{Kind: TreeKind(9)},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
	if err := Paper4M().Validate(); err != nil {
		t.Errorf("Paper4M invalid: %v", err)
	}
}

func TestExpectedSubtree(t *testing.T) {
	s := TreeSpec{Kind: Binomial, RootChildren: 1, Q: 0.124875, M: 8}
	if e := s.ExpectedSubtree(); e < 900 || e > 1100 {
		t.Errorf("expected subtree = %g, want ~1000", e)
	}
}

func runSmall(t *testing.T, strat Strategy, conduit string, threads, perNode int) Result {
	t.Helper()
	r, err := Run(Config{
		Machine:     topo.Pyramid(),
		ConduitName: conduit,
		Threads:     threads,
		PerNode:     perNode,
		Strategy:    strat,
		Granularity: 8,
		Tree:        Small(30000),
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParallelCountMatchesSequentialAllStrategies(t *testing.T) {
	for _, s := range Strategies() {
		r := runSmall(t, s, "", 16, 4)
		// Run() already cross-checks the counts; sanity-check the metric.
		if r.MNodesPerSec <= 0 {
			t.Errorf("%v: throughput %g", s, r.MNodesPerSec)
		}
		if r.Counters.Get("nodes") != r.Nodes {
			t.Errorf("%v: counter nodes %d != result %d", s, r.Counters.Get("nodes"), r.Nodes)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	a := runSmall(t, LocalRapid, "", 8, 4)
	b := runSmall(t, LocalRapid, "", 8, 4)
	if a.Elapsed != b.Elapsed || a.Counters.String() != b.Counters.String() {
		t.Errorf("replays differ: %v/%v vs %v/%v", a.Elapsed, a.Counters, b.Elapsed, b.Counters)
	}
}

func TestLocalStrategyRaisesLocalStealShare(t *testing.T) {
	base := runSmall(t, BaselineRR, "gige", 16, 4)
	opt := runSmall(t, LocalRapid, "gige", 16, 4)
	t.Logf("local steal %%: baseline=%.1f optimized=%.1f", base.LocalStealPct(), opt.LocalStealPct())
	if opt.LocalStealPct() <= base.LocalStealPct() {
		t.Errorf("optimized local%% (%.1f) should exceed baseline (%.1f)",
			opt.LocalStealPct(), base.LocalStealPct())
	}
}

func TestEthernetSlowerThanInfiniBand(t *testing.T) {
	ib := runSmall(t, BaselineRR, "ibv-ddr", 16, 4)
	eth := runSmall(t, BaselineRR, "gige", 16, 4)
	if eth.MNodesPerSec >= ib.MNodesPerSec {
		t.Errorf("Ethernet (%.1f Mn/s) should be slower than InfiniBand (%.1f Mn/s)",
			eth.MNodesPerSec, ib.MNodesPerSec)
	}
}

func TestOptimizedHelpsOnEthernet(t *testing.T) {
	base := runSmall(t, BaselineRR, "gige", 16, 4)
	opt := runSmall(t, LocalRapid, "gige", 16, 4)
	t.Logf("gige: baseline=%.2f optimized=%.2f Mnodes/s", base.MNodesPerSec, opt.MNodesPerSec)
	if opt.MNodesPerSec <= base.MNodesPerSec {
		t.Errorf("optimized (%.2f) should beat baseline (%.2f) on Ethernet",
			opt.MNodesPerSec, base.MNodesPerSec)
	}
}

func TestSingleThreadDegenerate(t *testing.T) {
	r, err := Run(Config{
		Machine: topo.Pyramid(), Threads: 1, PerNode: 1,
		Strategy: BaselineRR, Tree: Small(5000), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.Get("steals") != 0 {
		t.Errorf("single thread cannot steal, saw %d", r.Counters.Get("steals"))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Machine: topo.Pyramid(), Threads: 0, PerNode: 1,
		Tree: Small(1000)}); err == nil {
		t.Error("zero threads must error")
	}
	if _, err := Run(Config{Machine: topo.Pyramid(), Threads: 2, PerNode: 2,
		Tree: TreeSpec{Kind: Binomial}}); err == nil {
		t.Error("invalid tree must error")
	}
	if _, err := Run(Config{Machine: topo.Pyramid(), Threads: 2, PerNode: 2,
		ConduitName: "tin-cans", Tree: Small(1000)}); err == nil {
		t.Error("unknown conduit must error")
	}
}

func TestAnyStrategyCountsProperty(t *testing.T) {
	// Property: any (strategy, thread shape, granularity) traverses the
	// exact tree (Run verifies internally).
	f := func(stratRaw, perNodeRaw, granRaw uint8) bool {
		strat := Strategy(int(stratRaw) % 3)
		perNode := int(perNodeRaw)%4 + 1
		gran := int(granRaw)%16 + 1
		_, err := Run(Config{
			Machine: topo.Pyramid(), Threads: perNode * 2, PerNode: perNode,
			Strategy: strat, Granularity: gran, Tree: Small(8000), Seed: 3,
		})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestGeometricTreeParallelRun(t *testing.T) {
	spec := TreeSpec{Kind: Geometric, B: 2.2, MaxDepth: 14, Seed: 5}
	n, _ := spec.CountSequential()
	if n < 1000 {
		t.Skipf("geometric realization too small (%d nodes)", n)
	}
	r, err := Run(Config{
		Machine: topo.Pyramid(), Threads: 8, PerNode: 4,
		Strategy: LocalRapid, Granularity: 8, Tree: spec, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Nodes != n {
		t.Errorf("parallel geometric count %d != %d", r.Nodes, n)
	}
}

func TestPthreadsStyleStealStackStillCounts(t *testing.T) {
	// The UTS harness always runs the process+PSHM regime the paper used;
	// this guards the counters' internal consistency instead.
	r := runSmall(t, LocalSteal, "", 8, 4)
	if r.Counters.Get("stolen_nodes") < r.Counters.Get("steals") {
		t.Error("each steal moves at least one node")
	}
	if r.Counters.Get("probes") < r.Counters.Get("steals") {
		t.Error("every steal requires at least one probe")
	}
}

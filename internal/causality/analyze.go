package causality

import "fmt"

// Critical-path categories.
const (
	CatCompute = "compute"
	CatPSHM    = "pshm"
	CatNetwork = "network"
	CatFault   = "fault"
	CatIdle    = "idle"
)

// threadName renders a blamed thread for humans: the proc name when
// the thread's identity was learned from an edge, a numeric fallback
// otherwise.
func (r *run) threadName(tid int) string {
	if p, ok := r.threadProc[tid]; ok {
		if ps := r.procs[p]; ps != nil && ps.name != "" {
			return ps.name
		}
	}
	return fmt.Sprintf("thread%d", tid)
}

// waitCat maps a classified wait onto its critical-path category when
// the walk attributes the wait to the waiter itself.
func (r *run) waitCat(ps *procState, w *wait) string {
	switch w.class {
	case ClassCommSelf, ClassCommPSHM:
		return CatPSHM
	case ClassCommLoop, ClassCommNet:
		return CatNetwork
	case ClassFaultRetry, ClassCkpt, ClassRejoin:
		return CatFault
	case ClassBarrier, ClassCollective, ClassLock, ClassLateSender:
		if w.blamedNode >= 0 && ps.node >= 0 && w.blamedNode == ps.node {
			return CatPSHM
		}
		if w.blamedNode >= 0 {
			return CatNetwork
		}
	}
	return CatIdle
}

// cpAccum accumulates the critical-path walk's segments.
type cpAccum struct {
	cats    map[string]int64
	perProc map[int32]int64
	perNode map[int]int64
	folded  map[string]int64 // "category;thread" -> ns
	steps   int
}

func newCPAccum() *cpAccum {
	return &cpAccum{
		cats:    map[string]int64{},
		perProc: map[int32]int64{},
		perNode: map[int]int64{},
		folded:  map[string]int64{},
	}
}

func (a *cpAccum) add(r *run, cat string, p int32, node int, ns int64) {
	if ns <= 0 {
		return
	}
	a.cats[cat] += ns
	a.perProc[p] += ns
	a.perNode[node] += ns
	name := "?"
	if ps := r.procs[p]; ps != nil && ps.name != "" {
		name = ps.name
	}
	a.folded[cat+";"+name] += ns
}

// total sums every category (equals the run makespan by construction).
func (a *cpAccum) total() int64 {
	var t int64
	for _, v := range a.cats {
		t += v
	}
	return t
}

// criticalPath walks backward from the run's final event. Each step
// charges the segment between the current time and the proc's latest
// earlier wait as compute, then either jumps along the happens-before
// edge to the thread that caused the wait (barrier releaser at its
// arrival time, lock holder / message sender at the wait's end) or
// charges the wait interval to its own category and continues on the
// same proc. Every charged segment partitions (0, makespan] exactly,
// so the per-category sums add up to the run makespan. Termination:
// every iteration consumes one wait through a strictly decreasing
// per-proc cursor, so the walk is bounded by the total wait count.
func (r *run) criticalPath() *cpAccum {
	acc := newCPAccum()
	if len(r.order) == 0 {
		return acc
	}
	// Start at the proc whose exit is latest (ties: lowest id).
	p := r.order[0]
	best := int64(-1)
	for _, id := range r.order {
		ps := r.procs[id]
		if ps.exited && (ps.exitTime > best || (ps.exitTime == best && id < p)) {
			p, best = id, ps.exitTime
		}
	}
	cursor := map[int32]int{}
	for _, id := range r.order {
		cursor[id] = len(r.procs[id].waits)
	}
	t := r.maxTime
	for t > 0 {
		ps := r.procs[p]
		i := cursor[p] - 1
		for i >= 0 && ps.waits[i].end > t {
			i--
		}
		if i < 0 {
			acc.add(r, CatCompute, p, ps.node, t)
			break
		}
		cursor[p] = i
		w := &ps.waits[i]
		if t > w.end {
			acc.add(r, CatCompute, p, ps.node, t-w.end)
		}
		t = w.end
		acc.steps++
		if w.hasGen {
			if g := r.gens[w.gen]; g != nil && g.releaser >= 0 && g.releaser != ps.thread {
				if rp, ok := r.threadProc[g.releaser]; ok && g.releaseTime < t {
					// The gap from the last arrival to the release is the
					// dissemination cost: network when the releaser sits on
					// another node, shared-memory signaling otherwise.
					gap := CatNetwork
					if g.releaserNode == ps.node && ps.node >= 0 {
						gap = CatPSHM
					}
					acc.add(r, gap, p, ps.node, t-g.releaseTime)
					p, t = rp, g.releaseTime
					continue
				}
			}
			acc.add(r, r.waitCat(ps, w), p, ps.node, t-w.begin)
			t = w.begin
			continue
		}
		if (w.class == ClassLock || w.class == ClassLateSender) && w.blamedThread >= 0 {
			if bp, ok := r.threadProc[w.blamedThread]; ok && bp != p {
				// Hand off to the delaying thread: its activity up to the
				// wait's end explains this part of the makespan.
				p = bp
				continue
			}
		}
		acc.add(r, r.waitCat(ps, w), p, ps.node, t-w.begin)
		t = w.begin
	}
	return acc
}

// rootBlame walks blame edges transitively: if the thread blamed for a
// wait was itself waiting on someone else just before its releasing
// arrival, the delay's root cause is that earlier thread. The chain
// follows a wait only when it dominates the gap to the arrival — the
// compute the blamed thread ran after its own wait ended must be
// shorter than that wait, otherwise the delay was its own doing and
// blame stays put. lo bounds the walk to the original wait's window;
// depth and a visited set bound cycles.
func (r *run) rootBlame(tid int, at, lo int64) int {
	seen := map[int]bool{}
	for depth := 0; depth < 8 && !seen[tid]; depth++ {
		seen[tid] = true
		p, ok := r.threadProc[tid]
		if !ok {
			break
		}
		ps := r.procs[p]
		var next *wait
		for i := len(ps.waits) - 1; i >= 0; i-- {
			w := &ps.waits[i]
			if w.end > at {
				continue
			}
			if w.end < lo || at-w.end > w.end-w.begin {
				break
			}
			if w.blamedThread >= 0 && w.blamedThread != tid {
				next = w
			}
			break
		}
		if next == nil {
			break
		}
		tid, at = next.blamedThread, next.end
	}
	return tid
}

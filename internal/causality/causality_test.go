package causality

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/apps/uts"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/upc"
)

func upcCfg(rec trace.Tracer, threads, perNode int) upc.Config {
	return upc.Config{
		Machine:        topo.Lehman(),
		Threads:        threads,
		ThreadsPerNode: perNode,
		Backend:        upc.Processes,
		PSHM:           true,
		Seed:           1,
		Tracer:         rec,
	}
}

// findClass returns the named wait class of a run, or nil.
func findClass(ra *RunAnalysis, class string) *WaitClassExport {
	for i := range ra.WaitClasses {
		if ra.WaitClasses[i].Class == class {
			return &ra.WaitClasses[i]
		}
	}
	return nil
}

// blamedNS sums the wait time a run's analysis blames on the named
// thread across every wait class.
func blamedNS(ra *RunAnalysis, thread string) int64 {
	var total int64
	for _, wc := range ra.WaitClasses {
		for _, b := range wc.Blamed {
			if b.Thread == thread {
				total += b.NS
			}
		}
	}
	return total
}

// segmentSum adds up a run's critical-path segments.
func segmentSum(ra *RunAnalysis) int64 {
	var total int64
	for _, s := range ra.CriticalPath.Segments {
		total += s.NS
	}
	return total
}

// TestBarrierBlamesLateArriver: three threads reach the barrier
// immediately, one arrives 5ms late. The waiters' barrier waits must be
// blamed, by name, on the late arriver, and the blame must carry
// (roughly) the injected delay.
func TestBarrierBlamesLateArriver(t *testing.T) {
	rec := NewRecorder()
	const delay = 5 * sim.Millisecond
	_, err := upc.Run(upcCfg(rec, 4, 2), func(th *upc.Thread) {
		if th.ID == 3 {
			th.P.Advance(delay)
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	exp := rec.Export()
	if len(exp.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(exp.Runs))
	}
	ra := &exp.Runs[0]
	wc := findClass(ra, ClassBarrier)
	if wc == nil {
		t.Fatalf("no barrier wait class in %+v", ra.WaitClasses)
	}
	if wc.Instances < 3 {
		t.Errorf("barrier instances = %d, want >= 3 waiters", wc.Instances)
	}
	if len(wc.Blamed) == 0 || wc.Blamed[0].Thread != "upc3" {
		t.Fatalf("top barrier blame = %+v, want upc3", wc.Blamed)
	}
	// Three waiters each stalled ~delay on upc3.
	if got := blamedNS(ra, "upc3"); got < 3*int64(delay)*9/10 {
		t.Errorf("blamed(upc3) = %d, want >= ~%d", got, 3*int64(delay))
	}
	// Phase imbalance must name the same culprit.
	if len(ra.Phases) == 0 || ra.Phases[0].Site != "barrier" || ra.Phases[0].TopBlame != "upc3" {
		t.Errorf("phases = %+v, want barrier site blaming upc3", ra.Phases)
	}
}

// TestLockBlamesPreviousHolder: threads serialize on one lock, each
// holding it for 1ms. Contended acquisitions must classify as lock
// waits blamed on a named previous holder.
func TestLockBlamesPreviousHolder(t *testing.T) {
	rec := NewRecorder()
	_, err := upc.Run(upcCfg(rec, 4, 2), func(th *upc.Thread) {
		l := upc.AllocLock(th, 0)
		l.Lock(th)
		th.P.Advance(sim.Millisecond)
		l.Unlock(th)
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	ra := &rec.Export().Runs[0]
	wc := findClass(ra, ClassLock)
	if wc == nil {
		t.Fatalf("no lock wait class in %+v", ra.WaitClasses)
	}
	if len(wc.Blamed) == 0 {
		t.Fatal("lock contention produced no blamed holder")
	}
	for _, b := range wc.Blamed {
		if !strings.HasPrefix(b.Thread, "upc") {
			t.Errorf("lock blame %+v not a named thread", b)
		}
	}
}

// TestCriticalPathPartitionsMakespan: on a nontrivial two-node UTS run
// the critical-path segments must sum exactly to the run makespan —
// the walk partitions (0, makespan] by construction, and the export
// must preserve that.
func TestCriticalPathPartitionsMakespan(t *testing.T) {
	rec := NewRecorder()
	if _, err := uts.Run(uts.Config{
		Threads: 8, PerNode: 4, Strategy: uts.LocalRapid,
		Tree: uts.Small(20000), Seed: 3, Tracer: rec,
	}); err != nil {
		t.Fatal(err)
	}
	exp := rec.Export()
	for i := range exp.Runs {
		ra := &exp.Runs[i]
		if ra.MakespanNS <= 0 {
			t.Fatalf("run %d: makespan %d", i, ra.MakespanNS)
		}
		if got := segmentSum(ra); got != ra.MakespanNS {
			t.Errorf("run %d: segment sum %d != makespan %d", i, got, ra.MakespanNS)
		}
		if ra.CriticalPath.Steps == 0 {
			t.Errorf("run %d: critical path took no steps", i)
		}
	}
	// The folded flamegraph is the same partition, thread-resolved.
	var folded int64
	for _, line := range strings.Split(strings.TrimSpace(rec.FoldedText()), "\n") {
		parts := strings.Split(line, " ")
		if len(parts) != 2 || !strings.HasPrefix(parts[0], "critical;") {
			t.Fatalf("bad folded line %q", line)
		}
		ns, err := strconv.ParseInt(parts[1], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		folded += ns
	}
	if folded != exp.TotalMakespanNS {
		t.Errorf("folded stacks sum %d != total makespan %d", folded, exp.TotalMakespanNS)
	}
}

// TestUTSLossyWaitStates is the acceptance scenario: UTS under the
// lossy fault schedule must classify at least three distinct wait-state
// types, name blamed threads, and still partition the makespan.
func TestUTSLossyWaitStates(t *testing.T) {
	sched, err := fault.Load("../../examples/faults/lossy.json")
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder()
	if _, err := uts.Run(uts.Config{
		Threads: 8, PerNode: 4, Strategy: uts.LocalRapid,
		Tree: uts.Small(20000), Seed: 3, Tracer: rec, Faults: sched,
	}); err != nil {
		t.Fatal(err)
	}
	ra := &rec.Export().Runs[0]
	if got := segmentSum(ra); got != ra.MakespanNS {
		t.Errorf("segment sum %d != makespan %d", got, ra.MakespanNS)
	}
	if len(ra.WaitClasses) < 3 {
		t.Fatalf("wait classes = %+v, want >= 3 distinct types", ra.WaitClasses)
	}
	named := 0
	for _, wc := range ra.WaitClasses {
		for _, b := range wc.Blamed {
			if strings.HasPrefix(b.Thread, "upc") {
				named++
				break
			}
		}
	}
	if named < 2 {
		t.Errorf("only %d wait classes carry named thread blame: %+v", named, ra.WaitClasses)
	}
}

// TestInjectedDelayIsBlamed is the negative control the CI
// analysis-determinism job leans on: injecting a delay into one thread
// must surface as blamed wait time attributed to that thread, absent
// from an identical run without the delay.
func TestInjectedDelayIsBlamed(t *testing.T) {
	run := func(delay sim.Duration) *RunAnalysis {
		rec := NewRecorder()
		if _, err := upc.Run(upcCfg(rec, 4, 2), func(th *upc.Thread) {
			th.Barrier()
			if th.ID == 2 {
				th.P.Advance(delay)
			}
			th.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return &rec.Export().Runs[0]
	}
	const delay = 3 * sim.Millisecond
	clean := blamedNS(run(0), "upc2")
	slow := blamedNS(run(delay), "upc2")
	if slow-clean < 3*int64(delay)*9/10 {
		t.Errorf("injected %v delay raised blame on upc2 by only %dns (clean %d, slow %d)",
			delay, slow-clean, clean, slow)
	}
}

func marshal(t *testing.T, e *Export) []byte {
	t.Helper()
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// sweepExport runs a 4-point UTS sweep at the given -parallel width
// with a recorder attached as the session sink, returning the
// serialized analysis.
func sweepExport(t *testing.T, workers int) []byte {
	t.Helper()
	prevWorkers := sweep.Workers()
	prevTracer := trace.Default()
	rec := NewRecorder()
	trace.SetDefault(rec)
	sweep.SetWorkers(workers)
	defer func() {
		sweep.SetWorkers(prevWorkers)
		trace.SetDefault(prevTracer)
	}()
	err := sweep.Run(4, func(i int, tr trace.Tracer) error {
		_, err := uts.Run(uts.Config{
			Threads: 8, PerNode: 4, Strategy: uts.LocalRapid,
			Tree: uts.Small(8000), Seed: int64(i + 1), Tracer: tr,
		})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return marshal(t, rec.Export())
}

// TestAnalysisParallelInvariance: the exported analysis must be
// byte-identical at any sweep worker count.
func TestAnalysisParallelInvariance(t *testing.T) {
	base := sweepExport(t, 1)
	if len(base) == 0 {
		t.Fatal("empty export")
	}
	for _, w := range []int{2, 8} {
		if got := sweepExport(t, w); !bytes.Equal(got, base) {
			t.Errorf("analysis bytes at %d workers differ from 1 worker", w)
		}
	}
}

// shardExport runs one sharded UTS traversal at the given shard worker
// count and returns the serialized analysis.
func shardExport(t *testing.T, workers int) []byte {
	t.Helper()
	old := sim.ShardWorkers()
	sim.SetShardWorkers(workers)
	defer sim.SetShardWorkers(old)
	rec := NewRecorder()
	if _, err := uts.RunSharded(uts.Config{
		Threads: 8, PerNode: 2, Strategy: uts.LocalRapid,
		Tree: uts.Small(30000), Seed: 7, Tracer: rec,
	}); err != nil {
		t.Fatal(err)
	}
	return marshal(t, rec.Export())
}

// TestAnalysisShardInvariance: same property on the node-sharded
// parallel engine — byte-identical at any -shards worker count.
func TestAnalysisShardInvariance(t *testing.T) {
	base := shardExport(t, 1)
	if len(base) == 0 {
		t.Fatal("empty export")
	}
	for _, w := range []int{2, 4} {
		if got := shardExport(t, w); !bytes.Equal(got, base) {
			t.Errorf("analysis bytes at %d shard workers differ from 1", w)
		}
	}
}

// TestExportRoundTrip: WriteFile/LoadExport preserve the analysis.
func TestExportRoundTrip(t *testing.T) {
	rec := NewRecorder()
	if _, err := upc.Run(upcCfg(rec, 4, 2), func(th *upc.Thread) {
		th.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	exp := rec.Export()
	path := t.TempDir() + "/a.json"
	if err := exp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadExport(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(t, exp), marshal(t, got)) {
		t.Error("export did not round-trip")
	}
	var sum strings.Builder
	exp.Summary(&sum, 3)
	if !strings.Contains(sum.String(), "critical path") {
		t.Errorf("summary missing critical path:\n%s", sum.String())
	}
}

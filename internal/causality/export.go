package causality

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

// Export is the JSON-ready analysis result: one entry per run plus
// cross-run totals. Every slice is pre-sorted with deterministic
// tie-breaks and no map reaches the encoder, so equal streams produce
// byte-identical files — the property the CI analysis-determinism gate
// compares across -parallel and -shards worker counts.
type Export struct {
	Runs []RunAnalysis `json:"runs"`
	// TotalMakespanNS sums the run makespans.
	TotalMakespanNS int64 `json:"total_makespan_ns"`
	// Totals aggregates critical-path segments across runs.
	Totals []SegmentExport `json:"totals,omitempty"`
}

// RunAnalysis is one run's wait-state and critical-path analysis.
type RunAnalysis struct {
	Seed       int64 `json:"seed"`
	Sharded    bool  `json:"sharded,omitempty"`
	MakespanNS int64 `json:"makespan_ns"`
	Procs      int   `json:"procs"`
	Waits      int   `json:"waits"`
	Edges      int64 `json:"edges"`
	DeliverNS  int64 `json:"deliver_bytes,omitempty"`

	CriticalPath CPExport          `json:"critical_path"`
	WaitClasses  []WaitClassExport `json:"wait_classes,omitempty"`
	Phases       []PhaseExport     `json:"phases,omitempty"`
}

// CPExport is the critical path's per-segment attribution with
// thread- and node-level rollups.
type CPExport struct {
	Segments []SegmentExport `json:"segments"`
	Threads  []ShareExport   `json:"threads,omitempty"`
	Nodes    []NodeShare     `json:"nodes,omitempty"`
	Steps    int             `json:"steps"`
}

// SegmentExport is the critical-path time of one category.
type SegmentExport struct {
	Category string  `json:"category"`
	NS       int64   `json:"ns"`
	Pct      float64 `json:"pct"`
}

// ShareExport is one thread's share of the critical path.
type ShareExport struct {
	Thread string  `json:"thread"`
	NS     int64   `json:"ns"`
	Pct    float64 `json:"pct"`
}

// NodeShare is one node's share of the critical path (-1: unknown).
type NodeShare struct {
	Node int     `json:"node"`
	NS   int64   `json:"ns"`
	Pct  float64 `json:"pct"`
}

// WaitClassExport aggregates one wait class over a run.
type WaitClassExport struct {
	Class     string        `json:"class"`
	Instances int           `json:"instances"`
	TotalNS   int64         `json:"total_ns"`
	MaxNS     int64         `json:"max_ns"`
	Blamed    []BlameExport `json:"blamed,omitempty"`
}

// BlameExport is one thread's share of a wait class's blame, after the
// transitive root-cause walk.
type BlameExport struct {
	Thread    string `json:"thread"`
	Instances int    `json:"instances"`
	NS        int64  `json:"ns"`
}

// PhaseExport is the imbalance summary of one synchronization site
// kind (barrier or collective generations).
type PhaseExport struct {
	Site               string  `json:"site"`
	Generations        int     `json:"generations"`
	Waiters            int     `json:"waiters"`
	TotalWaitNS        int64   `json:"total_wait_ns"`
	MaxOverAvg         float64 `json:"max_over_avg"`
	TopBlame           string  `json:"top_blame,omitempty"`
	BlameConcentration float64 `json:"blame_concentration"`
}

// pct rounds a share to two decimals so the JSON stays tidy while
// remaining a pure function of the integer inputs.
func pct(ns, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return math.Round(10000*float64(ns)/float64(total)) / 100
}

// Export finalizes the recorder and builds the analysis. Idempotent:
// the first call freezes the result.
func (rec *Recorder) Export() *Export {
	if rec.exp == nil {
		rec.endRun()
		exp := &Export{Runs: make([]RunAnalysis, 0, len(rec.runs))}
		catTotals := map[string]int64{}
		for _, r := range rec.runs {
			ra := r.analyze()
			exp.Runs = append(exp.Runs, ra)
			exp.TotalMakespanNS += ra.MakespanNS
			for _, s := range ra.CriticalPath.Segments {
				catTotals[s.Category] += s.NS
			}
		}
		exp.Totals = segmentList(catTotals, exp.TotalMakespanNS)
		rec.exp = exp
	}
	return rec.exp
}

// segmentList renders a category->ns map as a name-sorted list.
func segmentList(cats map[string]int64, total int64) []SegmentExport {
	names := make([]string, 0, len(cats))
	for c := range cats {
		names = append(names, c)
	}
	sort.Strings(names)
	out := make([]SegmentExport, 0, len(names))
	for _, c := range names {
		out = append(out, SegmentExport{Category: c, NS: cats[c], Pct: pct(cats[c], total)})
	}
	return out
}

// analyze builds one run's full analysis.
func (r *run) analyze() RunAnalysis {
	ra := RunAnalysis{
		Seed: r.seed, Sharded: r.shard, MakespanNS: r.maxTime,
		Procs: len(r.order), Edges: r.edges, DeliverNS: r.deliverB,
	}

	// Critical path.
	acc := r.cp()
	ra.CriticalPath.Steps = acc.steps
	ra.CriticalPath.Segments = segmentList(acc.cats, r.maxTime)
	procs := make([]int32, 0, len(acc.perProc))
	for p := range acc.perProc {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool {
		a, b := acc.perProc[procs[i]], acc.perProc[procs[j]]
		if a != b {
			return a > b
		}
		return procs[i] < procs[j]
	})
	for _, p := range procs {
		name := "?"
		if ps := r.procs[p]; ps != nil && ps.name != "" {
			name = ps.name
		}
		ra.CriticalPath.Threads = append(ra.CriticalPath.Threads,
			ShareExport{Thread: name, NS: acc.perProc[p], Pct: pct(acc.perProc[p], r.maxTime)})
	}
	nodes := make([]int, 0, len(acc.perNode))
	for n := range acc.perNode {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	for _, n := range nodes {
		ra.CriticalPath.Nodes = append(ra.CriticalPath.Nodes,
			NodeShare{Node: n, NS: acc.perNode[n], Pct: pct(acc.perNode[n], r.maxTime)})
	}

	// Wait-class rollup with root-cause blame.
	type classAgg struct {
		n     int
		total int64
		max   int64
		blame map[int]*BlameExport // root thread id
	}
	classes := map[string]*classAgg{}
	for _, pid := range r.order {
		ps := r.procs[pid]
		for i := range ps.waits {
			w := &ps.waits[i]
			ra.Waits++
			ca := classes[w.class]
			if ca == nil {
				ca = &classAgg{blame: map[int]*BlameExport{}}
				classes[w.class] = ca
			}
			d := w.end - w.begin
			ca.n++
			ca.total += d
			if d > ca.max {
				ca.max = d
			}
			if w.blamedThread >= 0 {
				root := r.rootBlame(w.blamedThread, w.end, w.begin)
				be := ca.blame[root]
				if be == nil {
					be = &BlameExport{Thread: r.threadName(root)}
					ca.blame[root] = be
				}
				be.Instances++
				be.NS += d
			}
		}
	}
	classNames := make([]string, 0, len(classes))
	for c := range classes {
		classNames = append(classNames, c)
	}
	sort.Strings(classNames)
	for _, c := range classNames {
		ca := classes[c]
		wce := WaitClassExport{Class: c, Instances: ca.n, TotalNS: ca.total, MaxNS: ca.max}
		for _, be := range ca.blame {
			wce.Blamed = append(wce.Blamed, *be)
		}
		sort.Slice(wce.Blamed, func(i, j int) bool {
			if wce.Blamed[i].NS != wce.Blamed[j].NS {
				return wce.Blamed[i].NS > wce.Blamed[j].NS
			}
			return wce.Blamed[i].Thread < wce.Blamed[j].Thread
		})
		ra.WaitClasses = append(ra.WaitClasses, wce)
	}

	// Per-phase imbalance: barrier/collective generations.
	type genAgg struct {
		n     int
		total int64
		max   int64
	}
	genWaits := map[genKey]*genAgg{}
	for _, pid := range r.order {
		ps := r.procs[pid]
		for i := range ps.waits {
			w := &ps.waits[i]
			if !w.hasGen {
				continue
			}
			ga := genWaits[w.gen]
			if ga == nil {
				ga = &genAgg{}
				genWaits[w.gen] = ga
			}
			d := w.end - w.begin
			ga.n++
			ga.total += d
			if d > ga.max {
				ga.max = d
			}
		}
	}
	type siteAgg struct {
		gens    int
		waiters int
		total   int64
		sumMax  float64
		sumAvg  float64
		blame   map[int]int // releaser thread -> generations blamed
	}
	sites := map[string]*siteAgg{}
	for k, ga := range genWaits {
		sa := sites[k.site]
		if sa == nil {
			sa = &siteAgg{blame: map[int]int{}}
			sites[k.site] = sa
		}
		sa.gens++
		sa.waiters += ga.n
		sa.total += ga.total
		sa.sumMax += float64(ga.max)
		sa.sumAvg += float64(ga.total) / float64(ga.n)
		if g := r.gens[k]; g != nil && g.releaser >= 0 {
			sa.blame[g.releaser]++
		}
	}
	siteNames := make([]string, 0, len(sites))
	for s := range sites {
		siteNames = append(siteNames, s)
	}
	sort.Strings(siteNames)
	for _, s := range siteNames {
		sa := sites[s]
		pe := PhaseExport{Site: s, Generations: sa.gens, Waiters: sa.waiters, TotalWaitNS: sa.total}
		if sa.sumAvg > 0 {
			pe.MaxOverAvg = math.Round(100*sa.sumMax/sa.sumAvg) / 100
		}
		top, topN, total := -1, 0, 0
		tids := make([]int, 0, len(sa.blame))
		for tid := range sa.blame {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			n := sa.blame[tid]
			total += n
			if n > topN {
				top, topN = tid, n
			}
		}
		if top >= 0 {
			pe.TopBlame = r.threadName(top)
			pe.BlameConcentration = math.Round(10000*float64(topN)/float64(total)) / 10000
		}
		ra.Phases = append(ra.Phases, pe)
	}

	return ra
}

// Write serializes the export as indented JSON.
func (e *Export) Write(w io.Writer) error {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("causality: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the export to path.
func (e *Export) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("causality: %w", err)
	}
	if err := e.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("causality: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("causality: %w", err)
	}
	return nil
}

// LoadExport reads a standalone export back from path.
func LoadExport(path string) (*Export, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("causality: %w", err)
	}
	e := &Export{}
	if err := json.Unmarshal(b, e); err != nil {
		return nil, fmt.Errorf("causality: parsing %s: %w", path, err)
	}
	return e, nil
}

// FoldedText renders the critical path as collapsed stacks
// ("critical;<category>;<thread> <ns>"), aggregated over runs and
// sorted, for flamegraph tooling.
func (rec *Recorder) FoldedText() string {
	rec.Export() // finalize
	agg := map[string]int64{}
	for _, r := range rec.runs {
		for k, v := range r.cp().folded {
			agg[k] += v
		}
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "critical;%s %d\n", k, agg[k])
	}
	return sb.String()
}

// cp caches the run's critical-path accumulator.
func (r *run) cp() *cpAccum {
	if r.cpCache == nil {
		r.cpCache = r.criticalPath()
	}
	return r.cpCache
}

// Summary renders a compact human overview of the export.
func (e *Export) Summary(w io.Writer, top int) {
	fmt.Fprintf(w, "runs=%d makespan=%s\n", len(e.Runs), fmtNS(e.TotalMakespanNS))
	for _, s := range e.Totals {
		fmt.Fprintf(w, "  %-8s %14s %6.2f%%\n", s.Category, fmtNS(s.NS), s.Pct)
	}
	for i := range e.Runs {
		ra := &e.Runs[i]
		fmt.Fprintf(w, "run %d: seed=%d makespan=%s procs=%d waits=%d edges=%d steps=%d\n",
			i, ra.Seed, fmtNS(ra.MakespanNS), ra.Procs, ra.Waits, ra.Edges, ra.CriticalPath.Steps)
		fmt.Fprintf(w, "  critical path:\n")
		for _, s := range ra.CriticalPath.Segments {
			fmt.Fprintf(w, "    %-8s %14s %6.2f%%\n", s.Category, fmtNS(s.NS), s.Pct)
		}
		if n := len(ra.CriticalPath.Threads); n > 0 {
			lim := min(top, n)
			fmt.Fprintf(w, "  top threads on path:\n")
			for _, t := range ra.CriticalPath.Threads[:lim] {
				fmt.Fprintf(w, "    %-12s %14s %6.2f%%\n", t.Thread, fmtNS(t.NS), t.Pct)
			}
		}
		if len(ra.WaitClasses) > 0 {
			fmt.Fprintf(w, "  wait states:\n")
			for _, wc := range ra.WaitClasses {
				fmt.Fprintf(w, "    %-14s n=%-6d total=%-12s max=%s", wc.Class, wc.Instances,
					fmtNS(wc.TotalNS), fmtNS(wc.MaxNS))
				lim := min(top, len(wc.Blamed))
				for _, b := range wc.Blamed[:lim] {
					fmt.Fprintf(w, "  %s(%d,%s)", b.Thread, b.Instances, fmtNS(b.NS))
				}
				fmt.Fprintln(w)
			}
		}
		for _, ph := range ra.Phases {
			fmt.Fprintf(w, "  phase %-8s gens=%-5d waiters=%-6d wait=%-12s max/avg=%.2f",
				ph.Site, ph.Generations, ph.Waiters, fmtNS(ph.TotalWaitNS), ph.MaxOverAvg)
			if ph.TopBlame != "" {
				fmt.Fprintf(w, " top-blame=%s (%.0f%%)", ph.TopBlame, 100*ph.BlameConcentration)
			}
			fmt.Fprintln(w)
		}
	}
}

// BlameTable renders the top-N blamed threads across all runs and
// classes, by blamed wait time.
func (e *Export) BlameTable(w io.Writer, top int) {
	type key struct{ thread, class string }
	agg := map[key]*BlameExport{}
	for i := range e.Runs {
		for _, wc := range e.Runs[i].WaitClasses {
			for _, b := range wc.Blamed {
				k := key{b.Thread, wc.Class}
				a := agg[k]
				if a == nil {
					a = &BlameExport{Thread: b.Thread}
					agg[k] = a
				}
				a.Instances += b.Instances
				a.NS += b.NS
			}
		}
	}
	type row struct {
		thread, class string
		n             int
		ns            int64
	}
	rows := make([]row, 0, len(agg))
	for k, a := range agg {
		rows = append(rows, row{k.thread, k.class, a.Instances, a.NS})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].ns != rows[j].ns {
			return rows[i].ns > rows[j].ns
		}
		if rows[i].thread != rows[j].thread {
			return rows[i].thread < rows[j].thread
		}
		return rows[i].class < rows[j].class
	})
	if len(rows) > top {
		rows = rows[:top]
	}
	fmt.Fprintf(w, "%-12s %-14s %8s %14s\n", "THREAD", "CLASS", "WAITS", "BLAMED-NS")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-14s %8d %14d\n", r.thread, r.class, r.n, r.ns)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fmtNS renders nanoseconds with a readable unit.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

// Package causality is the post-mortem wait-state and critical-path
// analysis engine (the Scalasca-style layer of DESIGN §14). A Recorder
// rides a trace session's serialized, replay-ordered event stream —
// the same stream the digest and the metrics manifest consume, which
// is what makes the analysis byte-identical at any -parallel or
// -shards worker count — and reconstructs the happens-before graph
// from the completion-edge instants the model layers emit (barrier and
// collective generations, lock handoffs, fabric/ShardNet deliveries,
// fault retries, message matches; see trace.CatEdge). From the graph
// it computes, per run:
//
//   - wait-state classification: every park interval that is a real
//     wait (not modeled work) is classified by its innermost open span
//     and park reason — late-arriver at barriers and collectives, lock
//     contention, PSHM/network communication waits, fault-retry
//     stalls, scheduler idling — with root-cause blame walked back
//     along the graph to the delaying thread;
//   - the critical path of the whole run: a backward walk from the
//     final event that jumps from each waiter to the thread whose
//     arrival released it, partitioning the makespan exactly into
//     compute / PSHM comm / network comm / fault-retry / idle
//     segments, rolled up per thread and per node;
//   - per-phase imbalance: max/avg wait ratios and blame concentration
//     per barrier/collective site.
//
// The package sits on internal/trace alone, so metrics can embed its
// Export in the manifest without an import cycle.
package causality

import "repro/internal/trace"

// Wait classes assigned by the recorder.
const (
	ClassBarrier    = "barrier"
	ClassCollective = "collective"
	ClassLock       = "lock"
	ClassCommSelf   = "comm-self"
	ClassCommPSHM   = "comm-pshm"
	ClassCommLoop   = "comm-loopback"
	ClassCommNet    = "comm-network"
	ClassFaultRetry = "fault-retry"
	ClassCkpt       = "ckpt"
	ClassRejoin     = "rejoin"
	ClassLateSender = "late-sender"
	ClassIdle       = "idle"
	ClassOther      = "other"
)

// genKey identifies one barrier or collective generation within a run.
type genKey struct {
	site string // "barrier" | "coll"
	seq  int64
}

// genInfo is what the generation's release edge recorded: the thread
// whose arrival (or retirement) released every waiter, and when.
type genInfo struct {
	releaser     int // thread id; -1 until the release edge arrives
	releaserNode int
	releaseTime  int64
}

// spanRef is one open span on a proc's stack.
type spanRef struct {
	cat, name string
}

// wait is one completed wait instance: a park interval with a real
// wait reason, classified and (where the graph allows) blamed.
type wait struct {
	begin, end   int64
	reason       string
	class        string
	blamedThread int // thread id of the delaying thread, -1 unknown
	blamedNode   int
	gen          genKey
	hasGen       bool
}

// lastComm is the most recent communication-matrix instant a proc
// emitted, used to classify the event wait that typically follows it.
type lastComm struct {
	name  string // "put" | "get" | "send" | "am" | fault names
	class string // trace.Class*
	pack  int64
	time  int64
	valid bool
}

// procState is the recorder's streaming state for one process.
type procState struct {
	id         int32
	name       string
	thread     int // logical thread id learned from edges, -1 unknown
	node       int // -1 unknown
	spans      []spanRef
	parked     bool
	parkTime   int64
	parkReason string
	lastResume int64
	comm       lastComm
	waits      []wait // completed, ascending by end time
	exited     bool
	exitTime   int64
	pendingGen genKey // armed by the latest bar-arrive edge
	hasPending bool
}

// run accumulates one engine's stream.
type run struct {
	seed       int64
	shard      bool
	maxTime    int64
	procs      map[int32]*procState
	order      []int32 // proc ids in spawn order
	gens       map[genKey]*genInfo
	threadProc map[int]int32 // logical thread id -> proc id
	delivers   int64
	deliverB   int64
	edges      int64
	cpCache    *cpAccum
}

func newRun(seed int64, shard bool) *run {
	return &run{
		seed:       seed,
		shard:      shard,
		procs:      map[int32]*procState{},
		gens:       map[genKey]*genInfo{},
		threadProc: map[int]int32{},
	}
}

func (r *run) proc(id int32) *procState {
	ps := r.procs[id]
	if ps == nil {
		ps = &procState{id: id, thread: -1, node: -1}
		r.procs[id] = ps
		r.order = append(r.order, id)
	}
	return ps
}

// learn records the thread identity an edge proved for a proc.
func (r *run) learn(ps *procState, thread, node int) {
	if ps.id < 0 {
		return // engine-context edges carry no proc identity
	}
	ps.thread, ps.node = thread, node
	r.threadProc[thread] = ps.id
}

// Recorder consumes a trace stream and accumulates the per-run raw
// material the analyses in analyze.go work from. It opts into
// completion-edge events (trace.EdgeObserver), so attaching one to a
// session enables the emitters for every engine built afterwards.
type Recorder struct {
	runs []*run
	cur  *run
	exp  *Export
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// ObserveEdge opts the recorder into completion-edge events.
func (rec *Recorder) ObserveEdge() bool { return true }

// Emit consumes one event.
func (rec *Recorder) Emit(e trace.Event) {
	if e.Kind == trace.KRunBegin {
		rec.endRun()
		rec.cur = newRun(e.Arg, e.Aux == "shard")
		return
	}
	r := rec.cur
	if r == nil {
		// Events before any run boundary (a bare engine without sim.New's
		// KRunBegin) land in an implicit run.
		r = newRun(0, false)
		rec.cur = r
	}
	if e.Time > r.maxTime {
		r.maxTime = e.Time
	}
	switch e.Kind {
	case trace.KProcSpawn:
		ps := r.proc(e.Proc)
		ps.name = e.Name
		ps.lastResume = e.Time
	case trace.KProcPark:
		ps := r.proc(e.Proc)
		ps.parked = true
		ps.parkTime = e.Time
		ps.parkReason = e.Aux
	case trace.KProcUnpark:
		ps := r.proc(e.Proc)
		if ps.parked {
			ps.parked = false
			ps.lastResume = e.Time
			r.closeWait(ps, e.Time)
		}
	case trace.KProcExit:
		ps := r.proc(e.Proc)
		ps.exited = true
		ps.exitTime = e.Time
	case trace.KSpanBegin:
		ps := r.proc(e.Proc)
		ps.spans = append(ps.spans, spanRef{cat: e.Cat, name: e.Name})
	case trace.KSpanEnd:
		ps := r.proc(e.Proc)
		if n := len(ps.spans); n > 0 {
			ps.spans = ps.spans[:n-1]
		}
	case trace.KInstant:
		switch e.Cat {
		case trace.CatEdge:
			r.edge(e)
		case trace.CatComm:
			r.comm(e)
		}
	}
}

// edge consumes one completion-edge instant.
func (r *run) edge(e trace.Event) {
	r.edges++
	switch e.Name {
	case trace.EdgeBarArrive:
		ps := r.proc(e.Proc)
		th, _, node, _ := trace.UnpackEndpoints(e.Arg2)
		r.learn(ps, th, node)
		ps.pendingGen = genKey{site: e.Aux, seq: e.Arg}
		ps.hasPending = true
	case trace.EdgeBarRelease:
		ps := r.proc(e.Proc)
		th, _, node, _ := trace.UnpackEndpoints(e.Arg2)
		r.learn(ps, th, node)
		r.gens[genKey{site: e.Aux, seq: e.Arg}] = &genInfo{
			releaser: th, releaserNode: node, releaseTime: e.Time,
		}
	case trace.EdgeLockGrant:
		ps := r.proc(e.Proc)
		prev, acq, prevNode, acqNode := trace.UnpackEndpoints(e.Arg2)
		r.learn(ps, acq, acqNode)
		// The grant edge follows the contended wait that just ended on
		// this proc: attach the handoff blame to it.
		if w := ps.lastWait(); w != nil && w.end <= e.Time {
			w.class = ClassLock
			w.blamedThread, w.blamedNode = prev, prevNode
		}
	case trace.EdgeRetry:
		ps := r.proc(e.Proc)
		self, peer, selfNode, peerNode := trace.UnpackEndpoints(e.Arg2)
		r.learn(ps, self, selfNode)
		if w := ps.lastWait(); w != nil && w.end <= e.Time {
			w.class = ClassFaultRetry
			w.blamedThread, w.blamedNode = peer, peerNode
		}
	case trace.EdgeMsgMatch:
		ps := r.proc(e.Proc)
		src, dst, srcNode, dstNode := trace.UnpackEndpoints(e.Arg2)
		r.learn(ps, dst, dstNode)
		if w := ps.lastWait(); w != nil && w.end <= e.Time {
			w.class = ClassLateSender
			w.blamedThread, w.blamedNode = src, srcNode
		}
	case trace.EdgeCkpt:
		// The checkpointing thread just finished shipping its replica to
		// the buddy: the preceding transfer wait is checkpoint overhead,
		// blamed on the buddy holding the replica.
		ps := r.proc(e.Proc)
		owner, buddy, ownerNode, buddyNode := trace.UnpackEndpoints(e.Arg2)
		r.learn(ps, owner, ownerNode)
		if w := ps.lastWait(); w != nil && w.end <= e.Time {
			w.class = ClassCkpt
			w.blamedThread, w.blamedNode = buddy, buddyNode
		}
	case trace.EdgeRejoin:
		// A reincarnated thread re-entered membership: the restore pull
		// that preceded this edge is recovery time, blamed on the replica
		// holder the state came back from.
		ps := r.proc(e.Proc)
		buddy, rejoiner, buddyNode, rejoinerNode := trace.UnpackEndpoints(e.Arg2)
		r.learn(ps, rejoiner, rejoinerNode)
		if w := ps.lastWait(); w != nil && w.end <= e.Time {
			w.class = ClassRejoin
			w.blamedThread, w.blamedNode = buddy, buddyNode
		}
	case trace.EdgeDeliver:
		r.delivers++
		r.deliverB += e.Arg
	}
}

// comm consumes one communication-matrix instant.
func (r *run) comm(e trace.Event) {
	if e.Proc < 0 {
		return // engine-context fault visibility, no proc to classify for
	}
	ps := r.proc(e.Proc)
	if e.Aux == trace.ClassFault && e.Name == "timeout" {
		// The timeout instant follows the event-timeout wait that just
		// expired: the wait was a fault-retry stall, blamed on the peer.
		if w := ps.lastWait(); w != nil && w.end <= e.Time && w.reason == "event-timeout" {
			_, peer, _, peerNode := trace.UnpackEndpoints(e.Arg2)
			w.class = ClassFaultRetry
			w.blamedThread, w.blamedNode = peer, peerNode
		}
		return
	}
	ps.comm = lastComm{name: e.Name, class: e.Aux, pack: e.Arg2, time: e.Time, valid: true}
}

// lastWait returns the most recently completed wait, or nil.
func (ps *procState) lastWait() *wait {
	if n := len(ps.waits); n > 0 {
		return &ps.waits[n-1]
	}
	return nil
}

// closeWait completes the park interval that just ended at time end,
// classifying it. Modeled-work parks (Advance, Yield) are not waits.
func (r *run) closeWait(ps *procState, end int64) {
	reason := ps.parkReason
	if reason == "advance" || reason == "yield" {
		return
	}
	w := wait{begin: ps.parkTime, end: end, reason: reason,
		class: ClassOther, blamedThread: -1, blamedNode: -1}
	r.classify(ps, &w)
	ps.waits = append(ps.waits, w)
}

// classify assigns the wait's class — innermost open span first, then
// the park reason, then the communication instant that preceded the
// park — and resolves barrier/collective blame from the generation's
// release edge (already recorded: the release edge is emitted at the
// last arrival, before the waiters fire).
func (r *run) classify(ps *procState, w *wait) {
	if n := len(ps.spans); n > 0 {
		sp := ps.spans[n-1]
		switch sp.cat {
		case "upc":
			switch sp.name {
			case "barrier", "barrier-wait":
				r.classifyGen(ps, w, ClassBarrier)
				return
			case "collective":
				r.classifyGen(ps, w, ClassCollective)
				return
			case "lock":
				w.class = ClassLock // blame attached by the grant edge
				return
			case "ckpt":
				w.class = ClassCkpt // blame attached by the ckpt edge
				return
			}
		case "sim":
			switch sp.name {
			case "mutex", "semaphore":
				w.class = ClassLock
				return
			}
		}
	}
	switch w.reason {
	case "upc-lock", "mutex", "semaphore":
		w.class = ClassLock
		return
	case "barrier", "shard-barrier":
		w.class = ClassBarrier
		return
	case "mpi-recv":
		w.class = ClassLateSender // blame attached by the msg-match edge
		return
	case "uts-idle", "mailbox":
		w.class = ClassIdle
		return
	case "upc-revive", "uts-revive":
		// A dead worker parked for its node's scheduled revival: the whole
		// outage is a fault-category wait, blamed on the rejoin edge when
		// one fires.
		w.class = ClassRejoin
		return
	}
	// Event waits: an "event"/"event-timeout" park issued right after a
	// communication instant is that transfer's completion wait.
	if ps.comm.valid && ps.comm.time >= ps.lastResume && ps.comm.time <= w.begin {
		src, dst, srcNode, dstNode := trace.UnpackEndpoints(ps.comm.pack)
		peer, peerNode := dst, dstNode
		if ps.comm.name == "get" {
			peer, peerNode = src, srcNode
		}
		switch ps.comm.class {
		case trace.ClassSelf:
			w.class = ClassCommSelf
		case trace.ClassPSHM:
			w.class = ClassCommPSHM
		case trace.ClassLoopback:
			w.class = ClassCommLoop
		case trace.ClassNetwork:
			w.class = ClassCommNet
		case trace.ClassFault:
			w.class = ClassFaultRetry
		default:
			w.class = ClassOther
			return
		}
		w.blamedThread, w.blamedNode = peer, peerNode
		return
	}
	w.class = ClassOther
}

// classifyGen classifies a barrier/collective wait and blames the
// generation's releaser (the late arriver) when it is another thread.
func (r *run) classifyGen(ps *procState, w *wait, class string) {
	w.class = class
	if !ps.hasPending {
		return
	}
	w.gen, w.hasGen = ps.pendingGen, true
	ps.hasPending = false
	if g := r.gens[w.gen]; g != nil && g.releaser != ps.thread {
		w.blamedThread, w.blamedNode = g.releaser, g.releaserNode
	}
}

// endRun closes out the current run.
func (rec *Recorder) endRun() {
	if rec.cur != nil {
		rec.runs = append(rec.runs, rec.cur)
		rec.cur = nil
	}
}

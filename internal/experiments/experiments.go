// Package experiments regenerates every table and figure of the thesis's
// evaluation (the per-experiment index of DESIGN.md): each function runs
// the relevant benchmark sweep on the modeled platforms and renders the
// same rows or series the paper reports. The quick flag trades sweep
// breadth for runtime (smaller trees, no SMT points); the shapes are
// preserved either way.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps/ft"
	"repro/internal/apps/netbench"
	"repro/internal/apps/stream"
	"repro/internal/apps/uts"
	"repro/internal/causality"
	"repro/internal/perf"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topo"
	"repro/internal/trace"
)

const seed = 1

// Table31 regenerates Table 3.1 (twisted STREAM triad). With -shards
// (sim.SetShardWorkers > 0) it renders the sharded companion table
// instead: the ring-twisted triad across fabric nodes on the
// node-sharded parallel engine.
func Table31(w io.Writer) error {
	if sim.ShardWorkers() > 0 {
		return Table31Sharded(w)
	}
	rs, err := stream.Table31(seed)
	if err != nil {
		return err
	}
	paper := []string{"3.2", "7.2", "23.2", "23.4"}
	rows := make([][]string, len(rs))
	for i, r := range rs {
		rows[i] = []string{r.Name, fmt.Sprintf("%.1f", r.GBps), paper[i]}
	}
	report.Table(w, "Table 3.1: Performance of the Twisted STREAM Triad (GB/s)",
		[]string{"variant", "model", "paper"}, rows)
	return nil
}

// Table41 regenerates Table 4.1 (hybrid STREAM triad).
func Table41(w io.Writer) error {
	rs, err := stream.Table41(seed)
	if err != nil {
		return err
	}
	paper := map[string]string{
		"UPC 8":                    "24.5",
		"OpenMP 8":                 "23.7",
		"UPC*OpenMP 1*8 (unbound)": "13.9",
		"UPC*OpenMP 2*4":           "24.7",
		"UPC*OpenMP 4*2":           "24.7",
	}
	rows := make([][]string, len(rs))
	for i, r := range rs {
		rows[i] = []string{r.Name, fmt.Sprintf("%.1f", r.GBps), paper[r.Name]}
	}
	report.Table(w, "Table 4.1: Performance of the STREAM Triad (GB/s)",
		[]string{"configuration", "model", "paper"}, rows)
	return nil
}

// utsTree picks the tree size: the paper's 4.35M-node realization, or a
// ~400K-node tree for quick runs.
func utsTree(quick bool) uts.TreeSpec {
	if quick {
		return uts.Small(400000)
	}
	return uts.Paper4M()
}

// utsConfig builds a Figure 3.3 configuration point.
func utsConfig(conduit string, procs int, strat uts.Strategy, quick bool) uts.Config {
	gran := 8
	if conduit == "gige" {
		gran = 20
	}
	return uts.Config{
		Machine:     topo.Pyramid(),
		ConduitName: conduit,
		Threads:     procs,
		PerNode:     procs / 16, // the paper's fixed 16 nodes
		Strategy:    strat,
		Granularity: gran,
		Batch:       64,
		Tree:        utsTree(quick),
		Seed:        seed,
	}
}

// cpWaitPct reports the percentage of a run's critical path the
// causality analysis attributes to waiting — everything but compute:
// PSHM and network communication, fault recovery, scheduler idling.
// Each run feeds its own recorder, so the figure is deterministic at
// any sweep width.
func cpWaitPct(rec *causality.Recorder) float64 {
	exp := rec.Export()
	if exp.TotalMakespanNS == 0 {
		return 0
	}
	var wait int64
	for _, s := range exp.Totals {
		if s.Category != causality.CatCompute {
			wait += s.NS
		}
	}
	return 100 * float64(wait) / float64(exp.TotalMakespanNS)
}

// localStealPct computes Table 3.2's local-steal percentage from the
// trace-fed counters (equal to Result.LocalStealPct by construction).
func localStealPct(c *trace.Collector) float64 {
	counters := perf.CountersFromTrace(c)
	if s := counters.Get("steals"); s > 0 {
		return 100 * float64(counters.Get("steals_local")) / float64(s)
	}
	return 0
}

// stealSpread renders the per-thread steal-count spread of one run —
// p10/median/p90 across threads, from the trace's per-proc steal
// instants — so a strategy that concentrates stealing on a few threads
// is visible next to the aggregate local-steal percentage.
func stealSpread(c *trace.Collector) string {
	counts := perf.Int64s(c.CountByProc("uts", "steal"))
	if len(counts) == 0 {
		return "-"
	}
	p10, med, p90 := perf.Percentiles(counts)
	return fmt.Sprintf("%.0f/%.0f/%.0f", p10, med, p90)
}

// Figure33 regenerates Figure 3.3 (UTS parallel scalability on 16 nodes,
// InfiniBand and Ethernet panels). Every conduit x strategy x size point
// is an independent simulation; the sweep fans them out over the worker
// pool and renders from the index-ordered results.
func Figure33(w io.Writer, quick bool) error {
	conduits := []string{"ibv-ddr", "gige"}
	strats := uts.Strategies()
	sizes := []int{16, 32, 64, 128}
	results := make([]uts.Result, len(conduits)*len(strats)*len(sizes))
	err := sweep.Run(len(results), func(i int, tr trace.Tracer) error {
		ci := i / (len(strats) * len(sizes))
		si := i / len(sizes) % len(strats)
		pi := i % len(sizes)
		cfg := utsConfig(conduits[ci], sizes[pi], strats[si], quick)
		cfg.Tracer = tr
		r, err := uts.Run(cfg)
		results[i] = r
		return err
	})
	if err != nil {
		return err
	}
	for ci, conduit := range conduits {
		series := make([]report.Series, len(strats))
		for si, st := range strats {
			series[si].Label = st.String()
			for pi, procs := range sizes {
				r := results[(ci*len(strats)+si)*len(sizes)+pi]
				series[si].X = append(series[si].X, float64(procs))
				series[si].Y = append(series[si].Y, r.MNodesPerSec)
			}
		}
		report.Figure(w, fmt.Sprintf("Figure 3.3 (%s): UTS scalability, Mnodes/s vs processors", conduit),
			"procs", series)
		fmt.Fprintln(w)
	}
	return nil
}

// Table32 regenerates Table 3.2 (UTS profiling: overall improvement and
// local-steal percentages). With -shards (sim.SetShardWorkers > 0) it
// runs the traversal on the node-sharded parallel engine instead.
func Table32(w io.Writer, quick bool) error {
	if sim.ShardWorkers() > 0 {
		return Table32Sharded(w, quick)
	}
	type row struct {
		net   string
		procs int
	}
	shapes := []row{
		{"ibv-ddr", 32}, {"ibv-ddr", 64}, {"ibv-ddr", 128},
		{"gige", 32}, {"gige", 64}, {"gige", 128},
	}
	paper := [][]string{
		{"3.4%", "36.2", "59.0"}, {"7.1%", "58.1", "82.9"}, {"11.2%", "72.2", "90.9"},
		{"49.4%", "18.2", "57.8"}, {"66.5%", "40.5", "81.1"}, {"99.5%", "58.1", "89.7"},
	}
	// The steal percentages come from the trace stream, not the app's
	// ad-hoc counters: each run feeds its own Collector and the table
	// reads the aggregated "uts" counters back out of it. The two runs
	// per shape (baseline and optimized strategy) are flattened over the
	// worker pool: even indices baseline, odd optimized.
	type traced struct {
		r   uts.Result
		col *trace.Collector
		rec *causality.Recorder
	}
	runs := make([]traced, 2*len(shapes))
	err := sweep.Run(len(runs), func(i int, tr trace.Tracer) error {
		strat := uts.BaselineRR
		if i%2 == 1 {
			strat = uts.LocalRapid
		}
		col := trace.NewCollector()
		rec := causality.NewRecorder()
		cfg := utsConfig(shapes[i/2].net, shapes[i/2].procs, strat, quick)
		cfg.Tracer = trace.Tee(col, trace.Tee(rec, tr))
		r, err := uts.Run(cfg)
		runs[i] = traced{r, col, rec}
		return err
	})
	if err != nil {
		return err
	}
	rows := make([][]string, 0, len(shapes))
	for i, sh := range shapes {
		base, opt := runs[2*i], runs[2*i+1]
		improve := (base.r.Elapsed.Seconds()/opt.r.Elapsed.Seconds() - 1) * 100
		rows = append(rows, []string{
			fmt.Sprintf("%s %d/%d", sh.net, sh.procs, sh.procs/16),
			fmt.Sprintf("%.1f%%", improve),
			fmt.Sprintf("%.1f", localStealPct(base.col)),
			fmt.Sprintf("%.1f", localStealPct(opt.col)),
			stealSpread(opt.col),
			fmt.Sprintf("%.1f/%.1f", cpWaitPct(base.rec), cpWaitPct(opt.rec)),
			paper[i][0], paper[i][1], paper[i][2],
		})
	}
	report.Table(w, "Table 3.2: Profiling Results of UTS (16 nodes)",
		[]string{"config", "improvement", "local% base", "local% opt",
			"steals/thr p10/med/p90", "critical-path wait% b/o",
			"paper-impr", "paper-base%", "paper-opt%"}, rows)
	return nil
}

// fig34Layouts are the x-axis points of Figure 3.4: nodes*perNode.
func fig34Layouts() []struct{ Threads, PerNode int } {
	return []struct{ Threads, PerNode int }{
		{4, 1}, {8, 2}, {16, 2}, {32, 4}, {64, 8},
	}
}

// Figure34a regenerates Figure 3.4(a): all-to-all performance improvement
// over the base runtime for blocking puts.
func Figure34a(w io.Writer) error {
	cls, _ := ft.ClassByName("B")
	modes := []ft.ExchangeMode{ft.ExPSHM, ft.ExPSHMCast, ft.ExPthreads, ft.ExPthreadsCast}
	lays := fig34Layouts()
	// Per layout: the base-runtime reference plus the four modes.
	stride := 1 + len(modes)
	results := make([]ft.ExchangeResult, len(lays)*stride)
	err := sweep.Run(len(results), func(i int, tr trace.Tracer) error {
		lay := lays[i/stride]
		mode := ft.ExBase
		if m := i % stride; m > 0 {
			mode = modes[m-1]
		}
		r, err := ft.RunExchange(ft.ExchangeConfig{
			Machine: topo.Pyramid(), Class: cls, Threads: lay.Threads,
			PerNode: lay.PerNode, Mode: mode, Seed: seed, Tracer: tr,
		})
		results[i] = r
		return err
	})
	if err != nil {
		return err
	}
	series := make([]report.Series, len(modes))
	for li, lay := range lays {
		base := results[li*stride]
		for mi, m := range modes {
			r := results[li*stride+1+mi]
			series[mi].Label = m.String()
			series[mi].X = append(series[mi].X, float64(lay.Threads))
			series[mi].Y = append(series[mi].Y,
				(base.Total.Seconds()/r.Total.Seconds()-1)*100)
		}
	}
	report.Figure(w, "Figure 3.4(a): all-to-all improvement over base runtime (%), blocking upc_memput",
		"threads", series)
	return nil
}

// Figure34b regenerates Figure 3.4(b): async memput call vs wait time per
// runtime configuration.
func Figure34b(w io.Writer) error {
	cls, _ := ft.ClassByName("B")
	lays := fig34Layouts()
	modes := ft.ExchangeModes()
	results := make([]ft.ExchangeResult, len(lays)*len(modes))
	err := sweep.Run(len(results), func(i int, tr trace.Tracer) error {
		lay := lays[i/len(modes)]
		r, err := ft.RunExchange(ft.ExchangeConfig{
			Machine: topo.Pyramid(), Class: cls, Threads: lay.Threads,
			PerNode: lay.PerNode, Mode: modes[i%len(modes)], Async: true,
			Seed: seed, Tracer: tr,
		})
		results[i] = r
		return err
	})
	if err != nil {
		return err
	}
	var rows [][]string
	for li, lay := range lays {
		for mi, m := range modes {
			r := results[li*len(modes)+mi]
			rows = append(rows, []string{
				fmt.Sprintf("%d(%d*%d)", lay.Threads, lay.Threads/lay.PerNode, lay.PerNode),
				m.String(),
				fmt.Sprintf("%.3f", r.Call.Seconds()),
				fmt.Sprintf("%.3f", r.Wait.Seconds()),
			})
		}
	}
	report.Table(w, "Figure 3.4(b): async all-to-all, seconds in calls vs waits (upc_memput_async)",
		[]string{"nprocs", "runtime", "call(s)", "wait(s)"}, rows)
	return nil
}

// Figure42 regenerates Figure 4.2 (multi-link latency and flood
// bandwidth). panel is "a" (latency) or "b" (bandwidth).
func Figure42(w io.Writer, panel string, quick bool) error {
	links := []int{1, 2, 4, 8}
	var sizes []int64
	if panel == "a" {
		sizes = netbench.LatencySizes()
	} else {
		sizes = netbench.FloodSizes()
	}
	if quick {
		var trimmed []int64
		for i, s := range sizes {
			if i%2 == 0 {
				trimmed = append(trimmed, s)
			}
		}
		sizes = trimmed
	}
	type combo struct {
		links int
		pthr  bool
		label string
	}
	var combos []combo
	for _, pthr := range []bool{false, true} {
		for _, l := range links {
			if l == 1 && pthr {
				continue // 1-link pthreads == 1-link processes
			}
			label := fmt.Sprintf("%d link", l)
			if l > 1 {
				if pthr {
					label = fmt.Sprintf("%d link pthreads", l)
				} else {
					label = fmt.Sprintf("%d link processes", l)
				}
			}
			combos = append(combos, combo{l, pthr, label})
		}
	}
	ys := make([]float64, len(combos)*len(sizes))
	err := sweep.Run(len(ys), func(i int, tr trace.Tracer) error {
		c := combos[i/len(sizes)]
		cfg := netbench.Config{Links: c.links, Pthreads: c.pthr,
			Size: sizes[i%len(sizes)], Seed: seed, Tracer: tr}
		if panel == "a" {
			r, err := netbench.Latency(cfg)
			if err != nil {
				return err
			}
			ys[i] = r.RTT.Micros()
		} else {
			r, err := netbench.Flood(cfg)
			if err != nil {
				return err
			}
			ys[i] = r.BandwidthMBps
		}
		return nil
	})
	if err != nil {
		return err
	}
	series := make([]report.Series, len(combos))
	for ci, c := range combos {
		series[ci].Label = c.label
		for szi, sz := range sizes {
			series[ci].X = append(series[ci].X, float64(sz))
			series[ci].Y = append(series[ci].Y, ys[ci*len(sizes)+szi])
		}
	}
	title := "Figure 4.2(a): multi-link round-trip latency (us) vs size"
	if panel == "b" {
		title = "Figure 4.2(b): multi-link flood bandwidth (MB/s) vs size"
	}
	report.Figure(w, title, "bytes", series)
	return nil
}

// utsRunQuick runs one UTS configuration and reports throughput in
// Mnodes/s (helper for the summary; tr is the sweep job's tracer).
func utsRunQuick(conduit string, procs int, optimized bool, quick bool, tr trace.Tracer) (float64, error) {
	strat := uts.BaselineRR
	if optimized {
		strat = uts.LocalRapid
	}
	cfg := utsConfig(conduit, procs, strat, quick)
	cfg.Tracer = tr
	r, err := uts.Run(cfg)
	if err != nil {
		return 0, err
	}
	return r.MNodesPerSec, nil
}

// step is one named entry of the experiment index.
type step struct {
	name string
	fn   func() error
}

func steps(w io.Writer, quick bool) []step {
	return []step{
		{"Table 3.1", func() error { return Table31(w) }},
		{"Figure 3.1b", func() error { return FigureXlate(w) }},
		{"Figure 3.3", func() error { return Figure33(w, quick) }},
		{"Table 3.2", func() error { return Table32(w, quick) }},
		{"Figure 3.4(a)", func() error { return Figure34a(w) }},
		{"Figure 3.4(b)", func() error { return Figure34b(w) }},
		{"Figure 4.2(a)", func() error { return Figure42(w, "a", quick) }},
		{"Figure 4.2(b)", func() error { return Figure42(w, "b", quick) }},
		{"Table 4.1", func() error { return Table41(w) }},
		{"Figure 4.4", func() error { return Figure44(w, quick) }},
		{"Figure 4.5", func() error { return Figure45(w, quick) }},
		{"Figure 4.6", func() error { return Figure46(w, quick) }},
		{"Summary", func() error { return Summary(w, quick) }},
	}
}

// All runs every experiment in order, writing each to w.
func All(w io.Writer, quick bool) error {
	for _, s := range steps(w, quick) {
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Only runs the single experiment whose index name matches name (the
// upc-experiments -only flag, used by CI to publish one figure as an
// artifact without the full sweep).
func Only(w io.Writer, name string, quick bool) error {
	var names []string
	for _, s := range steps(w, quick) {
		if s.name == name {
			if err := s.fn(); err != nil {
				return fmt.Errorf("%s: %w", s.name, err)
			}
			return nil
		}
		names = append(names, s.name)
	}
	return fmt.Errorf("unknown experiment %q (have %v)", name, names)
}

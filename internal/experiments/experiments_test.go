package experiments

import (
	"strings"
	"testing"
)

func TestTable31Renders(t *testing.T) {
	var b strings.Builder
	if err := Table31(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 3.1", "UPC baseline", "UPC with cast", "paper"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTable41Renders(t *testing.T) {
	var b strings.Builder
	if err := Table41(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Table 4.1", "UPC 8", "1*8 (unbound)", "24.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure34aRenders(t *testing.T) {
	var b strings.Builder
	if err := Figure34a(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 3.4(a)", "PSHM", "pthreads + cast"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigure42Renders(t *testing.T) {
	var b strings.Builder
	if err := Figure42(&b, "a", true); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Figure 4.2(a)", "1 link", "8 link pthreads"} {
		if !strings.Contains(out, want) {
			t.Errorf("latency output missing %q", want)
		}
	}
	b.Reset()
	if err := Figure42(&b, "b", true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "flood bandwidth") {
		t.Error("bandwidth panel missing title")
	}
}

func TestUTSHelpers(t *testing.T) {
	cfg := utsConfig("gige", 32, 0, true)
	if cfg.Granularity != 20 {
		t.Errorf("Ethernet granularity = %d, want the paper's 20", cfg.Granularity)
	}
	cfg = utsConfig("ibv-ddr", 32, 0, true)
	if cfg.Granularity != 8 {
		t.Errorf("InfiniBand granularity = %d, want the paper's 8", cfg.Granularity)
	}
	if cfg.PerNode != 2 {
		t.Errorf("32 procs on 16 nodes => 2 per node, got %d", cfg.PerNode)
	}
	full := utsTree(false)
	if n, _ := full.CountSequential(); n < 4_000_000 {
		t.Errorf("paper tree realized only %d nodes", n)
	}
}

func TestFig34LayoutsMatchPaperLabels(t *testing.T) {
	// Figure 3.4(b) x labels: 4(4*1), 8(4*2), 16(8*2), 32(8*4), 64(8*8).
	want := [][2]int{{4, 1}, {8, 2}, {16, 2}, {32, 4}, {64, 8}}
	got := fig34Layouts()
	if len(got) != len(want) {
		t.Fatalf("layout count %d", len(got))
	}
	for i, w := range want {
		if got[i].Threads != w[0] || got[i].PerNode != w[1] {
			t.Errorf("layout %d = %+v, want %v", i, got[i], w)
		}
	}
}

func TestFtHelperGrids(t *testing.T) {
	ts := ftThreads(true)
	if ts[len(ts)-1] != 64 {
		t.Errorf("quick grid must stop at 64: %v", ts)
	}
	ts = ftThreads(false)
	if ts[len(ts)-1] != 128 {
		t.Errorf("full grid must include the SMT point: %v", ts)
	}
	if perNodeFor(4) != 1 || perNodeFor(64) != 8 || perNodeFor(128) != 16 {
		t.Error("perNodeFor mapping wrong")
	}
	cfgs := fig46Configs(false)
	if len(cfgs) <= len(fig46Configs(true)) {
		t.Error("full Figure 4.6 sweep must add configurations")
	}
}

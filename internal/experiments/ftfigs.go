package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps/ft"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/topo"
)

// ftThreads lists the Lehman strong-scaling points: 1..64 cores on 8 nodes
// plus the 128-thread SMT point unless quick.
func ftThreads(quick bool) []int {
	ts := []int{1, 2, 4, 8, 16, 32, 64}
	if !quick {
		ts = append(ts, 128)
	}
	return ts
}

func perNodeFor(threads int) int {
	if threads <= 8 {
		return 1
	}
	return threads / 8
}

// Figure44 regenerates Figure 4.4: per-phase speedups of the FT benchmark
// on Lehman, 1 to 128 threads (the 128-thread points run two SMT threads
// per core).
func Figure44(w io.Writer, quick bool) error {
	cls, _ := ft.ClassByName("B")
	phases := []string{"evolve", "transpose", "fft1d", "fft2d", "comm-call"}
	labels := map[string]string{
		"evolve": "Evolve", "transpose": "Local Transpose",
		"fft1d": "FFT 1D", "fft2d": "FFT 2D", "comm-call": "All-to-All (split-phase)",
	}
	base := map[string]sim.Duration{}
	series := make([]report.Series, len(phases))
	for i, ph := range phases {
		series[i].Label = labels[ph]
	}
	for _, threads := range ftThreads(quick) {
		r, err := ft.Run(ft.Config{
			Machine: topo.Lehman(), Class: cls, Variant: ft.UPCProcesses,
			Threads: threads, PerNode: perNodeFor(threads), Seed: seed,
		})
		if err != nil {
			return err
		}
		for i, ph := range phases {
			d := r.Phases[ph]
			if ph == "comm-call" {
				d += r.Phases["comm-wait"]
			}
			if threads == 1 {
				base[ph] = d
			}
			speedup := 0.0
			if d > 0 {
				speedup = float64(base[ph]) / float64(d)
			}
			series[i].X = append(series[i].X, float64(threads))
			series[i].Y = append(series[i].Y, speedup)
		}
	}
	report.Figure(w, "Figure 4.4: NAS FT runtime performance breakdown (speedup vs 1 thread, Lehman)",
		"threads", series)
	return nil
}

// Figure45 regenerates Figure 4.5: time in communication calls of the
// split-phase implementation, per platform.
func Figure45(w io.Writer, quick bool) error {
	cls, _ := ft.ClassByName("B")
	type platform struct {
		name  string
		mach  *topo.Machine
		nodes int
		cores []int
	}
	plats := []platform{
		{"Lehman (8 nodes)", topo.Lehman(), 8, []int{8, 16, 32, 64, 128}},
		{"Pyramid (16 nodes)", topo.Pyramid(), 16, []int{16, 32, 64, 128}},
	}
	for _, pl := range plats {
		cores := pl.cores
		if quick {
			cores = cores[:len(cores)-1] // skip the most expensive point
		}
		series := []report.Series{
			{Label: "MPI"}, {Label: "UPC (processes)"},
			{Label: "UPC (pthreads)"}, {Label: "UPC*Threads (hybrid)"},
		}
		for _, total := range cores {
			per := total / pl.nodes
			if per < 1 {
				continue
			}
			x := float64(total)
			run := func(v ft.Variant, threads, perNode, subs int) (float64, error) {
				r, err := ft.Run(ft.Config{
					Machine: pl.mach, Class: cls, Variant: v, Impl: ft.SplitPhase,
					Threads: threads, PerNode: perNode, SubThreads: subs, Seed: seed,
				})
				if err != nil {
					return 0, err
				}
				return r.Comm.Seconds(), nil
			}
			y, err := run(ft.MPIFortran, total, per, 0)
			if err != nil {
				return err
			}
			series[0].X = append(series[0].X, x)
			series[0].Y = append(series[0].Y, y)
			y, err = run(ft.UPCProcesses, total, per, 0)
			if err != nil {
				return err
			}
			series[1].X = append(series[1].X, x)
			series[1].Y = append(series[1].Y, y)
			y, err = run(ft.UPCPthreads, total, per, 0)
			if err != nil {
				return err
			}
			series[2].X = append(series[2].X, x)
			series[2].Y = append(series[2].Y, y)
			// Hybrid: two masters per node, sub-threads filling the rest.
			masters := 2 * pl.nodes
			subs := total / masters
			if subs < 1 {
				masters, subs = total, 1
			}
			y, err = run(ft.HybridOMP, masters, masters/pl.nodes, subs)
			if err != nil {
				return err
			}
			series[3].X = append(series[3].X, x)
			series[3].Y = append(series[3].Y, y)
		}
		report.Figure(w, fmt.Sprintf("Figure 4.5: split-phase communication time (s), %s", pl.name),
			"cores", series)
		fmt.Fprintln(w)
	}
	return nil
}

// fig46Configs are the UPC*Threads configurations of Figure 4.6 on 8
// Lehman nodes (masters * sub-threads).
func fig46Configs(quick bool) []struct{ U, S int } {
	cfgs := []struct{ U, S int }{
		{8, 1}, {8, 2}, {16, 1}, {16, 2}, {32, 1}, {32, 2}, {16, 4}, {8, 8},
	}
	if !quick {
		cfgs = append(cfgs, struct{ U, S int }{32, 4}, struct{ U, S int }{64, 2}, struct{ U, S int }{16, 8})
	}
	return cfgs
}

// Figure46 regenerates Figure 4.6(a,b): relative performance of the
// sub-thread variants over process UPC, for split-phase and overlap.
func Figure46(w io.Writer, quick bool) error {
	cls, _ := ft.ClassByName("B")
	for _, impl := range []ft.Impl{ft.SplitPhase, ft.Overlap} {
		// Baselines: process UPC at each total-thread count.
		base := map[int]float64{}
		variants := []ft.Variant{ft.HybridOMP, ft.HybridCilk, ft.HybridPool, ft.UPCPthreads}
		series := make([]report.Series, len(variants))
		for i, v := range variants {
			series[i].Label = v.String()
		}
		for _, c := range fig46Configs(quick) {
			total := c.U * c.S
			if _, ok := base[total]; !ok {
				r, err := ft.Run(ft.Config{
					Machine: topo.Lehman(), Class: cls, Variant: ft.UPCProcesses,
					Impl: impl, Threads: total, PerNode: perNodeFor(total), Seed: seed,
				})
				if err != nil {
					return err
				}
				base[total] = r.Elapsed.Seconds()
			}
			x := float64(c.U*1000 + c.S) // encodes the U*S label
			for i, v := range variants {
				var r ft.Result
				var err error
				if v == ft.UPCPthreads {
					r, err = ft.Run(ft.Config{
						Machine: topo.Lehman(), Class: cls, Variant: v, Impl: impl,
						Threads: total, PerNode: perNodeFor(total), Seed: seed,
					})
				} else {
					r, err = ft.Run(ft.Config{
						Machine: topo.Lehman(), Class: cls, Variant: v, Impl: impl,
						Threads: c.U, PerNode: perNodeFor(c.U), SubThreads: c.S, Seed: seed,
					})
				}
				if err != nil {
					return err
				}
				series[i].X = append(series[i].X, x)
				series[i].Y = append(series[i].Y, (base[total]/r.Elapsed.Seconds()-1)*100)
			}
		}
		report.Figure(w,
			fmt.Sprintf("Figure 4.6 (%v): improvement over UPC processes (%%); x = masters*1000+subs", impl),
			"U*S", series)
		fmt.Fprintln(w)
	}
	return nil
}

// Summary prints the thesis's two headline conclusions against the model.
func Summary(w io.Writer, quick bool) error {
	cls, _ := ft.ClassByName("B")
	pure, err := ft.Run(ft.Config{
		Machine: topo.Lehman(), Class: cls, Variant: ft.UPCProcesses,
		Threads: 64, PerNode: 8, Seed: seed,
	})
	if err != nil {
		return err
	}
	hyb, err := ft.Run(ft.Config{
		Machine: topo.Lehman(), Class: cls, Variant: ft.HybridOMP,
		Threads: 16, PerNode: 2, SubThreads: 4, Seed: seed,
	})
	if err != nil {
		return err
	}
	ftGain := pure.Elapsed.Seconds() / hyb.Elapsed.Seconds()

	base, err := utsRunQuick("gige", 128, false, quick)
	if err != nil {
		return err
	}
	opt, err := utsRunQuick("gige", 128, true, quick)
	if err != nil {
		return err
	}
	utsGain := opt / base

	report.Table(w, "Headline conclusions (paper vs model)",
		[]string{"claim", "paper", "model"},
		[][]string{
			{"NAS FT hybrid UPC*threads speedup over process UPC (64 cores)",
				"1.4x", fmt.Sprintf("%.2fx", ftGain)},
			{"UTS thread-group speedup on Ethernet, 8-way SMP nodes",
				"2.0x", fmt.Sprintf("%.2fx", utsGain)},
		})
	return nil
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps/ft"
	"repro/internal/causality"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topo"
	"repro/internal/trace"
)

// ftThreads lists the Lehman strong-scaling points: 1..64 cores on 8 nodes
// plus the 128-thread SMT point unless quick.
func ftThreads(quick bool) []int {
	ts := []int{1, 2, 4, 8, 16, 32, 64}
	if !quick {
		ts = append(ts, 128)
	}
	return ts
}

func perNodeFor(threads int) int {
	if threads <= 8 {
		return 1
	}
	return threads / 8
}

// Figure44 regenerates Figure 4.4: per-phase speedups of the FT benchmark
// on Lehman, 1 to 128 threads (the 128-thread points run two SMT threads
// per core).
func Figure44(w io.Writer, quick bool) error {
	cls, _ := ft.ClassByName("B")
	phases := []string{"evolve", "transpose", "fft1d", "fft2d", "comm-call"}
	labels := map[string]string{
		"evolve": "Evolve", "transpose": "Local Transpose",
		"fft1d": "FFT 1D", "fft2d": "FFT 2D", "comm-call": "All-to-All (split-phase)",
	}
	threads := ftThreads(quick)
	results := make([]ft.Result, len(threads))
	recs := make([]*causality.Recorder, len(threads))
	err := sweep.Run(len(threads), func(i int, tr trace.Tracer) error {
		recs[i] = causality.NewRecorder()
		r, err := ft.Run(ft.Config{
			Machine: topo.Lehman(), Class: cls, Variant: ft.UPCProcesses,
			Threads: threads[i], PerNode: perNodeFor(threads[i]), Seed: seed,
			Tracer: trace.Tee(recs[i], tr),
		})
		results[i] = r
		return err
	})
	if err != nil {
		return err
	}
	base := map[string]sim.Duration{}
	series := make([]report.Series, len(phases))
	for i, ph := range phases {
		series[i].Label = labels[ph]
	}
	for ti, threads := range threads {
		r := results[ti]
		for i, ph := range phases {
			d := r.Phases[ph]
			if ph == "comm-call" {
				d += r.Phases["comm-wait"]
			}
			if threads == 1 {
				base[ph] = d
			}
			speedup := 0.0
			if d > 0 {
				speedup = float64(base[ph]) / float64(d)
			}
			series[i].X = append(series[i].X, float64(threads))
			series[i].Y = append(series[i].Y, speedup)
		}
	}
	report.Figure(w, "Figure 4.4: NAS FT runtime performance breakdown (speedup vs 1 thread, Lehman)",
		"threads", series)
	// The critical-path share of each point: how much of the makespan
	// the causality analysis attributes to waiting rather than compute.
	fmt.Fprintln(w)
	cpRows := make([][]string, len(threads))
	for i, th := range threads {
		cpRows[i] = []string{fmt.Sprintf("%d", th), fmt.Sprintf("%.1f%%", cpWaitPct(recs[i]))}
	}
	report.Table(w, "Figure 4.4 (supplement): critical-path wait share",
		[]string{"threads", "critical-path wait%"}, cpRows)
	return nil
}

// Figure45 regenerates Figure 4.5: time in communication calls of the
// split-phase implementation, per platform.
func Figure45(w io.Writer, quick bool) error {
	cls, _ := ft.ClassByName("B")
	type platform struct {
		name  string
		mach  *topo.Machine
		nodes int
		cores []int
	}
	plats := []platform{
		{"Lehman (8 nodes)", topo.Lehman(), 8, []int{8, 16, 32, 64, 128}},
		{"Pyramid (16 nodes)", topo.Pyramid(), 16, []int{16, 32, 64, 128}},
	}
	for _, pl := range plats {
		cores := pl.cores
		if quick {
			cores = cores[:len(cores)-1] // skip the most expensive point
		}
		// Four runs per core count (MPI, process UPC, pthread UPC, and the
		// hybrid with two masters per node and sub-threads filling the
		// rest), flattened over the worker pool.
		type spec struct {
			v                      ft.Variant
			threads, perNode, subs int
		}
		var totals []int
		var specs []spec
		for _, total := range cores {
			per := total / pl.nodes
			if per < 1 {
				continue
			}
			masters := 2 * pl.nodes
			subs := total / masters
			if subs < 1 {
				masters, subs = total, 1
			}
			totals = append(totals, total)
			specs = append(specs,
				spec{ft.MPIFortran, total, per, 0},
				spec{ft.UPCProcesses, total, per, 0},
				spec{ft.UPCPthreads, total, per, 0},
				spec{ft.HybridOMP, masters, masters / pl.nodes, subs})
		}
		comm := make([]float64, len(specs))
		err := sweep.Run(len(specs), func(i int, tr trace.Tracer) error {
			s := specs[i]
			r, err := ft.Run(ft.Config{
				Machine: pl.mach, Class: cls, Variant: s.v, Impl: ft.SplitPhase,
				Threads: s.threads, PerNode: s.perNode, SubThreads: s.subs,
				Seed: seed, Tracer: tr,
			})
			comm[i] = r.Comm.Seconds()
			return err
		})
		if err != nil {
			return err
		}
		series := []report.Series{
			{Label: "MPI"}, {Label: "UPC (processes)"},
			{Label: "UPC (pthreads)"}, {Label: "UPC*Threads (hybrid)"},
		}
		for ti, total := range totals {
			for k := range series {
				series[k].X = append(series[k].X, float64(total))
				series[k].Y = append(series[k].Y, comm[ti*4+k])
			}
		}
		report.Figure(w, fmt.Sprintf("Figure 4.5: split-phase communication time (s), %s", pl.name),
			"cores", series)
		fmt.Fprintln(w)
	}
	return nil
}

// fig46Configs are the UPC*Threads configurations of Figure 4.6 on 8
// Lehman nodes (masters * sub-threads).
func fig46Configs(quick bool) []struct{ U, S int } {
	cfgs := []struct{ U, S int }{
		{8, 1}, {8, 2}, {16, 1}, {16, 2}, {32, 1}, {32, 2}, {16, 4}, {8, 8},
	}
	if !quick {
		cfgs = append(cfgs, struct{ U, S int }{32, 4}, struct{ U, S int }{64, 2}, struct{ U, S int }{16, 8})
	}
	return cfgs
}

// Figure46 regenerates Figure 4.6(a,b): relative performance of the
// sub-thread variants over process UPC, for split-phase and overlap.
func Figure46(w io.Writer, quick bool) error {
	cls, _ := ft.ClassByName("B")
	for _, impl := range []ft.Impl{ft.SplitPhase, ft.Overlap} {
		cfgs := fig46Configs(quick)
		variants := []ft.Variant{ft.HybridOMP, ft.HybridCilk, ft.HybridPool, ft.UPCPthreads}
		// Baselines: process UPC at each distinct total-thread count, in
		// first-appearance order; then every config x variant run. All are
		// independent, so one sweep covers baselines and variants alike.
		var totals []int
		baseIdx := map[int]int{}
		for _, c := range cfgs {
			if total := c.U * c.S; baseIdx[total] == 0 {
				totals = append(totals, total)
				baseIdx[total] = len(totals) // 1-based to distinguish absent
			}
		}
		nb := len(totals)
		elapsed := make([]float64, nb+len(cfgs)*len(variants))
		err := sweep.Run(len(elapsed), func(i int, tr trace.Tracer) error {
			fcfg := ft.Config{Machine: topo.Lehman(), Class: cls, Impl: impl,
				Seed: seed, Tracer: tr}
			if i < nb {
				fcfg.Variant = ft.UPCProcesses
				fcfg.Threads = totals[i]
				fcfg.PerNode = perNodeFor(totals[i])
			} else {
				c := cfgs[(i-nb)/len(variants)]
				v := variants[(i-nb)%len(variants)]
				fcfg.Variant = v
				if v == ft.UPCPthreads {
					fcfg.Threads = c.U * c.S
					fcfg.PerNode = perNodeFor(c.U * c.S)
				} else {
					fcfg.Threads = c.U
					fcfg.PerNode = perNodeFor(c.U)
					fcfg.SubThreads = c.S
				}
			}
			r, err := ft.Run(fcfg)
			elapsed[i] = r.Elapsed.Seconds()
			return err
		})
		if err != nil {
			return err
		}
		series := make([]report.Series, len(variants))
		for i, v := range variants {
			series[i].Label = v.String()
		}
		for ci, c := range cfgs {
			total := c.U * c.S
			x := float64(c.U*1000 + c.S) // encodes the U*S label
			base := elapsed[baseIdx[total]-1]
			for i := range variants {
				y := elapsed[nb+ci*len(variants)+i]
				series[i].X = append(series[i].X, x)
				series[i].Y = append(series[i].Y, (base/y-1)*100)
			}
		}
		report.Figure(w,
			fmt.Sprintf("Figure 4.6 (%v): improvement over UPC processes (%%); x = masters*1000+subs", impl),
			"U*S", series)
		fmt.Fprintln(w)
	}
	return nil
}

// Summary prints the thesis's two headline conclusions against the model.
func Summary(w io.Writer, quick bool) error {
	cls, _ := ft.ClassByName("B")
	var pure, hyb ft.Result
	var utsBase, utsOpt float64
	// The four headline runs are independent; each job writes a distinct
	// slot, so they parallelize like any other sweep.
	err := sweep.Run(4, func(i int, tr trace.Tracer) error {
		var err error
		switch i {
		case 0:
			pure, err = ft.Run(ft.Config{
				Machine: topo.Lehman(), Class: cls, Variant: ft.UPCProcesses,
				Threads: 64, PerNode: 8, Seed: seed, Tracer: tr,
			})
		case 1:
			hyb, err = ft.Run(ft.Config{
				Machine: topo.Lehman(), Class: cls, Variant: ft.HybridOMP,
				Threads: 16, PerNode: 2, SubThreads: 4, Seed: seed, Tracer: tr,
			})
		case 2:
			utsBase, err = utsRunQuick("gige", 128, false, quick, tr)
		case 3:
			utsOpt, err = utsRunQuick("gige", 128, true, quick, tr)
		}
		return err
	})
	if err != nil {
		return err
	}
	ftGain := pure.Elapsed.Seconds() / hyb.Elapsed.Seconds()
	utsGain := utsOpt / utsBase

	report.Table(w, "Headline conclusions (paper vs model)",
		[]string{"claim", "paper", "model"},
		[][]string{
			{"NAS FT hybrid UPC*threads speedup over process UPC (64 cores)",
				"1.4x", fmt.Sprintf("%.2fx", ftGain)},
			{"UTS thread-group speedup on Ethernet, 8-way SMP nodes",
				"2.0x", fmt.Sprintf("%.2fx", utsGain)},
		})
	return nil
}

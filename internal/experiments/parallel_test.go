package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/apps/uts"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// renderAll captures what the upc-stream and upc-uts style runs would
// print at the given sweep width, together with the TraceDigest their
// -trace session would hash. It restores the previous width and default
// tracer on return.
func renderAll(t *testing.T, workers int, render func(w *strings.Builder) error) (string, uint64, int64) {
	t.Helper()
	prevWorkers := sweep.Workers()
	prevTracer := trace.Default()
	dg := trace.NewDigest()
	trace.SetDefault(dg)
	sweep.SetWorkers(workers)
	defer func() {
		sweep.SetWorkers(prevWorkers)
		trace.SetDefault(prevTracer)
	}()
	var b strings.Builder
	if err := render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String(), dg.Sum64(), dg.Events()
}

// TestParallelSweepDeterminism is the -parallel determinism gate as a
// unit test: the upc-stream sweeps (Tables 3.1 and 4.1) and a scaled-down
// upc-uts sweep must print byte-identical output and hash byte-identical
// trace streams at -parallel=1 and -parallel=8.
func TestParallelSweepDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison")
	}
	streamRender := func(w *strings.Builder) error {
		if err := Table31(w); err != nil {
			return err
		}
		return Table41(w)
	}
	// The upc-uts path at unit-test scale: the Figure 3.3 sweep shape
	// (conduit x strategy x size grid through sweep.Run) on tiny trees.
	utsRender := func(w *strings.Builder) error {
		strats := uts.Strategies()
		type point struct {
			conduit string
			procs   int
		}
		pts := []point{{"ibv-ddr", 16}, {"ibv-ddr", 32}, {"gige", 16}, {"gige", 32}}
		results := make([]uts.Result, len(pts)*len(strats))
		err := sweep.Run(len(results), func(i int, tr trace.Tracer) error {
			pt := pts[i/len(strats)]
			cfg := utsConfig(pt.conduit, pt.procs, strats[i%len(strats)], true)
			cfg.Tree = uts.Small(20000)
			cfg.Tracer = tr
			r, err := uts.Run(cfg)
			results[i] = r
			return err
		})
		if err != nil {
			return err
		}
		for i, r := range results {
			fmt.Fprintf(w, "%d %d %.6f\n", i, r.Nodes, r.MNodesPerSec)
		}
		return nil
	}
	for _, tc := range []struct {
		name   string
		render func(w *strings.Builder) error
	}{
		{"stream", streamRender},
		{"uts", utsRender},
	} {
		t.Run(tc.name, func(t *testing.T) {
			out1, dig1, n1 := renderAll(t, 1, tc.render)
			out8, dig8, n8 := renderAll(t, 8, tc.render)
			if out1 != out8 {
				t.Errorf("stdout differs between -parallel=1 and -parallel=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", out1, out8)
			}
			if n1 != n8 {
				t.Errorf("trace event count differs: %d vs %d", n1, n8)
			}
			if dig1 != dig8 {
				t.Errorf("TraceDigest differs: %016x vs %016x (%d events)", dig1, dig8, n1)
			}
		})
	}
}

// Sharded experiment variants: when the -shards flag selects the
// node-sharded parallel engine (sim.SetShardWorkers > 0), Table31 and
// Table32 delegate here. Each point is one internally-parallel
// simulation, so the points run as a plain sequential loop — no
// sweep.Run fan-out on top — and the rendered rows, the TraceDigest and
// the metrics manifest are byte-identical at any -shards value by the
// lane-invariant construction of sim.ShardGroup.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/apps/stream"
	"repro/internal/apps/uts"
	"repro/internal/causality"
	"repro/internal/report"
	"repro/internal/trace"
)

// Table31Sharded renders the sharded companion of Table 3.1: the
// ring-twisted triad re-localization kernel across fabric-node counts,
// every node one engine lane.
func Table31Sharded(w io.Writer) error {
	shapes := []int{2, 4, 8}
	rows := make([][]string, 0, len(shapes))
	for _, nodes := range shapes {
		r, err := stream.RunTwistedSharded(stream.ShardConfig{
			Nodes:          nodes,
			ThreadsPerNode: 4,
			ElemsPerThrd:   1 << 16,
			Seed:           seed,
		})
		if err != nil {
			return err
		}
		rows = append(rows, []string{r.Name, fmt.Sprintf("%.1f", r.GBps),
			fmt.Sprintf("%.3f ms", r.Elapsed.Seconds()*1e3)})
	}
	report.Table(w, "Table 3.1 (sharded): Ring-Twisted STREAM Triad Across Nodes (GB/s)",
		[]string{"configuration", "model", "kernel"}, rows)
	return nil
}

// Table32Sharded renders Table 3.2 on the sharded engine: the same
// profiling comparison (baseline ring vs local stealing with rapid
// diffusion), with the steal statistics read back from the trace
// stream exactly like the legacy table.
func Table32Sharded(w io.Writer, quick bool) error {
	type row struct {
		net   string
		procs int
	}
	shapes := []row{
		{"ibv-ddr", 32}, {"ibv-ddr", 64}, {"ibv-ddr", 128},
		{"gige", 32}, {"gige", 64}, {"gige", 128},
	}
	type traced struct {
		r   uts.Result
		col *trace.Collector
		rec *causality.Recorder
	}
	runs := make([]traced, 2*len(shapes))
	for i := range runs {
		strat := uts.BaselineRR
		if i%2 == 1 {
			strat = uts.LocalRapid
		}
		col := trace.NewCollector()
		rec := causality.NewRecorder()
		cfg := utsConfig(shapes[i/2].net, shapes[i/2].procs, strat, quick)
		cfg.Tracer = trace.Tee(col, rec)
		r, err := uts.RunSharded(cfg)
		if err != nil {
			return err
		}
		runs[i] = traced{r, col, rec}
	}
	rows := make([][]string, 0, len(shapes))
	for i, sh := range shapes {
		base, opt := runs[2*i], runs[2*i+1]
		improve := (base.r.Elapsed.Seconds()/opt.r.Elapsed.Seconds() - 1) * 100
		rows = append(rows, []string{
			fmt.Sprintf("%s %d/%d", sh.net, sh.procs, sh.procs/16),
			fmt.Sprintf("%.1f%%", improve),
			fmt.Sprintf("%.1f", localStealPct(base.col)),
			fmt.Sprintf("%.1f", localStealPct(opt.col)),
			stealSpread(opt.col),
			fmt.Sprintf("%.1f/%.1f", cpWaitPct(base.rec), cpWaitPct(opt.rec)),
		})
	}
	report.Table(w, "Table 3.2 (sharded): Profiling Results of UTS (16 nodes, sharded engine)",
		[]string{"config", "improvement", "local% base", "local% opt",
			"steals/thr p10/med/p90", "critical-path wait% b/o"}, rows)
	return nil
}

package experiments

import (
	"fmt"
	"io"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/upc"
)

// FigureXlate renders the shared-pointer translation companion to Table
// 3.1: the same class of fine-grained shared element traffic whose
// software decode cost the table's un-cast rows expose, re-run under the
// three translation regimes of the machine model (full software decode,
// a per-thread translation cache, and Serres-style hardware-assisted
// translation selected by the "+xcache"/"+xassist" preset suffixes).
// The kernel's computed checksum is regime-independent — the regimes
// change only the virtual cost of each decode — so the figure reports
// the modeled speedup over the software baseline together with the
// exact hit/miss accounting the trace counters carry.
func FigureXlate(w io.Writer) error {
	modes := []struct{ preset, label string }{
		{"pyramid", "software decode"},
		{"pyramid+xcache", "translation cache"},
		{"pyramid+xassist", "hardware assist"},
	}
	results := make([]xlateResult, len(modes))
	err := sweep.Run(len(modes), func(i int, tr trace.Tracer) error {
		m, ok := topo.ByName(modes[i].preset)
		if !ok {
			return fmt.Errorf("unknown preset %q", modes[i].preset)
		}
		r, err := xlateKernel(m, tr)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return err
	}
	base := results[0]
	rows := make([][]string, len(modes))
	for i, r := range results {
		if r.check != base.check {
			return fmt.Errorf("xlate: %s checksum %d != software %d",
				modes[i].label, r.check, base.check)
		}
		hitPct := 0.0
		if r.accesses > 0 {
			hitPct = 100 * float64(r.hits) / float64(r.accesses)
		}
		rows[i] = []string{
			modes[i].label,
			fmt.Sprintf("%.1f", r.elapsed.Seconds()*1e6),
			fmt.Sprintf("%.2f", base.elapsed.Seconds()/r.elapsed.Seconds()),
			fmt.Sprintf("%d", r.accesses),
			fmt.Sprintf("%.1f", hitPct),
		}
	}
	report.Table(w, "Figure 3.1b: Fine-Grained Shared Access Under Translation Regimes",
		[]string{"regime", "time (us)", "speedup", "xlates", "hit %"}, rows)
	return nil
}

// xlateResult is one regime's measurement: the kernel-region virtual
// time, the summed translation counters, and the data checksum that must
// be identical across regimes.
type xlateResult struct {
	elapsed                sim.Duration
	accesses, hits, misses int64
	check                  int64
}

const (
	xlateElems  = 1 << 14 // shared int64s, block-cyclic over 8 threads
	xlateBlock  = 64      // layout block (elements)
	xlatePasses = 4       // rotating sweep passes per thread
)

// xlateKernel runs the fine-grained kernel on machine m: 8 pthreads on
// one node (every partition castable, so no network cost masks the
// translation charge), each sweeping a rotating window of the whole
// array with ReadElem and writing back its own partition with WriteElem.
// Sequential access within layout blocks gives the translation cache a
// realistic mostly-hitting stream while the rotation still forces
// capacity traffic across passes.
func xlateKernel(m *topo.Machine, tr trace.Tracer) (xlateResult, error) {
	cfg := upc.Config{
		Machine:        m,
		Threads:        8,
		ThreadsPerNode: 8,
		Backend:        upc.Pthreads,
		Seed:           seed,
		Tracer:         tr,
	}
	rt, err := upc.NewRuntime(cfg)
	if err != nil {
		return xlateResult{}, err
	}
	elapsed := make([]sim.Duration, cfg.Threads)
	checks := make([]int64, cfg.Threads)
	rt.Start(func(th *upc.Thread) {
		s := upc.Alloc[int64](th, xlateElems, 8, xlateBlock)
		loc := s.Local(th)
		for j := range loc {
			loc[j] = int64(s.GlobalIndex(th.ID, j))
		}
		th.Barrier()
		t0 := th.Now()
		span := xlateElems / th.N
		sum := int64(0)
		for p := 0; p < xlatePasses; p++ {
			start := (th.ID*span + p*3*xlateBlock) % xlateElems
			for k := 0; k < span; k++ {
				sum += upc.ReadElem(th, s, (start+k)%xlateElems)
			}
		}
		for k := 0; k < span; k++ {
			i := s.GlobalIndex(th.ID, k)
			//upcvet:sharedrace -- each thread rewrites only its own partition (GlobalIndex(th.ID, k)); the probe sweep is read-only cost measurement
			upc.WriteElem(th, s, i, upc.ReadElem(th, s, i)+1)
		}
		th.Barrier()
		elapsed[th.ID] = th.Now() - t0
		checks[th.ID] = sum
	})
	if err := rt.Eng.Run(); err != nil {
		return xlateResult{}, err
	}
	var r xlateResult
	r.elapsed = elapsed[0] // barrier-bracketed: identical on every thread
	for i := 0; i < cfg.Threads; i++ {
		a, h, ms := rt.Thread(i).XlateStats()
		r.accesses += a
		r.hits += h
		r.misses += ms
		r.check += checks[i]
	}
	return r, nil
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestXlateFigureDeterminism is the new figure's determinism gate: the
// rendered table and the trace stream (which carries the xlate_access /
// xlate_hit / xlate_miss counter flushes that feed metrics manifests)
// must be byte-identical at -parallel=1 and -parallel=8, and unchanged
// by the -shards engine setting.
func TestXlateFigureDeterminism(t *testing.T) {
	render := func(w *strings.Builder) error { return FigureXlate(w) }
	out1, dig1, n1 := renderAll(t, 1, render)
	out8, dig8, n8 := renderAll(t, 8, render)
	if out1 != out8 {
		t.Errorf("figure differs between -parallel=1 and -parallel=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", out1, out8)
	}
	if n1 != n8 || dig1 != dig8 {
		t.Errorf("trace stream differs: %016x/%d vs %016x/%d events", dig1, n1, dig8, n8)
	}

	prev := sim.ShardWorkers()
	sim.SetShardWorkers(4)
	defer sim.SetShardWorkers(prev)
	outS, digS, nS := renderAll(t, 1, render)
	if out1 != outS {
		t.Errorf("figure differs under -shards:\n--- plain ---\n%s\n--- shards ---\n%s", out1, outS)
	}
	if n1 != nS || dig1 != digS {
		t.Errorf("trace stream differs under -shards: %016x/%d vs %016x/%d events", dig1, n1, digS, nS)
	}
}

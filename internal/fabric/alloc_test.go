package fabric

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// The allocation-regression tests pin the untraced one-sided hot path
// at zero allocations per operation: operation records, flows and
// delivery legs all come from free lists, and the blocking wrappers
// release their records internally. testing.AllocsPerRun runs inside
// the simulated process — the engine is otherwise idle, so any count it
// sees is the operation's own.

func TestBlockingPutNoAlloc(t *testing.T) {
	e := sim.New(1)
	c := NewCluster(e, topo.Pyramid(), QDRInfiniBand())
	src := c.MustEndpoint(0)
	dst := c.MustEndpoint(1)
	per := -1.0
	e.Go("p", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			src.Put(p, dst, 8, nil)
		}
		per = testing.AllocsPerRun(200, func() { src.Put(p, dst, 8, nil) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if per != 0 {
		t.Errorf("blocking Put allocates %v allocs/op, want 0", per)
	}
	if out := c.PoolStats().Outstanding(); out != 0 {
		t.Errorf("pool leak: %d records outstanding after quiescence", out)
	}
}

func TestBlockingGetNoAlloc(t *testing.T) {
	e := sim.New(1)
	c := NewCluster(e, topo.Pyramid(), QDRInfiniBand())
	src := c.MustEndpoint(0)
	dst := c.MustEndpoint(1)
	per := -1.0
	e.Go("p", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			src.Get(p, dst, 8, nil)
		}
		per = testing.AllocsPerRun(200, func() { src.Get(p, dst, 8, nil) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if per != 0 {
		t.Errorf("blocking Get allocates %v allocs/op, want 0", per)
	}
	if out := c.PoolStats().Outstanding(); out != 0 {
		t.Errorf("pool leak: %d records outstanding after quiescence", out)
	}
}

func TestShardPutNoAlloc(t *testing.T) {
	old := sim.ShardWorkers()
	sim.SetShardWorkers(1)
	defer sim.SetShardWorkers(old)
	g := sim.NewShardGroup(1, 2, trace.Default())
	net := NewShardNet(g, QDRInfiniBand())
	per := -1.0
	sink := 0
	apply := func() { sink++ }
	g.Lane(0).Go("putter", func(p *sim.Proc) {
		pt := net.Port(0)
		for i := 0; i < 64; i++ {
			pt.Put(p, 1, 8, apply)
		}
		per = testing.AllocsPerRun(200, func() { pt.Put(p, 1, 8, apply) })
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if per != 0 {
		t.Errorf("shard Put allocates %v allocs/op, want 0", per)
	}
	if out := net.PoolStats().Add(g.ArrivalPoolStats()).Outstanding(); out != 0 {
		t.Errorf("pool leak: %d records outstanding after quiescence", out)
	}
}

// idleFaults is a fault model whose hooks are armed but never fire:
// every message is delivered, no node is ever down. It pins the cost of
// having the fault plumbing consulted on the hot path.
type idleFaults struct{}

func (idleFaults) NodeDown(int) bool { return false }
func (idleFaults) MessageVerdict(int, int, int64) (Verdict, sim.Duration) {
	return VerdictDeliver, 0
}

// TestFaultArmedPutNoAlloc pins the armed fault hooks on the one-sided
// hot path: with a model installed, every Put pays the per-message
// verdict and down checks — and must still run at zero allocations.
func TestFaultArmedPutNoAlloc(t *testing.T) {
	e := sim.New(1)
	c := NewCluster(e, topo.Pyramid(), QDRInfiniBand())
	c.SetFaultModel(idleFaults{})
	src := c.MustEndpoint(0)
	dst := c.MustEndpoint(1)
	putPer, getPer := -1.0, -1.0
	e.Go("p", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			src.Put(p, dst, 8, nil)
			src.Get(p, dst, 8, nil)
		}
		putPer = testing.AllocsPerRun(200, func() { src.Put(p, dst, 8, nil) })
		getPer = testing.AllocsPerRun(200, func() { src.Get(p, dst, 8, nil) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if putPer != 0 {
		t.Errorf("fault-armed Put allocates %v allocs/op, want 0", putPer)
	}
	if getPer != 0 {
		t.Errorf("fault-armed Get allocates %v allocs/op, want 0", getPer)
	}
	if out := c.PoolStats().Outstanding(); out != 0 {
		t.Errorf("pool leak: %d records outstanding after quiescence", out)
	}
}

// TestShardPutChurnArmedNoAlloc pins the membership-epoch tag on the
// sharded path: once any outage is booked the group stamps every
// message with its endpoints' issue-time incarnations and evaluates the
// stale fence at arrival. An outage on a lane the traffic never touches
// arms all of that without dropping anything — and Put must stay at
// zero allocations per op.
func TestShardPutChurnArmedNoAlloc(t *testing.T) {
	old := sim.ShardWorkers()
	sim.SetShardWorkers(1)
	defer sim.SetShardWorkers(old)
	g := sim.NewShardGroup(1, 3, trace.Default())
	g.SetOutage(2, sim.Time(sim.Second), sim.Time(2*sim.Second))
	net := NewShardNet(g, QDRInfiniBand())
	per := -1.0
	sink := 0
	apply := func() { sink++ }
	g.Lane(0).Go("putter", func(p *sim.Proc) {
		pt := net.Port(0)
		for i := 0; i < 64; i++ {
			pt.Put(p, 1, 8, apply)
		}
		per = testing.AllocsPerRun(200, func() { pt.Put(p, 1, 8, apply) })
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if per != 0 {
		t.Errorf("churn-armed shard Put allocates %v allocs/op, want 0", per)
	}
}

func TestSharedLinkTransferNoAlloc(t *testing.T) {
	e := sim.New(1)
	l := sim.NewSharedLink(e, 1e9)
	per := -1.0
	e.Go("p", func(p *sim.Proc) {
		for i := 0; i < 64; i++ {
			l.Transfer(p, 1000)
		}
		per = testing.AllocsPerRun(200, func() { l.Transfer(p, 1000) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if per != 0 {
		t.Errorf("SharedLink.Transfer allocates %v allocs/op, want 0", per)
	}
	if out := l.PoolStats().Outstanding(); out != 0 {
		t.Errorf("pool leak: %d records outstanding after quiescence", out)
	}
}

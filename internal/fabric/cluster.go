package fabric

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// workScale converts seconds of core work into flow units so that the
// fluid engine's byte-scale epsilon is negligible (1 unit = 1 ns of work).
const workScale = 1e9

// Cluster instantiates a machine model's resources on a simulation engine:
// one core link per physical core (capacity = SMT combined throughput, per
// computation capped at 1.0 so a lone thread runs at full speed), one
// memory-controller link per socket, and per-node NIC egress/ingress
// links.
type Cluster struct {
	Eng     *sim.Engine
	Mach    *topo.Machine
	Net     *Net
	Conduit Conduit

	cores   []*Link // [node*coresPerNode + core]
	mem     []*Link // [node*socketsPerNode + socket]
	egress  []*Link // [node]
	ingress []*Link // [node]

	// faults is the installed fault model (nil when fault injection is
	// off, which keeps the message hooks to a single pointer check).
	faults FaultModel

	// edges is true when the engine's tracer opted into completion-edge
	// instants (trace.EdgeObserver), cached at construction so delivery
	// legs pay a single bool test.
	edges bool

	// Operation free lists (see pool.go).
	putPool sim.FreeList[putOp]
	getPool sim.FreeList[getOp]
	memPool sim.FreeList[memOp]
}

// NewCluster wires machine m onto engine e with the given conduit. It
// panics on an invalid machine (a construction-time programming error).
func NewCluster(e *sim.Engine, m *topo.Machine, cond Conduit) *Cluster {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{Eng: e, Mach: m, Net: NewNet(e), Conduit: cond,
		edges: trace.WantsEdge(e.Tracer())}
	nCores := m.TotalCores()
	c.cores = make([]*Link, nCores)
	for i := range c.cores {
		c.cores[i] = NewLink(fmt.Sprintf("core%d", i), m.SMTThroughput*workScale)
	}
	nSock := m.Nodes * m.SocketsPerNode
	c.mem = make([]*Link, nSock)
	for i := range c.mem {
		c.mem[i] = NewLink(fmt.Sprintf("mem%d", i), m.MemBWSocket)
	}
	c.egress = make([]*Link, m.Nodes)
	c.ingress = make([]*Link, m.Nodes)
	for i := 0; i < m.Nodes; i++ {
		c.egress[i] = NewLink(fmt.Sprintf("nic-tx%d", i), cond.NICBW)
		c.egress[i].Beta = cond.NICBeta
		c.ingress[i] = NewLink(fmt.Sprintf("nic-rx%d", i), cond.NICBW)
		c.ingress[i].Beta = cond.NICBeta
	}
	return c
}

// CoreLink reports the core resource for a hardware place.
func (c *Cluster) CoreLink(pl topo.Place) *Link {
	return c.cores[pl.GlobalCore(c.Mach)]
}

// MemLink reports the memory-controller resource of a socket.
func (c *Cluster) MemLink(node, socket int) *Link {
	return c.mem[node*c.Mach.SocketsPerNode+socket]
}

// Compute charges seconds of core work at place pl, contending with any
// other computation on the same core (SMT sharing).
func (c *Cluster) Compute(p *sim.Proc, pl topo.Place, seconds float64) {
	if seconds <= 0 {
		return
	}
	c.Net.Transfer(p, int64(seconds*workScale+0.5), workScale, c.CoreLink(pl))
}

// MemRate reports the effective point-to-point copy *payload* bandwidth
// between two places on the same node, before contention. A copy both
// reads and writes, so the payload rate is half the controller bandwidth,
// NUMA-penalized across sockets.
func (c *Cluster) MemRate(from, to topo.Place) float64 {
	if !topo.SameNode(from, to) {
		return 0
	}
	if from.Socket == to.Socket {
		return c.Mach.MemBWSocket / 2
	}
	return c.Mach.MemBWSocket / c.Mach.NUMAFactor / 2
}

// MemCopy moves size bytes between two places on one node through the
// socket memory controllers, charging the per-operation overhead first.
// Cross-socket copies traverse both controllers and pay the NUMA factor.
// Placements spanning nodes yield a typed error (only the network moves
// data between nodes).
func (c *Cluster) MemCopy(p *sim.Proc, from, to topo.Place, size int64, overhead sim.Duration) error {
	if !topo.SameNode(from, to) {
		return crossNodeErr("memcopy", from, to)
	}
	if overhead > 0 {
		p.Advance(overhead)
	}
	if size <= 0 {
		return nil
	}
	if c.Eng.Tracing() {
		p.TraceInstant("fabric", "memcopy", socketAux(from, to), size, 0)
	}
	if from.Socket == to.Socket {
		// A same-socket copy reads and writes through one controller:
		// 2x the payload crosses the link.
		c.Net.Transfer(p, 2*size, 0, c.MemLink(from.Node, from.Socket))
		return nil
	}
	// Cross-socket: the payload crosses the interconnect once, touching
	// both controllers; the flow cap encodes the 2x read+write traffic and
	// the NUMA penalty.
	cap := c.Mach.MemBWSocket / c.Mach.NUMAFactor / 2
	c.Net.Transfer(p, size, cap,
		c.MemLink(from.Node, from.Socket), c.MemLink(to.Node, to.Socket))
	return nil
}

// crossNodeErr builds the typed error of a copy spanning nodes.
func crossNodeErr(op string, from, to topo.Place) error {
	return &Error{
		Op:     op,
		Detail: fmt.Sprintf("node %d to node %d", from.Node, to.Node),
		Err:    ErrCrossNode,
	}
}

// MemCopyAsync starts an intra-node copy without blocking: the caller is
// charged only the per-operation overhead; the returned handle's events
// fire when the copy drains (apply, which may be nil, runs then).
// Placements spanning nodes yield a typed error and no handle.
func (c *Cluster) MemCopyAsync(p *sim.Proc, from, to topo.Place, size int64, overhead sim.Duration, apply func()) (*NetOp, error) {
	if !topo.SameNode(from, to) {
		return nil, crossNodeErr("memcopy", from, to)
	}
	if overhead > 0 {
		p.Advance(overhead)
	}
	if c.Eng.Tracing() {
		p.TraceInstant("fabric", "memcopy", socketAux(from, to), size, 0)
	}
	o := c.getMemOp()
	o.apply = apply
	if from.Socket == to.Socket {
		// Read + write through one controller: 2x the payload.
		c.Net.StartAction(2*size, 0, o, c.MemLink(from.Node, from.Socket))
	} else {
		cap := c.Mach.MemBWSocket / c.Mach.NUMAFactor / 2
		c.Net.StartAction(size, cap, o,
			c.MemLink(from.Node, from.Socket), c.MemLink(to.Node, to.Socket))
	}
	return &o.op, nil
}

// socketAux labels a copy's socket relation for the trace.
func socketAux(from, to topo.Place) string {
	if from.Socket == to.Socket {
		return "same-socket"
	}
	return "cross-socket"
}

// MemTouch charges streaming access of size bytes at a place whose backing
// memory lives on homeSocket of the same node (e.g. first-touch placement),
// without a distinct destination. Used by bandwidth-bound kernels.
func (c *Cluster) MemTouch(p *sim.Proc, at topo.Place, homeSocket int, size int64) {
	if size <= 0 {
		return
	}
	if at.Socket == homeSocket {
		c.Net.Transfer(p, size, 0, c.MemLink(at.Node, at.Socket))
		return
	}
	cap := c.Mach.MemBWSocket / c.Mach.NUMAFactor
	c.Net.Transfer(p, size, cap, c.MemLink(at.Node, homeSocket))
}

// Endpoint is a network attachment point: one per process in the
// process-based backend, one per node in the pthreads backend (threads
// share the node's single connection, the paper's central contrast).
type Endpoint struct {
	c     *Cluster
	node  int
	gapTx sim.Server // injection-port serialization
	gapRx sim.Server // receive-processing serialization
	conn  *Link      // this connection's bandwidth

	// Shared marks a connection used by multiple execution contexts (the
	// pthreads backend). A shared connection serializes the per-message CPU
	// overheads too — the runtime's network lock is held while a message is
	// processed — whereas per-process connections pay them concurrently.
	Shared bool
}

// MarkShared declares the endpoint a multi-context connection (pthreads
// backend). Concurrent streams on one connection can together exceed the
// single-stream rate — Figure 4.2(b) shows eight pthread link-pairs
// approaching (but not reaching) the NIC limit — so the connection
// aggregate widens to 95% of NIC bandwidth, with each stream still capped
// at ConnBW (NIC congestion and the lock's pin serialization are what
// keep a shared connection below per-process connections in practice).
func (ep *Endpoint) MarkShared() {
	ep.Shared = true
	if agg := 0.95 * ep.c.Conduit.NICBW; agg > ep.conn.Capacity {
		ep.conn.Capacity = agg
	}
}

// zeroCopyThreshold is the message size above which the runtime switches
// to pinned zero-copy RDMA: the network lock is then held only for setup,
// not for a bounce-buffer copy of the payload.
const zeroCopyThreshold = 64 << 10

// txOccupancy reports the injection-port occupancy of one message of the
// given size. A shared connection additionally holds the network lock for
// the per-message CPU overhead and — below the zero-copy threshold — the
// bounce-buffer copy at PinRate, which serializes concurrent mid-size
// injections (the Figure 4.2a pthread latency effect).
func (ep *Endpoint) txOccupancy(size int64) sim.Duration {
	if ep.Shared {
		locked := size
		if locked > zeroCopyThreshold {
			locked = zeroCopyThreshold
		}
		return ep.c.Conduit.MsgGap + ep.c.Conduit.SendOverhead +
			sim.TransferTime(locked, ep.c.Conduit.PinRate)
	}
	return ep.c.Conduit.MsgGap
}

// rxOccupancy reports the receive-processing occupancy of one message.
func (ep *Endpoint) rxOccupancy() sim.Duration {
	if ep.Shared {
		return ep.c.Conduit.RecvOverhead * 2
	}
	return ep.c.Conduit.RecvOverhead
}

// NewEndpoint creates a network connection on the given node. A node
// outside the machine yields a typed error wrapping ErrBadNode.
func (c *Cluster) NewEndpoint(node int) (*Endpoint, error) {
	if node < 0 || node >= c.Mach.Nodes {
		return nil, &Error{
			Op:     "endpoint",
			Detail: fmt.Sprintf("node %d of %d", node, c.Mach.Nodes),
			Err:    ErrBadNode,
		}
	}
	return &Endpoint{
		c:    c,
		node: node,
		conn: NewLink(fmt.Sprintf("conn-n%d", node), c.Conduit.ConnBW),
	}, nil
}

// MustEndpoint is NewEndpoint for construction-time wiring whose node
// index is known-good by layout arithmetic; it panics on the typed error
// a bad index would return.
func (c *Cluster) MustEndpoint(node int) *Endpoint {
	ep, err := c.NewEndpoint(node)
	if err != nil {
		panic(err)
	}
	return ep
}

// Node reports the endpoint's node.
func (ep *Endpoint) Node() int { return ep.node }

// NetOp is a handle to an in-flight one-sided operation.
type NetOp struct {
	// Local fires when the source buffer is reusable (payload injected).
	Local sim.Event
	// Remote fires when the payload has been applied at the target.
	Remote sim.Event
	// owner is the pooled operation record carrying this handle, nil for
	// standalone handles (MemCopyAsync on an unpooled path, tests).
	owner releasable
}

// WaitLocal suspends p until the source buffer is reusable.
func (op *NetOp) WaitLocal(p *sim.Proc) { op.Local.Wait(p) }

// WaitRemote suspends p until the operation completed at the target.
func (op *NetOp) WaitRemote(p *sim.Proc) { op.Remote.Wait(p) }

// Release returns the operation's pooled record to its free list once
// the caller is done with the handle. After Release the handle must not
// be touched: the record is recycled as soon as any in-flight machinery
// drains, and a later wait or poll would observe an unrelated
// operation. Releasing is optional — an unreleased record is simply
// garbage collected — and idempotent.
func (op *NetOp) Release() {
	if op.owner != nil {
		op.owner.release()
	}
}

// PutAsync injects a one-sided put of size bytes from ep to dst. The
// caller is charged the send overhead and its share of injection
// serialization; the returned handle's Remote event fires when the data is
// applied at the target (apply, which may be nil, runs then, in engine
// context). Same-node endpoints take the conduit's loopback path.
func (ep *Endpoint) PutAsync(p *sim.Proc, dst *Endpoint, size int64, apply func()) *NetOp {
	cond := &ep.c.Conduit
	o := ep.c.getPutOp()
	o.ep, o.dst, o.size, o.apply = ep, dst, size, apply
	if !ep.Shared {
		p.Advance(cond.SendOverhead)
	}
	ep.gapTx.Delay(p, ep.txOccupancy(size))
	if ep.c.Eng.Tracing() {
		p.TraceInstant("fabric", "put", cond.Name, size, int64(ep.conn.Active()))
	}

	// Fault injection decides the message's fate at injection time, in
	// deterministic proc order. The payload still drains from the source
	// either way (the NIC did the work), so Local always fires.
	o.verdict = VerdictDeliver
	extra := sim.Duration(0)
	if ep.c.faults != nil {
		o.verdict, extra = ep.c.messageVerdict(ep.node, dst.node, size)
	}

	if dst.node == ep.node {
		o.lat = cond.LoopbackLatency
	} else {
		o.lat = cond.Latency
	}
	if o.verdict == VerdictDelay {
		o.lat += extra
	}
	// o is the flow's completion action; it schedules the delivery legs
	// when the payload drains (inline for empty payloads).
	if dst.node == ep.node {
		// Network loopback still runs through the HCA: it consumes the
		// node's NIC resources, which is exactly what PSHM avoids.
		ep.c.Net.StartAction(size, cond.LoopbackBW, o,
			ep.conn, ep.c.egress[ep.node], ep.c.ingress[ep.node])
	} else {
		ep.c.Net.StartAction(size, cond.ConnBW, o,
			ep.conn, ep.c.egress[ep.node], ep.c.ingress[dst.node])
	}
	return &o.op
}

// Put is the blocking form of PutAsync: it returns after remote completion
// has been acknowledged back to the initiator (one extra latency). The
// operation record is released internally, so the blocking path is fully
// pooled.
func (ep *Endpoint) Put(p *sim.Proc, dst *Endpoint, size int64, apply func()) {
	op := ep.PutAsync(p, dst, size, apply)
	op.WaitRemote(p)
	if dst.node != ep.node {
		p.Advance(ep.c.Conduit.Latency) // completion acknowledgement
	}
	op.Release()
}

// GetAsync injects a one-sided get of size bytes from src into ep's node.
// The request travels to src as a small control message; the payload
// streams back on src's connection. apply (may be nil) runs at delivery.
func (ep *Endpoint) GetAsync(p *sim.Proc, src *Endpoint, size int64, apply func()) *NetOp {
	cond := &ep.c.Conduit
	o := ep.c.getGetOp()
	o.ep, o.src, o.size, o.apply = ep, src, size, apply
	if !ep.Shared {
		p.Advance(cond.SendOverhead)
	}
	ep.gapTx.Delay(p, ep.txOccupancy(size))
	if ep.c.Eng.Tracing() {
		p.TraceInstant("fabric", "get", cond.Name, size, int64(src.conn.Active()))
	}

	// One verdict covers the whole round trip: a drop loses the request
	// leg (no payload ever starts), a delay or duplicate applies to the
	// returning payload. Drawn at injection time, in deterministic proc
	// order.
	o.verdict = VerdictDeliver
	extra := sim.Duration(0)
	if ep.c.faults != nil {
		o.verdict, extra = ep.c.messageVerdict(ep.node, src.node, size)
	}

	o.sameNode = src.node == ep.node
	reqLat := cond.Latency
	o.lat = cond.Latency
	if o.sameNode {
		reqLat = cond.LoopbackLatency
		o.lat = cond.LoopbackLatency
	}
	if o.verdict == VerdictDelay {
		o.lat += extra
	}
	o.stage = gReq
	ep.c.Eng.AfterAction(reqLat, o)
	return &o.op
}

// Get is the blocking form of GetAsync. The operation record is released
// internally, so the blocking path is fully pooled.
func (ep *Endpoint) Get(p *sim.Proc, src *Endpoint, size int64, apply func()) {
	op := ep.GetAsync(p, src, size, apply)
	op.WaitRemote(p)
	op.Release()
}

// RTT performs a control-message round trip from ep to dst (e.g. a lock
// acquire or an AM request/reply), charging overheads and injection gaps on
// both sides, and suspends p for its duration.
func (ep *Endpoint) RTT(p *sim.Proc, dst *Endpoint) {
	ep.Get(p, dst, 8, nil)
}

// BarrierCost estimates the network portion of a dissemination barrier
// across the given number of nodes: ceil(log2(nodes)) rounds of small
// messages, plus one intra-node combine.
func (c *Cluster) BarrierCost(nodes int) sim.Duration {
	cond := &c.Conduit
	intra := 2 * cond.LoopbackLatency
	if nodes <= 1 {
		return intra
	}
	rounds := sim.Duration(math.Ceil(math.Log2(float64(nodes))))
	perRound := cond.Latency + cond.SendOverhead + cond.RecvOverhead + cond.MsgGap
	return intra + rounds*perRound
}

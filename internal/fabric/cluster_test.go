package fabric

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

func lehmanCluster(seed int64) (*sim.Engine, *Cluster) {
	e := sim.New(seed)
	return e, NewCluster(e, topo.Lehman(), QDRInfiniBand())
}

func TestComputeAloneRunsAtFullSpeed(t *testing.T) {
	e, c := lehmanCluster(1)
	var done sim.Time
	e.Go("p", func(p *sim.Proc) {
		c.Compute(p, topo.Place{}, 0.001) // 1 ms of work
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(sim.Millisecond); abs(done-want) > 10*sim.Microsecond {
		t.Errorf("1ms of work took %v", done)
	}
}

func TestComputeSMTSharing(t *testing.T) {
	// Two threads on SMT siblings of one core: each 1ms of work, combined
	// throughput 1.2 => both finish at ~2/1.2 = 1.667ms.
	e, c := lehmanCluster(1)
	var worst sim.Time
	for s := 0; s < 2; s++ {
		pl := topo.Place{SMT: s}
		e.Go(fmt.Sprintf("t%d", s), func(p *sim.Proc) {
			c.Compute(p, pl, 0.001)
			if p.Now() > worst {
				worst = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.FromSeconds(0.002 / 1.2)
	if abs(worst-want) > 20*sim.Microsecond {
		t.Errorf("SMT pair finished at %v, want ~%v", worst, want)
	}
}

func TestComputeSeparateCoresIndependent(t *testing.T) {
	e, c := lehmanCluster(1)
	var worst sim.Time
	for i := 0; i < 2; i++ {
		pl := topo.Place{Core: i}
		e.Go(fmt.Sprintf("t%d", i), func(p *sim.Proc) {
			c.Compute(p, pl, 0.001)
			if p.Now() > worst {
				worst = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(sim.Millisecond); abs(worst-want) > 10*sim.Microsecond {
		t.Errorf("independent cores finished at %v, want ~%v", worst, want)
	}
}

func TestMemCopyLocalVsCrossSocket(t *testing.T) {
	e, c := lehmanCluster(1)
	size := int64(64 << 20)
	var local, cross sim.Time
	e.Go("local", func(p *sim.Proc) {
		start := p.Now()
		c.MemCopy(p, topo.Place{Socket: 0}, topo.Place{Socket: 0, Core: 1}, size, 0)
		local = p.Now() - start
	})
	e.Go("cross", func(p *sim.Proc) {
		p.Advance(sim.Second) // avoid contention with the local copy
		start := p.Now()
		c.MemCopy(p, topo.Place{Socket: 0}, topo.Place{Socket: 1}, size, 0)
		cross = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ratio := float64(cross) / float64(local)
	if ratio < 1.2 || ratio > 1.45 {
		t.Errorf("cross-socket/local copy ratio = %.2f, want ~NUMA factor 1.3", ratio)
	}
}

func TestMemCopyAcrossNodesError(t *testing.T) {
	e, c := lehmanCluster(1)
	var blockErr, asyncErr error
	e.Go("p", func(p *sim.Proc) {
		blockErr = c.MemCopy(p, topo.Place{Node: 0}, topo.Place{Node: 1}, 100, 0)
		_, asyncErr = c.MemCopyAsync(p, topo.Place{Node: 0}, topo.Place{Node: 1}, 100, 0, nil)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		err  error
	}{{"MemCopy", blockErr}, {"MemCopyAsync", asyncErr}} {
		if !errors.Is(tc.err, ErrCrossNode) {
			t.Errorf("cross-node %s error = %v, want ErrCrossNode", tc.name, tc.err)
		}
		var fe *Error
		if !errors.As(tc.err, &fe) || fe.Op != "memcopy" {
			t.Errorf("cross-node %s error %v is not a typed *fabric.Error with Op memcopy", tc.name, tc.err)
		}
	}
}

func TestPutLatencyAndBandwidthRegimes(t *testing.T) {
	// A small blocking put should cost a few microseconds (latency-bound);
	// a 1 MB put should approach size/ConnBW (bandwidth-bound).
	e, c := lehmanCluster(1)
	ep0 := c.MustEndpoint(0)
	ep1 := c.MustEndpoint(1)
	var small, large sim.Duration
	e.Go("p", func(p *sim.Proc) {
		start := p.Now()
		ep0.Put(p, ep1, 8, nil)
		small = p.Now() - start
		start = p.Now()
		ep0.Put(p, ep1, 1<<20, nil)
		large = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if small < 2*sim.Microsecond || small > 10*sim.Microsecond {
		t.Errorf("8B blocking put = %v, want one-digit microseconds", small)
	}
	floor := sim.TransferTime(1<<20, c.Conduit.ConnBW)
	if large < floor {
		t.Errorf("1MB put = %v, below bandwidth floor %v", large, floor)
	}
	if large > floor+20*sim.Microsecond {
		t.Errorf("1MB put = %v, far above bandwidth floor %v", large, floor)
	}
}

func TestGetRoundTrip(t *testing.T) {
	e, c := lehmanCluster(1)
	ep0 := c.MustEndpoint(0)
	ep1 := c.MustEndpoint(1)
	applied := false
	var rtt sim.Duration
	e.Go("p", func(p *sim.Proc) {
		start := p.Now()
		ep0.Get(p, ep1, 8, func() { applied = true })
		rtt = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !applied {
		t.Error("get apply callback did not run")
	}
	// Small-message get RTT: two latencies plus overheads — the 4–5 us
	// regime of Figure 4.2(a).
	if rtt < 3*sim.Microsecond || rtt > 8*sim.Microsecond {
		t.Errorf("8B get RTT = %v, want ~4-6us", rtt)
	}
}

func TestSharedConnectionSerializesInjection(t *testing.T) {
	// Eight flooders on ONE endpoint (pthreads backend) must take longer
	// for small messages than eight flooders on eight endpoints
	// (process backend), because the injection gap serializes.
	run := func(shared bool) sim.Time {
		e, c := lehmanCluster(1)
		dst := make([]*Endpoint, 8)
		for i := range dst {
			dst[i] = c.MustEndpoint(1)
		}
		var eps []*Endpoint
		if shared {
			one := c.MustEndpoint(0)
			for i := 0; i < 8; i++ {
				eps = append(eps, one)
			}
		} else {
			for i := 0; i < 8; i++ {
				eps = append(eps, c.MustEndpoint(0))
			}
		}
		var worst sim.Time
		for i := 0; i < 8; i++ {
			i := i
			e.Go(fmt.Sprintf("f%d", i), func(p *sim.Proc) {
				for k := 0; k < 20; k++ {
					eps[i].Put(p, dst[i], 8, nil)
				}
				if p.Now() > worst {
					worst = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return worst
	}
	sharedT, procT := run(true), run(false)
	if sharedT <= procT {
		t.Errorf("shared connection (%v) should be slower than per-process (%v) for small messages",
			sharedT, procT)
	}
}

func TestMultiConnectionBandwidthExceedsOne(t *testing.T) {
	// Aggregate flood bandwidth with 4 connections must exceed a single
	// connection's (NIC cap 2.5 GB/s > conn cap 1.5 GB/s).
	run := func(conns int) float64 {
		e, c := lehmanCluster(1)
		size := int64(4 << 20)
		var worst sim.Time
		for i := 0; i < conns; i++ {
			src := c.MustEndpoint(0)
			dst := c.MustEndpoint(1)
			e.Go(fmt.Sprintf("f%d", i), func(p *sim.Proc) {
				op := src.PutAsync(p, dst, size, nil)
				op.WaitRemote(p)
				if p.Now() > worst {
					worst = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(size*int64(conns)) / worst.Seconds()
	}
	one, four := run(1), run(4)
	if four < 1.4*one {
		t.Errorf("4-connection bandwidth %.0f should be well above 1-connection %.0f", four, one)
	}
	if four > 2.6e9 {
		t.Errorf("aggregate bandwidth %.0f exceeds NIC cap", four)
	}
}

func TestLoopbackSlowerThanMemCopy(t *testing.T) {
	// Intra-node network loopback (no PSHM) must be slower than a direct
	// shared-memory copy — the premise of Figure 3.4.
	e, c := lehmanCluster(1)
	size := int64(1 << 20)
	var loop, shm sim.Duration
	epA := c.MustEndpoint(0)
	epB := c.MustEndpoint(0)
	e.Go("p", func(p *sim.Proc) {
		start := p.Now()
		epA.Put(p, epB, size, nil)
		loop = p.Now() - start
		start = p.Now()
		c.MemCopy(p, topo.Place{Socket: 0}, topo.Place{Socket: 1}, size, 200*sim.Nanosecond)
		shm = p.Now() - start
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if loop <= shm {
		t.Errorf("loopback (%v) must be slower than shared-memory copy (%v)", loop, shm)
	}
}

func TestBarrierCostGrowsWithNodes(t *testing.T) {
	_, c := lehmanCluster(1)
	b1 := c.BarrierCost(1)
	b2 := c.BarrierCost(2)
	b16 := c.BarrierCost(16)
	if !(b1 < b2 && b2 < b16) {
		t.Errorf("barrier costs not monotone: %v, %v, %v", b1, b2, b16)
	}
	// log2(16) = 4 rounds: cost roughly 4x the 2-node single round's
	// network part.
	if b16 > 10*b2 {
		t.Errorf("16-node barrier %v implausibly large vs 2-node %v", b16, b2)
	}
}

func TestConduitPresets(t *testing.T) {
	for _, name := range Conduits() {
		cond, ok := ConduitByName(name)
		if !ok {
			t.Fatalf("conduit %q missing", name)
		}
		if cond.ConnBW <= 0 || cond.NICBW < cond.ConnBW {
			t.Errorf("%s: ConnBW %g, NICBW %g inconsistent", name, cond.ConnBW, cond.NICBW)
		}
		if cond.Latency <= 0 {
			t.Errorf("%s: latency %v", name, cond.Latency)
		}
	}
	if _, ok := ConduitByName("smoke-signals"); ok {
		t.Error("unknown conduit should not resolve")
	}
	// Ethernet must be far slower than QDR IB in both latency and bandwidth.
	eth, _ := ConduitByName("gige")
	qdr, _ := ConduitByName("ibv-qdr")
	if eth.Latency < 5*qdr.Latency || eth.ConnBW > qdr.ConnBW/5 {
		t.Error("GigE should be much slower than QDR InfiniBand")
	}
}

func TestEndpointOutOfRangeError(t *testing.T) {
	_, c := lehmanCluster(1)
	for _, node := range []int{-1, 99} {
		ep, err := c.NewEndpoint(node)
		if ep != nil || !errors.Is(err, ErrBadNode) {
			t.Errorf("NewEndpoint(%d) = %v, %v, want nil + ErrBadNode", node, ep, err)
		}
	}
	// MustEndpoint keeps the construction-time panic contract, carrying
	// the typed error as the panic value.
	defer func() {
		v := recover()
		err, ok := v.(error)
		if !ok || !errors.Is(err, ErrBadNode) {
			t.Fatalf("MustEndpoint panic value = %v, want typed ErrBadNode", v)
		}
	}()
	c.MustEndpoint(99)
}

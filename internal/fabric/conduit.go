package fabric

import "repro/internal/sim"

// Conduit is a LogGP-style parameter set for one interconnect, calibrated
// against the microbenchmark levels reported in the thesis (Figure 4.2 for
// QDR InfiniBand; the node diagrams of Figures 2.1/2.2 for link rates; the
// UTS Ethernet-vs-InfiniBand gap of Figure 3.3).
type Conduit struct {
	Name string

	// Latency is the one-way wire + switch latency.
	Latency sim.Duration
	// SendOverhead is the CPU time the initiator spends per message.
	SendOverhead sim.Duration
	// RecvOverhead is the CPU time the target runtime spends per message.
	RecvOverhead sim.Duration
	// MsgGap is the per-message occupancy of a connection's injection
	// port. On a connection shared by many threads (the pthreads backend)
	// this serializes message initiation.
	MsgGap sim.Duration

	// ConnBW is the bandwidth one connection can extract (bytes/s).
	ConnBW float64
	// NICBW is the node's aggregate NIC bandwidth per direction (bytes/s).
	// Multiple connections on one node can together reach NICBW.
	NICBW float64

	// LoopbackBW and LoopbackLatency model intra-node transfers that go
	// through the network API because neither PSHM nor pthreads shared
	// memory is available (the "base" runtime configuration in Fig 3.4).
	LoopbackBW      float64
	LoopbackLatency sim.Duration

	// NICBeta is the NIC's congestion coefficient: effective NIC goodput
	// with n concurrent in-flight streams is NICBW/(1+NICBeta*(n-1)).
	// This reproduces the Figure 4.5 observation that the all-to-all
	// stops scaling past ~2 communicating contexts per node.
	NICBeta float64

	// PinRate models the bounce-buffer copy / memory-registration work a
	// shared (pthreads) connection performs while holding the network
	// lock, serializing injection at this byte rate (bytes/s).
	PinRate float64
}

// QDRInfiniBand models Lehman's Mellanox ConnectX QDR fabric: ~2.4 GB/s
// unidirectional point-to-point (Figure 2.2), single connection saturating
// ~1.5 GB/s, small-message round trips in the 4–5 us range.
func QDRInfiniBand() Conduit {
	return Conduit{
		Name:            "ibv-qdr",
		Latency:         1600 * sim.Nanosecond,
		SendOverhead:    400 * sim.Nanosecond,
		RecvOverhead:    400 * sim.Nanosecond,
		MsgGap:          250 * sim.Nanosecond,
		ConnBW:          1.5e9,
		NICBW:           2.5e9,
		LoopbackBW:      0.9e9,
		LoopbackLatency: 800 * sim.Nanosecond,
		NICBeta:         0.003,
		PinRate:         0.8e9,
	}
}

// DDRInfiniBand models Pyramid's Mellanox DDR fabric: ~1.5 GB/s
// unidirectional point-to-point (Figure 2.1).
func DDRInfiniBand() Conduit {
	return Conduit{
		Name:            "ibv-ddr",
		Latency:         1400 * sim.Nanosecond,
		SendOverhead:    500 * sim.Nanosecond,
		RecvOverhead:    500 * sim.Nanosecond,
		MsgGap:          350 * sim.Nanosecond,
		ConnBW:          1.1e9,
		NICBW:           1.5e9,
		LoopbackBW:      0.8e9,
		LoopbackLatency: 1 * sim.Microsecond,
		NICBeta:         0.004,
		PinRate:         0.7e9,
	}
}

// GigabitEthernet models Pyramid's GigE management network used for the
// UTS Ethernet runs: ~118 MB/s on the wire, tens of microseconds latency,
// high per-message CPU cost (kernel TCP path).
func GigabitEthernet() Conduit {
	return Conduit{
		Name:            "gige",
		Latency:         25 * sim.Microsecond,
		SendOverhead:    3 * sim.Microsecond,
		RecvOverhead:    3 * sim.Microsecond,
		MsgGap:          2 * sim.Microsecond,
		ConnBW:          118e6,
		NICBW:           118e6,
		LoopbackBW:      0.5e9,
		LoopbackLatency: 5 * sim.Microsecond,
		NICBeta:         0.008, // kernel TCP stack thrashes hard under fan-out
		PinRate:         0.4e9,
	}
}

// ConduitByName resolves a conduit preset.
func ConduitByName(name string) (Conduit, bool) {
	switch name {
	case "ibv-qdr":
		return QDRInfiniBand(), true
	case "ibv-ddr":
		return DDRInfiniBand(), true
	case "gige", "ethernet", "udp":
		return GigabitEthernet(), true
	}
	return Conduit{}, false
}

// Conduits lists the available conduit preset names.
func Conduits() []string { return []string{"ibv-qdr", "ibv-ddr", "gige"} }

package fabric

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

func TestCongestionBetaDegradesGoodput(t *testing.T) {
	// 32 equal flows on a beta link must take longer than on an ideal one.
	run := func(beta float64) sim.Time {
		e := sim.New(1)
		n := NewNet(e)
		l := NewLink("nic", 1e9)
		l.Beta = beta
		var worst sim.Time
		for i := 0; i < 32; i++ {
			e.Go(fmt.Sprintf("f%d", i), func(p *sim.Proc) {
				n.Transfer(p, 1<<20, 0, l)
				if p.Now() > worst {
					worst = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return worst
	}
	ideal, congested := run(0), run(0.01)
	ratio := float64(congested) / float64(ideal)
	// 1 + 0.01*31 = 1.31 expected while all 32 are in flight.
	if ratio < 1.15 || ratio > 1.45 {
		t.Errorf("congestion ratio = %.2f, want ~1.3", ratio)
	}
}

func TestCongestionCapBounds(t *testing.T) {
	// With 10000 flows the divisor must clamp at maxCongestion.
	l := NewLink("nic", 1e9)
	l.Beta = 0.01
	l.active = 10000
	share := l.share()
	wantShare := 1e9 / maxCongestion / 10000
	if share < wantShare*0.99 || share > wantShare*1.01 {
		t.Errorf("capped share = %g, want ~%g", share, wantShare)
	}
}

func TestSingleFlowUnaffectedByBeta(t *testing.T) {
	l := NewLink("nic", 1e9)
	l.Beta = 0.5
	l.active = 1
	if got := l.share(); got != 1e9 {
		t.Errorf("a lone flow must see full capacity, got %g", got)
	}
}

func TestMarkSharedWidensAggregate(t *testing.T) {
	e := sim.New(1)
	c := NewCluster(e, lehmanForTest(), QDRInfiniBand())
	ep := c.MustEndpoint(0)
	if ep.conn.Capacity != c.Conduit.ConnBW {
		t.Fatalf("private connection capacity = %g", ep.conn.Capacity)
	}
	ep.MarkShared()
	want := 0.95 * c.Conduit.NICBW
	if ep.conn.Capacity != want {
		t.Errorf("shared connection capacity = %g, want %g", ep.conn.Capacity, want)
	}
	if !ep.Shared {
		t.Error("MarkShared must set the flag")
	}
}

func lehmanForTest() *topo.Machine { return topo.Lehman() }

func place(node, socket, core int) topo.Place {
	return topo.Place{Node: node, Socket: socket, Core: core}
}

func TestSharedTxOccupancyZeroCopyThreshold(t *testing.T) {
	e := sim.New(1)
	c := NewCluster(e, lehmanForTest(), QDRInfiniBand())
	ep := c.MustEndpoint(0)
	ep.MarkShared()
	small := ep.txOccupancy(1 << 10)
	mid := ep.txOccupancy(32 << 10)
	big := ep.txOccupancy(8 << 20)
	capAt := ep.txOccupancy(zeroCopyThreshold)
	if !(small < mid && mid < big) {
		t.Errorf("occupancy not monotone: %v %v %v", small, mid, big)
	}
	if big != capAt {
		t.Errorf("above the zero-copy threshold the locked work must cap: %v vs %v", big, capAt)
	}
	// Private connections pay only the gap, independent of size.
	priv := c.MustEndpoint(0)
	if priv.txOccupancy(8<<20) != c.Conduit.MsgGap {
		t.Errorf("private occupancy = %v, want gap %v", priv.txOccupancy(8<<20), c.Conduit.MsgGap)
	}
}

func TestMemCopyAsyncAppliesAtCompletion(t *testing.T) {
	e := sim.New(1)
	c := NewCluster(e, lehmanForTest(), QDRInfiniBand())
	applied := false
	e.Go("p", func(p *sim.Proc) {
		op, err := c.MemCopyAsync(p, place(0, 0, 0), place(0, 1, 0), 1<<20, 0,
			func() { applied = true })
		if err != nil {
			t.Error(err)
			return
		}
		if applied {
			t.Error("apply must not run at initiation")
		}
		op.WaitRemote(p)
		if !applied {
			t.Error("apply must run by completion")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLoopbackConsumesNIC(t *testing.T) {
	// Intra-node loopback traffic must slow down concurrent remote
	// traffic on the same NIC (the Figure 3.4 base-runtime effect).
	run := func(withLoopback bool) sim.Time {
		e := sim.New(1)
		c := NewCluster(e, lehmanForTest(), QDRInfiniBand())
		src := c.MustEndpoint(0)
		dst := c.MustEndpoint(1)
		var remoteDone sim.Time
		e.Go("remote", func(p *sim.Proc) {
			src.Put(p, dst, 8<<20, nil)
			remoteDone = p.Now()
		})
		if withLoopback {
			a := c.MustEndpoint(0)
			b := c.MustEndpoint(0)
			e.Go("loop", func(p *sim.Proc) {
				a.Put(p, b, 8<<20, nil)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return remoteDone
	}
	alone, contended := run(false), run(true)
	if contended <= alone {
		t.Errorf("loopback must contend with remote traffic: %v vs %v", contended, alone)
	}
}

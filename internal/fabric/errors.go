package fabric

import (
	"errors"
	"fmt"
)

// Sentinel error conditions of the fabric's Put/Get/Endpoint paths.
// Misuse that previously panicked now surfaces as a typed error wrapping
// one of these, so a runtime reacting to injected faults can distinguish
// recoverable failures (a peer's node is down) from programming errors
// (an endpoint on a node the machine does not have) without dying.
var (
	// ErrBadNode marks an endpoint request for a node outside the machine.
	ErrBadNode = errors.New("node outside machine")
	// ErrCrossNode marks a memory copy whose placements span nodes (only
	// the network moves data between nodes).
	ErrCrossNode = errors.New("memory copy across nodes")
)

// Error is the typed error of a failed fabric operation.
type Error struct {
	Op     string // "endpoint", "memcopy", ...
	Detail string
	Err    error // sentinel condition
}

func (e *Error) Error() string {
	return fmt.Sprintf("fabric: %s: %s: %v", e.Op, e.Detail, e.Err)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *Error) Unwrap() error { return e.Err }

package fabric

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// Verdict is a fault model's decision about one injected message.
type Verdict uint8

const (
	// VerdictDeliver lets the message take its normal path.
	VerdictDeliver Verdict = iota
	// VerdictDrop loses the message after injection: the payload drains
	// from the source (the NIC did the work) but is never applied and the
	// operation's Remote event never fires. Detection is the caller's
	// job, via timeouts.
	VerdictDrop
	// VerdictDuplicate applies the payload twice at the target. Apply
	// closures are idempotent copies, so duplicates cost time, not
	// correctness.
	VerdictDuplicate
	// VerdictDelay adds extra latency before delivery.
	VerdictDelay
)

// FaultModel is the cluster's view of an installed fault injector (see
// internal/fault for the scheduling side). Implementations must draw any
// randomness from the owning engine's seeded source so that decisions
// are a pure function of (seed, schedule, virtual time).
type FaultModel interface {
	// NodeDown reports whether the node is crashed at the current virtual
	// time. Messages to or from a down node are dropped.
	NodeDown(node int) bool
	// MessageVerdict decides the fate of one message from srcNode to
	// dstNode. The returned duration is the extra latency of a
	// VerdictDelay and ignored otherwise.
	MessageVerdict(srcNode, dstNode int, size int64) (Verdict, sim.Duration)
}

// SetFaultModel installs a fault model on the cluster. A nil model (the
// default) keeps every fault hook on its zero-cost path: one pointer
// check per message, no draws, no extra events.
func (c *Cluster) SetFaultModel(fm FaultModel) { c.faults = fm }

// FaultModel reports the installed fault model, or nil.
func (c *Cluster) FaultModel() FaultModel { return c.faults }

// NodeDown reports whether the node is crashed under the installed fault
// model; always false without one.
func (c *Cluster) NodeDown(node int) bool {
	return c.faults != nil && c.faults.NodeDown(node)
}

// EgressLink reports the node's NIC transmit link ("nic-tx<node>").
func (c *Cluster) EgressLink(node int) *Link { return c.egress[node] }

// IngressLink reports the node's NIC receive link ("nic-rx<node>").
func (c *Cluster) IngressLink(node int) *Link { return c.ingress[node] }

// LinkByName resolves a cluster-owned link (core/mem/NIC) by its name,
// or nil. Per-endpoint connection links are owned by their endpoints and
// not resolvable here.
func (c *Cluster) LinkByName(name string) *Link {
	for _, set := range [][]*Link{c.cores, c.mem, c.egress, c.ingress} {
		for _, l := range set {
			if l.Name == name {
				return l
			}
		}
	}
	return nil
}

// traceFault emits one recovery-visibility instant (class fault) for an
// injected message fault. Fabric knows nodes, not threads, so the packed
// endpoints carry node coordinates only.
func (c *Cluster) traceFault(name string, srcNode, dstNode int, size int64) {
	if !c.Eng.Tracing() {
		return
	}
	c.Eng.TraceInstant(trace.CatComm, name, trace.ClassFault, size,
		trace.PackEndpoints(0, 0, srcNode, dstNode))
}

// messageVerdict centralizes the per-message injection decision: down
// nodes drop without consuming a random draw, everything else asks the
// model. Call only with a non-nil fault model.
func (c *Cluster) messageVerdict(srcNode, dstNode int, size int64) (Verdict, sim.Duration) {
	if c.faults.NodeDown(srcNode) || c.faults.NodeDown(dstNode) {
		return VerdictDrop, 0
	}
	return c.faults.MessageVerdict(srcNode, dstNode, size)
}

// Package fabric models the communication and memory hardware of a
// cluster: a fluid-flow network engine (links with capacities; each flow
// advances at the minimum of its own rate cap and its bottleneck link's
// fair share), conduit parameter sets for the paper's interconnects (QDR
// and DDR InfiniBand, Gigabit Ethernet), and a Cluster that wires cores,
// memory controllers, NICs and connection endpoints onto a sim.Engine.
package fabric

import (
	"math"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Link is a bandwidth resource (bytes/second) shared by concurrent flows.
// A flow crossing several links advances at min over its links of
// capacity/activeFlows, additionally clipped by the flow's own cap. This
// is the bottleneck-share approximation of max-min fairness used by fluid
// network simulators; it is conservative (never over-allocates a link).
type Link struct {
	Name     string
	Capacity float64 // bytes per second; <= 0 means infinitely fast
	// Beta is the congestion coefficient: with n concurrent flows the
	// link's effective capacity is Capacity / (1 + Beta*(n-1)), modeling
	// goodput degradation under heavy multiplexing (QP/DMA thrash on
	// NICs, incast buffering). Zero means ideal sharing.
	Beta   float64
	active int
	// Down marks a flapped link: flows crossing it stall at rate zero
	// until the link comes back (distinct from Capacity <= 0, which means
	// infinitely fast). Toggled by the fault layer, which must follow any
	// change with Net.Nudge so in-flight flows re-settle.
	Down bool
}

// maxCongestion bounds the congestion divisor: goodput degrades with
// concurrent streams but does not collapse without limit.
const maxCongestion = 2.5

// NewLink returns a link with the given capacity in bytes/second.
func NewLink(name string, capacity float64) *Link {
	return &Link{Name: name, Capacity: capacity}
}

// Active reports the number of flows currently crossing the link.
func (l *Link) Active() int { return l.active }

// share reports the per-flow bandwidth the link currently offers.
func (l *Link) share() float64 {
	if l.Down {
		return 0
	}
	if l.Capacity <= 0 {
		return math.Inf(1)
	}
	n := l.active
	if n < 1 {
		n = 1
	}
	eff := l.Capacity
	if l.Beta > 0 && n > 1 {
		d := 1 + l.Beta*float64(n-1)
		if d > maxCongestion {
			d = maxCongestion
		}
		eff /= d
	}
	return eff / float64(n)
}

// Net is the fluid-flow engine. All flows on one Net recompute their rates
// whenever any flow starts or finishes; completions within one settling
// pass batch together. The full recompute is O(F) per event — simple,
// exact, and cache-friendly; the paper-scale sweeps keep F in the low
// tens of thousands.
type Net struct {
	eng   *sim.Engine
	flows []*FlowOp
	last  sim.Time
	epoch uint64
	// util gates link-occupancy trace events (trace.CatLink, one per
	// active-count change). Resolved once at construction from the
	// engine's tracer: only sinks that opt in via trace.UtilObserver pay
	// for the extra events, and the untraced hot path stays a bool check.
	util bool

	pool  sim.FreeList[FlowOp]  // recycled flows (Transfer / StartAction)
	ticks sim.FreeList[netTick] // recycled settling callbacks
	fin   []*FlowOp             // reschedule's completion scratch
}

// NewNet creates a flow engine bound to e.
func NewNet(e *sim.Engine) *Net {
	return &Net{eng: e, util: trace.WantsUtil(e.Tracer())}
}

// Engine reports the owning simulation engine.
func (n *Net) Engine() *sim.Engine { return n.eng }

// Active reports the number of in-flight flows.
func (n *Net) Active() int { return len(n.flows) }

// maxFlowLinks bounds the links one flow may cross. The deepest modeled
// path is connection + egress NIC + ingress NIC; the inline array keeps
// a flow's link set out of the allocator.
const maxFlowLinks = 3

// FlowOp is an in-flight transfer. Wait on Done (a sim.Event) or use
// Wait; OnComplete callbacks run in engine context when the flow drains.
//
// Flows created by Start are handles the caller may retain and poll
// after completion. Flows created by StartAction or Transfer are pooled:
// they return to the Net's free list the moment they drain, so no
// reference to them may escape.
type FlowOp struct {
	size      int64
	remaining float64
	cap       float64 // per-flow rate cap; <= 0 means uncapped
	linksBuf  [maxFlowLinks]*Link
	nlinks    int
	rate      float64
	done      sim.Event
	act       sim.Action // pooled completion callback, run before onDone
	onDone    []func()
	pooled    bool
}

// links is the flow's live link set, a view over the inline array.
func (f *FlowOp) links() []*Link { return f.linksBuf[:f.nlinks] }

func (f *FlowOp) setLinks(links []*Link) {
	if len(links) > maxFlowLinks {
		panic("fabric: flow crosses more than maxFlowLinks links")
	}
	f.nlinks = copy(f.linksBuf[:], links)
}

// Done reports whether the transfer has drained.
func (f *FlowOp) Done() bool { return f.done.Fired() }

// Wait suspends p until the flow drains.
func (f *FlowOp) Wait(p *sim.Proc) { f.done.Wait(p) }

// OnComplete registers fn to run in engine context when the flow drains.
// If the flow already drained, fn runs immediately.
func (f *FlowOp) OnComplete(fn func()) {
	if f.done.Fired() {
		fn()
		return
	}
	f.onDone = append(f.onDone, fn)
}

// Size reports the flow's total bytes.
func (f *FlowOp) Size() int64 { return f.size }

// Start launches a transfer of size bytes across the given links, with an
// optional per-flow rate cap (bytes/second; <= 0 for uncapped). A zero or
// negative size completes immediately. The returned handle may be
// retained and polled after completion, so Start flows are not pooled;
// allocation-free paths use StartAction or Transfer.
func (n *Net) Start(size int64, cap float64, links ...*Link) *FlowOp {
	f := &FlowOp{size: size, remaining: float64(size), cap: cap} //upcvet:poolalloc -- caller-retained handle, pollable after completion; left to the GC by the Start contract
	f.setLinks(links)
	if size <= 0 {
		n.finishFlow(f)
		return f
	}
	n.launch(f)
	return f
}

// StartAction launches a pooled transfer whose completion runs act in
// engine context. The flow returns to the free list the moment it
// drains: no handle escapes, and a warm Net starts and completes the
// flow without touching the allocator. A zero or negative size runs act
// immediately.
func (n *Net) StartAction(size int64, cap float64, act sim.Action, links ...*Link) {
	if size <= 0 {
		if act != nil {
			act.Run()
		}
		return
	}
	f := n.pool.Get()
	f.size = size
	f.remaining = float64(size)
	f.cap = cap
	f.act = act
	f.pooled = true
	f.setLinks(links)
	n.launch(f)
}

// launch registers a prepared flow and settles rates. size must be
// positive: the flow cannot complete inside launch, only from a later
// settling callback.
func (n *Net) launch(f *FlowOp) {
	n.account()
	for _, l := range f.links() {
		l.active++
		if n.util {
			n.eng.TraceInstant(trace.CatLink, l.Name, "", int64(l.active), l.capacityArg())
		}
	}
	n.flows = append(n.flows, f)
	n.reschedule()
}

// PoolStats reports the free-list accounting for the net's pooled flows
// and settling callbacks.
func (n *Net) PoolStats() sim.PoolStats {
	return n.pool.Stats().Add(n.ticks.Stats())
}

// capacityArg reports the link capacity rounded to int64 for occupancy
// events (0 for infinitely fast links).
func (l *Link) capacityArg() int64 {
	if l.Capacity <= 0 || math.IsInf(l.Capacity, 1) {
		return 0
	}
	return int64(l.Capacity)
}

// Transfer is the blocking form of Start. The flow record is pooled: the
// completion wake dequeues the waiter before the record is recycled, so
// the caller never observes the reuse.
func (n *Net) Transfer(p *sim.Proc, size int64, cap float64, links ...*Link) {
	if size <= 0 {
		return
	}
	f := n.pool.Get()
	f.size = size
	f.remaining = float64(size)
	f.cap = cap
	f.pooled = true
	f.setLinks(links)
	n.launch(f)
	// launch cannot complete a positive-size flow inline, so the wait is
	// always armed before the completion fires.
	f.Wait(p)
}

// Nudge re-settles all in-flight flows after an external change to link
// state (a fault action degrading capacity or toggling Down). It charges
// progress at the old rates up to now, then recomputes and rebooks the
// next completion — including waking flows that were stalled on a link
// that just came back.
func (n *Net) Nudge() {
	n.account()
	n.reschedule()
}

// finishFlow completes f: fire the event (waking blocked Transfers),
// run the pooled completion action, then any OnComplete closures, and
// recycle pooled records. By the time the record returns to the free
// list every waiter has been dequeued by the Fire, so reuse cannot
// disturb them.
func (n *Net) finishFlow(f *FlowOp) {
	f.done.Fire()
	if a := f.act; a != nil {
		f.act = nil
		a.Run()
	}
	for _, fn := range f.onDone {
		fn()
	}
	f.onDone = nil
	if f.pooled {
		for i := range f.linksBuf {
			f.linksBuf[i] = nil
		}
		f.nlinks = 0
		f.pooled = false
		f.done.Reset()
		n.pool.Put(f)
	}
}

// account charges elapsed progress to all flows at their current rates.
func (n *Net) account() {
	now := n.eng.Now()
	if now > n.last {
		dt := (now - n.last).Seconds()
		for _, f := range n.flows {
			f.remaining -= f.rate * dt
		}
	}
	n.last = now
}

// recomputeRates refreshes every flow's rate from current link shares.
func (n *Net) recomputeRates() {
	for _, f := range n.flows {
		r := math.Inf(1)
		if f.cap > 0 {
			r = f.cap
		}
		for _, l := range f.links() {
			if s := l.share(); s < r {
				r = s
			}
		}
		if math.IsInf(r, 1) {
			// Uncapped flow crossing only infinite links: instantaneous.
			r = math.MaxFloat64
		}
		f.rate = r
	}
}

// reschedule completes drained flows, recomputes rates, and books the next
// completion callback. Completions within completionGrain of the earliest
// settle together, bounding the number of O(F) recomputes a staggered
// drain can trigger while keeping the timing error to a 2^-10 fraction of
// each flow's own duration.
func (n *Net) reschedule() {
	const eps = 1e-6 // bytes
	// Detach the completion scratch while it is in use: a completion
	// callback that starts a new flow re-enters reschedule, which must
	// not walk the same backing array. The nested call sees nil and
	// builds its own (cold path); the hot path reuses one buffer.
	finished := n.fin
	n.fin = nil
	for {
		kept := n.flows[:0]
		finished = finished[:0]
		for _, f := range n.flows {
			if f.remaining <= eps {
				for _, l := range f.links() {
					l.active--
					if n.util {
						n.eng.TraceInstant(trace.CatLink, l.Name, "", int64(l.active), l.capacityArg())
					}
				}
				finished = append(finished, f)
			} else {
				kept = append(kept, f)
			}
		}
		for i := len(kept); i < len(n.flows); i++ {
			n.flows[i] = nil
		}
		n.flows = kept
		for _, f := range finished {
			n.finishFlow(f)
		}
		if len(finished) == 0 {
			break
		}
		// Completion callbacks may have started new flows; loop to settle.
	}
	for i := range finished {
		finished[i] = nil
	}
	n.fin = finished[:0]
	n.recomputeRates()
	n.epoch++
	if len(n.flows) == 0 {
		return
	}
	next := math.Inf(1)
	for _, f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		if t := f.remaining / f.rate; t < next {
			next = t
		}
	}
	if math.IsInf(next, 1) {
		// No flow can progress. Either every remaining flow crosses a Down
		// link (a fault-layer Nudge restores them) or this is a caller bug
		// that surfaces as deadlock.
		return
	}
	dt := sim.FromSeconds(next)
	// Relative quantization: push the wake slightly past the earliest
	// completion so that near-simultaneous completions batch into one
	// settling pass instead of each paying an O(F) recompute.
	dt += dt >> 10
	if dt < 1 {
		dt = 1
	}
	t := n.ticks.Get()
	t.n = n
	t.epoch = n.epoch
	n.eng.AfterAction(dt, t)
}

// netTick is the pooled settling callback: one is booked per reschedule,
// and a stale epoch means a fresher one has been booked since.
type netTick struct {
	n     *Net
	epoch uint64
}

func (t *netTick) Run() {
	n, epoch := t.n, t.epoch
	t.n = nil
	n.ticks.Put(t)
	if n.epoch != epoch {
		return
	}
	n.account()
	n.reschedule()
}

package fabric

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFlowSingleLink(t *testing.T) {
	e := sim.New(1)
	n := NewNet(e)
	l := NewLink("l", 1000)
	var done sim.Time
	e.Go("p", func(p *sim.Proc) {
		n.Transfer(p, 500, 0, l)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(500 * sim.Millisecond); abs(done-want) > sim.Millisecond {
		t.Errorf("done at %v, want ~%v", done, want)
	}
}

func TestFlowBottleneckIsMinShare(t *testing.T) {
	e := sim.New(1)
	n := NewNet(e)
	fast := NewLink("fast", 1e6)
	slow := NewLink("slow", 1000)
	var done sim.Time
	e.Go("p", func(p *sim.Proc) {
		n.Transfer(p, 1000, 0, fast, slow)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(sim.Second); abs(done-want) > sim.Millisecond {
		t.Errorf("bottleneck transfer done at %v, want ~%v", done, want)
	}
}

func TestFlowCapClips(t *testing.T) {
	e := sim.New(1)
	n := NewNet(e)
	l := NewLink("l", 1e9)
	var done sim.Time
	e.Go("p", func(p *sim.Proc) {
		n.Transfer(p, 1000, 1000, l) // capped to 1000 B/s
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(sim.Second); abs(done-want) > sim.Millisecond {
		t.Errorf("capped transfer done at %v, want ~%v", done, want)
	}
}

func TestSharedLinkSplitsBandwidth(t *testing.T) {
	e := sim.New(1)
	n := NewNet(e)
	l := NewLink("l", 1000)
	var worst sim.Time
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("f%d", i), func(p *sim.Proc) {
			n.Transfer(p, 250, 0, l)
			if p.Now() > worst {
				worst = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(sim.Second); abs(worst-want) > 2*sim.Millisecond {
		t.Errorf("4×250B on 1000B/s finished at %v, want ~%v", worst, want)
	}
}

func TestDisjointLinksDoNotInterfere(t *testing.T) {
	e := sim.New(1)
	n := NewNet(e)
	a := NewLink("a", 1000)
	b := NewLink("b", 1000)
	var doneA, doneB sim.Time
	e.Go("fa", func(p *sim.Proc) { n.Transfer(p, 1000, 0, a); doneA = p.Now() })
	e.Go("fb", func(p *sim.Proc) { n.Transfer(p, 1000, 0, b); doneB = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := sim.Time(sim.Second)
	if abs(doneA-want) > sim.Millisecond || abs(doneB-want) > sim.Millisecond {
		t.Errorf("independent flows at %v, %v; want ~%v each", doneA, doneB, want)
	}
}

func TestZeroSizeCompletesImmediately(t *testing.T) {
	e := sim.New(1)
	n := NewNet(e)
	l := NewLink("l", 10)
	f := n.Start(0, 0, l)
	if !f.Done() {
		t.Error("zero-size flow must complete instantly")
	}
	ran := false
	f.OnComplete(func() { ran = true })
	if !ran {
		t.Error("OnComplete on a done flow must run immediately")
	}
	if l.Active() != 0 {
		t.Errorf("link active = %d after no-op flow", l.Active())
	}
}

func TestOnCompleteChainsNewFlow(t *testing.T) {
	e := sim.New(1)
	n := NewNet(e)
	l := NewLink("l", 1000)
	var secondDone sim.Time
	e.Go("p", func(p *sim.Proc) {
		f1 := n.Start(500, 0, l)
		var f2 *FlowOp
		ready := &sim.Event{}
		f1.OnComplete(func() {
			f2 = n.Start(500, 0, l)
			ready.Fire()
		})
		ready.Wait(p)
		f2.Wait(p)
		secondDone = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := sim.Time(sim.Second); abs(secondDone-want) > 2*sim.Millisecond {
		t.Errorf("chained flows done at %v, want ~%v", secondDone, want)
	}
}

func TestLinkAccountingBalances(t *testing.T) {
	// Property: after any workload completes, every link has zero active
	// flows and the makespan is at least total/capacity for a single link.
	f := func(seed int64, sizes [5]uint16) bool {
		e := sim.New(seed)
		n := NewNet(e)
		l := NewLink("l", 1e6)
		var total int64
		var worst sim.Time
		for i, sz := range sizes {
			size := int64(sz) + 1
			total += size
			e.Go(fmt.Sprintf("f%d", i), func(p *sim.Proc) {
				p.Advance(sim.Duration(e.Rand().Intn(1000)))
				n.Transfer(p, size, 0, l)
				if p.Now() > worst {
					worst = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		if l.Active() != 0 || n.Active() != 0 {
			return false
		}
		return worst >= sim.TransferTime(total, 1e6)-10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func abs(t sim.Time) sim.Time {
	if t < 0 {
		return -t
	}
	return t
}

// Free-list pools for the one-sided hot path. A put, get or intra-node
// copy used to allocate a NetOp handle plus a chain of closures (flow
// completion, latency arrival, receive drain); each is now a pooled
// staged record implementing sim.Action, so a warm cluster issues and
// completes one-sided operations without touching the allocator — with
// fault injection active too: verdicts are fields, a duplicate delivery
// is a second inline leg, and drops simply short-circuit the chain.
//
// Lifecycle: a record carries a reference count of in-flight machinery
// (scheduled actions) plus a caller hold. Machinery legs deref as they
// are consumed; the caller hold is dropped by NetOp.Release (or
// internally by the blocking Put/Get wrappers). The record returns to
// its cluster's free list when both reach zero, which makes release
// always safe: releasing early just defers recycling until the last
// in-flight leg drains. Callers that never Release (handles parked in
// long-lived structures) degrade to garbage collection, exactly the
// pre-pooling behavior.
package fabric

import (
	"repro/internal/sim"
	"repro/internal/trace"
)

// releasable is the pool-owner hook behind NetOp.Release.
type releasable interface{ release() }

// Leg stages shared by put and get delivery legs.
const (
	legLat uint8 = iota // latency elapsed: check liveness, enter rx queue
	legRx               // receive processing done: apply and complete
)

// putOp is the pooled record of one PutAsync: flow-completion action,
// per-delivery legs and the caller-visible NetOp in a single object.
type putOp struct {
	c       *Cluster
	ep      *Endpoint // source endpoint
	dst     *Endpoint
	size    int64
	lat     sim.Duration // delivery latency, including any fault delay
	verdict Verdict
	apply   func()
	op      NetOp
	refs    int32 // in-flight machinery: flow completion + delivery legs
	held    bool  // caller hold (dropped by NetOp.Release)
	legs    [2]putLeg
}

// putLeg is one delivery of a put payload: a second leg runs only under
// a duplicate verdict, so chaos schedules stay on the pooled path.
type putLeg struct {
	o     *putOp
	stage uint8
}

// getPutOp acquires a put record with one machinery reference (the
// pending flow completion) and the caller hold.
func (c *Cluster) getPutOp() *putOp {
	o := c.putPool.Get()
	if o.c == nil {
		o.c = c
		o.op.owner = o
		o.legs[0].o = o
		o.legs[1].o = o
	}
	o.refs = 1
	o.held = true
	return o
}

func (o *putOp) deref() {
	o.refs--
	if o.refs == 0 && !o.held {
		o.recycle()
	}
}

func (o *putOp) release() {
	if !o.held {
		return
	}
	o.held = false
	if o.refs == 0 {
		o.recycle()
	}
}

func (o *putOp) recycle() {
	o.ep = nil
	o.dst = nil
	o.apply = nil
	o.op.Local.Reset()
	o.op.Remote.Reset()
	o.c.putPool.Put(o)
}

// Run is the flow-completion action: the payload has drained from the
// source, so the local buffer is reusable; the verdict then decides how
// many delivery legs (0–2) cross the wire.
func (o *putOp) Run() {
	o.op.Local.Fire()
	c := o.c
	deliveries := 1
	switch o.verdict {
	case VerdictDrop:
		c.traceFault("drop", o.ep.node, o.dst.node, o.size)
		o.deref()
		return
	case VerdictDuplicate:
		deliveries = 2
		c.traceFault("dup", o.ep.node, o.dst.node, o.size)
	case VerdictDelay:
		c.traceFault("delay", o.ep.node, o.dst.node, o.size)
	}
	o.refs += int32(deliveries)
	for i := 0; i < deliveries; i++ {
		o.legs[i].stage = legLat
		c.Eng.AfterAction(o.lat, &o.legs[i])
	}
	o.deref() // flow leg consumed
}

func (l *putLeg) Run() {
	o := l.o
	c := o.c
	eng := c.Eng
	switch l.stage {
	case legLat:
		if c.NodeDown(o.dst.node) {
			// Target crashed while the message was in flight.
			c.traceFault("drop", o.ep.node, o.dst.node, o.size)
			o.deref()
			return
		}
		rxDone := o.dst.gapRx.Schedule(eng.Now(), o.dst.rxOccupancy())
		l.stage = legRx
		eng.AfterAction(rxDone-eng.Now(), l)
	case legRx:
		if o.apply != nil {
			o.apply()
		}
		eng.TraceInstant("fabric", "deliver", c.Conduit.Name, o.size, 0)
		if c.edges {
			eng.TraceInstant(trace.CatEdge, trace.EdgeDeliver, c.Conduit.Name,
				o.size, trace.PackEndpoints(0, 0, o.ep.node, o.dst.node))
		}
		o.op.Remote.Fire()
		o.deref()
	}
}

// Get-op stages: the request leg travels to the source, injection waits
// on the source's ports, then the payload flow streams back.
const (
	gReq  uint8 = iota // request latency elapsed at the source side
	gInj               // source injection port free: start the payload flow
	gFlow              // payload drained: schedule delivery legs
)

// getOp is the pooled record of one GetAsync round trip.
type getOp struct {
	c        *Cluster
	ep       *Endpoint // requesting endpoint
	src      *Endpoint
	size     int64
	lat      sim.Duration // payload return latency, including fault delay
	verdict  Verdict
	sameNode bool
	apply    func()
	stage    uint8
	op       NetOp
	refs     int32
	held     bool
	legs     [2]getLeg
}

type getLeg struct {
	o     *getOp
	stage uint8
}

func (c *Cluster) getGetOp() *getOp {
	o := c.getPool.Get()
	if o.c == nil {
		o.c = c
		o.op.owner = o
		o.legs[0].o = o
		o.legs[1].o = o
	}
	o.refs = 1
	o.held = true
	return o
}

func (o *getOp) deref() {
	o.refs--
	if o.refs == 0 && !o.held {
		o.recycle()
	}
}

func (o *getOp) release() {
	if !o.held {
		return
	}
	o.held = false
	if o.refs == 0 {
		o.recycle()
	}
}

func (o *getOp) recycle() {
	o.ep = nil
	o.src = nil
	o.apply = nil
	o.op.Local.Reset()
	o.op.Remote.Reset()
	o.c.getPool.Put(o)
}

func (o *getOp) Run() {
	c := o.c
	eng := c.Eng
	cond := &c.Conduit
	switch o.stage {
	case gReq:
		if o.verdict == VerdictDrop || c.NodeDown(o.src.node) {
			// Request lost, or the source crashed before it arrived.
			c.traceFault("drop", o.ep.node, o.src.node, o.size)
			o.deref()
			return
		}
		// Request processed at the source endpoint.
		reqDone := o.src.gapRx.Schedule(eng.Now(), o.src.rxOccupancy())
		injStart := o.src.gapTx.Schedule(reqDone, o.src.txOccupancy(o.size))
		o.stage = gInj
		eng.AfterAction(injStart-eng.Now(), o)
	case gInj:
		o.stage = gFlow
		if o.sameNode {
			c.Net.StartAction(o.size, cond.LoopbackBW, o,
				o.src.conn, c.egress[o.src.node], c.ingress[o.src.node])
		} else {
			c.Net.StartAction(o.size, cond.ConnBW, o,
				o.src.conn, c.egress[o.src.node], c.ingress[o.ep.node])
		}
	case gFlow:
		deliveries := 1
		switch o.verdict {
		case VerdictDuplicate:
			deliveries = 2
			c.traceFault("dup", o.src.node, o.ep.node, o.size)
		case VerdictDelay:
			c.traceFault("delay", o.src.node, o.ep.node, o.size)
		}
		o.refs += int32(deliveries)
		for i := 0; i < deliveries; i++ {
			o.legs[i].stage = legLat
			eng.AfterAction(o.lat, &o.legs[i])
		}
		o.deref() // flow leg consumed
	}
}

func (l *getLeg) Run() {
	o := l.o
	c := o.c
	eng := c.Eng
	switch l.stage {
	case legLat:
		if c.NodeDown(o.ep.node) {
			// Requester crashed while the payload was in flight.
			c.traceFault("drop", o.src.node, o.ep.node, o.size)
			o.deref()
			return
		}
		rxDone := o.ep.gapRx.Schedule(eng.Now(), o.ep.rxOccupancy())
		l.stage = legRx
		eng.AfterAction(rxDone-eng.Now(), l)
	case legRx:
		if o.apply != nil {
			o.apply()
		}
		eng.TraceInstant("fabric", "deliver", c.Conduit.Name, o.size, 0)
		if c.edges {
			eng.TraceInstant(trace.CatEdge, trace.EdgeDeliver, c.Conduit.Name,
				o.size, trace.PackEndpoints(0, 0, o.src.node, o.ep.node))
		}
		o.op.Local.Fire() // a get has a single completion
		o.op.Remote.Fire()
		o.deref()
	}
}

// memOp is the pooled record of one MemCopyAsync: a single flow with an
// apply-and-complete action.
type memOp struct {
	c     *Cluster
	apply func()
	op    NetOp
	refs  int32
	held  bool
}

func (c *Cluster) getMemOp() *memOp {
	o := c.memPool.Get()
	if o.c == nil {
		o.c = c
		o.op.owner = o
	}
	o.refs = 1
	o.held = true
	return o
}

func (o *memOp) deref() {
	o.refs--
	if o.refs == 0 && !o.held {
		o.recycle()
	}
}

func (o *memOp) release() {
	if !o.held {
		return
	}
	o.held = false
	if o.refs == 0 {
		o.recycle()
	}
}

func (o *memOp) recycle() {
	o.apply = nil
	o.op.Local.Reset()
	o.op.Remote.Reset()
	o.c.memPool.Put(o)
}

func (o *memOp) Run() {
	if o.apply != nil {
		o.apply()
	}
	o.op.Local.Fire()
	o.op.Remote.Fire()
	o.deref()
}

// PoolStats sums the cluster's operation pools and the flow engine's.
// At quiescence with every handle released, Outstanding() is zero.
func (c *Cluster) PoolStats() sim.PoolStats {
	s := c.putPool.Stats().Add(c.getPool.Stats()).Add(c.memPool.Stats())
	return s.Add(c.Net.PoolStats())
}

// Sharded fabric: the cross-lane communication layer for sim.ShardGroup
// runs. Each lane owns a private single-node Cluster (LaneCluster) for
// intra-node costs — cores, sockets, PSHM traffic never leave the lane —
// while cross-node traffic flows through a ShardNet as timestamped
// inter-lane messages costed with the fixed-rate LogGP terms of the
// conduit (overheads, per-message gap, store-and-forward transfer time).
// The global fluid max-min Net is deliberately not used across lanes:
// its instantaneous rate coupling would make every node's progress
// depend on every other node's in-flight flows, destroying the lane
// isolation that conservative-lookahead parallelism requires. The
// conduit's wire latency is the lookahead lower bound the group
// synchronizes on.
package fabric

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Lookahead reports the conduit's conservative cross-lane lookahead:
// the wire latency, clamped to the engine's floor so a (hypothetical)
// zero-latency conduit still yields a non-empty synchronization window.
func (c *Conduit) Lookahead() sim.Duration {
	if c.Latency < sim.LookaheadFloor {
		return sim.LookaheadFloor
	}
	return c.Latency
}

// LaneCluster builds lane i's private single-node resource model on its
// engine: a Cluster over the machine's NodeView, so all existing
// intra-node cost paths (Compute, MemCopy, MemTouch) work unchanged
// inside a lane with places addressed as node 0.
func LaneCluster(g *sim.ShardGroup, lane int, m *topo.Machine, cond Conduit) *Cluster {
	return NewCluster(g.Lane(lane), m.NodeView(), cond)
}

// ShardNet is the cross-lane network of one sharded run: a full mesh of
// conduit links between lanes, one port per lane. It declares the
// conduit's lookahead on every lane pair at construction.
type ShardNet struct {
	Group *sim.ShardGroup
	Cond  Conduit
	ports []*ShardPort
}

// NewShardNet wires a full mesh over the group's lanes with cond's
// lookahead and returns the net. Call once per run, before Run.
func NewShardNet(g *sim.ShardGroup, cond Conduit) *ShardNet {
	n := &ShardNet{Group: g, Cond: cond, ports: make([]*ShardPort, g.Lanes())}
	la := cond.Lookahead()
	for i := 0; i < g.Lanes(); i++ {
		for j := 0; j < g.Lanes(); j++ {
			if i != j {
				g.SetLookahead(i, j, la)
			}
		}
		n.ports[i] = &ShardPort{net: n, lane: i, eng: g.Lane(i),
			edges: trace.WantsEdge(g.Lane(i).Tracer())}
	}
	return n
}

// Port returns lane i's port.
func (n *ShardNet) Port(lane int) *ShardPort { return n.ports[lane] }

// HandlerFunc serves one RPC operation at the target lane, in engine
// context (it must not park). src is the calling lane and arg the
// request payload word. It returns the modeled response size and an
// apply closure that runs at the calling lane when the response
// arrives, carrying the actual result data. A nil apply is allowed.
type HandlerFunc func(src int, arg int64) (respSize int64, apply func())

// rpcEntry caches the last request one caller key completed, making
// retransmitted requests idempotent: a duplicate of the request re-sends
// the cached response instead of re-running the handler.
type rpcEntry struct {
	id       uint64
	op       int
	respSize int64
	apply    func()
}

// ShardPort is one lane's attachment to the ShardNet: injection and
// reception gap servers (the conduit's per-message occupancy), the
// lane's RPC handler table, and the reply cache that makes the
// request/response protocol exactly-once under drop/duplicate/delay
// fault schedules. All state is lane-local: every method and handler
// runs in this lane's own engine context.
type ShardPort struct {
	net  *ShardNet
	lane int
	eng  *sim.Engine
	// edges is true when this lane's tracer opted into completion-edge
	// instants (trace.EdgeObserver), cached at construction.
	edges bool

	gapTx sim.Server
	gapRx sim.Server

	handlers map[int]HandlerFunc
	nextReq  uint64
	calls    map[int64]pendingCall // outstanding RPCs by caller key
	replies  map[int64]rpcEntry    // reply cache by caller key (src lane, caller id)

	// putOps recycles this lane's put records (source side); rxOps
	// recycles the receive-drain continuations scheduled on this lane as
	// a delivery target. Each pool is only touched from its own lane's
	// context, ordered across lanes by the group's round barrier.
	putOps sim.FreeList[shardPutOp]
	rxOps  sim.FreeList[shardRxOp]
}

// Lane reports the port's lane index.
func (pt *ShardPort) Lane() int { return pt.lane }

// Engine reports the port's lane engine.
func (pt *ShardPort) Engine() *sim.Engine { return pt.eng }

// Handle registers the serving function for RPC operation op on this
// port. Register all handlers during setup, before ShardGroup.Run.
func (pt *ShardPort) Handle(op int, h HandlerFunc) {
	if pt.handlers == nil {
		pt.handlers = map[int]HandlerFunc{}
	}
	pt.handlers[op] = h
}

// wireDelay is the one-way message delay on the shard mesh: latency
// plus store-and-forward transfer time at one connection's bandwidth.
// It is ≥ the declared lookahead (latency alone) by construction.
func (n *ShardNet) wireDelay(size int64) sim.Duration {
	return n.Cond.Lookahead() + sim.TransferTime(size, n.Cond.ConnBW)
}

// inject charges the sender-side wire costs in proc context: the CPU
// send overhead, then the injection-port gap.
func (pt *ShardPort) inject(p *sim.Proc, size int64) {
	cond := &pt.net.Cond
	if cond.SendOverhead > 0 {
		p.Advance(cond.SendOverhead)
	}
	pt.gapTx.Delay(p, cond.MsgGap)
}

// tracePut mirrors the legacy cluster's comm-matrix instants so metrics
// manifests classify shard traffic like any other remote transfer.
func (pt *ShardPort) tracePut(p *sim.Proc, name string, dst int, size int64) {
	p.TraceInstant(trace.CatComm, name, trace.ClassNetwork, size,
		trace.PackEndpoints(0, 0, pt.lane, dst))
}

// Put models a blocking one-sided put of size bytes to lane dst: the
// caller pays the send costs, apply runs at dst when the payload lands
// (carrying the real data), and the caller resumes once the remote
// delivery — plus its receive overhead — completes and the ack returns.
// Unreliable: under a fault schedule the payload or the ack can be
// dropped, so fault-tolerant protocols should use Call instead; Put is
// for fault-free paths and control use via PutReliable.
func (pt *ShardPort) Put(p *sim.Proc, dst int, size int64, apply func()) {
	pt.put(p, dst, size, false, apply)
}

// PutReliable is Put on the reliable control plane: exempt from the
// fault filter (see sim.ShardGroup.SendReliable).
func (pt *ShardPort) PutReliable(p *sim.Proc, dst int, size int64, apply func()) {
	pt.put(p, dst, size, true, apply)
}

func (pt *ShardPort) put(p *sim.Proc, dst int, size int64, reliable bool, apply func()) {
	g := pt.net.Group
	pt.inject(p, size)
	pt.tracePut(p, "shard-put", dst, size)
	// Recycling assumes exactly one ack wakes the caller. The reliable
	// plane is exempt from fault filters, and without a filter installed
	// unreliable sends are exactly-once too; only a filtered unreliable
	// put can duplicate the payload, leaving a second rx/ack chain
	// referencing the record after the caller resumed — those records
	// fall back to garbage collection, the pre-pooling behavior.
	pooled := reliable || !g.Filtered()
	var o *shardPutOp
	if pooled {
		o = pt.putOps.Get()
	} else {
		o = &shardPutOp{} //upcvet:poolalloc -- filtered unreliable puts can be duplicated; a recycled record could still be referenced by the duplicate's rx/ack chain
	}
	o.pt = pt
	o.dst = dst
	o.size = size
	o.reliable = reliable
	o.apply = apply
	o.ack.o = o
	if reliable {
		g.SendReliableAction(pt.eng, dst, pt.net.wireDelay(size), size, o)
	} else {
		g.SendAction(pt.eng, dst, pt.net.wireDelay(size), size, o)
	}
	o.done.Wait(p)
	if pooled {
		o.pt = nil
		o.apply = nil
		o.done.Reset()
		pt.putOps.Put(o)
	}
}

// shardPutOp is the pooled record of one blocking shard put: the
// payload-arrival action (Run, destination lane context), the caller's
// completion event and the ack action are facets of one object, so a
// warm put round trip schedules no per-operation garbage.
type shardPutOp struct {
	pt       *ShardPort // source port
	dst      int
	size     int64
	reliable bool
	apply    func()
	done     sim.Event
	ack      shardAck
}

// Run is the payload arrival at the destination lane: enter the
// receiver's gap server and book the receive-drain continuation there.
func (o *shardPutOp) Run() {
	dp := o.pt.net.ports[o.dst]
	rx := dp.rxOps.Get()
	rx.o = o
	rxDone := dp.gapRx.Schedule(dp.eng.Now(), o.pt.net.Cond.RecvOverhead)
	dp.eng.AfterAction(rxDone-dp.eng.Now(), rx)
}

// shardRxOp is the receive-drain continuation, pooled on the
// destination port. A duplicated payload stages two independent rx
// records, so chaos schedules stay on the pooled path for this leg.
type shardRxOp struct{ o *shardPutOp }

func (r *shardRxOp) Run() {
	o := r.o
	dp := o.pt.net.ports[o.dst]
	r.o = nil
	dp.rxOps.Put(r)
	if o.apply != nil {
		o.apply()
	}
	if dp.edges {
		dp.eng.TraceInstant(trace.CatEdge, trace.EdgeDeliver, "shard",
			o.size, trace.PackEndpoints(0, 0, o.pt.lane, o.dst))
	}
	// The ack retraces the wire; it carries no payload.
	g := o.pt.net.Group
	if o.reliable {
		g.SendReliableAction(dp.eng, o.pt.lane, o.pt.net.wireDelay(0), 0, &o.ack)
	} else {
		g.SendAction(dp.eng, o.pt.lane, o.pt.net.wireDelay(0), 0, &o.ack)
	}
}

// shardAck completes the put at the source lane. Fire is idempotent, so
// a duplicated ack — possible only on an unpooled record — is harmless.
type shardAck struct{ o *shardPutOp }

func (a *shardAck) Run() { a.o.done.Fire() }

// PoolStats sums the per-port put and receive-drain pools. At
// quiescence of a fault-free run, Outstanding() is zero.
func (n *ShardNet) PoolStats() sim.PoolStats {
	var s sim.PoolStats
	for _, pt := range n.ports {
		s = s.Add(pt.putOps.Stats()).Add(pt.rxOps.Stats())
	}
	return s
}

// Post ships a one-way control message to lane dst: apply runs there
// once the payload lands and its receive overhead drains. Fire and
// forget — the caller resumes after paying only the injection costs, so
// notifications do not serialize on round trips. It rides the reliable
// control plane (exempt from fault filters, like PutReliable); a post
// to the port's own lane takes the loopback path instead of the mesh.
func (pt *ShardPort) Post(p *sim.Proc, dst int, size int64, apply func()) {
	cond := &pt.net.Cond
	pt.inject(p, size)
	if dst == pt.lane {
		pt.eng.After(cond.LoopbackLatency, apply)
		return
	}
	pt.tracePut(p, "shard-post", dst, size)
	pt.net.Group.SendReliable(pt.eng, dst, pt.net.wireDelay(size), size, func() {
		dp := pt.net.ports[dst]
		rxDone := dp.gapRx.Schedule(dp.eng.Now(), cond.RecvOverhead)
		dp.eng.After(rxDone-dp.eng.Now(), apply)
	})
}

// callerKey packs the request's origin into the reply-cache key. caller
// must be unique per concurrent caller within the source lane (a
// lane-local worker index); each such caller may have at most one RPC
// outstanding at a time.
func callerKey(src, caller int) int64 { return int64(src)<<20 | int64(caller) }

// Call performs a blocking RPC to lane dst: the registered handler for
// op runs there in engine context, and the returned apply closure runs
// back at the calling lane before the caller resumes. caller is the
// lane-local caller identity for reply caching (see callerKey).
// Unreliable but not retried: under fault schedules use CallRetry.
func (pt *ShardPort) Call(p *sim.Proc, caller, dst, op int, arg, reqSize int64) {
	pt.call(p, caller, dst, op, arg, reqSize, nil)
}

// CallRetry is Call with at-least-once retransmission: if no response
// arrives within timeout(attempt) of virtual time, the request is
// retransmitted with the same request id. The reply cache at the target
// makes retries idempotent — the handler runs once, duplicates re-send
// the cached response — so the protocol is exactly-once end to end
// under drop, duplicate and delay schedules. It retries until a
// response lands: a finite fault window cannot lose work, while a
// permanent partition shows up as a lane stuck in "rpc" (by design —
// silently dropping a response would lose whatever the handler moved).
func (pt *ShardPort) CallRetry(p *sim.Proc, caller, dst, op int, arg, reqSize int64, timeout func(attempt int) sim.Duration) {
	pt.call(p, caller, dst, op, arg, reqSize, timeout)
}

// pendingCall is the caller-side record of one outstanding RPC.
type pendingCall struct {
	id   uint64
	done *sim.Event
}

func (pt *ShardPort) call(p *sim.Proc, caller, dst, op int, arg, reqSize int64, timeout func(int) sim.Duration) {
	g := pt.net.Group
	src := pt.lane
	pt.nextReq++
	id := pt.nextReq
	key := callerKey(src, caller)
	done := &sim.Event{} //upcvet:poolalloc -- cold RPC request path, not the one-sided fast path
	if pt.calls == nil {
		pt.calls = map[int64]pendingCall{}
	}
	if _, clash := pt.calls[key]; clash {
		panic(fmt.Sprintf("fabric: caller %d on lane %d issued overlapping shard RPCs", caller, src))
	}
	pt.calls[key] = pendingCall{id: id, done: done}
	transmit := func() {
		pt.tracePut(p, "shard-call", dst, reqSize)
		g.Send(pt.eng, dst, pt.net.wireDelay(reqSize), reqSize, func() {
			pt.net.ports[dst].serve(src, key, id, op, arg)
		})
	}
	pt.inject(p, reqSize)
	transmit()
	if timeout == nil {
		done.Wait(p)
	} else {
		for attempt := 0; !done.WaitTimeout(p, timeout(attempt)); attempt++ {
			if done.Fired() {
				// Response and timer landed on the same tick.
				break
			}
			if g.LaneDown(src, p.Now()) {
				// The caller's own lane is inside an outage window: its NIC
				// is dead, and a request leaving it could commit work at the
				// victim whose response can never land here. Stay silent;
				// the first timeout after the reincarnation resumes
				// retransmission, and the target's reply cache re-delivers
				// anything the previous life's request already committed.
				continue
			}
			pt.inject(p, reqSize)
			if done.Fired() {
				// The response arrived while we were re-paying the send gap.
				break
			}
			transmit()
		}
	}
	// Charge the caller-side receive overhead for the response.
	cond := &pt.net.Cond
	rxDone := pt.gapRx.Schedule(p.Now(), cond.RecvOverhead)
	if d := rxDone - p.Now(); d > 0 {
		p.Advance(d)
	}
}

// serve handles one arrived request at the target lane, in engine
// context. Duplicate requests (retransmissions that crossed a response
// in flight, or fault-injected copies) hit the reply cache and re-send
// the recorded response without re-running the handler.
func (pt *ShardPort) serve(src int, key int64, id uint64, op int, arg int64) {
	cond := &pt.net.Cond
	ent, seen := pt.replies[key]
	if !seen || ent.id != id {
		h := pt.handlers[op]
		if h == nil {
			panic(fmt.Sprintf("fabric: lane %d has no handler for shard RPC op %d", pt.lane, op))
		}
		respSize, apply := h(src, arg)
		ent = rpcEntry{id: id, op: op, respSize: respSize, apply: apply}
		if pt.replies == nil {
			pt.replies = map[int64]rpcEntry{}
		}
		pt.replies[key] = ent
	}
	// Receive-overhead then gap-injected response, all in engine context.
	rxDone := pt.gapRx.Schedule(pt.eng.Now(), cond.RecvOverhead)
	pt.eng.After(rxDone-pt.eng.Now(), func() {
		txDone := pt.gapTx.Schedule(pt.eng.Now(), cond.MsgGap)
		pt.eng.After(txDone-pt.eng.Now(), func() {
			pt.respond(src, key, ent)
		})
	})
}

// respond ships one (possibly cached) response back to the caller.
func (pt *ShardPort) respond(src int, key int64, ent rpcEntry) {
	g := pt.net.Group
	caller := pt.net.ports[src]
	g.Send(pt.eng, src, pt.net.wireDelay(ent.respSize), ent.respSize, func() {
		caller.complete(key, ent)
	})
}

// ShardBarrier synchronizes processes across lanes: each lane's
// participants first rendezvous locally (lane-internal WaitQueue), the
// last arrival reports to the coordinator on lane 0 over the reliable
// control plane, and once every participating lane has reported the
// coordinator broadcasts the release. The two message legs give the
// barrier a realistic ~2× wire latency cost, matching the dissemination
// term of Cluster.BarrierCost to first order. Reusable: a lane cannot
// re-arrive before its release lands, so one generation's state never
// mixes with the next.
type ShardBarrier struct {
	net     *ShardNet
	parts   []int // participants per lane
	count   []int // local arrivals per lane
	qs      []sim.WaitQueue
	lanesIn int // lanes with participants
	arrived int // coordinator state; lane-0 context only
}

// barrierMsgSize is the modeled payload of barrier control messages.
const barrierMsgSize = 16

// NewShardBarrier builds a barrier over the net's lanes; parts[i] is
// the number of participating processes on lane i (0 = lane sits out).
func NewShardBarrier(net *ShardNet, parts []int) *ShardBarrier {
	if len(parts) != net.Group.Lanes() {
		panic(fmt.Sprintf("fabric: barrier parts for %d lanes, net has %d", len(parts), net.Group.Lanes()))
	}
	b := &ShardBarrier{
		net:   net,
		parts: append([]int(nil), parts...),
		count: make([]int, len(parts)),
		qs:    make([]sim.WaitQueue, len(parts)),
	}
	for _, n := range parts {
		if n > 0 {
			b.lanesIn++
		}
	}
	return b
}

// Wait parks p (running on lane) until every participant on every lane
// has arrived.
func (b *ShardBarrier) Wait(p *sim.Proc, lane int) {
	g := b.net.Group
	b.count[lane]++
	if b.count[lane] == b.parts[lane] {
		b.count[lane] = 0
		eng := g.Lane(lane)
		if lane == 0 {
			eng.After(b.net.Cond.LoopbackLatency, b.coordArrive)
		} else {
			g.SendReliable(eng, 0, b.net.wireDelay(barrierMsgSize), barrierMsgSize, b.coordArrive)
		}
	}
	b.qs[lane].Wait(p, "shard-barrier")
}

// coordArrive runs in lane 0's engine context for each lane's arrival.
func (b *ShardBarrier) coordArrive() {
	b.arrived++
	if b.arrived < b.lanesIn {
		return
	}
	b.arrived = 0
	g := b.net.Group
	eng0 := g.Lane(0)
	for l := range b.parts {
		if b.parts[l] == 0 {
			continue
		}
		lane := l
		if lane == 0 {
			eng0.After(b.net.Cond.LoopbackLatency, func() { b.qs[0].WakeAll() })
		} else {
			g.SendReliable(eng0, lane, b.net.wireDelay(barrierMsgSize), barrierMsgSize,
				func() { b.qs[lane].WakeAll() })
		}
	}
}

// complete runs at the calling lane when a response arrives: the first
// copy for the current request id runs the handler's apply closure (the
// result data landing) and wakes the caller; stale or duplicate
// responses — retransmission echoes, fault-injected copies — are
// ignored by the id check.
func (pt *ShardPort) complete(key int64, ent rpcEntry) {
	cur, ok := pt.calls[key]
	if !ok || cur.id != ent.id {
		return
	}
	delete(pt.calls, key)
	if ent.apply != nil {
		ent.apply()
	}
	cur.done.Fire()
}

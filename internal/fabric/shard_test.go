package fabric

import (
	"testing"

	"repro/internal/sim"
)

func TestConduitLookahead(t *testing.T) {
	c := QDRInfiniBand()
	if la := c.Lookahead(); la != c.Latency {
		t.Fatalf("Lookahead = %v, want latency %v", la, c.Latency)
	}
	zero := Conduit{Name: "zero"}
	if la := zero.Lookahead(); la != sim.LookaheadFloor {
		t.Fatalf("zero-latency Lookahead = %v, want floor %v", la, sim.LookaheadFloor)
	}
}

// TestShardPutMovesData: a blocking put lands real data at the target
// lane and costs at least the wire latency round trip.
func TestShardPutMovesData(t *testing.T) {
	g := sim.NewShardGroup(1, 2, nil)
	n := NewShardNet(g, QDRInfiniBand())
	var got []byte
	payload := []byte("hierarchical")
	var took sim.Duration
	g.Lane(0).Go("putter", func(p *sim.Proc) {
		start := p.Now()
		n.Port(0).Put(p, 1, int64(len(payload)), func() {
			got = append([]byte(nil), payload...)
		})
		took = p.Now() - start
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hierarchical" {
		t.Fatalf("payload did not land: %q", got)
	}
	if min := 2 * n.Cond.Latency; took < min {
		t.Fatalf("put took %v, want >= latency round trip %v", took, min)
	}
}

// TestShardCallRoundTrip: the handler runs at the target, the apply
// returns data to the caller, and sequential calls reuse the plumbing.
func TestShardCallRoundTrip(t *testing.T) {
	g := sim.NewShardGroup(2, 3, nil)
	n := NewShardNet(g, DDRInfiniBand())
	const opDouble = 1
	for lane := 0; lane < 3; lane++ {
		pt := n.Port(lane)
		pt.Handle(opDouble, func(src int, arg int64) (int64, func()) {
			return 8, nil
		})
	}
	sum := int64(0)
	g.Lane(0).Go("caller", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			dst := 1 + i%2
			arg := int64(i)
			// The apply closure carries the "result" back: here the served
			// lane's doubling, computed in the handler's closure below.
			n.Port(0).Call(p, 0, dst, opDouble, arg, 8)
			sum += 2 * arg
		}
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 20 {
		t.Fatalf("sum = %d, want 20", sum)
	}
}

// TestShardCallApply: the apply closure observes handler-computed state.
func TestShardCallApply(t *testing.T) {
	g := sim.NewShardGroup(2, 2, nil)
	n := NewShardNet(g, DDRInfiniBand())
	served := 0
	n.Port(1).Handle(7, func(src int, arg int64) (int64, func()) {
		served++
		v := arg * arg
		return 8, func() { served += int(v) } // runs back at lane 0
	})
	g.Lane(0).Go("caller", func(p *sim.Proc) {
		n.Port(0).Call(p, 0, 1, 7, 3, 8)
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if served != 10 { // 1 (handler) + 9 (apply)
		t.Fatalf("served = %d, want 10", served)
	}
}

// TestShardBarrier: all participants on all lanes leave together, and
// the barrier is reusable.
func TestShardBarrier(t *testing.T) {
	g := sim.NewShardGroup(3, 3, nil)
	n := NewShardNet(g, QDRInfiniBand())
	b := NewShardBarrier(n, []int{2, 2, 1})
	var exits []sim.Time
	for lane := 0; lane < 3; lane++ {
		for w := 0; w < []int{2, 2, 1}[lane]; w++ {
			l, id := lane, w
			g.Lane(l).Go("w", func(p *sim.Proc) {
				for round := 0; round < 3; round++ {
					p.Advance(sim.Duration(1000 * (l + id + round)))
					b.Wait(p, l)
				}
				if l == 0 && id == 0 {
					exits = append(exits, p.Now())
				}
			})
		}
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if len(exits) != 1 {
		t.Fatalf("exit count %d", len(exits))
	}
	// Three rounds, each at least two wire latencies.
	if min := sim.Duration(6 * n.Cond.Latency); exits[0] < min {
		t.Fatalf("barrier rounds completed at %v, want >= %v", exits[0], min)
	}
}

// TestLaneCluster: per-lane single-node clusters charge intra-node
// costs on the lane engine.
func TestLaneCluster(t *testing.T) {
	m := lehmanForTest()
	g := sim.NewShardGroup(1, 2, nil)
	cl := LaneCluster(g, 1, m, QDRInfiniBand())
	if cl.Mach.Nodes != 1 {
		t.Fatalf("lane cluster spans %d nodes", cl.Mach.Nodes)
	}
	if cl.Eng != g.Lane(1) {
		t.Fatal("lane cluster bound to the wrong engine")
	}
	done := false
	g.Lane(1).Go("compute", func(p *sim.Proc) {
		before := p.Now()
		cl.Compute(p, place(0, 0, 0), 1e-6)
		if p.Now() <= before {
			t.Error("Compute charged no time")
		}
		done = true
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("compute proc never ran")
	}
}

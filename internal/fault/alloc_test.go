// Zero-cost-when-disabled guarantees for the fault layer. The engine
// hot paths must stay allocation-free with the fault hooks compiled in,
// the untraced fault-free cross-node put must stay at its pinned
// allocs/op, and an installed-but-idle schedule (the injector consulted
// on every message, no rule active) must add nothing on top. The same
// FabricPut number is recorded in BENCH_sim.json, where upc-bench
// -check compares allocs/op exactly, so CI fails on any growth.
package fault_test

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/simbench"
	"repro/internal/topo"
)

// fabricPutAllocs pins allocs/op of the untraced fault-free cross-node
// blocking put at zero: operation records, flows and delivery legs all
// come from free lists, and the disabled fault hook is a nil check.
const fabricPutAllocs = 0

// putLoop is simbench.FabricPut with an optional schedule installed.
func putLoop(b *testing.B, sched *fault.Schedule) {
	b.ReportAllocs()
	e := sim.New(1)
	c := fabric.NewCluster(e, topo.Pyramid(), fabric.QDRInfiniBand())
	if _, err := fault.Install(c, sched); err != nil {
		b.Fatal(err)
	}
	src := c.MustEndpoint(0)
	dst := c.MustEndpoint(1)
	e.Go("p", func(p *sim.Proc) {
		for n := 0; n < b.N; n++ {
			src.Put(p, dst, 8, nil)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func TestHotPathAllocationsPinned(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	for _, tc := range []struct {
		name string
		fn   func(*testing.B)
		max  int64
	}{
		// Engine hot paths: allocation-free, full stop.
		{"Advance", simbench.Advance, 0},
		{"ServerDelay", simbench.ServerDelay, 0},
		{"PingPongYield", simbench.PingPongYield, 0},
		// The pooled cross-node put is allocation-free; the disabled
		// fault hook must add nothing on top.
		{"FabricPut", simbench.FabricPut, fabricPutAllocs},
	} {
		r := testing.Benchmark(tc.fn)
		if got := r.AllocsPerOp(); got > tc.max {
			t.Errorf("%s: %d allocs/op, want <= %d", tc.name, got, tc.max)
		}
	}
}

// TestArmedIdleScheduleAddsNoAllocs installs a schedule whose only rule
// activates far beyond the benchmark's virtual horizon: the fabric
// consults the injector on every message, every rule filter misses, and
// the per-message cost must still be allocation-free — the same pinned
// allocs/op as running with no schedule at all.
func TestArmedIdleScheduleAddsNoAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	sched := &fault.Schedule{
		Name: "idle",
		Actions: []fault.Action{
			{Op: fault.OpDrop, At: 1e6, Prob: 0.5, Src: -1, Dst: -1},
		},
	}
	r := testing.Benchmark(func(b *testing.B) { putLoop(b, sched) })
	if got := r.AllocsPerOp(); got > fabricPutAllocs {
		t.Errorf("armed-idle put: %d allocs/op, want <= %d (fault-free pin)",
			got, fabricPutAllocs)
	}
}

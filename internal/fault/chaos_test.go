package fault_test

import (
	"bytes"
	"testing"

	"repro/internal/apps/uts"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/sweep"
	"repro/internal/topo"
	"repro/internal/trace"
)

// utsCfg is one chaos-soak application point: a cross-node UTS traversal
// whose exact node count Run verifies internally.
func utsCfg(seed int64, sched *fault.Schedule) uts.Config {
	return uts.Config{
		Machine:     topo.Pyramid(),
		Threads:     16,
		PerNode:     4,
		Strategy:    uts.LocalRapid,
		Granularity: 8,
		Tree:        uts.Small(60000),
		Seed:        seed,
		Faults:      sched,
	}
}

// soakSchedules are the chaos plans the soak sweeps: message-level chaos
// (drop, duplicate, delay) and a mid-run whole-node crash. Node 0 is
// spared: thread 0 coordinates the run's timing.
func soakSchedules() []*fault.Schedule {
	return []*fault.Schedule{
		{Name: "lossy", Actions: []fault.Action{
			{Op: fault.OpDrop, At: 0, Until: 0.01, Prob: 0.3, Src: -1, Dst: -1},
			{Op: fault.OpDuplicate, At: 0, Until: 0.01, Prob: 0.2, Src: -1, Dst: -1},
			{Op: fault.OpDelay, At: 0, Until: 0.01, Prob: 0.25, Extra: 15e-6, Src: -1, Dst: -1},
		}},
		{Name: "crash", Actions: []fault.Action{
			{Op: fault.OpCrash, At: 0.001, Node: 1, Src: -1, Dst: -1},
		}},
	}
}

// TestChaosSoak sweeps seeds x schedules: every run must complete with
// the fault-free result (the exact sequential node count), and repeating
// a (seed, schedule) pair must reproduce the timeline and every counter.
func TestChaosSoak(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		clean, err := uts.Run(utsCfg(seed, nil))
		if err != nil {
			t.Fatalf("seed %d fault-free: %v", seed, err)
		}
		for _, sched := range soakSchedules() {
			a, err := uts.Run(utsCfg(seed, sched))
			if err != nil {
				t.Errorf("seed %d schedule %s: %v", seed, sched.Name, err)
				continue
			}
			if a.Nodes != clean.Nodes || a.MaxDepth != clean.MaxDepth {
				t.Errorf("seed %d schedule %s: result %d/%d, fault-free %d/%d",
					seed, sched.Name, a.Nodes, a.MaxDepth, clean.Nodes, clean.MaxDepth)
			}
			b, err := uts.Run(utsCfg(seed, sched))
			if err != nil {
				t.Errorf("seed %d schedule %s replay: %v", seed, sched.Name, err)
				continue
			}
			if a.Elapsed != b.Elapsed || a.Counters.String() != b.Counters.String() {
				t.Errorf("seed %d schedule %s replays diverge:\n%v %v\n%v %v",
					seed, sched.Name, a.Elapsed, a.Counters, b.Elapsed, b.Counters)
			}
		}
	}
}

// chaosManifest runs the soak sweep at the given worker-pool width with a
// metrics collection attached and returns the serialized manifest — the
// acceptance artifact that must be byte-identical at any -parallel.
func chaosManifest(t *testing.T, workers int) []byte {
	t.Helper()
	prevWorkers := sweep.Workers()
	prevTracer := trace.Default()
	coll := metrics.NewCollection()
	trace.SetDefault(coll)
	sweep.SetWorkers(workers)
	defer func() {
		sweep.SetWorkers(prevWorkers)
		trace.SetDefault(prevTracer)
	}()
	scheds := soakSchedules()
	seeds := []int64{1, 2, 3}
	err := sweep.Run(len(seeds)*len(scheds), func(i int, tr trace.Tracer) error {
		cfg := utsCfg(seeds[i/len(scheds)], scheds[i%len(scheds)])
		cfg.Tracer = tr
		_, err := uts.Run(cfg)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	m := coll.Manifest("chaos-soak", nil)
	var b bytes.Buffer
	if err := m.Write(&b); err != nil {
		t.Fatal(err)
	}
	if m.Comm == nil {
		t.Fatal("chaos sweep produced no comm matrix")
	}
	seen := false
	for _, c := range m.Comm.Classes {
		if c.Class == trace.ClassFault && c.Messages > 0 {
			seen = true
		}
	}
	if !seen {
		t.Error("comm matrix records no fault-class recovery events under active chaos")
	}
	return b.Bytes()
}

// TestChaosManifestParallelInvariance is the acceptance gate: the same
// seeds x schedules sweep emits a byte-identical metrics manifest whether
// the sweep points run sequentially or on eight worker threads.
func TestChaosManifestParallelInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep comparison")
	}
	m1 := chaosManifest(t, 1)
	m8 := chaosManifest(t, 8)
	if !bytes.Equal(m1, m8) {
		t.Errorf("manifests differ between -parallel=1 and -parallel=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", m1, m8)
	}
}

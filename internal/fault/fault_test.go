package fault

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

func testCluster(seed int64) (*sim.Engine, *fabric.Cluster) {
	e := sim.New(seed)
	return e, fabric.NewCluster(e, topo.Lehman(), fabric.QDRInfiniBand())
}

func TestActionDefaultsToAnyPair(t *testing.T) {
	s, err := Parse([]byte(`{"actions":[{"op":"drop","at_s":0,"prob":0.5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if a := s.Actions[0]; a.Src != -1 || a.Dst != -1 {
		t.Errorf("unnamed src/dst = %d/%d, want -1/-1 (any)", a.Src, a.Dst)
	}
	s, err = Parse([]byte(`{"actions":[{"op":"drop","at_s":0,"prob":0.5,"src":0,"dst":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if a := s.Actions[0]; a.Src != 0 || a.Dst != 2 {
		t.Errorf("named src/dst = %d/%d, want 0/2", a.Src, a.Dst)
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := []string{
		`{"actions":[{"op":"warp","at_s":0}]}`,                                           // unknown op
		`{"actions":[{"op":"crash","at_s":-1,"node":0}]}`,                                // negative time
		`{"actions":[{"op":"crash","at_s":2,"until_s":1,"node":0}]}`,                     // until before at
		`{"actions":[{"op":"crash","at_s":0,"node":-2}]}`,                                // bad node
		`{"actions":[{"op":"degrade","at_s":0,"factor":0.5}]}`,                           // missing link
		`{"actions":[{"op":"degrade","at_s":0,"link":"nic-tx0","factor":1.5}]}`,          // factor >= 1
		`{"actions":[{"op":"flap","at_s":0,"link":"nic-tx0","period_s":0.01}]}`,          // flap without end
		`{"actions":[{"op":"flap","at_s":0,"until_s":1,"link":"nic-tx0"}]}`,              // missing period
		`{"actions":[{"op":"drop","at_s":0,"prob":0}]}`,                                  // prob out of range
		`{"actions":[{"op":"drop","at_s":0,"prob":1.5}]}`,                                // prob out of range
		`{"actions":[{"op":"delay","at_s":0,"prob":0.5}]}`,                               // missing extra
		`{"actions":[{"op":"crash","at_s":0,"node":0},{"op":"drop","at_s":0,"prob":2}]}`, // second action bad
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("schedule %s passed validation", src)
		}
	}
	good := `{"name":"mix","actions":[
		{"op":"crash","at_s":0.5,"until_s":1.0,"node":1},
		{"op":"degrade","at_s":0,"until_s":2,"link":"nic-tx0","factor":0.25},
		{"op":"flap","at_s":0,"until_s":1,"link":"nic-rx1","period_s":0.05},
		{"op":"drop","at_s":0,"prob":0.1,"src":0,"dst":1},
		{"op":"delay","at_s":0,"prob":0.2,"extra_s":0.0001},
		{"op":"duplicate","at_s":0,"prob":0.05}]}`
	if _, err := Parse([]byte(good)); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestInstallRejectsUnknownTargets(t *testing.T) {
	_, c := testCluster(1)
	if _, err := Install(c, &Schedule{Actions: []Action{
		{Op: OpCrash, At: 1, Node: 99}}}); err == nil {
		t.Error("crash of a node outside the machine must fail Install")
	}
	if _, err := Install(c, &Schedule{Actions: []Action{
		{Op: OpDegrade, At: 1, Link: "no-such-link", Factor: 0.5}}}); err == nil {
		t.Error("degrade of an unknown link must fail Install")
	}
}

func TestCrashAndReviveTimeline(t *testing.T) {
	e, c := testCluster(1)
	inj, err := Install(c, &Schedule{Actions: []Action{
		{Op: OpCrash, At: 0.001, Until: 0.002, Node: 1, Src: -1, Dst: -1}}})
	if err != nil {
		t.Fatal(err)
	}
	if c.FaultModel() == nil {
		t.Fatal("Install did not register the fault model")
	}
	type sample struct {
		at   sim.Duration
		want bool
	}
	for _, s := range []sample{
		{500 * sim.Microsecond, false},
		{1500 * sim.Microsecond, true},
		{2500 * sim.Microsecond, false},
	} {
		s := s
		e.After(s.at, func() {
			if got := inj.NodeDown(1); got != s.want {
				t.Errorf("NodeDown(1) at %v = %v, want %v", s.at, got, s.want)
			}
			if got := c.NodeDown(1); got != s.want {
				t.Errorf("Cluster.NodeDown(1) at %v = %v, want %v", s.at, got, s.want)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDegradeScalesAndRestores(t *testing.T) {
	e, c := testCluster(1)
	l := c.LinkByName("nic-tx0")
	base := l.Capacity
	if _, err := Install(c, &Schedule{Actions: []Action{
		{Op: OpDegrade, At: 0.001, Until: 0.002, Link: "nic-tx0", Factor: 0.25, Src: -1, Dst: -1}}}); err != nil {
		t.Fatal(err)
	}
	e.After(1500*sim.Microsecond, func() {
		if l.Capacity != base*0.25 {
			t.Errorf("degraded capacity = %g, want %g", l.Capacity, base*0.25)
		}
	})
	e.After(2500*sim.Microsecond, func() {
		if l.Capacity != base {
			t.Errorf("restored capacity = %g, want %g", l.Capacity, base)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFlapTogglesAndEndsUp(t *testing.T) {
	e, c := testCluster(1)
	l := c.LinkByName("nic-rx1")
	if _, err := Install(c, &Schedule{Actions: []Action{
		{Op: OpFlap, At: 0.001, Until: 0.0035, Link: "nic-rx1", Period: 0.001, Src: -1, Dst: -1}}}); err != nil {
		t.Fatal(err)
	}
	// Half-cycles: down at 1ms, up at 2ms, down at 3ms, forced up at the
	// 4ms tick (past until=3.5ms).
	for _, s := range []struct {
		at   sim.Duration
		want bool
	}{
		{1500 * sim.Microsecond, true},
		{2500 * sim.Microsecond, false},
		{3200 * sim.Microsecond, true},
		{4500 * sim.Microsecond, false},
	} {
		s := s
		e.After(s.at, func() {
			if l.Down != s.want {
				t.Errorf("link down at %v = %v, want %v", s.at, l.Down, s.want)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if l.Down {
		t.Error("flapped link must end the run up")
	}
}

// verdictTape records the injector's decisions for a fixed message
// sequence, exercising NodeDown-induced drops and probability draws.
func verdictTape(t *testing.T, seed int64, prob float64) []fabric.Verdict {
	t.Helper()
	e, c := testCluster(seed)
	_, err := Install(c, &Schedule{Actions: []Action{
		{Op: OpDrop, At: 0, Prob: prob, Src: -1, Dst: -1}}})
	if err != nil {
		t.Fatal(err)
	}
	var tape []fabric.Verdict
	e.Go("probe", func(p *sim.Proc) {
		fm := c.FaultModel()
		for i := 0; i < 200; i++ {
			v, _ := fm.MessageVerdict(0, 1, 8)
			tape = append(tape, v)
			p.Advance(sim.Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return tape
}

func TestDropDecisionsDeterministicUnderSeed(t *testing.T) {
	a := verdictTape(t, 42, 0.3)
	b := verdictTape(t, 42, 0.3)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("identical seed+schedule produced different drop decisions")
	}
	drops := 0
	for _, v := range a {
		if v == fabric.VerdictDrop {
			drops++
		}
	}
	if drops < 30 || drops > 90 {
		t.Errorf("drop rate %d/200 far from prob 0.3", drops)
	}
	if fmt.Sprint(a) == fmt.Sprint(verdictTape(t, 43, 0.3)) {
		t.Error("different seeds produced identical 200-message drop tapes")
	}
}

func TestBackoffSequence(t *testing.T) {
	rp := RetryPolicy{
		Timeout:    500 * sim.Microsecond,
		MaxRetries: 6,
		Backoff:    100 * sim.Microsecond,
		MaxBackoff: 1 * sim.Millisecond,
	}
	want := []sim.Duration{
		100 * sim.Microsecond, // after attempt 1
		200 * sim.Microsecond,
		400 * sim.Microsecond,
		800 * sim.Microsecond,
		1 * sim.Millisecond, // capped
		1 * sim.Millisecond,
	}
	for i, w := range want {
		if got := rp.BackoffFor(i + 1); got != w {
			t.Errorf("BackoffFor(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Deep retry counts must not overflow past the cap.
	if got := rp.BackoffFor(200); got != rp.MaxBackoff {
		t.Errorf("BackoffFor(200) = %v, want cap %v", got, rp.MaxBackoff)
	}
}

func TestAttemptTimeoutGrowth(t *testing.T) {
	rp := DefaultRetryPolicy()
	xfer := 50 * sim.Microsecond
	prev := sim.Duration(0)
	for try := 0; try < 12; try++ {
		got := rp.AttemptTimeout(try, xfer)
		if got < prev {
			t.Errorf("AttemptTimeout(%d) = %v shrank below %v", try, got, prev)
		}
		if got > timeoutScaleCap*rp.Timeout+2*xfer {
			t.Errorf("AttemptTimeout(%d) = %v above the scale cap", try, got)
		}
		prev = got
	}
	if got := rp.AttemptTimeout(0, xfer); got != rp.Timeout+2*xfer {
		t.Errorf("first attempt timeout = %v, want base+2*xfer = %v", got, rp.Timeout+2*xfer)
	}
}

func TestCommErrorUnwraps(t *testing.T) {
	err := error(&CommError{Op: "put", Src: 3, Dst: 7, Attempts: 7, Err: ErrTimeout})
	if !errors.Is(err, ErrTimeout) {
		t.Error("CommError must unwrap to its sentinel")
	}
	var ce *CommError
	if !errors.As(err, &ce) || ce.Attempts != 7 {
		t.Error("CommError must be retrievable via errors.As")
	}
	if errors.Is(err, ErrNodeDown) {
		t.Error("CommError must not match a different sentinel")
	}
}

func TestZeroPolicyDefaults(t *testing.T) {
	var rp RetryPolicy
	if rp.enabled() {
		t.Error("zero policy must read as disabled")
	}
	if rp.OrDefault() != DefaultRetryPolicy() {
		t.Error("OrDefault of a zero policy must be the default policy")
	}
	set := RetryPolicy{Timeout: sim.Millisecond, MaxRetries: 1, Backoff: 1, MaxBackoff: 2}
	if set.OrDefault() != set {
		t.Error("OrDefault must keep an explicit policy")
	}
}

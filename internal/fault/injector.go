package fault

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Injector realizes a schedule against one cluster. It implements
// fabric.FaultModel: the fabric consults it on every message, and timed
// actions (crashes, degradations, flaps) fire as engine events. All
// probability draws come from the engine's seeded PRNG and all times from
// the virtual clock, so a (seed, schedule) pair fully determines every
// injected fault.
type Injector struct {
	eng   *sim.Engine
	cl    *fabric.Cluster
	sched *Schedule
	down  []bool // per node
	rules []rule // message-level rules, in schedule order

	// Membership-epoch state (see DESIGN §15): epoch is the cluster-wide
	// view number, bumped on every crash AND every revival; inc counts
	// each node's completed reincarnations (bumped on revival only).
	// Runtimes stamp one-sided operations with the incarnations of both
	// endpoints at issue time and drop the payload at delivery when
	// either changed, so a node's previous life cannot corrupt its next.
	epoch   int64
	inc     []int64
	onTrans []func(node int, down bool)
}

// rule is one message-level action plus its activation state, toggled by
// the timed events Install books for at_s/until_s.
type rule struct {
	act    *Action
	active bool
}

// Install validates the schedule against the cluster's machine, books
// every timed action on the engine, and registers the injector as the
// cluster's fault model. Call before the engine runs. A nil or empty
// schedule installs nothing and returns a nil injector.
func Install(cl *fabric.Cluster, sched *Schedule) (*Injector, error) {
	if sched == nil || len(sched.Actions) == 0 {
		return nil, nil
	}
	if err := sched.Validate(); err != nil {
		return nil, err
	}
	eng := cl.Eng
	inj := &Injector{eng: eng, cl: cl, sched: sched,
		down: make([]bool, cl.Mach.Nodes), inc: make([]int64, cl.Mach.Nodes)}
	for i := range sched.Actions {
		a := &sched.Actions[i]
		switch a.Op {
		case OpCrash:
			if a.Node >= cl.Mach.Nodes {
				return nil, fmt.Errorf("fault: action %d: crash node %d of %d",
					i, a.Node, cl.Mach.Nodes)
			}
			inj.at(a.At, func() { inj.setDown(a.Node, true) })
			if a.Until > 0 {
				inj.at(a.Until, func() { inj.setDown(a.Node, false) })
			}
		case OpDegrade:
			l := cl.LinkByName(a.Link)
			if l == nil {
				return nil, fmt.Errorf("fault: action %d: unknown link %q", i, a.Link)
			}
			inj.at(a.At, func() {
				base := l.Capacity
				l.Capacity = base * a.Factor
				inj.event("degrade")
				cl.Net.Nudge()
				if a.Until > 0 {
					inj.at(a.Until, func() {
						l.Capacity = base
						inj.event("restore")
						cl.Net.Nudge()
					})
				}
			})
		case OpFlap:
			l := cl.LinkByName(a.Link)
			if l == nil {
				return nil, fmt.Errorf("fault: action %d: unknown link %q", i, a.Link)
			}
			until := sim.Time(sim.FromSeconds(a.Until))
			period := sim.FromSeconds(a.Period)
			var tick func()
			tick = func() {
				if inj.eng.Now() >= until {
					if l.Down {
						l.Down = false
						inj.event("restore")
						cl.Net.Nudge()
					}
					return
				}
				l.Down = !l.Down
				if l.Down {
					inj.event("flap-down")
				} else {
					inj.event("flap-up")
				}
				cl.Net.Nudge()
				eng.After(period, tick)
			}
			inj.at(a.At, tick)
		case OpDrop, OpDelay, OpDuplicate:
			idx := len(inj.rules)
			inj.rules = append(inj.rules, rule{act: a})
			inj.at(a.At, func() { inj.rules[idx].active = true })
			if a.Until > 0 {
				inj.at(a.Until, func() { inj.rules[idx].active = false })
			}
		}
	}
	cl.SetFaultModel(inj)
	return inj, nil
}

// at books fn at absolute virtual second s (relative to the current
// clock, which is 0 when Install runs before the engine).
func (inj *Injector) at(s float64, fn func()) {
	inj.eng.After(sim.FromSeconds(s)-sim.Duration(inj.eng.Now()), fn)
}

// setDown records a crash or revival, advances the membership epoch,
// emits the visibility event, and notifies transition observers. Runs in
// engine context at the scheduled virtual time, so every observer sees a
// consistent (down, epoch, incarnation) triple.
func (inj *Injector) setDown(node int, down bool) {
	inj.down[node] = down
	inj.epoch++
	name := "revive"
	if down {
		name = "crash"
	} else {
		inj.inc[node]++
	}
	if inj.eng.Tracing() {
		inj.eng.TraceInstant(trace.CatComm, name, trace.ClassFault, inj.epoch,
			trace.PackEndpoints(0, 0, node, node))
	}
	for _, fn := range inj.onTrans {
		fn(node, down)
	}
}

// Epoch reports the current membership view number: the count of
// crash/revive transitions so far. Stamp it on control traffic that must
// be fenced against reincarnation.
func (inj *Injector) Epoch() int64 { return inj.epoch }

// Incarnation reports how many completed reincarnations node has had: 0
// for its original life, bumped at each revival. An operation whose
// endpoint incarnations at delivery differ from those at issue is stale.
func (inj *Injector) Incarnation(node int) int64 {
	if node < 0 || node >= len(inj.inc) {
		return 0
	}
	return inj.inc[node]
}

// OnTransition registers an observer of crash/revive transitions, run in
// engine context immediately after the injector's own state flips.
// Runtimes use it to wake threads parked for a revival. Register before
// the engine runs.
func (inj *Injector) OnTransition(fn func(node int, down bool)) {
	inj.onTrans = append(inj.onTrans, fn)
}

// WillRevive reports whether the schedule revives node after the current
// virtual time — i.e. whether a thread parked for the node's rebirth is
// guaranteed a wake-up. Threads must check it before awaiting a revival:
// the revive event is pre-booked at Install, so a true answer means the
// wake is already in the event queue.
func (inj *Injector) WillRevive(node int) bool {
	now := inj.eng.Now()
	for i := range inj.sched.Actions {
		a := &inj.sched.Actions[i]
		if a.Op == OpCrash && a.Node == node && a.Until > 0 &&
			sim.Time(sim.FromSeconds(a.Until)) > now {
			return true
		}
	}
	return false
}

// event emits a link-action visibility instant.
func (inj *Injector) event(name string) {
	if inj.eng.Tracing() {
		inj.eng.TraceInstant(trace.CatComm, name, trace.ClassFault, 0, 0)
	}
}

// NodeDown implements fabric.FaultModel.
func (inj *Injector) NodeDown(node int) bool {
	return node >= 0 && node < len(inj.down) && inj.down[node]
}

// MessageVerdict implements fabric.FaultModel: active rules are consulted
// in schedule order and the first whose filter matches and whose
// probability draw succeeds decides the message. Each matching active
// rule consumes exactly one PRNG draw, keeping the stream a pure function
// of the schedule and the deterministic message order.
func (inj *Injector) MessageVerdict(srcNode, dstNode int, size int64) (fabric.Verdict, sim.Duration) {
	for i := range inj.rules {
		r := &inj.rules[i]
		if !r.active {
			continue
		}
		if r.act.Src >= 0 && r.act.Src != srcNode {
			continue
		}
		if r.act.Dst >= 0 && r.act.Dst != dstNode {
			continue
		}
		if inj.eng.Rand().Float64() >= r.act.Prob {
			continue
		}
		switch r.act.Op {
		case OpDrop:
			return fabric.VerdictDrop, 0
		case OpDuplicate:
			return fabric.VerdictDuplicate, 0
		case OpDelay:
			return fabric.VerdictDelay, sim.FromSeconds(r.act.Extra)
		}
	}
	return fabric.VerdictDeliver, 0
}

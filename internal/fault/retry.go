package fault

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// Sentinel failure causes of a communication attempt.
var (
	// ErrTimeout marks an operation whose retries were exhausted without
	// a completion (the message or its acknowledgement kept getting lost).
	ErrTimeout = errors.New("timed out")
	// ErrNodeDown marks an operation whose peer's node is crashed.
	ErrNodeDown = errors.New("peer node down")
	// ErrStaleEpoch marks an operation issued in a previous membership
	// epoch: one of its endpoints crashed and was reincarnated after the
	// operation left, so completing (or re-issuing) it would let a dead
	// node's past corrupt a live node's present. The payload was dropped
	// at delivery; the issuer must re-run the operation in its new life.
	ErrStaleEpoch = errors.New("stale membership epoch")
)

// CommError is the typed failure a fault-aware communication call
// returns after recovery gave up: which operation, between which
// endpoints (thread or rank ids), how many attempts were made, and why.
type CommError struct {
	Op       string // "put", "get", "send", "barrier", ...
	Src, Dst int
	Attempts int
	Err      error // sentinel cause
}

func (e *CommError) Error() string {
	return fmt.Sprintf("fault: %s %d->%d failed after %d attempts: %v",
		e.Op, e.Src, e.Dst, e.Attempts, e.Err)
}

// Unwrap exposes the sentinel cause for errors.Is.
func (e *CommError) Unwrap() error { return e.Err }

// RetryPolicy is how a runtime recovers from lost messages: per-attempt
// virtual-time timeouts with capped exponential backoff and a bounded
// retry count. The zero value means "no policy"; use DefaultRetryPolicy.
type RetryPolicy struct {
	// Timeout is the base deadline of one attempt, before the expected
	// transfer time is added.
	Timeout sim.Duration
	// MaxRetries bounds re-sends after the first attempt: an operation
	// makes at most MaxRetries+1 attempts.
	MaxRetries int
	// Backoff is the pause after the first failed attempt; it doubles per
	// subsequent failure up to MaxBackoff.
	Backoff sim.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff sim.Duration
}

// DefaultRetryPolicy reports the policy fault-aware runtimes use when
// the caller does not set one. The base timeout comfortably covers a
// healthy small-message round trip (a few microseconds) and the cap
// keeps six attempts within a few milliseconds of virtual time.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Timeout:    500 * sim.Microsecond,
		MaxRetries: 6,
		Backoff:    100 * sim.Microsecond,
		MaxBackoff: 10 * sim.Millisecond,
	}
}

// enabled reports whether the policy is usable (a zero policy is not).
func (rp RetryPolicy) enabled() bool { return rp.Timeout > 0 }

// orDefault replaces a zero policy with the default.
func (rp RetryPolicy) orDefault() RetryPolicy {
	if rp.enabled() {
		return rp
	}
	return DefaultRetryPolicy()
}

// OrDefault replaces a zero policy with DefaultRetryPolicy.
func (rp RetryPolicy) OrDefault() RetryPolicy { return rp.orDefault() }

// timeoutScaleCap bounds the per-attempt timeout growth: later attempts
// wait longer (a degraded-but-alive link needs patience, not traffic)
// but not unboundedly.
const timeoutScaleCap = 8

// AttemptTimeout reports the deadline of attempt try (0-based) for an
// operation whose fault-free completion takes about xfer of pure
// transfer time. The base grows exponentially with the attempt number,
// capped at timeoutScaleCap, so retries on a degraded link converge
// instead of storming.
func (rp RetryPolicy) AttemptTimeout(try int, xfer sim.Duration) sim.Duration {
	scale := sim.Duration(1) << uint(try)
	if scale > timeoutScaleCap || scale <= 0 {
		scale = timeoutScaleCap
	}
	return scale*rp.Timeout + 2*xfer
}

// BackoffFor reports the pause before re-attempt try (1-based: the pause
// taken after the try'th attempt failed): Backoff doubled per failure,
// capped at MaxBackoff.
func (rp RetryPolicy) BackoffFor(try int) sim.Duration {
	if try < 1 {
		try = 1
	}
	b := rp.Backoff << uint(try-1)
	if b > rp.MaxBackoff || b <= 0 {
		b = rp.MaxBackoff
	}
	return b
}

// Package fault provides deterministic fault injection for the simulated
// machine: a declarative JSON schedule of crashes, link degradations,
// flaps and message-level drop/delay/duplicate rules, an Injector that
// realizes the schedule against a fabric.Cluster using only the engine's
// seeded PRNG and virtual clock, and the retry policy the communication
// runtimes use to recover. Identical (seed, schedule) pairs produce
// bit-identical runs at any host parallelism, so chaos experiments are
// exactly reproducible.
package fault

import (
	"encoding/json"
	"fmt"
	"os"
)

// Op names one fault action kind in a schedule.
type Op string

const (
	// OpCrash takes a node down at at_s; an optional until_s revives it.
	// Messages to or from a down node are dropped, including messages
	// already in flight when it goes down.
	OpCrash Op = "crash"
	// OpDegrade scales a named link's capacity by factor at at_s,
	// restoring the original capacity at until_s (0 = never).
	OpDegrade Op = "degrade"
	// OpFlap toggles a named link down and up with half-cycle period_s,
	// starting down at at_s and forced up at until_s (required).
	OpFlap Op = "flap"
	// OpDrop loses matching messages with probability prob.
	OpDrop Op = "drop"
	// OpDelay adds extra_s of latency to matching messages with
	// probability prob.
	OpDelay Op = "delay"
	// OpDuplicate delivers matching messages twice with probability prob.
	OpDuplicate Op = "duplicate"
)

// Action is one entry of a fault schedule. Times are virtual seconds
// since simulation start. Src and Dst filter message-level rules by node
// pair; -1 (the default) matches any node.
type Action struct {
	Op     Op      `json:"op"`
	At     float64 `json:"at_s"`
	Until  float64 `json:"until_s,omitempty"`
	Node   int     `json:"node,omitempty"`
	Link   string  `json:"link,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	Period float64 `json:"period_s,omitempty"`
	Prob   float64 `json:"prob,omitempty"`
	Extra  float64 `json:"extra_s,omitempty"`
	Src    int     `json:"src,omitempty"`
	Dst    int     `json:"dst,omitempty"`
}

// UnmarshalJSON defaults the Src/Dst filters to -1 (match any) so that
// schedules only name them when they mean a specific node pair.
func (a *Action) UnmarshalJSON(b []byte) error {
	type raw Action // drops methods: no recursion
	r := raw{Src: -1, Dst: -1}
	if err := json.Unmarshal(b, &r); err != nil {
		return err
	}
	*a = Action(r)
	return nil
}

// Schedule is a declarative fault plan: a list of actions applied at
// their virtual times. The zero schedule injects nothing.
type Schedule struct {
	// Name labels the schedule in errors and logs.
	Name    string   `json:"name,omitempty"`
	Actions []Action `json:"actions"`
}

// Parse decodes a schedule from JSON and validates it.
func Parse(data []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("fault: parse schedule: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a schedule file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Validate checks every action's fields for the constraints its op
// requires. Node existence and link names are checked later, at Install
// time, against the concrete machine.
func (s *Schedule) Validate() error {
	for i := range s.Actions {
		a := &s.Actions[i]
		fail := func(format string, args ...any) error {
			return fmt.Errorf("fault: action %d (%s): %s", i, a.Op,
				fmt.Sprintf(format, args...))
		}
		if a.At < 0 {
			return fail("at_s %g is negative", a.At)
		}
		if a.Until != 0 && a.Until <= a.At {
			return fail("until_s %g not after at_s %g", a.Until, a.At)
		}
		switch a.Op {
		case OpCrash:
			if a.Node < 0 {
				return fail("node %d is negative", a.Node)
			}
		case OpDegrade:
			if a.Link == "" {
				return fail("link name required")
			}
			if a.Factor < 0 || a.Factor >= 1 {
				return fail("factor %g outside [0,1)", a.Factor)
			}
		case OpFlap:
			if a.Link == "" {
				return fail("link name required")
			}
			if a.Period <= 0 {
				return fail("period_s %g must be positive", a.Period)
			}
			if a.Until <= a.At {
				return fail("until_s required (a flap without an end never stops)")
			}
		case OpDrop, OpDelay, OpDuplicate:
			if a.Prob <= 0 || a.Prob > 1 {
				return fail("prob %g outside (0,1]", a.Prob)
			}
			if a.Op == OpDelay && a.Extra <= 0 {
				return fail("extra_s %g must be positive", a.Extra)
			}
		default:
			return fail("unknown op")
		}
	}
	return nil
}

// defaultSchedule is the process-wide schedule new runs inherit,
// installed by the -faults flag (see tracecli). Mirrors trace.SetDefault.
var defaultSchedule *Schedule

// SetDefault installs the schedule that fault-aware runtimes inject by
// default (nil to clear).
func SetDefault(s *Schedule) { defaultSchedule = s }

// Default reports the process-wide schedule, or nil.
func Default() *Schedule { return defaultSchedule }

// Package fault provides deterministic fault injection for the simulated
// machine: a declarative JSON schedule of crashes, link degradations,
// flaps and message-level drop/delay/duplicate rules, an Injector that
// realizes the schedule against a fabric.Cluster using only the engine's
// seeded PRNG and virtual clock, and the retry policy the communication
// runtimes use to recover. Identical (seed, schedule) pairs produce
// bit-identical runs at any host parallelism, so chaos experiments are
// exactly reproducible.
package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Op names one fault action kind in a schedule.
type Op string

const (
	// OpCrash takes a node down at at_s; an optional until_s revives it.
	// Messages to or from a down node are dropped, including messages
	// already in flight when it goes down.
	OpCrash Op = "crash"
	// OpDegrade scales a named link's capacity by factor at at_s,
	// restoring the original capacity at until_s (0 = never).
	OpDegrade Op = "degrade"
	// OpFlap toggles a named link down and up with half-cycle period_s,
	// starting down at at_s and forced up at until_s (required).
	OpFlap Op = "flap"
	// OpDrop loses matching messages with probability prob.
	OpDrop Op = "drop"
	// OpDelay adds extra_s of latency to matching messages with
	// probability prob.
	OpDelay Op = "delay"
	// OpDuplicate delivers matching messages twice with probability prob.
	OpDuplicate Op = "duplicate"
)

// Action is one entry of a fault schedule. Times are virtual seconds
// since simulation start. Src and Dst filter message-level rules by node
// pair; -1 (the default) matches any node.
type Action struct {
	Op     Op      `json:"op"`
	At     float64 `json:"at_s"`
	Until  float64 `json:"until_s,omitempty"`
	Node   int     `json:"node,omitempty"`
	Link   string  `json:"link,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	Period float64 `json:"period_s,omitempty"`
	Prob   float64 `json:"prob,omitempty"`
	Extra  float64 `json:"extra_s,omitempty"`
	Src    int     `json:"src,omitempty"`
	Dst    int     `json:"dst,omitempty"`
}

// UnmarshalJSON defaults the Src/Dst filters to -1 (match any) so that
// schedules only name them when they mean a specific node pair.
func (a *Action) UnmarshalJSON(b []byte) error {
	type raw Action // drops methods: no recursion
	r := raw{Src: -1, Dst: -1}
	if err := json.Unmarshal(b, &r); err != nil {
		return err
	}
	*a = Action(r)
	return nil
}

// Schedule is a declarative fault plan: a list of actions applied at
// their virtual times. The zero schedule injects nothing.
type Schedule struct {
	// Name labels the schedule in errors and logs.
	Name    string   `json:"name,omitempty"`
	Actions []Action `json:"actions"`

	// src and lines carry source positions for schedules that came from
	// JSON: the file label and the 1-based line each action starts on.
	// Code-built schedules leave them empty and get index-only errors.
	src   string
	lines []int
}

// actionKeys is the strict field set of one action object; Parse rejects
// anything else with the offending line, so a typo ("untils_s") fails
// loudly instead of silently injecting a different fault.
var actionKeys = map[string]bool{
	"op": true, "at_s": true, "until_s": true, "node": true, "link": true,
	"factor": true, "period_s": true, "prob": true, "extra_s": true,
	"src": true, "dst": true,
}

// Parse decodes a schedule from JSON and validates it strictly: unknown
// fields, unknown ops, missing required fields and inverted time windows
// are all reported with the line they appear on.
func Parse(data []byte) (*Schedule, error) {
	var s Schedule
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("fault: parse schedule: %w", err)
	}
	s.src = "schedule"
	if err := s.strictCheck(data); err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a schedule file; errors carry path:line.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, err
	}
	s.src = path
	// Re-validate so any deferred (line-annotated) message names the file.
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// lineAt converts a byte offset into a 1-based line number.
func lineAt(data []byte, off int) int {
	if off > len(data) {
		off = len(data)
	}
	return 1 + bytes.Count(data[:off], []byte{'\n'})
}

// strictCheck re-walks the raw JSON to (a) record the line each action
// starts on and (b) reject unknown action fields. It runs after the
// permissive decode, so data is known to be well-formed JSON.
func (s *Schedule) strictCheck(data []byte) error {
	var top struct {
		Name    json.RawMessage   `json:"name"`
		Actions []json.RawMessage `json:"actions"`
	}
	if err := json.Unmarshal(data, &top); err != nil {
		return fmt.Errorf("fault: parse schedule: %w", err)
	}
	s.lines = make([]int, len(top.Actions))
	cursor := 0
	for i, raw := range top.Actions {
		// Locate this action's opening brace in the source text: raw is a
		// verbatim sub-slice of data, so searching from the previous
		// action's end finds the exact byte offset, hence the line.
		off := bytes.Index(data[cursor:], raw)
		if off < 0 {
			off = 0 // defensive: fall back to line 1
		} else {
			off += cursor
			cursor = off + len(raw)
		}
		s.lines[i] = lineAt(data, off)
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(raw, &fields); err != nil {
			return fmt.Errorf("fault: %s:%d: action %d is not an object: %w",
				s.src, s.lines[i], i, err)
		}
		for k := range fields {
			if !actionKeys[k] {
				return fmt.Errorf("fault: %s:%d: action %d: unknown field %q",
					s.src, s.lines[i], i, k)
			}
		}
		if _, ok := fields["op"]; !ok {
			return fmt.Errorf("fault: %s:%d: action %d: missing field \"op\"",
				s.src, s.lines[i], i)
		}
		for _, req := range requiredKeys(s.Actions[i].Op) {
			if _, ok := fields[req]; !ok {
				return fmt.Errorf("fault: %s:%d: action %d (%s): missing field %q",
					s.src, s.lines[i], i, s.Actions[i].Op, req)
			}
		}
	}
	return nil
}

// requiredKeys lists the fields an op cannot do without. Unknown ops
// return nothing here; Validate rejects them with the op name.
func requiredKeys(op Op) []string {
	switch op {
	case OpCrash:
		return []string{"node"}
	case OpDegrade:
		return []string{"link", "factor"}
	case OpFlap:
		return []string{"link", "period_s", "until_s"}
	case OpDrop, OpDuplicate:
		return []string{"prob"}
	case OpDelay:
		return []string{"prob", "extra_s"}
	}
	return nil
}

// Validate checks every action's fields for the constraints its op
// requires. Node existence and link names are checked later, at Install
// time, against the concrete machine.
func (s *Schedule) Validate() error {
	for i := range s.Actions {
		a := &s.Actions[i]
		fail := func(format string, args ...any) error {
			loc := ""
			if i < len(s.lines) {
				loc = fmt.Sprintf("%s:%d: ", s.src, s.lines[i])
			}
			return fmt.Errorf("fault: %saction %d (%s): %s", loc, i, a.Op,
				fmt.Sprintf(format, args...))
		}
		if a.At < 0 {
			return fail("at_s %g is negative", a.At)
		}
		if a.Until != 0 && a.Until <= a.At {
			return fail("until_s %g not after at_s %g", a.Until, a.At)
		}
		switch a.Op {
		case OpCrash:
			if a.Node < 0 {
				return fail("node %d is negative", a.Node)
			}
		case OpDegrade:
			if a.Link == "" {
				return fail("link name required")
			}
			if a.Factor < 0 || a.Factor >= 1 {
				return fail("factor %g outside [0,1)", a.Factor)
			}
		case OpFlap:
			if a.Link == "" {
				return fail("link name required")
			}
			if a.Period <= 0 {
				return fail("period_s %g must be positive", a.Period)
			}
			if a.Until <= a.At {
				return fail("until_s required (a flap without an end never stops)")
			}
		case OpDrop, OpDelay, OpDuplicate:
			if a.Prob <= 0 || a.Prob > 1 {
				return fail("prob %g outside (0,1]", a.Prob)
			}
			if a.Op == OpDelay && a.Extra <= 0 {
				return fail("extra_s %g must be positive", a.Extra)
			}
		default:
			return fail("unknown op")
		}
	}
	return nil
}

// defaultSchedule is the process-wide schedule new runs inherit,
// installed by the -faults flag (see tracecli). Mirrors trace.SetDefault.
var defaultSchedule *Schedule

// SetDefault installs the schedule that fault-aware runtimes inject by
// default (nil to clear).
func SetDefault(s *Schedule) { defaultSchedule = s }

// Default reports the process-wide schedule, or nil.
func Default() *Schedule { return defaultSchedule }

package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Sharded-engine fault injection. The same JSON schedules that drive
// the fabric.Cluster Injector apply to a sim.ShardGroup run: message
// rules (drop/delay/duplicate with Src/Dst node filters) become the
// group's MessageFilter, evaluated at send time in the sending lane's
// context with that lane's own RNG — so verdicts interleave
// deterministically with the model's draws regardless of worker count —
// and crash actions are booked as events on the victim lane that mark
// it down (in-flight messages to it are dropped at their arrival
// instants). A rule's active window is a pure function of virtual time,
// so no cross-lane activation state is needed.
//
// Crash actions with until_s become static outage windows
// (sim.ShardGroup.SetOutage): the lane is down for [at_s, until_s) and
// reincarnated after, with lane-transition events booked at both edges
// so runtimes can retire and rejoin the lane's processes. Incarnation
// numbers derived from the static windows fence stale cross-lane
// messages (see shardMsg in internal/sim).
//
// Degrade and flap rules name fluid-Net links, which the sharded
// fixed-rate cross-lane path does not have; the NIC links ("nic-tx<n>",
// "nic-rx<n>") are mapped onto the lane mesh instead — a degraded NIC
// stretches matching messages by the wire-latency ratio, a flapping NIC
// drops them during its down half-cycles — both pure functions of
// virtual time, consuming no RNG draws (the legacy engine's fluid
// counterparts draw none either). Core and memory links have no
// cross-lane analogue and are rejected.

// InstallShard realizes sched against group g: installs the message
// filter, books crash outages and transition events on the victim
// lanes, and maps NIC degrade/flap rules onto the lane mesh. Node
// indices in the schedule are lane indices. A nil or empty schedule is
// a no-op. Call after the group (and its lookahead links) is built,
// before Run.
func InstallShard(g *sim.ShardGroup, sched *Schedule) error {
	if sched == nil || len(sched.Actions) == 0 {
		return nil
	}
	if err := sched.Validate(); err != nil {
		return err
	}
	var msgRules []Action
	var outages []Action // crash-with-revive windows, per-lane sorted below
	for i := range sched.Actions {
		a := sched.Actions[i]
		switch a.Op {
		case OpDrop, OpDelay, OpDuplicate:
			msgRules = append(msgRules, a)
		case OpCrash:
			if a.Node >= g.Lanes() {
				return fmt.Errorf("fault: crash node %d, sharded run has %d lanes", a.Node, g.Lanes())
			}
			if a.Until != 0 {
				outages = append(outages, a)
				continue
			}
			lane := g.Lane(a.Node)
			at := sim.FromSeconds(a.At)
			lane.After(at-lane.Now(), func() {
				g.CrashLane(lane)
				lane.TraceInstant("fault", "crash", "", int64(a.Node), 0)
				g.NotifyLaneTransition(a.Node, true)
			})
		case OpDegrade, OpFlap:
			if _, _, err := nicLane(a.Link); err != nil {
				return err
			}
			msgRules = append(msgRules, a)
		default:
			return fmt.Errorf("fault: unknown op %q", a.Op)
		}
	}
	// Outage windows are static: register them sorted per lane so lane
	// liveness and incarnations are pure functions of virtual time, and
	// book the transition events that retire and rejoin the lane's model.
	sort.SliceStable(outages, func(i, j int) bool { return outages[i].At < outages[j].At })
	lastUntil := make(map[int]float64)
	for i := range outages {
		a := outages[i]
		if a.At < lastUntil[a.Node] {
			return fmt.Errorf("fault: crash windows on node %d overlap (at_s %g inside an earlier window)", a.Node, a.At)
		}
		lastUntil[a.Node] = a.Until
		from, until := sim.FromSeconds(a.At), sim.FromSeconds(a.Until)
		g.SetOutage(a.Node, sim.Time(from), sim.Time(until))
		lane := g.Lane(a.Node)
		lane.After(from-lane.Now(), func() {
			lane.TraceInstant("fault", "crash", "", int64(a.Node), 0)
			g.NotifyLaneTransition(a.Node, true)
		})
		lane.After(until-lane.Now(), func() {
			lane.TraceInstant("fault", "revive", "", int64(a.Node), 0)
			g.NotifyLaneTransition(a.Node, false)
		})
	}
	if len(msgRules) > 0 {
		g.SetMessageFilter(shardFilter(g, msgRules))
	}
	return nil
}

// nicLane maps a legacy NIC link name onto the lane mesh: "nic-tx<n>"
// degrades/flaps messages leaving lane n, "nic-rx<n>" messages entering
// it. Core and memory links have no cross-lane analogue.
func nicLane(name string) (lane int, egress bool, err error) {
	var rest string
	switch {
	case strings.HasPrefix(name, "nic-tx"):
		rest, egress = name[len("nic-tx"):], true
	case strings.HasPrefix(name, "nic-rx"):
		rest, egress = name[len("nic-rx"):], false
	default:
		return 0, false, fmt.Errorf("fault: link %q has no sharded analogue (only NIC links nic-tx<n>/nic-rx<n> map onto the lane mesh)", name)
	}
	lane, err = strconv.Atoi(rest)
	if err != nil {
		return 0, false, fmt.Errorf("fault: link %q: bad NIC index: %v", name, err)
	}
	return lane, egress, nil
}

// shardFilter builds the group's MessageFilter from the schedule's
// message rules. Probabilistic rules are consulted in schedule order
// with one RNG draw per active matching rule — the same contract as the
// Injector's MessageVerdict — and the first triggered rule wins.
// Degrade and flap rules are deterministic (no draws): a degraded NIC
// delays matching messages by the wire-latency ratio of the slowdown, a
// flapping NIC drops them during its down half-cycles.
func shardFilter(g *sim.ShardGroup, rules []Action) sim.MessageFilter {
	return func(src, dst int, at sim.Time, size int64, rng *rand.Rand) (sim.MessageVerdict, sim.Duration) {
		now := at.Seconds()
		for i := range rules {
			a := &rules[i]
			if now < a.At || (a.Until != 0 && now >= a.Until) {
				continue
			}
			switch a.Op {
			case OpDegrade, OpFlap:
				lane, egress, _ := nicLane(a.Link) // validated at install
				if (egress && lane != src) || (!egress && lane != dst) {
					continue
				}
				if a.Op == OpFlap {
					// Down during even half-cycles, starting down at at_s —
					// the legacy flap's toggle pattern as a pure time function.
					if int64((now-a.At)/a.Period)%2 == 0 {
						return sim.MsgDrop, 0
					}
					continue
				}
				// Degrade: the fixed-rate path has no fluid capacity to
				// scale, so stretch the message by the same ratio the
				// slowdown would stretch the wire: factor 0.25 means 4x the
				// baseline latency, i.e. (1/factor - 1) extra lookaheads.
				// Factor 0 is a dead link: nothing gets through.
				if a.Factor <= 0 {
					return sim.MsgDrop, 0
				}
				la := g.Lookahead(src, dst)
				return sim.MsgDelay, sim.Duration(float64(la) * (1/a.Factor - 1))
			}
			if a.Src >= 0 && a.Src != src {
				continue
			}
			if a.Dst >= 0 && a.Dst != dst {
				continue
			}
			if rng.Float64() >= a.Prob {
				continue
			}
			switch a.Op {
			case OpDrop:
				return sim.MsgDrop, 0
			case OpDelay:
				return sim.MsgDelay, sim.FromSeconds(a.Extra)
			case OpDuplicate:
				return sim.MsgDuplicate, 0
			}
		}
		return sim.MsgDeliver, 0
	}
}

package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// Sharded-engine fault injection. The same JSON schedules that drive
// the fabric.Cluster Injector apply to a sim.ShardGroup run: message
// rules (drop/delay/duplicate with Src/Dst node filters) become the
// group's MessageFilter, evaluated at send time in the sending lane's
// context with that lane's own RNG — so verdicts interleave
// deterministically with the model's draws regardless of worker count —
// and crash actions are booked as events on the victim lane that mark
// it down (in-flight messages to it are dropped at their arrival
// instants). A rule's active window is a pure function of virtual time,
// so no cross-lane activation state is needed.
//
// Degrade and flap rules name fluid-Net links, which the sharded
// fixed-rate cross-lane path does not have; InstallShard rejects
// schedules containing them rather than silently ignoring faults.

// InstallShard realizes sched against group g: installs the message
// filter and books crash events on the victim lanes. Node indices in
// the schedule are lane indices. A nil or empty schedule is a no-op.
// Call after the group (and its lookahead links) is built, before Run.
func InstallShard(g *sim.ShardGroup, sched *Schedule) error {
	if sched == nil || len(sched.Actions) == 0 {
		return nil
	}
	var msgRules []Action
	for i := range sched.Actions {
		a := sched.Actions[i]
		switch a.Op {
		case OpDrop, OpDelay, OpDuplicate:
			msgRules = append(msgRules, a)
		case OpCrash:
			if a.Node >= g.Lanes() {
				return fmt.Errorf("fault: crash node %d, sharded run has %d lanes", a.Node, g.Lanes())
			}
			if a.Until != 0 {
				return fmt.Errorf("fault: crash with until_s: the sharded engine does not model revival")
			}
			lane := g.Lane(a.Node)
			at := sim.FromSeconds(a.At)
			lane.After(at-lane.Now(), func() {
				g.CrashLane(lane)
				lane.TraceInstant("fault", "crash", "", int64(a.Node), 0)
			})
		case OpDegrade, OpFlap:
			return fmt.Errorf("fault: %s targets a fluid-net link; the sharded cross-lane path is fixed-rate (run it on the legacy engine)", a.Op)
		default:
			return fmt.Errorf("fault: unknown op %q", a.Op)
		}
	}
	if len(msgRules) > 0 {
		g.SetMessageFilter(shardFilter(msgRules))
	}
	return nil
}

// shardFilter builds the group's MessageFilter from the schedule's
// message rules. Rules are consulted in schedule order with one RNG
// draw per active matching rule — the same contract as the Injector's
// MessageVerdict — and the first triggered rule wins.
func shardFilter(rules []Action) sim.MessageFilter {
	return func(src, dst int, at sim.Time, size int64, rng *rand.Rand) (sim.MessageVerdict, sim.Duration) {
		now := at.Seconds()
		for i := range rules {
			a := &rules[i]
			if now < a.At || (a.Until != 0 && now >= a.Until) {
				continue
			}
			if a.Src >= 0 && a.Src != src {
				continue
			}
			if a.Dst >= 0 && a.Dst != dst {
				continue
			}
			if rng.Float64() >= a.Prob {
				continue
			}
			switch a.Op {
			case OpDrop:
				return sim.MsgDrop, 0
			case OpDelay:
				return sim.MsgDelay, sim.FromSeconds(a.Extra)
			case OpDuplicate:
				return sim.MsgDuplicate, 0
			}
		}
		return sim.MsgDeliver, 0
	}
}

package fault

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestShardCallRetryLossy: under a heavy drop/duplicate/delay schedule,
// retransmission with reply caching still completes every call exactly
// once, deterministically across worker counts.
func TestShardCallRetryLossy(t *testing.T) {
	sched := &Schedule{Actions: []Action{
		{Op: OpDrop, Prob: 0.4, Until: 0.01, Src: -1, Dst: -1},
		{Op: OpDuplicate, Prob: 0.3, Until: 0.01, Src: -1, Dst: -1},
		{Op: OpDelay, Prob: 0.3, Extra: 20e-6, Until: 0.01, Src: -1, Dst: -1},
	}}
	run := func(workers int) (int, uint64, sim.Time) {
		d := trace.NewDigest()
		g := sim.NewShardGroup(5, 4, d)
		g.SetWorkers(workers)
		n := fabric.NewShardNet(g, fabric.QDRInfiniBand())
		if err := InstallShard(g, sched); err != nil {
			t.Fatal(err)
		}
		rp := DefaultRetryPolicy()
		handled := 0
		for lane := 1; lane < 4; lane++ {
			n.Port(lane).Handle(1, func(src int, arg int64) (int64, func()) {
				handled++ // exactly once per logical call: dedup absorbs retries
				return 64, nil
			})
		}
		g.Lane(0).Go("caller", func(p *sim.Proc) {
			for i := 0; i < 30; i++ {
				dst := 1 + i%3
				n.Port(0).CallRetry(p, 0, dst, 1, int64(i), 16,
					func(try int) sim.Duration { return rp.AttemptTimeout(try, 5*sim.Microsecond) })
			}
		})
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return handled, d.Sum64(), g.Lane(0).Now()
	}
	h1, d1, t1 := run(1)
	if h1 != 30 {
		t.Fatalf("handlers ran %d times, want exactly 30", h1)
	}
	h4, d4, t4 := run(4)
	if h4 != h1 || d4 != d1 || t4 != t1 {
		t.Fatalf("workers=4 diverged: handled %d/%d, digest %016x/%016x, end %v/%v",
			h4, h1, d4, d1, t4, t1)
	}
}

// TestInstallShardCrash: a crash action books the down-mark on the
// victim lane; a message in flight across the crash instant is lost.
func TestInstallShardCrash(t *testing.T) {
	sched := &Schedule{Actions: []Action{
		{Op: OpCrash, At: 10e-6, Node: 1},
	}}
	g := sim.NewShardGroup(3, 2, nil)
	g.SetLookahead(0, 1, 2*sim.Microsecond)
	if err := InstallShard(g, sched); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	g.Lane(0).Go("sender", func(p *sim.Proc) {
		// Arrives at 5us: before the crash, lands.
		g.Send(p.Engine(), 1, 5*sim.Microsecond, 8, func() { delivered++ })
		p.Advance(9 * sim.Microsecond)
		// Sent at 9us, arrives at 14us: in flight across the 10us crash.
		g.Send(p.Engine(), 1, 5*sim.Microsecond, 8, func() { delivered++ })
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (pre-crash only)", delivered)
	}
	if !g.LaneDown(1, 10*sim.Microsecond) || g.LaneDown(1, 9999) {
		t.Fatal("down window wrong")
	}
}

// TestInstallShardLinkRules: degrade and flap map onto the lane mesh
// via the NIC link names — a degraded NIC stretches matching messages
// deterministically, a flapping NIC drops them during down half-cycles
// — while core/memory links (no cross-lane analogue) stay rejected.
func TestInstallShardLinkRules(t *testing.T) {
	run := func(sched *Schedule, fn func(g *sim.ShardGroup, p *sim.Proc, hits *int)) (int, sim.Time) {
		g := sim.NewShardGroup(1, 2, nil)
		g.SetLookahead(0, 1, 2*sim.Microsecond)
		if err := InstallShard(g, sched); err != nil {
			t.Fatal(err)
		}
		hits := 0
		var end sim.Time
		g.Lane(1).Go("sink", func(p *sim.Proc) {})
		g.Lane(0).Go("src", func(p *sim.Proc) {
			fn(g, p, &hits)
		})
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		end = g.Lane(1).Now()
		return hits, end
	}

	// Degrade at factor 0.25: the message is stretched by 3 extra
	// lookaheads (1/0.25 - 1), so it lands at 2us + 6us = 8us.
	degrade := &Schedule{Actions: []Action{
		{Op: OpDegrade, Link: "nic-tx0", Factor: 0.25, Until: 1, Src: -1, Dst: -1},
	}}
	hits, end := run(degrade, func(g *sim.ShardGroup, p *sim.Proc, hits *int) {
		g.Send(p.Engine(), 1, 2*sim.Microsecond, 8, func() { *hits++ })
	})
	if hits != 1 || end != sim.Time(8*sim.Microsecond) {
		t.Fatalf("degraded send: hits=%d end=%v, want 1 hit at 8µs", hits, end)
	}

	// Flap with 10us half-cycles starting at 0: a send at 5us (down
	// half-cycle) drops, a send at 15us (up half-cycle) lands.
	flap := &Schedule{Actions: []Action{
		{Op: OpFlap, Link: "nic-tx0", Period: 10e-6, Until: 1, Src: -1, Dst: -1},
	}}
	hits, _ = run(flap, func(g *sim.ShardGroup, p *sim.Proc, hits *int) {
		p.Advance(5 * sim.Microsecond)
		g.Send(p.Engine(), 1, 2*sim.Microsecond, 8, func() { *hits++ })
		p.Advance(10 * sim.Microsecond)
		g.Send(p.Engine(), 1, 2*sim.Microsecond, 8, func() { *hits++ })
	})
	if hits != 1 {
		t.Fatalf("flapped sends: hits=%d, want 1 (down half-cycle drops)", hits)
	}

	// Links without a lane-mesh analogue stay rejected.
	g := sim.NewShardGroup(1, 2, nil)
	err := InstallShard(g, &Schedule{Actions: []Action{
		{Op: OpDegrade, Link: "mem0", Factor: 0.5, Src: -1, Dst: -1},
	}})
	if err == nil || !strings.Contains(err.Error(), "mem0") {
		t.Fatalf("err = %v, want mem0 rejection", err)
	}
}

// TestInstallShardOutage: a crash with until_s is a static outage
// window — down inside it, reincarnated after — with the incarnation
// fence dropping unreliable messages that cross the revival.
func TestInstallShardOutage(t *testing.T) {
	sched := &Schedule{Actions: []Action{
		{Op: OpCrash, At: 10e-6, Until: 30e-6, Node: 1},
	}}
	g := sim.NewShardGroup(3, 2, nil)
	g.SetLookahead(0, 1, 2*sim.Microsecond)
	if err := InstallShard(g, sched); err != nil {
		t.Fatal(err)
	}
	var transitions []bool
	g.OnLaneTransition(func(lane int, down bool) {
		if lane == 1 {
			transitions = append(transitions, down)
		}
	})
	delivered := 0
	g.Lane(0).Go("sender", func(p *sim.Proc) {
		// Lands at 5us, before the outage: delivered.
		g.Send(p.Engine(), 1, 5*sim.Microsecond, 8, func() { delivered++ })
		p.Advance(15 * sim.Microsecond)
		// Sent at 15us into the outage, lands at 20us, still inside: dropped.
		g.Send(p.Engine(), 1, 5*sim.Microsecond, 8, func() { delivered++ })
		// Sent at 15us with 20us of wire: lands at 35us, after the revival,
		// but its source-time incarnation is stale: dropped by the fence.
		g.Send(p.Engine(), 1, 20*sim.Microsecond, 8, func() { delivered++ })
		p.Advance(20 * sim.Microsecond)
		// Sent at 35us, post-revival on both ends: delivered.
		g.Send(p.Engine(), 1, 5*sim.Microsecond, 8, func() { delivered++ })
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered = %d, want 2 (pre-outage + post-revival)", delivered)
	}
	if g.LaneDown(1, 5*sim.Microsecond) || !g.LaneDown(1, 10*sim.Microsecond) ||
		!g.LaneDown(1, 29*sim.Microsecond) || g.LaneDown(1, 30*sim.Microsecond) {
		t.Fatal("outage window wrong")
	}
	if g.IncarnationAt(1, 0) != 0 || g.IncarnationAt(1, 30*sim.Microsecond) != 1 {
		t.Fatal("incarnation counting wrong")
	}
	if len(transitions) != 2 || !transitions[0] || transitions[1] {
		t.Fatalf("transitions = %v, want [down, up]", transitions)
	}
}

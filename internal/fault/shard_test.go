package fault

import (
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestShardCallRetryLossy: under a heavy drop/duplicate/delay schedule,
// retransmission with reply caching still completes every call exactly
// once, deterministically across worker counts.
func TestShardCallRetryLossy(t *testing.T) {
	sched := &Schedule{Actions: []Action{
		{Op: OpDrop, Prob: 0.4, Until: 0.01, Src: -1, Dst: -1},
		{Op: OpDuplicate, Prob: 0.3, Until: 0.01, Src: -1, Dst: -1},
		{Op: OpDelay, Prob: 0.3, Extra: 20e-6, Until: 0.01, Src: -1, Dst: -1},
	}}
	run := func(workers int) (int, uint64, sim.Time) {
		d := trace.NewDigest()
		g := sim.NewShardGroup(5, 4, d)
		g.SetWorkers(workers)
		n := fabric.NewShardNet(g, fabric.QDRInfiniBand())
		if err := InstallShard(g, sched); err != nil {
			t.Fatal(err)
		}
		rp := DefaultRetryPolicy()
		handled := 0
		for lane := 1; lane < 4; lane++ {
			n.Port(lane).Handle(1, func(src int, arg int64) (int64, func()) {
				handled++ // exactly once per logical call: dedup absorbs retries
				return 64, nil
			})
		}
		g.Lane(0).Go("caller", func(p *sim.Proc) {
			for i := 0; i < 30; i++ {
				dst := 1 + i%3
				n.Port(0).CallRetry(p, 0, dst, 1, int64(i), 16,
					func(try int) sim.Duration { return rp.AttemptTimeout(try, 5*sim.Microsecond) })
			}
		})
		if err := g.Run(); err != nil {
			t.Fatal(err)
		}
		return handled, d.Sum64(), g.Lane(0).Now()
	}
	h1, d1, t1 := run(1)
	if h1 != 30 {
		t.Fatalf("handlers ran %d times, want exactly 30", h1)
	}
	h4, d4, t4 := run(4)
	if h4 != h1 || d4 != d1 || t4 != t1 {
		t.Fatalf("workers=4 diverged: handled %d/%d, digest %016x/%016x, end %v/%v",
			h4, h1, d4, d1, t4, t1)
	}
}

// TestInstallShardCrash: a crash action books the down-mark on the
// victim lane; a message in flight across the crash instant is lost.
func TestInstallShardCrash(t *testing.T) {
	sched := &Schedule{Actions: []Action{
		{Op: OpCrash, At: 10e-6, Node: 1},
	}}
	g := sim.NewShardGroup(3, 2, nil)
	g.SetLookahead(0, 1, 2*sim.Microsecond)
	if err := InstallShard(g, sched); err != nil {
		t.Fatal(err)
	}
	delivered := 0
	g.Lane(0).Go("sender", func(p *sim.Proc) {
		// Arrives at 5us: before the crash, lands.
		g.Send(p.Engine(), 1, 5*sim.Microsecond, 8, func() { delivered++ })
		p.Advance(9 * sim.Microsecond)
		// Sent at 9us, arrives at 14us: in flight across the 10us crash.
		g.Send(p.Engine(), 1, 5*sim.Microsecond, 8, func() { delivered++ })
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1 (pre-crash only)", delivered)
	}
	if !g.LaneDown(1, 10*sim.Microsecond) || g.LaneDown(1, 9999) {
		t.Fatal("down window wrong")
	}
}

// TestInstallShardRejectsLinkRules: link-targeted ops have no sharded
// equivalent and must be rejected loudly.
func TestInstallShardRejectsLinkRules(t *testing.T) {
	g := sim.NewShardGroup(1, 2, nil)
	err := InstallShard(g, &Schedule{Actions: []Action{
		{Op: OpDegrade, Link: "nic-tx0", Factor: 0.5, Src: -1, Dst: -1},
	}})
	if err == nil || !strings.Contains(err.Error(), "degrade") {
		t.Fatalf("err = %v, want degrade rejection", err)
	}
}

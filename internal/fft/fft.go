// Package fft provides the serial complex-to-complex fast Fourier
// transforms that the NAS FT reproduction computes with (the role FFTW
// plays in the thesis): an iterative radix-2 Cooley-Tukey transform with
// cached twiddle tables, forward and inverse, over 1D vectors, strided
// views, and 2D planes.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync" //upcvet:rawgo -- host-side memo cache, shared across sweep workers; not simulated concurrency
)

// twiddle tables are cached per size; guarded for callers that run
// transforms from multiple goroutines (the simulator is sequential, but
// tests and examples may not be).
var (
	twiddleMu    sync.Mutex
	twiddleCache = map[int][]complex128{}
)

// twiddles returns the first half of the n-th roots of unity, w^k =
// exp(-2πik/n) for k in [0, n/2).
func twiddles(n int) []complex128 {
	twiddleMu.Lock()
	defer twiddleMu.Unlock()
	if w, ok := twiddleCache[n]; ok {
		return w
	}
	w := make([]complex128, n/2)
	for k := range w {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		w[k] = complex(c, s)
	}
	twiddleCache[n] = w
	return w
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Transform computes the in-place FFT of data (forward for inverse=false).
// The inverse transform includes the 1/N scaling, so
// Transform(Transform(x, false), true) reproduces x. len(data) must be a
// positive power of two.
func Transform(data []complex128, inverse bool) {
	n := len(data)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			data[i], data[j] = data[j], data[i]
		}
	}
	w := twiddles(n)
	for span := 1; span < n; span <<= 1 {
		step := n / (2 * span) // twiddle stride for this stage
		for start := 0; start < n; start += 2 * span {
			for k := 0; k < span; k++ {
				tw := w[k*step]
				if inverse {
					tw = complex(real(tw), -imag(tw))
				}
				a := data[start+k]
				b := data[start+span+k] * tw
				data[start+k] = a + b
				data[start+span+k] = a - b
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range data {
			data[i] *= inv
		}
	}
}

// Strided transforms the length-n view data[offset + i*stride] in place.
// It gathers into a scratch vector, transforms, and scatters back — the
// standard approach for the non-unit-stride dimensions of a 3D transform.
func Strided(data []complex128, offset, stride, n int, inverse bool, scratch []complex128) {
	if len(scratch) < n {
		scratch = make([]complex128, n)
	}
	for i := 0; i < n; i++ {
		scratch[i] = data[offset+i*stride]
	}
	Transform(scratch[:n], inverse)
	for i := 0; i < n; i++ {
		data[offset+i*stride] = scratch[i]
	}
}

// Transform2D computes the in-place 2D FFT of a row-major nx×ny plane
// (rows of length ny): first each row, then each column.
func Transform2D(data []complex128, nx, ny int, inverse bool) {
	if len(data) != nx*ny {
		panic(fmt.Sprintf("fft: plane %dx%d over %d elements", nx, ny, len(data)))
	}
	for r := 0; r < nx; r++ {
		Transform(data[r*ny:(r+1)*ny], inverse)
	}
	scratch := make([]complex128, nx)
	for c := 0; c < ny; c++ {
		Strided(data, c, ny, nx, inverse, scratch)
	}
}

// DFT computes the naive O(N²) discrete Fourier transform; the reference
// implementation used by tests.
func DFT(in []complex128, inverse bool) []complex128 {
	n := len(in)
	out := make([]complex128, n)
	sign := -2 * math.Pi
	if inverse {
		sign = 2 * math.Pi
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			s, c := math.Sincos(sign * float64(k) * float64(j) / float64(n))
			acc += in[j] * complex(c, s)
		}
		if inverse {
			acc /= complex(float64(n), 0)
		}
		out[k] = acc
	}
	return out
}

// OpCount reports the floating-point operation count of one length-n FFT
// (the standard 5·n·log2(n) convention) for the cost model.
func OpCount(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomVector(n int, seed int64) []complex128 {
	r := rand.New(rand.NewSource(seed))
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return v
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		in := randomVector(n, int64(n))
		want := DFT(in, false)
		got := append([]complex128(nil), in...)
		Transform(got, false)
		if e := maxErr(got, want); e > 1e-9*float64(n) {
			t.Errorf("n=%d: FFT differs from DFT by %g", n, e)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	in := randomVector(128, 7)
	want := DFT(in, true)
	got := append([]complex128(nil), in...)
	Transform(got, true)
	if e := maxErr(got, want); e > 1e-10 {
		t.Errorf("inverse FFT differs from inverse DFT by %g", e)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, logN uint8) bool {
		n := 1 << (logN%10 + 1)
		in := randomVector(n, seed)
		work := append([]complex128(nil), in...)
		Transform(work, false)
		Transform(work, true)
		return maxErr(work, in) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestImpulseGivesFlatSpectrum(t *testing.T) {
	n := 64
	in := make([]complex128, n)
	in[0] = 1
	Transform(in, false)
	for i, v := range in {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("bin %d = %v, want 1 (impulse transform)", i, v)
		}
	}
}

func TestSingleToneLandsInOneBin(t *testing.T) {
	n := 128
	k := 5
	in := make([]complex128, n)
	for j := range in {
		s, c := math.Sincos(2 * math.Pi * float64(k) * float64(j) / float64(n))
		in[j] = complex(c, s)
	}
	Transform(in, false)
	for i, v := range in {
		want := 0.0
		if i == k {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Errorf("bin %d magnitude = %g, want %g", i, cmplx.Abs(v), want)
		}
	}
}

func TestParseval(t *testing.T) {
	in := randomVector(256, 11)
	var timeE float64
	for _, v := range in {
		timeE += real(v)*real(v) + imag(v)*imag(v)
	}
	Transform(in, false)
	var freqE float64
	for _, v := range in {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(len(in))-timeE) > 1e-8*timeE {
		t.Errorf("Parseval violated: time %g vs freq/N %g", timeE, freqE/float64(len(in)))
	}
}

func TestLinearityProperty(t *testing.T) {
	f := func(seedA, seedB int64, scaleRe, scaleIm int16) bool {
		n := 64
		a := randomVector(n, seedA)
		b := randomVector(n, seedB)
		alpha := complex(float64(scaleRe)/100, float64(scaleIm)/100)
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + alpha*b[i]
		}
		fa := append([]complex128(nil), a...)
		fb := append([]complex128(nil), b...)
		fs := append([]complex128(nil), sum...)
		Transform(fa, false)
		Transform(fb, false)
		Transform(fs, false)
		for i := range fs {
			if cmplx.Abs(fs[i]-(fa[i]+alpha*fb[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStridedEqualsGatherTransform(t *testing.T) {
	nx, ny := 8, 16
	data := randomVector(nx*ny, 3)
	ref := append([]complex128(nil), data...)
	// Column 5 via Strided.
	Strided(data, 5, ny, nx, false, nil)
	// Reference: gather, transform, scatter.
	col := make([]complex128, nx)
	for i := 0; i < nx; i++ {
		col[i] = ref[5+i*ny]
	}
	Transform(col, false)
	for i := 0; i < nx; i++ {
		ref[5+i*ny] = col[i]
	}
	if e := maxErr(data, ref); e > 1e-12 {
		t.Errorf("strided transform differs by %g", e)
	}
}

func TestTransform2DRoundTrip(t *testing.T) {
	nx, ny := 16, 32
	in := randomVector(nx*ny, 9)
	work := append([]complex128(nil), in...)
	Transform2D(work, nx, ny, false)
	Transform2D(work, nx, ny, true)
	if e := maxErr(work, in); e > 1e-9 {
		t.Errorf("2D round trip error %g", e)
	}
}

func TestTransform2DSeparability(t *testing.T) {
	// 2D of a separable product f(x)g(y) is F(x)G(y).
	nx, ny := 8, 8
	fx := randomVector(nx, 21)
	gy := randomVector(ny, 22)
	plane := make([]complex128, nx*ny)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			plane[x*ny+y] = fx[x] * gy[y]
		}
	}
	Transform2D(plane, nx, ny, false)
	FX := append([]complex128(nil), fx...)
	GY := append([]complex128(nil), gy...)
	Transform(FX, false)
	Transform(GY, false)
	for x := 0; x < nx; x++ {
		for y := 0; y < ny; y++ {
			if cmplx.Abs(plane[x*ny+y]-FX[x]*GY[y]) > 1e-8 {
				t.Fatalf("separability violated at (%d,%d)", x, y)
			}
		}
	}
}

func TestNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	Transform(make([]complex128, 12), false)
}

func TestIsPow2AndOpCount(t *testing.T) {
	if !IsPow2(1) || !IsPow2(1024) || IsPow2(0) || IsPow2(12) || IsPow2(-4) {
		t.Error("IsPow2 misclassifies")
	}
	if OpCount(1) != 0 {
		t.Error("OpCount(1) should be 0")
	}
	if got := OpCount(1024); got != 5*1024*10 {
		t.Errorf("OpCount(1024) = %g, want %g", got, 5.0*1024*10)
	}
}

func BenchmarkFFT1K(b *testing.B) {
	v := randomVector(1024, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Transform(v, false)
	}
}

package group

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/upc"
)

// TestGroupSurvivesMemberCrash: a spanning group loses its node-1 members
// mid-run. The survivors' barrier must release on the live members alone
// and the reduction must combine only their contributions.
func TestGroupSurvivesMemberCrash(t *testing.T) {
	c := cfg(8, 4)
	c.Faults = &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpCrash, At: 0.001, Node: 1, Src: -1, Dst: -1},
	}}
	sums := make([]float64, 8)
	_, err := upc.Run(c, func(th *upc.Thread) {
		g, gerr := New(th, []int{0, 1, 2, 3, 4, 5, 6, 7})
		if gerr != nil {
			t.Error(gerr)
			return
		}
		if got := g.ReduceSum(1); got != 8 {
			t.Errorf("thread %d pre-crash sum = %g, want 8", th.ID, got)
		}
		th.P.Advance(2 * sim.Millisecond)
		if th.Failed() {
			th.Retire()
			return
		}
		if berr := g.BarrierErr(); berr != nil {
			t.Errorf("thread %d survivor barrier: %v", th.ID, berr)
			return
		}
		s, serr := g.ReduceSumErr(1)
		if serr != nil {
			t.Errorf("thread %d survivor reduce: %v", th.ID, serr)
			return
		}
		sums[th.ID] = s
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 4; id++ {
		if sums[id] != 4 {
			t.Errorf("survivor %d post-crash sum = %g, want 4", id, sums[id])
		}
	}
}

// TestGroupBarrierErrTimesOut: a live member that simply never arrives
// exhausts the deadline ladder with a typed timeout instead of hanging.
func TestGroupBarrierErrTimesOut(t *testing.T) {
	c := cfg(4, 2)
	c.Faults = &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpDrop, At: 30, Prob: 0.5, Src: -1, Dst: -1}, // arms faults, never active
	}}
	var barErr error
	_, err := upc.Run(c, func(th *upc.Thread) {
		//upcvet:collalign -- threads outside the two-member group exit; BarrierErr only syncs members
		if th.ID > 1 {
			return
		}
		g, gerr := New(th, []int{0, 1})
		if gerr != nil {
			t.Error(gerr)
			return
		}
		//upcvet:collalign -- deliberate no-show exercising the barrier timeout ladder
		if th.ID == 1 {
			th.P.Advance(20 * sim.Second) // never shows up
			return
		}
		barErr = g.BarrierErr()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(barErr, fault.ErrTimeout) {
		t.Errorf("group barrier with absent member: %v, want ErrTimeout", barErr)
	}
}

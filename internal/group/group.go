// Package group implements the cooperative thread-group extension of
// Chapter 3: UPC threads grouped by hardware locality (or any
// application-chosen membership), with group-scoped barriers, collectives,
// and the privatized pointer tables (Figure 3.1) that let group members
// access each other's shared partitions at plain memory speed. Groups may
// overlap, matching the thesis's requirement that multiple hardware
// hierarchies be exploitable concurrently.
package group

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/upc"
)

// Group is one thread's view of a thread group.
type Group struct {
	T       *upc.Thread
	Members []int // UPC thread ids, ascending
	Rank    int   // this thread's index within Members

	st *state
}

// state is the group-shared synchronization record, interned on the
// runtime so that every member resolves to the same object.
type state struct {
	n        int
	cost     sim.Duration
	notified int
	inGen    []bool // which member ranks notified this generation (faults only)
	ev       *sim.Event
	collSeq  map[int]int // per-member collective sequence counters
	colls    []*collSlot
}

type collSlot struct {
	arrived int
	present []bool // which member ranks contributed (faults only)
	combine func([]any) any
	fired   bool
	vals    []any
	result  any
	ev      *sim.Event
}

// New builds the group containing exactly the given UPC threads; members
// must include the calling thread. Every member must call New with the
// same membership. Creation is purely local (the memory maps were
// established by the runtime at startup), mirroring the paper's
// observation that the overhead of obtaining neighborhood information and
// pointer casting is negligible.
func New(t *upc.Thread, members []int) (*Group, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("group: empty membership")
	}
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	rank := -1
	for i, m := range ms {
		if i > 0 && ms[i-1] == m {
			return nil, fmt.Errorf("group: duplicate member %d", m)
		}
		if m < 0 || m >= t.N {
			return nil, fmt.Errorf("group: member %d outside [0,%d)", m, t.N)
		}
		if m == t.ID {
			rank = i
		}
	}
	if rank < 0 {
		return nil, fmt.Errorf("group: thread %d not in its own group %v", t.ID, ms)
	}
	rt := t.Runtime()
	key := "group:" + memberKey(ms)
	st := rt.Intern(key, func() any {
		nodes := map[int]bool{}
		for _, m := range ms {
			nodes[rt.PlaceOf(m).Node] = true
		}
		return &state{
			n:       len(ms),
			cost:    rt.Cluster.BarrierCost(len(nodes)),
			inGen:   make([]bool, len(ms)),
			ev:      &sim.Event{},
			collSeq: make(map[int]int),
		}
	}).(*state)
	return &Group{T: t, Members: ms, Rank: rank, st: st}, nil
}

func memberKey(ms []int) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = fmt.Sprint(m)
	}
	return strings.Join(parts, ",")
}

// NodeGroup builds the group of all UPC threads sharing this thread's
// node — the shared-memory thread group used throughout Chapter 3.
func NodeGroup(t *upc.Thread) *Group {
	g, err := New(t, t.SameNodeThreads())
	if err != nil {
		panic("group: NodeGroup: " + err.Error()) // layout guarantees validity
	}
	return g
}

// Size reports the member count.
func (g *Group) Size() int { return len(g.Members) }

// Leader reports the lowest-numbered member.
func (g *Group) Leader() int { return g.Members[0] }

// IsLeader reports whether the calling thread is the group leader.
func (g *Group) IsLeader() bool { return g.Rank == 0 }

// OnOneNode reports whether every member shares the caller's node (and so
// pointer tables will be fully populated under PSHM/pthreads).
func (g *Group) OnOneNode() bool {
	for _, m := range g.Members {
		if g.T.Distance(m) == topo.LevelRemote {
			return false
		}
	}
	return true
}

// Barrier synchronizes the group's members only, at the dissemination cost
// of the nodes the group spans (cheap for an intra-node group). Under an
// installed fault schedule it panics with the typed error BarrierErr would
// return instead of hanging on a crashed member.
func (g *Group) Barrier() {
	if g.T.Runtime().FaultsOn() {
		if err := g.BarrierErr(); err != nil {
			panic(err)
		}
		return
	}
	end := g.T.P.TraceSpanArg("group", "barrier", "", int64(g.st.n))
	st := g.st
	ev := st.ev
	st.notified++
	if st.notified == st.n {
		st.notified = 0
		st.ev = &sim.Event{}
		g.T.Runtime().Eng.After(st.cost, ev.Fire)
	}
	ev.Wait(g.T.P)
	end()
}

// BarrierErr is Barrier with failure detection: the generation releases
// once every *live* member has arrived (dead members are skipped), and a
// barrier that can never release returns a typed error after the retry
// policy's deadline ladder instead of hanging.
func (g *Group) BarrierErr() error {
	t := g.T
	rt := t.Runtime()
	if !rt.FaultsOn() {
		g.Barrier()
		return nil
	}
	if t.Failed() {
		return &fault.CommError{Op: "group-barrier", Src: t.ID, Dst: t.ID, Err: fault.ErrNodeDown}
	}
	end := t.P.TraceSpanArg("group", "barrier", "", int64(g.st.n))
	defer end()
	st := g.st
	ev := st.ev
	st.notified++
	st.inGen[g.Rank] = true
	g.maybeRelease()
	rp := rt.RetryPolicy()
	attempts := 0
	for try := 0; try <= rp.MaxRetries; try++ {
		attempts++
		if ev.WaitTimeout(t.P, rp.AttemptTimeout(try, st.cost)) {
			return nil
		}
		t.FaultEvent("timeout", t.ID, 0)
		if t.Failed() {
			return &fault.CommError{Op: "group-barrier", Src: t.ID, Dst: t.ID,
				Attempts: attempts, Err: fault.ErrNodeDown}
		}
		// A member may have died since the last check, which is exactly
		// what completes the generation on the survivors.
		g.maybeRelease()
	}
	return &fault.CommError{Op: "group-barrier", Src: t.ID, Dst: t.ID,
		Attempts: attempts, Err: fault.ErrTimeout}
}

// maybeRelease fires the barrier generation once every live member has
// notified. Called on each arrival and again from the deadline ladder,
// which picks up members that died mid-generation.
func (g *Group) maybeRelease() {
	st := g.st
	if st.notified == 0 {
		return
	}
	for i, m := range g.Members {
		if g.T.Alive(m) && !st.inGen[i] {
			return
		}
	}
	ev := st.ev
	st.notified = 0
	for i := range st.inGen {
		st.inGen[i] = false
	}
	st.ev = &sim.Event{}
	g.T.Runtime().Eng.After(st.cost, ev.Fire)
}

// collective runs one group-scoped rendezvous (same machinery as the
// global collectives, keyed per group). Under an installed fault schedule
// it panics with the typed error collectiveErr would return.
func (g *Group) collective(val any, combine func([]any) any) any {
	r, err := g.collectiveErr(val, combine)
	if err != nil {
		panic(err)
	}
	return r
}

// collectiveErr joins the member's next collective slot. With faults
// installed the slot fires once every live member has contributed — dead
// members' slots stay nil and combine closures skip them — and a
// rendezvous that can never complete returns a typed error.
func (g *Group) collectiveErr(val any, combine func([]any) any) (any, error) {
	end := g.T.P.TraceSpanArg("group", "collective", "", int64(g.st.n))
	defer end()
	st := g.st
	seq := st.collSeq[g.T.ID]
	st.collSeq[g.T.ID] = seq + 1
	for len(st.colls) <= seq {
		st.colls = append(st.colls, nil)
	}
	if st.colls[seq] == nil {
		st.colls[seq] = &collSlot{vals: make([]any, st.n), present: make([]bool, st.n), ev: &sim.Event{}}
	}
	slot := st.colls[seq]
	slot.vals[g.Rank] = val
	slot.arrived++
	t := g.T
	rt := t.Runtime()
	if !rt.FaultsOn() {
		if slot.arrived == st.n {
			slot.result = combine(slot.vals)
			rt.Eng.After(st.cost, slot.ev.Fire)
		}
		slot.ev.Wait(t.P)
		return slot.result, nil
	}
	if t.Failed() {
		return nil, &fault.CommError{Op: "group-collective", Src: t.ID, Dst: t.ID, Err: fault.ErrNodeDown}
	}
	slot.present[g.Rank] = true
	slot.combine = combine
	g.maybeFire(slot)
	rp := rt.RetryPolicy()
	attempts := 0
	for try := 0; try <= rp.MaxRetries; try++ {
		attempts++
		if slot.ev.WaitTimeout(t.P, rp.AttemptTimeout(try, st.cost)) {
			return slot.result, nil
		}
		t.FaultEvent("timeout", t.ID, 0)
		if t.Failed() {
			return nil, &fault.CommError{Op: "group-collective", Src: t.ID, Dst: t.ID,
				Attempts: attempts, Err: fault.ErrNodeDown}
		}
		g.maybeFire(slot)
	}
	return nil, &fault.CommError{Op: "group-collective", Src: t.ID, Dst: t.ID,
		Attempts: attempts, Err: fault.ErrTimeout}
}

// maybeFire fires a collective slot once every live member is present.
func (g *Group) maybeFire(slot *collSlot) {
	if slot.fired || slot.arrived == 0 {
		return
	}
	for i, m := range g.Members {
		if g.T.Alive(m) && !slot.present[i] {
			return
		}
	}
	slot.fired = true
	slot.result = slot.combine(slot.vals)
	g.T.Runtime().Eng.After(g.st.cost, slot.ev.Fire)
}

// ReduceSum sums one float64 contribution per member and returns the total
// on every member. Dead members contribute zero.
func (g *Group) ReduceSum(v float64) float64 {
	r, err := g.ReduceSumErr(v)
	if err != nil {
		panic(err)
	}
	return r
}

// ReduceSumErr is ReduceSum with failure detection: it completes over the
// live members and returns a typed error when the rendezvous cannot.
func (g *Group) ReduceSumErr(v float64) (float64, error) {
	r, err := g.collectiveErr(v, func(vals []any) any {
		s := 0.0
		for _, x := range vals {
			if x != nil {
				s += x.(float64)
			}
		}
		return s
	})
	if err != nil {
		return 0, err
	}
	return r.(float64), nil
}

// ReduceSumInt sums one int64 contribution per member. Dead members
// contribute zero.
func (g *Group) ReduceSumInt(v int64) int64 {
	r := g.collective(v, func(vals []any) any {
		var s int64
		for _, x := range vals {
			if x != nil {
				s += x.(int64)
			}
		}
		return s
	})
	return r.(int64)
}

// Broadcast distributes the leader's value to every member.
func (g *Group) Broadcast(v any) any {
	return g.collective(v, func(vals []any) any { return vals[0] })
}

// Table is a privatized pointer table (Figure 3.1): per group member, the
// direct slice onto that member's partition of a shared array, or nil when
// the segment is not castable from this thread (off-node, or no shared
// memory support). It is built once at startup and indexed by group rank.
type Table[T any] struct {
	segs [][]T
}

// CastTable privatizes pointers to every group member's partition of s.
func CastTable[T any](g *Group, s *upc.Shared[T]) *Table[T] {
	tb := &Table[T]{segs: make([][]T, len(g.Members))}
	for i, m := range g.Members {
		tb.segs[i] = s.Cast(g.T, m)
	}
	return tb
}

// Seg reports member rank's privatized partition, or nil if uncastable.
func (tb *Table[T]) Seg(rank int) []T { return tb.segs[rank] }

// Complete reports whether every member's segment was castable.
func (tb *Table[T]) Complete() bool {
	for _, s := range tb.segs {
		if s == nil {
			return false
		}
	}
	return true
}

package group

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/upc"
)

func cfg(threads, perNode int) upc.Config {
	return upc.Config{
		Machine:        topo.Lehman(),
		Threads:        threads,
		ThreadsPerNode: perNode,
		Backend:        upc.Processes,
		PSHM:           true,
		Seed:           1,
	}
}

func TestNodeGroupMembership(t *testing.T) {
	_, err := upc.Run(cfg(8, 4), func(th *upc.Thread) {
		g := NodeGroup(th)
		if g.Size() != 4 {
			t.Errorf("thread %d: group size %d, want 4", th.ID, g.Size())
		}
		if want := (th.ID / 4) * 4; g.Leader() != want {
			t.Errorf("thread %d: leader %d, want %d", th.ID, g.Leader(), want)
		}
		if g.IsLeader() != (th.ID%4 == 0) {
			t.Errorf("thread %d: IsLeader = %v", th.ID, g.IsLeader())
		}
		if g.Members[g.Rank] != th.ID {
			t.Errorf("thread %d: rank %d maps to member %d", th.ID, g.Rank, g.Members[g.Rank])
		}
		if !g.OnOneNode() {
			t.Errorf("thread %d: node group must be on one node", th.ID)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupBarrierIsCheaperThanGlobal(t *testing.T) {
	var groupCost, globalCost sim.Duration
	_, err := upc.Run(cfg(8, 4), func(th *upc.Thread) {
		g := NodeGroup(th)
		th.Barrier()
		start := th.Now()
		g.Barrier()
		if th.ID == 0 {
			groupCost = th.Now() - start
		}
		th.Barrier()
		start = th.Now()
		th.Barrier()
		if th.ID == 0 {
			globalCost = th.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if groupCost >= globalCost {
		t.Errorf("intra-node group barrier (%v) must be cheaper than global (%v)",
			groupCost, globalCost)
	}
}

func TestGroupBarrierOnlySyncsMembers(t *testing.T) {
	// Node 0's group barriers must complete even while node 1's threads
	// are busy for a long time.
	var node0Done sim.Time
	_, err := upc.Run(cfg(8, 4), func(th *upc.Thread) {
		g := NodeGroup(th)
		//upcvet:collalign -- the point of the test: node 0's group barriers must not wait on node 1
		if th.ID < 4 {
			for i := 0; i < 3; i++ {
				g.Barrier()
			}
			if th.ID == 0 {
				node0Done = th.Now()
			}
		} else {
			th.P.Advance(10 * sim.Second)
			g.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if node0Done >= sim.Second {
		t.Errorf("node 0 group finished at %v; it must not wait for node 1", node0Done)
	}
}

func TestGroupCollectives(t *testing.T) {
	_, err := upc.Run(cfg(8, 4), func(th *upc.Thread) {
		g := NodeGroup(th)
		// Sum of member ids within the node.
		want := 0.0
		for _, m := range g.Members {
			want += float64(m)
		}
		if got := g.ReduceSum(float64(th.ID)); got != want {
			t.Errorf("thread %d: ReduceSum = %g, want %g", th.ID, got, want)
		}
		if got := g.ReduceSumInt(2); got != int64(2*g.Size()) {
			t.Errorf("ReduceSumInt = %d", got)
		}
		if got := g.Broadcast(th.ID * 10).(int); got != g.Leader()*10 {
			t.Errorf("thread %d: Broadcast = %d, want %d", th.ID, got, g.Leader()*10)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOverlappingGroups(t *testing.T) {
	// Each thread joins its node group AND a "column" group of same-rank
	// threads across nodes; both must work concurrently.
	_, err := upc.Run(cfg(8, 4), func(th *upc.Thread) {
		node := NodeGroup(th)
		col, err := New(th, []int{th.ID % 4, th.ID%4 + 4})
		if err != nil {
			t.Fatal(err)
		}
		if s := node.ReduceSumInt(1); s != 4 {
			t.Errorf("node group sum = %d, want 4", s)
		}
		if s := col.ReduceSumInt(1); s != 2 {
			t.Errorf("column group sum = %d, want 2", s)
		}
		if col.OnOneNode() {
			t.Error("column group spans nodes")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	_, err := upc.Run(cfg(4, 4), func(th *upc.Thread) {
		if _, err := New(th, nil); err == nil {
			t.Error("empty membership must error")
		}
		if _, err := New(th, []int{0, 0, th.ID}); err == nil {
			t.Error("duplicate member must error")
		}
		if _, err := New(th, []int{th.ID, 99}); err == nil {
			t.Error("out-of-range member must error")
		}
		other := (th.ID + 1) % th.N
		if _, err := New(th, []int{other}); err == nil {
			t.Error("group excluding self must error")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCastTable(t *testing.T) {
	for _, pshm := range []bool{true, false} {
		c := cfg(8, 4)
		c.PSHM = pshm
		_, err := upc.Run(c, func(th *upc.Thread) {
			s := upc.Alloc[float64](th, 64, 8, 8)
			for i := range s.Local(th) {
				s.Local(th)[i] = float64(th.ID)
			}
			th.Barrier()
			g := NodeGroup(th)
			tb := CastTable(g, s)
			if tb.Complete() != pshm {
				t.Errorf("pshm=%v: table complete = %v", pshm, tb.Complete())
			}
			if pshm {
				for r, m := range g.Members {
					seg := tb.Seg(r)
					if seg == nil || seg[0] != float64(m) {
						t.Errorf("pshm table seg(%d) wrong: %v", r, seg)
					}
				}
			} else if tb.Seg(g.Rank) == nil {
				t.Error("own segment must always be castable")
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSocketGroups(t *testing.T) {
	// Groups can follow any hardware predicate: build per-socket groups
	// and check membership by distance.
	_, err := upc.Run(cfg(8, 4), func(th *upc.Thread) {
		var members []int
		for p := 0; p < th.N; p++ {
			if p == th.ID || th.Distance(p) <= topo.LevelSocket {
				members = append(members, p)
			}
		}
		g, err := New(th, members)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range g.Members {
			if m != th.ID && th.Distance(m) > topo.LevelSocket {
				t.Errorf("thread %d grouped with off-socket %d", th.ID, m)
			}
		}
		if s := g.ReduceSumInt(1); s != int64(g.Size()) {
			t.Errorf("socket group reduce = %d, want %d", s, g.Size())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupBarrierManyGenerations(t *testing.T) {
	_, err := upc.Run(cfg(8, 4), func(th *upc.Thread) {
		g := NodeGroup(th)
		for i := 0; i < 20; i++ {
			th.P.Advance(sim.Duration(1 + th.ID%3))
			g.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpanningGroupCostsMoreThanNodeGroup(t *testing.T) {
	var nodeCost, spanCost sim.Duration
	_, err := upc.Run(cfg(8, 4), func(th *upc.Thread) {
		ng := NodeGroup(th)
		column, err := New(th, []int{th.ID % 4, th.ID%4 + 4}) // spans 2 nodes
		if err != nil {
			t.Fatal(err)
		}
		th.Barrier()
		start := th.Now()
		ng.Barrier()
		if th.ID == 0 {
			nodeCost = th.Now() - start
		}
		th.Barrier()
		start = th.Now()
		column.Barrier()
		if th.ID == 0 {
			spanCost = th.Now() - start
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if spanCost <= nodeCost {
		t.Errorf("node-spanning group barrier (%v) must exceed intra-node (%v)", spanCost, nodeCost)
	}
}

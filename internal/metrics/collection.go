package metrics

import (
	"repro/internal/trace"
)

// Collection bundles the registry and the three trace-fed collectors
// behind one trace.Tracer, and tracks the stream-level facts a manifest
// records: run count, seeds, event count, digest, total virtual time.
// Attach it to a trace session (Session.Attach) so it rides the same
// serialized, replay-ordered stream as the digest — that is what makes
// -metrics manifests byte-identical at any -parallel level.
//
// Collection opts into link-occupancy events (trace.UtilObserver), so
// installing one enables the fabric's CatLink emissions for the whole
// sink chain of the engines built afterwards.
type Collection struct {
	Reg  *Registry
	Comm *CommMatrix
	Util *UtilTimelines
	Prof *Profile

	dg        *trace.Digest
	runs      int64
	seeds     []int64
	curMax    int64 // latest virtual time seen in the current run
	totalNS   int64 // summed final times of completed runs
	finalized bool
}

// NewCollection returns an empty collection.
func NewCollection() *Collection {
	return &Collection{
		Reg:  NewRegistry(),
		Comm: NewCommMatrix(),
		Util: NewUtilTimelines(),
		Prof: NewProfile(),
		dg:   trace.NewDigest(),
	}
}

// ObserveUtil opts the collection into link-occupancy events.
func (c *Collection) ObserveUtil() bool { return true }

// Emit aggregates one event.
func (c *Collection) Emit(e trace.Event) {
	c.dg.Emit(e)
	if e.Time > c.curMax {
		c.curMax = e.Time
	}
	switch e.Kind {
	case trace.KRunBegin:
		c.endRun()
		c.runs++
		c.addSeed(e.Arg)
	case trace.KSpanBegin, trace.KSpanEnd:
		c.Prof.Record(e)
	case trace.KInstant:
		switch e.Cat {
		case trace.CatComm:
			c.Comm.Record(e)
			c.Reg.Add("comm."+e.Name+".msgs", 1)
			c.Reg.Add("comm."+e.Name+".bytes", e.Arg)
			c.Reg.Observe("comm.size."+e.Aux, e.Arg)
		case trace.CatLink:
			c.Util.Record(e)
			c.Reg.SetMax("util.peak."+e.Name, e.Arg)
		default:
			k := "instant." + e.Cat + "/" + e.Name
			c.Reg.Add(k+".n", 1)
			c.Reg.Add(k+".sum", e.Arg)
		}
	case trace.KCounter:
		c.Reg.Add("counter."+e.Name, e.Arg)
	case trace.KProcSpawn:
		c.Reg.Add("procs.spawned", 1)
	case trace.KProcExit:
		c.Reg.Add("procs.exited", 1)
	}
}

// endRun closes out the current run's per-run state.
func (c *Collection) endRun() {
	c.totalNS += c.curMax
	c.Util.EndRun(c.curMax)
	c.Prof.EndRun()
	c.curMax = 0
}

// addSeed records a run seed, keeping the distinct values in
// first-seen order (sweeps reuse one seed; a distinct-seeds study
// records each).
func (c *Collection) addSeed(seed int64) {
	for _, s := range c.seeds {
		if s == seed {
			return
		}
	}
	if len(c.seeds) < 64 {
		c.seeds = append(c.seeds, seed)
	}
}

// Runs reports the number of runs observed so far.
func (c *Collection) Runs() int64 { return c.runs }

// Events reports the number of events observed so far.
func (c *Collection) Events() int64 { return c.dg.Events() }

// Digest reports the order-sensitive hash of the observed stream; it
// matches the trace session's digest because both consume the same
// serialized event sequence.
func (c *Collection) Digest() uint64 { return c.dg.Sum64() }

// VirtualNS reports the summed final virtual time across runs,
// including the still-open one.
func (c *Collection) VirtualNS() int64 { return c.totalNS + c.curMax }

// Manifest finalizes the collection and builds the run manifest. Call
// once, after the last simulation finished; further events would
// land in closed-out aggregations.
func (c *Collection) Manifest(tool string, params map[string]string) *Manifest {
	if !c.finalized {
		c.finalized = true
		c.endRun()
	}
	return &Manifest{
		Tool:       tool,
		Params:     params,
		Runs:       c.runs,
		Seeds:      append([]int64(nil), c.seeds...),
		Events:     c.dg.Events(),
		Digest:     c.dg.String(),
		VirtualNS:  c.totalNS,
		Counters:   c.Reg.Counters(),
		Gauges:     c.Reg.Gauges(),
		Histograms: c.Reg.Histograms(),
		Comm:       c.Comm.Export(),
		Util:       c.Util.Export(),
		Profile:    c.Prof.Export(),
	}
}

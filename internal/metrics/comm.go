package metrics

import (
	"sort"

	"repro/internal/trace"
)

// maxThreadCells caps the thread-granularity matrix detail exported in
// a manifest: the densest sweeps touch millions of thread pairs, and
// the manifest must stay reviewable. The cap keeps the lexicographically
// first cells (sorted by src, dst, class) and records how many were
// dropped, so truncation is explicit and deterministic.
const maxThreadCells = 4096

// commKey identifies one matrix cell: the packed endpoint quadruple
// plus the path class the transfer took.
type commKey struct {
	ep    int64
	class string
}

// commVal accumulates one cell.
type commVal struct {
	msgs  int64
	bytes int64
}

// CommMatrix aggregates CatComm instants into a communication matrix:
// messages and bytes per (source thread, destination thread) endpoint
// pair, classified by the path the configured runtime took (self /
// pshm / loopback / network). Endpoints follow the data: a get from
// thread 7 by thread 0 is a (7 -> 0) transfer.
type CommMatrix struct {
	cells map[commKey]*commVal
}

// NewCommMatrix returns an empty matrix.
func NewCommMatrix() *CommMatrix {
	return &CommMatrix{cells: map[commKey]*commVal{}}
}

// Record aggregates one CatComm event (Arg bytes, Arg2 packed
// endpoints, Aux path class).
func (m *CommMatrix) Record(e trace.Event) {
	k := commKey{ep: e.Arg2, class: e.Aux}
	c := m.cells[k]
	if c == nil {
		c = &commVal{}
		m.cells[k] = c
	}
	c.msgs++
	c.bytes += e.Arg
}

// Messages reports the total transfer count across all cells.
func (m *CommMatrix) Messages() int64 {
	var n int64
	for _, c := range m.cells {
		n += c.msgs
	}
	return n
}

// Bytes reports the total bytes moved across all cells.
func (m *CommMatrix) Bytes() int64 {
	var n int64
	for _, c := range m.cells {
		n += c.bytes
	}
	return n
}

// ClassMessages reports the transfer count in one path class.
func (m *CommMatrix) ClassMessages(class string) int64 {
	var n int64
	for k, c := range m.cells {
		if k.class == class {
			n += c.msgs
		}
	}
	return n
}

// ClassBytes reports the bytes moved in one path class.
func (m *CommMatrix) ClassBytes(class string) int64 {
	var n int64
	for k, c := range m.cells {
		if k.class == class {
			n += c.bytes
		}
	}
	return n
}

// ThreadCell is one thread-granularity matrix cell.
type ThreadCell struct {
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
	Class    string `json:"class"`
	Messages int64  `json:"msgs"`
	Bytes    int64  `json:"bytes"`
}

// Threads exports the thread-granularity matrix, sorted by (src, dst,
// class). Cells that differ only in node coordinates merge: across a
// sweep the same thread pair may land on different machine shapes, and
// node placement is not part of thread granularity. The merge also
// makes the sort key unique, which the deterministic export depends on
// (with duplicate keys, unstable-sort tie order would leak map order).
func (m *CommMatrix) Threads() []ThreadCell {
	agg := map[commKey]*commVal{}
	//upcvet:ordered -- Pack/UnpackEndpoints are pure bit packing; agg accumulates commutatively
	for k, c := range m.cells {
		st, dt, _, _ := trace.UnpackEndpoints(k.ep)
		tk := commKey{ep: trace.PackEndpoints(st, dt, 0, 0), class: k.class}
		a := agg[tk]
		if a == nil {
			a = &commVal{}
			agg[tk] = a
		}
		a.msgs += c.msgs
		a.bytes += c.bytes
	}
	out := make([]ThreadCell, 0, len(agg))
	//upcvet:ordered -- UnpackEndpoints is pure bit decoding; out is sorted below
	for k, c := range agg {
		src, dst, _, _ := trace.UnpackEndpoints(k.ep)
		out = append(out, ThreadCell{Src: src, Dst: dst, Class: k.class, Messages: c.msgs, Bytes: c.bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Class < b.Class
	})
	return out
}

// NodeCell is one node-granularity matrix cell.
type NodeCell struct {
	Src      int    `json:"src"`
	Dst      int    `json:"dst"`
	Class    string `json:"class"`
	Messages int64  `json:"msgs"`
	Bytes    int64  `json:"bytes"`
}

// Nodes exports the matrix aggregated to node granularity, sorted by
// (src node, dst node, class).
func (m *CommMatrix) Nodes() []NodeCell {
	agg := map[commKey]*commVal{}
	//upcvet:ordered -- Pack/UnpackEndpoints are pure bit packing; agg accumulates commutatively
	for k, c := range m.cells {
		_, _, sn, dn := trace.UnpackEndpoints(k.ep)
		nk := commKey{ep: trace.PackEndpoints(0, 0, sn, dn), class: k.class}
		a := agg[nk]
		if a == nil {
			a = &commVal{}
			agg[nk] = a
		}
		a.msgs += c.msgs
		a.bytes += c.bytes
	}
	out := make([]NodeCell, 0, len(agg))
	//upcvet:ordered -- UnpackEndpoints is pure bit decoding; out is sorted below
	for k, c := range agg {
		_, _, sn, dn := trace.UnpackEndpoints(k.ep)
		out = append(out, NodeCell{Src: sn, Dst: dn, Class: k.class, Messages: c.msgs, Bytes: c.bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Class < b.Class
	})
	return out
}

// Groups aggregates the matrix to an application-chosen granularity:
// groupOf maps a UPC thread id to its group index (for example the
// thesis's node groups, or a 2-level pyramid's supernode groups). The
// result is sorted by (src group, dst group, class).
func (m *CommMatrix) Groups(groupOf func(thread int) int) []NodeCell {
	agg := map[commKey]*commVal{}
	//upcvet:ordered -- Pack/UnpackEndpoints are pure bit packing; agg accumulates commutatively
	for k, c := range m.cells {
		st, dt, _, _ := trace.UnpackEndpoints(k.ep)
		gk := commKey{ep: trace.PackEndpoints(0, 0, groupOf(st), groupOf(dt)), class: k.class}
		a := agg[gk]
		if a == nil {
			a = &commVal{}
			agg[gk] = a
		}
		a.msgs += c.msgs
		a.bytes += c.bytes
	}
	out := make([]NodeCell, 0, len(agg))
	//upcvet:ordered -- UnpackEndpoints is pure bit decoding; out is sorted below
	for k, c := range agg {
		_, _, sg, dg := trace.UnpackEndpoints(k.ep)
		out = append(out, NodeCell{Src: sg, Dst: dg, Class: k.class, Messages: c.msgs, Bytes: c.bytes})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Class < b.Class
	})
	return out
}

// ClassTotal is the per-path-class rollup of the matrix.
type ClassTotal struct {
	Class    string `json:"class"`
	Messages int64  `json:"msgs"`
	Bytes    int64  `json:"bytes"`
}

// Classes exports per-class totals, sorted by class name.
func (m *CommMatrix) Classes() []ClassTotal {
	agg := map[string]*commVal{}
	for k, c := range m.cells {
		a := agg[k.class]
		if a == nil {
			a = &commVal{}
			agg[k.class] = a
		}
		a.msgs += c.msgs
		a.bytes += c.bytes
	}
	names := make([]string, 0, len(agg))
	for k := range agg {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]ClassTotal, 0, len(names))
	for _, n := range names {
		out = append(out, ClassTotal{Class: n, Messages: agg[n].msgs, Bytes: agg[n].bytes})
	}
	return out
}

// CommExport is the manifest form of the matrix: class rollups and the
// node-granularity matrix always; thread-granularity detail up to
// maxThreadCells cells, with the overflow counted explicitly.
type CommExport struct {
	Classes        []ClassTotal `json:"classes,omitempty"`
	Nodes          []NodeCell   `json:"nodes,omitempty"`
	Threads        []ThreadCell `json:"threads,omitempty"`
	ThreadsOmitted int          `json:"threads_omitted,omitempty"`
}

// Export builds the manifest form, or nil if no transfers were seen.
func (m *CommMatrix) Export() *CommExport {
	if len(m.cells) == 0 {
		return nil
	}
	e := &CommExport{Classes: m.Classes(), Nodes: m.Nodes(), Threads: m.Threads()}
	if len(e.Threads) > maxThreadCells {
		e.ThreadsOmitted = len(e.Threads) - maxThreadCells
		e.Threads = e.Threads[:maxThreadCells]
	}
	return e
}

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"

	"repro/internal/causality"
)

// Manifest is the single JSON artifact a -metrics run emits: the
// invocation's identity (tool, parameters, seeds), the stream-level
// fingerprint (runs, events, digest, total virtual time), the registry
// contents, and the three collector exports. encoding/json serializes
// the map fields with sorted keys and every slice field is exported
// pre-sorted, so equal runs produce byte-identical files.
type Manifest struct {
	Tool   string            `json:"tool"`
	Params map[string]string `json:"params,omitempty"`
	Runs   int64             `json:"runs"`
	Seeds  []int64           `json:"seeds,omitempty"`
	Events int64             `json:"events"`
	Digest string            `json:"digest"`
	// VirtualNS is the summed final virtual time across runs.
	VirtualNS  int64             `json:"virtual_ns"`
	Counters   map[string]int64  `json:"counters,omitempty"`
	Gauges     map[string]int64  `json:"gauges,omitempty"`
	Histograms []HistogramExport `json:"histograms,omitempty"`
	Comm       *CommExport       `json:"comm,omitempty"`
	Util       *UtilExport       `json:"util,omitempty"`
	Profile    *ProfileExport    `json:"profile,omitempty"`
	// Analysis is the causality engine's wait-state and critical-path
	// analysis, present when the run was collected with -analyze.
	Analysis *causality.Export `json:"analysis,omitempty"`
}

// Write serializes the manifest as indented JSON.
func (m *Manifest) Write(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if err := m.Write(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	return nil
}

// Load reads a manifest back from path.
func Load(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(b, m); err != nil {
		return nil, fmt.Errorf("metrics: parsing %s: %w", path, err)
	}
	return m, nil
}

// Metric is one flattened manifest value: a dotted name and its
// numeric value.
type Metric struct {
	Name  string
	Value float64
}

// Flatten projects every numeric value in the manifest onto a flat,
// name-sorted metric list — the representation Diff compares and the
// summary renders.
func (m *Manifest) Flatten() []Metric {
	var out []Metric
	add := func(name string, v float64) { out = append(out, Metric{name, v}) }
	add("runs", float64(m.Runs))
	add("events", float64(m.Events))
	add("virtual_ns", float64(m.VirtualNS))
	for k, v := range m.Counters {
		add("counters."+k, float64(v))
	}
	for k, v := range m.Gauges {
		add("gauges."+k, float64(v))
	}
	for _, h := range m.Histograms {
		add("hist."+h.Name+".count", float64(h.Count))
		add("hist."+h.Name+".sum", float64(h.Sum))
		add("hist."+h.Name+".min", float64(h.Min))
		add("hist."+h.Name+".max", float64(h.Max))
		for _, b := range h.Buckets {
			add("hist."+h.Name+".bit"+strconv.Itoa(b.Bit), float64(b.Count))
		}
	}
	if m.Comm != nil {
		for _, c := range m.Comm.Classes {
			add("comm.class."+c.Class+".msgs", float64(c.Messages))
			add("comm.class."+c.Class+".bytes", float64(c.Bytes))
		}
		for _, c := range m.Comm.Nodes {
			p := fmt.Sprintf("comm.node.%d-%d.%s", c.Src, c.Dst, c.Class)
			add(p+".msgs", float64(c.Messages))
			add(p+".bytes", float64(c.Bytes))
		}
		for _, c := range m.Comm.Threads {
			p := fmt.Sprintf("comm.thread.%d-%d.%s", c.Src, c.Dst, c.Class)
			add(p+".msgs", float64(c.Messages))
			add(p+".bytes", float64(c.Bytes))
		}
	}
	if m.Util != nil {
		add("util.interval_ns", float64(m.Util.IntervalNS))
		for _, l := range m.Util.Links {
			p := "util.link." + l.Name
			add(p+".busy_ns", float64(l.BusyNS))
			add(p+".observed_ns", float64(l.ObservedNS))
			add(p+".peak", float64(l.Peak))
			add(p+".depth_ns", float64(l.DepthNS))
			for _, t := range l.Timeline {
				add(p+".t"+strconv.Itoa(t.I), float64(t.Busy))
			}
		}
	}
	if m.Profile != nil {
		for _, ph := range m.Profile.Phases {
			p := "profile.phase." + ph.Name
			add(p+".count", float64(ph.Count))
			add(p+".incl_ns", float64(ph.InclusiveNS))
			add(p+".excl_ns", float64(ph.ExclusiveNS))
		}
		for _, f := range m.Profile.Folded {
			add("profile.stack."+f.Stack+".ns", float64(f.NS))
		}
	}
	if m.Analysis != nil {
		add("analysis.makespan_ns", float64(m.Analysis.TotalMakespanNS))
		for _, s := range m.Analysis.Totals {
			add("analysis.critical."+s.Category+".ns", float64(s.NS))
		}
		for i := range m.Analysis.Runs {
			ra := &m.Analysis.Runs[i]
			p := "analysis.run" + strconv.Itoa(i)
			add(p+".waits", float64(ra.Waits))
			add(p+".edges", float64(ra.Edges))
			for _, s := range ra.CriticalPath.Segments {
				add(p+".critical."+s.Category+".ns", float64(s.NS))
			}
			for _, wc := range ra.WaitClasses {
				add(p+".wait."+wc.Class+".n", float64(wc.Instances))
				add(p+".wait."+wc.Class+".ns", float64(wc.TotalNS))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delta is one metric whose values differ between two manifests beyond
// the tolerance. InA/InB report presence; Rel is the relative
// difference |a-b| / max(|a|,|b|) (1 for one-sided metrics and for a
// digest mismatch).
type Delta struct {
	Name string
	A, B float64
	InA  bool
	InB  bool
	Rel  float64
}

// Diff compares two manifests metric by metric, returning every delta
// whose relative difference exceeds tol (0 demands exact equality),
// sorted by metric name. A digest mismatch is reported as the metric
// "digest" with Rel 1.
func Diff(a, b *Manifest, tol float64) []Delta {
	fa, fb := a.Flatten(), b.Flatten()
	ma := make(map[string]float64, len(fa))
	for _, m := range fa {
		ma[m.Name] = m.Value
	}
	mb := make(map[string]float64, len(fb))
	for _, m := range fb {
		mb[m.Name] = m.Value
	}
	names := make([]string, 0, len(ma))
	for k := range ma {
		names = append(names, k)
	}
	for k := range mb {
		if _, ok := ma[k]; !ok {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var out []Delta
	for _, n := range names {
		va, ina := ma[n]
		vb, inb := mb[n]
		d := Delta{Name: n, A: va, B: vb, InA: ina, InB: inb}
		switch {
		case !ina || !inb:
			d.Rel = 1
		default:
			d.Rel = relDiff(va, vb)
		}
		if d.Rel > tol {
			out = append(out, d)
		}
	}
	if a.Digest != b.Digest {
		out = append(out, Delta{Name: "digest", InA: true, InB: true, Rel: 1})
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	}
	return out
}

// relDiff reports |a-b| scaled by the larger magnitude (0 when equal).
func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// Summary renders a compact human overview of one manifest: identity
// line, per-class communication rollup, the busiest links, and the
// heaviest phases.
func (m *Manifest) Summary(w io.Writer) {
	fmt.Fprintf(w, "tool=%s runs=%d events=%d virtual=%s digest=%s\n",
		m.Tool, m.Runs, m.Events, fmtNS(m.VirtualNS), m.Digest)
	if len(m.Seeds) > 0 {
		fmt.Fprintf(w, "seeds=%v\n", m.Seeds)
	}
	if m.Comm != nil {
		fmt.Fprintf(w, "comm: %d cells (%d node pairs)\n", len(m.Comm.Threads)+m.Comm.ThreadsOmitted, len(m.Comm.Nodes))
		for _, c := range m.Comm.Classes {
			fmt.Fprintf(w, "  %-8s %12d bytes %8d msgs\n", c.Class, c.Bytes, c.Messages)
		}
	}
	if m.Util != nil {
		top := topLinks(m.Util.Links, 8)
		fmt.Fprintf(w, "util: %d links, busiest:\n", len(m.Util.Links))
		for _, l := range top {
			frac := 0.0
			if l.ObservedNS > 0 {
				frac = float64(l.BusyNS) / float64(l.ObservedNS)
			}
			fmt.Fprintf(w, "  %-12s busy=%5.1f%% peak=%d\n", l.Name, 100*frac, l.Peak)
		}
	}
	if m.Profile != nil {
		top := topPhases(m.Profile.Phases, 8)
		fmt.Fprintf(w, "profile: %d phases, heaviest (exclusive):\n", len(m.Profile.Phases))
		for _, p := range top {
			fmt.Fprintf(w, "  %-24s n=%-8d incl=%s excl=%s\n", p.Name, p.Count, fmtNS(p.InclusiveNS), fmtNS(p.ExclusiveNS))
		}
	}
}

// topLinks returns the n busiest links by busy time (ties by name).
func topLinks(links []LinkUtil, n int) []LinkUtil {
	out := append([]LinkUtil(nil), links...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].BusyNS != out[j].BusyNS {
			return out[i].BusyNS > out[j].BusyNS
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// topPhases returns the n heaviest phases by exclusive time (ties by
// name).
func topPhases(phases []PhaseStat, n int) []PhaseStat {
	out := append([]PhaseStat(nil), phases...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].ExclusiveNS != out[j].ExclusiveNS {
			return out[i].ExclusiveNS > out[j].ExclusiveNS
		}
		return out[i].Name < out[j].Name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// fmtNS renders nanoseconds with a readable unit.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.3fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

package metrics

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Add("a", 2)
	r.Add("a", 3)
	r.Add("b", 1)
	if got := r.Counter("a"); got != 5 {
		t.Errorf("Counter(a) = %d, want 5", got)
	}
	r.Set("g", 7)
	r.SetMax("g", 3)
	if got := r.Gauge("g"); got != 7 {
		t.Errorf("Gauge(g) = %d, want 7 (SetMax must not lower)", got)
	}
	r.SetMax("g", 11)
	if got := r.Gauge("g"); got != 11 {
		t.Errorf("Gauge(g) = %d, want 11", got)
	}
	r.Observe("h", 0)
	r.Observe("h", 1)
	r.Observe("h", 1500)
	h := r.Hist("h")
	if h.Count != 3 || h.Sum != 1501 || h.Min != 0 || h.Max != 1500 {
		t.Errorf("hist = %+v", h)
	}
	if h.Bucket(0) != 1 || h.Bucket(1) != 1 || h.Bucket(11) != 1 {
		t.Errorf("buckets: 0=%d 1=%d 11=%d, want 1 each", h.Bucket(0), h.Bucket(1), h.Bucket(11))
	}
	hx := r.Histograms()
	if len(hx) != 1 || hx[0].Name != "h" || len(hx[0].Buckets) != 3 {
		t.Errorf("Histograms() = %+v", hx)
	}
}

func commEvent(op, class string, bytes int64, st, dt, sn, dn int) trace.Event {
	return trace.Event{
		Kind: trace.KInstant, Cat: trace.CatComm, Name: op, Aux: class,
		Arg: bytes, Arg2: trace.PackEndpoints(st, dt, sn, dn),
	}
}

func TestCommMatrix(t *testing.T) {
	m := NewCommMatrix()
	m.Record(commEvent("put", trace.ClassPSHM, 100, 0, 1, 0, 0))
	m.Record(commEvent("put", trace.ClassPSHM, 50, 0, 1, 0, 0))
	m.Record(commEvent("get", trace.ClassNetwork, 400, 2, 0, 1, 0))
	m.Record(commEvent("put", trace.ClassSelf, 8, 3, 3, 1, 1))

	if got := m.Bytes(); got != 558 {
		t.Errorf("Bytes() = %d, want 558", got)
	}
	if got := m.Messages(); got != 4 {
		t.Errorf("Messages() = %d, want 4", got)
	}
	if got := m.ClassBytes(trace.ClassPSHM); got != 150 {
		t.Errorf("ClassBytes(pshm) = %d, want 150", got)
	}
	if got := m.ClassMessages(trace.ClassNetwork); got != 1 {
		t.Errorf("ClassMessages(network) = %d, want 1", got)
	}

	cells := m.Threads()
	want := []ThreadCell{
		{Src: 0, Dst: 1, Class: "pshm", Messages: 2, Bytes: 150},
		{Src: 2, Dst: 0, Class: "network", Messages: 1, Bytes: 400},
		{Src: 3, Dst: 3, Class: "self", Messages: 1, Bytes: 8},
	}
	if !reflect.DeepEqual(cells, want) {
		t.Errorf("Threads() = %+v, want %+v", cells, want)
	}

	nodes := m.Nodes()
	wantNodes := []NodeCell{
		{Src: 0, Dst: 0, Class: "pshm", Messages: 2, Bytes: 150},
		{Src: 1, Dst: 0, Class: "network", Messages: 1, Bytes: 400},
		{Src: 1, Dst: 1, Class: "self", Messages: 1, Bytes: 8},
	}
	if !reflect.DeepEqual(nodes, wantNodes) {
		t.Errorf("Nodes() = %+v, want %+v", nodes, wantNodes)
	}

	// Group aggregation: even/odd threads.
	groups := m.Groups(func(th int) int { return th % 2 })
	wantGroups := []NodeCell{
		{Src: 0, Dst: 0, Class: "network", Messages: 1, Bytes: 400},
		{Src: 0, Dst: 1, Class: "pshm", Messages: 2, Bytes: 150},
		{Src: 1, Dst: 1, Class: "self", Messages: 1, Bytes: 8},
	}
	if !reflect.DeepEqual(groups, wantGroups) {
		t.Errorf("Groups(parity) = %+v, want %+v", groups, wantGroups)
	}

	classes := m.Classes()
	if len(classes) != 3 || classes[0].Class != "network" || classes[1].Class != "pshm" || classes[2].Class != "self" {
		t.Errorf("Classes() = %+v", classes)
	}
}

// TestThreadsMergeAcrossNodeCoords pins the regression where a sweep
// placing the same thread pair on different machine shapes produced two
// thread cells with identical (src, dst, class) sort keys — unstable
// sort then leaked map order into the export. Thread granularity must
// merge across node coordinates.
func TestThreadsMergeAcrossNodeCoords(t *testing.T) {
	m := NewCommMatrix()
	m.Record(commEvent("put", trace.ClassNetwork, 100, 0, 9, 0, 4)) // 2 threads/node shape
	m.Record(commEvent("put", trace.ClassNetwork, 60, 0, 9, 0, 2))  // 4 threads/node shape
	want := []ThreadCell{{Src: 0, Dst: 9, Class: "network", Messages: 2, Bytes: 160}}
	if got := m.Threads(); !reflect.DeepEqual(got, want) {
		t.Errorf("Threads() = %+v, want one merged cell %+v", got, want)
	}
	// The node matrix keeps the shapes distinct.
	if nodes := m.Nodes(); len(nodes) != 2 {
		t.Errorf("Nodes() = %+v, want 2 cells", nodes)
	}
}

func linkEvent(tm int64, name string, active, cap int64) trace.Event {
	return trace.Event{Time: tm, Kind: trace.KInstant, Cat: trace.CatLink, Name: name, Arg: active, Arg2: cap}
}

func TestUtilTimelines(t *testing.T) {
	u := NewUtilTimelines()
	u.Record(linkEvent(100, "nic-tx0", 1, 1e9))
	u.Record(linkEvent(300, "nic-tx0", 2, 1e9))
	u.Record(linkEvent(500, "nic-tx0", 0, 1e9))
	u.Record(linkEvent(900, "nic-tx0", 1, 1e9))
	u.EndRun(1000)

	if got := u.Busy("nic-tx0"); got != 500 {
		t.Errorf("Busy = %d, want 500 (400 + final 100)", got)
	}
	if got := u.Peak("nic-tx0"); got != 2 {
		t.Errorf("Peak = %d, want 2", got)
	}
	e := u.Export()
	if e == nil || len(e.Links) != 1 {
		t.Fatalf("Export() = %+v", e)
	}
	l := e.Links[0]
	if l.ObservedNS != 1000 || l.DepthNS != 1*200+2*200+1*100 {
		t.Errorf("link = %+v, want observed 1000 depth 700", l)
	}
	// All busy time fell inside interval 0 at the initial 1µs width.
	if e.IntervalNS != utilInitialWidth || len(l.Timeline) != 1 || l.Timeline[0].Busy != 500 {
		t.Errorf("timeline = width %d %+v", e.IntervalNS, l.Timeline)
	}
}

func TestUtilRebin(t *testing.T) {
	u := NewUtilTimelines()
	// Busy from 0 to 1ms: needs several rebins past the initial
	// 128µs span; total busy time must be preserved.
	u.Record(linkEvent(0, "core0", 1, 0))
	u.Record(linkEvent(1_000_000, "core0", 0, 0))
	u.EndRun(1_000_000)
	e := u.Export()
	var total int64
	for _, p := range e.Links[0].Timeline {
		total += p.Busy
	}
	if total != 1_000_000 {
		t.Errorf("timeline total = %d, want 1000000", total)
	}
	if e.IntervalNS*utilIntervals < 1_000_000 {
		t.Errorf("width %d too small for the run", e.IntervalNS)
	}
}

func span(tm int64, kind trace.Kind, proc int32, cat, name string) trace.Event {
	return trace.Event{Time: tm, Kind: kind, Proc: proc, Cat: cat, Name: name}
}

func TestProfile(t *testing.T) {
	p := NewProfile()
	// proc 0: outer [0,1000] containing inner [200,500].
	p.Record(span(0, trace.KSpanBegin, 0, "app", "outer"))
	p.Record(span(200, trace.KSpanBegin, 0, "upc", "barrier"))
	p.Record(span(500, trace.KSpanEnd, 0, "upc", "barrier"))
	p.Record(span(1000, trace.KSpanEnd, 0, "app", "outer"))
	// proc 1: one barrier [100,250].
	p.Record(span(100, trace.KSpanBegin, 1, "upc", "barrier"))
	p.Record(span(250, trace.KSpanEnd, 1, "upc", "barrier"))

	e := p.Export()
	if e == nil || len(e.Phases) != 2 {
		t.Fatalf("Export() = %+v", e)
	}
	byName := map[string]PhaseStat{}
	for _, ph := range e.Phases {
		byName[ph.Name] = ph
	}
	outer := byName["app/outer"]
	if outer.InclusiveNS != 1000 || outer.ExclusiveNS != 700 {
		t.Errorf("outer = %+v, want incl 1000 excl 700", outer)
	}
	bar := byName["upc/barrier"]
	if bar.Count != 2 || bar.InclusiveNS != 450 || bar.ExclusiveNS != 450 {
		t.Errorf("barrier = %+v, want n=2 incl 450 excl 450", bar)
	}

	text := e.FoldedText()
	wantLines := []string{
		"app/outer 700",
		"app/outer;upc/barrier 300",
		"upc/barrier 150",
	}
	for _, l := range wantLines {
		if !strings.Contains(text, l+"\n") {
			t.Errorf("FoldedText missing %q:\n%s", l, text)
		}
	}
}

// synthStream drives one small synthetic run through a Collection.
func synthStream(c *Collection) {
	c.Emit(trace.Event{Kind: trace.KRunBegin, Proc: trace.EngineProc, Cat: "sim", Name: "run", Arg: 42})
	c.Emit(trace.Event{Time: 0, Kind: trace.KProcSpawn, Proc: 0, Cat: "sim", Name: "t0"})
	c.Emit(span(10, trace.KSpanBegin, 0, "app", "work"))
	c.Emit(commEvent("put", trace.ClassPSHM, 64, 0, 1, 0, 0))
	c.Emit(linkEvent(20, "mem0", 1, 0))
	c.Emit(linkEvent(40, "mem0", 0, 0))
	c.Emit(trace.Event{Time: 50, Kind: trace.KCounter, Proc: 0, Name: "steals", Arg: 3})
	c.Emit(trace.Event{Time: 60, Kind: trace.KInstant, Proc: 0, Cat: "uts", Name: "steal", Arg: 2})
	c.Emit(span(100, trace.KSpanEnd, 0, "app", "work"))
	c.Emit(trace.Event{Time: 100, Kind: trace.KProcExit, Proc: 0, Cat: "sim", Name: "t0"})
}

func TestCollectionManifest(t *testing.T) {
	c := NewCollection()
	if !trace.WantsUtil(c) {
		t.Fatal("Collection must opt into util events")
	}
	synthStream(c)
	m := c.Manifest("upc-test", map[string]string{"n": "1"})

	if m.Runs != 1 || m.Seeds[0] != 42 || m.Events != 10 || m.VirtualNS != 100 {
		t.Errorf("manifest header = runs %d seeds %v events %d virtual %d", m.Runs, m.Seeds, m.Events, m.VirtualNS)
	}
	if m.Counters["counter.steals"] != 3 {
		t.Errorf("counter.steals = %d", m.Counters["counter.steals"])
	}
	if m.Counters["comm.put.bytes"] != 64 || m.Counters["comm.put.msgs"] != 1 {
		t.Errorf("comm counters = %v", m.Counters)
	}
	if m.Counters["instant.uts/steal.n"] != 1 || m.Counters["instant.uts/steal.sum"] != 2 {
		t.Errorf("instant counters = %v", m.Counters)
	}
	if m.Gauges["util.peak.mem0"] != 1 {
		t.Errorf("gauges = %v", m.Gauges)
	}
	if m.Comm == nil || m.Comm.Classes[0].Class != "pshm" || m.Comm.Classes[0].Bytes != 64 {
		t.Errorf("comm = %+v", m.Comm)
	}
	if m.Util == nil || m.Util.Links[0].BusyNS != 20 {
		t.Errorf("util = %+v", m.Util)
	}
	if m.Profile == nil || m.Profile.Phases[0].Name != "app/work" {
		t.Errorf("profile = %+v", m.Profile)
	}
	if m.Digest == "" || m.Digest == "0000000000000000" {
		t.Errorf("digest = %q", m.Digest)
	}
}

func TestManifestRoundTripAndDiff(t *testing.T) {
	c1 := NewCollection()
	synthStream(c1)
	m1 := c1.Manifest("upc-test", nil)

	path := filepath.Join(t.TempDir(), "m.json")
	if err := m1.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := Diff(m1, m2, 0); len(d) != 0 {
		t.Errorf("round-trip diff = %+v, want empty", d)
	}

	// Same stream collected twice: identical manifests, identical bytes.
	c3 := NewCollection()
	synthStream(c3)
	m3 := c3.Manifest("upc-test", nil)
	var b1, b3 bytes.Buffer
	if err := m1.Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := m3.Write(&b3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Error("same stream produced different manifest bytes")
	}

	// A perturbed run must diff: drop the comm event's bytes.
	c4 := NewCollection()
	c4.Emit(trace.Event{Kind: trace.KRunBegin, Proc: trace.EngineProc, Cat: "sim", Name: "run", Arg: 42})
	c4.Emit(commEvent("put", trace.ClassPSHM, 32, 0, 1, 0, 0))
	m4 := c4.Manifest("upc-test", nil)
	ds := Diff(m1, m4, 0)
	if len(ds) == 0 {
		t.Fatal("diff of different runs is empty")
	}
	found := false
	for _, d := range ds {
		if d.Name == "digest" && d.Rel == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("diff lacks digest mismatch: %+v", ds)
	}
	// Tolerance 1 suppresses every thresholded delta (Rel never
	// exceeds 1); only the unconditional digest mismatch remains.
	loose := Diff(m1, m4, 1)
	if len(loose) != 1 || loose[0].Name != "digest" {
		t.Errorf("Diff tol=1 = %+v, want only digest", loose)
	}
}

func TestSummary(t *testing.T) {
	c := NewCollection()
	synthStream(c)
	m := c.Manifest("upc-test", nil)
	var b bytes.Buffer
	m.Summary(&b)
	out := b.String()
	for _, want := range []string{"tool=upc-test", "pshm", "mem0", "app/work"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

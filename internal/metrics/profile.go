package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Profile aggregates KSpanBegin/KSpanEnd events into a virtual-time
// profile: per-phase inclusive and exclusive time (a phase is a span's
// cat/name, summed over every process and stack position), and folded
// call stacks in the collapsed flamegraph text format — each line one
// unique span stack with the exclusive virtual nanoseconds spent
// there, ready for any flamegraph renderer that accepts collapsed
// stacks.
type Profile struct {
	open   map[int32][]profFrame
	phases map[string]*phaseAgg
	folded map[string]*foldAgg
}

type profFrame struct {
	key   string // cat/name
	path  string // folded stack including this frame
	start int64
	child int64 // inclusive ns of completed children
}

type phaseAgg struct {
	count int64
	incl  int64
	excl  int64
}

type foldAgg struct {
	count int64
	excl  int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		open:   map[int32][]profFrame{},
		phases: map[string]*phaseAgg{},
		folded: map[string]*foldAgg{},
	}
}

// Record aggregates one span event; other kinds are ignored.
func (p *Profile) Record(e trace.Event) {
	switch e.Kind {
	case trace.KSpanBegin:
		key := e.Cat + "/" + e.Name
		path := key
		if stack := p.open[e.Proc]; len(stack) > 0 {
			path = stack[len(stack)-1].path + ";" + key
		}
		p.open[e.Proc] = append(p.open[e.Proc], profFrame{key: key, path: path, start: e.Time})
	case trace.KSpanEnd:
		stack := p.open[e.Proc]
		if len(stack) == 0 {
			return
		}
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		p.open[e.Proc] = stack
		incl := e.Time - f.start
		excl := incl - f.child
		if excl < 0 {
			excl = 0
		}
		if len(stack) > 0 {
			stack[len(stack)-1].child += incl
		}
		ph := p.phases[f.key]
		if ph == nil {
			ph = &phaseAgg{}
			p.phases[f.key] = ph
		}
		ph.count++
		ph.incl += incl
		ph.excl += excl
		fa := p.folded[f.path]
		if fa == nil {
			fa = &foldAgg{}
			p.folded[f.path] = fa
		}
		fa.count++
		fa.excl += excl
	}
}

// EndRun discards spans left open at a run boundary (they never closed
// within their run, so they have no measurable duration).
func (p *Profile) EndRun() {
	for k := range p.open {
		delete(p.open, k)
	}
}

// PhaseStat is one phase's aggregate: inclusive time counts the full
// span durations, exclusive time subtracts enclosed child spans.
type PhaseStat struct {
	Name        string `json:"name"`
	Count       int64  `json:"count"`
	InclusiveNS int64  `json:"incl_ns"`
	ExclusiveNS int64  `json:"excl_ns"`
}

// FoldedLine is one collapsed stack: semicolon-joined span keys from
// outermost to innermost, with the exclusive time spent exactly there.
type FoldedLine struct {
	Stack string `json:"stack"`
	Count int64  `json:"count"`
	NS    int64  `json:"ns"`
}

// ProfileExport is the manifest form of the profile.
type ProfileExport struct {
	Phases []PhaseStat  `json:"phases,omitempty"`
	Folded []FoldedLine `json:"folded,omitempty"`
}

// Export builds the manifest form, or nil if no spans closed.
func (p *Profile) Export() *ProfileExport {
	if len(p.phases) == 0 {
		return nil
	}
	e := &ProfileExport{}
	names := make([]string, 0, len(p.phases))
	for k := range p.phases {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, n := range names {
		a := p.phases[n]
		e.Phases = append(e.Phases, PhaseStat{Name: n, Count: a.count, InclusiveNS: a.incl, ExclusiveNS: a.excl})
	}
	paths := make([]string, 0, len(p.folded))
	for k := range p.folded {
		paths = append(paths, k)
	}
	sort.Strings(paths)
	for _, pa := range paths {
		a := p.folded[pa]
		e.Folded = append(e.Folded, FoldedLine{Stack: pa, Count: a.count, NS: a.excl})
	}
	return e
}

// FoldedText renders the collapsed-stack flamegraph text: one line per
// unique stack, "stack value", value in exclusive virtual nanoseconds.
func (e *ProfileExport) FoldedText() string {
	if e == nil {
		return ""
	}
	var b strings.Builder
	for _, f := range e.Folded {
		fmt.Fprintf(&b, "%s %d\n", f.Stack, f.NS)
	}
	return b.String()
}

// Package metrics is the run-metrics layer: deterministic, virtual-time
// aggregations of the trace event stream, serialized into a single JSON
// run manifest per invocation (the -metrics flag of the cmd/upc-*
// binaries). Everything here is derived from trace events — no wall
// clock, no sampling threads — so two same-seed runs produce
// byte-identical manifests at any -parallel level, and cmd/upc-metrics
// can diff manifests the way the CI gate diffs trace digests.
//
// The package provides a small registry (counters, gauges, fixed-bucket
// histograms; all exports sorted by key) plus three trace-fed
// collectors: the communication matrix (comm.go), link-utilization
// timelines (util.go), and the virtual-time profile (profile.go).
// Collection (collection.go) bundles all four behind one trace.Tracer.
package metrics

import (
	"math/bits"
	"sort"
)

// Registry holds named counters, gauges and histograms. It is not
// safe for concurrent use; like every trace sink it relies on the
// engine's serialized emission (and the sweep layer's buffer replay)
// for ordering.
type Registry struct {
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]int64{},
		gauges:   map[string]int64{},
		hists:    map[string]*Histogram{},
	}
}

// Add adds delta to the named counter.
func (r *Registry) Add(name string, delta int64) { r.counters[name] += delta }

// Counter reports the named counter's total (0 if never added).
func (r *Registry) Counter(name string) int64 { return r.counters[name] }

// Set overwrites the named gauge.
func (r *Registry) Set(name string, v int64) { r.gauges[name] = v }

// SetMax raises the named gauge to v if v exceeds its current value
// (a peak-tracking gauge; absent gauges start at v).
func (r *Registry) SetMax(name string, v int64) {
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
}

// Gauge reports the named gauge's value (0 if never set).
func (r *Registry) Gauge(name string) int64 { return r.gauges[name] }

// Observe records one sample into the named histogram.
func (r *Registry) Observe(name string, v int64) {
	h := r.hists[name]
	if h == nil {
		h = &Histogram{Min: v}
		r.hists[name] = h
	}
	h.observe(v)
}

// Hist reports the named histogram, or nil if it has no samples.
func (r *Registry) Hist(name string) *Histogram { return r.hists[name] }

// Histogram is a fixed-bucket (log2 by bit length) sample aggregate:
// bucket i counts samples whose value has bit length i, so bucket 0
// holds zeros, bucket 1 holds {1}, bucket 11 holds [1024,2047], and the
// full range of int64 fits in 65 buckets. Fixed buckets keep the export
// shape independent of the data, which keeps manifest diffs meaningful.
type Histogram struct {
	Count int64
	Sum   int64
	Min   int64
	Max   int64
	b     [65]int64
}

func (h *Histogram) observe(v int64) {
	h.Count++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.b[bits.Len64(uint64(v))]++
}

// Mean reports the mean sample value (0 with no samples).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Bucket reports the count of samples with bit length i.
func (h *Histogram) Bucket(i int) int64 { return h.b[i] }

// HistBucket is one non-empty histogram bucket in an export: Bit is the
// sample bit length, Count the samples in it.
type HistBucket struct {
	Bit   int   `json:"bit"`
	Count int64 `json:"n"`
}

// HistogramExport is the manifest form of one named histogram; only
// non-empty buckets appear, in ascending bit order.
type HistogramExport struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Counters returns a copy of every counter (a map: encoding/json sorts
// the keys, so the serialized form is deterministic).
func (r *Registry) Counters() map[string]int64 { return copyMap(r.counters) }

// Gauges returns a copy of every gauge.
func (r *Registry) Gauges() map[string]int64 { return copyMap(r.gauges) }

func copyMap(m map[string]int64) map[string]int64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Histograms exports every histogram, sorted by name.
func (r *Registry) Histograms() []HistogramExport {
	names := make([]string, 0, len(r.hists))
	for k := range r.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	out := make([]HistogramExport, 0, len(names))
	for _, name := range names {
		h := r.hists[name]
		e := HistogramExport{Name: name, Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max}
		for i, n := range h.b {
			if n != 0 {
				e.Buckets = append(e.Buckets, HistBucket{Bit: i, Count: n})
			}
		}
		out = append(out, e)
	}
	return out
}

// The manifest contract the CI shard-determinism job relies on: a run
// on the node-sharded parallel engine aggregates to a byte-identical
// manifest file at every -shards worker count. The test is the
// in-process version of the CI `cmp` over upc-stream's -metrics output.
package metrics

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps/stream"
	"repro/internal/sim"
)

// shardManifest runs one small sharded twisted-triad with the given
// worker-thread count and returns the serialized manifest bytes.
func shardManifest(t *testing.T, workers int) []byte {
	t.Helper()
	old := sim.ShardWorkers()
	sim.SetShardWorkers(workers)
	defer sim.SetShardWorkers(old)
	c := NewCollection()
	if _, err := stream.RunTwistedSharded(stream.ShardConfig{
		Nodes:          4,
		ThreadsPerNode: 2,
		ElemsPerThrd:   1 << 10,
		Seed:           42,
		Tracer:         c,
	}); err != nil {
		t.Fatalf("RunTwistedSharded(workers=%d): %v", workers, err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := c.Manifest("upc-test", map[string]string{"table": "3.1"}).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestShardedManifestWorkerCountInvariance(t *testing.T) {
	base := shardManifest(t, 1)
	if len(base) == 0 {
		t.Fatal("empty manifest")
	}
	for _, workers := range []int{2, 4} {
		if got := shardManifest(t, workers); string(got) != string(base) {
			t.Errorf("manifest bytes at %d workers differ from 1 worker", workers)
		}
	}
}

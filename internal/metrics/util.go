package metrics

import (
	"sort"

	"repro/internal/trace"
)

// utilIntervals is the fixed timeline resolution: every link's busy
// time is folded into this many equal virtual-time intervals. When a
// run outgrows the current interval width the whole timeline re-bins
// into doubled intervals, so the export stays bounded no matter how
// long the run is while short runs keep fine resolution.
const utilIntervals = 128

// utilInitialWidth is the starting interval width in virtual
// nanoseconds (1µs; a full timeline at this width spans 128µs before
// the first re-bin).
const utilInitialWidth = int64(1024)

// UtilTimelines aggregates CatLink occupancy instants (emitted by the
// fabric when a sink opts in via trace.UtilObserver) into per-link
// utilization: busy time per virtual-time interval, the active-flow
// integral (mean queue depth), and the peak depth. Cores, memory
// controllers, NICs and conduit connections are all fabric links, so
// one collector covers core occupancy and wire utilization alike.
//
// Virtual time restarts at every run boundary; a multi-run manifest
// (an experiment sweep) folds each run's timeline onto the same axis,
// so intervals read as "per run-relative time, summed over runs".
type UtilTimelines struct {
	links map[string]*linkUtil
	width int64 // current interval width, ns
}

type linkUtil struct {
	name     string
	active   int64 // current open flow count
	last     int64 // virtual time of the last occupancy change this run
	busy     int64 // total ns with active > 0
	integral int64 // sum of active * dt, ns-flows (mean depth = integral/observed)
	observed int64 // total ns this link was under observation
	peak     int64
	capacity int64 // bytes/s as reported by the fabric; 0 = infinite
	busyAt   [utilIntervals]int64
}

// NewUtilTimelines returns an empty collector.
func NewUtilTimelines() *UtilTimelines {
	return &UtilTimelines{links: map[string]*linkUtil{}, width: utilInitialWidth}
}

// Record aggregates one CatLink event (Name link, Arg active count
// after the change, Arg2 capacity).
func (u *UtilTimelines) Record(e trace.Event) {
	l := u.links[e.Name]
	if l == nil {
		l = &linkUtil{name: e.Name, capacity: e.Arg2}
		u.links[e.Name] = l
	}
	u.advance(l, e.Time)
	l.active = e.Arg
	if e.Arg > l.peak {
		l.peak = e.Arg
	}
}

// Peak reports the peak active-flow count of one link.
func (u *UtilTimelines) Peak(name string) int64 {
	if l := u.links[name]; l != nil {
		return l.peak
	}
	return 0
}

// Busy reports the total busy nanoseconds of one link.
func (u *UtilTimelines) Busy(name string) int64 {
	if l := u.links[name]; l != nil {
		return l.busy
	}
	return 0
}

// advance charges the open segment [l.last, now) at the link's current
// active count, folding busy time into the interval timeline.
func (u *UtilTimelines) advance(l *linkUtil, now int64) {
	if now <= l.last {
		l.last = now
		return
	}
	dt := now - l.last
	l.observed += dt
	if l.active > 0 {
		l.busy += dt
		l.integral += l.active * dt
		u.addBusy(l, l.last, now)
	}
	l.last = now
}

// addBusy distributes a busy segment over the interval timeline,
// re-binning into wider intervals until the segment's end fits.
func (u *UtilTimelines) addBusy(l *linkUtil, t0, t1 int64) {
	for t1 > u.width*utilIntervals {
		u.rebin()
	}
	for t := t0; t < t1; {
		i := t / u.width
		end := (i + 1) * u.width
		if end > t1 {
			end = t1
		}
		l.busyAt[i] += end - t
		t = end
	}
}

// rebin doubles the interval width, merging adjacent pairs on every
// link's timeline.
func (u *UtilTimelines) rebin() {
	u.width *= 2
	for _, l := range u.links {
		for i := 0; i < utilIntervals/2; i++ {
			l.busyAt[i] = l.busyAt[2*i] + l.busyAt[2*i+1]
		}
		for i := utilIntervals / 2; i < utilIntervals; i++ {
			l.busyAt[i] = 0
		}
	}
}

// EndRun closes every link's open segment at the run's final virtual
// time and resets per-run state; the Collection calls it at each run
// boundary and once at export.
func (u *UtilTimelines) EndRun(end int64) {
	for _, l := range u.links {
		u.advance(l, end)
		l.last = 0
		l.active = 0
	}
}

// UtilPoint is one non-empty timeline interval: interval index I (the
// interval spans [I*width, (I+1)*width) in run-relative virtual time)
// and the busy nanoseconds within it.
type UtilPoint struct {
	I    int   `json:"i"`
	Busy int64 `json:"busy_ns"`
}

// LinkUtil is the manifest form of one link's utilization.
type LinkUtil struct {
	Name string `json:"name"`
	// Capacity is the link's modeled bandwidth in bytes/s (0 = infinite).
	Capacity int64 `json:"capacity,omitempty"`
	// BusyNS is the virtual time the link had at least one active flow.
	BusyNS int64 `json:"busy_ns"`
	// ObservedNS is the virtual time under observation (run lengths).
	ObservedNS int64 `json:"observed_ns"`
	// Peak is the maximum concurrent active-flow count (queue depth).
	Peak int64 `json:"peak"`
	// DepthNS is the integral of active flows over time; DepthNS /
	// ObservedNS is the mean queue depth.
	DepthNS int64 `json:"depth_ns"`
	// Timeline holds the non-empty busy intervals.
	Timeline []UtilPoint `json:"timeline,omitempty"`
}

// UtilExport is the manifest form of all timelines.
type UtilExport struct {
	// IntervalNS is the timeline interval width in virtual nanoseconds.
	IntervalNS int64      `json:"interval_ns"`
	Links      []LinkUtil `json:"links"`
}

// Export builds the manifest form, or nil if no occupancy events were
// seen. Call EndRun first to close open segments.
func (u *UtilTimelines) Export() *UtilExport {
	if len(u.links) == 0 {
		return nil
	}
	names := make([]string, 0, len(u.links))
	for k := range u.links {
		names = append(names, k)
	}
	sort.Strings(names)
	e := &UtilExport{IntervalNS: u.width}
	for _, name := range names {
		l := u.links[name]
		lu := LinkUtil{
			Name: l.name, Capacity: l.capacity, BusyNS: l.busy,
			ObservedNS: l.observed, Peak: l.peak, DepthNS: l.integral,
		}
		for i, b := range l.busyAt {
			if b != 0 {
				lu.Timeline = append(lu.Timeline, UtilPoint{I: i, Busy: b})
			}
		}
		e.Links = append(e.Links, lu)
	}
	return e
}

package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// hierThreshold is the per-destination slice size (bytes) at or below
// which Alltoall prefers the hierarchical node-aggregated algorithm. For
// larger slices the exchange is bandwidth-bound and the extra local copies
// of aggregation stop paying off, so pairwise wins — the same size-based
// algorithm switching tuned MPI libraries perform.
const hierThreshold = 4096

// Alltoall performs a complete exchange: rank r's send[d] lands in rank
// d's result[r] (MPI_Alltoall with per-destination byte slices). The
// algorithm is chosen the way a tuned MPI library would: the hierarchical
// node-aggregated algorithm when several ranks share a node (one wire
// message per node pair instead of ranksPerNode², spread across all of the
// node's connections), pairwise exchange otherwise.
func (c *Comm) Alltoall(send [][]byte) [][]byte {
	if len(send) != c.Size {
		panic(fmt.Sprintf("mpi: Alltoall with %d slices for %d ranks", len(send), c.Size))
	}
	w := c.w
	if w.Cfg.RanksPerNode > 1 && w.nodes > 1 && c.Size == w.nodes*w.Cfg.RanksPerNode &&
		uniformSizes(send) && len(send[0]) <= hierThreshold {
		return c.alltoallHierarchical(send)
	}
	return c.alltoallPairwise(send)
}

// AlltoallPairwise forces the naive pairwise-exchange algorithm (used by
// the ablation benchmarks).
func (c *Comm) AlltoallPairwise(send [][]byte) [][]byte {
	return c.alltoallPairwise(send)
}

func (c *Comm) alltoallPairwise(send [][]byte) [][]byte {
	out := make([][]byte, c.Size)
	out[c.Rank] = append([]byte(nil), send[c.Rank]...)
	for step := 1; step < c.Size; step++ {
		to := (c.Rank + step) % c.Size
		from := (c.Rank - step + c.Size) % c.Size
		out[from] = c.Sendrecv(to, send[to], from)
	}
	return out
}

// alltoallHierarchical aggregates per node pair: each remote node nd is
// assigned to the local *handler* rank nd%per, which collects its node's
// contributions for nd over shared memory, exchanges one aggregated block
// with nd's corresponding handler on the wire, and scatters the arrivals
// locally. Wire traffic drops from per² messages per node pair to one,
// spread across all of the node's connections.
func (c *Comm) alltoallHierarchical(send [][]byte) [][]byte {
	w := c.w
	per := w.Cfg.RanksPerNode
	myNode := c.Rank / per
	li := c.Rank % per
	slice := len(send[0])
	out := make([][]byte, c.Size)

	// Node-local exchange goes directly over shared memory, pairwise.
	out[c.Rank] = append([]byte(nil), send[c.Rank]...)
	for step := 1; step < per; step++ {
		to := myNode*per + (li+step)%per
		from := myNode*per + (li-step+per)%per
		out[from] = c.Sendrecv(to, send[to], from)
	}

	// myNodes lists the remote nodes this rank handles, ascending.
	handled := func(lr int) []int {
		var nds []int
		for nd := 0; nd < w.nodes; nd++ {
			if nd != myNode && nd%per == lr {
				nds = append(nds, nd)
			}
		}
		return nds
	}
	mine := handled(li)

	// Phase 1: ship each remote node's block to its local handler. A
	// block is concat(send[dr]) over nd's ranks, ascending.
	blockFor := func(vec [][]byte, nd int) []byte {
		blk := make([]byte, 0, per*slice)
		for dr := nd * per; dr < (nd+1)*per; dr++ {
			blk = append(blk, vec[dr]...)
		}
		return blk
	}
	for nd := 0; nd < w.nodes; nd++ {
		if nd == myNode || nd%per == li {
			continue
		}
		c.Send(myNode*per+nd%per, blockFor(send, nd))
	}
	// Collect the node's contributions for each node I handle:
	// contrib[k][lr] is local rank lr's block for mine[k].
	contrib := make([][][]byte, len(mine))
	for k, nd := range mine {
		contrib[k] = make([][]byte, per)
		contrib[k][li] = blockFor(send, nd)
	}
	// Each other local rank sends me its blocks for my nodes, ascending.
	for lr := 0; lr < per; lr++ {
		if lr == li {
			continue
		}
		for k := range mine {
			contrib[k][lr] = c.Recv(myNode*per + lr)
		}
	}

	// Phase 2: exchange aggregated node-pair blocks with the partner
	// handlers, non-blocking sends first to avoid ordering cycles. The
	// handler for node myNode on node nd is rank nd*per + myNode%per.
	for k, nd := range mine {
		agg := make([]byte, 0, per*per*slice)
		for lr := 0; lr < per; lr++ {
			agg = append(agg, contrib[k][lr]...)
		}
		c.isend(nd*per+myNode%per, agg)
	}
	arrivals := make([][]byte, len(mine))
	for k, nd := range mine {
		arrivals[k] = c.Recv(nd*per + myNode%per)
	}

	// Phase 3: unpack arrivals and scatter to local destinations. An
	// arrival from nd holds, for each sender lr' on nd (ascending), the
	// slices for my node's ranks (ascending).
	for k, nd := range mine {
		blk := arrivals[k]
		off := 0
		for sr := nd * per; sr < (nd+1)*per; sr++ {
			for dr := myNode * per; dr < (myNode+1)*per; dr++ {
				piece := blk[off : off+slice]
				off += slice
				if dr == c.Rank {
					out[sr] = append([]byte(nil), piece...)
				} else {
					c.Send(dr, piece)
				}
			}
		}
	}
	// Receive my slices for non-handled nodes from their local handlers,
	// in the handlers' deterministic (nd ascending, sr ascending) order.
	for nd := 0; nd < w.nodes; nd++ {
		if nd == myNode || nd%per == li {
			continue
		}
		h := myNode*per + nd%per
		for sr := nd * per; sr < (nd+1)*per; sr++ {
			out[sr] = c.Recv(h)
		}
	}
	return out
}

func uniformSizes(v [][]byte) bool {
	for _, s := range v[1:] {
		if len(s) != len(v[0]) {
			return false
		}
	}
	return true
}

// AlltoallModel runs the complete-exchange communication pattern for
// uniform per-destination slices of the given byte size without carrying
// payloads — the model-mode form of Alltoall with the same size-based
// algorithm selection.
func (c *Comm) AlltoallModel(slice int64) {
	w := c.w
	if w.Cfg.RanksPerNode > 1 && w.nodes > 1 && c.Size == w.nodes*w.Cfg.RanksPerNode &&
		slice <= hierThreshold {
		c.alltoallHierarchicalModel(slice)
		return
	}
	for step := 1; step < c.Size; step++ {
		to := (c.Rank + step) % c.Size
		from := (c.Rank - step + c.Size) % c.Size
		c.SendrecvModel(to, slice, from)
	}
}

// alltoallHierarchicalModel mirrors alltoallHierarchical's message pattern
// with payload-free transfers.
func (c *Comm) alltoallHierarchicalModel(slice int64) {
	w := c.w
	per := w.Cfg.RanksPerNode
	myNode := c.Rank / per
	li := c.Rank % per

	for step := 1; step < per; step++ {
		to := myNode*per + (li+step)%per
		from := myNode*per + (li-step+per)%per
		c.SendrecvModel(to, slice, from)
	}
	nHandled := 0
	for nd := 0; nd < w.nodes; nd++ {
		if nd == myNode {
			continue
		}
		if nd%per == li {
			nHandled++
		} else {
			c.SendModel(myNode*per+nd%per, int64(per)*slice)
		}
	}
	// Receive phase-1 contributions for each handled node.
	for lr := 0; lr < per; lr++ {
		if lr == li {
			continue
		}
		for k := 0; k < nHandled; k++ {
			c.Recv(myNode*per + lr)
		}
	}
	// Phase 2: aggregated node-pair exchanges.
	for nd := 0; nd < w.nodes; nd++ {
		if nd == myNode || nd%per != li {
			continue
		}
		msg := &message{src: c.Rank, arrived: &sim.Event{}}
		c.w.inbox[nd*per+myNode%per] = append(c.w.inbox[nd*per+myNode%per], msg)
		c.w.rxQ[nd*per+myNode%per].WakeAll()
		c.transfer(nd*per+myNode%per, int64(per*per)*slice, msg.arrived.Fire)
	}
	for nd := 0; nd < w.nodes; nd++ {
		if nd == myNode || nd%per != li {
			continue
		}
		c.Recv(nd*per + myNode%per)
	}
	// Phase 3: scatter arrivals to local destinations.
	for nd := 0; nd < w.nodes; nd++ {
		if nd == myNode || nd%per != li {
			continue
		}
		for dr := myNode * per; dr < (myNode+1)*per; dr++ {
			if dr != c.Rank {
				c.SendModel(dr, int64(per)*slice)
			}
		}
	}
	for nd := 0; nd < w.nodes; nd++ {
		if nd == myNode || nd%per == li {
			continue
		}
		h := myNode*per + nd%per
		c.Recv(h)
	}
}

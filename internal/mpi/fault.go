package mpi

import (
	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Self-healing layer: when a fault schedule is installed (Config.Faults
// or the process default), the library behaves like an MPI stack with a
// reliable transport — lost rendezvous payloads are retransmitted by the
// sender, lost eager payloads are pulled back by the receiver after an
// ack timeout (the NACK path), and blocking calls that can never
// complete return typed errors instead of hanging. Without a schedule
// every hook collapses to a nil check.

// faultsOn reports whether this run has a fault schedule installed.
func (w *World) faultsOn() bool { return w.inj != nil }

// FaultsOn reports whether a fault schedule is installed on this run.
func (w *World) FaultsOn() bool { return w.faultsOn() }

// nodeDown consults the fault model for node liveness.
func (w *World) nodeDown(node int) bool { return w.Cluster.NodeDown(node) }

// anyNodeDown reports whether any node hosting a rank is down — the
// condition that turns a barrier timeout into a crash diagnosis.
func (w *World) anyNodeDown() bool {
	for n := 0; n < w.nodes; n++ {
		if w.nodeDown(n) {
			return true
		}
	}
	return false
}

// Failed reports whether this rank's own node is crashed under the run's
// fault schedule.
func (c *Comm) Failed() bool {
	return c.w.faultsOn() && c.w.nodeDown(c.Place.Node)
}

// FaultEvent emits one recovery-visibility instant (comm-matrix class
// fault) from this rank toward peer. Free when untraced.
func (c *Comm) FaultEvent(name string, peer int, bytes int64) {
	if !c.w.Eng.Tracing() {
		return
	}
	c.P.TraceInstant(trace.CatComm, name, trace.ClassFault, bytes,
		trace.PackEndpoints(c.Rank, peer, c.Place.Node, c.w.places[peer].Node))
}

// expectXfer estimates the fault-free completion time of a transfer, fed
// into the retry policy's per-attempt timeouts.
func (c *Comm) expectXfer(bytes int64) sim.Duration {
	cond := &c.w.Cluster.Conduit
	return 2*cond.Latency + sim.TransferTime(bytes, cond.ConnBW)
}

// commError builds the typed failure of an exhausted recovery.
func (c *Comm) commError(op string, peer, attempts int, cause error) error {
	return &fault.CommError{Op: op, Src: c.Rank, Dst: peer, Attempts: attempts, Err: cause}
}

// incPair reports the current incarnations of this rank's node and
// peer's node. Only call under an installed fault schedule.
func (c *Comm) incPair(peer int) (int64, int64) {
	w := c.w
	return w.inj.Incarnation(c.Place.Node), w.inj.Incarnation(w.places[peer].Node)
}

// epochStale reports whether an operation issued at incarnations
// (si, pi) straddles a reincarnation of either endpoint node — the
// membership-epoch fence. Stale operations surface as ErrStaleEpoch
// instead of being retried into the node's new life.
func (c *Comm) epochStale(peer int, si, pi int64) bool {
	ni, npi := c.incPair(peer)
	return ni != si || npi != pi
}

// fencePayload wraps a cross-node payload arrival with the
// delivery-time membership-epoch fence: a payload sent before a
// reincarnation of either endpoint is dropped (with a comm-matrix
// "stale-drop" instant) instead of firing into the new life's restored
// state. Fault-free runs pass through untouched.
func (c *Comm) fencePayload(dst int, bytes int64, apply func()) func() {
	w := c.w
	if apply == nil || !w.faultsOn() {
		return apply
	}
	srcN, dstN := c.Place.Node, w.places[dst].Node
	si, di := w.inj.Incarnation(srcN), w.inj.Incarnation(dstN)
	rank, peer := c.Rank, dst
	return func() {
		if w.inj.Incarnation(srcN) != si || w.inj.Incarnation(dstN) != di ||
			w.nodeDown(dstN) {
			if w.Eng.Tracing() {
				w.Eng.TraceInstant(trace.CatComm, "stale-drop", trace.ClassFault,
					bytes, trace.PackEndpoints(rank, peer, srcN, dstN))
			}
			return
		}
		apply()
	}
}

// SendErr is Send with fault recovery and typed errors.
func (c *Comm) SendErr(dst int, data []byte) error {
	if err := c.sendCheck(dst); err != nil {
		return err
	}
	snap := make([]byte, len(data))
	copy(snap, data)
	op, msg := c.post(dst, int64(len(data)), snap)
	return c.finishSend(op, msg, dst)
}

// SendModelErr is SendModel with fault recovery and typed errors.
func (c *Comm) SendModelErr(dst int, bytes int64) error {
	if err := c.sendCheck(dst); err != nil {
		return err
	}
	op, msg := c.post(dst, bytes, nil)
	return c.finishSend(op, msg, dst)
}

// sendCheck fails a send fast when either end is already down.
func (c *Comm) sendCheck(dst int) error {
	if !c.w.faultsOn() {
		return nil
	}
	if c.w.nodeDown(c.Place.Node) || c.w.nodeDown(c.w.places[dst].Node) {
		return c.commError("send", dst, 0, fault.ErrNodeDown)
	}
	return nil
}

// finishSend applies the protocol's blocking rule to a posted message.
// Eager sends complete when the payload leaves the source buffer (loss is
// recovered receiver-side); rendezvous sends block for delivery and
// retransmit on timeout.
func (c *Comm) finishSend(op *fabric.NetOp, msg *message, dst int) error {
	if msg.bytes <= EagerThreshold {
		op.WaitLocal(c.P)
		return nil
	}
	w := c.w
	if !w.faultsOn() || topo.SameNode(c.Place, w.places[dst]) {
		op.WaitRemote(c.P)
		return nil
	}
	rp := w.retry
	xfer := c.expectXfer(msg.bytes)
	dstNode := w.places[dst].Node
	si, di := c.incPair(dst)
	attempts := 1
	for try := 0; ; try++ {
		if op.Remote.WaitTimeout(c.P, rp.AttemptTimeout(try, xfer)) {
			return nil
		}
		c.FaultEvent("timeout", dst, msg.bytes)
		// Epoch fence before the liveness diagnosis: an endpoint that
		// crashed and revived within the window is up again, but this send
		// belongs to its previous incarnation.
		if c.epochStale(dst, si, di) {
			return c.commError("send", dst, attempts, fault.ErrStaleEpoch)
		}
		if w.nodeDown(c.Place.Node) || w.nodeDown(dstNode) {
			return c.commError("send", dst, attempts, fault.ErrNodeDown)
		}
		if try >= rp.MaxRetries {
			return c.commError("send", dst, attempts, fault.ErrTimeout)
		}
		c.P.Advance(rp.BackoffFor(try + 1))
		if c.epochStale(dst, si, di) {
			return c.commError("send", dst, attempts, fault.ErrStaleEpoch)
		}
		if w.nodeDown(c.Place.Node) || w.nodeDown(dstNode) {
			return c.commError("send", dst, attempts, fault.ErrNodeDown)
		}
		c.FaultEvent("retry", dst, msg.bytes)
		op = c.transfer(dst, msg.bytes, msg.arrived.Fire)
		attempts++
	}
}

// RecvErr is Recv with fault recovery and typed errors: it gives up when
// the sender's node dies or no matching message appears within the retry
// policy's deadline ladder, and pulls lost payloads back from the sender
// after an ack timeout.
func (c *Comm) RecvErr(src int) ([]byte, error) {
	w := c.w
	if !w.faultsOn() {
		m := c.match(src)
		m.arrived.Wait(c.P)
		return m.data, nil
	}
	rp := w.retry
	srcNode := w.places[src].Node
	si, pi := c.incPair(src)
	timeouts := 0
	for {
		if m := c.matchNow(src); m != nil {
			return c.awaitPayload(m, src)
		}
		if c.epochStale(src, si, pi) {
			return nil, c.commError("recv", src, timeouts, fault.ErrStaleEpoch)
		}
		if w.nodeDown(c.Place.Node) || w.nodeDown(srcNode) {
			return nil, c.commError("recv", src, timeouts, fault.ErrNodeDown)
		}
		if timeouts > rp.MaxRetries {
			return nil, c.commError("recv", src, timeouts, fault.ErrTimeout)
		}
		if !w.rxQ[c.Rank].WaitTimeout(c.P, "mpi-recv", rp.AttemptTimeout(timeouts, 0)) {
			c.FaultEvent("timeout", src, 0)
			timeouts++
		}
	}
}

// awaitPayload waits for a matched message's payload. A payload lost to
// injected drops is recovered by pulling it from the sender's buffer —
// the simulation's equivalent of a NACK-triggered retransmission.
func (c *Comm) awaitPayload(m *message, src int) ([]byte, error) {
	w := c.w
	if !w.faultsOn() || topo.SameNode(c.Place, w.places[src]) {
		m.arrived.Wait(c.P)
		return m.data, nil
	}
	rp := w.retry
	xfer := c.expectXfer(m.bytes)
	srcNode := w.places[src].Node
	si, pi := c.incPair(src)
	attempts := 1
	for try := 0; ; try++ {
		if m.arrived.WaitTimeout(c.P, rp.AttemptTimeout(try, xfer)) {
			return m.data, nil
		}
		c.FaultEvent("timeout", src, m.bytes)
		if c.epochStale(src, si, pi) {
			return nil, c.commError("recv", src, attempts, fault.ErrStaleEpoch)
		}
		if w.nodeDown(c.Place.Node) || w.nodeDown(srcNode) {
			return nil, c.commError("recv", src, attempts, fault.ErrNodeDown)
		}
		if try >= rp.MaxRetries {
			return nil, c.commError("recv", src, attempts, fault.ErrTimeout)
		}
		c.P.Advance(rp.BackoffFor(try + 1))
		if c.epochStale(src, si, pi) {
			return nil, c.commError("recv", src, attempts, fault.ErrStaleEpoch)
		}
		if w.nodeDown(c.Place.Node) || w.nodeDown(srcNode) {
			return nil, c.commError("recv", src, attempts, fault.ErrNodeDown)
		}
		c.FaultEvent("retry", src, m.bytes)
		c.ep.GetAsync(c.P, w.eps[src], m.bytes, m.arrived.Fire)
		attempts++
	}
}

// BarrierErr is Barrier with failure detection: instead of hanging when
// a rank can never arrive, it gives up after the retry policy's deadline
// ladder and returns a typed error (ErrNodeDown when a crash explains
// the stall, ErrTimeout otherwise).
func (c *Comm) BarrierErr() error {
	w := c.w
	if !w.faultsOn() {
		c.Barrier()
		return nil
	}
	if w.nodeDown(c.Place.Node) {
		return c.commError("barrier", c.Rank, 0, fault.ErrNodeDown)
	}
	ev := c.notifyBarrier()
	return c.waitLadder(ev, "barrier", w.barCost)
}

// AllreduceSumErr is AllreduceSum with failure detection.
func (c *Comm) AllreduceSumErr(v float64) (float64, error) {
	r, err := c.collectiveErr(v, func(vals []any) any {
		s := 0.0
		for _, x := range vals {
			s += x.(float64)
		}
		return s
	})
	if err != nil {
		return 0, err
	}
	return r.(float64), nil
}

// waitLadder drives a collective release event through the deadline
// ladder, diagnosing crashes.
func (c *Comm) waitLadder(ev *sim.Event, op string, cost sim.Duration) error {
	w := c.w
	rp := w.retry
	attempts := 0
	for try := 0; try <= rp.MaxRetries; try++ {
		attempts++
		if ev.WaitTimeout(c.P, rp.AttemptTimeout(try, cost)) {
			return nil
		}
		c.FaultEvent("timeout", c.Rank, 0)
		if w.nodeDown(c.Place.Node) || w.anyNodeDown() {
			return c.commError(op, c.Rank, attempts, fault.ErrNodeDown)
		}
	}
	return c.commError(op, c.Rank, attempts, fault.ErrTimeout)
}

package mpi

import (
	"errors"
	"testing"

	"repro/internal/fault"
	"repro/internal/sim"
)

// chaosCfg is cfg plus a fault schedule: 4 ranks on 2 nodes so rank r
// and rank r^2 always talk across the network.
func chaosCfg(sched *fault.Schedule) Config {
	c := cfg(4, 2)
	c.Faults = sched
	return c
}

// TestEagerRecvRecoversFromDropWindow: every cross-node message inside
// the window is dropped; the receiver's NACK pull must recover the
// payload once the window closes.
func TestEagerRecvRecoversFromDropWindow(t *testing.T) {
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpDrop, At: 0, Until: 0.002, Prob: 1, Src: -1, Dst: -1},
	}}
	var gotAt sim.Time
	_, err := Run(chaosCfg(sched), func(c *Comm) {
		if c.Rank == 0 {
			c.Send(2, []byte{7}) // eager, cross-node: returns at WaitLocal
		}
		if c.Rank == 2 {
			got, rerr := c.RecvErr(0)
			if rerr != nil {
				t.Errorf("RecvErr under drop window: %v", rerr)
				return
			}
			if len(got) != 1 || got[0] != 7 {
				t.Errorf("payload = %v, want [7]", got)
			}
			gotAt = c.P.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotAt < sim.Time(2*sim.Millisecond) {
		t.Errorf("recv completed at %v, inside the total-drop window", gotAt)
	}
}

// TestRendezvousSendRetransmits: a rendezvous-size payload lost to the
// drop window is retransmitted by the blocked sender.
func TestRendezvousSendRetransmits(t *testing.T) {
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpDrop, At: 0, Until: 0.002, Prob: 1, Src: -1, Dst: -1},
	}}
	var sentAt sim.Time
	_, err := Run(chaosCfg(sched), func(c *Comm) {
		if c.Rank == 0 {
			if serr := c.SendModelErr(2, 64*1024); serr != nil {
				t.Errorf("SendModelErr under drop window: %v", serr)
			}
			sentAt = c.P.Now()
		}
		if c.Rank == 2 {
			if _, rerr := c.RecvErr(0); rerr != nil {
				t.Errorf("RecvErr: %v", rerr)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sentAt < sim.Time(2*sim.Millisecond) {
		t.Errorf("rendezvous send completed at %v, inside the total-drop window", sentAt)
	}
}

// TestCrashSurfacesTypedErrors: after node 1 crashes, sends toward it
// fail fast with ErrNodeDown, receives from it diagnose the crash, and
// barriers return a typed error instead of hanging.
func TestCrashSurfacesTypedErrors(t *testing.T) {
	sched := &fault.Schedule{Actions: []fault.Action{
		{Op: fault.OpCrash, At: 0.001, Node: 1, Src: -1, Dst: -1},
	}}
	_, err := Run(chaosCfg(sched), func(c *Comm) {
		c.P.Advance(2 * sim.Millisecond)
		if c.Failed() {
			return // ranks on the dead node stop participating
		}
		serr := c.SendErr(2, []byte{1})
		if !errors.Is(serr, fault.ErrNodeDown) {
			t.Errorf("rank %d send to dead node: %v, want ErrNodeDown", c.Rank, serr)
		}
		var ce *fault.CommError
		if !errors.As(serr, &ce) || ce.Op != "send" || ce.Dst != 2 {
			t.Errorf("send error = %#v, want CommError{Op: send, Dst: 2}", serr)
		}
		if _, rerr := c.RecvErr(3); !errors.Is(rerr, fault.ErrNodeDown) {
			t.Errorf("rank %d recv from dead node: %v, want ErrNodeDown", c.Rank, rerr)
		}
		if berr := c.BarrierErr(); !errors.Is(berr, fault.ErrNodeDown) {
			t.Errorf("rank %d barrier with dead ranks: %v, want ErrNodeDown", c.Rank, berr)
		}
		if _, aerr := c.AllreduceSumErr(1); !errors.Is(aerr, fault.ErrNodeDown) {
			t.Errorf("rank %d allreduce with dead ranks: %v, want ErrNodeDown", c.Rank, aerr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestChaosDeterministicAndCorrect: a probabilistic chaos schedule must
// give byte-identical payloads to a fault-free run and an identical
// virtual timeline across repeats of the same (seed, schedule).
func TestChaosDeterministicAndCorrect(t *testing.T) {
	mk := func(faults bool) *fault.Schedule {
		if !faults {
			return nil
		}
		return &fault.Schedule{Actions: []fault.Action{
			{Op: fault.OpDrop, At: 0, Until: 0.01, Prob: 0.35, Src: -1, Dst: -1},
			{Op: fault.OpDuplicate, At: 0, Until: 0.01, Prob: 0.25, Src: -1, Dst: -1},
		}}
	}
	run := func(faults bool) (sim.Time, []byte) {
		got := make([]byte, 8)
		var end sim.Time
		_, err := Run(chaosCfg(mk(faults)), func(c *Comm) {
			peer := c.Rank ^ 2 // cross-node pairing
			for i := 0; i < 2; i++ {
				c.Send(peer, []byte{byte(10*c.Rank + i)})
			}
			for i := 0; i < 2; i++ {
				in := c.Recv(peer)
				got[2*c.Rank+i] = in[0]
			}
			c.Barrier()
			if t := c.P.Now(); t > end {
				end = t
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return end, got
	}
	endA, gotA := run(true)
	endB, gotB := run(true)
	if endA != endB {
		t.Errorf("same seed+schedule diverged: %v vs %v", endA, endB)
	}
	for i := range gotA {
		if gotA[i] != gotB[i] {
			t.Errorf("payload %d diverged across identical runs: %d vs %d", i, gotA[i], gotB[i])
		}
	}
	_, clean := run(false)
	for i := range clean {
		if gotA[i] != clean[i] {
			t.Errorf("payload %d under chaos = %d, fault-free = %d", i, gotA[i], clean[i])
		}
	}
}

// Package mpi implements the two-sided message-passing baseline the
// thesis compares against (OpenMPI + Fortran NAS FT): blocking send/recv
// with eager and rendezvous protocols over the same simulated fabric,
// barriers, reductions, and an all-to-all collective with both the naive
// pairwise algorithm and the hierarchical (node-leader) algorithm that
// vendor-tuned MPI libraries use — the reason MPI's collective wins in
// Figure 4.5 while still saturating past two cores per node.
package mpi

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
)

// EagerThreshold is the message size at or below which sends complete
// locally without waiting for the receiver (bytes).
const EagerThreshold = 4096

// smOverhead is the per-message cost of the shared-memory (sm) transport
// used for intra-node sends.
const smOverhead = 200 * sim.Nanosecond

// Config describes one MPI execution.
type Config struct {
	Machine      *topo.Machine
	Conduit      *fabric.Conduit // nil = machine default
	Ranks        int
	RanksPerNode int
	Binding      topo.Binding
	Seed         int64
	// Tracer, when non-nil, receives the run's trace events in addition to
	// any process-default tracer (see internal/trace).
	Tracer trace.Tracer
	// Faults, when non-nil, overrides the process-default fault schedule
	// (see internal/fault). The library then retransmits lost messages
	// under Retry and surfaces unrecoverable failures as typed errors.
	Faults *fault.Schedule
	// Retry tunes recovery when a fault schedule is installed; zero
	// fields take fault.DefaultRetryPolicy.
	Retry fault.RetryPolicy
}

// World is the per-execution state shared by all ranks.
type World struct {
	Cfg     Config
	Eng     *sim.Engine
	Cluster *fabric.Cluster

	comms  []*Comm
	places []topo.Place
	eps    []*fabric.Endpoint

	inbox   [][]*message // per destination rank
	rxQ     []sim.WaitQueue
	nodes   int
	barCost sim.Duration
	bar     *barrier
	colls   []*collSlot

	inj   *fault.Injector
	retry fault.RetryPolicy
	// edges is true when the installed tracer opted into completion-edge
	// instants (trace.EdgeObserver), cached at construction.
	edges bool
}

type message struct {
	src     int
	bytes   int64
	data    []byte
	arrived *sim.Event
}

type barrier struct {
	n, arrived int
	ev         *sim.Event
}

type collSlot struct {
	arrived int
	vals    []any
	result  any
	ev      *sim.Event
}

// Stats summarizes a completed run.
type Stats struct {
	Elapsed sim.Duration
	Ranks   int
}

// Comm is one rank's communicator handle (MPI_COMM_WORLD view).
type Comm struct {
	w     *World
	P     *sim.Proc
	Rank  int
	Size  int
	Place topo.Place
	ep    *fabric.Endpoint

	collSeq int
}

// Run executes main on every rank and returns run statistics.
func Run(cfg Config, main func(c *Comm)) (Stats, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return Stats{}, err
	}
	for _, c := range w.comms {
		c := c
		w.Eng.Go(fmt.Sprintf("mpi%d", c.Rank), func(p *sim.Proc) {
			c.P = p
			main(c)
		})
	}
	if err := w.Eng.Run(); err != nil {
		return Stats{}, err
	}
	return Stats{Elapsed: w.Eng.Now(), Ranks: cfg.Ranks}, nil
}

// NewWorld builds the world without launching ranks.
func NewWorld(cfg Config) (*World, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("mpi: Config.Machine is required")
	}
	if cfg.Ranks <= 0 || cfg.RanksPerNode <= 0 {
		return nil, fmt.Errorf("mpi: Ranks=%d RanksPerNode=%d", cfg.Ranks, cfg.RanksPerNode)
	}
	cond := fabric.Conduit{}
	if cfg.Conduit != nil {
		cond = *cfg.Conduit
	} else {
		var ok bool
		cond, ok = fabric.ConduitByName(cfg.Machine.DefaultConduit)
		if !ok {
			return nil, fmt.Errorf("mpi: unknown default conduit %q", cfg.Machine.DefaultConduit)
		}
	}
	places, err := cfg.Machine.Layout(cfg.Ranks, cfg.RanksPerNode, cfg.Binding)
	if err != nil {
		return nil, err
	}
	eng := sim.New(cfg.Seed)
	if cfg.Tracer != nil {
		cfg.Tracer.Emit(trace.Event{Kind: trace.KRunBegin, Proc: trace.EngineProc,
			Cat: "sim", Name: "run", Arg: cfg.Seed})
		eng.SetTracer(trace.Tee(eng.Tracer(), cfg.Tracer))
	}
	cl := fabric.NewCluster(eng, cfg.Machine, cond)
	w := &World{
		Cfg:     cfg,
		Eng:     eng,
		Cluster: cl,
		places:  places,
		eps:     make([]*fabric.Endpoint, cfg.Ranks),
		inbox:   make([][]*message, cfg.Ranks),
		rxQ:     make([]sim.WaitQueue, cfg.Ranks),
	}
	w.edges = trace.WantsEdge(eng.Tracer())
	w.nodes = (cfg.Ranks + cfg.RanksPerNode - 1) / cfg.RanksPerNode
	w.barCost = cl.BarrierCost(w.nodes)
	w.bar = &barrier{n: cfg.Ranks, ev: &sim.Event{}}
	for i := range w.eps {
		w.eps[i] = cl.MustEndpoint(places[i].Node)
	}
	w.comms = make([]*Comm, cfg.Ranks)
	for i := range w.comms {
		w.comms[i] = &Comm{w: w, Rank: i, Size: cfg.Ranks, Place: places[i], ep: w.eps[i]}
	}
	sched := cfg.Faults
	if sched == nil {
		sched = fault.Default()
	}
	inj, err := fault.Install(cl, sched)
	if err != nil {
		return nil, err
	}
	if inj != nil {
		w.inj = inj
		w.retry = cfg.Retry.OrDefault()
	}
	return w, nil
}

// Comm reports rank i's communicator (for co-scheduled setups).
func (w *World) Comm(i int) *Comm { return w.comms[i] }

// World reports the communicator's owning world.
func (c *Comm) World() *World { return c.w }

// transfer moves bytes from c toward dst through the transport the MPI
// library would choose: shared memory within a node, the conduit across.
func (c *Comm) transfer(dst int, bytes int64, apply func()) *fabric.NetOp {
	w := c.w
	dstPlace := w.places[dst]
	sameNode := topo.SameNode(c.Place, dstPlace)
	if w.Eng.Tracing() {
		// One comm-matrix instant per send: the sm transport classifies as
		// shared memory, everything else as conduit traffic (an MPI rank
		// never takes the network loopback — the library always picks sm
		// within a node).
		class := trace.ClassNetwork
		switch {
		case dst == c.Rank:
			class = trace.ClassSelf
		case sameNode:
			class = trace.ClassPSHM
		}
		c.P.TraceInstant(trace.CatComm, "send", class, bytes,
			trace.PackEndpoints(c.Rank, dst, c.Place.Node, dstPlace.Node))
	}
	if sameNode {
		op, err := w.Cluster.MemCopyAsync(c.P, c.Place, dstPlace, bytes, smOverhead, apply)
		if err != nil {
			panic(err) // unreachable: sameNode just checked
		}
		return op
	}
	return c.ep.PutAsync(c.P, w.eps[dst], bytes, c.fencePayload(dst, bytes, apply))
}

// post enqueues a matching record of the given byte volume at the
// destination and starts its transfer.
func (c *Comm) post(dst int, bytes int64, data []byte) (*fabric.NetOp, *message) {
	msg := &message{src: c.Rank, bytes: bytes, data: data, arrived: &sim.Event{}}
	c.w.inbox[dst] = append(c.w.inbox[dst], msg)
	c.w.rxQ[dst].WakeAll()
	return c.transfer(dst, bytes, msg.arrived.Fire), msg
}

// isend snapshots data, enqueues the matching record at the destination,
// and starts the transfer, returning its handle.
func (c *Comm) isend(dst int, data []byte) *fabric.NetOp {
	snap := make([]byte, len(data))
	copy(snap, data)
	op, _ := c.post(dst, int64(len(data)), snap)
	return op
}

// Send delivers data to rank dst (MPI_Send). Messages at or below the
// eager threshold complete when the payload leaves the source buffer;
// larger messages use the rendezvous protocol and return after the
// transfer drains. Under an installed fault schedule it recovers lost
// messages and panics with the typed error SendErr would return.
func (c *Comm) Send(dst int, data []byte) {
	if err := c.SendErr(dst, data); err != nil {
		panic(err)
	}
}

// SendModel delivers a payload-free message of the given byte volume to
// rank dst: the model-mode transfer for benchmark geometries too large to
// materialize. Blocking semantics match Send.
func (c *Comm) SendModel(dst int, bytes int64) {
	if err := c.SendModelErr(dst, bytes); err != nil {
		panic(err)
	}
}

// SendrecvModel is the payload-free form of Sendrecv.
func (c *Comm) SendrecvModel(dst int, bytes int64, src int) {
	op, _ := c.post(dst, bytes, nil)
	c.Recv(src)
	op.WaitLocal(c.P)
}

// Recv blocks until a message from src arrives and returns its payload
// (MPI_Recv with an explicit source). Messages from one source are
// delivered in send order. Under an installed fault schedule it recovers
// lost messages and panics with the typed error RecvErr would return.
func (c *Comm) Recv(src int) []byte {
	if c.w.faultsOn() {
		data, err := c.RecvErr(src)
		if err != nil {
			panic(err)
		}
		return data
	}
	m := c.match(src)
	m.arrived.Wait(c.P)
	return m.data
}

// match dequeues the oldest inbox record from src, blocking until one is
// posted.
func (c *Comm) match(src int) *message {
	w := c.w
	waited := false
	for {
		if m := c.matchNow(src); m != nil {
			if w.edges && waited {
				// Late-sender edge: the receiver was parked when the post
				// finally arrived; blame the sender.
				c.P.TraceInstant(trace.CatEdge, trace.EdgeMsgMatch, "", m.bytes,
					trace.PackEndpoints(m.src, c.Rank,
						w.places[m.src].Node, c.Place.Node))
			}
			return m
		}
		waited = true
		w.rxQ[c.Rank].Wait(c.P, "mpi-recv")
	}
}

// matchNow dequeues the oldest inbox record from src without blocking.
func (c *Comm) matchNow(src int) *message {
	w := c.w
	for i, m := range w.inbox[c.Rank] {
		if m.src != src {
			continue
		}
		w.inbox[c.Rank] = append(w.inbox[c.Rank][:i], w.inbox[c.Rank][i+1:]...)
		return m
	}
	return nil
}

// Sendrecv sends data to dst and receives a payload from src without
// deadlock (MPI_Sendrecv): the send is initiated before blocking on the
// receive.
func (c *Comm) Sendrecv(dst int, data []byte, src int) []byte {
	op := c.isend(dst, data)
	in := c.Recv(src)
	op.WaitLocal(c.P)
	return in
}

// Barrier synchronizes all ranks (MPI_Barrier). Under an installed fault
// schedule it panics with the typed error BarrierErr would return
// instead of hanging on a crashed rank.
func (c *Comm) Barrier() {
	if c.w.faultsOn() {
		if err := c.BarrierErr(); err != nil {
			panic(err)
		}
		return
	}
	ev := c.notifyBarrier()
	ev.Wait(c.P)
}

// notifyBarrier registers arrival at the world barrier and returns the
// generation's release event; the last arrival books the release.
func (c *Comm) notifyBarrier() *sim.Event {
	b := c.w.bar
	ev := b.ev
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.ev = &sim.Event{}
		c.w.Eng.After(c.w.barCost, ev.Fire)
	}
	return ev
}

// AllreduceSum sums one float64 per rank on every rank (MPI_Allreduce).
func (c *Comm) AllreduceSum(v float64) float64 {
	r := c.collective(v, func(vals []any) any {
		s := 0.0
		for _, x := range vals {
			s += x.(float64)
		}
		return s
	})
	return r.(float64)
}

// AllreduceMax takes the max of one float64 per rank on every rank.
func (c *Comm) AllreduceMax(v float64) float64 {
	r := c.collective(v, func(vals []any) any {
		m := vals[0].(float64)
		for _, x := range vals[1:] {
			if f := x.(float64); f > m {
				m = f
			}
		}
		return m
	})
	return r.(float64)
}

func (c *Comm) collective(val any, combine func([]any) any) any {
	r, err := c.collectiveErr(val, combine)
	if err != nil {
		panic(err)
	}
	return r
}

// collectiveErr joins the rank's next collective slot and waits for its
// release — through the failure-detecting deadline ladder when a fault
// schedule is installed.
func (c *Comm) collectiveErr(val any, combine func([]any) any) (any, error) {
	w := c.w
	for len(w.colls) <= c.collSeq {
		w.colls = append(w.colls, nil)
	}
	if w.colls[c.collSeq] == nil {
		w.colls[c.collSeq] = &collSlot{vals: make([]any, c.Size), ev: &sim.Event{}}
	}
	slot := w.colls[c.collSeq]
	c.collSeq++
	slot.vals[c.Rank] = val
	slot.arrived++
	if slot.arrived == c.Size {
		slot.result = combine(slot.vals)
		w.Eng.After(w.barCost, slot.ev.Fire)
	}
	if !w.faultsOn() {
		slot.ev.Wait(c.P)
		return slot.result, nil
	}
	if w.nodeDown(c.Place.Node) {
		return nil, c.commError("allreduce", c.Rank, 0, fault.ErrNodeDown)
	}
	if err := c.waitLadder(slot.ev, "allreduce", w.barCost); err != nil {
		return nil, err
	}
	return slot.result, nil
}

// Request is a handle to a non-blocking point-to-point operation.
type Request struct {
	op   *fabric.NetOp
	recv func() []byte // set for Irecv: resolves the payload at Wait
	data []byte
}

// Isend starts a non-blocking send (MPI_Isend). Wait returns when the
// send buffer is reusable.
func (c *Comm) Isend(dst int, data []byte) *Request {
	return &Request{op: c.isend(dst, data)}
}

// Irecv posts a non-blocking receive from src (MPI_Irecv). Wait blocks
// until a matching message has arrived and returns its payload.
func (c *Comm) Irecv(src int) *Request {
	return &Request{recv: func() []byte { return c.Recv(src) }}
}

// Wait completes the request (MPI_Wait) and, for receives, returns the
// payload.
func (c *Comm) Wait(r *Request) []byte {
	if r.recv != nil {
		r.data = r.recv()
		r.recv = nil
	}
	if r.data != nil {
		return r.data
	}
	if r.op != nil {
		r.op.WaitLocal(c.P)
	}
	return nil
}

// Waitall completes a batch of requests.
func (c *Comm) Waitall(rs []*Request) {
	for _, r := range rs {
		c.Wait(r)
	}
}

// Probe reports whether a message from src is matchable without blocking
// (MPI_Iprobe).
func (c *Comm) Probe(src int) bool {
	for _, m := range c.w.inbox[c.Rank] {
		if m.src == src {
			return true
		}
	}
	return false
}

package mpi

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/topo"
)

func cfg(ranks, perNode int) Config {
	return Config{
		Machine:      topo.Lehman(),
		Ranks:        ranks,
		RanksPerNode: perNode,
		Seed:         1,
	}
}

func TestSendRecvDelivery(t *testing.T) {
	_, err := Run(cfg(4, 2), func(c *Comm) {
		next := (c.Rank + 1) % c.Size
		prev := (c.Rank + c.Size - 1) % c.Size
		payload := []byte(fmt.Sprintf("from-%d", c.Rank))
		if c.Rank%2 == 0 {
			c.Send(next, payload)
			got := c.Recv(prev)
			if want := fmt.Sprintf("from-%d", prev); string(got) != want {
				t.Errorf("rank %d got %q, want %q", c.Rank, got, want)
			}
		} else {
			got := c.Recv(prev)
			if want := fmt.Sprintf("from-%d", prev); string(got) != want {
				t.Errorf("rank %d got %q, want %q", c.Rank, got, want)
			}
			c.Send(next, payload)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendOrderPreservedPerSource(t *testing.T) {
	_, err := Run(cfg(2, 2), func(c *Comm) {
		if c.Rank == 0 {
			for i := 0; i < 10; i++ {
				c.Send(1, []byte{byte(i)})
			}
		} else {
			for i := 0; i < 10; i++ {
				got := c.Recv(0)
				if got[0] != byte(i) {
					t.Errorf("message %d arrived as %d (order violated)", i, got[0])
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendSnapshotsBuffer(t *testing.T) {
	_, err := Run(cfg(2, 1), func(c *Comm) {
		if c.Rank == 0 {
			buf := []byte{1, 2, 3}
			c.Send(1, buf)
			buf[0] = 99 // must not affect the in-flight payload
		} else {
			got := c.Recv(0)
			if got[0] != 1 {
				t.Errorf("payload corrupted by post-send mutation: %v", got)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEagerVsRendezvousSendCost(t *testing.T) {
	// A small (eager) send must return much sooner than a 1 MB
	// (rendezvous) send to an unready receiver.
	var eager, rendezvous sim.Duration
	_, err := Run(cfg(2, 1), func(c *Comm) {
		if c.Rank == 0 {
			start := c.P.Now()
			c.Send(1, make([]byte, 64))
			eager = c.P.Now() - start
			start = c.P.Now()
			c.Send(1, make([]byte, 1<<20))
			rendezvous = c.P.Now() - start
		} else {
			c.P.Advance(50 * sim.Millisecond) // receiver shows up late
			c.Recv(0)
			c.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if eager >= rendezvous/10 {
		t.Errorf("eager send %v should be far cheaper than rendezvous %v", eager, rendezvous)
	}
}

func TestSendrecvNoDeadlockLargeMessages(t *testing.T) {
	_, err := Run(cfg(2, 1), func(c *Comm) {
		partner := 1 - c.Rank
		out := bytes.Repeat([]byte{byte(c.Rank + 1)}, 1<<20)
		in := c.Sendrecv(partner, out, partner)
		if len(in) != 1<<20 || in[0] != byte(partner+1) {
			t.Errorf("rank %d: bad sendrecv payload", c.Rank)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAndReductions(t *testing.T) {
	_, err := Run(cfg(6, 3), func(c *Comm) {
		c.P.Advance(sim.Duration(c.Rank) * sim.Millisecond)
		c.Barrier()
		if got := c.AllreduceSum(float64(c.Rank)); got != 15 {
			t.Errorf("AllreduceSum = %g, want 15", got)
		}
		if got := c.AllreduceMax(float64(c.Rank * 2)); got != 10 {
			t.Errorf("AllreduceMax = %g, want 10", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func alltoallCorrect(t *testing.T, ranks, perNode, msg int, force string) {
	t.Helper()
	_, err := Run(cfg(ranks, perNode), func(c *Comm) {
		send := make([][]byte, c.Size)
		for d := range send {
			send[d] = bytes.Repeat([]byte{byte(c.Rank*16 + d)}, msg)
		}
		var got [][]byte
		switch force {
		case "pairwise":
			got = c.AlltoallPairwise(send)
		default:
			got = c.Alltoall(send)
		}
		for s := range got {
			want := byte(s*16 + c.Rank)
			if len(got[s]) != msg {
				t.Errorf("rank %d: slice from %d has %d bytes, want %d", c.Rank, s, len(got[s]), msg)
				continue
			}
			for _, b := range got[s] {
				if b != want {
					t.Errorf("rank %d: slice from %d corrupted (%d != %d)", c.Rank, s, b, want)
					break
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallPairwiseCorrect(t *testing.T) {
	alltoallCorrect(t, 4, 1, 128, "pairwise")
	alltoallCorrect(t, 6, 3, 64, "pairwise")
}

func TestAlltoallHierarchicalCorrect(t *testing.T) {
	alltoallCorrect(t, 8, 4, 256, "auto") // multi-rank nodes: hierarchical path
	alltoallCorrect(t, 6, 2, 96, "auto")
	alltoallCorrect(t, 12, 4, 32, "auto")
}

func TestAlltoallPropertyPermutation(t *testing.T) {
	// Property: Alltoall is a transpose — rank r's slice d equals what
	// rank d receives at index r, for random sizes and shapes.
	f := func(perNodeRaw, nodesRaw, msgRaw uint8) bool {
		perNode := int(perNodeRaw)%4 + 1
		nodes := int(nodesRaw)%3 + 1
		msg := int(msgRaw)%64 + 1
		ranks := perNode * nodes
		if ranks < 2 {
			return true
		}
		ok := true
		_, err := Run(cfg(ranks, perNode), func(c *Comm) {
			send := make([][]byte, c.Size)
			for d := range send {
				send[d] = bytes.Repeat([]byte{byte(c.Rank*13 + d)}, msg)
			}
			got := c.Alltoall(send)
			for s := range got {
				for _, b := range got[s] {
					if b != byte(s*13+c.Rank) {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHierarchicalBeatsPairwiseForSmallSlices(t *testing.T) {
	// 16 ranks over 4 nodes exchanging small slices: the node-aggregated
	// algorithm sends 16x fewer wire messages and must win in the
	// overhead-dominated regime. For large slices the exchange is
	// bandwidth-bound and pairwise must win — Alltoall switches itself.
	run := func(force string, slice int) sim.Duration {
		st, err := Run(cfg(16, 4), func(c *Comm) {
			send := make([][]byte, c.Size)
			for d := range send {
				send[d] = make([]byte, slice)
			}
			if force == "pairwise" {
				c.AlltoallPairwise(send)
			} else {
				c.Alltoall(send)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.Elapsed
	}
	pairSmall, hierSmall := run("pairwise", 512), run("auto", 512)
	if hierSmall >= pairSmall {
		t.Errorf("hierarchical alltoall (%v) should beat pairwise (%v) at 512B slices",
			hierSmall, pairSmall)
	}
	// Above the threshold the auto algorithm is pairwise, so auto never
	// loses badly at large sizes.
	pairBig, autoBig := run("pairwise", 64<<10), run("auto", 64<<10)
	if autoBig != pairBig {
		t.Errorf("auto (%v) must select pairwise (%v) for 64KB slices", autoBig, pairBig)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}, func(*Comm) {}); err == nil {
		t.Error("nil machine must error")
	}
	if _, err := Run(Config{Machine: topo.Lehman()}, func(*Comm) {}); err == nil {
		t.Error("zero ranks must error")
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	_, err := Run(cfg(4, 2), func(c *Comm) {
		var reqs []*Request
		for d := 0; d < c.Size; d++ {
			if d != c.Rank {
				reqs = append(reqs, c.Isend(d, []byte{byte(c.Rank)}))
			}
		}
		var recvs []*Request
		for s := 0; s < c.Size; s++ {
			if s != c.Rank {
				recvs = append(recvs, c.Irecv(s))
			}
		}
		c.Waitall(reqs)
		for i, r := range recvs {
			src := i
			if src >= c.Rank {
				src++
			}
			if got := c.Wait(r); len(got) != 1 || got[0] != byte(src) {
				t.Errorf("rank %d: Irecv from %d got %v", c.Rank, src, got)
			}
			// Waiting twice returns the same payload.
			if again := c.Wait(r); again[0] != byte(src) {
				t.Error("second Wait must return the cached payload")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	_, err := Run(cfg(2, 2), func(c *Comm) {
		if c.Rank == 0 {
			c.P.Advance(sim.Millisecond)
			c.Send(1, []byte("x"))
		} else {
			if c.Probe(0) {
				t.Error("Probe before send must be false")
			}
			c.P.Advance(2 * sim.Millisecond)
			if !c.Probe(0) {
				t.Error("Probe after send must be true")
			}
			c.Recv(0)
			if c.Probe(0) {
				t.Error("Probe after drain must be false")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEagerThresholdBoundary(t *testing.T) {
	// At exactly the threshold the send is still eager; one byte more and
	// it is rendezvous (observable as a much longer blocking send to an
	// unready receiver).
	var atT, aboveT sim.Duration
	_, err := Run(cfg(2, 1), func(c *Comm) {
		if c.Rank == 0 {
			start := c.P.Now()
			c.Send(1, make([]byte, EagerThreshold))
			atT = c.P.Now() - start
			start = c.P.Now()
			c.Send(1, make([]byte, EagerThreshold+1))
			aboveT = c.P.Now() - start
		} else {
			c.P.Advance(100 * sim.Millisecond)
			c.Recv(0)
			c.Recv(0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if atT >= aboveT {
		t.Errorf("eager (%v) must return before rendezvous (%v)", atT, aboveT)
	}
}

// Package perf provides virtual-time instrumentation for the benchmark
// applications: phase timers, named counters, and simple statistics over
// repeated trials.
package perf

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Timer accumulates virtual time across start/stop intervals.
type Timer struct {
	total   sim.Duration
	started sim.Time
	running bool
}

// Start begins an interval at now. Starting a running timer panics: it
// indicates a measurement bug.
func (t *Timer) Start(now sim.Time) {
	if t.running {
		panic("perf: Timer started twice")
	}
	t.running = true
	t.started = now
}

// Stop ends the current interval at now.
func (t *Timer) Stop(now sim.Time) {
	if !t.running {
		panic("perf: Timer stopped while not running")
	}
	t.running = false
	t.total += now - t.started
}

// Total reports the accumulated time.
func (t *Timer) Total() sim.Duration { return t.total }

// Phases tracks a set of named timers (one per benchmark phase).
type Phases struct {
	order  []string
	timers map[string]*Timer
}

// NewPhases returns an empty phase tracker.
func NewPhases() *Phases { return &Phases{timers: map[string]*Timer{}} }

// Timer returns (creating if needed) the named phase timer.
func (p *Phases) Timer(name string) *Timer {
	t, ok := p.timers[name]
	if !ok {
		t = &Timer{}
		p.timers[name] = t
		p.order = append(p.order, name)
	}
	return t
}

// Total reports the named phase's accumulated time (zero if absent).
func (p *Phases) Total(name string) sim.Duration {
	if t, ok := p.timers[name]; ok {
		return t.Total()
	}
	return 0
}

// Names lists the phases in first-use order.
func (p *Phases) Names() []string { return append([]string(nil), p.order...) }

// Counters is a set of named event counters.
type Counters map[string]int64

// Add increments a counter.
func (c Counters) Add(name string, n int64) { c[name] += n }

// Get reports a counter (zero if absent).
func (c Counters) Get(name string) int64 { return c[name] }

// Merge adds every counter of other into c.
func (c Counters) Merge(other Counters) {
	for k, v := range other {
		c[k] += v
	}
}

// String renders the counters sorted by name.
func (c Counters) String() string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", k, c[k])
	}
	return s
}

// CountersFromTrace rebuilds a Counters set from a trace Collector: the
// totals of every KCounter stream it aggregated. An app that mirrors its
// counters into the trace (e.g. UTS via TraceCounter) yields a set equal
// to its ad-hoc Counters — letting experiment tables be fed from the
// trace alone.
func CountersFromTrace(c *trace.Collector) Counters {
	out := Counters{}
	for k, v := range c.CounterTotals() {
		out[k] = v
	}
	return out
}

// PhasesFromTrace reports, for every span key under the given category,
// the largest per-process duration total — the cross-thread maximum a
// phase breakdown reports. Keys are span names with the category prefix
// stripped.
func PhasesFromTrace(c *trace.Collector, cat string) map[string]sim.Duration {
	out := map[string]sim.Duration{}
	prefix := cat + "/"
	for _, k := range c.SpanKeys() {
		if strings.HasPrefix(k, prefix) {
			s := c.Span(cat, k[len(prefix):])
			out[k[len(prefix):]] = sim.Duration(s.MaxByProc())
		}
	}
	return out
}

// Median reports the median of a sample set (NaN-free inputs assumed; the
// paper reports medians for the microbenchmarks).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Mean reports the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile reports the q-quantile (0 <= q <= 1) of a sample set by
// linear interpolation between order statistics (the convention most
// numeric packages default to); Quantile(xs, 0.5) equals Median(xs).
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if frac == 0 || lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Percentiles reports the 10th percentile, median and 90th percentile
// of a sample set — the spread the benchmark tables quote alongside the
// median-of-trials, so a skewed trial distribution is visible instead
// of hiding behind one number.
func Percentiles(xs []float64) (p10, med, p90 float64) {
	return Quantile(xs, 0.10), Quantile(xs, 0.50), Quantile(xs, 0.90)
}

// Int64s converts integer samples (per-thread counts from a trace
// collector, ns/op trials) to the float64 samples the statistics take.
func Int64s(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

package perf

import (
	"testing"

	"repro/internal/sim"
)

func TestTimerAccumulates(t *testing.T) {
	var tm Timer
	tm.Start(10)
	tm.Stop(30)
	tm.Start(100)
	tm.Stop(150)
	if tm.Total() != 70 {
		t.Errorf("Total = %v, want 70", tm.Total())
	}
}

func TestTimerMisuse(t *testing.T) {
	var tm Timer
	tm.Start(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Start must panic")
			}
		}()
		tm.Start(1)
	}()
	tm.Stop(5)
	defer func() {
		if recover() == nil {
			t.Error("Stop while stopped must panic")
		}
	}()
	tm.Stop(6)
}

func TestPhases(t *testing.T) {
	p := NewPhases()
	p.Timer("fft").Start(0)
	p.Timer("fft").Stop(sim.Time(5))
	p.Timer("comm").Start(5)
	p.Timer("comm").Stop(sim.Time(9))
	if p.Total("fft") != 5 || p.Total("comm") != 4 || p.Total("absent") != 0 {
		t.Errorf("phase totals wrong: fft=%v comm=%v", p.Total("fft"), p.Total("comm"))
	}
	names := p.Names()
	if len(names) != 2 || names[0] != "fft" || names[1] != "comm" {
		t.Errorf("Names = %v, want first-use order", names)
	}
}

func TestCounters(t *testing.T) {
	c := Counters{}
	c.Add("steals", 3)
	c.Add("steals", 2)
	c.Add("local", 1)
	if c.Get("steals") != 5 || c.Get("missing") != 0 {
		t.Errorf("counters wrong: %v", c)
	}
	d := Counters{"steals": 10}
	d.Merge(c)
	if d.Get("steals") != 15 || d.Get("local") != 1 {
		t.Errorf("merge wrong: %v", d)
	}
	if s := c.String(); s != "local=1 steals=5" {
		t.Errorf("String = %q", s)
	}
}

func TestMedianAndMean(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %g", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %g", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("empty median = %g", m)
	}
	if m := Mean([]float64{1, 2, 3, 6}); m != 3 {
		t.Errorf("mean = %g", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("empty mean = %g", m)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5} // sorted: 1 2 3 4 5
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{0.10, 1.4}, {0.90, 4.6},
		{-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty Quantile must be 0")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Error("single-sample Quantile must be the sample")
	}
	// Quantile must not reorder its input.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
	// Agreement with Median on both parities.
	for _, s := range [][]float64{{3, 1, 2}, {4, 1, 2, 3}} {
		if Quantile(s, 0.5) != Median(s) {
			t.Errorf("Quantile(0.5) %g != Median %g on %v", Quantile(s, 0.5), Median(s), s)
		}
	}
}

func TestPercentiles(t *testing.T) {
	p10, med, p90 := Percentiles([]float64{1, 2, 3, 4, 5})
	if p10 != 1.4 || med != 3 || p90 != 4.6 {
		t.Errorf("Percentiles = %g/%g/%g, want 1.4/3/4.6", p10, med, p90)
	}
}

func TestInt64s(t *testing.T) {
	got := Int64s([]int64{3, 0, -2})
	if len(got) != 3 || got[0] != 3 || got[1] != 0 || got[2] != -2 {
		t.Errorf("Int64s = %v", got)
	}
}

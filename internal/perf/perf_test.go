package perf

import (
	"testing"

	"repro/internal/sim"
)

func TestTimerAccumulates(t *testing.T) {
	var tm Timer
	tm.Start(10)
	tm.Stop(30)
	tm.Start(100)
	tm.Stop(150)
	if tm.Total() != 70 {
		t.Errorf("Total = %v, want 70", tm.Total())
	}
}

func TestTimerMisuse(t *testing.T) {
	var tm Timer
	tm.Start(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double Start must panic")
			}
		}()
		tm.Start(1)
	}()
	tm.Stop(5)
	defer func() {
		if recover() == nil {
			t.Error("Stop while stopped must panic")
		}
	}()
	tm.Stop(6)
}

func TestPhases(t *testing.T) {
	p := NewPhases()
	p.Timer("fft").Start(0)
	p.Timer("fft").Stop(sim.Time(5))
	p.Timer("comm").Start(5)
	p.Timer("comm").Stop(sim.Time(9))
	if p.Total("fft") != 5 || p.Total("comm") != 4 || p.Total("absent") != 0 {
		t.Errorf("phase totals wrong: fft=%v comm=%v", p.Total("fft"), p.Total("comm"))
	}
	names := p.Names()
	if len(names) != 2 || names[0] != "fft" || names[1] != "comm" {
		t.Errorf("Names = %v, want first-use order", names)
	}
}

func TestCounters(t *testing.T) {
	c := Counters{}
	c.Add("steals", 3)
	c.Add("steals", 2)
	c.Add("local", 1)
	if c.Get("steals") != 5 || c.Get("missing") != 0 {
		t.Errorf("counters wrong: %v", c)
	}
	d := Counters{"steals": 10}
	d.Merge(c)
	if d.Get("steals") != 15 || d.Get("local") != 1 {
		t.Errorf("merge wrong: %v", d)
	}
	if s := c.String(); s != "local=1 steals=5" {
		t.Errorf("String = %q", s)
	}
}

func TestMedianAndMean(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %g", m)
	}
	if m := Median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Errorf("even median = %g", m)
	}
	if m := Median(nil); m != 0 {
		t.Errorf("empty median = %g", m)
	}
	if m := Mean([]float64{1, 2, 3, 6}); m != 3 {
		t.Errorf("mean = %g", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("empty mean = %g", m)
	}
}

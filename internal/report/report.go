// Package report renders the regenerated tables and figure series as
// aligned text, in the same rows/columns the paper's tables and plot
// legends use.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table writes an aligned text table with a header row and a rule.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = pad(cell, widths[i])
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(headers)
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, r := range rows {
		line(r)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one line of a figure: a label and (x, y) points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure writes a figure's series as a column-per-series table keyed by x,
// matching how the paper's plots read as data.
func Figure(w io.Writer, title, xName string, series []Series) {
	if len(series) == 0 {
		return
	}
	headers := []string{xName}
	for _, s := range series {
		headers = append(headers, s.Label)
	}
	// Collect x values from the first series (all series share the grid).
	rows := make([][]string, len(series[0].X))
	for i := range rows {
		row := []string{trimFloat(series[0].X[i])}
		for _, s := range series {
			if i < len(s.Y) {
				row = append(row, trimFloat(s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows[i] = row
	}
	Table(w, title, headers, rows)
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// Bytes formats a byte count with a binary unit suffix. Fractions show
// at most four significant digits, so terabyte-scale sweep totals stay
// readable rather than falling into %g's scientific notation.
func Bytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%sTB", trimFloat(float64(n)/(1<<40)))
	case n >= 1<<30:
		return fmt.Sprintf("%sGB", trimFloat(float64(n)/(1<<30)))
	case n >= 1<<20:
		return fmt.Sprintf("%sMB", trimFloat(float64(n)/(1<<20)))
	case n >= 1<<10:
		return fmt.Sprintf("%sKB", trimFloat(float64(n)/(1<<10)))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// GBps formats a bytes/second rate in decimal GB/s.
func GBps(bytesPerSec float64) string {
	return fmt.Sprintf("%.1f", bytesPerSec/1e9)
}

package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, "Title", []string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"beta-long", "22"},
	})
	out := b.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("want 5 lines, got %d: %q", len(lines), out)
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[4], "beta-long") {
		t.Errorf("rows missing: %q", out)
	}
	// All data lines align on the second column.
	col := strings.Index(lines[3], "1")
	if strings.Index(lines[4], "22") != col {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestFigure(t *testing.T) {
	var b strings.Builder
	Figure(&b, "Fig", "x", []Series{
		{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Label: "b", X: []float64{1, 2}, Y: []float64{0.5}},
	})
	out := b.String()
	for _, want := range []string{"Fig", "x", "a", "b", "10", "20", "0.5", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	// Empty series set: no output, no panic.
	var e strings.Builder
	Figure(&e, "none", "x", nil)
	if e.Len() != 0 {
		t.Errorf("empty figure should write nothing")
	}
}

func TestFormatters(t *testing.T) {
	if got := Bytes(512); got != "512B" {
		t.Errorf("Bytes(512) = %q", got)
	}
	if got := Bytes(2048); got != "2KB" {
		t.Errorf("Bytes(2048) = %q", got)
	}
	if got := Bytes(3 << 20); got != "3MB" {
		t.Errorf("Bytes(3MB) = %q", got)
	}
	if got := Bytes(5 << 30); got != "5GB" {
		t.Errorf("Bytes(5GB) = %q", got)
	}
	if got := Bytes(1<<40 + 1<<39); got != "1.5TB" {
		t.Errorf("Bytes(1.5TB) = %q", got)
	}
	if got := Bytes(1310650023936); got != "1.192TB" {
		t.Errorf("Bytes(~1.19TB) = %q", got)
	}
	if got := GBps(23.2e9); got != "23.2" {
		t.Errorf("GBps = %q", got)
	}
	if got := trimFloat(4); got != "4" {
		t.Errorf("trimFloat(4) = %q", got)
	}
	if got := trimFloat(3.14159); got != "3.142" {
		t.Errorf("trimFloat(pi) = %q", got)
	}
}

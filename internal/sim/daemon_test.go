package sim

import (
	"testing"
)

func TestDaemonDoesNotBlockTermination(t *testing.T) {
	e := New(1)
	var mb Mailbox
	worked := 0
	e.Go("worker", func(p *Proc) {
		p.SetDaemon(true)
		for {
			mb.Recv(p)
			worked++
		}
	})
	e.Go("main", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Advance(10)
			mb.Send(i)
		}
		p.Advance(10)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("run with parked daemon must terminate cleanly: %v", err)
	}
	if worked != 3 {
		t.Errorf("daemon processed %d tasks, want 3", worked)
	}
}

func TestNonDaemonStillDeadlocks(t *testing.T) {
	e := New(1)
	var q WaitQueue
	e.Go("daemon", func(p *Proc) {
		p.SetDaemon(true)
		q.Wait(p, "idle")
	})
	e.Go("stuck", func(p *Proc) {
		q.Wait(p, "stuck-forever")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("a parked non-daemon must still be a deadlock")
	}
}

func TestDaemonToggleBalanced(t *testing.T) {
	e := New(1)
	e.Go("p", func(p *Proc) {
		p.SetDaemon(true)
		p.SetDaemon(true) // idempotent
		p.SetDaemon(false)
		p.Advance(5)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.nDaemon != 0 {
		t.Errorf("daemon count = %d after toggles, want 0", e.nDaemon)
	}
}

func TestDaemonFinishingDecrementsCount(t *testing.T) {
	e := New(1)
	e.Go("d", func(p *Proc) {
		p.SetDaemon(true)
		p.Advance(1) // finishes normally
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.nDaemon != 0 || e.nLive != 0 {
		t.Errorf("counters after daemon exit: live=%d daemon=%d", e.nLive, e.nDaemon)
	}
}

package sim

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"

	"repro/internal/trace"
)

// Engine is a sequential discrete-event simulator. Create one with New,
// register root processes with Go, then call Run. The engine is not safe
// for concurrent use from outside simulated processes; by construction only
// one simulated process executes at any instant, so model state needs no
// locking.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	parked chan struct{} // a proc signals here when it parks or finishes

	procs   []*Proc
	nLive   int
	nDaemon int
	cur     *Proc
	inRun   bool
	nextID  int

	rng    *rand.Rand
	tracer trace.Tracer

	panicVal   any
	panicProc  string
	panicStack []byte
}

// New returns an engine whose internal randomness (used by model code via
// Rand) is seeded with seed, making whole simulations reproducible.
func New(seed int64) *Engine {
	e := &Engine{
		parked: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
		tracer: trace.Default(),
	}
	if e.tracer != nil {
		e.emit(trace.KRunBegin, trace.EngineProc, "sim", "run", "", seed, 0)
	}
	return e
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. Only simulated
// processes and event callbacks may use it.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Cur reports the currently executing process, or nil when the engine
// itself (an event callback) is running.
func (e *Engine) Cur() *Proc { return e.cur }

// Go registers a root process that starts at time zero (when called before
// Run) or at the current time (when called from inside a running
// simulation).
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		id:     e.nextID,
		name:   name,
		resume: make(chan struct{}),
		fn:     fn,
	}
	e.nextID++
	e.procs = append(e.procs, p)
	e.nLive++
	if e.tracer != nil {
		e.emit(trace.KProcSpawn, int32(p.id), "sim", name, "", 0, 0)
	}
	e.schedule(e.now, p, nil)
	return p
}

// After runs fn in engine context after d elapses. fn must not park; it is
// for model-internal bookkeeping such as processor-sharing recomputation.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, nil, fn)
}

func (e *Engine) schedule(at Time, p *Proc, fn func()) {
	e.seq++
	e.events.push(&event{at: at, seq: e.seq, proc: p, fn: fn})
}

// unpark schedules a wake for a parked process at the current time. It is
// exported indirectly through WaitQueue; raw use is reserved for sim's own
// synchronization primitives.
func (e *Engine) unpark(p *Proc) {
	e.schedule(e.now, p, nil)
}

// Run executes the simulation until no events remain. It returns a
// deadlock error if live processes remain parked with an empty event heap.
// A panic inside a simulated process is re-raised with its origin noted.
func (e *Engine) Run() error {
	if e.inRun {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	e.inRun = true
	defer func() { e.inRun = false }()

	for len(e.events) > 0 {
		ev := e.events.pop()
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time ran backwards: %v -> %v", e.now, ev.at))
		}
		if ev.at != e.now {
			e.now = ev.at
			if e.tracer != nil {
				e.emit(trace.KClock, trace.EngineProc, "sim", "clock", "", int64(e.now), 0)
			}
		}
		if ev.fn != nil {
			ev.fn()
			continue
		}
		p := ev.proc
		if p.finished {
			continue
		}
		e.cur = p
		if !p.started {
			p.started = true
			go p.top()
		} else {
			if e.tracer != nil {
				e.emit(trace.KProcUnpark, int32(p.id), "sim", p.name, p.blocked, 0, 0)
			}
			p.resume <- struct{}{}
		}
		<-e.parked
		e.cur = nil
		if e.panicVal != nil {
			panic(fmt.Sprintf("sim: process %q panicked: %v\n%s",
				e.panicProc, e.panicVal, e.panicStack))
		}
	}
	if e.nLive > e.nDaemon {
		var stuck []string
		for _, p := range e.procs {
			if p.daemon {
				continue
			}
			if !p.finished && p.started {
				stuck = append(stuck, fmt.Sprintf("%s (%s)", p.name, p.blocked))
			} else if !p.finished {
				stuck = append(stuck, p.name+" (never ran)")
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("sim: deadlock at %v: %d live processes: %v", e.now, e.nLive, stuck)
	}
	return nil
}

// Proc is a simulated execution context. All methods must be called from
// the process's own goroutine while it is the running process.
type Proc struct {
	eng    *Engine
	id     int
	name   string
	resume chan struct{}
	fn     func(*Proc)

	started  bool
	finished bool
	daemon   bool
	blocked  string // park reason; empty while runnable
}

// ID reports the process's creation index, unique within its engine.
func (p *Proc) ID() int { return p.id }

// SetDaemon marks the process as a daemon: a simulation may finish while
// daemons are still parked (persistent pool workers waiting for tasks).
// Call it from the process itself or before it first runs.
func (p *Proc) SetDaemon(on bool) {
	if p.daemon == on {
		return
	}
	p.daemon = on
	if on {
		p.eng.nDaemon++
	} else {
		p.eng.nDaemon--
	}
}

// Name reports the label given at creation.
func (p *Proc) Name() string { return p.name }

// Engine reports the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// top is the goroutine body wrapping the user function.
func (p *Proc) top() {
	defer func() {
		if r := recover(); r != nil && p.eng.panicVal == nil {
			p.eng.panicVal = r
			p.eng.panicProc = p.name
			p.eng.panicStack = debug.Stack()
		}
		p.finished = true
		if e := p.eng; e.tracer != nil {
			e.emit(trace.KProcExit, int32(p.id), "sim", p.name, "", 0, 0)
		}
		p.eng.nLive--
		if p.daemon {
			p.eng.nDaemon--
		}
		p.eng.parked <- struct{}{}
	}()
	p.fn(p)
}

// park suspends the process until the engine resumes it. The caller must
// already have arranged a wake (a scheduled event or a WaitQueue entry).
func (p *Proc) park(reason string) {
	p.blocked = reason
	if e := p.eng; e.tracer != nil {
		e.emit(trace.KProcPark, int32(p.id), "sim", p.name, reason, 0, 0)
	}
	p.eng.parked <- struct{}{}
	<-p.resume
	p.blocked = ""
}

// Advance charges d of virtual time to the process: it suspends and wakes
// at now+d. Negative durations are treated as zero.
func (p *Proc) Advance(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, p, nil)
	p.park("advance")
}

// Yield reschedules the process at the current time, letting any other
// process with a pending event at now run first (FIFO order).
func (p *Proc) Yield() {
	p.eng.schedule(p.eng.now, p, nil)
	p.park("yield")
}

// Go spawns a child process starting at the current virtual time.
func (p *Proc) Go(name string, fn func(*Proc)) *Proc {
	return p.eng.Go(name, fn)
}

// WaitQueue is a FIFO list of parked processes; the building block for
// condition variables, mailboxes and resource queues.
type WaitQueue struct {
	waiters []*Proc
}

// Len reports how many processes are parked on the queue.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait parks p on the queue until a WakeOne/WakeAll reaches it.
func (q *WaitQueue) Wait(p *Proc, reason string) {
	q.waiters = append(q.waiters, p)
	p.park(reason)
}

// WakeOne unparks the longest-waiting process, reporting whether one
// existed. Must be called from simulation context.
func (q *WaitQueue) WakeOne() bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters[len(q.waiters)-1] = nil
	q.waiters = q.waiters[:len(q.waiters)-1]
	p.eng.unpark(p)
	return true
}

// WakeAll unparks every waiter, reporting how many were woken.
func (q *WaitQueue) WakeAll() int {
	n := len(q.waiters)
	for _, p := range q.waiters {
		p.eng.unpark(p)
	}
	q.waiters = q.waiters[:0]
	return n
}

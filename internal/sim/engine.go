package sim

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sort"

	"repro/internal/trace"
)

// Engine is a sequential discrete-event simulator. Create one with New,
// register root processes with Go, then call Run. The engine is not safe
// for concurrent use from outside simulated processes; by construction only
// one simulated process executes at any instant, so model state needs no
// locking.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	parked chan struct{} // a proc signals here when it parks or finishes

	procs   []*Proc
	nLive   int
	nDaemon int
	cur     *Proc
	inRun   bool
	nextID  int

	// limit bounds the dispatch loop: events at or beyond it stay on the
	// heap and control returns to the driver. Run uses the open bound
	// maxTime; windowed lane execution under a ShardGroup narrows it to
	// the current LBTS each round.
	limit Time

	// lane and group identify a shard-lane engine (see shard.go); a
	// standalone engine has lane -1 and a nil group.
	lane  int
	group *ShardGroup

	rng    *rand.Rand
	tracer trace.Tracer
	clock  bool // emit KClock advances (tracer opted in via trace.Clocked)

	panicVal   any
	panicProc  string
	panicStack []byte
}

// New returns an engine whose internal randomness (used by model code via
// Rand) is seeded with seed, making whole simulations reproducible.
func New(seed int64) *Engine {
	e := &Engine{
		// Capacity 1 makes every handoff signal non-blocking: the engine
		// and the running proc strictly alternate, so at most one token is
		// ever in flight and a sender never sleeps at the send.
		parked: make(chan struct{}, 1),
		rng:    rand.New(rand.NewSource(seed)),
		tracer: trace.Default(),
		limit:  maxTime,
		lane:   -1,
	}
	e.clock = trace.WantsClock(e.tracer)
	if e.tracer != nil {
		e.emit(trace.KRunBegin, trace.EngineProc, "sim", "run", "", seed, 0)
	}
	return e
}

// newLane returns a lane engine owned by a ShardGroup. It differs from
// New in three ways: the tracer is supplied by the group (a per-lane
// buffer merged at window barriers) instead of trace.Default, no
// KRunBegin is emitted (the group emits a single one for the whole
// sharded run), and proc ids start at lane*LaneStride so ids stay
// unique — and stable across worker counts — in the merged stream.
func newLane(group *ShardGroup, lane int, seed int64, tr trace.Tracer) *Engine {
	e := &Engine{
		parked: make(chan struct{}, 1),
		rng:    rand.New(rand.NewSource(seed)),
		tracer: tr,
		limit:  maxTime,
		lane:   lane,
		group:  group,
		nextID: lane * LaneStride,
	}
	e.clock = trace.WantsClock(e.tracer)
	return e
}

// Lane reports the engine's lane index within its ShardGroup, or -1 for
// a standalone engine.
func (e *Engine) Lane() int { return e.lane }

// Group reports the owning ShardGroup, or nil for a standalone engine.
func (e *Engine) Group() *ShardGroup { return e.group }

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand exposes the engine's deterministic random source. Only simulated
// processes and event callbacks may use it.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Cur reports the currently executing process, or nil when the engine
// itself (an event callback) is running.
func (e *Engine) Cur() *Proc { return e.cur }

// Go registers a root process that starts at time zero (when called before
// Run) or at the current time (when called from inside a running
// simulation).
func (e *Engine) Go(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		eng:    e,
		id:     e.nextID,
		name:   name,
		resume: make(chan struct{}, 1),
		fn:     fn,
	}
	e.nextID++
	e.procs = append(e.procs, p)
	e.nLive++
	if e.tracer != nil {
		e.emit(trace.KProcSpawn, int32(p.id), "sim", name, "", 0, 0)
	}
	e.schedule(e.now, p, nil)
	return p
}

// After runs fn in engine context after d elapses. fn must not park; it is
// for model-internal bookkeeping such as processor-sharing recomputation.
func (e *Engine) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.schedule(e.now+d, nil, fn)
}

// Action is a pre-allocated event callback: hot paths implement Run on a
// pooled operation struct and book it with AfterAction, so completion
// work is scheduled without building a closure per event. Run executes in
// engine context under the same rules as an After callback (must not
// park). An Action may release itself back to its free list inside Run —
// the engine holds no reference after the call.
type Action interface{ Run() }

// AfterAction runs a.Run in engine context after d elapses; the
// allocation-free equivalent of After.
func (e *Engine) AfterAction(d Duration, a Action) {
	if d < 0 {
		d = 0
	}
	e.scheduleAction(e.now+d, a)
}

func (e *Engine) schedule(at Time, p *Proc, fn func()) {
	e.seq++
	e.events.push(event{at: at, seq: e.seq, proc: p, fn: fn})
}

func (e *Engine) scheduleAction(at Time, a Action) {
	e.seq++
	e.events.push(event{at: at, seq: e.seq, act: a})
}

// unpark schedules a wake for a parked process at the current time. It is
// exported indirectly through WaitQueue; raw use is reserved for sim's own
// synchronization primitives.
func (e *Engine) unpark(p *Proc) {
	e.schedule(e.now, p, nil)
}

// Run executes the simulation until no events remain. It returns a
// deadlock error if live processes remain parked with an empty event heap.
// A panic inside a simulated process is re-raised with its origin noted.
//
// Control transfers directly between simulated processes: the goroutine
// that parks or finishes runs the dispatch loop itself (advancing the
// clock, executing engine callbacks inline, waking the next process), so
// a yield costs one goroutine switch instead of a round trip through an
// engine goroutine. Run's own goroutine only blocks until the heap
// drains or a panic aborts the simulation.
func (e *Engine) Run() error {
	if e.inRun {
		return fmt.Errorf("sim: Run called reentrantly")
	}
	if e.group != nil {
		return fmt.Errorf("sim: Run called on lane %d of a ShardGroup (use ShardGroup.Run)", e.lane)
	}
	e.inRun = true
	defer func() { e.inRun = false }()

	e.limit = maxTime
	e.handoff(nil)
	<-e.parked
	e.repanic()
	if e.nLive > e.nDaemon {
		stuck := e.stuckProcs()
		return fmt.Errorf("sim: deadlock at %v: %d live processes: %v", e.now, e.nLive, stuck)
	}
	return nil
}

// runWindow advances the lane up to (but not including) limit: it
// dispatches every pending event with time < limit and returns once the
// lane quiesces at the window edge. Remaining events stay on the heap
// for later windows. Panics inside the window are recorded in the
// engine's panic fields for the group driver to re-raise; deadlock
// detection is deferred to the group (a lane with parked processes and
// an empty heap may simply be waiting for a cross-lane message).
func (e *Engine) runWindow(limit Time) {
	e.limit = limit
	e.handoff(nil)
	<-e.parked
}

// repanic re-raises a recorded simulation panic with its origin noted;
// a no-op if the run finished cleanly.
func (e *Engine) repanic() {
	if e.panicVal == nil {
		return
	}
	if e.panicProc == "" {
		// Engine-context panic (an After callback, a clock regression):
		// re-raise the original value, as the old engine loop did.
		panic(e.panicVal)
	}
	panic(fmt.Sprintf("sim: process %q panicked: %v\n%s",
		e.panicProc, e.panicVal, e.panicStack))
}

// stuckProcs lists the non-daemon processes still live, with their park
// reasons, sorted for deterministic error text.
func (e *Engine) stuckProcs() []string {
	var stuck []string
	for _, p := range e.procs {
		if p.daemon {
			continue
		}
		if !p.finished && p.started {
			stuck = append(stuck, fmt.Sprintf("%s (%s)", p.name, p.blocked))
		} else if !p.finished {
			stuck = append(stuck, p.name+" (never ran)")
		}
	}
	sort.Strings(stuck)
	return stuck
}

// nextEventAt reports the time of the earliest pending event, if any.
// Valid only while the lane is quiescent (between windows).
func (e *Engine) nextEventAt() (Time, bool) {
	if e.events.Len() == 0 {
		return 0, false
	}
	return e.events.a[0].at, true
}

// handoff is the dispatch loop, run by whichever goroutine is giving up
// control (a parking or finishing process, or Run itself at startup). It
// pops events — executing callbacks and clock moves inline in engine
// context — until it wakes the next process (ownership passes to that
// goroutine) or the heap drains (ownership returns to Run). A panic in
// engine context is recorded and control is aborted back to Run.
//
// parker is the process whose park invoked the loop (nil from Run and
// from a finishing process). When the next event wakes parker itself —
// a process dispatching its own Advance or Yield — the token is passed
// by setting parker.selfGrant, which park consumes on the same
// goroutine: the common solo-process case costs no channel operation
// and no scheduler round trip at all. Any other process is woken with a
// plain send on its capacity-1 resume channel; the target is either
// already blocked there or still on its way to the receive, and the
// buffer slot absorbs the token either way.
func (e *Engine) handoff(parker *Proc) {
	defer func() {
		if r := recover(); r != nil {
			if e.panicVal == nil {
				e.panicVal = r
				e.panicProc = "" // engine context
				e.panicStack = debug.Stack()
			}
			e.parked <- struct{}{}
		}
	}()
	e.cur = nil
	for e.events.Len() > 0 {
		if e.events.a[0].at >= e.limit {
			break // window edge: leave the event for a later LBTS round
		}
		ev := e.events.pop()
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time ran backwards: %v -> %v", e.now, ev.at))
		}
		if ev.at != e.now {
			e.now = ev.at
			if e.clock {
				e.emit(trace.KClock, trace.EngineProc, "sim", "clock", "", int64(e.now), 0)
			}
		}
		if ev.fn != nil {
			ev.fn()
			continue
		}
		if ev.act != nil {
			ev.act.Run()
			continue
		}
		p := ev.proc
		if p.finished {
			continue
		}
		e.cur = p
		if !p.started {
			p.started = true
			go p.top()
		} else {
			if e.tracer != nil {
				e.emit(trace.KProcUnpark, int32(p.id), "sim", p.name, p.blocked, 0, 0)
			}
			if p == parker {
				p.selfGrant = true
			} else {
				p.resume <- struct{}{}
			}
		}
		return
	}
	e.parked <- struct{}{}
}

// Proc is a simulated execution context. All methods must be called from
// the process's own goroutine while it is the running process.
type Proc struct {
	eng    *Engine
	id     int
	name   string
	resume chan struct{}
	fn     func(*Proc)

	// selfGrant is the same-goroutine control token: set by handoff when
	// the dispatching process wakes itself, consumed by park without
	// touching resume. Only ever accessed from p's own goroutine.
	selfGrant bool

	started  bool
	finished bool
	daemon   bool
	blocked  string // park reason; empty while runnable
}

// ID reports the process's creation index, unique within its engine.
func (p *Proc) ID() int { return p.id }

// SetDaemon marks the process as a daemon: a simulation may finish while
// daemons are still parked (persistent pool workers waiting for tasks).
// Call it from the process itself or before it first runs.
func (p *Proc) SetDaemon(on bool) {
	if p.daemon == on {
		return
	}
	p.daemon = on
	if on {
		p.eng.nDaemon++
	} else {
		p.eng.nDaemon--
	}
}

// Name reports the label given at creation.
func (p *Proc) Name() string { return p.name }

// Engine reports the owning engine.
func (p *Proc) Engine() *Engine { return p.eng }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// top is the goroutine body wrapping the user function. When the
// function returns (or panics), the goroutine hands control onward via
// the dispatch loop; on panic control aborts straight back to Run.
func (p *Proc) top() {
	defer func() {
		e := p.eng
		if r := recover(); r != nil && e.panicVal == nil {
			e.panicVal = r
			e.panicProc = p.name
			e.panicStack = debug.Stack()
		}
		p.finished = true
		if e.tracer != nil {
			e.emit(trace.KProcExit, int32(p.id), "sim", p.name, "", 0, 0)
		}
		e.nLive--
		if p.daemon {
			e.nDaemon--
		}
		if e.panicVal != nil {
			e.parked <- struct{}{}
			return
		}
		e.handoff(nil)
	}()
	p.fn(p)
}

// park suspends the process until the engine resumes it. The caller must
// already have arranged a wake (a scheduled event or a WaitQueue entry).
// The parking goroutine itself dispatches the next event before
// blocking, so the switch to the next runnable process is direct.
func (p *Proc) park(reason string) {
	p.blocked = reason
	if e := p.eng; e.tracer != nil {
		e.emit(trace.KProcPark, int32(p.id), "sim", p.name, reason, 0, 0)
	}
	p.eng.handoff(p)
	if p.selfGrant {
		p.selfGrant = false
	} else {
		<-p.resume
	}
	p.blocked = ""
}

// Advance charges d of virtual time to the process: it suspends and wakes
// at now+d. Negative durations are treated as zero.
func (p *Proc) Advance(d Duration) {
	if d < 0 {
		d = 0
	}
	p.eng.schedule(p.eng.now+d, p, nil)
	p.park("advance")
}

// Yield reschedules the process at the current time, letting any other
// process with a pending event at now run first (FIFO order).
func (p *Proc) Yield() {
	p.eng.schedule(p.eng.now, p, nil)
	p.park("yield")
}

// Go spawns a child process starting at the current virtual time.
func (p *Proc) Go(name string, fn func(*Proc)) *Proc {
	return p.eng.Go(name, fn)
}

// WaitQueue is a FIFO list of parked processes; the building block for
// condition variables, mailboxes and resource queues. It is a ring over a
// power-of-two backing array, so WakeOne dequeues in O(1) instead of
// shifting every remaining waiter, and woken slots are always cleared so
// the array retains no *Proc references.
type WaitQueue struct {
	buf  []*Proc
	head int
	n    int
}

// Len reports how many processes are parked on the queue.
func (q *WaitQueue) Len() int { return q.n }

// Wait parks p on the queue until a WakeOne/WakeAll reaches it.
func (q *WaitQueue) Wait(p *Proc, reason string) {
	if q.n == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.n)&(len(q.buf)-1)] = p
	q.n++
	p.park(reason)
}

// grow doubles the ring (minimum 8 slots), unwrapping the live span to
// the front of the new array.
func (q *WaitQueue) grow() {
	size := 8
	if len(q.buf) > 0 {
		size = 2 * len(q.buf)
	}
	buf := make([]*Proc, size)
	for i := 0; i < q.n; i++ {
		buf[i] = q.buf[(q.head+i)&(len(q.buf)-1)]
	}
	q.buf = buf
	q.head = 0
}

// Remove deletes p from the queue without waking it, reporting whether it
// was present. The remaining waiters keep their FIFO order. It is the
// cancellation half of a timed wait: the canceller removes the process
// and schedules its wake itself.
func (q *WaitQueue) Remove(p *Proc) bool {
	for i := 0; i < q.n; i++ {
		if q.buf[(q.head+i)&(len(q.buf)-1)] != p {
			continue
		}
		for j := i; j < q.n-1; j++ {
			a := (q.head + j) & (len(q.buf) - 1)
			b := (q.head + j + 1) & (len(q.buf) - 1)
			q.buf[a] = q.buf[b]
		}
		q.buf[(q.head+q.n-1)&(len(q.buf)-1)] = nil
		q.n--
		return true
	}
	return false
}

// WaitTimeout parks p on the queue until a wake reaches it or d elapses,
// reporting whether the wake came from the queue (true) or from the
// timer (false). Callers use it under a predicate loop exactly like
// Wait, re-checking their condition either way: a false return only
// means the deadline passed, and in the rare coincidence of a same-tick
// wake and expiry the condition may in fact hold. As with
// Event.WaitTimeout, the timer event stays on the heap until its time
// arrives, so fault-free fast paths should use Wait.
func (q *WaitQueue) WaitTimeout(p *Proc, reason string, d Duration) bool {
	woken := false
	expired := false
	p.eng.After(d, func() {
		if woken || expired {
			return
		}
		expired = true
		if q.Remove(p) {
			p.eng.unpark(p)
		}
	})
	q.Wait(p, reason)
	woken = true
	return !expired
}

// WakeOne unparks the longest-waiting process, reporting whether one
// existed. Must be called from simulation context.
func (q *WaitQueue) WakeOne() bool {
	if q.n == 0 {
		return false
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	p.eng.unpark(p)
	return true
}

// WakeAll unparks every waiter in FIFO order, reporting how many were
// woken.
func (q *WaitQueue) WakeAll() int {
	woken := q.n
	for i := 0; i < woken; i++ {
		at := (q.head + i) & (len(q.buf) - 1)
		p := q.buf[at]
		q.buf[at] = nil
		p.eng.unpark(p)
	}
	q.head = 0
	q.n = 0
	return woken
}

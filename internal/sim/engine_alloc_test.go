package sim

import (
	"fmt"
	"testing"
)

// The allocation-regression tests pin the untraced hot path at zero
// allocations per operation: the event heap stores events by value, the
// WaitQueue is a reusable ring, and a process resuming itself never
// touches a channel, so a warm engine must schedule, park and wake
// without the allocator. testing.AllocsPerRun runs inside the simulated
// process — the engine is otherwise idle, so any count it sees is the
// operation's own.

func TestAdvanceNoAlloc(t *testing.T) {
	e := New(1)
	per := -1.0
	e.Go("adv", func(p *Proc) {
		for i := 0; i < 64; i++ {
			p.Advance(1) // warm the event heap
		}
		per = testing.AllocsPerRun(200, func() { p.Advance(1) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if per != 0 {
		t.Errorf("Advance allocates %v allocs/op, want 0", per)
	}
}

func TestYieldNoAlloc(t *testing.T) {
	e := New(1)
	per := -1.0
	e.Go("yield", func(p *Proc) {
		for i := 0; i < 64; i++ {
			p.Yield()
		}
		per = testing.AllocsPerRun(200, func() { p.Yield() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if per != 0 {
		t.Errorf("Yield allocates %v allocs/op, want 0", per)
	}
}

func TestServerDelayNoAlloc(t *testing.T) {
	e := New(1)
	var srv Server
	per := -1.0
	e.Go("delay", func(p *Proc) {
		for i := 0; i < 64; i++ {
			srv.Delay(p, 1)
		}
		per = testing.AllocsPerRun(200, func() { srv.Delay(p, 1) })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if per != 0 {
		t.Errorf("Server.Delay allocates %v allocs/op, want 0", per)
	}
}

// TestWakeAllClearsSlots guards against the ring retaining *Proc
// pointers after the waiters are gone: a truncated-but-referencing
// backing array would keep every woken process (and everything it
// closes over) live for the queue's lifetime.
func TestWakeAllClearsSlots(t *testing.T) {
	e := New(1)
	var q WaitQueue
	const n = 5
	for i := 0; i < n; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) { q.Wait(p, "test") })
	}
	e.Go("waker", func(p *Proc) {
		p.Advance(1)
		if got := q.WakeAll(); got != n {
			t.Errorf("WakeAll woke %d, want %d", got, n)
		}
		for i, slot := range q.buf {
			if slot != nil {
				t.Errorf("slot %d still references a Proc after WakeAll", i)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWakeOneClearsSlot(t *testing.T) {
	e := New(1)
	var q WaitQueue
	e.Go("w", func(p *Proc) { q.Wait(p, "test") })
	e.Go("waker", func(p *Proc) {
		p.Advance(1)
		head := q.head
		q.WakeOne()
		if q.buf[head] != nil {
			t.Error("WakeOne left a Proc reference in the vacated slot")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestWaitQueueFIFOAcrossWrap drives the ring through several
// grow/wrap cycles and checks that wake order always matches wait
// order.
func TestWaitQueueFIFOAcrossWrap(t *testing.T) {
	e := New(1)
	var q WaitQueue
	var order []int
	const n = 40
	for i := 0; i < n; i++ {
		id := i
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			// Stagger arrivals so waiters enqueue in id order while the
			// waker drains between batches, forcing head to wrap.
			p.Advance(Duration(id / 4))
			q.Wait(p, "test")
			order = append(order, id)
		})
	}
	e.Go("waker", func(p *Proc) {
		woken := 0
		for woken < n {
			p.Advance(1)
			if q.WakeOne() {
				woken++
			}
			if woken%7 == 0 {
				woken += q.WakeAll()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("woke %d of %d waiters", len(order), n)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("wake order not FIFO: %v", order)
		}
	}
}

// TestSelfGrantSkipsChannel locks in the same-goroutine fast path: a
// process that dispatches its own wake event must resume via the
// selfGrant flag, not its resume channel.
func TestSelfGrantSkipsChannel(t *testing.T) {
	e := New(1)
	e.Go("solo", func(p *Proc) {
		p.Advance(1)
		if len(p.resume) != 0 {
			t.Error("self-resume left a token in the resume channel")
		}
		if p.selfGrant {
			t.Error("selfGrant not consumed by park")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// The engine microbenchmarks pin the cost of the substrate's hot path.
// The bodies live in internal/simbench so cmd/upc-bench can run the same
// code and record ns/op and allocs/op in BENCH_sim.json; CI fails on
// >20% ns/op regression. This file only registers them with go test.
// External test package: an in-package test could not import simbench
// (simbench imports sim).
package sim_test

import (
	"testing"

	"repro/internal/simbench"
)

func BenchmarkPingPongYield(b *testing.B)     { simbench.PingPongYield(b) }
func BenchmarkAdvance(b *testing.B)           { simbench.Advance(b) }
func BenchmarkBarrierStorm1k(b *testing.B)    { simbench.BarrierStorm1k(b) }
func BenchmarkServerDelay(b *testing.B)       { simbench.ServerDelay(b) }
func BenchmarkSharedLink32Flows(b *testing.B) { simbench.SharedLink32Flows(b) }
func BenchmarkFabricPut(b *testing.B)         { simbench.FabricPut(b) }

// Sharded-engine benchmarks: the cross-lane message hot path and the
// end-to-end traversal at growing -shards worker counts (virtual-time
// results are identical at every count; wall clock is the measurement).
func BenchmarkShardPut(b *testing.B)  { simbench.ShardPut(b) }
func BenchmarkUTSShard1(b *testing.B) { simbench.UTSShard1(b) }
func BenchmarkUTSShard2(b *testing.B) { simbench.UTSShard2(b) }
func BenchmarkUTSShard4(b *testing.B) { simbench.UTSShard4(b) }
func BenchmarkUTSShard8(b *testing.B) { simbench.UTSShard8(b) }

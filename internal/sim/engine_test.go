package sim

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestAdvanceOrdering(t *testing.T) {
	e := New(1)
	var order []string
	e.Go("a", func(p *Proc) {
		p.Advance(30)
		order = append(order, fmt.Sprintf("a@%d", p.Now()))
	})
	e.Go("b", func(p *Proc) {
		p.Advance(10)
		order = append(order, fmt.Sprintf("b@%d", p.Now()))
		p.Advance(40)
		order = append(order, fmt.Sprintf("b@%d", p.Now()))
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"b@10", "a@30", "b@50"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("order = %v, want %v", order, want)
	}
	if e.Now() != 50 {
		t.Errorf("final time = %v, want 50", e.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	e := New(1)
	var order []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("p%d", i)
		e.Go(name, func(p *Proc) {
			p.Advance(100) // all wake at the same instant
			order = append(order, p.Name())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if want := fmt.Sprintf("p%d", i); got != want {
			t.Fatalf("order[%d] = %s, want %s (ties must be FIFO)", i, got, want)
		}
	}
}

func TestNegativeAdvanceIsZero(t *testing.T) {
	e := New(1)
	e.Go("p", func(p *Proc) {
		p.Advance(-5)
		if p.Now() != 0 {
			t.Errorf("time after Advance(-5) = %v, want 0", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnDuringRun(t *testing.T) {
	e := New(1)
	var childTime Time = -1
	e.Go("parent", func(p *Proc) {
		p.Advance(25)
		p.Go("child", func(c *Proc) {
			childTime = c.Now()
		})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 25 {
		t.Errorf("child started at %v, want 25", childTime)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New(1)
	var q WaitQueue
	e.Go("stuck", func(p *Proc) {
		q.Wait(p, "never-signaled")
	})
	err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "stuck") || !strings.Contains(err.Error(), "never-signaled") {
		t.Errorf("deadlock error should name the process and reason: %v", err)
	}
}

func TestProcPanicPropagates(t *testing.T) {
	e := New(1)
	e.Go("bomb", func(p *Proc) {
		p.Advance(1)
		panic("boom")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate from Run")
		}
		s := fmt.Sprint(r)
		if !strings.Contains(s, "bomb") || !strings.Contains(s, "boom") {
			t.Errorf("panic message should identify process and value: %s", s)
		}
	}()
	e.Run()
}

func TestAfterCallback(t *testing.T) {
	e := New(1)
	var at Time = -1
	e.Go("p", func(p *Proc) {
		e.After(42, func() { at = e.Now() })
		p.Advance(100)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 42 {
		t.Errorf("callback ran at %v, want 42", at)
	}
}

func TestYieldFairness(t *testing.T) {
	e := New(1)
	var order []string
	e.Go("a", func(p *Proc) {
		p.Yield()
		order = append(order, "a")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[b a]" {
		t.Errorf("Yield should let b run first: got %v", order)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		e := New(7)
		var trace []string
		var mu Mutex
		for i := 0; i < 5; i++ {
			name := fmt.Sprintf("w%d", i)
			e.Go(name, func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Advance(Duration(e.Rand().Intn(100)))
					mu.Lock(p)
					trace = append(trace, fmt.Sprintf("%s@%d", p.Name(), p.Now()))
					p.Advance(5)
					mu.Unlock(p)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("identical seeds must replay identically:\n%v\n%v", a, b)
	}
}

func TestClockMonotonicUnderRandomWorkload(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		e := New(seed)
		ok := true
		for i := 0; i < 4; i++ {
			e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
				last := p.Now()
				for s := 0; s < int(steps%32); s++ {
					p.Advance(Duration(e.Rand().Intn(50)))
					if p.Now() < last {
						ok = false
					}
					last = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeFormatting(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	if d := TransferTime(1000, 1000); d != Second {
		t.Errorf("1000B at 1000B/s = %v, want 1s", d)
	}
	if d := TransferTime(0, 1e9); d != 0 {
		t.Errorf("zero bytes should take zero time, got %v", d)
	}
	if d := TransferTime(100, 0); d != 0 {
		t.Errorf("zero bandwidth means free path, got %v", d)
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		d := FromSeconds(float64(ms) / 1000)
		return d == Duration(ms)*Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package sim

// event is an entry in the engine's pending-event heap. Exactly one of
// proc, fn and act is set: proc events resume a parked process; fn events
// run a callback inline in engine context (used by resources such as
// processor-sharing links that must reshuffle state at completion times);
// act events are the allocation-free flavor of fn — a pre-built object
// from a free list instead of a closure built at the call site.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	proc *Proc
	fn   func()
	act  Action
}

// before orders events by time, then FIFO by sequence number.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventHeap is an index-based 4-ary min-heap storing events by value: the
// backing array is the only allocation, so a warm heap schedules and pops
// without touching the allocator, and the shallower tree (depth log4 n)
// halves the sift work of the binary container/heap version it replaced.
type eventHeap struct {
	a []event
}

func (h *eventHeap) Len() int { return len(h.a) }

// push inserts ev, sifting it up from the last slot.
func (h *eventHeap) push(ev event) {
	h.a = append(h.a, ev)
	a := h.a
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !a[i].before(&a[parent]) {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

// pop removes and returns the earliest event, clearing the vacated slot
// so the backing array retains no *Proc or closure references.
func (h *eventHeap) pop() event {
	a := h.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{}
	h.a = a[:n]
	if n > 1 {
		h.siftDown()
	}
	return top
}

func (h *eventHeap) siftDown() {
	a := h.a
	n := len(a)
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if a[c].before(&a[min]) {
				min = c
			}
		}
		if !a[min].before(&a[i]) {
			return
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
}

package sim

import "container/heap"

// event is an entry in the engine's pending-event heap. Exactly one of
// proc and fn is set: proc events resume a parked process; fn events run a
// callback inline in engine context (used by resources such as
// processor-sharing links that must reshuffle state at completion times).
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	proc *Proc
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

func (h *eventHeap) push(ev *event) { heap.Push(h, ev) }

func (h *eventHeap) pop() *event { return heap.Pop(h).(*event) }

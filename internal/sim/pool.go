package sim

// FreeList is a typed LIFO free list for pooled simulation objects.
// Because the engine runs model code sequentially (one process or event
// callback at a time per lane, with cross-lane access ordered by the
// ShardGroup round barrier), no locking is needed: a pool is owned by
// whatever model object embeds it and touched only from that object's
// execution context.
//
// Get hands out a recycled object or a zero-valued new one; the caller
// resets whatever fields it uses. Put returns an object for reuse — the
// caller must guarantee no other reference remains live (no parked
// waiter, no pending event) before releasing.
//
// The counters exist for the pool-leak invariant: at quiescence every
// Get must have a matching Put (Stats().Outstanding() == 0), which the
// fabric chaos-soak tests assert across fault schedules.
type FreeList[T any] struct {
	free []*T
	gets int64
	puts int64
	news int64
}

// Get pops a recycled object, or allocates a fresh zero value when the
// list is empty.
func (f *FreeList[T]) Get() *T {
	f.gets++
	if n := len(f.free); n > 0 {
		x := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		return x
	}
	f.news++
	return new(T)
}

// Put returns x to the list for reuse.
func (f *FreeList[T]) Put(x *T) {
	f.puts++
	f.free = append(f.free, x)
}

// Stats reports the pool's lifetime counters.
func (f *FreeList[T]) Stats() PoolStats {
	return PoolStats{Gets: f.gets, Puts: f.puts, News: f.news, Idle: len(f.free)}
}

// PoolStats is a point-in-time snapshot of a FreeList's accounting.
type PoolStats struct {
	Gets int64 // objects handed out
	Puts int64 // objects returned
	News int64 // Gets served by a fresh allocation
	Idle int   // objects currently sitting in the list
}

// Outstanding reports how many handed-out objects have not been
// returned. Zero at quiescence means no leak and no double-free.
func (s PoolStats) Outstanding() int64 { return s.Gets - s.Puts }

// Add merges two snapshots, for summing across a set of pools.
func (s PoolStats) Add(o PoolStats) PoolStats {
	return PoolStats{
		Gets: s.Gets + o.Gets,
		Puts: s.Puts + o.Puts,
		News: s.News + o.News,
		Idle: s.Idle + o.Idle,
	}
}

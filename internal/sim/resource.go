package sim

// Server is a first-come-first-served pipelined resource, such as a NIC
// injection port or a DMA engine: each request occupies the server for a
// caller-supplied duration, requests are serviced in arrival order, and a
// request's completion time is max(now, previous completion) + duration.
// The requesting process sleeps until its completion.
type Server struct {
	busyUntil Time
}

// Delay enqueues an occupancy of d for p and suspends p until the request
// completes. It returns the completion time.
func (s *Server) Delay(p *Proc, d Duration) Time {
	if d < 0 {
		d = 0
	}
	start := p.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + d
	if s.busyUntil > p.Now() {
		end := p.TraceSpanArg("sim", "server", "", int64(d))
		p.Advance(s.busyUntil - p.Now())
		end()
	}
	return s.busyUntil
}

// Schedule reserves an occupancy of d without suspending the caller and
// returns the completion time. Use it when one process charges work to a
// resource on behalf of another (e.g. a NIC finishing a transfer that the
// receiver, not the sender, waits on).
func (s *Server) Schedule(now Time, d Duration) Time {
	if d < 0 {
		d = 0
	}
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + d
	return s.busyUntil
}

// BusyUntil reports the completion time of the last accepted request.
func (s *Server) BusyUntil() Time { return s.busyUntil }

// SharedLink models a bandwidth resource shared by concurrent flows with
// processor-sharing fairness: while n flows are active each proceeds at
// capacity/n. It reproduces the first-order behaviour of a memory
// controller or a network link carrying simultaneous transfers.
//
// Accounting is incremental: because every active flow is served at the
// same instantaneous rate, the link tracks one number — served, the
// cumulative bytes delivered to each flow since it joined an idle link —
// and a flow is just the served value at which it completes. Advancing
// the clock is O(1) regardless of how many flows are active (it used to
// charge every flow on every start/finish), and flows complete in served
// order out of a min-heap keyed by that finish point.
type SharedLink struct {
	eng      *Engine
	capacity float64 // bytes per second
	served   float64 // per-flow bytes delivered since the link went busy
	flows    flowHeap
	last     Time               // time of the last work-accounting update
	epoch    uint64             // invalidates stale completion callbacks
	pool     FreeList[flow]     // recycled flow records (Transfer path)
	ticks    FreeList[linkTick] // recycled completion callbacks
}

type flow struct {
	end      float64 // served value at which this flow completes
	done     WaitQueue
	finished bool
	handle   bool // escaped via a Flow handle: stays off the free list
}

// flowHeap is a min-heap of active flows ordered by completion point.
type flowHeap []*flow

func (h *flowHeap) push(f *flow) {
	*h = append(*h, f)
	a := *h
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if a[parent].end <= a[i].end {
			break
		}
		a[i], a[parent] = a[parent], a[i]
		i = parent
	}
}

func (h *flowHeap) pop() *flow {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = nil
	a = a[:n]
	*h = a
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && a[c+1].end < a[c].end {
			c++
		}
		if a[i].end <= a[c].end {
			break
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
	return top
}

// NewSharedLink creates a link with the given capacity in bytes/second on
// engine e. A non-positive capacity makes all transfers instantaneous.
func NewSharedLink(e *Engine, capacity float64) *SharedLink {
	return &SharedLink{eng: e, capacity: capacity}
}

// Capacity reports the link's total bandwidth in bytes/second.
func (l *SharedLink) Capacity() float64 { return l.capacity }

// Active reports the number of in-flight flows.
func (l *SharedLink) Active() int { return len(l.flows) }

// Transfer moves size bytes across the link, suspending p until the flow
// completes under processor sharing with all concurrent flows.
func (l *SharedLink) Transfer(p *Proc, size int64) {
	if size <= 0 || l.capacity <= 0 {
		return
	}
	f := l.start(size)
	if !f.finished {
		f.done.Wait(p, "sharedlink")
	}
}

// StartTransfer begins a flow without suspending the caller and returns a
// completion handle. Wait on it from any process. A handle may be polled
// long after completion, so handle-carrying flows are exempt from the
// free list and left to the garbage collector.
func (l *SharedLink) StartTransfer(size int64) *Flow {
	if size <= 0 || l.capacity <= 0 {
		return &Flow{f: &flow{finished: true}} //upcvet:poolalloc -- degenerate zero-size flow; the handle is pollable after return, so it is exempt like StartTransfer
	}
	f := l.start(size)
	f.handle = true
	return &Flow{f: f, l: l}
}

// PoolStats reports the combined free-list accounting for the link's
// flow records and completion callbacks. At quiescence with no
// outstanding Flow handles, Outstanding() must be zero.
func (l *SharedLink) PoolStats() PoolStats {
	return l.pool.Stats().Add(l.ticks.Stats())
}

// Flow is a handle to an in-flight SharedLink transfer.
type Flow struct {
	f *flow
	l *SharedLink
}

// Done reports whether the transfer has completed.
func (fl *Flow) Done() bool { return fl.f.finished }

// Wait suspends p until the transfer completes.
func (fl *Flow) Wait(p *Proc) {
	if !fl.f.finished {
		fl.f.done.Wait(p, "flow-wait")
	}
}

func (l *SharedLink) start(size int64) *flow {
	l.account()
	f := l.pool.Get()
	f.end = l.served + float64(size)
	f.finished = false
	f.handle = false
	l.flows.push(f)
	l.reschedule()
	return f
}

// account advances the per-flow service accumulator by the bandwidth
// share delivered since the last update — O(1) however many flows are
// active, since processor sharing serves them all at the same rate.
func (l *SharedLink) account() {
	now := l.eng.Now()
	if now > l.last && len(l.flows) > 0 {
		l.served += l.capacity / float64(len(l.flows)) * (now - l.last).Seconds()
	}
	l.last = now
}

// reschedule completes any drained flows and books the next completion
// callback for the earliest remaining one. Completed flows return to the
// link's free list: WakeAll has already dequeued every waiter, and the
// WaitQueue ring is retained across reuse so a warm link never touches
// the allocator.
func (l *SharedLink) reschedule() {
	const eps = 1e-6 // bytes; absorbs float rounding
	for len(l.flows) > 0 && l.flows[0].end-l.served <= eps {
		f := l.flows.pop()
		f.finished = true
		f.done.WakeAll()
		if !f.handle {
			l.pool.Put(f)
		}
	}
	l.epoch++
	if len(l.flows) == 0 {
		// Idle: rebase the accumulator so it cannot lose precision over
		// arbitrarily long simulations.
		l.served = 0
		return
	}
	rate := l.capacity / float64(len(l.flows))
	dt := FromSeconds((l.flows[0].end - l.served) / rate)
	if dt < 1 {
		dt = 1 // guarantee forward progress despite rounding
	}
	t := l.ticks.Get()
	t.l = l
	t.epoch = l.epoch
	l.eng.AfterAction(dt, t)
}

// linkTick is the pooled completion callback for a SharedLink: one is
// booked per reschedule, and a stale epoch means a fresher one has been
// booked since. A tick releases itself before re-entering the link so
// the nested reschedule can reuse it immediately.
type linkTick struct {
	l     *SharedLink
	epoch uint64
}

func (t *linkTick) Run() {
	l, epoch := t.l, t.epoch
	t.l = nil
	l.ticks.Put(t)
	if l.epoch != epoch {
		return // the flow set changed; a fresher callback is booked
	}
	l.account()
	l.reschedule()
}

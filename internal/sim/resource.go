package sim

import "math"

// Server is a first-come-first-served pipelined resource, such as a NIC
// injection port or a DMA engine: each request occupies the server for a
// caller-supplied duration, requests are serviced in arrival order, and a
// request's completion time is max(now, previous completion) + duration.
// The requesting process sleeps until its completion.
type Server struct {
	busyUntil Time
}

// Delay enqueues an occupancy of d for p and suspends p until the request
// completes. It returns the completion time.
func (s *Server) Delay(p *Proc, d Duration) Time {
	if d < 0 {
		d = 0
	}
	start := p.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + d
	if s.busyUntil > p.Now() {
		end := p.TraceSpanArg("sim", "server", "", int64(d))
		p.Advance(s.busyUntil - p.Now())
		end()
	}
	return s.busyUntil
}

// Schedule reserves an occupancy of d without suspending the caller and
// returns the completion time. Use it when one process charges work to a
// resource on behalf of another (e.g. a NIC finishing a transfer that the
// receiver, not the sender, waits on).
func (s *Server) Schedule(now Time, d Duration) Time {
	if d < 0 {
		d = 0
	}
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + d
	return s.busyUntil
}

// BusyUntil reports the completion time of the last accepted request.
func (s *Server) BusyUntil() Time { return s.busyUntil }

// SharedLink models a bandwidth resource shared by concurrent flows with
// processor-sharing fairness: while n flows are active each proceeds at
// capacity/n. It reproduces the first-order behaviour of a memory
// controller or a network link carrying simultaneous transfers.
type SharedLink struct {
	eng      *Engine
	capacity float64 // bytes per second
	flows    []*flow
	last     Time   // time of the last work-accounting update
	epoch    uint64 // invalidates stale completion callbacks
}

type flow struct {
	remaining float64 // bytes
	done      WaitQueue
	finished  bool
}

// NewSharedLink creates a link with the given capacity in bytes/second on
// engine e. A non-positive capacity makes all transfers instantaneous.
func NewSharedLink(e *Engine, capacity float64) *SharedLink {
	return &SharedLink{eng: e, capacity: capacity}
}

// Capacity reports the link's total bandwidth in bytes/second.
func (l *SharedLink) Capacity() float64 { return l.capacity }

// Active reports the number of in-flight flows.
func (l *SharedLink) Active() int { return len(l.flows) }

// Transfer moves size bytes across the link, suspending p until the flow
// completes under processor sharing with all concurrent flows.
func (l *SharedLink) Transfer(p *Proc, size int64) {
	if size <= 0 || l.capacity <= 0 {
		return
	}
	f := l.start(size)
	if !f.finished {
		f.done.Wait(p, "sharedlink")
	}
}

// StartTransfer begins a flow without suspending the caller and returns a
// completion handle. Wait on it from any process.
func (l *SharedLink) StartTransfer(size int64) *Flow {
	if size <= 0 || l.capacity <= 0 {
		return &Flow{f: &flow{finished: true}}
	}
	return &Flow{f: l.start(size), l: l}
}

// Flow is a handle to an in-flight SharedLink transfer.
type Flow struct {
	f *flow
	l *SharedLink
}

// Done reports whether the transfer has completed.
func (fl *Flow) Done() bool { return fl.f.finished }

// Wait suspends p until the transfer completes.
func (fl *Flow) Wait(p *Proc) {
	if !fl.f.finished {
		fl.f.done.Wait(p, "flow-wait")
	}
}

func (l *SharedLink) start(size int64) *flow {
	l.account()
	f := &flow{remaining: float64(size)}
	l.flows = append(l.flows, f)
	l.reschedule()
	return f
}

// account charges elapsed bandwidth shares to every active flow.
func (l *SharedLink) account() {
	now := l.eng.Now()
	if now > l.last && len(l.flows) > 0 {
		share := l.capacity / float64(len(l.flows)) * (now - l.last).Seconds()
		for _, f := range l.flows {
			f.remaining -= share
		}
	}
	l.last = now
}

// reschedule completes any drained flows and books the next completion
// callback for the earliest remaining one.
func (l *SharedLink) reschedule() {
	const eps = 1e-6 // bytes; absorbs float rounding
	kept := l.flows[:0]
	for _, f := range l.flows {
		if f.remaining <= eps {
			f.finished = true
			f.done.WakeAll()
		} else {
			kept = append(kept, f)
		}
	}
	for i := len(kept); i < len(l.flows); i++ {
		l.flows[i] = nil
	}
	l.flows = kept
	l.epoch++
	if len(l.flows) == 0 {
		return
	}
	minRem := math.Inf(1)
	for _, f := range l.flows {
		if f.remaining < minRem {
			minRem = f.remaining
		}
	}
	rate := l.capacity / float64(len(l.flows))
	dt := FromSeconds(minRem / rate)
	if dt < 1 {
		dt = 1 // guarantee forward progress despite rounding
	}
	epoch := l.epoch
	l.eng.After(dt, func() {
		if l.epoch != epoch {
			return // the flow set changed; a fresher callback is booked
		}
		l.account()
		l.reschedule()
	})
}

package sim

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestServerFCFSPipelining(t *testing.T) {
	e := New(1)
	var done []Time
	var srv Server
	// Three requests arriving at t=0 with occupancies 10, 20, 5 complete at
	// 10, 30, 35: strict arrival order, back-to-back.
	for i, d := range []Duration{10, 20, 5} {
		dd := d
		e.Go(fmt.Sprintf("r%d", i), func(p *Proc) {
			srv.Delay(p, dd)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 30, 35}
	if fmt.Sprint(done) != fmt.Sprint(want) {
		t.Errorf("completions = %v, want %v", done, want)
	}
}

func TestServerIdleGap(t *testing.T) {
	e := New(1)
	var srv Server
	var second Time
	e.Go("a", func(p *Proc) {
		srv.Delay(p, 10) // completes at 10
		p.Advance(90)    // now 100; server idle 10..100
		srv.Delay(p, 10) // must complete at 110, not 20+10
		second = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if second != 110 {
		t.Errorf("second completion = %v, want 110", second)
	}
}

func TestServerScheduleWithoutBlocking(t *testing.T) {
	var srv Server
	if got := srv.Schedule(100, 50); got != 150 {
		t.Errorf("Schedule(100,50) = %v, want 150", got)
	}
	if got := srv.Schedule(120, 10); got != 160 {
		t.Errorf("pipelined Schedule = %v, want 160", got)
	}
}

func TestSharedLinkSingleFlow(t *testing.T) {
	e := New(1)
	l := NewSharedLink(e, 1000) // 1000 B/s
	var done Time
	e.Go("p", func(p *Proc) {
		l.Transfer(p, 500)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(500 * Millisecond); absTime(done-want) > Millisecond {
		t.Errorf("500B at 1000B/s finished at %v, want ~%v", done, want)
	}
}

func TestSharedLinkFairSharing(t *testing.T) {
	e := New(1)
	l := NewSharedLink(e, 1000)
	var doneA, doneB Time
	// Two equal 500B flows starting together: each gets 500 B/s, both end
	// at ~1s (not 0.5s).
	e.Go("a", func(p *Proc) { l.Transfer(p, 500); doneA = p.Now() })
	e.Go("b", func(p *Proc) { l.Transfer(p, 500); doneB = p.Now() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := Time(Second)
	if absTime(doneA-want) > 2*Millisecond || absTime(doneB-want) > 2*Millisecond {
		t.Errorf("concurrent flows finished at %v, %v; want ~%v each", doneA, doneB, want)
	}
}

func TestSharedLinkLateArrival(t *testing.T) {
	e := New(1)
	l := NewSharedLink(e, 1000)
	var doneA, doneB Time
	// A: 1000B from t=0. B: 500B from t=0.5s. A runs alone 0..0.5 (500B
	// done), then shares: each does 500B at 500B/s -> both end at 1.5s.
	e.Go("a", func(p *Proc) { l.Transfer(p, 1000); doneA = p.Now() })
	e.Go("b", func(p *Proc) {
		p.Advance(Time(500 * Millisecond))
		l.Transfer(p, 500)
		doneB = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := Time(1500 * Millisecond)
	if absTime(doneA-want) > 3*Millisecond {
		t.Errorf("A finished at %v, want ~%v", doneA, want)
	}
	if absTime(doneB-want) > 3*Millisecond {
		t.Errorf("B finished at %v, want ~%v", doneB, want)
	}
}

func TestSharedLinkConservation(t *testing.T) {
	// Property: total bytes / capacity <= makespan <= sum per-flow times,
	// and makespan >= largest flow alone.
	f := func(seed int64, sizes [4]uint16) bool {
		e := New(seed)
		l := NewSharedLink(e, 1e6)
		var total int64
		var finish Time
		for i, sz := range sizes {
			size := int64(sz) + 1
			total += size
			e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
				l.Transfer(p, size)
				if p.Now() > finish {
					finish = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		lower := TransferTime(total, 1e6)
		// Allow a small epsilon for event rounding.
		return finish >= lower-Time(len(sizes))*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSharedLinkNonBlockingHandle(t *testing.T) {
	e := New(1)
	l := NewSharedLink(e, 1000)
	var done Time
	e.Go("p", func(p *Proc) {
		fl := l.StartTransfer(500)
		if fl.Done() {
			t.Error("transfer should not be instantly done")
		}
		p.Advance(100 * Millisecond) // overlap with other work
		fl.Wait(p)
		done = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := Time(500 * Millisecond); absTime(done-want) > 2*Millisecond {
		t.Errorf("overlapped transfer ended at %v, want ~%v", done, want)
	}
}

func TestSharedLinkZeroCapacityIsFree(t *testing.T) {
	e := New(1)
	l := NewSharedLink(e, 0)
	e.Go("p", func(p *Proc) {
		l.Transfer(p, 1<<30)
		if p.Now() != 0 {
			t.Errorf("zero-capacity link should be free, took %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func absTime(t Time) Time {
	if t < 0 {
		return -t
	}
	return t
}

func TestSharedLinkManyFlowsApproximation(t *testing.T) {
	// n equal flows of size s on capacity c must all complete near n*s/c.
	for _, n := range []int{2, 8, 32} {
		e := New(1)
		l := NewSharedLink(e, 1e9)
		size := int64(1 << 20)
		var worst Time
		for i := 0; i < n; i++ {
			e.Go(fmt.Sprintf("f%d", i), func(p *Proc) {
				l.Transfer(p, size)
				if p.Now() > worst {
					worst = p.Now()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		want := TransferTime(int64(n)*size, 1e9)
		if math.Abs(float64(worst-want)) > float64(want)/100 {
			t.Errorf("n=%d: makespan %v, want ~%v", n, worst, want)
		}
	}
}

// Sharded execution: a ShardGroup partitions one simulation into
// per-fabric-node lane engines and advances them concurrently under
// conservative lookahead. The group always creates one lane per node —
// independent of the worker count — so the event order inside each lane,
// every RNG draw, and the merged trace stream are pure functions of the
// model and the seed. The -shards flag (SetShardWorkers) chooses only
// how many OS threads pull lanes off the work list each round; stdout,
// TraceDigest, trace JSON and metrics manifests are byte-identical at
// any worker count by construction.
//
// The synchronization protocol is the barrier-aggregated variant of the
// classic null-message (CMB) scheme: each round the group computes
//
//	LBTS = min over lanes of next-pending-event time + min lookahead
//
// where the lookahead of a lane pair is the declared lower bound on
// cross-lane message latency (wire latency from internal/fabric, never
// below LookaheadFloor). Every lane may safely execute all events
// strictly below LBTS: any message generated during the round carries at
// least the minimum lookahead of delay, so it lands at or beyond the
// window edge and is delivered — sorted by (time, source lane, source
// sequence) — at the next barrier. Lanes share nothing while a round
// runs: cross-lane sends are staged in per-source outboxes and per-lane
// trace buffers are k-way merged by (time, lane) after the barrier.
package sim

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// LookaheadFloor is the minimum cross-lane lookahead. A zero-latency
// link would make the conservative window empty (LBTS = min clock, no
// event strictly below it), so declared lookaheads clamp here: one
// virtual nanosecond, the resolution of sim.Time.
const LookaheadFloor = 1 * Nanosecond

// LaneStride separates the proc-id ranges of different lanes so ids in
// the merged trace stream are unique and independent of worker count.
const LaneStride = 1 << 16

// maxTime is the open dispatch bound: beyond any event time a model can
// schedule, while far from Time overflow when costs are added to it.
const maxTime = Time(1) << 62

var (
	shardWorkersMu sync.Mutex
	shardWorkers   int
)

// SetShardWorkers sets the process-wide worker-thread count for sharded
// execution, mirroring sweep.SetWorkers. Zero (the default) means the
// cmd binaries run their legacy single-lane experiments; experiment
// code switches to the sharded variants when it is positive. Values are
// clamped below at zero. Like trace.SetDefault it is read when runs are
// built: set it before building simulations, not concurrently.
func SetShardWorkers(n int) {
	if n < 0 {
		n = 0
	}
	shardWorkersMu.Lock()
	shardWorkers = n
	shardWorkersMu.Unlock()
}

// ShardWorkers reports the configured sharded-execution worker count.
func ShardWorkers() int {
	shardWorkersMu.Lock()
	defer shardWorkersMu.Unlock()
	return shardWorkers
}

// MessageVerdict is a fault filter's decision for one cross-lane
// message. It mirrors fabric's injection verdicts so internal/fault
// schedules can drive the sharded engine too.
type MessageVerdict uint8

const (
	// MsgDeliver passes the message through unharmed.
	MsgDeliver MessageVerdict = iota
	// MsgDrop discards the message in flight.
	MsgDrop
	// MsgDuplicate delivers the message twice.
	MsgDuplicate
	// MsgDelay adds the returned extra latency before delivery.
	MsgDelay
)

// MessageFilter decides the fate of one unreliable cross-lane message.
// It runs in the sending lane's context at send time and draws any
// randomness from rng — the sending lane's own source — so verdicts
// interleave deterministically with the model's draws on that lane.
// extra is the added latency for MsgDelay verdicts.
type MessageFilter func(src, dst int, at Time, size int64, rng *rand.Rand) (v MessageVerdict, extra Duration)

// shardMsg is one staged cross-lane message. Exactly one of fn and act
// is set; act is the allocation-free flavor used by pooled transports.
// sentAt and reliable feed the membership-epoch fence: an unreliable
// message whose source or destination lane was reincarnated between
// send and arrival is stale and dropped at delivery.
type shardMsg struct {
	at       Time
	sentAt   Time
	src      int
	dst      int
	seq      uint64 // per-source-lane send sequence: the deterministic tie-break
	size     int64
	verdict  MessageVerdict
	extra    Duration // MsgDelay only
	reliable bool
	fn       func()
	act      Action
}

// laneOutage is one scheduled down-window of a lane: down at from,
// reincarnated at until (maxTime = never). Outages are fixed before the
// run, so lane liveness and incarnation numbers are pure functions of
// virtual time — readable from any lane without synchronization.
type laneOutage struct {
	from, until Time
}

// ShardGroup drives a set of lane engines through conservative LBTS
// windows. Build one with NewShardGroup, declare links with
// SetLookahead (or let fabric.NewShardNet do it), register processes on
// the lanes, then call Run.
type ShardGroup struct {
	seed    int64
	lanes   []*Engine
	look    [][]Duration // look[src][dst]; 0 = no link declared
	minLook Duration     // min over declared links; 0 = none declared
	workers int

	sink trace.Tracer    // the merged stream's destination (nil = untraced)
	bufs []*trace.Buffer // per-lane window buffers (nil when sink is nil)

	outbox  [][]shardMsg // staged sends, indexed by source lane
	seqs    []uint64     // per-source-lane send sequence counters
	downAt  []Time       // virtual time each lane crashed, or maxTime
	outages [][]laneOutage
	churn   bool // any outage registered: arrivals pay the epoch fence
	onTrans []func(lane int, down bool)
	filter  MessageFilter

	scratch  []shardMsg // delivery sort scratch
	runnable []*Engine  // per-round lane work list
	streams  [][]trace.Event

	// arrPool[d] recycles the arrival records scheduled on lane d: Get
	// runs in group context at the delivery barrier, Put in lane d's own
	// context when the arrival executes, and the round WaitGroup orders
	// the two — so each pool is only ever touched by one goroutine at a
	// time.
	arrPool []FreeList[arrival]

	rounds int64
	sent   int64
	ran    bool
}

// NewShardGroup returns a group of lanes lane engines, each seeded from
// seed mixed with its lane index, tracing into sink (nil for none). The
// group emits the run's single KRunBegin; lane engines do not.
func NewShardGroup(seed int64, lanes int, sink trace.Tracer) *ShardGroup {
	if lanes <= 0 {
		panic(fmt.Sprintf("sim: NewShardGroup with %d lanes", lanes))
	}
	g := &ShardGroup{
		seed:    seed,
		lanes:   make([]*Engine, lanes),
		look:    make([][]Duration, lanes),
		workers: 1,
		sink:    sink,
		outbox:  make([][]shardMsg, lanes),
		seqs:    make([]uint64, lanes),
		downAt:  make([]Time, lanes),
		outages: make([][]laneOutage, lanes),
		arrPool: make([]FreeList[arrival], lanes),
	}
	if n := ShardWorkers(); n > 1 {
		g.workers = n
	}
	if sink != nil {
		sink.Emit(trace.Event{
			Kind: trace.KRunBegin, Proc: trace.EngineProc,
			Cat: "sim", Name: "run", Aux: "shard",
			Arg: seed, Arg2: int64(lanes),
		})
		g.bufs = make([]*trace.Buffer, lanes)
		g.streams = make([][]trace.Event, lanes)
	}
	for i := range g.lanes {
		g.look[i] = make([]Duration, lanes)
		g.downAt[i] = maxTime
		var tr trace.Tracer
		if sink != nil {
			g.bufs[i] = trace.NewBuffer()
			tr = g.bufs[i]
			// Advertise the sink's opt-in capabilities on the lane buffer so
			// engines and fabrics emit (or skip) clock and link-occupancy
			// events exactly as they would when tracing into sink directly.
			if trace.WantsClock(sink) {
				tr = trace.Clocked(tr)
			}
			if trace.WantsUtil(sink) {
				tr = trace.Utiled(tr)
			}
			if trace.WantsEdge(sink) {
				tr = trace.Edged(tr)
			}
		}
		g.lanes[i] = newLane(g, i, laneSeed(seed, i), tr)
	}
	return g
}

// laneSeed mixes the group seed with the lane index (splitmix64-style
// golden-ratio stride) so lanes draw independent, reproducible streams.
func laneSeed(seed int64, lane int) int64 {
	return seed + int64(lane+1)*-0x61c8864680b583eb // 2^64 / golden ratio
}

// Lanes reports the number of lanes.
func (g *ShardGroup) Lanes() int { return len(g.lanes) }

// Lane returns lane engine i. Register processes on it with Engine.Go
// before calling Run.
func (g *ShardGroup) Lane(i int) *Engine { return g.lanes[i] }

// Rounds reports how many LBTS windows the run executed (for tests and
// diagnostics; it is a deterministic function of the model).
func (g *ShardGroup) Rounds() int64 { return g.rounds }

// Messages reports how many cross-lane messages were staged.
func (g *ShardGroup) Messages() int64 { return g.sent }

// SetWorkers overrides the group's worker-thread count (otherwise taken
// from ShardWorkers at construction). Call before Run.
func (g *ShardGroup) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	g.workers = n
}

// SetMessageFilter installs a fault filter consulted for every
// unreliable cross-lane send. Call before Run.
func (g *ShardGroup) SetMessageFilter(f MessageFilter) { g.filter = f }

// Filtered reports whether a message filter (fault injection) is
// installed. Pooled transports consult it: an unreliable message can be
// duplicated by the filter, so exactly-once recycling assumptions only
// hold when it is absent.
func (g *ShardGroup) Filtered() bool { return g.filter != nil }

// SetLookahead declares a directed cross-lane link with the given
// latency lower bound, clamped to LookaheadFloor. Every Send from src
// to dst must carry at least this much delay; sends over undeclared
// pairs panic. Lookaheads are fixed for the run: declare them before
// Run.
func (g *ShardGroup) SetLookahead(src, dst int, d Duration) {
	if src == dst {
		panic(fmt.Sprintf("sim: SetLookahead(%d, %d): self links are implicit (use After)", src, dst))
	}
	if d < LookaheadFloor {
		d = LookaheadFloor
	}
	g.look[src][dst] = d
	if g.minLook == 0 || d < g.minLook {
		g.minLook = d
	}
}

// Lookahead reports the declared lookahead from src to dst (0 = no
// link).
func (g *ShardGroup) Lookahead(src, dst int) Duration { return g.look[src][dst] }

// CrashLane marks the calling lane down as of its current virtual time:
// messages arriving at or after this instant are dropped (the in-flight
// loss of a node crash). Call from the lane's own simulation context —
// typically a fault-schedule event booked on that lane. The lane engine
// itself keeps dispatching events (timers, trace bookkeeping); silencing
// the model is the caller's job.
func (g *ShardGroup) CrashLane(e *Engine) {
	if e.group != g {
		panic("sim: CrashLane from a foreign engine")
	}
	// Written from lane context, read only at the delivery barrier: the
	// round's WaitGroup orders the write before every read.
	if e.now < g.downAt[e.lane] {
		g.downAt[e.lane] = e.now
	}
}

// LaneDown reports whether lane i is down as of time t: crashed via
// CrashLane, or inside a scheduled outage window. Outages are static, so
// the answer is a pure function of (lane, t) — valid from any context.
func (g *ShardGroup) LaneDown(i int, t Time) bool {
	if t >= g.downAt[i] {
		return true
	}
	for _, o := range g.outages[i] {
		if t >= o.from && t < o.until {
			return true
		}
	}
	return false
}

// SetOutage declares a scheduled down-window of a lane: down at from,
// reincarnated at until (use a crash event plus CrashLane for a node
// that never comes back). Windows of one lane must not overlap. Outages
// are fixed for the run — declare them before Run, in ascending order.
func (g *ShardGroup) SetOutage(lane int, from, until Time) {
	if from >= until {
		panic(fmt.Sprintf("sim: SetOutage(%d, %v, %v): empty window", lane, from, until))
	}
	if n := len(g.outages[lane]); n > 0 && g.outages[lane][n-1].until > from {
		panic(fmt.Sprintf("sim: SetOutage(%d): window at %v overlaps the previous one", lane, from))
	}
	g.outages[lane] = append(g.outages[lane], laneOutage{from, until})
	g.churn = true
}

// IncarnationAt reports lane i's incarnation number as of time t: the
// count of completed outage windows. A message whose endpoint
// incarnations differ between send and arrival crossed a reincarnation
// and is stale. Pure function of the static outage table.
func (g *ShardGroup) IncarnationAt(i int, t Time) int64 {
	var n int64
	for _, o := range g.outages[i] {
		if o.until <= t {
			n++
		}
	}
	return n
}

// staleMsg reports whether m crossed a reincarnation of either endpoint
// between send and its arrival at time now.
func (g *ShardGroup) staleMsg(m *shardMsg, now Time) bool {
	return g.IncarnationAt(m.src, m.sentAt) != g.IncarnationAt(m.src, now) ||
		g.IncarnationAt(m.dst, m.sentAt) != g.IncarnationAt(m.dst, now)
}

// OnLaneTransition registers an observer of scheduled lane outages,
// invoked in the affected lane's own context at the down and up edges
// (via NotifyLaneTransition events booked by the fault installer).
// Register before Run.
func (g *ShardGroup) OnLaneTransition(fn func(lane int, down bool)) {
	g.onTrans = append(g.onTrans, fn)
}

// NotifyLaneTransition runs the registered lane-transition observers.
// Call from the affected lane's own simulation context, at the outage
// edge the observers are being told about.
func (g *ShardGroup) NotifyLaneTransition(lane int, down bool) {
	for _, fn := range g.onTrans {
		fn(lane, down)
	}
}

// Send stages a cross-lane message: fn runs in dst's engine context at
// src.Now()+delay. delay must be at least the declared lookahead of the
// (src, dst) link. Unreliable: the installed MessageFilter (fault
// injection) may drop, duplicate or delay it, and messages to a crashed
// lane are dropped. Size is the modeled payload size, recorded on fault
// trace events.
//
// fn must not park. Delivery order among all messages with equal
// arrival time is deterministic: sorted by source lane, then by send
// order within the source lane.
func (g *ShardGroup) Send(src *Engine, dst int, delay Duration, size int64, fn func()) {
	g.send(src, dst, delay, size, false, fn, nil)
}

// SendReliable is Send exempt from the fault filter (crashed
// destinations still drop). It models control-plane traffic that rides
// the self-healing reliable transport — barrier arrivals, termination
// reports — whose loss the application protocols do not model.
func (g *ShardGroup) SendReliable(src *Engine, dst int, delay Duration, size int64, fn func()) {
	g.send(src, dst, delay, size, true, fn, nil)
}

// SendAction is Send with a pooled Action payload instead of a closure:
// a.Run executes in dst's engine context at delivery time. Combined with
// the pooled arrival records at the delivery barrier, a SendAction moves
// a message across lanes without touching the allocator. Note that fault
// injection may duplicate unreliable messages, in which case a.Run
// executes once per delivery — actions on unreliable sends must tolerate
// re-entry (the pooled transports in internal/fabric use idempotent
// stages or per-delivery continuation records).
func (g *ShardGroup) SendAction(src *Engine, dst int, delay Duration, size int64, a Action) {
	g.send(src, dst, delay, size, false, nil, a)
}

// SendReliableAction is SendAction exempt from the fault filter, like
// SendReliable.
func (g *ShardGroup) SendReliableAction(src *Engine, dst int, delay Duration, size int64, a Action) {
	g.send(src, dst, delay, size, true, nil, a)
}

func (g *ShardGroup) send(src *Engine, dst int, delay Duration, size int64, reliable bool, fn func(), act Action) {
	s := src.lane
	if src.group != g {
		panic("sim: Send from an engine outside this ShardGroup")
	}
	if dst < 0 || dst >= len(g.lanes) {
		panic(fmt.Sprintf("sim: Send to lane %d of %d", dst, len(g.lanes)))
	}
	if dst == s {
		panic(fmt.Sprintf("sim: Send from lane %d to itself (use After)", s))
	}
	la := g.look[s][dst]
	if la == 0 {
		panic(fmt.Sprintf("sim: Send over undeclared link %d -> %d", s, dst))
	}
	if delay < la {
		panic(fmt.Sprintf("sim: Send %d -> %d with delay %v below lookahead %v (conservative window violated)",
			s, dst, delay, la))
	}
	m := shardMsg{at: src.now + delay, sentAt: src.now, src: s, dst: dst,
		size: size, reliable: reliable, fn: fn, act: act}
	if g.filter != nil && !reliable {
		m.verdict, m.extra = g.filter(s, dst, src.now, size, src.rng)
		if m.verdict == MsgDelay {
			m.at += m.extra // still ≥ the window edge: delay only adds
		}
	}
	g.seqs[s]++
	m.seq = g.seqs[s]
	g.outbox[s] = append(g.outbox[s], m)
}

// Run drives the group to completion: deliver staged messages, compute
// LBTS, advance every lane with work through the window on the worker
// pool, merge the lanes' trace buffers, repeat until no events remain
// anywhere. It returns a deadlock error if live processes remain parked
// across all lanes with nothing in flight. A panic inside any lane is
// re-raised with its origin noted.
func (g *ShardGroup) Run() error {
	if g.ran {
		return fmt.Errorf("sim: ShardGroup.Run called twice")
	}
	g.ran = true
	for {
		g.deliver()
		minNext := maxTime
		any := false
		for _, e := range g.lanes {
			if t, ok := e.nextEventAt(); ok {
				any = true
				if t < minNext {
					minNext = t
				}
			}
		}
		if !any {
			break
		}
		lbts := maxTime
		if g.minLook > 0 && minNext < maxTime-g.minLook {
			lbts = minNext + g.minLook
		}
		g.rounds++
		g.round(lbts)
		g.mergeTrace()
		for _, e := range g.lanes {
			e.repanic() // no-op unless the round recorded a panic
		}
	}
	var stuck []string
	for i, e := range g.lanes {
		if e.nLive > e.nDaemon {
			for _, s := range e.stuckProcs() {
				stuck = append(stuck, fmt.Sprintf("lane%d/%s", i, s))
			}
		}
	}
	if len(stuck) > 0 {
		return fmt.Errorf("sim: shard deadlock after %d rounds: %d stuck: %v",
			g.rounds, len(stuck), stuck)
	}
	return nil
}

// deliver moves every staged message into its destination lane's heap,
// in globally sorted (time, source lane, source sequence) order, so
// equal-time deliveries get destination-heap sequence numbers — and
// therefore execution order — independent of worker count. Runs in
// group context between rounds.
func (g *ShardGroup) deliver() {
	all := g.scratch[:0]
	for s := range g.outbox {
		all = append(all, g.outbox[s]...)
		g.outbox[s] = g.outbox[s][:0]
	}
	if len(all) == 0 {
		g.scratch = all
		return
	}
	g.sent += int64(len(all))
	// slices.SortFunc rather than sort.Slice: the generic sort neither
	// boxes the slice nor builds a reflect swapper, keeping the delivery
	// barrier allocation-free. The key (at, src, seq) is a total order —
	// seq is unique per source lane — so the unstable sort is still
	// deterministic.
	slices.SortFunc(all, func(a, b shardMsg) int {
		if a.at != b.at {
			if a.at < b.at {
				return -1
			}
			return 1
		}
		if a.src != b.src {
			return a.src - b.src
		}
		if a.seq != b.seq {
			if a.seq < b.seq {
				return -1
			}
			return 1
		}
		return 0
	})
	for i := range all {
		m := all[i]
		// The down-check runs at execution time in the destination lane,
		// not here: a crash event inside the upcoming window may precede
		// the arrival, and downAt[dst] is only written from lane dst's own
		// context, so the read is race-free there. Each scheduled delivery
		// gets its own pooled arrival record (a duplicate gets two), so a
		// record is consumed exactly once and returns to the pool when it
		// runs.
		switch m.verdict {
		case MsgDuplicate:
			g.stageArrival(m, "duplicate")
			g.stageArrival(m, "")
		case MsgDelay:
			g.stageArrival(m, "delay")
		default: // MsgDeliver and MsgDrop
			g.stageArrival(m, "")
		}
	}
	// Clear retained closures before reuse.
	for i := range all {
		all[i] = shardMsg{}
	}
	g.scratch = all[:0]
}

// stageArrival schedules one delivery of m on its destination lane via a
// pooled arrival record. Runs in group context at the delivery barrier.
func (g *ShardGroup) stageArrival(m shardMsg, aux string) {
	a := g.arrPool[m.dst].Get()
	a.g = g
	a.m = m
	a.aux = aux
	g.lanes[m.dst].scheduleAction(m.at, a)
}

// arrival is the pooled execution record for one cross-lane delivery.
// Run executes in the destination lane's context; it releases itself
// back to that lane's pool before invoking the payload so a delivery
// chain reuses a single record.
type arrival struct {
	g   *ShardGroup
	m   shardMsg
	aux string
}

func (a *arrival) Run() {
	g, m, aux := a.g, a.m, a.aux
	dst := g.lanes[m.dst]
	a.g = nil
	a.m = shardMsg{}
	a.aux = ""
	g.arrPool[m.dst].Put(a)
	if m.verdict == MsgDrop {
		dst.traceShardFault("drop", m.src, m.dst, m.size)
		return
	}
	if g.LaneDown(m.dst, dst.now) {
		dst.traceShardFault("down-drop", m.src, m.dst, m.size)
		return
	}
	// Membership-epoch fence: an unreliable message that left before a
	// reincarnation of either endpoint belongs to a previous life and
	// must not touch the new one. Reliable control traffic is exempt —
	// it models the self-healing transport whose retransmissions carry
	// fresh epochs (see fabric.ShardPort's reply cache).
	if g.churn && !m.reliable && g.staleMsg(&m, dst.now) {
		dst.traceShardFault("stale-drop", m.src, m.dst, m.size)
		return
	}
	if aux != "" {
		dst.traceShardFault(aux, m.src, m.dst, m.size)
	}
	if m.act != nil {
		m.act.Run()
		return
	}
	m.fn()
}

// ArrivalPoolStats sums the free-list accounting of every lane's arrival
// pool. At quiescence Outstanding() must be zero: each staged delivery
// consumed exactly one record and returned it.
func (g *ShardGroup) ArrivalPoolStats() PoolStats {
	var s PoolStats
	for i := range g.arrPool {
		s = s.Add(g.arrPool[i].Stats())
	}
	return s
}

// traceShardFault records one fault-injection outcome on a cross-lane
// message, in the destination lane's stream at delivery time.
func (e *Engine) traceShardFault(what string, src, dst int, size int64) {
	if e.tracer == nil {
		return
	}
	e.emit(trace.KInstant, trace.EngineProc, trace.CatComm, what,
		trace.ClassFault, size, trace.PackEndpoints(0, 0, src, dst))
}

// round advances every lane holding an event below limit through the
// window. With one worker the lanes run inline in lane order; otherwise
// workers pull lanes off a shared cursor. Lanes share no state during a
// round, so assignment order cannot affect the simulation; the
// WaitGroup barrier orders every lane's writes before the group reads
// them back.
func (g *ShardGroup) round(limit Time) {
	run := g.runnable[:0]
	for _, e := range g.lanes {
		if t, ok := e.nextEventAt(); ok && t < limit {
			run = append(run, e)
		}
	}
	g.runnable = run[:0] // keep capacity; contents dead after the round
	w := g.workers
	if w > len(run) {
		w = len(run)
	}
	if w <= 1 {
		for _, e := range run {
			e.runWindow(limit)
		}
		return
	}
	g.roundParallel(run, w, limit)
}

// roundParallel is the multi-worker window body, split out of round so
// the worker closures capture this call's parameters instead of round's
// locals — otherwise escape analysis heap-allocates round's work list on
// every call, including single-worker rounds that never spawn a
// goroutine.
func (g *ShardGroup) roundParallel(run []*Engine, w int, limit Time) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(run) {
					return
				}
				run[i].runWindow(limit)
			}
		}()
	}
	wg.Wait()
}

// mergeTrace replays the round's per-lane buffers into the sink,
// k-way merged by (time, lane), then resets them.
func (g *ShardGroup) mergeTrace() {
	if g.sink == nil {
		return
	}
	for i, b := range g.bufs {
		g.streams[i] = b.Events()
	}
	trace.MergeStreams(g.sink, g.streams)
	for _, b := range g.bufs {
		b.Reset()
	}
}

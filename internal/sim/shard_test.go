package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/trace"
)

// buildPingPong wires a 2-lane group bouncing a counter back and forth
// n times over a link with latency la.
func buildPingPong(t *testing.T, workers, n int, la Duration, sink trace.Tracer) *ShardGroup {
	t.Helper()
	g := NewShardGroup(7, 2, sink)
	g.SetWorkers(workers)
	g.SetLookahead(0, 1, la)
	g.SetLookahead(1, 0, la)
	count := 0
	var volley func(from int)
	volley = func(from int) {
		count++
		if count >= n {
			return
		}
		to := 1 - from
		src := g.Lane(from)
		g.Send(src, to, la, 8, func() { volley(to) })
	}
	g.Lane(0).Go("serve", func(p *Proc) {
		p.Advance(10)
		volley(0)
	})
	return g
}

func TestShardPingPong(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		g := buildPingPong(t, workers, 100, 500*Nanosecond, nil)
		if err := g.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if g.Messages() != 99 {
			t.Fatalf("workers=%d: %d messages, want 99", workers, g.Messages())
		}
		// 100 volleys: the first at t=10, each later one 500ns after its
		// predecessor.
		want := Time(10 + 99*500)
		if got := g.Lane(1).Now(); got != want {
			t.Fatalf("workers=%d: lane1 clock %v, want %v", workers, got, want)
		}
	}
}

// TestShardWorkerCountInvariance is the heart of the determinism
// contract: the merged trace stream (hence the TraceDigest) must be
// byte-identical at any worker count.
func TestShardWorkerCountInvariance(t *testing.T) {
	digestAt := func(workers int) (uint64, int64) {
		d := trace.NewDigest()
		g := buildManyLanes(t, workers, trace.Clocked(d))
		if err := g.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return d.Sum64(), d.Events()
	}
	ref, refN := digestAt(1)
	if refN == 0 {
		t.Fatal("reference run traced no events")
	}
	for _, workers := range []int{2, 4, 8} {
		got, n := digestAt(workers)
		if got != ref || n != refN {
			t.Fatalf("workers=%d: digest %016x (%d events), want %016x (%d events)",
				workers, got, n, ref, refN)
		}
	}
}

// buildManyLanes builds an 8-lane group where every lane runs a proc
// that computes, draws from the lane RNG, and scatters messages to
// random peers — enough cross-lane chatter to expose any
// worker-count-dependent ordering.
func buildManyLanes(t *testing.T, workers int, sink trace.Tracer) *ShardGroup {
	t.Helper()
	const lanes = 8
	g := NewShardGroup(42, lanes, sink)
	g.SetWorkers(workers)
	for i := 0; i < lanes; i++ {
		for j := 0; j < lanes; j++ {
			if i != j {
				g.SetLookahead(i, j, Duration(300+50*((i+j)%3)))
			}
		}
	}
	for i := 0; i < lanes; i++ {
		lane := i
		e := g.Lane(lane)
		e.Go(fmt.Sprintf("chatter%d", lane), func(p *Proc) {
			for step := 0; step < 40; step++ {
				p.Advance(Duration(50 + e.Rand().Intn(200)))
				dst := e.Rand().Intn(lanes - 1)
				if dst >= lane {
					dst++
				}
				hops := int64(step)
				g.Send(e, dst, 600, 64, func() {
					_ = hops
					g.Lane(dst).TraceInstant("test", "hop", "", hops, int64(lane))
				})
			}
		})
	}
	return g
}

// TestShardLookaheadFloor covers the zero-latency-link edge: declared
// lookaheads clamp to LookaheadFloor, a send below the clamped bound
// panics, and a send at the floor still completes.
func TestShardLookaheadFloor(t *testing.T) {
	g := NewShardGroup(1, 2, nil)
	g.SetLookahead(0, 1, 0) // zero-latency link clamps to the floor
	if la := g.Lookahead(0, 1); la != LookaheadFloor {
		t.Fatalf("Lookahead(0,1) = %v, want floor %v", la, LookaheadFloor)
	}
	delivered := false
	g.Lane(0).Go("root", func(p *Proc) {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Send with delay 0 over a floor-clamped link did not panic")
				}
			}()
			g.Send(g.Lane(0), 1, 0, 8, func() {})
		}()
		g.Send(g.Lane(0), 1, LookaheadFloor, 8, func() { delivered = true })
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !delivered {
		t.Fatal("floor-delay message not delivered")
	}
	if g.Lane(1).Now() != LookaheadFloor {
		t.Fatalf("lane1 clock %v, want %v", g.Lane(1).Now(), LookaheadFloor)
	}
}

// TestShardSimultaneousArrivals covers the tie-break edge: messages
// from different source lanes arriving at one destination at the same
// timestamp execute in (source lane, source sequence) order, at any
// worker count.
func TestShardSimultaneousArrivals(t *testing.T) {
	run := func(workers int) string {
		var order []string
		g := NewShardGroup(3, 4, nil)
		g.SetWorkers(workers)
		for src := 1; src < 4; src++ {
			g.SetLookahead(src, 0, 100)
			e, s := g.Lane(src), src
			// Two messages per source, sent in reverse sequence order of
			// payload, all arriving at exactly t=100.
			e.Go(fmt.Sprintf("src%d", s), func(p *Proc) {
				g.Send(e, 0, 100, 8, func() { order = append(order, fmt.Sprintf("%d.a", s)) })
				g.Send(e, 0, 100, 8, func() { order = append(order, fmt.Sprintf("%d.b", s)) })
			})
		}
		if err := g.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return strings.Join(order, " ")
	}
	want := "1.a 1.b 2.a 2.b 3.a 3.b"
	for _, workers := range []int{1, 4} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d: arrival order %q, want %q", workers, got, want)
		}
	}
}

// TestShardIdleLaneMinClock covers the idle-shard edge: a lane whose
// clock is the global minimum but whose heap is empty (it is waiting
// for a message) must not stall or distort the LBTS computation, which
// uses next-event times rather than lane clocks.
func TestShardIdleLaneMinClock(t *testing.T) {
	g := NewShardGroup(5, 3, nil)
	g.SetLookahead(1, 0, 200)
	g.SetLookahead(1, 2, 200)
	g.SetLookahead(2, 1, 200)
	woken := false
	var q WaitQueue
	g.Lane(0).Go("sleeper", func(p *Proc) {
		// Parks immediately with nothing scheduled: lane 0's clock stays 0
		// — the minimum — while lanes 1 and 2 run far ahead.
		q.Wait(p, "mail")
		woken = true
		if p.Now() < 10000 {
			t.Errorf("sleeper woke at %v, want >= 10us", p.Now())
		}
	})
	g.Lane(1).Go("worker", func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Advance(100)
			g.Send(p.Engine(), 2, 200, 8, func() {})
		}
		p.Advance(10000)
		g.Send(p.Engine(), 0, 200, 8, func() { q.WakeOne() })
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("sleeper never woke")
	}
	// The idle lane must not have forced single-event windows: the run is
	// ~60 windows of lane-1 work plus delivery rounds, far below the
	// paranoid bound.
	if g.Rounds() > 200 {
		t.Fatalf("%d rounds for ~52 events: idle lane is throttling LBTS", g.Rounds())
	}
}

// TestShardCrashInFlight covers the crash edge: a message in flight to
// a lane that crashes before the arrival time is dropped, and the drop
// is identical at any worker count.
func TestShardCrashInFlight(t *testing.T) {
	run := func(workers int) (delivered bool, digest uint64) {
		d := trace.NewDigest()
		g := NewShardGroup(9, 2, d)
		g.SetWorkers(workers)
		g.SetLookahead(0, 1, 100)
		g.Lane(0).Go("sender", func(p *Proc) {
			p.Advance(50)
			// In flight during the crash: sent at 50, arrives at 150,
			// destination dies at 120.
			g.Send(p.Engine(), 1, 100, 8, func() { delivered = true })
		})
		g.Lane(1).Go("victim", func(p *Proc) {
			p.Advance(120)
			g.CrashLane(p.Engine())
		})
		if err := g.Run(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return delivered, d.Sum64()
	}
	del1, dig1 := run(1)
	if del1 {
		t.Fatal("message delivered to a lane that crashed before arrival")
	}
	del4, dig4 := run(4)
	if del4 || dig4 != dig1 {
		t.Fatalf("workers=4: delivered=%v digest=%016x, want false/%016x", del4, dig4, dig1)
	}
	// A message arriving before the crash instant still lands.
	g := NewShardGroup(9, 2, nil)
	g.SetLookahead(0, 1, 100)
	early := false
	g.Lane(0).Go("sender", func(p *Proc) {
		g.Send(p.Engine(), 1, 100, 8, func() { early = true })
	})
	g.Lane(1).Go("victim", func(p *Proc) {
		p.Advance(120)
		g.CrashLane(p.Engine())
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if !early {
		t.Fatal("pre-crash message was dropped")
	}
}

// TestShardSendContract covers the conservative-send panics: an
// undeclared link, a self-send, and running a lane engine directly.
func TestShardSendContract(t *testing.T) {
	g := NewShardGroup(1, 3, nil)
	g.SetLookahead(0, 1, 100)
	g.Lane(0).Go("root", func(p *Proc) {
		mustPanic(t, "undeclared link", func() { g.Send(p.Engine(), 2, 100, 8, func() {}) })
		mustPanic(t, "self send", func() { g.Send(p.Engine(), 0, 100, 8, func() {}) })
		g.Send(p.Engine(), 1, 100, 8, func() {})
	})
	if err := g.Lane(0).Run(); err == nil {
		t.Fatal("Run on a lane engine did not error")
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(); err == nil {
		t.Fatal("second ShardGroup.Run did not error")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

// TestShardDeadlock: parked procs with empty heaps across all lanes
// produce a group-level deadlock error naming the lane.
func TestShardDeadlock(t *testing.T) {
	g := NewShardGroup(1, 2, nil)
	g.SetLookahead(0, 1, 100)
	var q WaitQueue
	g.Lane(1).Go("stuck", func(p *Proc) { q.Wait(p, "never") })
	err := g.Run()
	if err == nil || !strings.Contains(err.Error(), "lane1/stuck") {
		t.Fatalf("deadlock error = %v, want mention of lane1/stuck", err)
	}
}

// TestShardMessageFilter exercises drop, duplicate and delay verdicts
// and checks that reliable sends bypass the filter.
func TestShardMessageFilter(t *testing.T) {
	g := NewShardGroup(1, 2, nil)
	g.SetLookahead(0, 1, 100)
	verdicts := []MessageVerdict{MsgDrop, MsgDuplicate, MsgDelay, MsgDeliver}
	i := 0
	g.SetMessageFilter(func(src, dst int, at Time, size int64, rng *rand.Rand) (MessageVerdict, Duration) {
		v := verdicts[i%len(verdicts)]
		i++
		return v, 40
	})
	var got []string
	note := func(tag string) func() {
		e := g.Lane(1)
		return func() { got = append(got, fmt.Sprintf("%s@%d", tag, e.Now())) }
	}
	g.Lane(0).Go("root", func(p *Proc) {
		e := p.Engine()
		g.Send(e, 1, 100, 8, note("dropped"))
		g.Send(e, 1, 100, 8, note("dup"))
		g.Send(e, 1, 100, 8, note("late"))
		g.Send(e, 1, 100, 8, note("plain"))
		g.SendReliable(e, 1, 100, 8, note("ctl"))
	})
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
	want := "dup@100 dup@100 plain@100 ctl@100 late@140"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("deliveries %q, want %q", s, want)
	}
}

// TestShardLaneSeedsDiffer: lanes must draw from independent streams.
func TestShardLaneSeedsDiffer(t *testing.T) {
	g := NewShardGroup(11, 3, nil)
	a := g.Lane(0).Rand().Int63()
	b := g.Lane(1).Rand().Int63()
	c := g.Lane(2).Rand().Int63()
	if a == b || b == c || a == c {
		t.Fatalf("lane RNG streams collide: %d %d %d", a, b, c)
	}
}

// TestShardProcIDStride: proc ids embed the lane so merged streams have
// stable, collision-free track ids.
func TestShardProcIDStride(t *testing.T) {
	g := NewShardGroup(1, 2, nil)
	p0 := g.Lane(0).Go("a", func(p *Proc) {})
	p1 := g.Lane(1).Go("b", func(p *Proc) {})
	if p0.ID() != 0 || p1.ID() != LaneStride {
		t.Fatalf("proc ids %d, %d; want 0, %d", p0.ID(), p1.ID(), LaneStride)
	}
	if err := g.Run(); err != nil {
		t.Fatal(err)
	}
}

package sim

// Mutex is a virtual-time mutual-exclusion lock with FIFO handoff.
type Mutex struct {
	holder *Proc
	q      WaitQueue
}

// Lock acquires the mutex, suspending p until it is available. A
// contended acquisition is traced as a "sim/mutex" span covering the
// wait.
func (m *Mutex) Lock(p *Proc) {
	if m.holder == nil {
		m.holder = p
		return
	}
	end := p.TraceSpan("sim", "mutex")
	for m.holder != nil {
		m.q.Wait(p, "mutex")
	}
	m.holder = p
	end()
}

// TryLock acquires the mutex if free, reporting success. It never blocks.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.holder != nil {
		return false
	}
	m.holder = p
	return true
}

// Unlock releases the mutex and wakes the longest waiter, if any. It
// panics if p does not hold the lock.
func (m *Mutex) Unlock(p *Proc) {
	if m.holder != p {
		panic("sim: Mutex.Unlock by non-holder " + p.Name())
	}
	m.holder = nil
	m.q.WakeOne()
}

// Holder reports the current owner, or nil.
func (m *Mutex) Holder() *Proc { return m.holder }

// Semaphore is a counting semaphore in virtual time.
type Semaphore struct {
	count int
	q     WaitQueue
}

// NewSemaphore returns a semaphore with an initial count.
func NewSemaphore(count int) *Semaphore { return &Semaphore{count: count} }

// Acquire takes one unit, suspending p until available. A contended
// acquisition is traced as a "sim/semaphore" span covering the wait.
func (s *Semaphore) Acquire(p *Proc) {
	if s.count > 0 {
		s.count--
		return
	}
	end := p.TraceSpan("sim", "semaphore")
	for s.count <= 0 {
		s.q.Wait(p, "semaphore")
	}
	s.count--
	end()
}

// Release returns one unit and wakes a waiter.
func (s *Semaphore) Release() {
	s.count++
	s.q.WakeOne()
}

// Count reports the available units.
func (s *Semaphore) Count() int { return s.count }

// Barrier synchronizes a fixed population of n processes. It is reusable
// across generations.
type Barrier struct {
	n       int
	arrived int
	q       WaitQueue
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Wait blocks p until all n participants have arrived.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.q.WakeAll()
		return
	}
	b.q.Wait(p, "barrier")
}

// N reports the participant count.
func (b *Barrier) N() int { return b.n }

// Mailbox is an unbounded FIFO channel between simulated processes.
type Mailbox struct {
	q       []any
	waiters WaitQueue
}

// Send appends v and wakes one waiting receiver. It never blocks.
func (m *Mailbox) Send(v any) {
	m.q = append(m.q, v)
	m.waiters.WakeOne()
}

// Recv removes and returns the oldest message, suspending p while empty.
func (m *Mailbox) Recv(p *Proc) any {
	for len(m.q) == 0 {
		m.waiters.Wait(p, "mailbox")
	}
	v := m.q[0]
	copy(m.q, m.q[1:])
	m.q[len(m.q)-1] = nil
	m.q = m.q[:len(m.q)-1]
	return v
}

// TryRecv removes the oldest message if one exists.
func (m *Mailbox) TryRecv() (any, bool) {
	if len(m.q) == 0 {
		return nil, false
	}
	v := m.q[0]
	copy(m.q, m.q[1:])
	m.q[len(m.q)-1] = nil
	m.q = m.q[:len(m.q)-1]
	return v, true
}

// Len reports the queued message count.
func (m *Mailbox) Len() int { return len(m.q) }

// Event is a one-shot completion flag that any number of processes can
// wait on; the counterpart of a non-blocking operation handle.
type Event struct {
	fired bool
	q     WaitQueue
}

// Fire marks the event complete and wakes all waiters. Firing twice is a
// no-op.
func (ev *Event) Fire() {
	if ev.fired {
		return
	}
	ev.fired = true
	ev.q.WakeAll()
}

// Fired reports whether the event has completed.
func (ev *Event) Fired() bool { return ev.fired }

// Reset re-arms a fired event so object pools can recycle the structure
// it is embedded in, keeping the wait-queue ring allocation across
// reuses. The caller must guarantee the previous operation fully
// completed: resetting with processes still parked is a pooling bug and
// panics.
func (ev *Event) Reset() {
	if ev.q.Len() != 0 {
		panic("sim: Event.Reset with parked waiters")
	}
	ev.fired = false
}

// Wait suspends p until the event fires. Returns immediately if already
// fired.
func (ev *Event) Wait(p *Proc) {
	if !ev.fired {
		ev.q.Wait(p, "event")
	}
}

// WaitTimeout suspends p until the event fires or d elapses, reporting
// whether the event fired. On timeout p is removed from the event's wait
// queue, so a later Fire does not produce a stale wake. The timer event
// stays on the heap until its time arrives (where it no-ops if the event
// fired first), which can extend a run's final virtual time; callers on
// fault-free fast paths should use Wait.
//
// The fired and timed-out cases are distinguishable even when they
// coincide: whichever was scheduled first at that instant wins, which is
// deterministic under the engine's FIFO event order.
func (ev *Event) WaitTimeout(p *Proc, d Duration) bool {
	if ev.fired {
		return true
	}
	expired := false
	p.eng.After(d, func() {
		if ev.fired || expired {
			return
		}
		expired = true
		if ev.q.Remove(p) {
			p.eng.unpark(p)
		}
	})
	for !ev.fired && !expired {
		ev.q.Wait(p, "event-timeout")
	}
	return ev.fired
}

package sim

import (
	"fmt"
	"testing"
)

func TestMutexExclusionAndFIFO(t *testing.T) {
	e := New(1)
	var mu Mutex
	var order []string
	inside := 0
	for i := 0; i < 4; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			mu.Lock(p)
			inside++
			if inside != 1 {
				t.Errorf("mutual exclusion violated: %d inside", inside)
			}
			order = append(order, p.Name())
			p.Advance(10)
			inside--
			mu.Unlock(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "[w0 w1 w2 w3]"
	if fmt.Sprint(order) != want {
		t.Errorf("lock handoff order = %v, want %s", order, want)
	}
}

func TestMutexTryLock(t *testing.T) {
	e := New(1)
	var mu Mutex
	e.Go("a", func(p *Proc) {
		if !mu.TryLock(p) {
			t.Error("TryLock on free mutex must succeed")
		}
		p.Advance(50)
		mu.Unlock(p)
	})
	e.Go("b", func(p *Proc) {
		p.Advance(10)
		if mu.TryLock(p) {
			t.Error("TryLock on held mutex must fail")
		}
		p.Advance(100)
		if !mu.TryLock(p) {
			t.Error("TryLock after release must succeed")
		}
		mu.Unlock(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexUnlockByNonHolderPanics(t *testing.T) {
	e := New(1)
	var mu Mutex
	e.Go("a", func(p *Proc) { mu.Lock(p) })
	e.Go("b", func(p *Proc) {
		p.Advance(1)
		mu.Unlock(p) // not the holder
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unlock by non-holder")
		}
	}()
	e.Run()
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := New(1)
	sem := NewSemaphore(2)
	active, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			sem.Acquire(p)
			active++
			if active > peak {
				peak = active
			}
			p.Advance(10)
			active--
			sem.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Errorf("peak concurrency = %d, want 2", peak)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	e := New(1)
	b := NewBarrier(3)
	var releases []Time
	for i, d := range []Duration{5, 20, 50} {
		dd := d
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Advance(dd)
			b.Wait(p)
			releases = append(releases, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range releases {
		if r != 50 {
			t.Errorf("release at %v, want 50 (latest arrival)", r)
		}
	}
}

func TestBarrierReusableAcrossGenerations(t *testing.T) {
	e := New(1)
	b := NewBarrier(2)
	counts := [2]int{}
	for i := 0; i < 2; i++ {
		idx := i
		e.Go(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 5; round++ {
				p.Advance(Duration(1 + idx*3))
				b.Wait(p)
				counts[idx]++
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Errorf("rounds completed = %v, want [5 5]", counts)
	}
}

func TestMailboxFIFOAndBlocking(t *testing.T) {
	e := New(1)
	var mb Mailbox
	var got []int
	var recvTime Time
	e.Go("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p).(int))
		}
		recvTime = p.Now()
	})
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Advance(10)
			mb.Send(i)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != "[0 1 2]" {
		t.Errorf("messages = %v, want [0 1 2]", got)
	}
	if recvTime != 30 {
		t.Errorf("last receive at %v, want 30", recvTime)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	var mb Mailbox
	if _, ok := mb.TryRecv(); ok {
		t.Error("TryRecv on empty mailbox must fail")
	}
	mb.Send("x")
	v, ok := mb.TryRecv()
	if !ok || v != "x" {
		t.Errorf("TryRecv = %v,%v; want x,true", v, ok)
	}
	if mb.Len() != 0 {
		t.Errorf("Len = %d after drain", mb.Len())
	}
}

func TestEventWaitBeforeAndAfterFire(t *testing.T) {
	e := New(1)
	var ev Event
	var wokeAt Time = -1
	e.Go("waiter", func(p *Proc) {
		ev.Wait(p)
		wokeAt = p.Now()
		ev.Wait(p) // already fired: must not block
		ev.Fire()  // double fire: no-op
	})
	e.Go("firer", func(p *Proc) {
		p.Advance(33)
		ev.Fire()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 33 {
		t.Errorf("waiter woke at %v, want 33", wokeAt)
	}
	if !ev.Fired() {
		t.Error("event should report fired")
	}
}

// Package sim provides a deterministic, sequential discrete-event
// simulation engine. Simulated execution contexts (UPC threads, sub-threads,
// MPI ranks) are goroutines driven as coroutines: exactly one runs at a
// time, and each yields to the engine whenever it performs a timed action
// (a compute charge, a message transfer, a barrier, a lock acquire). The
// engine advances a virtual clock through an event heap; ties are broken by
// sequence number so runs are bit-for-bit reproducible.
package sim

import "fmt"

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring time.Duration granularity.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros reports t as floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.6gs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.6gms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.6gus", t.Micros())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// FromSeconds converts floating-point seconds to a Duration, rounding to
// the nearest nanosecond.
func FromSeconds(s float64) Duration {
	return Duration(s*float64(Second) + 0.5)
}

// TransferTime is the virtual time needed to move size bytes at rate
// bytesPerSec. A zero or negative rate yields zero time (an infinitely
// fast resource), which callers use for "free" paths.
func TransferTime(size int64, bytesPerSec float64) Duration {
	if bytesPerSec <= 0 || size <= 0 {
		return 0
	}
	return FromSeconds(float64(size) / bytesPerSec)
}

package sim

import "testing"

// TestWaitTimeoutFires checks the timeout path: the waiter resumes after
// exactly the timeout duration and reports failure.
func TestWaitTimeoutFires(t *testing.T) {
	e := New(1)
	ev := &Event{}
	var got bool
	var woke Time
	e.Go("w", func(p *Proc) {
		got = ev.WaitTimeout(p, 500)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("WaitTimeout reported fired on an event nobody fires")
	}
	if woke != 500 {
		t.Errorf("woke at %d, want 500", woke)
	}
	if ev.q.Len() != 0 {
		t.Errorf("event queue retains %d waiters after timeout", ev.q.Len())
	}
}

// TestWaitTimeoutEventWins checks the success path: a fire before the
// deadline resumes the waiter immediately and the pending timer no-ops.
func TestWaitTimeoutEventWins(t *testing.T) {
	e := New(1)
	ev := &Event{}
	var got bool
	var woke Time
	e.Go("w", func(p *Proc) {
		got = ev.WaitTimeout(p, 1000)
		woke = p.Now()
		// Keep running past the timer's deadline: a stale timeout firing
		// would wake a queue entry that no longer exists.
		p.Advance(5000)
	})
	e.After(200, ev.Fire)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("WaitTimeout reported timeout though the event fired first")
	}
	if woke != 200 {
		t.Errorf("woke at %d, want 200", woke)
	}
}

// TestWaitTimeoutAlreadyFired checks the no-wait fast path.
func TestWaitTimeoutAlreadyFired(t *testing.T) {
	e := New(1)
	ev := &Event{}
	ev.Fire()
	var got bool
	var woke Time
	e.Go("w", func(p *Proc) {
		got = ev.WaitTimeout(p, 1000)
		woke = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !got || woke != 0 {
		t.Errorf("got=%v woke=%d, want immediate success at t=0", got, woke)
	}
}

// TestWaitTimeoutFiresExactlyOnce arms many timed waits on one event and
// counts resumptions: each waiter must resume exactly once, whether its
// own deadline or the fire came first.
func TestWaitTimeoutFiresExactlyOnce(t *testing.T) {
	e := New(1)
	ev := &Event{}
	resumed := make([]int, 8)
	for i := 0; i < 8; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			// Deadlines straddle the fire time (400): waiters 0..3 time out,
			// 4..7 see the event.
			ev.WaitTimeout(p, Duration(100*(i+1)))
			resumed[i]++
			p.Advance(10000) // outlive every pending timer
		})
	}
	e.After(401, ev.Fire)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, n := range resumed {
		if n != 1 {
			t.Errorf("waiter %d resumed %d times, want exactly 1", i, n)
		}
	}
}

// TestWaitQueueWaitTimeout checks both outcomes of a timed queue wait:
// the timer path resumes at the deadline and reports false; the wake
// path resumes at the wake and reports true, and the stale timer no-ops.
func TestWaitQueueWaitTimeout(t *testing.T) {
	e := New(1)
	var q WaitQueue
	var timedOut, wokeUp bool
	var tAt, wAt Time
	e.Go("timeout", func(p *Proc) {
		timedOut = !q.WaitTimeout(p, "test", 300)
		tAt = p.Now()
		p.Advance(10000)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || tAt != 300 {
		t.Errorf("timeout path: timedOut=%v at %d, want true at 300", timedOut, tAt)
	}
	if q.Len() != 0 {
		t.Errorf("queue retains %d waiters after timeout", q.Len())
	}

	e = New(1)
	var q2 WaitQueue
	e.Go("woken", func(p *Proc) {
		wokeUp = q2.WaitTimeout(p, "test", 1000)
		wAt = p.Now()
		p.Advance(10000) // outlive the pending timer
	})
	e.After(200, func() { q2.WakeAll() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !wokeUp || wAt != 200 {
		t.Errorf("wake path: woke=%v at %d, want true at 200", wokeUp, wAt)
	}
}

// TestWaitQueueRemove checks membership, FIFO preservation and slot
// clearing of the cancellation path.
func TestWaitQueueRemove(t *testing.T) {
	e := New(1)
	var q WaitQueue
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			q.Wait(p, "test")
			order = append(order, i)
		})
	}
	e.After(10, func() {
		if q.Len() != 3 {
			t.Errorf("queue length %d, want 3", q.Len())
		}
		// Remove the middle waiter; it must be woken explicitly.
		victim := q.buf[(q.head+1)&(len(q.buf)-1)]
		if !q.Remove(victim) {
			t.Error("Remove missed a queued process")
		}
		if q.Remove(victim) {
			t.Error("Remove found an already-removed process")
		}
		q.WakeAll()
		victim.eng.unpark(victim)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// FIFO of the remaining waiters is preserved: 0 then 2, and the
	// removed waiter 1 wakes via its explicit unpark after the WakeAll
	// scheduled ahead of it.
	if len(order) != 3 || order[0] != 0 || order[1] != 2 || order[2] != 1 {
		t.Errorf("wake order %v, want [0 2 1]", order)
	}
	for i, p := range q.buf {
		if p != nil {
			t.Errorf("queue slot %d retains a process reference", i)
		}
	}
}

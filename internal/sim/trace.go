package sim

import "repro/internal/trace"

// Tracing support. An engine optionally carries a trace.Tracer; when none
// is installed every hook below is a single nil check (verified
// allocation-free by TestNilTracerNoAlloc and BenchmarkTracerNil), so
// model code calls these unconditionally.

// SetTracer installs tr as the engine's event sink (nil disables
// tracing). Install before the simulation starts; swapping mid-run would
// leave sinks with unbalanced spans. Per-advance KClock events are only
// emitted when the sink opts in (see trace.Clocked); no built-in sink
// needs them, which keeps traced clock advances cheap.
func (e *Engine) SetTracer(tr trace.Tracer) {
	e.tracer = tr
	e.clock = trace.WantsClock(tr)
}

// Tracer reports the installed event sink, or nil.
func (e *Engine) Tracer() trace.Tracer { return e.tracer }

// Tracing reports whether an event sink is installed. Emitters computing
// a nontrivial payload (e.g. a queue occupancy) should guard on it.
func (e *Engine) Tracing() bool { return e.tracer != nil }

// emit stamps the current virtual time on an event and delivers it. The
// caller must have checked e.tracer != nil.
func (e *Engine) emit(k trace.Kind, proc int32, cat, name, aux string, arg, arg2 int64) {
	e.tracer.Emit(trace.Event{
		Time: int64(e.now), Kind: k, Proc: proc,
		Cat: cat, Name: name, Aux: aux, Arg: arg, Arg2: arg2,
	})
}

// TraceInstant emits a point event from engine context (completion
// callbacks); the event lands on the engine track.
func (e *Engine) TraceInstant(cat, name, aux string, arg, arg2 int64) {
	if e.tracer != nil {
		e.emit(trace.KInstant, trace.EngineProc, cat, name, aux, arg, arg2)
	}
}

// TraceInstant emits a point event on this process's track.
func (p *Proc) TraceInstant(cat, name, aux string, arg, arg2 int64) {
	if e := p.eng; e.tracer != nil {
		e.emit(trace.KInstant, int32(p.id), cat, name, aux, arg, arg2)
	}
}

// TraceCounter adds delta to the named trace counter.
func (p *Proc) TraceCounter(cat, name string, delta int64) {
	if e := p.eng; e.tracer != nil {
		e.emit(trace.KCounter, int32(p.id), cat, name, "", delta, 0)
	}
}

// noopEnd is the shared span closer of the untraced fast path: returning
// it keeps TraceSpan allocation-free when no tracer is installed.
var noopEnd = func() {}

// TraceSpan opens a named span on this process's track and returns its
// closer. Spans may nest; close them in LIFO order.
func (p *Proc) TraceSpan(cat, name string) func() {
	return p.TraceSpanArg(cat, name, "", 0)
}

// TraceSpanArg is TraceSpan with an auxiliary label and payload on the
// opening record.
func (p *Proc) TraceSpanArg(cat, name, aux string, arg int64) func() {
	e := p.eng
	if e.tracer == nil {
		return noopEnd
	}
	id := int32(p.id)
	e.emit(trace.KSpanBegin, id, cat, name, aux, arg, 0)
	return func() { e.emit(trace.KSpanEnd, id, cat, name, "", 0, 0) }
}

package sim

import (
	"testing"

	"repro/internal/trace"
)

// traceScenario runs a tiny two-proc simulation exercising spans,
// instants, counters, parks and resource waits on engine e.
func traceScenario(e *Engine) {
	var mu Mutex
	var srv Server
	e.Go("worker0", func(p *Proc) {
		end := p.TraceSpan("test", "phase")
		mu.Lock(p)
		p.Advance(10 * Microsecond)
		mu.Unlock(p)
		end()
		p.TraceCounter("test", "items", 3)
	})
	e.Go("worker1", func(p *Proc) {
		mu.Lock(p) // contends with worker0
		srv.Delay(p, 5*Microsecond)
		mu.Unlock(p)
		p.TraceInstant("test", "done", "ok", 1, 2)
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
}

func TestEngineLifecycleEvents(t *testing.T) {
	col := trace.NewCollector()
	e := New(42)
	e.SetTracer(col)
	traceScenario(e)

	if got := col.Count("sim", "spawn"); got != 2 {
		t.Errorf("spawn events = %d, want 2", got)
	}
	if got := col.Count("sim", "exit"); got != 2 {
		t.Errorf("exit events = %d, want 2", got)
	}
	if col.Count("sim", "park") == 0 || col.Count("sim", "unpark") == 0 {
		t.Error("no park/unpark events recorded")
	}
	if s := col.Span("test", "phase"); s.Count != 1 {
		t.Errorf("test/phase span count = %d, want 1", s.Count)
	}
	// worker1's contended Lock produces a sim/mutex span covering the wait.
	if s := col.Span("sim", "mutex"); s.Count != 1 || s.Total <= 0 {
		t.Errorf("sim/mutex span = %+v, want one with positive duration", s)
	}
	if got := col.Counter("items"); got != 3 {
		t.Errorf("items counter = %d, want 3", got)
	}
	if got := col.Count("test", "done"); got != 1 {
		t.Errorf("test/done instants = %d, want 1", got)
	}
	if got := col.Sum("test", "done"); got != 1 {
		t.Errorf("test/done Arg sum = %d, want 1", got)
	}
}

func TestTraceDeterministic(t *testing.T) {
	run := func() uint64 {
		d := trace.NewDigest()
		e := New(7)
		e.SetTracer(d)
		traceScenario(e)
		return d.Sum64()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed runs diverged: %016x vs %016x", a, b)
	}
	// A different seed alone keeps this scenario's schedule identical (no
	// Rand use), so perturb virtual time instead to prove sensitivity.
	d := trace.NewDigest()
	e := New(7)
	e.SetTracer(d)
	e.Go("extra", func(p *Proc) { p.Advance(1) })
	traceScenario(e)
	if d.Sum64() == a {
		t.Fatal("a different schedule produced the same digest")
	}
}

// TestNilTracerNoAlloc verifies the zero-cost fast path: with no tracer
// installed, every hook must be allocation-free.
func TestNilTracerNoAlloc(t *testing.T) {
	e := New(1)
	done := make(chan struct{})
	e.Go("probe", func(p *Proc) {
		allocs := testing.AllocsPerRun(100, func() {
			end := p.TraceSpan("cat", "name")
			end()
			end = p.TraceSpanArg("cat", "name", "aux", 1)
			end()
			p.TraceInstant("cat", "name", "aux", 1, 2)
			p.TraceCounter("cat", "name", 1)
			e.TraceInstant("cat", "name", "aux", 1, 2)
		})
		if allocs != 0 {
			t.Errorf("nil-tracer hooks allocated %.1f times per run, want 0", allocs)
		}
		close(done)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	<-done
}

// BenchmarkTracerNil measures the untraced hot path (nil-check only).
func BenchmarkTracerNil(b *testing.B) {
	benchTracer(b, nil)
}

// BenchmarkTracerCollector measures the same path with aggregation on.
func BenchmarkTracerCollector(b *testing.B) {
	benchTracer(b, trace.NewCollector())
}

// BenchmarkTracerDigest measures the same path with hashing on.
func BenchmarkTracerDigest(b *testing.B) {
	benchTracer(b, trace.NewDigest())
}

func benchTracer(b *testing.B, tr trace.Tracer) {
	e := New(1)
	if tr != nil {
		e.SetTracer(tr)
	}
	e.Go("bench", func(p *Proc) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			end := p.TraceSpan("bench", "span")
			p.TraceInstant("bench", "instant", "", int64(i), 0)
			p.TraceCounter("bench", "counter", 1)
			end()
		}
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

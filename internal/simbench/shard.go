// Sharded-engine benchmark bodies: the cross-lane message hot path and
// the end-to-end UTS traversal at increasing -shards worker counts. The
// scaling series is recorded so BENCH_sim.json documents how the
// sharded engine behaves as workers grow on the recording host;
// correctness at every worker count is gated separately by the
// byte-identity CI job, so these numbers are performance evidence, not
// a determinism check.
package simbench

import (
	"testing"

	"repro/internal/apps/uts"
	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ShardPut measures the cross-lane blocking put on the node-sharded
// engine: one reliable payload send, one remote apply and one ack
// round-trip per op, including the per-window LBTS computation and the
// sorted outbox merge the lanes pay for every delivery. Run at one
// worker so the number pins the protocol cost itself, free of OS
// scheduling noise.
func ShardPut(b *testing.B) {
	b.ReportAllocs()
	old := sim.ShardWorkers()
	sim.SetShardWorkers(1)
	defer sim.SetShardWorkers(old)
	g := sim.NewShardGroup(1, 2, trace.Default())
	net := fabric.NewShardNet(g, fabric.QDRInfiniBand())
	sink := 0
	apply := func() { sink++ } // hoisted: a per-iteration closure is a per-op alloc
	g.Lane(0).Go("putter", func(p *sim.Proc) {
		pt := net.Port(0)
		for n := 0; n < b.N; n++ {
			pt.Put(p, 1, 8, apply)
		}
	})
	b.ResetTimer()
	if err := g.Run(); err != nil {
		b.Fatal(err)
	}
	if sink != b.N {
		b.Fatalf("applied %d of %d puts", sink, b.N)
	}
}

// utsShard runs the full sharded UTS traversal (8 lanes, 16 threads,
// local stealing with rapid diffusion) once per op with the given
// worker-thread count. The virtual-time result is identical at every
// count; the series records what the parallelism buys in wall clock on
// the recording host.
func utsShard(b *testing.B, workers int) {
	b.ReportAllocs()
	old := sim.ShardWorkers()
	sim.SetShardWorkers(workers)
	defer sim.SetShardWorkers(old)
	for n := 0; n < b.N; n++ {
		r, err := uts.RunSharded(uts.Config{
			Threads:  16,
			PerNode:  2,
			Strategy: uts.LocalRapid,
			Tree:     uts.Small(30000),
			Seed:     7,
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Nodes == 0 {
			b.Fatal("traversal counted zero nodes")
		}
	}
}

// UTSShard1..8 are the recorded shard-scaling points.
func UTSShard1(b *testing.B) { utsShard(b, 1) }
func UTSShard2(b *testing.B) { utsShard(b, 2) }
func UTSShard4(b *testing.B) { utsShard(b, 4) }
func UTSShard8(b *testing.B) { utsShard(b, 8) }

// Package simbench holds the engine microbenchmark bodies shared by the
// go-test benchmarks (internal/sim) and the cmd/upc-bench recorder. They
// live outside a _test.go file so upc-bench can drive them through
// testing.Benchmark and write the results — ns/op and allocs/op — to
// BENCH_sim.json, the committed baseline the CI bench job regresses
// against.
//
// Every figure and table of the reproduction is regenerated through
// millions of park/unpark cycles, event-heap operations and resource
// waits, so per-yield cost here is wall-clock cost everywhere.
package simbench

import (
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/sim"
	"repro/internal/topo"
)

// PingPongYield is the headline handoff benchmark: two processes
// alternately yield to each other, so each op is one schedule + one
// park/unpark handoff per process.
func PingPongYield(b *testing.B) {
	b.ReportAllocs()
	e := sim.New(1)
	for i := 0; i < 2; i++ {
		e.Go(fmt.Sprintf("p%d", i), func(p *sim.Proc) {
			for n := 0; n < b.N; n++ {
				p.Yield()
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// Advance measures the solo-process path: one heap push, one pop, one
// park/unpark per op, with the clock moving every time.
func Advance(b *testing.B) {
	b.ReportAllocs()
	e := sim.New(1)
	e.Go("p", func(p *sim.Proc) {
		for n := 0; n < b.N; n++ {
			p.Advance(1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BarrierStorm runs one barrier generation of the given width per op:
// every process parks on the WaitQueue and the last arrival wakes them
// all, so each op is ~width queue appends, wakes and handoffs.
func BarrierStorm(b *testing.B, procs int) {
	b.ReportAllocs()
	e := sim.New(1)
	bar := sim.NewBarrier(procs)
	for i := 0; i < procs; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *sim.Proc) {
			for n := 0; n < b.N; n++ {
				bar.Wait(p)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BarrierStorm1k is BarrierStorm at the recorded 1000-process width.
func BarrierStorm1k(b *testing.B) { BarrierStorm(b, 1000) }

// ServerDelay measures the FCFS resource fast path: each op is one
// occupancy charge plus the advance to its completion.
func ServerDelay(b *testing.B) {
	b.ReportAllocs()
	e := sim.New(1)
	var srv sim.Server
	e.Go("p", func(p *sim.Proc) {
		for n := 0; n < b.N; n++ {
			srv.Delay(p, 1)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// SharedLink32Flows measures processor-sharing accounting under load: 32
// processes keep concurrent flows on one link, so every start/finish
// exercises the incremental accounting with ~32 active flows.
func SharedLink32Flows(b *testing.B) {
	b.ReportAllocs()
	e := sim.New(1)
	l := sim.NewSharedLink(e, 1e9)
	for i := 0; i < 32; i++ {
		e.Go(fmt.Sprintf("f%d", i), func(p *sim.Proc) {
			for n := 0; n < b.N; n++ {
				l.Transfer(p, 1000)
			}
		})
	}
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// FabricPut measures the untraced, fault-free cross-node blocking put —
// the network hot path every PGAS operation rides. With no fault
// schedule installed the injection hooks reduce to two nil checks, so
// the recorded allocs/op pins the fault layer's disabled cost: any
// allocation it grows here fails upc-bench -check (allocs comparisons
// are exact).
func FabricPut(b *testing.B) {
	b.ReportAllocs()
	e := sim.New(1)
	c := fabric.NewCluster(e, topo.Pyramid(), fabric.QDRInfiniBand())
	src := c.MustEndpoint(0)
	dst := c.MustEndpoint(1)
	e.Go("p", func(p *sim.Proc) {
		for n := 0; n < b.N; n++ {
			src.Put(p, dst, 8, nil)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// All lists the recorded microbenchmarks in BENCH_sim.json order.
// Parallel marks the sharded-engine benchmarks whose point is OS-thread
// parallelism: the recorder leaves GOMAXPROCS alone for those instead
// of pinning to one P.
var All = []struct {
	Name     string
	Fn       func(*testing.B)
	Parallel bool
}{
	{"PingPongYield", PingPongYield, false},
	{"Advance", Advance, false},
	{"BarrierStorm1k", BarrierStorm1k, false},
	{"ServerDelay", ServerDelay, false},
	{"SharedLink32Flows", SharedLink32Flows, false},
	{"FabricPut", FabricPut, false},
	{"ShardPut", ShardPut, false},
	{"UTSShard1", UTSShard1, false},
	{"UTSShard2", UTSShard2, true},
	{"UTSShard4", UTSShard4, true},
	{"UTSShard8", UTSShard8, true},
}

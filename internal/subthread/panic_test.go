package subthread

import (
	"strings"
	"testing"

	"repro/internal/upc"
)

// TestTaskPanicPropagates: a panic inside a sub-thread task must surface
// through the engine with the worker identified, not hang the run.
func TestTaskPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected task panic to propagate")
		}
		if !strings.Contains(strings.ToLower(fmtSprint(r)), "sub") {
			t.Errorf("panic should identify the sub-thread process: %v", r)
		}
	}()
	upc.Run(cfg1(1), func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: Pool, N: 3, Bound: true})
		tm.ParallelFor(8, func(s *Sub, i int) {
			if i == 5 && !s.IsMaster() {
				panic("task blew up")
			}
			s.Compute(1e-6)
		})
	})
}

func fmtSprint(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return ""
}

// TestTeamsOnManyMastersShareNoState: several masters on one node each
// with their own team must not interfere.
func TestTeamsOnManyMastersShareNoState(t *testing.T) {
	sums := make([]int, 4)
	_, err := upc.Run(cfg1(4), func(th *upc.Thread) {
		tm, err := NewTeam(th, Config{Kind: OMP, N: 2, Bound: true})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			tm.ParallelFor(10, func(s *Sub, i int) {
				s.Compute(1e-6)
				sums[th.ID] += i
			})
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for id, got := range sums {
		if got != 3*45 {
			t.Errorf("master %d accumulated %d, want %d", id, got, 3*45)
		}
	}
}

// TestParallelForZeroIterations is a no-op, including the fork overhead.
func TestParallelForZeroIterations(t *testing.T) {
	runMaster(t, func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: OMP, N: 4, Bound: true})
		before := th.Now()
		tm.ParallelFor(0, func(*Sub, int) { t.Error("body must not run") })
		if th.Now() != before {
			t.Error("empty ParallelFor should charge nothing")
		}
	})
}

// TestSpawnWithoutSyncThenSync: tasks spawned across several batches all
// complete once Sync is finally called.
func TestSpawnWithoutSyncThenSync(t *testing.T) {
	done := 0
	runMaster(t, func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: Pool, N: 2, Bound: true})
		for i := 0; i < 5; i++ {
			tm.Spawn(func(s *Sub) { s.Compute(1e-6); done++ })
		}
		th.Compute(1e-4) // workers drain in the background meanwhile
		for i := 0; i < 5; i++ {
			tm.Spawn(func(s *Sub) { s.Compute(1e-6); done++ })
		}
		tm.Sync()
	})
	if done != 10 {
		t.Errorf("completed %d tasks, want 10", done)
	}
}

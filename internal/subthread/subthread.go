// Package subthread implements the hierarchical UPC/sub-threads model of
// Chapter 4: each SPMD UPC thread acts as a master that forks and joins
// lightweight shared-memory sub-threads at arbitrary program points. Three
// scheduler flavors mirror the runtimes the thesis evaluates — OpenMP-like
// static work sharing, a Cilk++-like work-first scheduler (higher per-
// spawn overhead and a small compute inefficiency, matching the observed
// ~10% FFT slowdown), and the in-house thread-pool prototype with a
// central task queue. Sub-threads may issue UPC operations subject to an
// MPI-style thread-safety level.
package subthread

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/upc"
)

// Kind selects the sub-thread runtime.
type Kind int

const (
	// OMP models OpenMP parallel regions: static chunking, lowest
	// fork/join and per-task overheads.
	OMP Kind = iota
	// Cilk models Cilk++: work-first spawning with higher per-spawn cost
	// and a small constant-factor compute overhead.
	Cilk
	// Pool models the thesis's in-house pthread pool prototype: a central
	// task queue with moderate overheads.
	Pool
)

// String names the runtime kind.
func (k Kind) String() string {
	switch k {
	case OMP:
		return "openmp"
	case Cilk:
		return "cilk"
	case Pool:
		return "pool"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists all sub-thread runtimes.
func Kinds() []Kind { return []Kind{OMP, Cilk, Pool} }

// Per-runtime cost parameters, calibrated to the relative standings of
// Figure 4.6 (OpenMP best, pool close behind, Cilk++ trailing).
func (k Kind) forkOverhead() sim.Duration {
	switch k {
	case Cilk:
		return 5 * sim.Microsecond
	case Pool:
		return 3 * sim.Microsecond
	default:
		return 1500 * sim.Nanosecond
	}
}

func (k Kind) taskOverhead() sim.Duration {
	switch k {
	case Cilk:
		return 1200 * sim.Nanosecond
	case Pool:
		return 800 * sim.Nanosecond
	default:
		return 300 * sim.Nanosecond
	}
}

// computeFactor inflates compute charges (Cilk++'s compiled output ran
// ~10% slower on the FFT kernels in the thesis).
func (k Kind) computeFactor() float64 {
	if k == Cilk {
		return 1.1
	}
	return 1.0
}

// Safety is the MPI-2-style thread-support level governing UPC calls from
// sub-threads (Section 4.2.3).
type Safety int

const (
	// Single: no sub-thread may issue UPC operations.
	Single Safety = iota
	// Funneled: only the master executes UPC operations.
	Funneled
	// Serialized: sub-threads may issue UPC operations one at a time.
	Serialized
	// Multiple: unrestricted concurrent UPC operations.
	Multiple
)

// String names the safety level.
func (s Safety) String() string {
	switch s {
	case Single:
		return "single"
	case Funneled:
		return "funneled"
	case Serialized:
		return "serialized"
	case Multiple:
		return "multiple"
	}
	return fmt.Sprintf("Safety(%d)", int(s))
}

// Config describes a sub-thread team.
type Config struct {
	Kind   Kind
	N      int  // team size, including the master as worker 0
	Bound  bool // inherit the master's socket affinity (true = numactl-style)
	Safety Safety
}

// task is one unit of spawned work.
type task func(s *Sub)

// Team is one master UPC thread's sub-thread pool, created once and
// reused across parallel regions (the thread-pool pattern of Section
// 4.2.2).
type Team struct {
	T   *upc.Thread
	Cfg Config

	places   []topo.Place
	tasks    []task
	inFlight int
	idle     sim.WaitQueue // parked workers
	syncers  sim.WaitQueue // masters blocked in Sync
	netMu    sim.Mutex     // serializes UPC calls under Serialized
	inPar    bool          // a parallel region is open (ParallelFor)
}

// NewTeam creates a team of cfg.N sub-threads under master t. Worker 0 is
// the master itself; workers 1..N-1 are persistent daemon processes
// placed per the binding policy.
func NewTeam(t *upc.Thread, cfg Config) (*Team, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("subthread: team size %d", cfg.N)
	}
	m := t.Runtime().Cfg.Machine
	var places []topo.Place
	var err error
	if cfg.Bound {
		places, err = m.SubPlaces(t.Place, cfg.N)
	} else {
		places, err = m.ScatterPlaces(t.Place.Node, cfg.N)
	}
	if err != nil {
		return nil, err
	}
	tm := &Team{T: t, Cfg: cfg, places: places}
	for w := 1; w < cfg.N; w++ {
		w := w
		p := t.P.Go(fmt.Sprintf("upc%d.sub%d", t.ID, w), func(p *sim.Proc) {
			tm.workerLoop(p, w)
		})
		p.SetDaemon(true)
	}
	return tm, nil
}

// Size reports the team size (master included).
func (tm *Team) Size() int { return tm.Cfg.N }

// Places reports the hardware slots of the team's workers.
func (tm *Team) Places() []topo.Place { return tm.places }

// Sub is a sub-thread execution context during a task.
type Sub struct {
	Team  *Team
	P     *sim.Proc
	Rank  int // worker index within the team (0 = master)
	Place topo.Place
}

// IsMaster reports whether this context is the master UPC thread itself.
func (s *Sub) IsMaster() bool { return s.Rank == 0 }

// Compute charges seconds of core work at the sub-thread's place,
// inflated by the runtime's compute factor and contending on the core.
func (s *Sub) Compute(seconds float64) {
	s.Team.T.Runtime().Cluster.Compute(s.P, s.Place,
		seconds*s.Team.Cfg.Kind.computeFactor())
}

// MemStream charges streaming access of bytes whose backing memory was
// first-touched by the master UPC thread (shared arrays live on the
// master's socket) — the ccNUMA effect behind Table 4.1.
func (s *Sub) MemStream(bytes int64) {
	s.MemStreamHomed(bytes, s.Team.T.Place.Socket)
}

// MemStreamHomed charges streaming access against an explicit home socket
// of this node (e.g. data the sub-threads first-touched themselves).
func (s *Sub) MemStreamHomed(bytes int64, homeSocket int) {
	s.Team.T.Runtime().Cluster.MemTouch(s.P, s.Place, homeSocket, bytes)
}

// UPC returns the UPC thread view this sub-thread uses for one-sided
// operations, after enforcing the team's thread-safety level. Under
// Serialized the caller must bracket operations with LockNet/UnlockNet.
func (s *Sub) UPC() *upc.Thread {
	switch s.Team.Cfg.Safety {
	case Single:
		panic("subthread: UPC call from a parallel region under THREAD_SINGLE")
	case Funneled:
		if !s.IsMaster() {
			panic("subthread: UPC call from a non-master sub-thread under THREAD_FUNNELED")
		}
	}
	return s.Team.T.OnProc(s.P, s.Place)
}

// LockNet serializes a UPC operation sequence under the Serialized safety
// level (no-op under Multiple).
func (s *Sub) LockNet() {
	if s.Team.Cfg.Safety == Serialized {
		s.Team.netMu.Lock(s.P)
	}
}

// UnlockNet releases the serialization taken by LockNet.
func (s *Sub) UnlockNet() {
	if s.Team.Cfg.Safety == Serialized {
		s.Team.netMu.Unlock(s.P)
	}
}

// ---- Scheduling ----

// Spawn enqueues a task (cilk_spawn / omp task). It may be called by the
// master or, for nested parallelism, from a running task.
func (tm *Team) Spawn(fn func(s *Sub)) {
	tm.tasks = append(tm.tasks, fn)
	tm.idle.WakeOne()
}

// Sync runs tasks on the master until the bag drains and all workers are
// idle (cilk_sync / end of omp taskgroup). The master participates in the
// work (work-first execution).
func (tm *Team) Sync() {
	end := tm.T.P.TraceSpan("subthread", "sync")
	master := &Sub{Team: tm, P: tm.T.P, Rank: 0, Place: tm.places[0]}
	for {
		if len(tm.tasks) > 0 {
			tm.runOne(master)
			continue
		}
		if tm.inFlight == 0 {
			end()
			return
		}
		tm.syncers.Wait(tm.T.P, "subthread-sync")
	}
}

// ParallelFor executes body for every index in [0, n) across the team and
// joins (omp parallel for / cilk_for). OMP uses static chunking (one
// contiguous range per worker, one scheduling event each); Cilk and Pool
// self-schedule individual indices. The master is charged the fork
// overhead and participates.
func (tm *Team) ParallelFor(n int, body func(s *Sub, i int)) {
	if n <= 0 {
		return
	}
	if tm.inPar {
		panic("subthread: nested ParallelFor on one team")
	}
	tm.inPar = true
	defer func() { tm.inPar = false }()

	end := tm.T.P.TraceSpanArg("subthread", "parallel-for", tm.Cfg.Kind.String(), int64(n))
	defer end()
	tm.T.P.Advance(tm.Cfg.Kind.forkOverhead())
	if tm.Cfg.Kind == OMP {
		w := tm.Cfg.N
		if w > n {
			w = n
		}
		for i := 0; i < w; i++ {
			lo, hi := i*n/w, (i+1)*n/w
			tm.Spawn(func(s *Sub) {
				for j := lo; j < hi; j++ {
					body(s, j)
				}
			})
		}
	} else {
		for i := 0; i < n; i++ {
			i := i
			tm.Spawn(func(s *Sub) { body(s, i) })
		}
	}
	tm.Sync()
}

// runOne pops and executes one task in context s, charging the per-task
// scheduling overhead.
func (tm *Team) runOne(s *Sub) {
	fn := tm.tasks[0]
	copy(tm.tasks, tm.tasks[1:])
	tm.tasks[len(tm.tasks)-1] = nil
	tm.tasks = tm.tasks[:len(tm.tasks)-1]
	tm.inFlight++
	s.P.TraceInstant("subthread", "task", tm.Cfg.Kind.String(), int64(s.Rank), 0)
	s.P.Advance(tm.Cfg.Kind.taskOverhead())
	fn(s)
	tm.inFlight--
	if len(tm.tasks) == 0 && tm.inFlight == 0 {
		tm.syncers.WakeAll()
	}
}

// workerLoop is the persistent body of a pool worker.
func (tm *Team) workerLoop(p *sim.Proc, rank int) {
	s := &Sub{Team: tm, P: p, Rank: rank, Place: tm.places[rank]}
	for {
		for len(tm.tasks) == 0 {
			tm.idle.Wait(p, "subthread-idle")
		}
		tm.runOne(s)
	}
}

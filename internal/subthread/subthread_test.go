package subthread

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/upc"
)

func cfg1(perNode int) upc.Config {
	return upc.Config{
		Machine:        topo.Lehman(),
		Threads:        perNode,
		ThreadsPerNode: perNode,
		Backend:        upc.Processes,
		PSHM:           true,
		Seed:           1,
	}
}

// runMaster runs body on a single-thread UPC program and returns elapsed.
func runMaster(t *testing.T, body func(th *upc.Thread)) sim.Duration {
	t.Helper()
	st, err := upc.Run(cfg1(1), body)
	if err != nil {
		t.Fatal(err)
	}
	return st.Elapsed
}

func TestParallelForSpeedup(t *testing.T) {
	elapsed := map[int]sim.Duration{}
	for _, n := range []int{1, 4} {
		n := n
		elapsed[n] = runMaster(t, func(th *upc.Thread) {
			tm, err := NewTeam(th, Config{Kind: OMP, N: n, Bound: true, Safety: Funneled})
			if err != nil {
				t.Fatal(err)
			}
			tm.ParallelFor(64, func(s *Sub, i int) {
				s.Compute(0.001)
			})
		})
	}
	speedup := float64(elapsed[1]) / float64(elapsed[4])
	if speedup < 3.5 || speedup > 4.05 {
		t.Errorf("4-way ParallelFor speedup = %.2f, want ~4", speedup)
	}
}

func TestAllIndicesRunExactlyOnce(t *testing.T) {
	counts := make([]int, 100)
	runMaster(t, func(th *upc.Thread) {
		for _, k := range Kinds() {
			tm, err := NewTeam(th, Config{Kind: k, N: 3, Bound: true})
			if err != nil {
				t.Fatal(err)
			}
			tm.ParallelFor(100, func(s *Sub, i int) {
				counts[i]++
				s.Compute(1e-6)
			})
		}
	})
	for i, c := range counts {
		if c != 3 { // once per runtime kind
			t.Errorf("index %d ran %d times, want 3", i, c)
		}
	}
}

func TestMasterParticipates(t *testing.T) {
	sawMaster := false
	ranks := map[int]bool{}
	runMaster(t, func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: Pool, N: 4, Bound: true})
		tm.ParallelFor(32, func(s *Sub, i int) {
			ranks[s.Rank] = true
			if s.IsMaster() {
				sawMaster = true
			}
			s.Compute(1e-5)
		})
	})
	if !sawMaster {
		t.Error("master must participate in parallel regions")
	}
	if len(ranks) != 4 {
		t.Errorf("only %d of 4 workers participated: %v", len(ranks), ranks)
	}
}

func TestRuntimeOverheadOrdering(t *testing.T) {
	// For fine-grained tasks, OpenMP < Pool < Cilk overall time.
	times := map[Kind]sim.Duration{}
	for _, k := range Kinds() {
		k := k
		times[k] = runMaster(t, func(th *upc.Thread) {
			tm, _ := NewTeam(th, Config{Kind: k, N: 4, Bound: true})
			for rep := 0; rep < 20; rep++ {
				tm.ParallelFor(64, func(s *Sub, i int) {
					s.Compute(2e-6)
				})
			}
		})
	}
	if !(times[OMP] < times[Pool] && times[Pool] < times[Cilk]) {
		t.Errorf("overhead ordering wrong: omp=%v pool=%v cilk=%v",
			times[OMP], times[Pool], times[Cilk])
	}
}

func TestCilkComputePenalty(t *testing.T) {
	// One coarse task: Cilk's compute factor (~1.1) must show.
	var omp, cilk sim.Duration
	omp = runMaster(t, func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: OMP, N: 1, Bound: true})
		tm.ParallelFor(1, func(s *Sub, i int) { s.Compute(0.1) })
	})
	cilk = runMaster(t, func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: Cilk, N: 1, Bound: true})
		tm.ParallelFor(1, func(s *Sub, i int) { s.Compute(0.1) })
	})
	ratio := float64(cilk) / float64(omp)
	if ratio < 1.05 || ratio > 1.15 {
		t.Errorf("cilk/omp compute ratio = %.3f, want ~1.1", ratio)
	}
}

func TestUnboundMemoryStreamsSlower(t *testing.T) {
	// 8 sub-threads streaming memory homed on the master's socket: bound
	// or not, socket 0's controller is the bottleneck; but 2 masters × 4
	// bound sub-threads each stream their own socket and go ~2x faster.
	// Here we check the single-master case against the two-master case.
	oneMaster := runMaster(t, func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: OMP, N: 8, Bound: false})
		tm.ParallelFor(8, func(s *Sub, i int) {
			s.MemStream(128 << 20)
		})
	})
	st, err := upc.Run(cfg1(2), func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: OMP, N: 4, Bound: true})
		tm.ParallelFor(4, func(s *Sub, i int) {
			s.MemStream(128 << 20)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(oneMaster) / float64(st.Elapsed)
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("1x8 / 2x4 stream-time ratio = %.2f, want ~2 (Table 4.1 effect)", ratio)
	}
}

func TestSpawnSyncNested(t *testing.T) {
	total := 0
	runMaster(t, func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: Cilk, N: 4, Bound: true})
		for i := 0; i < 4; i++ {
			tm.Spawn(func(s *Sub) {
				s.Compute(1e-5)
				total++
				// Nested spawn from a running task.
				tm.Spawn(func(s2 *Sub) {
					s2.Compute(1e-5)
					total++
				})
			})
		}
		tm.Sync()
	})
	if total != 8 {
		t.Errorf("ran %d tasks, want 8 (nested spawns must complete before Sync returns)", total)
	}
}

func TestSafetyEnforcement(t *testing.T) {
	mustPanic := func(name string, safety Safety, fromMaster bool) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		upc.Run(cfg1(1), func(th *upc.Thread) {
			tm, _ := NewTeam(th, Config{Kind: OMP, N: 2, Bound: true, Safety: safety})
			tm.ParallelFor(2, func(s *Sub, i int) {
				if s.IsMaster() == fromMaster {
					s.UPC() // must panic per safety level
				}
			})
		})
	}
	mustPanic("single/master", Single, true)
	mustPanic("funneled/worker", Funneled, false)

	// Funneled from the master, and Multiple from anyone, must work.
	runMaster(t, func(th *upc.Thread) {
		sh := upc.Alloc[float64](th, 16, 8, 16)
		tm, _ := NewTeam(th, Config{Kind: OMP, N: 2, Bound: true, Safety: Multiple})
		tm.ParallelFor(2, func(s *Sub, i int) {
			v := s.UPC()
			//upcvet:sharedrace -- single-UPC-thread team test: owner 0 is the only thread; sub-thread puts land before the read
			upc.PutT(v, sh, 0, i, []float64{float64(i)})
		})
		if sh.Local(th)[0] != 0 || sh.Local(th)[1] != 1 {
			t.Errorf("sub-thread puts did not land: %v", sh.Local(th)[:2])
		}
	})
}

func TestSerializedLockNet(t *testing.T) {
	inside := 0
	runMaster(t, func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: OMP, N: 4, Bound: true, Safety: Serialized})
		tm.ParallelFor(8, func(s *Sub, i int) {
			s.LockNet()
			inside++
			if inside != 1 {
				t.Errorf("serialized section entered concurrently: %d", inside)
			}
			s.Compute(1e-5)
			inside--
			s.UnlockNet()
		})
	})
}

func TestNestedParallelForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nested ParallelFor")
		}
	}()
	upc.Run(cfg1(1), func(th *upc.Thread) {
		tm, _ := NewTeam(th, Config{Kind: OMP, N: 2, Bound: true})
		tm.ParallelFor(2, func(s *Sub, i int) {
			tm.ParallelFor(2, func(*Sub, int) {})
		})
	})
}

func TestTeamValidation(t *testing.T) {
	runMaster(t, func(th *upc.Thread) {
		if _, err := NewTeam(th, Config{Kind: OMP, N: 0}); err == nil {
			t.Error("zero-size team must error")
		}
		if _, err := NewTeam(th, Config{Kind: OMP, N: 1000, Bound: true}); err == nil {
			t.Error("oversubscribed team must error")
		}
	})
}

func TestKindAndSafetyStrings(t *testing.T) {
	if fmt.Sprint(OMP, Cilk, Pool) != "openmp cilk pool" {
		t.Errorf("kind names: %v %v %v", OMP, Cilk, Pool)
	}
	if fmt.Sprint(Single, Funneled, Serialized, Multiple) !=
		"single funneled serialized multiple" {
		t.Error("safety names wrong")
	}
}

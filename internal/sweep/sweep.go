// Package sweep runs the independent points of an experiment sweep on a
// bounded worker pool. Every simulation in this repository is a
// self-contained deterministic engine, so sweep points can execute on
// parallel OS threads without perturbing each other's results; the only
// shared resource is the process-wide default tracer, which Run
// virtualizes so that the merged event stream (and hence the printed
// TraceDigest) is byte-identical at any worker count.
//
// Contract for jobs: job(i, tr) must build and run the i'th sweep point,
// installing tr in every engine it creates (via the app Config's Tracer
// field). tr is nil when the ambient default tracer already reaches
// those engines — i.e. in sequential mode — so jobs must pass it through
// unconditionally and never read trace.Default themselves. Jobs must
// not call Run recursively: a nested parallel sweep would detach its
// engines from the outer job's capture buffer.
package sweep

import (
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

var (
	mu      sync.Mutex
	workers = 1
)

// SetWorkers sets the worker-pool width used by subsequent Run calls
// (minimum 1; 1 means fully sequential). The cmd binaries wire this to
// the shared -parallel flag.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	mu.Lock()
	workers = n
	mu.Unlock()
}

// Workers reports the current worker-pool width.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	return workers
}

// Run executes jobs 0..n-1 and returns the lowest-indexed error, if any.
// With one worker the jobs run in index order on the calling goroutine.
// With more, they are distributed over a pool of goroutines; the default
// tracer is detached for the duration and each job traces into a private
// trace.Buffer instead, replayed into the real sink in index order after
// the last job finishes. Results must be written into index-addressed
// slots (no appends), so the rendered output is identical at any width.
func Run(n int, job func(i int, tr trace.Tracer) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i, nil); err != nil {
				return err
			}
		}
		return nil
	}

	// Detach the default tracer: engines created by concurrent jobs must
	// not interleave events into the shared sink. Restored below, after
	// the deterministic replay.
	saved := trace.Default()
	trace.SetDefault(nil)

	tracers := make([]trace.Tracer, n)
	bufs := make([]*trace.Buffer, n)
	if saved != nil {
		// The buffers must advertise the real sink's opt-in capabilities
		// (per-advance clocks, link occupancy): the engines only see the
		// buffer, and an unwrapped one would silently drop those events
		// from the replayed — and digested — stream.
		clocked := trace.WantsClock(saved)
		util := trace.WantsUtil(saved)
		edged := trace.WantsEdge(saved)
		for i := range bufs {
			bufs[i] = trace.NewBuffer()
			t := trace.Tracer(bufs[i])
			if clocked {
				t = trace.Clocked(t)
			}
			if util {
				t = trace.Utiled(t)
			}
			if edged {
				t = trace.Edged(t)
			}
			tracers[i] = t
		}
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = job(i, tracers[i])
			}
		}()
	}
	wg.Wait()

	if saved != nil {
		// Release each buffer as it drains: on big sweeps the captured
		// streams dominate the sweep's memory footprint.
		for i, b := range bufs {
			b.ReplayInto(saved)
			bufs[i], tracers[i] = nil, nil
		}
	}
	trace.SetDefault(saved)

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

package topo

import "fmt"

// Binding selects how execution contexts are pinned onto hardware slots
// within a node, mirroring the binding regimes the paper evaluates
// (numactl socket round-robin, core pinning, and no binding at all).
type Binding int

const (
	// BindSocketRR pins contexts round-robin across sockets, then cores
	// within a socket — the paper's default ("UPC processes are cyclically
	// pinned to independent ccNUMA nodes using numactl").
	BindSocketRR Binding = iota
	// BindCoreBlocked fills socket 0's cores first, then socket 1, etc.
	BindCoreBlocked
	// BindNone leaves contexts unbound: the model places them round-robin
	// over cores but marks the placement non-affine, so first-touch memory
	// stays on socket 0 and accesses pay the unbound penalty.
	BindNone
)

// String names the binding policy.
func (b Binding) String() string {
	switch b {
	case BindSocketRR:
		return "socket-rr"
	case BindCoreBlocked:
		return "core-blocked"
	case BindNone:
		return "none"
	}
	return fmt.Sprintf("Binding(%d)", int(b))
}

// Layout assigns total execution contexts across the first
// ceil(total/perNode) nodes, perNode per node (blocked over nodes, which
// matches the default GASNet thread layout), and places each within its
// node per the binding policy. It returns one Place per context, indexed
// by context rank.
func (m *Machine) Layout(total, perNode int, b Binding) ([]Place, error) {
	if total <= 0 || perNode <= 0 {
		return nil, fmt.Errorf("topo: Layout(total=%d, perNode=%d): counts must be positive", total, perNode)
	}
	nodes := (total + perNode - 1) / perNode
	if nodes > m.Nodes {
		return nil, fmt.Errorf("topo: layout needs %d nodes but %s has %d", nodes, m.Name, m.Nodes)
	}
	if perNode > m.HWThreadsPerNode() {
		return nil, fmt.Errorf("topo: %d contexts per node exceeds %d hardware threads on %s",
			perNode, m.HWThreadsPerNode(), m.Name)
	}
	places := make([]Place, total)
	for t := 0; t < total; t++ {
		node := t / perNode
		local := t % perNode
		places[t] = m.placeInNode(node, local, b)
	}
	return places, nil
}

// placeInNode maps local context index r within a node to a slot.
func (m *Machine) placeInNode(node, r int, b Binding) Place {
	cores := m.CoresPerNode()
	switch b {
	case BindCoreBlocked:
		// Fill all cores of socket 0, then socket 1, ...; SMT slots last.
		core := r % cores
		smt := r / cores
		return Place{Node: node, Socket: core / m.CoresPerSocket, Core: core % m.CoresPerSocket, SMT: smt}
	default: // BindSocketRR and BindNone share the slot enumeration
		// Alternate sockets: r=0 -> s0c0, r=1 -> s1c0, r=2 -> s0c1, ...
		primary := r % cores
		smt := r / cores
		socket := primary % m.SocketsPerNode
		core := primary / m.SocketsPerNode
		return Place{Node: node, Socket: socket, Core: core, SMT: smt}
	}
}

// SubPlaces enumerates hardware slots for n sub-threads spawned under a
// master pinned at base. Sub-threads inherit the master's affinity mask:
// they fill the master's socket (cores, then SMT slots) before spilling to
// the next socket of the same node. The master's own slot is index 0.
func (m *Machine) SubPlaces(base Place, n int) ([]Place, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topo: SubPlaces(n=%d): need at least one", n)
	}
	if n > m.HWThreadsPerNode() {
		return nil, fmt.Errorf("topo: %d sub-threads exceed %d hardware threads per node", n, m.HWThreadsPerNode())
	}
	out := make([]Place, 0, n)
	// Sub-threads inherit the master's affinity mask: exhaust the
	// master's socket completely (cores, then SMT slots) before spilling
	// to the next socket — the paper binds processes on sockets "to
	// prevent sub-threads going off the chip", which is why its 8×n
	// configurations use only one socket per node.
	for ds := 0; ds < m.SocketsPerNode && len(out) < n; ds++ {
		s := (base.Socket + ds) % m.SocketsPerNode
		for smt := 0; smt < m.ThreadsPerCore && len(out) < n; smt++ {
			for c := 0; c < m.CoresPerSocket && len(out) < n; c++ {
				core := c
				if s == base.Socket {
					core = (base.Core + c) % m.CoresPerSocket
				}
				out = append(out, Place{Node: base.Node, Socket: s, Core: core, SMT: smt})
			}
		}
	}
	return out, nil
}

// ScatterPlaces enumerates n hardware slots of one node in OS-scheduler
// order (round-robin across sockets), modeling *unbound* sub-threads that
// ignore their master's affinity mask.
func (m *Machine) ScatterPlaces(node, n int) ([]Place, error) {
	if n <= 0 || n > m.HWThreadsPerNode() {
		return nil, fmt.Errorf("topo: ScatterPlaces(n=%d) on a %d-slot node", n, m.HWThreadsPerNode())
	}
	out := make([]Place, n)
	for r := 0; r < n; r++ {
		out[r] = m.placeInNode(node, r, BindSocketRR)
	}
	return out, nil
}

// NodeOf reports the cluster node of context rank under a blocked layout
// of perNode contexts per node.
func NodeOf(rank, perNode int) int { return rank / perNode }

// SameNodeRanks lists every rank in [0,total) that shares a node with
// rank, under a blocked layout with perNode contexts per node. This is the
// information the paper's runtime thread-layout query exposes ("which
// threads are relatively closer together than others").
func SameNodeRanks(rank, total, perNode int) []int {
	node := rank / perNode
	lo := node * perNode
	hi := lo + perNode
	if hi > total {
		hi = total
	}
	out := make([]int, 0, hi-lo)
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

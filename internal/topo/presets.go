package topo

import "strings"

// Presets model the two clusters hosted at the GWU High Performance
// Computing Laboratory that the thesis evaluates on (Table 2.1). The rate
// calibrations are derived from the paper's own measurements: STREAM triad
// throughputs (Tables 3.1 and 4.1), the 15–40% ccNUMA penalty quoted in
// Chapter 2, the 5–30% SMT kernel speedups observed in Figure 4.4, and the
// shared-pointer translation overhead implied by the 3.2 GB/s baseline of
// Table 3.1.

// Pyramid returns the Sun X2200 cluster model: 128 nodes of dual-socket
// quad-core 2.2 GHz AMD Opteron 2354 (Barcelona), no SMT, DDR InfiniBand
// (GigE also available).
func Pyramid() *Machine {
	return &Machine{
		Name:           "pyramid",
		Nodes:          128,
		SocketsPerNode: 2,
		CoresPerSocket: 4,
		ThreadsPerCore: 1,
		ClockGHz:       2.2,
		FlopsPerCore:   2.0e9, // sustained, FFT-like (peak 8.8 GF)
		MemBWSocket:    6.4e9, // DDR2-667 dual channel, triad-sustained
		NUMAFactor:     1.25,  // HyperTransport cross-socket penalty
		SMTThroughput:  1.0,   // no SMT
		PtrXlate:       19e-9, // Berkeley UPC shared-pointer deref cost (per access)
		DefaultConduit: "ibv-ddr",
	}
}

// Lehman returns the GPU-cluster model (GPUs unused in the thesis): 12
// nodes of dual-socket quad-core 2.27 GHz Intel Xeon E5520 (Nehalem) with
// 2-way HyperThreading and QDR InfiniBand.
func Lehman() *Machine {
	return &Machine{
		Name:           "lehman",
		Nodes:          12,
		SocketsPerNode: 2,
		CoresPerSocket: 4,
		ThreadsPerCore: 2,
		ClockGHz:       2.27,
		FlopsPerCore:   2.6e9,  // sustained, FFT-like (peak 9.1 GF)
		MemBWSocket:    12.3e9, // DDR3 triple channel, triad-sustained
		NUMAFactor:     1.3,    // QPI cross-socket penalty
		SMTThroughput:  1.2,    // two HT threads ≈ 1.2× one (5–30% in paper)
		PtrXlate:       19e-9,
		DefaultConduit: "ibv-qdr",
	}
}

// DefaultXlateCacheLines is the per-thread translation-cache capacity
// the "+xcache" preset suffix selects: sized like the runtime-managed
// lookup structures of the Berkeley implementation (a few hundred
// block descriptors), small enough that scattered access still misses.
const DefaultXlateCacheLines = 256

// ByName resolves a preset machine model by its lowercase name. The
// base name may carry translation-model suffixes, combinable and in any
// order: "+xcache" enables the per-thread translation cache
// (DefaultXlateCacheLines entries) and "+xassist" the Serres-style
// hardware-assisted translation — e.g. "pyramid+xassist",
// "lehman+xcache".
func ByName(name string) (*Machine, bool) {
	base, rest, suffixed := strings.Cut(name, "+")
	if suffixed && rest == "" {
		return nil, false
	}
	var m *Machine
	switch base {
	case "pyramid":
		m = Pyramid()
	case "lehman":
		m = Lehman()
	default:
		return nil, false
	}
	if rest != "" {
		for _, suf := range strings.Split(rest, "+") {
			switch suf {
			case "xcache":
				m.XlateCacheLines = DefaultXlateCacheLines
			case "xassist":
				m.XlateAssist = true
			default:
				return nil, false
			}
		}
		m.Name = name
	}
	return m, true
}

// Presets lists the available machine model names.
func Presets() []string { return []string{"lehman", "pyramid"} }

// Package topo models the hardware topology of a cluster of SMP nodes:
// cluster → node → socket (ccNUMA domain) → core → SMT thread. It carries
// the calibrated machine rates (memory bandwidth, NUMA factor, core
// compute rates, shared-pointer translation cost) that the cost model in
// the fabric and application layers charges against, and it provides the
// hwloc-like placement and distance queries that the paper's thread-group
// techniques rely on.
package topo

import "fmt"

// Machine describes a homogeneous cluster.
type Machine struct {
	Name string

	// Structure.
	Nodes          int // compute nodes in the cluster
	SocketsPerNode int // ccNUMA domains per node
	CoresPerSocket int
	ThreadsPerCore int // SMT ways (1 = no SMT)

	// Calibrated rates.
	ClockGHz      float64 // core clock
	FlopsPerCore  float64 // sustained flop/s per core for FFT-like kernels
	MemBWSocket   float64 // bytes/s STREAM-like bandwidth per socket
	NUMAFactor    float64 // cross-socket access slowdown multiplier (>1)
	SMTThroughput float64 // combined throughput of a full SMT core vs one thread (e.g. 1.2)
	PtrXlate      float64 // seconds per shared-pointer translation (element access)

	// Shared-pointer translation model (see internal/upc): a fine-grained
	// shared access decodes (thread, block, offset) from the pointer. The
	// full software decode costs PtrXlate seconds; with a translation
	// cache, an access whose (array, block) pair is cached re-derives only
	// the offset; with hardware assist the decode retires in one core
	// cycle — effectively free at simulation resolution, the Serres-style
	// hardware-assisted translation regime.
	XlateAssist     bool // hardware-assisted translation (cost ≈ one cycle)
	XlateCacheLines int  // per-thread translation-cache entries; 0 = no cache

	// DefaultConduit names the network conduit used unless overridden
	// (resolved by the fabric package).
	DefaultConduit string
}

// CoresPerNode reports physical cores per node.
func (m *Machine) CoresPerNode() int { return m.SocketsPerNode * m.CoresPerSocket }

// HWThreadsPerNode reports hardware thread slots per node (cores × SMT).
func (m *Machine) HWThreadsPerNode() int { return m.CoresPerNode() * m.ThreadsPerCore }

// TotalCores reports physical cores in the whole machine.
func (m *Machine) TotalCores() int { return m.Nodes * m.CoresPerNode() }

// TotalHWThreads reports hardware thread slots in the whole machine.
func (m *Machine) TotalHWThreads() int { return m.Nodes * m.HWThreadsPerNode() }

// Validate reports a descriptive error if the machine is malformed.
func (m *Machine) Validate() error {
	switch {
	case m.Nodes <= 0:
		return fmt.Errorf("topo: %s: Nodes = %d", m.Name, m.Nodes)
	case m.SocketsPerNode <= 0:
		return fmt.Errorf("topo: %s: SocketsPerNode = %d", m.Name, m.SocketsPerNode)
	case m.CoresPerSocket <= 0:
		return fmt.Errorf("topo: %s: CoresPerSocket = %d", m.Name, m.CoresPerSocket)
	case m.ThreadsPerCore <= 0:
		return fmt.Errorf("topo: %s: ThreadsPerCore = %d", m.Name, m.ThreadsPerCore)
	case m.MemBWSocket <= 0:
		return fmt.Errorf("topo: %s: MemBWSocket = %g", m.Name, m.MemBWSocket)
	case m.NUMAFactor < 1:
		return fmt.Errorf("topo: %s: NUMAFactor = %g (must be >= 1)", m.Name, m.NUMAFactor)
	case m.SMTThroughput < 1:
		return fmt.Errorf("topo: %s: SMTThroughput = %g (must be >= 1)", m.Name, m.SMTThroughput)
	case m.XlateCacheLines < 0:
		return fmt.Errorf("topo: %s: XlateCacheLines = %d", m.Name, m.XlateCacheLines)
	}
	return nil
}

// NodeView returns a single-node copy of the machine: same sockets,
// cores, SMT and rates, Nodes = 1. Sharded execution builds one of
// these per lane so each lane engine owns a private intra-node resource
// model (cores, memory controllers, NIC) while the cross-node fabric is
// modeled by the lane-to-lane message layer.
func (m *Machine) NodeView() *Machine {
	view := *m
	view.Nodes = 1
	view.Name = m.Name + "/node"
	return &view
}

// Place locates one hardware thread slot in the cluster.
type Place struct {
	Node   int // cluster node
	Socket int // socket within the node
	Core   int // core within the socket
	SMT    int // SMT slot within the core (0 for the primary thread)
}

// GlobalCore reports the machine-wide physical core index of the place.
func (p Place) GlobalCore(m *Machine) int {
	return (p.Node*m.SocketsPerNode+p.Socket)*m.CoresPerSocket + p.Core
}

// String formats the place as node/socket/core[.smt].
func (p Place) String() string {
	if p.SMT == 0 {
		return fmt.Sprintf("n%d/s%d/c%d", p.Node, p.Socket, p.Core)
	}
	return fmt.Sprintf("n%d/s%d/c%d.%d", p.Node, p.Socket, p.Core, p.SMT)
}

// Level classifies the topological distance between two places, from
// closest to farthest. It is the information the paper's thread-layout
// query exposes to applications.
type Level int

const (
	// LevelSelf: the same hardware thread slot.
	LevelSelf Level = iota
	// LevelSMT: sibling SMT threads on one core.
	LevelSMT
	// LevelSocket: same socket (shared L3, same ccNUMA domain).
	LevelSocket
	// LevelNode: same node, different socket (cross-QPI/HT, cc shared memory).
	LevelNode
	// LevelRemote: different nodes (network).
	LevelRemote
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelSelf:
		return "self"
	case LevelSMT:
		return "smt"
	case LevelSocket:
		return "socket"
	case LevelNode:
		return "node"
	case LevelRemote:
		return "remote"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Distance reports the topological relationship of two places.
func Distance(a, b Place) Level {
	switch {
	case a.Node != b.Node:
		return LevelRemote
	case a.Socket != b.Socket:
		return LevelNode
	case a.Core != b.Core:
		return LevelSocket
	case a.SMT != b.SMT:
		return LevelSMT
	default:
		return LevelSelf
	}
}

// SameNode reports whether both places share a node (hence shared memory).
func SameNode(a, b Place) bool { return a.Node == b.Node }

// SameSocket reports whether both places share a ccNUMA domain.
func SameSocket(a, b Place) bool { return a.Node == b.Node && a.Socket == b.Socket }

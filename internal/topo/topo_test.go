package topo

import (
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for _, name := range Presets() {
		m, ok := ByName(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, ok := ByName("nonesuch"); ok {
		t.Error("unknown preset should not resolve")
	}
}

func TestPaperTableCharacteristics(t *testing.T) {
	// Cross-check the structural facts of Table 2.1.
	l := Lehman()
	if l.CoresPerNode() != 8 {
		t.Errorf("Lehman cores/node = %d, want 8", l.CoresPerNode())
	}
	if l.HWThreadsPerNode() != 16 {
		t.Errorf("Lehman threads/node = %d, want 16", l.HWThreadsPerNode())
	}
	if l.Nodes != 12 {
		t.Errorf("Lehman nodes = %d, want 12", l.Nodes)
	}
	p := Pyramid()
	if p.CoresPerNode() != 8 || p.HWThreadsPerNode() != 8 {
		t.Errorf("Pyramid cores/node = %d, hwthreads = %d, want 8, 8",
			p.CoresPerNode(), p.HWThreadsPerNode())
	}
	if p.Nodes != 128 {
		t.Errorf("Pyramid nodes = %d, want 128", p.Nodes)
	}
	if p.TotalCores() != 1024 {
		t.Errorf("Pyramid total cores = %d, want 1024", p.TotalCores())
	}
}

func TestDistanceLevels(t *testing.T) {
	cases := []struct {
		a, b Place
		want Level
	}{
		{Place{0, 0, 0, 0}, Place{0, 0, 0, 0}, LevelSelf},
		{Place{0, 0, 0, 0}, Place{0, 0, 0, 1}, LevelSMT},
		{Place{0, 0, 0, 0}, Place{0, 0, 3, 0}, LevelSocket},
		{Place{0, 0, 0, 0}, Place{0, 1, 0, 0}, LevelNode},
		{Place{0, 1, 2, 0}, Place{3, 1, 2, 0}, LevelRemote},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Distance(c.b, c.a); got != c.want {
			t.Errorf("Distance must be symmetric: (%v,%v) = %v, want %v", c.b, c.a, got, c.want)
		}
	}
}

func TestLayoutSocketRoundRobin(t *testing.T) {
	m := Lehman()
	places, err := m.Layout(4, 2, BindSocketRR)
	if err != nil {
		t.Fatal(err)
	}
	// 2 threads/node: each node gets one thread per socket.
	want := []Place{
		{Node: 0, Socket: 0, Core: 0}, {Node: 0, Socket: 1, Core: 0},
		{Node: 1, Socket: 0, Core: 0}, {Node: 1, Socket: 1, Core: 0},
	}
	for i := range want {
		if places[i] != want[i] {
			t.Errorf("places[%d] = %v, want %v", i, places[i], want[i])
		}
	}
}

func TestLayoutBlockedFillsSocketFirst(t *testing.T) {
	m := Pyramid()
	places, err := m.Layout(8, 8, BindCoreBlocked)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if places[i].Socket != 0 {
			t.Errorf("rank %d should be on socket 0, got %v", i, places[i])
		}
	}
	for i := 4; i < 8; i++ {
		if places[i].Socket != 1 {
			t.Errorf("rank %d should be on socket 1, got %v", i, places[i])
		}
	}
}

func TestLayoutSMTOverflow(t *testing.T) {
	m := Lehman()
	places, err := m.Layout(16, 16, BindSocketRR)
	if err != nil {
		t.Fatal(err)
	}
	smt := 0
	for _, p := range places {
		if p.SMT == 1 {
			smt++
		}
	}
	if smt != 8 {
		t.Errorf("16 threads on an 8-core node must use 8 SMT slots, got %d", smt)
	}
}

func TestLayoutErrors(t *testing.T) {
	m := Lehman()
	if _, err := m.Layout(0, 1, BindSocketRR); err == nil {
		t.Error("zero threads must error")
	}
	if _, err := m.Layout(1000, 8, BindSocketRR); err == nil {
		t.Error("too many nodes must error")
	}
	if _, err := m.Layout(32, 32, BindSocketRR); err == nil {
		t.Error("oversubscribed node must error")
	}
}

func TestLayoutSlotsDistinctWithinNode(t *testing.T) {
	// Property: within a node, no two contexts share a hardware slot, for
	// any feasible layout and any binding.
	m := Lehman()
	f := func(perNodeRaw, bindRaw uint8) bool {
		perNode := int(perNodeRaw)%m.HWThreadsPerNode() + 1
		bind := Binding(int(bindRaw) % 3)
		total := perNode * 2
		places, err := m.Layout(total, perNode, bind)
		if err != nil {
			return false
		}
		seen := map[Place]bool{}
		for _, p := range places {
			if seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubPlacesStayOnMasterSocketFirst(t *testing.T) {
	m := Lehman()
	base := Place{Node: 2, Socket: 1, Core: 0}
	sub, err := m.SubPlaces(base, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sub[0] != base {
		t.Errorf("sub[0] = %v, want master slot %v", sub[0], base)
	}
	for i, p := range sub {
		if p.Node != base.Node {
			t.Errorf("sub[%d] = %v left the node", i, p)
		}
		if p.Socket != base.Socket {
			t.Errorf("sub[%d] = %v left the master socket before it filled", i, p)
		}
	}
	// 8 sub-threads on a 4-core 2-way-SMT socket stay on the master's
	// socket, filling its SMT slots before spilling (the paper's socket
	// confinement: 8×n configurations use one socket per node).
	sub8, err := m.SubPlaces(base, 8)
	if err != nil {
		t.Fatal(err)
	}
	smt := 0
	for i, p := range sub8 {
		if p.Socket != base.Socket {
			t.Errorf("sub8[%d] = %v left the master socket", i, p)
		}
		if p.SMT == 1 {
			smt++
		}
	}
	if smt != 4 {
		t.Errorf("expected 4 SMT slots in use on the master socket, got %d", smt)
	}
}

func TestSubPlacesSMT(t *testing.T) {
	m := Lehman()
	sub, err := m.SubPlaces(Place{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Place]bool{}
	for _, p := range sub {
		if seen[p] {
			t.Fatalf("duplicate slot %v", p)
		}
		seen[p] = true
	}
	if _, err := m.SubPlaces(Place{}, 17); err == nil {
		t.Error("17 sub-threads on a 16-slot node must error")
	}
}

func TestSameNodeRanks(t *testing.T) {
	got := SameNodeRanks(5, 16, 4)
	want := []int{4, 5, 6, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SameNodeRanks(5,16,4) = %v, want %v", got, want)
		}
	}
	// Ragged tail: 10 threads, 4 per node, rank 9 is on node 2 with rank 8.
	got = SameNodeRanks(9, 10, 4)
	if len(got) != 2 || got[0] != 8 || got[1] != 9 {
		t.Errorf("ragged tail SameNodeRanks = %v, want [8 9]", got)
	}
}

func TestPlaceGlobalCoreAndString(t *testing.T) {
	m := Lehman()
	p := Place{Node: 1, Socket: 1, Core: 3}
	if got := p.GlobalCore(m); got != 15 {
		t.Errorf("GlobalCore = %d, want 15", got)
	}
	if s := p.String(); s != "n1/s1/c3" {
		t.Errorf("String = %q", s)
	}
	p.SMT = 1
	if s := p.String(); s != "n1/s1/c3.1" {
		t.Errorf("String with SMT = %q", s)
	}
}

func TestLevelString(t *testing.T) {
	names := []struct {
		level Level
		want  string
	}{
		{LevelSelf, "self"}, {LevelSMT, "smt"}, {LevelSocket, "socket"},
		{LevelNode, "node"}, {LevelRemote, "remote"},
	}
	for _, tc := range names {
		if got := tc.level.String(); got != tc.want {
			t.Errorf("Level(%d).String() = %q, want %q", int(tc.level), got, tc.want)
		}
	}
}

func TestScatterPlaces(t *testing.T) {
	m := Lehman()
	pl, err := m.ScatterPlaces(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Scattered threads alternate sockets: 0,1,0,1.
	for i, p := range pl {
		if p.Node != 3 {
			t.Errorf("scatter[%d] on node %d", i, p.Node)
		}
		if p.Socket != i%2 {
			t.Errorf("scatter[%d] on socket %d, want %d", i, p.Socket, i%2)
		}
	}
	if _, err := m.ScatterPlaces(0, 99); err == nil {
		t.Error("oversubscribed scatter must error")
	}
	if _, err := m.ScatterPlaces(0, 0); err == nil {
		t.Error("zero scatter must error")
	}
}

func TestPresetXlateSuffixes(t *testing.T) {
	base, _ := ByName("pyramid")
	if base.XlateAssist || base.XlateCacheLines != 0 {
		t.Fatalf("bare preset has translation knobs set: %+v", base)
	}
	m, ok := ByName("pyramid+xcache")
	if !ok || m.XlateCacheLines != DefaultXlateCacheLines || m.XlateAssist {
		t.Fatalf("pyramid+xcache: ok=%v lines=%d assist=%v", ok, m.XlateCacheLines, m.XlateAssist)
	}
	if m.Name != "pyramid+xcache" {
		t.Errorf("suffixed preset name = %q", m.Name)
	}
	m, ok = ByName("lehman+xassist")
	if !ok || !m.XlateAssist || m.XlateCacheLines != 0 {
		t.Fatalf("lehman+xassist: ok=%v lines=%d assist=%v", ok, m.XlateCacheLines, m.XlateAssist)
	}
	m, ok = ByName("lehman+xcache+xassist")
	if !ok || !m.XlateAssist || m.XlateCacheLines != DefaultXlateCacheLines {
		t.Fatalf("combined suffixes: ok=%v lines=%d assist=%v", ok, m.XlateCacheLines, m.XlateAssist)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("suffixed machine invalid: %v", err)
	}
	for _, bad := range []string{"pyramid+", "pyramid+turbo", "nonesuch+xcache", "+xcache"} {
		if _, ok := ByName(bad); ok {
			t.Errorf("ByName(%q) resolved, want miss", bad)
		}
	}
	neg := Lehman()
	neg.XlateCacheLines = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative XlateCacheLines validated")
	}
}

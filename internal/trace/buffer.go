package trace

// Buffer is a Tracer that records the event stream in memory for later
// replay. It is the building block of deterministic parallel sweeps:
// each concurrently-running simulation traces into its own Buffer, and
// once every run has finished the buffers are replayed into the real
// sink in a fixed order, producing a stream — and therefore a Digest —
// identical to a sequential execution. Like every Tracer it needs no
// locking: a single engine delivers events from one goroutine at a time.
type Buffer struct {
	events []Event
}

// NewBuffer returns an empty recording sink.
func NewBuffer() *Buffer { return &Buffer{} }

// Emit records e.
func (b *Buffer) Emit(e Event) { b.events = append(b.events, e) }

// Len reports the number of recorded events.
func (b *Buffer) Len() int { return len(b.events) }

// ReplayInto delivers the recorded stream to t in emission order.
func (b *Buffer) ReplayInto(t Tracer) {
	for _, e := range b.events {
		t.Emit(e)
	}
}

// Events exposes the recorded stream. The slice is the buffer's live
// backing store: read it, do not retain it across a Reset or Emit.
func (b *Buffer) Events() []Event { return b.events }

// Reset discards the recorded stream, keeping the backing array for
// reuse. Sharded execution drains each lane's buffer at every window
// barrier, so the steady-state allocation cost of per-lane tracing is
// zero.
func (b *Buffer) Reset() { b.events = b.events[:0] }

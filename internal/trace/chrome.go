package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// ChromeWriter buffers the event stream and exports it as Chrome
// trace-event JSON (the format chrome://tracing and Perfetto load):
// virtual time is the timeline, each engine run becomes one process
// group (pid), and each simulated proc becomes a named thread track
// (tid). Spans render as nested B/E slices, instants as markers, and
// counters as counter tracks.
type ChromeWriter struct {
	events []Event
}

// NewChromeWriter returns an empty writer.
func NewChromeWriter() *ChromeWriter { return &ChromeWriter{} }

// Emit buffers one event.
func (w *ChromeWriter) Emit(e Event) { w.events = append(w.events, e) }

// Events reports how many events are buffered.
func (w *ChromeWriter) Events() int { return len(w.events) }

// engineTid is the tid used for engine-context events (Proc < 0); it is
// far above any real proc id so the track sorts last.
const engineTid = 999999

// chromeEvent is one record of the trace-event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func tid(proc int32) int {
	if proc < 0 {
		return engineTid
	}
	return int(proc)
}

// us converts virtual nanoseconds to the format's microsecond timestamps.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// Export writes the buffered events as a single JSON document. Open
// spans (daemon procs parked at simulation end) are closed at each run's
// final timestamp so every B has a matching E.
func (w *ChromeWriter) Export(out io.Writer) error {
	var ces []chromeEvent
	pid := 0
	started := false          // saw a non-boundary event in the current run
	var openStack map[int]int // tid -> open span depth
	var lastTs int64
	meta := func(pid, tid int, kind, name string) chromeEvent {
		return chromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name}}
	}
	counters := map[string]int64{} // running totals per pid/name
	closeRun := func() {
		// Sorted by tid: map order would make the export nondeterministic
		// whenever several procs end the run with open spans (e.g. parked
		// daemon pool workers).
		tids := make([]int, 0, len(openStack))
		for t := range openStack {
			tids = append(tids, t)
		}
		sort.Ints(tids)
		for _, t := range tids {
			for i := 0; i < openStack[t]; i++ {
				ces = append(ces, chromeEvent{Name: "", Ph: "E", Ts: us(lastTs), Pid: pid, Tid: t})
			}
		}
		openStack = map[int]int{}
	}
	openStack = map[int]int{}
	ces = append(ces, meta(pid, engineTid, "thread_name", "engine"))
	for _, e := range w.events {
		if e.Kind == KRunBegin {
			if started {
				closeRun()
				pid++
				counters = map[string]int64{}
				ces = append(ces, meta(pid, engineTid, "thread_name", "engine"))
				started = false
			}
			continue
		}
		started = true
		lastTs = e.Time
		t := tid(e.Proc)
		switch e.Kind {
		case KClock:
			// The timeline itself; no rendered record.
		case KProcSpawn:
			ces = append(ces,
				meta(pid, t, "thread_name", e.Name),
				chromeEvent{Name: "spawn", Cat: e.Cat, Ph: "i", Ts: us(e.Time),
					Pid: pid, Tid: t, S: "t"})
		case KProcExit:
			ces = append(ces, chromeEvent{Name: "exit", Cat: e.Cat, Ph: "i",
				Ts: us(e.Time), Pid: pid, Tid: t, S: "t"})
		case KProcPark:
			openStack[t]++
			ces = append(ces, chromeEvent{Name: "parked", Cat: "sim", Ph: "B",
				Ts: us(e.Time), Pid: pid, Tid: t,
				Args: map[string]any{"reason": e.Aux}})
		case KProcUnpark:
			if openStack[t] > 0 {
				openStack[t]--
				ces = append(ces, chromeEvent{Name: "parked", Ph: "E",
					Ts: us(e.Time), Pid: pid, Tid: t})
			}
		case KSpanBegin:
			openStack[t]++
			ces = append(ces, chromeEvent{Name: e.Name, Cat: e.Cat, Ph: "B",
				Ts: us(e.Time), Pid: pid, Tid: t, Args: spanArgs(e)})
		case KSpanEnd:
			if openStack[t] > 0 {
				openStack[t]--
				ces = append(ces, chromeEvent{Name: e.Name, Ph: "E",
					Ts: us(e.Time), Pid: pid, Tid: t})
			}
		case KInstant:
			ces = append(ces, chromeEvent{Name: e.Name, Cat: e.Cat, Ph: "i",
				Ts: us(e.Time), Pid: pid, Tid: t, S: instantScope(e.Proc),
				Args: spanArgs(e)})
		case KCounter:
			counters[e.Name] += e.Arg
			ces = append(ces, chromeEvent{Name: e.Name, Cat: e.Cat, Ph: "C",
				Ts: us(e.Time), Pid: pid, Tid: 0,
				Args: map[string]any{"value": counters[e.Name]}})
		}
	}
	closeRun()
	enc := json.NewEncoder(out)
	return enc.Encode(chromeFile{TraceEvents: ces, DisplayTimeUnit: "ns"})
}

func instantScope(proc int32) string {
	if proc < 0 {
		return "p"
	}
	return "t"
}

func spanArgs(e Event) map[string]any {
	if e.Aux == "" && e.Arg == 0 && e.Arg2 == 0 {
		return nil
	}
	args := map[string]any{}
	if e.Aux != "" {
		args["aux"] = e.Aux
	}
	if e.Arg != 0 {
		args["arg"] = e.Arg
	}
	if e.Arg2 != 0 {
		args["arg2"] = e.Arg2
	}
	return args
}

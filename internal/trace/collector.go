package trace

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Collector aggregates the event stream into counters, span statistics
// and log2 duration histograms, keyed by "cat/name". It is the sink the
// experiments and perf query mechanically: steal percentages, phase
// breakdowns, message counts — derived from the trace rather than from
// ad-hoc counting in the apps.
type Collector struct {
	counts   map[string]int64           // instant/lifecycle occurrences by cat/name
	sums     map[string]int64           // sum of Arg over instants by cat/name
	instProc map[string]map[int32]int64 // instant occurrences by cat/name per proc
	counters map[string]int64           // KCounter totals by bare counter name
	spans    map[string]*SpanStat
	open     map[int32][]openSpan
	events   int64
}

type openSpan struct {
	key   string
	start int64
}

// SpanStat aggregates the closed spans of one cat/name key.
type SpanStat struct {
	Count int64
	Total int64 // summed duration, ns
	Min   int64
	Max   int64
	// ByProc is the summed duration per emitting process.
	ByProc map[int32]int64
	// Buckets is a log2 histogram: Buckets[i] counts spans whose duration
	// in nanoseconds has bit length i (bucket 0 holds zero-length spans).
	Buckets [65]int64
}

// MaxByProc reports the largest per-process duration total — the metric
// phase breakdowns report (the slowest thread bounds the phase).
func (s *SpanStat) MaxByProc() int64 {
	var m int64
	for _, v := range s.ByProc {
		if v > m {
			m = v
		}
	}
	return m
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		counts:   map[string]int64{},
		sums:     map[string]int64{},
		instProc: map[string]map[int32]int64{},
		counters: map[string]int64{},
		spans:    map[string]*SpanStat{},
		open:     map[int32][]openSpan{},
	}
}

func key(cat, name string) string { return cat + "/" + name }

// Emit aggregates one event.
func (c *Collector) Emit(e Event) {
	c.events++
	switch e.Kind {
	case KSpanBegin:
		c.open[e.Proc] = append(c.open[e.Proc], openSpan{key(e.Cat, e.Name), e.Time})
	case KSpanEnd:
		stack := c.open[e.Proc]
		if len(stack) == 0 {
			c.counts["trace/unmatched-end"]++
			return
		}
		sp := stack[len(stack)-1]
		c.open[e.Proc] = stack[:len(stack)-1]
		c.record(sp.key, e.Proc, e.Time-sp.start)
	case KInstant:
		k := key(e.Cat, e.Name)
		c.counts[k]++
		c.sums[k] += e.Arg
		pp := c.instProc[k]
		if pp == nil {
			pp = map[int32]int64{}
			c.instProc[k] = pp
		}
		pp[e.Proc]++
	case KCounter:
		c.counters[e.Name] += e.Arg
	case KProcSpawn, KProcPark, KProcUnpark, KProcExit:
		c.counts[key("sim", e.Kind.String())]++
	}
}

func (c *Collector) record(k string, proc int32, d int64) {
	s := c.spans[k]
	if s == nil {
		s = &SpanStat{Min: d, ByProc: map[int32]int64{}}
		c.spans[k] = s
	}
	s.Count++
	s.Total += d
	if d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	s.ByProc[proc] += d
	s.Buckets[bits.Len64(uint64(d))]++
}

// Events reports the number of events aggregated.
func (c *Collector) Events() int64 { return c.events }

// Count reports how many instants of cat/name were seen.
func (c *Collector) Count(cat, name string) int64 { return c.counts[key(cat, name)] }

// Sum reports the summed Arg over instants of cat/name.
func (c *Collector) Sum(cat, name string) int64 { return c.sums[key(cat, name)] }

// CountByProc reports, per emitting process, how many instants of
// cat/name were seen. The returned slice is ordered by ascending process
// id, so consumers stay deterministic without sorting map keys
// themselves; feed the counts to perf.Quantile for per-thread
// distribution stats (the Table 3.2 percentile columns).
func (c *Collector) CountByProc(cat, name string) []int64 {
	pp := c.instProc[key(cat, name)]
	if len(pp) == 0 {
		return nil
	}
	procs := make([]int, 0, len(pp))
	for p := range pp {
		procs = append(procs, int(p))
	}
	sort.Ints(procs)
	out := make([]int64, len(procs))
	for i, p := range procs {
		out[i] = pp[int32(p)]
	}
	return out
}

// Counter reports the named counter's total.
func (c *Collector) Counter(name string) int64 { return c.counters[name] }

// CounterTotals returns a copy of every named counter total.
func (c *Collector) CounterTotals() map[string]int64 {
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Span reports the aggregated statistics of cat/name spans; the zero
// SpanStat if none closed.
func (c *Collector) Span(cat, name string) SpanStat {
	if s := c.spans[key(cat, name)]; s != nil {
		return *s
	}
	return SpanStat{}
}

// SpanKeys lists the cat/name keys with at least one closed span, sorted.
func (c *Collector) SpanKeys() []string {
	keys := make([]string, 0, len(c.spans))
	for k := range c.spans {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders a compact summary: span totals then counters, sorted.
func (c *Collector) String() string {
	var b strings.Builder
	for _, k := range c.SpanKeys() {
		s := c.spans[k]
		fmt.Fprintf(&b, "%s: n=%d total=%dns max=%dns\n", k, s.Count, s.Total, s.Max)
	}
	names := make([]string, 0, len(c.counters))
	for k := range c.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&b, "%s=%d\n", k, c.counters[k])
	}
	return b.String()
}

package trace

// Communication-matrix event vocabulary. The model layers that initiate
// logical transfers (the upc runtime's one-sided paths, mpi's transport)
// emit one KInstant in category CatComm per transfer, carrying the byte
// volume in Arg and the packed endpoint pair in Arg2. Aux classifies the
// path the configured runtime took — the distinction the paper's
// hierarchy argument rests on: direct shared memory (PSHM or pthreads),
// network loopback through the HCA, or the network conduit. The metrics
// comm-matrix collector aggregates these events to thread-, group- and
// node-granularity; the fields here are the contract between emitters
// and that collector.
const (
	// CatComm is the event category of communication-matrix instants.
	CatComm = "comm"
	// CatLink is the event category of link-occupancy instants (Name is
	// the link name, Arg the active flow count after the change). Emitted
	// only when the installed sink opts in via UtilObserver.
	CatLink = "link"
)

// Path classes of a CatComm event's Aux field.
const (
	// ClassSelf is a thread's transfer to its own partition (a local
	// memcpy through a cast pointer).
	ClassSelf = "self"
	// ClassPSHM is a same-node transfer through shared memory (the PSHM
	// segment of the process backend, or the common address space of the
	// pthreads backend; mpi's sm transport classifies here too).
	ClassPSHM = "pshm"
	// ClassLoopback is a same-node transfer that still crosses the NIC
	// (process backend without PSHM) — exactly the traffic PSHM avoids.
	ClassLoopback = "loopback"
	// ClassNetwork is a cross-node transfer on the conduit.
	ClassNetwork = "network"
	// ClassFault marks recovery-visibility events rather than transfers:
	// drops, duplicates and delays injected by the fault layer (emitted by
	// fabric with node-only endpoint coordinates) and the runtime's
	// reactions — timeouts, retries, failovers — emitted with full thread
	// endpoints. Arg carries the affected byte volume. The comm-matrix
	// collector aggregates them like any other class, so recovery activity
	// is visible per endpoint pair in the manifest.
	ClassFault = "fault"
)

// endpointMask limits each packed endpoint coordinate to 16 bits: 65536
// threads or nodes, far above any modeled machine.
const endpointMask = 0xffff

// PackEndpoints encodes a transfer's logical endpoints — source and
// destination thread (or rank) plus their nodes — into one int64 for a
// CatComm event's Arg2.
func PackEndpoints(srcThread, dstThread, srcNode, dstNode int) int64 {
	return int64(srcThread&endpointMask)<<48 |
		int64(dstThread&endpointMask)<<32 |
		int64(srcNode&endpointMask)<<16 |
		int64(dstNode&endpointMask)
}

// UnpackEndpoints decodes a packed endpoint pair.
func UnpackEndpoints(v int64) (srcThread, dstThread, srcNode, dstNode int) {
	return int(v >> 48 & endpointMask),
		int(v >> 32 & endpointMask),
		int(v >> 16 & endpointMask),
		int(v & endpointMask)
}

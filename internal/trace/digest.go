package trace

import "fmt"

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// Digest folds the event stream into an order-sensitive FNV-1a hash: a
// complete fingerprint of a run. Two simulations with the same seed and
// the same code produce identical digests — the engine's determinism
// guarantee turned into a checkable (and CI-gated) property.
type Digest struct {
	h uint64
	n int64
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{h: fnvOffset} }

// Emit folds one event into the hash.
func (d *Digest) Emit(e Event) {
	d.n++
	d.word(uint64(e.Time))
	d.word(uint64(e.Kind))
	d.word(uint64(e.Proc))
	d.str(e.Cat)
	d.str(e.Name)
	d.str(e.Aux)
	d.word(uint64(e.Arg))
	d.word(uint64(e.Arg2))
}

func (d *Digest) word(v uint64) {
	h := d.h
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	d.h = h
}

func (d *Digest) str(s string) {
	d.word(uint64(len(s)))
	h := d.h
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	d.h = h
}

// Sum64 reports the current hash value.
func (d *Digest) Sum64() uint64 { return d.h }

// Events reports how many events have been folded in.
func (d *Digest) Events() int64 { return d.n }

// String renders the digest as 16 hex digits.
func (d *Digest) String() string { return fmt.Sprintf("%016x", d.h) }

package trace

// Completion-edge event vocabulary. The model layers emit one KInstant
// in category CatEdge per happens-before edge they establish, carrying
// the edge-specific sequence or volume in Arg and the packed endpoint
// pair (PackEndpoints) in Arg2. The causality analyzer replays these
// instants to reconstruct the synchronization graph — which thread's
// arrival released a barrier, which holder handed a lock to which
// waiter, which node's delivery completed a one-sided transfer — and
// walks blame back along them. Emission sits behind the EdgeObserver
// capability: no installed sink asking for edges means no instants and
// no argument computation, so the untraced hot path stays at 0
// allocs/op (pinned by the upc alloc-regression tests).
const (
	// CatEdge is the event category of completion-edge instants.
	CatEdge = "edge"

	// EdgeBarArrive records one thread's arrival at a barrier or
	// collective generation. Proc is the arriving process, Arg the
	// generation sequence number, Arg2 the packed (thread,thread,
	// node,node) identity of the arriver, Aux the site kind
	// ("barrier" or "coll").
	EdgeBarArrive = "bar-arrive"
	// EdgeBarRelease records the arrival that completes a generation
	// (the release of every waiter). Proc is the last arriver, Arg the
	// generation sequence, Arg2 the arriver's packed identity, Aux the
	// site kind.
	EdgeBarRelease = "bar-release"
	// EdgeLockGrant records a contended lock handoff. Proc is the
	// acquiring process, Arg the lock's home thread, Arg2 packs
	// (prevHolderThread, acquirerThread, prevHolderNode, acquirerNode).
	EdgeLockGrant = "lock-grant"
	// EdgeDeliver records a one-sided transfer leg completing at its
	// destination (fabric put/get legs, ShardNet cross-lane RPCs). Arg
	// is the byte volume, Arg2 packs the src/dst nodes, Aux the
	// conduit or lane label.
	EdgeDeliver = "deliver"
	// EdgeRetry records a fault-layer reissue: the waiter timed out and
	// re-injected the operation. Proc is the retrying process, Arg the
	// attempt number, Arg2 the packed endpoints of the stalled
	// transfer.
	EdgeRetry = "retry"
	// EdgeMsgMatch records a two-sided receive matching its send (the
	// late-sender edge). Proc is the receiving process, Arg the byte
	// volume, Arg2 packs (senderRank, receiverRank, senderNode,
	// receiverNode).
	EdgeMsgMatch = "msg-match"
	// EdgeCkpt records a barrier-aligned checkpoint replica landing at
	// its buddy. Proc is the checkpointing process, Arg the snapshot byte
	// volume, Arg2 packs (ownerThread, buddyThread, ownerNode,
	// buddyNode), Aux the barrier generation as decimal text.
	EdgeCkpt = "ckpt"
	// EdgeRejoin records a reincarnated thread re-entering membership:
	// dead[] cleared, checkpoint restored, barrier/collective and steal
	// sets re-admitted. Proc is the rejoining process, Arg the restored
	// byte volume, Arg2 packs (buddyThread, rejoinerThread, buddyNode,
	// rejoinerNode) — the happens-before edge runs from the replica
	// holder to the rejoiner.
	EdgeRejoin = "rejoin"
)

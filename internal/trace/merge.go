package trace

// MergeStreams k-way merges several time-sorted event streams into dst,
// ordering by (Time, stream index) and preserving each stream's own
// emission order among equal timestamps. It is the replay half of
// sharded execution: each lane engine records one window's events into
// its own Buffer, and the group merges the buffers at the barrier, so
// the combined stream — and therefore the TraceDigest and every
// manifest built from it — is a pure function of the simulation
// content, independent of how many worker threads advanced the lanes.
//
// Streams must individually be sorted by Time (engine emission order
// guarantees this: virtual time never runs backwards within a lane).
func MergeStreams(dst Tracer, streams [][]Event) {
	// pos[i] is the cursor into streams[i].
	switch len(streams) {
	case 0:
		return
	case 1:
		for _, e := range streams[0] {
			dst.Emit(e)
		}
		return
	}
	pos := make([]int, len(streams))
	for {
		min := -1
		var minT int64
		for i, s := range streams {
			if pos[i] >= len(s) {
				continue
			}
			if t := s[pos[i]].Time; min < 0 || t < minT {
				min, minT = i, t
			}
		}
		if min < 0 {
			return
		}
		// Drain the run of equal-or-earlier-than-the-next-contender events
		// from the winning stream in one go: long same-lane bursts (the
		// common case — a proc computing between cross-lane messages) cost
		// one scan of the contenders instead of one per event.
		s := streams[min]
		next := int64(0)
		haveNext := false
		for i, t := range streams {
			if i == min || pos[i] >= len(t) {
				continue
			}
			if v := t[pos[i]].Time; !haveNext || v < next {
				next, haveNext = v, true
			}
		}
		p := pos[min]
		for p < len(s) && (!haveNext || s[p].Time < next || (s[p].Time == next && min < lowestReady(streams, pos, min, next))) {
			dst.Emit(s[p])
			p++
		}
		pos[min] = p
	}
}

// lowestReady reports the lowest stream index (other than skip) whose
// cursor sits at time t, or len(streams) if none does. It resolves the
// equal-timestamp tie: the event from the lowest lane index goes first.
func lowestReady(streams [][]Event, pos []int, skip int, t int64) int {
	for i, s := range streams {
		if i == skip || pos[i] >= len(s) {
			continue
		}
		if s[pos[i]].Time == t {
			return i
		}
	}
	return len(streams)
}

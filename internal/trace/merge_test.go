package trace

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMergeStreams checks the (Time, stream index) order against a
// reference stable sort, on randomized time-sorted streams with heavy
// timestamp collisions.
func TestMergeStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		streams := make([][]Event, k)
		type keyed struct {
			e      Event
			stream int
			pos    int
		}
		var all []keyed
		for i := range streams {
			n := rng.Intn(20)
			now := int64(0)
			for j := 0; j < n; j++ {
				now += int64(rng.Intn(3)) // frequent equal timestamps
				e := Event{Time: now, Kind: KInstant, Proc: int32(i), Arg: int64(j)}
				streams[i] = append(streams[i], e)
				all = append(all, keyed{e, i, j})
			}
		}
		sort.SliceStable(all, func(a, b int) bool {
			if all[a].e.Time != all[b].e.Time {
				return all[a].e.Time < all[b].e.Time
			}
			if all[a].stream != all[b].stream {
				return all[a].stream < all[b].stream
			}
			return all[a].pos < all[b].pos
		})
		var got Buffer
		MergeStreams(&got, streams)
		if got.Len() != len(all) {
			t.Fatalf("trial %d: merged %d events, want %d", trial, got.Len(), len(all))
		}
		for i, e := range got.Events() {
			if e != all[i].e {
				t.Fatalf("trial %d: event %d = %+v, want %+v", trial, i, e, all[i].e)
			}
		}
	}
}

// TestMergeStreamsDigest: merging must be reference-equal for the
// digest too (the property sharded execution relies on).
func TestMergeStreamsDigest(t *testing.T) {
	a := []Event{{Time: 1, Name: "a1"}, {Time: 5, Name: "a2"}}
	b := []Event{{Time: 1, Name: "b1"}, {Time: 1, Name: "b2"}, {Time: 9, Name: "b3"}}
	d := NewDigest()
	MergeStreams(d, [][]Event{a, b})
	ref := NewDigest()
	for _, e := range []Event{a[0], b[0], b[1], a[1], b[2]} {
		ref.Emit(e)
	}
	if d.Sum64() != ref.Sum64() || d.Events() != 5 {
		t.Fatalf("digest %016x (%d), want %016x (5)", d.Sum64(), d.Events(), ref.Sum64())
	}
}

package trace

import (
	"math/rand"
	"sort"
	"testing"
)

// TestMergeStreams checks the (Time, stream index) order against a
// reference stable sort, on randomized time-sorted streams with heavy
// timestamp collisions.
func TestMergeStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		streams := make([][]Event, k)
		type keyed struct {
			e      Event
			stream int
			pos    int
		}
		var all []keyed
		for i := range streams {
			n := rng.Intn(20)
			now := int64(0)
			for j := 0; j < n; j++ {
				now += int64(rng.Intn(3)) // frequent equal timestamps
				e := Event{Time: now, Kind: KInstant, Proc: int32(i), Arg: int64(j)}
				streams[i] = append(streams[i], e)
				all = append(all, keyed{e, i, j})
			}
		}
		sort.SliceStable(all, func(a, b int) bool {
			if all[a].e.Time != all[b].e.Time {
				return all[a].e.Time < all[b].e.Time
			}
			if all[a].stream != all[b].stream {
				return all[a].stream < all[b].stream
			}
			return all[a].pos < all[b].pos
		})
		var got Buffer
		MergeStreams(&got, streams)
		if got.Len() != len(all) {
			t.Fatalf("trial %d: merged %d events, want %d", trial, got.Len(), len(all))
		}
		for i, e := range got.Events() {
			if e != all[i].e {
				t.Fatalf("trial %d: event %d = %+v, want %+v", trial, i, e, all[i].e)
			}
		}
	}
}

// TestMergeStreamsDigest: merging must be reference-equal for the
// digest too (the property sharded execution relies on).
func TestMergeStreamsDigest(t *testing.T) {
	a := []Event{{Time: 1, Name: "a1"}, {Time: 5, Name: "a2"}}
	b := []Event{{Time: 1, Name: "b1"}, {Time: 1, Name: "b2"}, {Time: 9, Name: "b3"}}
	d := NewDigest()
	MergeStreams(d, [][]Event{a, b})
	ref := NewDigest()
	for _, e := range []Event{a[0], b[0], b[1], a[1], b[2]} {
		ref.Emit(e)
	}
	if d.Sum64() != ref.Sum64() || d.Events() != 5 {
		t.Fatalf("digest %016x (%d), want %016x (5)", d.Sum64(), d.Events(), ref.Sum64())
	}
}

// mergeRef is the reference order: stable sort by (Time, stream index,
// intra-stream position).
func mergeRef(streams [][]Event) []Event {
	type keyed struct {
		e           Event
		stream, pos int
	}
	var all []keyed
	for i, s := range streams {
		for j, e := range s {
			all = append(all, keyed{e, i, j})
		}
	}
	sort.SliceStable(all, func(a, b int) bool {
		if all[a].e.Time != all[b].e.Time {
			return all[a].e.Time < all[b].e.Time
		}
		if all[a].stream != all[b].stream {
			return all[a].stream < all[b].stream
		}
		return all[a].pos < all[b].pos
	})
	out := make([]Event, len(all))
	for i, k := range all {
		out[i] = k.e
	}
	return out
}

// checkMerge asserts MergeStreams equals the reference order.
func checkMerge(t *testing.T, name string, streams [][]Event) {
	t.Helper()
	want := mergeRef(streams)
	var got Buffer
	MergeStreams(&got, streams)
	if got.Len() != len(want) {
		t.Fatalf("%s: merged %d events, want %d", name, got.Len(), len(want))
	}
	for i, e := range got.Events() {
		if e != want[i] {
			t.Fatalf("%s: event %d = %+v, want %+v", name, i, e, want[i])
		}
	}
}

// TestMergeStreamsTieBreaks pins the ordering contract the causality
// replay builds on, at its edges: every-lane ties at a single instant,
// long equal-time bursts within one lane racing a lower lane's single
// event, byte-identical events duplicated across lanes, and lanes that
// drain at different rates (including empty ones).
func TestMergeStreamsTieBreaks(t *testing.T) {
	ev := func(lane int32, tm int64, j int64) Event {
		return Event{Time: tm, Kind: KInstant, Proc: lane, Arg: j}
	}
	t.Run("all-lanes-equal-time", func(t *testing.T) {
		// Three lanes, every event at t=7: output must be lane 0's burst,
		// then lane 1's, then lane 2's, each in emission order.
		streams := [][]Event{
			{ev(0, 7, 0), ev(0, 7, 1)},
			{ev(1, 7, 0), ev(1, 7, 1), ev(1, 7, 2)},
			{ev(2, 7, 0)},
		}
		checkMerge(t, "all-equal", streams)
	})
	t.Run("burst-vs-lower-lane", func(t *testing.T) {
		// Lane 1 has a long burst at t=5; lane 0 reaches t=5 with a single
		// event. Lane 0 must cut in before the whole burst, not after.
		streams := [][]Event{
			{ev(0, 5, 0)},
			{ev(1, 3, 0), ev(1, 5, 1), ev(1, 5, 2), ev(1, 5, 3)},
		}
		checkMerge(t, "burst", streams)
		var got Buffer
		MergeStreams(&got, streams)
		es := got.Events()
		if es[1] != streams[0][0] {
			t.Errorf("lane 0's t=5 event must precede lane 1's t=5 burst, got %+v", es[:2])
		}
	})
	t.Run("cross-lane-duplicates", func(t *testing.T) {
		// The same payload in two lanes (a broadcast observed everywhere):
		// both copies survive, lower lane first.
		dup := Event{Time: 4, Kind: KInstant, Name: "dup"}
		streams := [][]Event{{dup}, {dup}, {dup}}
		checkMerge(t, "dups", streams)
		var got Buffer
		MergeStreams(&got, streams)
		if got.Len() != 3 {
			t.Fatalf("duplicates collapsed: %d events, want 3", got.Len())
		}
	})
	t.Run("empty-and-uneven-lanes", func(t *testing.T) {
		streams := [][]Event{
			nil,
			{ev(1, 1, 0), ev(1, 1, 1)},
			nil,
			{ev(3, 0, 0), ev(3, 1, 0), ev(3, 2, 0)},
		}
		checkMerge(t, "uneven", streams)
	})
}

// TestMergeStreamsChaos hammers the tie-break with adversarial random
// streams: tiny time domains (so nearly everything collides), identical
// events appearing in multiple lanes, and lanes of wildly different
// lengths. The merged order must match the reference stable sort on
// every trial.
func TestMergeStreamsChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		k := 2 + rng.Intn(7)
		maxT := 1 + rng.Intn(4) // 1..4 distinct timestamps: constant ties
		streams := make([][]Event, k)
		for i := range streams {
			n := rng.Intn(12)
			now := int64(rng.Intn(maxT))
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					now += int64(rng.Intn(maxT))
				}
				e := Event{Time: now, Kind: KInstant, Arg: int64(rng.Intn(2))}
				if rng.Intn(4) == 0 {
					e.Proc = int32(i) // sometimes lane-identifying, sometimes not
				}
				streams[i] = append(streams[i], e)
			}
		}
		checkMerge(t, "chaos", streams)
	}
}

package trace

import (
	"fmt"
	"os"
)

// Session ties the process-default tracer to a Chrome trace file and a
// digest for the duration of one traced run (the -trace=out.json flag of
// the cmd/upc-* binaries). Every engine created between StartSession and
// Close feeds both sinks; Close restores the previous default, writes
// the JSON file, and leaves the digest readable.
type Session struct {
	prev Tracer
	cw   *ChromeWriter
	dg   *Digest
	path string
	f    *os.File
	err  error
}

// StartSession installs a ChromeWriter+Digest pair as the process
// default tracer. path names the JSON file Close will write; "" runs a
// digest-only session — no ChromeWriter, so nothing is buffered and the
// memory cost stays flat no matter how many events the run emits (this
// is what the CI determinism gate uses on the large sweeps). The file is
// created eagerly so an unwritable path fails before the run, not after
// it.
func StartSession(path string) *Session {
	s := &Session{prev: Default(), dg: NewDigest(), path: path}
	sink := Tracer(s.dg)
	if path != "" {
		s.cw = NewChromeWriter()
		sink = Multi(s.cw, s.dg)
		if s.f, s.err = os.Create(path); s.err != nil {
			s.err = fmt.Errorf("trace: %w", s.err)
		}
	}
	SetDefault(Tee(s.prev, sink))
	return s
}

// Err reports whether the session's trace file could be created; call
// after StartSession to fail fast on a bad path.
func (s *Session) Err() error { return s.err }

// Attach adds another sink to the session's process-default chain (the
// -metrics collectors ride the same stream as the digest). Call between
// StartSession and the first simulation; Close removes it along with the
// session's own sinks.
func (s *Session) Attach(t Tracer) {
	if t != nil {
		SetDefault(Tee(Default(), t))
	}
}

// Close restores the previous default tracer and writes the trace file.
func (s *Session) Close() error {
	SetDefault(s.prev)
	if s.path == "" {
		return nil
	}
	if s.err != nil {
		return s.err
	}
	if err := s.cw.Export(s.f); err != nil {
		s.f.Close()
		return fmt.Errorf("trace: exporting %s: %w", s.path, err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Digest reports the hash over every event the session observed.
func (s *Session) Digest() uint64 { return s.dg.Sum64() }

// Events reports how many events the session observed.
func (s *Session) Events() int64 { return s.dg.Events() }

// Package trace is the structured event-tracing layer of the simulation
// substrate. The engine and the model layers above it (fabric, upc,
// subthread, the apps) emit Events — proc lifecycle, virtual-clock
// advances, resource spans, messages, counters — into a Tracer sink.
// Three sinks are provided: Collector (counter/histogram aggregation,
// queried by perf and the experiments), ChromeWriter (Chrome trace-event
// JSON, loadable in Perfetto with virtual time as the timeline and procs
// as tracks), and Digest (an order-sensitive hash of the event stream —
// the run's fingerprint, identical across same-seed runs by the engine's
// determinism guarantee).
//
// The package sits below internal/sim and imports nothing from the
// repository, so every layer can depend on it. Times are raw virtual
// nanoseconds (sim.Time is an int64 of nanoseconds).
package trace

// Kind classifies a trace event.
type Kind uint8

const (
	// KRunBegin marks the start of one engine's event stream. Sinks that
	// span several simulations (a sweep traced into one file) use it as a
	// run boundary.
	KRunBegin Kind = iota
	// KClock records a virtual-clock advance; Arg is the new time.
	KClock
	// KProcSpawn records process creation; Name is the process name.
	KProcSpawn
	// KProcPark records a process suspending; Aux is the park reason.
	KProcPark
	// KProcUnpark records a parked process resuming.
	KProcUnpark
	// KProcExit records process termination.
	KProcExit
	// KSpanBegin opens a named interval on the process's track (a barrier,
	// a lock acquisition, a benchmark phase). Spans nest per process.
	KSpanBegin
	// KSpanEnd closes the innermost open span on the process's track.
	KSpanEnd
	// KInstant records a point event (a message injection, a steal).
	KInstant
	// KCounter adds Arg to the named counter.
	KCounter
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KRunBegin:
		return "run-begin"
	case KClock:
		return "clock"
	case KProcSpawn:
		return "spawn"
	case KProcPark:
		return "park"
	case KProcUnpark:
		return "unpark"
	case KProcExit:
		return "exit"
	case KSpanBegin:
		return "span-begin"
	case KSpanEnd:
		return "span-end"
	case KInstant:
		return "instant"
	case KCounter:
		return "counter"
	}
	return "?"
}

// EngineProc is the Proc value of events emitted from engine context
// (completion callbacks) rather than from a simulated process.
const EngineProc int32 = -1

// Event is one trace record.
type Event struct {
	// Time is the virtual time of the event in nanoseconds.
	Time int64
	// Kind classifies the record.
	Kind Kind
	// Proc is the emitting process id, or EngineProc for engine context.
	Proc int32
	// Cat groups events by layer: "sim", "fabric", "upc", "subthread", or
	// an application name.
	Cat string
	// Name is the event or span name within its category.
	Name string
	// Aux is a secondary label (park reason, conduit name, locality).
	Aux string
	// Arg is the primary payload (bytes, a count, a counter delta).
	Arg int64
	// Arg2 is a secondary payload (connection occupancy, a victim id).
	Arg2 int64
}

// Tracer consumes a stream of events. Implementations need no internal
// locking: the engine delivers events from at most one goroutine at a
// time (the coroutine handoff serializes emitters).
type Tracer interface {
	Emit(Event)
}

// ClockObserver is the opt-in capability for per-advance KClock events.
// The engine emits one KClock per virtual-clock move — by far the most
// frequent event in a run — so it asks the sink first and skips the
// emission entirely unless the sink implements this interface and
// returns true. None of the built-in sinks ask for clocks (ChromeWriter
// and Collector ignore them; Digest hashes whatever arrives); wrap a
// sink in Clocked to request them.
type ClockObserver interface {
	ObserveClock() bool
}

// WantsClock reports whether t opted into KClock events.
func WantsClock(t Tracer) bool {
	if co, ok := t.(ClockObserver); ok {
		return co.ObserveClock()
	}
	return false
}

// UtilObserver is the opt-in capability for link-occupancy events: one
// KInstant in category CatLink per fabric-link active-count change. Like
// clocks these are high-frequency (every flow start and finish touches
// every link it crosses), so the fabric asks the sink first and skips the
// emission unless the installed tracer implements this interface and
// returns true. The metrics utilization collector is the one built-in
// sink that asks for them; wrap any other sink in Utiled to request them.
type UtilObserver interface {
	ObserveUtil() bool
}

// WantsUtil reports whether t opted into link-occupancy events.
func WantsUtil(t Tracer) bool {
	if uo, ok := t.(UtilObserver); ok {
		return uo.ObserveUtil()
	}
	return false
}

// EdgeObserver is the opt-in capability for completion-edge events: one
// KInstant in category CatEdge per happens-before edge the model layers
// establish (barrier/collective arrivals and releases, lock handoffs,
// fabric and ShardNet deliveries, fault retries, message matches). The
// causality analyzer is the one built-in sink that asks for them; the
// emitters skip the instants — and every argument computation feeding
// them — unless the installed tracer implements this interface and
// returns true, keeping the untraced hot path allocation-free.
type EdgeObserver interface {
	ObserveEdge() bool
}

// WantsEdge reports whether t opted into completion-edge events.
func WantsEdge(t Tracer) bool {
	if eo, ok := t.(EdgeObserver); ok {
		return eo.ObserveEdge()
	}
	return false
}

// caps wraps a sink with additional opt-in capabilities. Capabilities the
// wrapper does not grant itself are delegated to the wrapped sink, so
// Clocked and Utiled compose in either order.
type caps struct {
	Tracer
	clock bool
	util  bool
	edge  bool
}

func (c caps) ObserveClock() bool { return c.clock || WantsClock(c.Tracer) }
func (c caps) ObserveUtil() bool  { return c.util || WantsUtil(c.Tracer) }
func (c caps) ObserveEdge() bool  { return c.edge || WantsEdge(c.Tracer) }

// Clocked wraps t so engines emit per-advance KClock events into it
// (full-fidelity mode: every clock move appears in the stream).
func Clocked(t Tracer) Tracer {
	if t == nil {
		return nil
	}
	return caps{Tracer: t, clock: true}
}

// Utiled wraps t so fabrics emit link-occupancy events into it (see
// UtilObserver).
func Utiled(t Tracer) Tracer {
	if t == nil {
		return nil
	}
	return caps{Tracer: t, util: true}
}

// Edged wraps t so the model layers emit completion-edge events into it
// (see EdgeObserver).
func Edged(t Tracer) Tracer {
	if t == nil {
		return nil
	}
	return caps{Tracer: t, edge: true}
}

// multi fans events out to several sinks.
type multi []Tracer

func (m multi) Emit(e Event) {
	for _, t := range m {
		t.Emit(e)
	}
}

// ObserveClock reports whether any fanned-out sink wants KClock events.
func (m multi) ObserveClock() bool {
	for _, t := range m {
		if WantsClock(t) {
			return true
		}
	}
	return false
}

// ObserveUtil reports whether any fanned-out sink wants link-occupancy
// events.
func (m multi) ObserveUtil() bool {
	for _, t := range m {
		if WantsUtil(t) {
			return true
		}
	}
	return false
}

// ObserveEdge reports whether any fanned-out sink wants completion-edge
// events.
func (m multi) ObserveEdge() bool {
	for _, t := range m {
		if WantsEdge(t) {
			return true
		}
	}
	return false
}

// Multi returns a tracer that forwards every event to each sink in order.
func Multi(sinks ...Tracer) Tracer {
	flat := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			flat = append(flat, s)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	return flat
}

// Tee combines two possibly-nil tracers, returning nil if both are nil.
func Tee(a, b Tracer) Tracer {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return Multi(a, b)
}

// defaultTracer is the process-wide tracer that sim.New installs on every
// new engine. It exists so the cmd/upc-* binaries can trace whole
// experiment sweeps (many engines, created deep inside the apps) without
// threading a Tracer through every Config. It is read at engine creation
// only; set it before building simulations, not concurrently with them.
var defaultTracer Tracer

// SetDefault installs the tracer that new engines inherit (nil to clear).
func SetDefault(t Tracer) { defaultTracer = t }

// Default reports the tracer new engines inherit, or nil.
func Default() Tracer { return defaultTracer }

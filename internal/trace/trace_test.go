package trace

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
)

// sample builds a small, well-formed event stream: two runs, spans,
// instants and counters across two procs plus the engine track.
func sample() []Event {
	return []Event{
		{Kind: KRunBegin, Proc: EngineProc, Cat: "sim", Name: "run", Arg: 1},
		{Time: 0, Kind: KProcSpawn, Proc: 0, Cat: "sim", Name: "upc0"},
		{Time: 0, Kind: KProcSpawn, Proc: 1, Cat: "sim", Name: "upc1"},
		{Time: 10, Kind: KSpanBegin, Proc: 0, Cat: "upc", Name: "barrier"},
		{Time: 15, Kind: KSpanBegin, Proc: 1, Cat: "upc", Name: "barrier"},
		{Time: 20, Kind: KClock, Proc: EngineProc, Cat: "sim", Name: "clock", Arg: 20},
		{Time: 20, Kind: KInstant, Proc: 0, Cat: "fabric", Name: "put", Aux: "ibv-qdr", Arg: 4096, Arg2: 1},
		{Time: 25, Kind: KSpanEnd, Proc: 0, Cat: "upc", Name: "barrier"},
		{Time: 25, Kind: KSpanEnd, Proc: 1, Cat: "upc", Name: "barrier"},
		{Time: 30, Kind: KCounter, Proc: 0, Cat: "uts", Name: "steals", Arg: 3},
		{Time: 40, Kind: KCounter, Proc: 1, Cat: "uts", Name: "steals", Arg: 2},
		{Time: 50, Kind: KProcPark, Proc: 1, Cat: "sim", Name: "upc1", Aux: "advance"},
		{Time: 60, Kind: KProcUnpark, Proc: 1, Cat: "sim", Name: "upc1"},
		{Time: 70, Kind: KProcExit, Proc: 0, Cat: "sim", Name: "upc0"},
		{Time: 70, Kind: KProcExit, Proc: 1, Cat: "sim", Name: "upc1"},
		{Kind: KRunBegin, Proc: EngineProc, Cat: "sim", Name: "run", Arg: 2},
		{Time: 5, Kind: KProcSpawn, Proc: 0, Cat: "sim", Name: "main"},
		{Time: 9, Kind: KSpanBegin, Proc: 0, Cat: "ft", Name: "fft2d"},
		// Left open: daemons parked at simulation end; Export must close it.
	}
}

func TestDigestDeterministic(t *testing.T) {
	a, b := NewDigest(), NewDigest()
	for _, e := range sample() {
		a.Emit(e)
		b.Emit(e)
	}
	if a.Sum64() != b.Sum64() {
		t.Fatalf("same stream, different digests: %s vs %s", a, b)
	}
	if a.Events() != int64(len(sample())) {
		t.Fatalf("digest counted %d events, want %d", a.Events(), len(sample()))
	}
}

func TestDigestSensitive(t *testing.T) {
	base := NewDigest()
	for _, e := range sample() {
		base.Emit(e)
	}
	mutations := []func(*Event){
		func(e *Event) { e.Time++ },
		func(e *Event) { e.Proc++ },
		func(e *Event) { e.Arg++ },
		func(e *Event) { e.Aux = e.Aux + "x" },
		func(e *Event) { e.Name = "other" },
	}
	for i, mut := range mutations {
		d := NewDigest()
		evs := sample()
		mut(&evs[6])
		for _, e := range evs {
			d.Emit(e)
		}
		if d.Sum64() == base.Sum64() {
			t.Errorf("mutation %d did not change the digest", i)
		}
	}
	// Order sensitivity: swapping two events must change the hash.
	d := NewDigest()
	evs := sample()
	evs[3], evs[4] = evs[4], evs[3]
	for _, e := range evs {
		d.Emit(e)
	}
	if d.Sum64() == base.Sum64() {
		t.Error("reordering events did not change the digest")
	}
}

func TestCollectorAggregation(t *testing.T) {
	c := NewCollector()
	for _, e := range sample() {
		c.Emit(e)
	}
	if got := c.Counter("steals"); got != 5 {
		t.Errorf("Counter(steals) = %d, want 5", got)
	}
	if got := c.Count("fabric", "put"); got != 1 {
		t.Errorf("Count(fabric/put) = %d, want 1", got)
	}
	if got := c.Sum("fabric", "put"); got != 4096 {
		t.Errorf("Sum(fabric/put) = %d, want 4096", got)
	}
	s := c.Span("upc", "barrier")
	if s.Count != 2 {
		t.Fatalf("barrier span count = %d, want 2", s.Count)
	}
	if s.Total != 25 { // 15 on proc 0 + 10 on proc 1
		t.Errorf("barrier total = %d, want 25", s.Total)
	}
	if got := s.MaxByProc(); got != 15 {
		t.Errorf("barrier MaxByProc = %d, want 15", got)
	}
	if got := c.Count("sim", "spawn"); got != 3 {
		t.Errorf("Count(sim/spawn) = %d, want 3", got)
	}
	totals := c.CounterTotals()
	if totals["steals"] != 5 {
		t.Errorf("CounterTotals[steals] = %d, want 5", totals["steals"])
	}
}

func TestMultiAndTee(t *testing.T) {
	a, b := NewDigest(), NewDigest()
	m := Multi(nil, a, nil, b)
	for _, e := range sample() {
		m.Emit(e)
	}
	if a.Sum64() != b.Sum64() || a.Events() == 0 {
		t.Fatal("Multi did not fan out to both sinks")
	}
	if Tee(nil, nil) != nil {
		t.Error("Tee(nil, nil) should be nil")
	}
	if got := Tee(a, nil); got != Tracer(a) {
		t.Error("Tee(a, nil) should be a itself")
	}
	if got := Tee(nil, b); got != Tracer(b) {
		t.Error("Tee(nil, b) should be b itself")
	}
}

// chromeDoc mirrors the trace-event JSON for round-trip validation.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestChromeExportWellFormed(t *testing.T) {
	w := NewChromeWriter()
	for _, e := range sample() {
		w.Emit(e)
	}
	var buf bytes.Buffer
	if err := w.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ns", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}

	// Per (pid, tid): timestamps monotone non-decreasing, B/E balanced
	// (every B eventually closed, no E without a B).
	type track struct{ pid, tid int }
	lastTs := map[track]float64{}
	depth := map[track]int{}
	pids := map[int]bool{}
	for _, ce := range doc.TraceEvents {
		pids[ce.Pid] = true
		k := track{ce.Pid, ce.Tid}
		if ce.Ph == "M" {
			continue // metadata records carry no timestamp
		}
		if ce.Ts < lastTs[k] {
			t.Fatalf("track %v: ts went backwards (%v after %v)", k, ce.Ts, lastTs[k])
		}
		lastTs[k] = ce.Ts
		switch ce.Ph {
		case "B":
			depth[k]++
		case "E":
			depth[k]--
			if depth[k] < 0 {
				t.Fatalf("track %v: E without matching B", k)
			}
		}
	}
	tracks := make([]track, 0, len(depth))
	for k := range depth {
		tracks = append(tracks, k)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	for _, k := range tracks {
		if depth[k] != 0 {
			t.Errorf("track %v: %d unclosed spans after export", k, depth[k])
		}
	}
	// Two KRunBegin boundaries must become two process groups.
	if len(pids) != 2 {
		t.Errorf("got %d pids, want 2 (one per run)", len(pids))
	}
}

func TestSessionDefaultTracer(t *testing.T) {
	if Default() != nil {
		t.Fatal("test requires a clean default tracer")
	}
	s := StartSession("") // digest only, no file
	if Default() == nil {
		t.Fatal("StartSession did not install a default tracer")
	}
	Default().Emit(Event{Kind: KRunBegin})
	Default().Emit(Event{Time: 1, Kind: KInstant, Proc: 0, Cat: "x", Name: "y"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if Default() != nil {
		t.Error("Close did not restore the previous default tracer")
	}
	if s.Events() != 2 {
		t.Errorf("session saw %d events, want 2", s.Events())
	}
	if s.Digest() == 0 {
		t.Error("session digest is zero")
	}
}

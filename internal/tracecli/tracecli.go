// Package tracecli wires the shared flags of the cmd/upc-* binaries:
// importing it registers -trace, -digest and -parallel, and Start/Finish
// bracket the run. With -trace=out.json every engine the run creates
// streams into one Chrome trace-event file (open it in Perfetto or
// chrome://tracing), and the run's TraceDigest — an order-sensitive hash
// of the full event stream, identical across same-seed runs — is printed
// to stdout (the CI determinism gate diffs it); -digest prints the
// TraceDigest alone, without buffering the stream or writing a file.
// With -parallel=N the experiment sweeps fan independent simulations out
// over N worker threads; results, stdout, and the TraceDigest are
// byte-identical at any N (see internal/sweep).
package tracecli

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/sweep"
	"repro/internal/trace"
)

var path = flag.String("trace", "",
	"write a Chrome trace-event JSON file of the run and print its TraceDigest")

var digest = flag.Bool("digest", false,
	"print the run's TraceDigest without writing a trace file (flat memory; what CI uses on large sweeps)")

var parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
	"worker threads for experiment sweeps (1 = sequential; output is identical at any value)")

var sess *trace.Session

// Start applies the shared flags: sets the sweep worker-pool width and
// begins tracing if -trace or -digest was given. Call after flag.Parse.
// Exits immediately if the trace file cannot be created, so a bad path
// is reported before the sweep runs rather than after.
func Start() {
	sweep.SetWorkers(*parallel)
	if *path != "" || *digest {
		sess = trace.StartSession(*path)
		if err := sess.Err(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// Finish writes the trace file (if any) and prints the TraceDigest
// line. Call once after a successful run; a no-op when neither -trace
// nor -digest was given.
func Finish() {
	if sess == nil {
		return
	}
	if err := sess.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("TraceDigest: %016x (%d events)\n", sess.Digest(), sess.Events())
	if *path != "" {
		// The notice goes to stderr so stdout stays byte-identical across
		// same-seed runs (the CI determinism gate diffs it).
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *path)
	}
	sess = nil
}
